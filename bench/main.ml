(* Benchmark harness: regenerates every table of the paper's
   evaluation section (Tables 1 and 2), the recurrence-diameter
   baseline comparison the paper motivates, the retiming/obscuring
   ablations, and Bechamel timing benches (one per table).

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- table1  -- a single experiment
     (table1 | table2 | baseline | verify | portfolio | bmc | backend |
      ablation | bechamel)

   "bmc" (opt-in) unrolls a BMC workload twice — SAT inprocessing on
   vs off — and records per-design conflict counts and
   bmc_bench.<design>.on/off spans plus an aggregate
   bmc_bench.conflict_reduction_pct gauge; scripts/ci.sh gates the
   "on" arm against a committed BENCH_*.json snapshot.

   "backend" (opt-in) runs the engine over the same workloads under
   each solver backend — the reference CDCL solver, the exact BDD
   oracle, and the full (strategy x backend) race — and records
   per-arm backend_bench.<design>.<arm> spans; conclusive verdicts
   must agree across arms (every backend is a sound decision
   procedure).  --backend NAME sets the process default backend for
   every other experiment, same spelling as the tools' --backend.

   "portfolio" (opt-in, not part of the default sweep) times the
   sequential strategy ladder against Engine.verify_portfolio on
   multi-strategy workloads and records per-design speedup gauges
   (portfolio.<design>.speedup_x100) in the stats snapshot; --jobs N
   picks the domain count (default 4).

   --certify makes the "verify" experiment certify every verdict
   (counterexample replay + DRUP re-check), so the certification
   overhead shows up in the --stats certify.* spans next to the
   solver time it is checking.

   Pass --stats-json FILE to also dump the Obs.Stats snapshot (solver
   counters, per-experiment spans) as JSON — BENCH_*.json entries come
   from this layer.  --stats prints the human-readable table.
   --timeout S / --conflicts N / --bdd-nodes N put each budgeted
   computation under a resource budget (see Obs.Budget): exhausted
   work degrades to partial results instead of running away.         *)

module Net = Netlist.Net
module Lit = Netlist.Lit

let cutoff = 50

(* resource-budget flags; a fresh budget (fresh deadline) is minted at
   the start of each budgeted computation *)
let budget_spec :
    (float option * int option * int option) ref (* timeout, confl, nodes *)
    =
  ref (None, None, None)

let fresh_budget () =
  let timeout_s, conflicts, bdd_nodes = !budget_spec in
  Obs.Budget.create ?timeout_s ?conflicts ?bdd_nodes ()

(* ----- shared row machinery ----- *)

type row = {
  design : string;
  reports : Core.Pipeline.report list; (* Original / COM / COM,RET,COM *)
}

let run_pipelines net =
  let budget = fresh_budget () in
  [
    Core.Pipeline.original net;
    Core.Pipeline.com ~budget net;
    Core.Pipeline.com_ret_com ~budget net;
  ]

let pp_cell ppf (report : Core.Pipeline.report) =
  let s = Core.Pipeline.summarize ~cutoff report in
  let c = report.Core.Pipeline.reg_counts in
  Format.fprintf ppf "%4d;%5d;%5d;%5d | %3d/%3d %6.1f" c.Core.Classify.cc
    c.Core.Classify.ac c.Core.Classify.table c.Core.Classify.gc
    s.Core.Pipeline.proved_small s.Core.Pipeline.total s.Core.Pipeline.average

let pp_row ppf row =
  Format.fprintf ppf "%-10s" row.design;
  List.iter (fun r -> Format.fprintf ppf " | %a" pp_cell r) row.reports;
  Format.fprintf ppf "@."

let header ppf () =
  Format.fprintf ppf "%-10s | %-31s | %-31s | %-31s@." "Design"
    "Original  CC;AC;MC+QC;GC T'/T avg" "COM" "COM,RET,COM";
  Format.fprintf ppf "%s@." (String.make 112 '-')

type totals = {
  mutable cc : int;
  mutable ac : int;
  mutable table : int;
  mutable gc : int;
  mutable small : int;
  mutable total : int;
}

let sum_rows rows index =
  let t = { cc = 0; ac = 0; table = 0; gc = 0; small = 0; total = 0 } in
  List.iter
    (fun row ->
      let r = List.nth row.reports index in
      let c = r.Core.Pipeline.reg_counts in
      let s = Core.Pipeline.summarize ~cutoff r in
      t.cc <- t.cc + c.Core.Classify.cc;
      t.ac <- t.ac + c.Core.Classify.ac;
      t.table <- t.table + c.Core.Classify.table;
      t.gc <- t.gc + c.Core.Classify.gc;
      t.small <- t.small + s.Core.Pipeline.proved_small;
      t.total <- t.total + s.Core.Pipeline.total)
    rows;
  t

let pp_totals name rows =
  Format.printf "%-10s" name;
  List.iteri
    (fun i _ ->
      let t = sum_rows rows i in
      Format.printf " | %4d;%5d;%5d;%5d | %3d/%3d %5.0f%%" t.cc t.ac t.table
        t.gc t.small t.total
        (100. *. float_of_int t.small /. float_of_int (max t.total 1)))
    (List.hd rows).reports;
  Format.printf "@."

(* ----- Table 1: ISCAS89-like designs ----- *)

let table1_rows () =
  List.map
    (fun p ->
      let net = Workload.Iscas.build p in
      { design = p.Workload.Iscas.name; reports = run_pipelines net })
    Workload.Iscas.profiles

let table1 () =
  Format.printf
    "@.== Table 1: diameter bounding, ISCAS89-like designs (cutoff %d) ==@."
    cutoff;
  header Format.std_formatter ();
  let rows = table1_rows () in
  List.iter (pp_row Format.std_formatter) rows;
  Format.printf "%s@." (String.make 112 '-');
  pp_totals "SUM" rows;
  Format.printf
    "paper     |                  477/1615   30%%                   556/1615 \
     34%%                    639/1615   40%%@.";
  rows

(* ----- Table 2: phase-abstracted GP-like designs ----- *)

let table2_rows () =
  List.map
    (fun p ->
      let latched = Workload.Gp.build p in
      let abstracted, _translator = Core.Pipeline.phase_front latched in
      { design = p.Workload.Recipe.name; reports = run_pipelines abstracted })
    Workload.Gp.profiles

let table2 () =
  Format.printf
    "@.== Table 2: diameter bounding, phase-abstracted GP-like designs \
     (cutoff %d) ==@."
    cutoff;
  header Format.std_formatter ();
  let rows = table2_rows () in
  List.iter (pp_row Format.std_formatter) rows;
  Format.printf "%s@." (String.make 112 '-');
  pp_totals "SUM" rows;
  Format.printf
    "paper     |                   95/284    33%%                   111/284  \
     39%%                    126/284   44%%@.";
  rows

(* ----- Baseline (B1): structural vs recurrence vs exact ----- *)

let baseline_designs () =
  let mk name build =
    let net = Net.create () in
    let lit = build net in
    Net.add_target net "t" lit;
    (name, net)
  in
  [
    mk "counter4" (fun net ->
        (Workload.Gen.counter net ~name:"c" ~bits:4 ~enable:Lit.true_).Workload.Gen.out);
    mk "counter6" (fun net ->
        (Workload.Gen.counter net ~name:"c" ~bits:6 ~enable:Lit.true_).Workload.Gen.out);
    mk "pipeline10" (fun net ->
        let a = Net.add_input net "a" in
        (Workload.Gen.pipeline net ~name:"p" ~stages:10 ~data:a).Workload.Gen.out);
    mk "queue4" (fun net ->
        let push = Net.add_input net "push" in
        let d = Net.add_input net "d" in
        (* deeper queues make the final recurrence refutation
           pigeonhole-hard — precisely the cost the paper criticizes *)
        (Workload.Gen.queue net ~name:"q" ~depth:4 ~width:1 ~push ~data:[ d ])
          .Workload.Gen.out);
    mk "ring5" (fun net ->
        (Workload.Gen.ring net ~name:"r" ~length:5).Workload.Gen.out);
    mk "lfsr4" (fun net ->
        (Workload.Gen.lfsr net ~name:"l" ~bits:4).Workload.Gen.out);
  ]

let baseline () =
  Format.printf
    "@.== Baseline: structural bound [7] vs recurrence diameter [2,6] vs \
     exact ==@.";
  Format.printf "%-10s %12s %22s %20s %12s@." "design" "structural"
    "recurrence (SAT calls)" "bounded-COI [6]" "exact depth+1";
  List.iter
    (fun (name, net) ->
      let t = List.assoc "t" (Net.targets net) in
      let t0 = Unix.gettimeofday () in
      let s = Core.Bound.target net t in
      let t1 = Unix.gettimeofday () in
      (* the limit embodies the paper's point: the series of SAT
         problems grows quadratically and the final refutation is
         pigeonhole-hard, so deep recurrence searches are abandoned *)
      let r = Core.Recurrence.compute ~limit:80 ~budget:(fresh_budget ()) net t in
      let t2 = Unix.gettimeofday () in
      let b =
        Core.Recurrence.compute ~limit:80 ~bounded_coi:true
          ~budget:(fresh_budget ()) net t
      in
      let exact =
        match Core.Symbolic.explore net t with
        | Some e -> string_of_int (e.Core.Symbolic.sequential_depth + 1)
        | None -> "-"
      in
      Format.printf "%-10s %8s (%4.0fus) %8s (%3d, %6.0fus) %16s (%3d) %10s@."
        name
        (Core.Sat_bound.to_string s.Core.Bound.bound)
        (1e6 *. (t1 -. t0))
        (Core.Sat_bound.to_string r.Core.Recurrence.bound)
        r.Core.Recurrence.sat_calls
        (1e6 *. (t2 -. t1))
        (Core.Sat_bound.to_string b.Core.Recurrence.bound)
        b.Core.Recurrence.sat_calls exact)
    (baseline_designs ())

(* ----- Engine verdicts, optionally self-certified ----- *)

let certify_flag = ref false

let verify_experiment () =
  let certify = !certify_flag in
  Format.printf "@.== Engine verdicts over the baseline designs%s ==@."
    (if certify then " (certified)" else "");
  List.iter
    (fun (name, net) ->
      let t0 = Unix.gettimeofday () in
      let v =
        Core.Engine.verify ~budget:(fresh_budget ()) ~certify net ~target:"t"
      in
      let dt = Unix.gettimeofday () -. t0 in
      Format.printf "%-10s %8.1fms  %a@." name (1e3 *. dt)
        Core.Engine.pp_verdict v)
    (baseline_designs ());
  if certify then begin
    (* certification cost itself lands in the certify.* spans of
       --stats; the counters summarize the outcome *)
    let snap = Obs.Stats.snapshot () in
    let c name =
      match List.assoc_opt name snap.Obs.Stats.counters with
      | Some n -> n
      | None -> 0
    in
    Format.printf "certification: %d ok, %d failed@." (c "engine.cert_ok")
      (c "engine.cert_fail")
  end

(* ----- Portfolio: sequential ladder vs domain-parallel ladder ----- *)

let portfolio_jobs = ref 4 (* --jobs N *)

(* Multi-strategy workloads, each probing a different portfolio
   property.  "rank0-cex" concludes at the first rung, so the gap
   between its two runs is pure scheduler overhead.  "full-ladder"
   stands every rung down under an unlimited budget, so both runs do
   identical solver work and the gap is the cost (or, with more than
   one core, the win) of running it across domains.  "deep-cex" is the
   budget-hedging workload: its only counterexample sits at depth 255
   behind a wide frame, so finding it needs far more than a 1/7th
   slice of the default 4s deadline — the sequential ladder's
   equal-slice policy starves the probe and burns the whole budget
   inconclusively, while the portfolio's whole-budget-per-strategy
   policy lets the probe conclude and cancel the other six rungs.
   That hedging speedup is a property of the budget semantics, not of
   the host's core count, so it reproduces on a single-core machine. *)
type portfolio_workload = {
  pname : string;
  pnet : Net.t;
  pconfig : Core.Engine.config;
  (* timeout applied when the user gave no --timeout; None = run the
     workload under the user's (possibly unlimited) budget *)
  default_timeout_s : float option;
}

let ladder_config =
  {
    Core.Engine.default with
    Core.Engine.probe_depth = 32;
    recurrence_limit = 40;
    induction_max_k = 24;
  }

(* deep-cex must probe past depth 255 to reach its counterexample *)
let deep_cex_config = { ladder_config with Core.Engine.probe_depth = 260 }

let portfolio_designs () =
  let mk ?timeout ?(config = ladder_config) pname build =
    let pnet = Net.create () in
    let lit = build pnet in
    Net.add_target pnet "t" lit;
    { pname; pnet; pconfig = config; default_timeout_s = timeout }
  in
  [
    mk "rank0-cex" (fun net ->
        (Workload.Gen.lfsr net ~name:"l" ~bits:12).Workload.Gen.out);
    mk "full-ladder" (fun net ->
        let l = Workload.Gen.lfsr net ~name:"l" ~bits:10 in
        let c = Workload.Gen.counter net ~name:"c" ~bits:6 ~enable:Lit.true_ in
        Net.add_and net l.Workload.Gen.out c.Workload.Gen.out);
    mk "deep-cex" ~timeout:4.0 ~config:deep_cex_config (fun net ->
        (* 40 parallel queues AND an 8-bit counter: the all-ones hit
           at depth 255 takes ~1.3s of BMC, well past the ~0.57s
           equal-slice share but well inside the whole deadline *)
        let c = Workload.Gen.counter net ~name:"c" ~bits:8 ~enable:Lit.true_ in
        let acc = ref c.Workload.Gen.out in
        for i = 1 to 40 do
          let push = Net.add_input net (Printf.sprintf "push%d" i) in
          let d = Net.add_input net (Printf.sprintf "d%d" i) in
          let q =
            Workload.Gen.queue net
              ~name:(Printf.sprintf "q%d" i)
              ~depth:8 ~width:1 ~push ~data:[ d ]
          in
          acc := Net.add_and net !acc q.Workload.Gen.out
        done;
        !acc);
  ]

(* The contract from Engine.verify_portfolio's docs: either the exact
   sequential verdict, or a conclusive answer where the sliced
   sequential ladder ran out of budget — never a different conclusive
   answer, and never less conclusive. *)
let consistent seq par =
  let conclusive = function
    | Core.Engine.Proved _ | Core.Engine.Violated _ -> true
    | Core.Engine.Inconclusive _ -> false
  in
  match (seq, par) with
  | Core.Engine.Proved p, Core.Engine.Proved q ->
    String.equal p.strategy q.strategy && p.depth = q.depth
  | Core.Engine.Violated p, Core.Engine.Violated q ->
    String.equal p.strategy q.strategy && p.cex.Bmc.depth = q.cex.Bmc.depth
  | Core.Engine.Inconclusive p, Core.Engine.Inconclusive q ->
    (* identical ladders, ignoring wall-clock noise in elapsed_s *)
    List.equal
      (fun (x : Core.Engine.attempt) (y : Core.Engine.attempt) ->
        String.equal x.strategy y.strategy && String.equal x.reason y.reason)
      p.attempts q.attempts
  | Core.Engine.Inconclusive _, v -> conclusive v
  | _ -> false

let brief_verdict = function
  | Core.Engine.Inconclusive { attempts } ->
    Printf.sprintf "INCONCLUSIVE (%d strategies stood down)"
      (List.length attempts)
  | v -> Format.asprintf "%a" Core.Engine.pp_verdict v

let portfolio () =
  let jobs = !portfolio_jobs in
  (* Pool.create clamps to the host's core count; report what actually
     runs so a single-core box doesn't claim a 4-domain race *)
  let effective = max 1 (min jobs (Domain.recommended_domain_count ())) in
  Format.printf
    "@.== Portfolio: sequential ladder vs portfolio (--jobs %d, %d worker \
     domain%s) ==@."
    jobs effective
    (if effective = 1 then "" else "s");
  let best = ref 0. in
  List.iter
    (fun w ->
      let budget () =
        let timeout_s, conflicts, bdd_nodes = !budget_spec in
        let timeout_s =
          match timeout_s with Some _ -> timeout_s | None -> w.default_timeout_s
        in
        Obs.Budget.create ?timeout_s ?conflicts ?bdd_nodes ()
      in
      let t0 = Obs.Stats.now () in
      let seq =
        Core.Engine.verify ~config:w.pconfig ~budget:(budget ()) w.pnet
          ~target:"t"
      in
      let t1 = Obs.Stats.now () in
      let par =
        Core.Engine.verify_portfolio ~config:w.pconfig ~budget:(budget ())
          ~jobs w.pnet ~target:"t"
      in
      let t2 = Obs.Stats.now () in
      let seq_ms = 1e3 *. (t1 -. t0) in
      let par_ms = 1e3 *. (t2 -. t1) in
      let speedup = seq_ms /. Float.max par_ms 1e-3 in
      if speedup > !best then best := speedup;
      let gauge suffix v =
        Obs.Stats.set_gauge
          (Printf.sprintf "portfolio.%s.%s" w.pname suffix)
          (int_of_float v)
      in
      gauge "seq_ms" seq_ms;
      gauge "par_ms" par_ms;
      gauge "speedup_x100" (100. *. speedup);
      Format.printf
        "%-12s seq %8.1fms  %s@.%-12s par %8.1fms  %s@.%-12s speedup %.2fx  \
         consistent=%b@."
        w.pname seq_ms (brief_verdict seq) "" par_ms (brief_verdict par) ""
        speedup (consistent seq par))
    (portfolio_designs ());
  (* the acceptance gate: on at least one multi-strategy workload the
     portfolio must conclude ahead of the sliced sequential ladder *)
  Obs.Stats.max_gauge "portfolio.best_speedup_x100"
    (int_of_float (100. *. !best));
  Format.printf "best speedup: %.2fx@." !best

(* ----- BMC workload: SAT inprocessing on vs off ----- *)

(* Opt-in experiment (like "portfolio"): unrolls each design twice —
   once with Sat.Simplify inprocessing enabled, once with
   --no-inprocess semantics — and reports the conflict and wall-clock
   reduction.  The two arms must agree on the verdict (inprocessing is
   an equisatisfiable transformation); "consistent" prints the check.
   Spans bmc_bench.<design>.on/off land in the stats snapshot, so a
   committed BENCH_*.json plus --baseline --fail-on-regress turns the
   "on" arm into a regression gate for the simplifier itself. *)

let bmc_designs () =
  let mk name depth build =
    let net = Net.create () in
    let lit = build net in
    Net.add_target net "t" lit;
    (name, net, depth)
  in
  [
    (* free enable: every unsat depth is a counting refutation ("the
       counter cannot reach all-ones in d < 63 steps"), not BCP *)
    mk "gated63" 63 (fun net ->
        let en = Net.add_input net "en" in
        (Workload.Gen.counter net ~name:"c" ~bits:6 ~enable:en).Workload.Gen.out);
    (* all-unsat variant: no hit exists to depth 80, so the whole run
       is refutation work — the conflict-heavy arm of the workload *)
    mk "gated8" 80 (fun net ->
        let en = Net.add_input net "en" in
        (Workload.Gen.counter net ~name:"c" ~bits:8 ~enable:en).Workload.Gen.out);
    (* duplicated-function guard (the COM workload shape): variable
       elimination resolves the two copies against each other, so the
       per-frame guard refutations collapse to propagation *)
    mk "comguard" 40 (fun net ->
        let rng = Workload.Rng.create 7 in
        let inputs =
          List.init 8 (fun i -> Net.add_input net (Printf.sprintf "i%d" i))
        in
        let g = Workload.Gen.com_guard net rng ~inputs in
        (Workload.Gen.counter net ~name:"c" ~bits:6 ~enable:g).Workload.Gen.out);
  ]

let same_outcome a b =
  match (a, b) with
  | Bmc.Hit x, Bmc.Hit y -> x.Bmc.depth = y.Bmc.depth
  | Bmc.No_hit x, Bmc.No_hit y -> x = y
  | Bmc.Unknown _, Bmc.Unknown _ -> true
  | _ -> false

let brief_outcome = function
  | Bmc.Hit cex -> Printf.sprintf "HIT@%d" cex.Bmc.depth
  | Bmc.No_hit d -> Printf.sprintf "no-hit..%d" d
  | Bmc.Unknown { after; _ } -> Printf.sprintf "unknown@%d" after

let bmc_bench () =
  Format.printf "@.== BMC workload: SAT inprocessing on vs off ==@.";
  Format.printf "%-10s %10s %13s %14s %9s %9s@." "design" "verdict"
    "conflicts(on)" "conflicts(off)" "ms(on)" "ms(off)";
  let counter name =
    match List.assoc_opt name (Obs.Stats.snapshot ()).Obs.Stats.counters with
    | Some n -> n
    | None -> 0
  in
  let saved = Sat.Solver.inprocess_default () in
  let on_conflicts = ref 0 and off_conflicts = ref 0 in
  let on_ms = ref 0. and off_ms = ref 0. in
  Fun.protect ~finally:(fun () -> Sat.Solver.set_inprocess_default saved)
  @@ fun () ->
  List.iter
    (fun (name, net, depth) ->
      let run tag enabled =
        Sat.Solver.set_inprocess_default enabled;
        let c0 = counter "sat.conflicts" in
        let t0 = Obs.Stats.now () in
        let outcome =
          Obs.Stats.time
            (Printf.sprintf "bmc_bench.%s.%s" name tag)
            (fun () -> Bmc.check ~budget:(fresh_budget ()) net ~target:"t" ~depth)
        in
        let ms = 1e3 *. (Obs.Stats.now () -. t0) in
        (outcome, counter "sat.conflicts" - c0, ms)
      in
      let on, c_on, t_on = run "on" true in
      let off, c_off, t_off = run "off" false in
      on_conflicts := !on_conflicts + c_on;
      off_conflicts := !off_conflicts + c_off;
      on_ms := !on_ms +. t_on;
      off_ms := !off_ms +. t_off;
      let gauge suffix v =
        Obs.Stats.set_gauge (Printf.sprintf "bmc_bench.%s.%s" name suffix) v
      in
      gauge "conflicts_on" c_on;
      gauge "conflicts_off" c_off;
      Format.printf "%-10s %10s %13d %14d %9.1f %9.1f  consistent=%b@." name
        (brief_outcome on) c_on c_off t_on t_off (same_outcome on off))
    (bmc_designs ());
  let reduction_pct total_on total_off =
    100. *. (total_off -. total_on) /. Float.max total_off 1.
  in
  let c_red =
    reduction_pct (float_of_int !on_conflicts) (float_of_int !off_conflicts)
  in
  let t_red = reduction_pct !on_ms !off_ms in
  Obs.Stats.set_gauge "bmc_bench.conflict_reduction_pct" (int_of_float c_red);
  Obs.Stats.set_gauge "bmc_bench.time_reduction_pct" (int_of_float t_red);
  Format.printf
    "total: conflicts %d -> %d (%.1f%% fewer), time %.1fms -> %.1fms (%.1f%% \
     less)@."
    !off_conflicts !on_conflicts c_red !off_ms !on_ms t_red

(* ----- Backend matrix: one engine run per solver backend ----- *)

(* Opt-in experiment ("backend"): verifies a small-cone workload (BDD
   oracle territory) and a refutation-heavy workload (CDCL territory)
   under each backend spec and records per-arm wall clock as
   backend_bench.<design>.<arm> spans plus <arm>_ms gauges.  The race
   arm exercises the full (strategy x backend) grid, so a committed
   BENCH_*.json plus --baseline --fail-on-regress turns this into a
   regression gate for the racing overhead itself.  Conclusive
   verdicts must never disagree across arms — each backend is a sound
   decision procedure — and "consistent" prints that check against
   the reference arm. *)

let backend_designs () =
  let mk name build =
    let net = Net.create () in
    let lit = build net in
    Net.add_target net "t" lit;
    (name, net)
  in
  [
    (* free-running 4-bit counter: a cone small enough that the BDD
       oracle concludes exactly, far below its node allowance *)
    mk "small-cone" (fun net ->
        (Workload.Gen.counter net ~name:"c" ~bits:4 ~enable:Lit.true_)
          .Workload.Gen.out);
    (* gated 6-bit counter: per-depth refutations where the CDCL
       solver shines; big enough that the BDD arm leans on its
       node-limited stand-down rather than exact answers *)
    mk "gated-deep" (fun net ->
        let en = Net.add_input net "en" in
        (Workload.Gen.counter net ~name:"c" ~bits:6 ~enable:en)
          .Workload.Gen.out);
  ]

let backend_arms () =
  [
    ("reference", Backend.Single (Backend.reference ()));
    ("bdd", Backend.Single (Backend.bdd_oracle ()));
    ("race", Backend.Race (Backend.race_pool ()));
  ]

(* conclusive answers must agree across backends; an arm standing
   down where the reference concluded is fine (the BDD oracle on a
   big cone), a conflicting conclusive answer never is *)
let backend_consistent ref_v v =
  match (ref_v, v) with
  | Core.Engine.Proved _, Core.Engine.Violated _
  | Core.Engine.Violated _, Core.Engine.Proved _ -> false
  | _ -> true

let backend_bench () =
  Format.printf "@.== Backend matrix: engine verdicts per solver backend ==@.";
  List.iter
    (fun (name, net) ->
      let run (arm, spec) =
        let config =
          { ladder_config with Core.Engine.backend = Some spec }
        in
        let t0 = Obs.Stats.now () in
        let v =
          Obs.Stats.time
            (Printf.sprintf "backend_bench.%s.%s" name arm)
            (fun () ->
              Core.Engine.verify ~config ~budget:(fresh_budget ()) net
                ~target:"t")
        in
        let ms = 1e3 *. (Obs.Stats.now () -. t0) in
        Obs.Stats.set_gauge
          (Printf.sprintf "backend_bench.%s.%s_ms" name arm)
          (int_of_float ms);
        (arm, v, ms)
      in
      let results = List.map run (backend_arms ()) in
      let ref_v =
        match results with (_, v, _) :: _ -> v | [] -> assert false
      in
      List.iter
        (fun (arm, v, ms) ->
          Format.printf "%-12s %-10s %8.1fms  %s  consistent=%b@." name arm
            ms (brief_verdict v)
            (backend_consistent ref_v v))
        results)
    (backend_designs ())

(* ----- Ablations ----- *)

let ablation () =
  Format.printf "@.== Ablation A1: per-target retiming skew accounting ==@.";
  (* a target whose cone cannot be peeled still pays no penalty; a
     reconvergent target pays only the shorter branch *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Net.add_input net "b" in
  let p1 = Workload.Gen.pipeline net ~name:"p1" ~stages:6 ~data:a in
  let p2 = Workload.Gen.pipeline net ~name:"p2" ~stages:2 ~data:b in
  Net.add_target net "deep" p1.Workload.Gen.out;
  Net.add_target net "join"
    (Net.add_and net p1.Workload.Gen.out p2.Workload.Gen.out);
  let r = Transform.Retime.run net in
  List.iter
    (fun (t, skew) ->
      let b = Core.Bound.target_named r.Transform.Retime.rebuilt.Transform.Rebuild.net t in
      Format.printf
        "  target %-5s skew %d  raw %-4s  translated %s (original bound %s)@." t
        skew
        (Core.Sat_bound.to_string b.Core.Bound.bound)
        (Core.Sat_bound.to_string
           ((Core.Translate.retiming ~skew).Core.Translate.apply b.Core.Bound.bound))
        (Core.Sat_bound.to_string (Core.Bound.target_named net t).Core.Bound.bound))
    r.Transform.Retime.target_skews;
  Format.printf
    "@.== Ablation A2: table identification across representations ==@.";
  let net = Net.create () in
  let ins = List.init 4 (fun i -> Net.add_input net (Printf.sprintf "i%d" i)) in
  let sel =
    match ins with a :: b :: c :: _ -> (a, b, c) | _ -> assert false
  in
  let chain =
    Workload.Gen.obscured_chain net ~name:"o" ~sel ~data:(List.nth ins 3) ~len:6
  in
  Net.add_target net "t" chain.Workload.Gen.out;
  let before = Core.Classify.netlist_counts net in
  let b_before = Core.Bound.target_named net "t" in
  let reduced, _ = Transform.Com.run ~budget:(fresh_budget ()) net in
  let after = Core.Classify.netlist_counts reduced.Transform.Rebuild.net in
  let b_after = Core.Bound.target_named reduced.Transform.Rebuild.net "t" in
  Format.printf
    "  before COM: %a  bound %s@.  after COM:  %a  bound %s@."
    Core.Classify.pp_counts before
    (Core.Sat_bound.to_string b_before.Core.Bound.bound)
    Core.Classify.pp_counts after
    (Core.Sat_bound.to_string b_after.Core.Bound.bound);
  Format.printf
    "@.== Ablation A4: sequential sweeping (van Eijk) vs COM,RET,COM ==@.";
  (* the RET-gadget is also resolvable by induction-based merging — a
     different point in the Section 3.1 design space (any
     trace-equivalence-preserving reduction transfers bounds) *)
  let net = Net.create () in
  let x = Net.add_input net "x" in
  let y = Net.add_input net "y" in
  let guard = Workload.Gen.ret_guard net ~name:"g" ~x ~y in
  let cnt = Workload.Gen.counter net ~name:"cnt" ~bits:8 ~enable:guard in
  Net.add_target net "t" cnt.Workload.Gen.out;
  let b0 = Core.Bound.target_named net "t" in
  let com, _ = Transform.Com.run ~budget:(fresh_budget ()) net in
  let b_com = Core.Bound.target_named com.Transform.Rebuild.net "t" in
  let ve, ve_stats = Transform.Van_eijk.run net in
  let b_ve = Core.Bound.target_named ve.Transform.Rebuild.net "t" in
  let crc = Core.Pipeline.com_ret_com net in
  let b_crc =
    (List.find (fun t -> String.equal t.Core.Pipeline.target "t")
       crc.Core.Pipeline.targets)
      .Core.Pipeline.bound
  in
  Format.printf
    "  original %s | COM %s | van Eijk %s (%d merges, %d SAT) | COM,RET,COM \
     %s@."
    (Core.Sat_bound.to_string b0.Core.Bound.bound)
    (Core.Sat_bound.to_string b_com.Core.Bound.bound)
    (Core.Sat_bound.to_string b_ve.Core.Bound.bound)
    ve_stats.Transform.Van_eijk.merged ve_stats.Transform.Van_eijk.sat_checks
    (Core.Sat_bound.to_string b_crc);
  Format.printf
    "@.== Ablation A3: completeness in action (bound-driven BMC proof) ==@.";
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let r0 = Net.add_reg net ~init:Net.Init0 "r0" in
  let r1 = Net.add_reg net ~init:Net.Init1 "r1" in
  Net.set_next net r0 a;
  Net.set_next net r1 (Lit.neg a);
  Net.add_target net "t" (Net.add_and net r0 r1);
  let b = (Core.Bound.target_named net "t").Core.Bound.bound in
  (match Bmc.prove ~budget:(fresh_budget ()) net ~target:"t" ~bound:b with
  | `Proved ->
    Format.printf "  bound %d; BMC to depth %d found no hit: PROVED@." b (b - 1)
  | `Cex cex -> Format.printf "  counterexample at depth %d@." cex.Bmc.depth
  | `Unknown -> Format.printf "  budget exhausted before the proof closed@.")

(* ----- Bechamel timing benches (one Test.make per table) ----- *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let prolog = Workload.Iscas.by_name "PROLOG" in
  let s5378 = Workload.Iscas.by_name "S5378" in
  let dasa = Workload.Gp.by_name "D_DASA" in
  let counter6 =
    let net = Net.create () in
    let b = Workload.Gen.counter net ~name:"c" ~bits:6 ~enable:Lit.true_ in
    Net.add_target net "t" b.Workload.Gen.out;
    net
  in
  let tests =
    Test.make_grouped ~name:"diambound"
      [
        Test.make ~name:"table1_prolog_pipelines"
          (Staged.stage (fun () -> ignore (Core.Pipeline.com_ret_com prolog)));
        Test.make ~name:"table1_s5378_pipelines"
          (Staged.stage (fun () -> ignore (Core.Pipeline.com_ret_com s5378)));
        Test.make ~name:"table2_dasa_phase_pipelines"
          (Staged.stage (fun () ->
               let abs, _ = Core.Pipeline.phase_front dasa in
               ignore (Core.Pipeline.com_ret_com abs)));
        Test.make ~name:"baseline_recurrence_counter6"
          (Staged.stage (fun () ->
               ignore
                 (Core.Recurrence.compute ~limit:80 counter6
                    (List.assoc "t" (Net.targets counter6)))));
        Test.make ~name:"structural_bound_prolog"
          (Staged.stage (fun () -> ignore (Core.Bound.all_targets prolog)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "@.== Bechamel timings (monotonic clock per run) ==@.";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> Format.printf "  %-40s %12.0f ns/run@." name ns
      | Some _ | None -> Format.printf "  %-40s (no estimate)@." name)
    results

(* ----- baseline mode: diff the run against a stored snapshot ----- *)

let baseline_file = ref None (* --baseline FILE *)
let against_file = ref None (* --against FILE: pure differ, no run *)
let fail_on_regress = ref None (* --fail-on-regress PCT *)
let regress_floor = ref None (* --regress-floor MS: noise floor for the gate *)

let stats_schema_version = 2

let bench_meta experiments =
  Obs.Report.
    [
      ("schema", Int stats_schema_version);
      ("tool", String "bench");
      ("experiments", List (List.map (fun e -> String e) experiments));
      ("budget", String (Format.asprintf "%a" Obs.Budget.pp (fresh_budget ())));
      ("certify", Bool !certify_flag);
    ]

let load_entry path =
  match Obs.Baseline.load path with
  | entry -> entry
  | exception Failure msg ->
    Format.eprintf "baseline: %s: %s@." path msg;
    exit 2
  | exception Sys_error msg ->
    Format.eprintf "baseline: %s@." msg;
    exit 2

(* Diff [cur] (this run's snapshot, or --against FILE) against
   --baseline FILE: print the per-counter/per-span delta table and,
   under --fail-on-regress, exit non-zero when any span total grew
   past the threshold — the enforcement teeth behind BENCH_*.json. *)
let run_baseline ~base_path ~cur =
  let base = load_entry base_path in
  (match Obs.Baseline.compat ~base ~cur with
  | Ok () -> ()
  | Error msg ->
    Format.eprintf "baseline: refusing to compare: %s@." msg;
    exit 2);
  let d = Obs.Baseline.diff ~base ~cur in
  Format.printf "@.== Baseline diff vs %s ==@.%a" base_path Obs.Baseline.pp d;
  match !fail_on_regress with
  | None -> ()
  | Some threshold_pct -> (
    let min_total_s = Option.map (fun ms -> ms /. 1e3) !regress_floor in
    match Obs.Baseline.regressions ?min_total_s ~threshold_pct d with
    | [] ->
      Format.printf "no span regressed more than %.1f%%@." threshold_pct
    | regs ->
      List.iter
        (fun (name, growth) ->
          Format.eprintf "REGRESSION %-32s +%.1f%% (threshold %.1f%%)@." name
            growth threshold_pct)
        regs;
      exit 1)

(* split "--stats" / "--stats-json FILE" / trace, baseline and budget
   flags out of the experiment list *)
let split_args args =
  let missing flag =
    Format.eprintf "%s needs an argument@." flag;
    exit 2
  in
  let num conv flag v =
    match conv v with
    | Some n -> n
    | None ->
      Format.eprintf "%s: bad argument %S@." flag v;
      exit 2
  in
  let set f = budget_spec := f !budget_spec in
  let rec go stats json exps = function
    | [] -> (stats, json, List.rev exps)
    | "--stats" :: rest -> go true json exps rest
    | "--stats-json" :: file :: rest -> go stats (Some file) exps rest
    | "--stats-json" :: [] -> missing "--stats-json"
    | "--trace" :: file :: rest ->
      Obs.Trace.start file;
      go stats json exps rest
    | "--trace" :: [] -> missing "--trace"
    | "--log-level" :: v :: rest ->
      (match Obs.Log.level_of_string v with
      | Some l -> Obs.Log.set_level l
      | None ->
        Format.eprintf "--log-level: bad argument %S@." v;
        exit 2);
      go stats json exps rest
    | "--log-level" :: [] -> missing "--log-level"
    | "--log" :: file :: rest ->
      Obs.Log.set_file file;
      go stats json exps rest
    | "--log" :: [] -> missing "--log"
    | "--baseline" :: file :: rest ->
      baseline_file := Some file;
      go stats json exps rest
    | "--baseline" :: [] -> missing "--baseline"
    | "--against" :: file :: rest ->
      against_file := Some file;
      go stats json exps rest
    | "--against" :: [] -> missing "--against"
    | "--fail-on-regress" :: v :: rest ->
      fail_on_regress :=
        Some (num float_of_string_opt "--fail-on-regress" v);
      go stats json exps rest
    | "--fail-on-regress" :: [] -> missing "--fail-on-regress"
    | "--regress-floor" :: v :: rest ->
      (* spans whose current total is below this are too small to
         gate — relative growth on a few milliseconds is pure noise *)
      regress_floor := Some (num float_of_string_opt "--regress-floor" v);
      go stats json exps rest
    | "--regress-floor" :: [] -> missing "--regress-floor"
    | "--timeout" :: v :: rest ->
      set (fun (_, c, n) -> (Some (num float_of_string_opt "--timeout" v), c, n));
      go stats json exps rest
    | "--timeout" :: [] -> missing "--timeout"
    | "--conflicts" :: v :: rest ->
      set (fun (t, _, n) -> (t, Some (num int_of_string_opt "--conflicts" v), n));
      go stats json exps rest
    | "--conflicts" :: [] -> missing "--conflicts"
    | "--bdd-nodes" :: v :: rest ->
      set (fun (t, c, _) -> (t, c, Some (num int_of_string_opt "--bdd-nodes" v)));
      go stats json exps rest
    | "--bdd-nodes" :: [] -> missing "--bdd-nodes"
    | "--jobs" :: v :: rest ->
      portfolio_jobs := max 1 (num int_of_string_opt "--jobs" v);
      go stats json exps rest
    | "--jobs" :: [] -> missing "--jobs"
    | "--certify" :: rest ->
      certify_flag := true;
      go stats json exps rest
    | "--backend" :: v :: rest ->
      (match Backend.spec_of_string v with
      | Ok spec -> Backend.set_default spec
      | Error msg ->
        Format.eprintf "--backend: %s@." msg;
        exit 2);
      go stats json exps rest
    | "--backend" :: [] -> missing "--backend"
    | "--no-inprocess" :: rest ->
      (* same escape hatch as the tools; the "bmc" experiment still
         forces its own on/off arms, restoring this default after *)
      Sat.Solver.set_inprocess_default false;
      go stats json exps rest
    | exp :: rest -> go stats json (exp :: exps) rest
  in
  go false None [] args

let () =
  (* DIAMBOUND_LOG before the flags, so an explicit --log-level wins *)
  Obs.Log.setup ();
  let stats, stats_json, want =
    split_args (List.tl (Array.to_list Sys.argv))
  in
  if not (Obs.Trace.active ()) then Obs.Trace.setup ();
  match (!against_file, !baseline_file) with
  | Some _, None ->
    Format.eprintf "--against only makes sense with --baseline@.";
    exit 2
  | Some cur_path, Some base_path ->
    (* pure differ mode: no experiments run, both sides from disk —
       deterministic, so CI can self-compare a fresh snapshot *)
    run_baseline ~base_path ~cur:(load_entry cur_path)
  | None, _ ->
    let want =
      if want <> [] then want
      else [ "table1"; "table2"; "baseline"; "verify"; "ablation"; "bechamel" ]
    in
    List.iter
      (fun arg ->
        let run f = Obs.Stats.time ("bench." ^ arg) f in
        match arg with
        | "table1" -> run (fun () -> ignore (table1 ()))
        | "table2" -> run (fun () -> ignore (table2 ()))
        | "baseline" -> run baseline
        | "verify" -> run verify_experiment
        | "portfolio" -> run portfolio
        | "bmc" -> run bmc_bench
        | "backend" -> run backend_bench
        | "ablation" -> run ablation
        | "bechamel" -> run bechamel
        | other -> Format.eprintf "unknown experiment %s@." other)
      want;
    let meta = bench_meta want in
    Obs.Report.emit ~human:stats ?json_file:stats_json ~meta ();
    match !baseline_file with
    | None -> ()
    | Some base_path ->
      run_baseline ~base_path
        ~cur:{ Obs.Baseline.meta; snap = Obs.Stats.snapshot () }
