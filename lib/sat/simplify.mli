(** Clause-database simplification (inprocessing).

    A self-contained SatELite-style pass over a set of problem clauses:
    subsumption, self-subsuming resolution (clause strengthening),
    bounded variable elimination by clause distribution, and
    failed-literal probing on the binary implication graph.  The module
    is deliberately independent of {!Solver}: it receives plain
    literal-array clauses plus the root-level assignment and returns the
    simplified clause set, the root units it derived, and the
    elimination record the solver needs for model reconstruction and
    variable reintroduction.

    Proof-logging contract (this is what keeps {!Drup.check} and the
    certification layer sound):

    - every clause the pass derives — strengthened clauses, resolvents
      of eliminated variables, failed-literal units — is announced
      through [log_add] {e before} any clause it was derived from is
      touched, so each addition is RUP against the checker's live set;
    - clauses retired because they are subsumed, satisfied at the root,
      or replaced by a strengthened version are announced through
      [log_delete] {e after} their replacement (deletions only ever
      weaken a DRUP derivation, so these are always sound);
    - clauses removed by variable elimination are {e not} deleted from
      the proof at all.  The checker keeps them live — harmless, since
      extra clauses only help unit propagation — and in exchange the
      solver may silently reintroduce them later (when a new clause or
      assumption mentions an eliminated variable) without emitting
      non-RUP re-addition events. *)

type config = {
  subsumption : bool;  (** subsumption + self-subsuming resolution *)
  var_elim : bool;  (** bounded variable elimination *)
  probing : bool;  (** failed-literal probing on the binary graph *)
  occ_limit : int;
      (** only eliminate variables with at most this many occurrences *)
  growth : int;
      (** max net growth in clause count per eliminated variable *)
  resolvent_limit : int;  (** abandon elimination on longer resolvents *)
  probe_limit : int;  (** max probed literals per pass *)
  subsume_limit : int;  (** max subsumption candidate checks per pass *)
  rounds : int;  (** fixpoint rounds per pass *)
}

val default : config

type simplified =
  | Kept of int
      (** input clause at this index survived byte-for-byte: the caller
          should keep its own record (and watch order) for it *)
  | Fresh of int array
      (** a clause the pass derived (strengthened or a BVE resolvent) *)

type result = {
  clauses : simplified list;
      (** the simplified clause set; every clause has >= 2 literals,
          all unassigned at the root *)
  units : int list;
      (** root units derived during the pass, in derivation order *)
  eliminated : (int * int array array) list;
      (** per eliminated variable, the clauses removed with it, in
          elimination order — the solver's reconstruction stack *)
  contradiction : bool;
      (** the pass derived the empty clause (already logged) *)
  n_subsumed : int;
  n_strengthened : int;
  n_probed : int;
}

val run :
  ?config:config ->
  nvars:int ->
  frozen:(int -> bool) ->
  value:(int -> int) ->
  log_add:(int array -> unit) ->
  log_delete:(int array -> unit) ->
  int array list ->
  result
(** [run ~nvars ~frozen ~value ~log_add ~log_delete clauses] simplifies
    [clauses].  [frozen v] protects variable [v] from elimination
    (assumption variables, already-eliminated variables); [value l]
    reports the root-level value of literal [l] (-1 unassigned, 0
    false, 1 true); the two loggers receive proof events per the
    contract above.  Input clauses need not be sorted and must not be
    tautologies. *)
