type lit = int

let pos v = 2 * v
let neg_of v = (2 * v) + 1
let negate l = l lxor 1
let var_of l = l lsr 1
let is_pos l = l land 1 = 0

type result = Sat | Unsat | Unknown

type clause = {
  mutable lits : int array;
  mutable act : float;
  learnt : bool;
  mutable deleted : bool;
  mutable lbd : int; (* glue: distinct decision levels at learn time *)
  mutable used : int; (* reduce_db epoch of last use in conflict analysis *)
}

let dummy_clause =
  { lits = [||]; act = 0.; learnt = false; deleted = true; lbd = 0; used = 0 }

type t = {
  mutable nvars : int;
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  mutable watches : clause Vec.t array; (* per literal *)
  mutable assigns : int array; (* per var: -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : clause array; (* dummy_clause when none *)
  mutable activity : float array;
  mutable phase : bool array;
  mutable heap : int array; (* binary max-heap of vars by activity *)
  mutable heap_size : int;
  mutable heap_pos : int array; (* var -> heap index, -1 if absent *)
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  mutable seen : bool array;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool;
  mutable max_learnts : float;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable reduce_dbs : int;
  mutable last_solve_sat : bool;
  (* inprocessing (see Simplify) *)
  mutable simplify_enabled : bool; (* captured from the global default *)
  mutable simplify_cfg : Simplify.config;
  mutable simplify_wrapper : (unit -> unit) -> unit; (* Obs instrumentation *)
  mutable next_simplify : int; (* conflict count that triggers a pass *)
  mutable simplify_interval : int;
  mutable clauses_since_simplify : int;
  mutable frozen : bool array; (* per var: protected from elimination *)
  mutable eliminated : bool array; (* per var: currently eliminated *)
  elim_stack : (int * int array array) Vec.t; (* reconstruction stack *)
  mutable lvl_stamp : int array; (* scratch for LBD computation *)
  mutable stamp : int;
  mutable simplifies : int;
  mutable subsumed : int;
  mutable strengthened : int;
  mutable eliminated_vars : int;
  mutable probed_units : int;
  mutable core_deleted : int; (* must stay 0: core learnts never age out *)
  mutable proof : Proof.t option;
  (* Chaos.Corrupt_model negates the *reported* model only: the flag is
     consulted by [value], never written into [assigns]/[phase], so the
     incremental search state stays intact across injections *)
  mutable corrupt_model : bool;
  (* fault-injection config captured at creation: concurrent solvers
     each consult their own instance (see Chaos) *)
  chaos : Chaos.instance;
}

(* Inprocessing default: process-global, captured per solver instance
   at creation (like Chaos) so concurrent solvers stay independent.
   The CLI tools set it from [--no-inprocess]; otherwise the
   [DIAMBOUND_NO_INPROCESS] environment variable decides. *)
let env_no_inprocess =
  lazy
    (match Sys.getenv_opt "DIAMBOUND_NO_INPROCESS" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

let inprocess_override = ref None
let set_inprocess_default b = inprocess_override := Some b

let inprocess_default () =
  match !inprocess_override with
  | Some b -> b
  | None -> not (Lazy.force env_no_inprocess)

let create ?inprocess () =
  {
    nvars = 0;
    clauses = Vec.create ~dummy:dummy_clause ();
    learnts = Vec.create ~dummy:dummy_clause ();
    watches = [||];
    assigns = [||];
    level = [||];
    reason = [||];
    activity = [||];
    phase = [||];
    heap = [||];
    heap_size = 0;
    heap_pos = [||];
    trail = Vec.create ~dummy:0 ();
    trail_lim = Vec.create ~dummy:0 ();
    qhead = 0;
    seen = [||];
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
    max_learnts = 4000.;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    reduce_dbs = 0;
    last_solve_sat = false;
    simplify_enabled =
      (match inprocess with Some b -> b | None -> inprocess_default ());
    simplify_cfg = Simplify.default;
    simplify_wrapper = (fun f -> f ());
    next_simplify = 0;
    simplify_interval = 1000;
    clauses_since_simplify = 0;
    frozen = [||];
    eliminated = [||];
    elim_stack = Vec.create ~dummy:(0, [||]) ();
    lvl_stamp = [||];
    stamp = 0;
    simplifies = 0;
    subsumed = 0;
    strengthened = 0;
    eliminated_vars = 0;
    probed_units = 0;
    core_deleted = 0;
    proof = None;
    corrupt_model = false;
    chaos = Chaos.capture ();
  }

let set_proof s p = s.proof <- Some p
let proof s = s.proof

(* Append a proof event.  A [Drop_proof] fault silently discards the
   event (simulating a lost or truncated proof file) but counts the
   injection so tests can assert the fault actually fired. *)
let log_event s f =
  match s.proof with
  | None -> ()
  | Some p ->
    if Chaos.instance_fault s.chaos = Some Chaos.Drop_proof then
      Chaos.instance_note s.chaos
    else f p

let num_vars s = s.nvars
let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations
let num_restarts s = s.restarts
let num_reduce_dbs s = s.reduce_dbs
let num_clauses s = Vec.size s.clauses
let num_learnts s = Vec.size s.learnts
let trail_depth s = Vec.size s.trail
let num_simplifies s = s.simplifies
let num_subsumed s = s.subsumed
let num_strengthened s = s.strengthened
let num_eliminated s = s.eliminated_vars
let num_probed_units s = s.probed_units
let num_core_deleted s = s.core_deleted
let set_max_learnts s n = s.max_learnts <- float_of_int n
let max_learnts s = int_of_float s.max_learnts
let set_inprocess s b = s.simplify_enabled <- b
let set_simplify_config s cfg = s.simplify_cfg <- cfg
let set_simplify_wrapper s f = s.simplify_wrapper <- f

let num_watch_entries s =
  let total = ref 0 in
  for l = 0 to (2 * s.nvars) - 1 do
    total := !total + Vec.size s.watches.(l)
  done;
  !total

let num_dead_watches s =
  let dead = ref 0 in
  for l = 0 to (2 * s.nvars) - 1 do
    Vec.iter (fun c -> if c.deleted then incr dead) s.watches.(l)
  done;
  !dead

let grow_array a n dummy =
  let old = Array.length a in
  if n <= old then a
  else begin
    let b = Array.make (max n (max 16 (2 * old))) dummy in
    Array.blit a 0 b 0 old;
    b
  end

(* ----- activity heap (max-heap keyed by var activity) ----- *)

let heap_less s v w = s.activity.(v) > s.activity.(w)

let heap_swap s i j =
  let v = s.heap.(i) and w = s.heap.(j) in
  s.heap.(i) <- w;
  s.heap.(j) <- v;
  s.heap_pos.(w) <- i;
  s.heap_pos.(v) <- j

let rec heap_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_less s s.heap.(i) s.heap.(parent) then begin
      heap_swap s i parent;
      heap_up s parent
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && heap_less s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_size && heap_less s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_up s (s.heap_size - 1)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_size > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_size);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  v

(* ----- variables ----- *)

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assigns <- grow_array s.assigns (v + 1) (-1);
  s.level <- grow_array s.level (v + 1) 0;
  s.reason <- grow_array s.reason (v + 1) dummy_clause;
  s.activity <- grow_array s.activity (v + 1) 0.;
  s.phase <- grow_array s.phase (v + 1) false;
  s.heap <- grow_array s.heap (v + 1) 0;
  s.heap_pos <- grow_array s.heap_pos (v + 1) (-1);
  s.seen <- grow_array s.seen (v + 1) false;
  s.frozen <- grow_array s.frozen (v + 1) false;
  s.eliminated <- grow_array s.eliminated (v + 1) false;
  (* decision levels range over 0..nvars *)
  s.lvl_stamp <- grow_array s.lvl_stamp (v + 2) 0;
  if Array.length s.watches < 2 * (v + 1) then begin
    let old = Array.length s.watches in
    let w =
      Array.init
        (max (2 * (v + 1)) (2 * old))
        (fun i ->
          if i < old then s.watches.(i) else Vec.create ~dummy:dummy_clause ())
    in
    s.watches <- w
  end;
  s.assigns.(v) <- -1;
  s.heap_pos.(v) <- -1;
  heap_insert s v;
  v

(* value of a literal: -1 unassigned, 0 false, 1 true *)
let lvalue s l =
  let a = s.assigns.(var_of l) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level s = Vec.size s.trail_lim

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let var_decay s = s.var_inc <- s.var_inc *. (1. /. 0.95)

(* Glue (LBD): number of distinct non-root decision levels among the
   literals.  Computed while the literals are still assigned. *)
let compute_lbd s lits =
  s.stamp <- s.stamp + 1;
  let n = ref 0 in
  Array.iter
    (fun l ->
      let lv = s.level.(var_of l) in
      if lv > 0 && s.lvl_stamp.(lv) <> s.stamp then begin
        s.lvl_stamp.(lv) <- s.stamp;
        incr n
      end)
    lits;
  !n

let cla_bump s c =
  c.act <- c.act +. s.cla_inc;
  if c.act > 1e20 then begin
    Vec.iter (fun c -> c.act <- c.act *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay s = s.cla_inc <- s.cla_inc *. (1. /. 0.999)

let enqueue s l reason =
  let v = var_of l in
  s.assigns.(v) <- (if is_pos l then 1 else 0);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l

let watch s l c = Vec.push s.watches.(l) c

(* ----- propagation ----- *)

let propagate s =
  let conflict = ref dummy_clause in
  while !conflict == dummy_clause && s.qhead < Vec.size s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let false_lit = negate p in
    let ws = s.watches.(false_lit) in
    let n = Vec.size ws in
    let j = ref 0 in
    let i = ref 0 in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      if not c.deleted then begin
        (* make sure the false literal is at position 1 *)
        if c.lits.(0) = false_lit then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- false_lit
        end;
        let first = c.lits.(0) in
        if lvalue s first = 1 then begin
          Vec.set ws !j c;
          incr j
        end
        else begin
          (* look for a new literal to watch *)
          let len = Array.length c.lits in
          let rec find k = if k >= len then -1 else if lvalue s c.lits.(k) <> 0 then k else find (k + 1) in
          let k = find 2 in
          if k >= 0 then begin
            c.lits.(1) <- c.lits.(k);
            c.lits.(k) <- false_lit;
            watch s c.lits.(1) c
          end
          else begin
            (* unit or conflicting *)
            Vec.set ws !j c;
            incr j;
            if lvalue s first = 0 then begin
              conflict := c;
              s.qhead <- Vec.size s.trail;
              (* keep the remaining watches *)
              while !i < n do
                Vec.set ws !j (Vec.get ws !i);
                incr j;
                incr i
              done
            end
            else enqueue s first c
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !conflict

(* ----- backtracking ----- *)

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = var_of l in
      s.phase.(v) <- is_pos l;
      s.assigns.(v) <- -1;
      s.reason.(v) <- dummy_clause;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- bound
  end

(* ----- conflict analysis (first UIP) ----- *)

let analyze s confl =
  let out = Vec.create ~dummy:0 () in
  Vec.push out 0;
  (* slot for the asserting literal *)
  let to_clear = Vec.create ~dummy:0 () in
  let path = ref 0 in
  let p = ref (-1) in
  let index = ref (Vec.size s.trail - 1) in
  let c = ref confl in
  let continue = ref true in
  while !continue do
    if !c.learnt then begin
      cla_bump s !c;
      (* tier bookkeeping: the clause is useful right now *)
      !c.used <- s.reduce_dbs;
      let glue = compute_lbd s !c.lits in
      if glue < !c.lbd then !c.lbd <- glue
    end;
    let start = if !p < 0 then 0 else 1 in
    for k = start to Array.length !c.lits - 1 do
      let q = !c.lits.(k) in
      let v = var_of q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        var_bump s v;
        s.seen.(v) <- true;
        Vec.push to_clear v;
        if s.level.(v) >= decision_level s then incr path
        else Vec.push out q
      end
    done;
    (* next literal on the trail to resolve on *)
    while not s.seen.(var_of (Vec.get s.trail !index)) do
      decr index
    done;
    p := Vec.get s.trail !index;
    decr index;
    s.seen.(var_of !p) <- false;
    decr path;
    if !path > 0 then c := s.reason.(var_of !p) else continue := false
  done;
  Vec.set out 0 (negate !p);
  (* basic clause minimization: drop literals implied by their reason *)
  let redundant q =
    let r = s.reason.(var_of q) in
    r != dummy_clause
    && Array.for_all
         (fun x ->
           var_of x = var_of q || s.seen.(var_of x) || s.level.(var_of x) = 0)
         r.lits
  in
  let minimized = Vec.create ~dummy:0 () in
  Vec.push minimized (Vec.get out 0);
  for i = 1 to Vec.size out - 1 do
    let q = Vec.get out i in
    if not (redundant q) then Vec.push minimized q
  done;
  Vec.iter (fun v -> s.seen.(v) <- false) to_clear;
  (* compute backtrack level; move max-level literal to slot 1 *)
  let bt =
    if Vec.size minimized = 1 then 0
    else begin
      let max_i = ref 1 in
      for i = 2 to Vec.size minimized - 1 do
        if
          s.level.(var_of (Vec.get minimized i))
          > s.level.(var_of (Vec.get minimized !max_i))
        then max_i := i
      done;
      let tmp = Vec.get minimized 1 in
      Vec.set minimized 1 (Vec.get minimized !max_i);
      Vec.set minimized !max_i tmp;
      s.level.(var_of (Vec.get minimized 1))
    end
  in
  (Array.of_list (Vec.to_list minimized), bt)

(* ----- learnt database reduction ----- *)

let locked s c =
  Array.length c.lits > 0
  &&
  let v = var_of c.lits.(0) in
  s.assigns.(v) >= 0 && s.reason.(v) == c

(* Drop deleted clauses from every watch list.  Without this sweep a
   deleted clause stays watched until the watched literal happens to
   propagate, so long incremental runs scan ever more dead entries. *)
let sweep_watches s =
  for l = 0 to (2 * s.nvars) - 1 do
    let ws = s.watches.(l) in
    let n = Vec.size ws in
    let j = ref 0 in
    for i = 0 to n - 1 do
      let c = Vec.get ws i in
      if not c.deleted then begin
        if !j < i then Vec.set ws !j c;
        incr j
      end
    done;
    Vec.shrink ws !j
  done

(* LBD tier boundaries: learnts with glue <= core_lbd are kept for the
   lifetime of the solver; glue <= tier2_lbd survive while recently
   used in conflict analysis; the rest (the local tier) compete by
   activity and the worst half ages out. *)
let core_lbd = 3
let tier2_lbd = 6

let reduce_db s =
  s.reduce_dbs <- s.reduce_dbs + 1;
  let keep = Vec.create ~dummy:dummy_clause () in
  let local = Vec.create ~dummy:dummy_clause () in
  Vec.iter
    (fun c ->
      if locked s c || Array.length c.lits <= 2 || c.lbd <= core_lbd then
        Vec.push keep c
      else if c.lbd <= tier2_lbd && c.used + 2 >= s.reduce_dbs then
        Vec.push keep c
      else Vec.push local c)
    s.learnts;
  Vec.sort (fun a b -> compare a.act b.act) local;
  let n = Vec.size local in
  let limit = n / 2 in
  for i = 0 to n - 1 do
    let c = Vec.get local i in
    if i < limit then begin
      if c.lbd <= core_lbd then s.core_deleted <- s.core_deleted + 1;
      c.deleted <- true;
      log_event s (fun p -> Proof.log_delete p c.lits)
    end
    else Vec.push keep c
  done;
  Vec.clear s.learnts;
  Vec.iter (fun c -> Vec.push s.learnts c) keep;
  sweep_watches s;
  (* let the learnt budget breathe: geometric growth, with a floor above
     the survivor count so the trigger cannot re-fire on the very next
     conflict (the old one-shot sizing thrashed reduce_db on long runs) *)
  s.max_learnts <-
    Float.max (s.max_learnts *. 1.1)
      ((float_of_int (Vec.size s.learnts) *. 1.25) +. 128.)

(* ----- variable reintroduction (undoing elimination) ----- *)

(* Restore an eliminated variable: the clauses removed with it re-enter
   the live set so later clauses or assumptions may mention it again.
   This is proof-silent by design — elimination never logged Delete
   events for these clauses, so the DRUP checker still holds them and
   re-adding them needs no (non-RUP) Add events.  Stored clauses may
   mention variables eliminated later; those come back first. *)
let rec reintroduce s v =
  if s.eliminated.(v) then begin
    s.eliminated.(v) <- false;
    if s.assigns.(v) < 0 then heap_insert s v;
    let mine = ref [] in
    let kept = Vec.create ~dummy:(0, [||]) () in
    Vec.iter
      (fun ((w, css) as e) ->
        if w = v then mine := css :: !mine else Vec.push kept e)
      s.elim_stack;
    Vec.clear s.elim_stack;
    Vec.iter (fun e -> Vec.push s.elim_stack e) kept;
    List.iter
      (fun css ->
        Array.iter
          (fun lits ->
            Array.iter (fun l -> reintroduce s (var_of l)) lits;
            attach_restored s lits)
          css)
      !mine
  end

and attach_restored s lits =
  if s.ok && not (Array.exists (fun l -> lvalue s l = 1) lits) then begin
    let live = List.filter (fun l -> lvalue s l <> 0) (Array.to_list lits) in
    match live with
    | [] ->
      (* every literal is root-false: the empty clause is RUP *)
      s.ok <- false;
      log_event s (fun p -> Proof.log_add p [||])
    | [ l ] ->
      enqueue s l dummy_clause;
      if propagate s != dummy_clause then begin
        s.ok <- false;
        log_event s (fun p -> Proof.log_add p [||])
      end
    | l0 :: l1 :: _ ->
      let c =
        {
          lits = Array.of_list live;
          act = 0.;
          learnt = false;
          deleted = false;
          lbd = 0;
          used = 0;
        }
      in
      Vec.push s.clauses c;
      watch s l0 c;
      watch s l1 c
  end

(* ----- clause addition ----- *)

let add_clause s lits =
  if s.ok then begin
    if decision_level s > 0 then
      invalid_arg "Solver.add_clause: only legal at decision level 0";
    List.iter
      (fun l ->
        let v = var_of l in
        if s.eliminated.(v) then begin
          (* the caller still references v from outside: reintroduce it
             and freeze it, so incremental encodings (BMC frames naming
             last frame's boundary vars) don't churn through repeated
             eliminate/reintroduce cycles that pile up resolvents *)
          reintroduce s v;
          s.frozen.(v) <- true
        end)
      lits;
    (* the axiom is the clause as given; the simplifications below are
       the solver's own business and stay out of the proof *)
    log_event s (fun p -> Proof.log_input p (Array.of_list lits));
    (* dedup and detect tautology / satisfied / falsified-at-0 literals;
       sorting puts l and (negate l) adjacent, so one pass suffices *)
    let lits = List.sort_uniq compare lits in
    let rec complementary = function
      | a :: (b :: _ as rest) -> a lxor b = 1 || complementary rest
      | _ -> false
    in
    let tautology =
      complementary lits || List.exists (fun l -> lvalue s l = 1) lits
    in
    if s.ok && not tautology then begin
      let lits = List.filter (fun l -> lvalue s l <> 0) lits in
      match lits with
      | [] ->
        s.ok <- false;
        log_event s (fun p -> Proof.log_add p [||])
      | [ l ] ->
        enqueue s l dummy_clause;
        if propagate s != dummy_clause then begin
          s.ok <- false;
          log_event s (fun p -> Proof.log_add p [||])
        end
      | l0 :: l1 :: _ ->
        let c =
          {
            lits = Array.of_list lits;
            act = 0.;
            learnt = false;
            deleted = false;
            lbd = 0;
            used = 0;
          }
        in
        Vec.push s.clauses c;
        s.clauses_since_simplify <- s.clauses_since_simplify + 1;
        watch s l0 c;
        watch s l1 c
    end
  end

let record_learnt s lits lbd =
  (* every learnt clause is a resolvent, hence RUP against the clauses
     live at this point — exactly what the Drup checker verifies *)
  log_event s (fun p -> Proof.log_add p lits);
  if Array.length lits = 1 then enqueue s lits.(0) dummy_clause
  else begin
    let c =
      { lits; act = 0.; learnt = true; deleted = false; lbd; used = s.reduce_dbs }
    in
    Vec.push s.learnts c;
    watch s lits.(0) c;
    watch s lits.(1) c;
    cla_bump s c;
    enqueue s lits.(0) c
  end

(* ----- inprocessing ----- *)

let run_simplify s =
  if s.ok && decision_level s = 0 then begin
    s.simplifies <- s.simplifies + 1;
    let records = ref [] in
    Vec.iter
      (fun c -> if not c.deleted then records := c :: !records)
      s.clauses;
    let records = Array.of_list (List.rev !records) in
    let r =
      Simplify.run ~config:s.simplify_cfg ~nvars:s.nvars
        ~frozen:(fun v -> s.frozen.(v) || s.eliminated.(v))
        ~value:(lvalue s)
        ~log_add:(fun lits -> log_event s (fun p -> Proof.log_add p lits))
        ~log_delete:(fun lits -> log_event s (fun p -> Proof.log_delete p lits))
        (Array.to_list (Array.map (fun c -> c.lits) records))
    in
    s.subsumed <- s.subsumed + r.Simplify.n_subsumed;
    s.strengthened <- s.strengthened + r.Simplify.n_strengthened;
    s.probed_units <- s.probed_units + r.Simplify.n_probed;
    s.eliminated_vars <- s.eliminated_vars + List.length r.Simplify.eliminated;
    (* swap in the simplified problem clause set (proof-wise these are
       the same clauses: all additions/removals were logged above).
       Untouched clauses keep their original record — and original
       watch pair — so a pass that changes nothing perturbs nothing. *)
    let kept = Array.make (Array.length records) false in
    Vec.clear s.clauses;
    List.iter
      (function
        | Simplify.Kept i ->
          kept.(i) <- true;
          Vec.push s.clauses records.(i)
        | Simplify.Fresh lits ->
          let c =
            { lits; act = 0.; learnt = false; deleted = false; lbd = 0; used = 0 }
          in
          Vec.push s.clauses c;
          watch s lits.(0) c;
          watch s lits.(1) c)
      r.Simplify.clauses;
    Array.iteri (fun i c -> if not kept.(i) then c.deleted <- true) records;
    (* eliminated variables: record for model reconstruction, and drop
       any learnt that mentions one (it would otherwise keep the
       variable alive in the watch structures) *)
    if r.Simplify.eliminated <> [] then begin
      List.iter
        (fun (v, css) ->
          s.eliminated.(v) <- true;
          Vec.push s.elim_stack (v, css))
        r.Simplify.eliminated;
      let keep = Vec.create ~dummy:dummy_clause () in
      Vec.iter
        (fun c ->
          if Array.exists (fun l -> s.eliminated.(var_of l)) c.lits then begin
            c.deleted <- true;
            log_event s (fun p -> Proof.log_delete p c.lits)
          end
          else Vec.push keep c)
        s.learnts;
      Vec.clear s.learnts;
      Vec.iter (fun c -> Vec.push s.learnts c) keep
    end;
    sweep_watches s;
    if r.Simplify.contradiction then s.ok <- false
    else
      (* fold the derived root units into the trail *)
      List.iter
        (fun l ->
          if s.ok then
            match lvalue s l with
            | 1 -> ()
            | 0 ->
              s.ok <- false;
              log_event s (fun p -> Proof.log_add p [||])
            | _ ->
              enqueue s l dummy_clause;
              if propagate s != dummy_clause then begin
                s.ok <- false;
                log_event s (fun p -> Proof.log_add p [||])
              end)
        r.Simplify.units;
    s.clauses_since_simplify <- 0
  end

(* Run a pass when the conflict schedule or clause-database growth says
   so; called at solve entry and restart boundaries (decision level 0).
   The wrapper hook lets the observability layer time the pass without
   lib/sat depending on lib/obs. *)
let maybe_simplify s =
  if
    s.simplify_enabled && s.ok
    && decision_level s = 0
    && (s.conflicts >= s.next_simplify
       || s.clauses_since_simplify > (Vec.size s.clauses / 3) + 256)
  then begin
    s.simplify_wrapper (fun () -> run_simplify s);
    s.simplify_interval <- s.simplify_interval + (s.simplify_interval / 2);
    s.next_simplify <- s.conflicts + s.simplify_interval
  end

let simplify_now s =
  if decision_level s > 0 then
    invalid_arg "Solver.simplify_now: only legal at decision level 0";
  s.simplify_wrapper (fun () -> run_simplify s)

let freeze s v = s.frozen.(v) <- true

(* ----- search ----- *)

let luby y x =
  (* Finite subsequences of the Luby sequence *)
  let rec go size seq x =
    if size - 1 = x then (seq, x)
    else if size - 1 > x then
      let size = (size - 1) / 2 in
      go size (seq - 1) (x mod size)
    else (seq, x)
  in
  let rec outer size seq =
    if size < x + 1 then outer ((2 * size) + 1) (seq + 1) else (size, seq)
  in
  let size, seq = outer 1 0 in
  let seq, _ = go size seq x in
  y ** float_of_int seq

exception Found_unsat
exception Found_sat

let pick_branch s =
  let rec go () =
    if s.heap_size = 0 then -1
    else begin
      let v = heap_pop s in
      if s.assigns.(v) < 0 && not s.eliminated.(v) then v else go ()
    end
  in
  go ()

(* [assumptions] is an array snapshot: [search] indexes it by decision
   level on every decision, which was O(|assumptions|) as a list. *)
let search s assumptions conflict_budget =
  let conflicts_here = ref 0 in
  let rec loop () =
    let confl = propagate s in
    if confl != dummy_clause then begin
      s.conflicts <- s.conflicts + 1;
      incr conflicts_here;
      if decision_level s = 0 then begin
        s.ok <- false;
        log_event s (fun p -> Proof.log_add p [||]);
        raise Found_unsat
      end;
      let learnt, bt = analyze s confl in
      (* glue while every literal is still assigned at its true level *)
      let lbd = compute_lbd s learnt in
      cancel_until s bt;
      record_learnt s learnt lbd;
      var_decay s;
      cla_decay s;
      if float_of_int (Vec.size s.learnts) > s.max_learnts then reduce_db s;
      loop ()
    end
    else if
      conflict_budget >= 0 && !conflicts_here >= conflict_budget
    then begin
      cancel_until s 0;
      `Restart
    end
    else begin
      (* establish assumptions as pseudo-decisions *)
      let dl = decision_level s in
      if dl < Array.length assumptions then begin
        let a = assumptions.(dl) in
        match lvalue s a with
        | 1 ->
          Vec.push s.trail_lim (Vec.size s.trail);
          loop ()
        | 0 -> raise Found_unsat
        | _ ->
          Vec.push s.trail_lim (Vec.size s.trail);
          enqueue s a dummy_clause;
          loop ()
      end
      else begin
        let v = pick_branch s in
        if v < 0 then raise Found_sat
        else begin
          s.decisions <- s.decisions + 1;
          Vec.push s.trail_lim (Vec.size s.trail);
          enqueue s (if s.phase.(v) then pos v else neg_of v) dummy_clause;
          loop ()
        end
      end
    end
  in
  loop ()

let value s l =
  if not s.last_solve_sat then
    invalid_arg "Solver.value: no model (last solve did not return Sat)";
  let v = var_of l in
  let b = if s.assigns.(v) >= 0 then s.assigns.(v) = 1 else s.phase.(v) in
  let b = if s.corrupt_model then not b else b in
  if is_pos l then b else not b

let model s =
  if not s.last_solve_sat then
    invalid_arg "Solver.model: no model (last solve did not return Sat)";
  Array.init s.nvars (fun v -> value s (pos v))

(* Certify a Sat answer: the reported model must satisfy every live
   problem clause, agree with every top-level assignment, and satisfy
   every assumption.  The top-level check is what covers clauses
   dropped or strengthened at add time: a clause is only dropped when
   a top-level assignment satisfies it (unit inputs in particular are
   folded into the top level and never stored), so a model honouring
   the top level satisfies the dropped clauses too. *)
let check_model ?(assumptions = []) s =
  if not s.last_solve_sat then
    Error "no model: last solve did not return Sat"
  else begin
    let root_end =
      if Vec.size s.trail_lim > 0 then Vec.get s.trail_lim 0
      else Vec.size s.trail
    in
    let bad_roots = ref 0 in
    for i = 0 to root_end - 1 do
      if not (value s (Vec.get s.trail i)) then incr bad_roots
    done;
    let bad = ref 0 in
    Vec.iter
      (fun c ->
        if (not c.deleted) && not (Array.exists (fun l -> value s l) c.lits)
        then incr bad)
      s.clauses;
    if !bad_roots > 0 then
      Error
        (Printf.sprintf "model contradicts %d top-level assignment(s)"
           !bad_roots)
    else if !bad > 0 then
      Error (Printf.sprintf "model falsifies %d problem clause(s)" !bad)
    else
      match List.filter (fun a -> not (value s a)) assumptions with
      | [] -> Ok ()
      | falsified ->
        Error
          (Printf.sprintf "model falsifies %d assumption(s)"
             (List.length falsified))
  end

(* With DIAMBOUND_CHECK_MODEL=1 every genuine Sat answer is
   cross-checked before it leaves [solve] (and before any armed fault
   corrupts the report).  A failure here is a solver bug, not an
   injected fault, so it raises instead of degrading. *)
let debug_check_model =
  lazy
    (match Sys.getenv_opt "DIAMBOUND_CHECK_MODEL" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

(* Extend a model over eliminated variables: replay the elimination
   stack backwards, flipping each variable's saved phase whenever one
   of the clauses stored at its elimination is not yet satisfied.  The
   stored clauses only mention variables that are live — or eliminated
   later, hence already reconstructed — at that stack depth, so a
   single reverse sweep fixes everything. *)
let extend_model s =
  let lit_true l =
    let w = var_of l in
    let b = if s.assigns.(w) >= 0 then s.assigns.(w) = 1 else s.phase.(w) in
    if is_pos l then b else not b
  in
  for i = Vec.size s.elim_stack - 1 downto 0 do
    let v, css = Vec.get s.elim_stack i in
    if s.eliminated.(v) then
      Array.iter
        (fun lits ->
          if not (Array.exists lit_true lits) then
            Array.iter
              (fun l -> if var_of l = v then s.phase.(v) <- is_pos l)
              lits)
        css
  done

let solve ?(assumptions = []) ?max_conflicts ?max_propagations ?should_stop s =
  s.last_solve_sat <- false;
  s.corrupt_model <- false;
  (* assumption variables are pinned: they may never be eliminated, and
     any that already were must be restored before this solve *)
  List.iter
    (fun a ->
      let v = var_of a in
      s.frozen.(v) <- true;
      if s.eliminated.(v) then reintroduce s v)
    assumptions;
  let assumptions_a = Array.of_list assumptions in
  let final = ref (if s.ok then Unknown else Unsat) in
  if s.ok then begin
    cancel_until s 0;
    s.max_learnts <-
      max s.max_learnts (float_of_int (Vec.size s.clauses) /. 3.);
    (* per-call allowances, counted as deltas against the lifetime
       statistics and checked only at restart boundaries so the search
       loop stays clean *)
    let conflicts0 = s.conflicts in
    let propagations0 = s.propagations in
    let out_of_budget () =
      (match max_conflicts with
      | Some m -> s.conflicts - conflicts0 >= m
      | None -> false)
      || (match max_propagations with
         | Some m -> s.propagations - propagations0 >= m
         | None -> false)
      || match should_stop with Some f -> f () | None -> false
    in
    (* default Unknown: [run] only returns normally on exhaustion *)
    let result = ref Unknown in
    (try
       maybe_simplify s;
       if not s.ok then raise Found_unsat;
       let restart = ref 0 in
       let rec run () =
         if out_of_budget () then ()
         else begin
           let luby_budget = int_of_float (100. *. luby 2. !restart) in
           let budget =
             (* never overshoot a conflict allowance by a whole Luby
                window: cap the inner budget at what remains *)
             match max_conflicts with
             | Some m -> min luby_budget (max 1 (m - (s.conflicts - conflicts0)))
             | None -> luby_budget
           in
           match search s assumptions_a budget with
           | `Restart ->
             s.restarts <- s.restarts + 1;
             incr restart;
             maybe_simplify s;
             if not s.ok then raise Found_unsat;
             run ()
         end
       in
       run ()
     with
    | Found_sat -> result := Sat
    | Found_unsat -> result := Unsat);
    if !result = Sat then begin
      (* save the model in the phase array, then release decisions *)
      for v = 0 to s.nvars - 1 do
        if s.assigns.(v) >= 0 then s.phase.(v) <- s.assigns.(v) = 1
      done;
      extend_model s
    end;
    cancel_until s 0;
    final := !result
  end;
  s.last_solve_sat <- !final = Sat;
  if s.last_solve_sat && Lazy.force debug_check_model then begin
    match check_model ~assumptions s with
    | Ok () -> ()
    | Error msg -> failwith ("DIAMBOUND_CHECK_MODEL: " ^ msg)
  end;
  (* fault injection happens at the reporting boundary, after the
     debug cross-check of the genuine answer *)
  (match Chaos.instance_fault s.chaos with
  | Some Chaos.Flip_to_unsat when !final = Sat ->
    Chaos.instance_note s.chaos;
    s.last_solve_sat <- false;
    final := Unsat
  | Some Chaos.Flip_to_sat when !final = Unsat ->
    Chaos.instance_note s.chaos;
    (* the phase store becomes the "model": arbitrary garbage *)
    s.last_solve_sat <- true;
    final := Sat
  | Some Chaos.Corrupt_model when !final = Sat ->
    Chaos.instance_note s.chaos;
    s.corrupt_model <- true
  | _ -> ());
  !final

let pp_stats ppf s =
  Format.fprintf ppf
    "vars=%d clauses=%d learnts=%d conflicts=%d decisions=%d propagations=%d \
     restarts=%d reduce_dbs=%d simplifies=%d subsumed=%d strengthened=%d \
     eliminated=%d probed=%d"
    s.nvars (Vec.size s.clauses) (Vec.size s.learnts) s.conflicts s.decisions
    s.propagations s.restarts s.reduce_dbs s.simplifies s.subsumed
    s.strengthened s.eliminated_vars s.probed_units
