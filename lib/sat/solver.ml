type lit = int

let pos v = 2 * v
let neg_of v = (2 * v) + 1
let negate l = l lxor 1
let var_of l = l lsr 1
let is_pos l = l land 1 = 0

type result = Sat | Unsat | Unknown

type clause = {
  mutable lits : int array;
  mutable act : float;
  learnt : bool;
  mutable deleted : bool;
}

let dummy_clause = { lits = [||]; act = 0.; learnt = false; deleted = true }

type t = {
  mutable nvars : int;
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  mutable watches : clause Vec.t array; (* per literal *)
  mutable assigns : int array; (* per var: -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : clause array; (* dummy_clause when none *)
  mutable activity : float array;
  mutable phase : bool array;
  mutable heap : int array; (* binary max-heap of vars by activity *)
  mutable heap_size : int;
  mutable heap_pos : int array; (* var -> heap index, -1 if absent *)
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  mutable seen : bool array;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool;
  mutable max_learnts : float;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable reduce_dbs : int;
  mutable last_solve_sat : bool;
  mutable proof : Proof.t option;
  (* Chaos.Corrupt_model negates the *reported* model only: the flag is
     consulted by [value], never written into [assigns]/[phase], so the
     incremental search state stays intact across injections *)
  mutable corrupt_model : bool;
  (* fault-injection config captured at creation: concurrent solvers
     each consult their own instance (see Chaos) *)
  chaos : Chaos.instance;
}

let create () =
  {
    nvars = 0;
    clauses = Vec.create ~dummy:dummy_clause ();
    learnts = Vec.create ~dummy:dummy_clause ();
    watches = [||];
    assigns = [||];
    level = [||];
    reason = [||];
    activity = [||];
    phase = [||];
    heap = [||];
    heap_size = 0;
    heap_pos = [||];
    trail = Vec.create ~dummy:0 ();
    trail_lim = Vec.create ~dummy:0 ();
    qhead = 0;
    seen = [||];
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
    max_learnts = 4000.;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    reduce_dbs = 0;
    last_solve_sat = false;
    proof = None;
    corrupt_model = false;
    chaos = Chaos.capture ();
  }

let set_proof s p = s.proof <- Some p
let proof s = s.proof

(* Append a proof event.  A [Drop_proof] fault silently discards the
   event (simulating a lost or truncated proof file) but counts the
   injection so tests can assert the fault actually fired. *)
let log_event s f =
  match s.proof with
  | None -> ()
  | Some p ->
    if Chaos.instance_fault s.chaos = Some Chaos.Drop_proof then
      Chaos.instance_note s.chaos
    else f p

let num_vars s = s.nvars
let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations
let num_restarts s = s.restarts
let num_reduce_dbs s = s.reduce_dbs
let num_clauses s = Vec.size s.clauses
let num_learnts s = Vec.size s.learnts
let set_max_learnts s n = s.max_learnts <- float_of_int n

let num_watch_entries s =
  let total = ref 0 in
  for l = 0 to (2 * s.nvars) - 1 do
    total := !total + Vec.size s.watches.(l)
  done;
  !total

let num_dead_watches s =
  let dead = ref 0 in
  for l = 0 to (2 * s.nvars) - 1 do
    Vec.iter (fun c -> if c.deleted then incr dead) s.watches.(l)
  done;
  !dead

let grow_array a n dummy =
  let old = Array.length a in
  if n <= old then a
  else begin
    let b = Array.make (max n (max 16 (2 * old))) dummy in
    Array.blit a 0 b 0 old;
    b
  end

(* ----- activity heap (max-heap keyed by var activity) ----- *)

let heap_less s v w = s.activity.(v) > s.activity.(w)

let heap_swap s i j =
  let v = s.heap.(i) and w = s.heap.(j) in
  s.heap.(i) <- w;
  s.heap.(j) <- v;
  s.heap_pos.(w) <- i;
  s.heap_pos.(v) <- j

let rec heap_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_less s s.heap.(i) s.heap.(parent) then begin
      heap_swap s i parent;
      heap_up s parent
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && heap_less s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_size && heap_less s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_up s (s.heap_size - 1)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_size > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_size);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  v

(* ----- variables ----- *)

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assigns <- grow_array s.assigns (v + 1) (-1);
  s.level <- grow_array s.level (v + 1) 0;
  s.reason <- grow_array s.reason (v + 1) dummy_clause;
  s.activity <- grow_array s.activity (v + 1) 0.;
  s.phase <- grow_array s.phase (v + 1) false;
  s.heap <- grow_array s.heap (v + 1) 0;
  s.heap_pos <- grow_array s.heap_pos (v + 1) (-1);
  s.seen <- grow_array s.seen (v + 1) false;
  if Array.length s.watches < 2 * (v + 1) then begin
    let old = Array.length s.watches in
    let w =
      Array.init
        (max (2 * (v + 1)) (2 * old))
        (fun i ->
          if i < old then s.watches.(i) else Vec.create ~dummy:dummy_clause ())
    in
    s.watches <- w
  end;
  s.assigns.(v) <- -1;
  s.heap_pos.(v) <- -1;
  heap_insert s v;
  v

(* value of a literal: -1 unassigned, 0 false, 1 true *)
let lvalue s l =
  let a = s.assigns.(var_of l) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level s = Vec.size s.trail_lim

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let var_decay s = s.var_inc <- s.var_inc *. (1. /. 0.95)

let cla_bump s c =
  c.act <- c.act +. s.cla_inc;
  if c.act > 1e20 then begin
    Vec.iter (fun c -> c.act <- c.act *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay s = s.cla_inc <- s.cla_inc *. (1. /. 0.999)

let enqueue s l reason =
  let v = var_of l in
  s.assigns.(v) <- (if is_pos l then 1 else 0);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l

let watch s l c = Vec.push s.watches.(l) c

(* ----- propagation ----- *)

let propagate s =
  let conflict = ref dummy_clause in
  while !conflict == dummy_clause && s.qhead < Vec.size s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let false_lit = negate p in
    let ws = s.watches.(false_lit) in
    let n = Vec.size ws in
    let j = ref 0 in
    let i = ref 0 in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      if not c.deleted then begin
        (* make sure the false literal is at position 1 *)
        if c.lits.(0) = false_lit then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- false_lit
        end;
        let first = c.lits.(0) in
        if lvalue s first = 1 then begin
          Vec.set ws !j c;
          incr j
        end
        else begin
          (* look for a new literal to watch *)
          let len = Array.length c.lits in
          let rec find k = if k >= len then -1 else if lvalue s c.lits.(k) <> 0 then k else find (k + 1) in
          let k = find 2 in
          if k >= 0 then begin
            c.lits.(1) <- c.lits.(k);
            c.lits.(k) <- false_lit;
            watch s c.lits.(1) c
          end
          else begin
            (* unit or conflicting *)
            Vec.set ws !j c;
            incr j;
            if lvalue s first = 0 then begin
              conflict := c;
              s.qhead <- Vec.size s.trail;
              (* keep the remaining watches *)
              while !i < n do
                Vec.set ws !j (Vec.get ws !i);
                incr j;
                incr i
              done
            end
            else enqueue s first c
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !conflict

(* ----- backtracking ----- *)

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = var_of l in
      s.phase.(v) <- is_pos l;
      s.assigns.(v) <- -1;
      s.reason.(v) <- dummy_clause;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- bound
  end

(* ----- conflict analysis (first UIP) ----- *)

let analyze s confl =
  let out = Vec.create ~dummy:0 () in
  Vec.push out 0;
  (* slot for the asserting literal *)
  let to_clear = Vec.create ~dummy:0 () in
  let path = ref 0 in
  let p = ref (-1) in
  let index = ref (Vec.size s.trail - 1) in
  let c = ref confl in
  let continue = ref true in
  while !continue do
    if !c.learnt then cla_bump s !c;
    let start = if !p < 0 then 0 else 1 in
    for k = start to Array.length !c.lits - 1 do
      let q = !c.lits.(k) in
      let v = var_of q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        var_bump s v;
        s.seen.(v) <- true;
        Vec.push to_clear v;
        if s.level.(v) >= decision_level s then incr path
        else Vec.push out q
      end
    done;
    (* next literal on the trail to resolve on *)
    while not s.seen.(var_of (Vec.get s.trail !index)) do
      decr index
    done;
    p := Vec.get s.trail !index;
    decr index;
    s.seen.(var_of !p) <- false;
    decr path;
    if !path > 0 then c := s.reason.(var_of !p) else continue := false
  done;
  Vec.set out 0 (negate !p);
  (* basic clause minimization: drop literals implied by their reason *)
  let redundant q =
    let r = s.reason.(var_of q) in
    r != dummy_clause
    && Array.for_all
         (fun x ->
           var_of x = var_of q || s.seen.(var_of x) || s.level.(var_of x) = 0)
         r.lits
  in
  let minimized = Vec.create ~dummy:0 () in
  Vec.push minimized (Vec.get out 0);
  for i = 1 to Vec.size out - 1 do
    let q = Vec.get out i in
    if not (redundant q) then Vec.push minimized q
  done;
  Vec.iter (fun v -> s.seen.(v) <- false) to_clear;
  (* compute backtrack level; move max-level literal to slot 1 *)
  let bt =
    if Vec.size minimized = 1 then 0
    else begin
      let max_i = ref 1 in
      for i = 2 to Vec.size minimized - 1 do
        if
          s.level.(var_of (Vec.get minimized i))
          > s.level.(var_of (Vec.get minimized !max_i))
        then max_i := i
      done;
      let tmp = Vec.get minimized 1 in
      Vec.set minimized 1 (Vec.get minimized !max_i);
      Vec.set minimized !max_i tmp;
      s.level.(var_of (Vec.get minimized 1))
    end
  in
  (Array.of_list (Vec.to_list minimized), bt)

(* ----- learnt database reduction ----- *)

let locked s c =
  Array.length c.lits > 0
  &&
  let v = var_of c.lits.(0) in
  s.assigns.(v) >= 0 && s.reason.(v) == c

(* Drop deleted clauses from every watch list.  Without this sweep a
   deleted clause stays watched until the watched literal happens to
   propagate, so long incremental runs scan ever more dead entries. *)
let sweep_watches s =
  for l = 0 to (2 * s.nvars) - 1 do
    let ws = s.watches.(l) in
    let n = Vec.size ws in
    let j = ref 0 in
    for i = 0 to n - 1 do
      let c = Vec.get ws i in
      if not c.deleted then begin
        if !j < i then Vec.set ws !j c;
        incr j
      end
    done;
    Vec.shrink ws !j
  done

let reduce_db s =
  s.reduce_dbs <- s.reduce_dbs + 1;
  Vec.sort (fun a b -> compare a.act b.act) s.learnts;
  let n = Vec.size s.learnts in
  let keep = Vec.create ~dummy:dummy_clause () in
  let limit = n / 2 in
  for i = 0 to n - 1 do
    let c = Vec.get s.learnts i in
    if i < limit && (not (locked s c)) && Array.length c.lits > 2 then begin
      c.deleted <- true;
      log_event s (fun p -> Proof.log_delete p c.lits)
    end
    else Vec.push keep c
  done;
  Vec.clear s.learnts;
  Vec.iter (fun c -> Vec.push s.learnts c) keep;
  sweep_watches s

(* ----- clause addition ----- *)

let add_clause s lits =
  if s.ok then begin
    if decision_level s > 0 then
      invalid_arg "Solver.add_clause: only legal at decision level 0";
    (* the axiom is the clause as given; the simplifications below are
       the solver's own business and stay out of the proof *)
    log_event s (fun p -> Proof.log_input p (Array.of_list lits));
    (* dedup and detect tautology / satisfied / falsified-at-0 literals *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (negate l) lits) lits
      || List.exists (fun l -> lvalue s l = 1) lits
    in
    if not tautology then begin
      let lits = List.filter (fun l -> lvalue s l <> 0) lits in
      match lits with
      | [] ->
        s.ok <- false;
        log_event s (fun p -> Proof.log_add p [||])
      | [ l ] ->
        enqueue s l dummy_clause;
        if propagate s != dummy_clause then begin
          s.ok <- false;
          log_event s (fun p -> Proof.log_add p [||])
        end
      | l0 :: l1 :: _ ->
        let c =
          {
            lits = Array.of_list lits;
            act = 0.;
            learnt = false;
            deleted = false;
          }
        in
        Vec.push s.clauses c;
        watch s l0 c;
        watch s l1 c
    end
  end

let record_learnt s lits =
  (* every learnt clause is a resolvent, hence RUP against the clauses
     live at this point — exactly what the Drup checker verifies *)
  log_event s (fun p -> Proof.log_add p lits);
  if Array.length lits = 1 then enqueue s lits.(0) dummy_clause
  else begin
    let c = { lits; act = 0.; learnt = true; deleted = false } in
    Vec.push s.learnts c;
    watch s lits.(0) c;
    watch s lits.(1) c;
    cla_bump s c;
    enqueue s lits.(0) c
  end

(* ----- search ----- *)

let luby y x =
  (* Finite subsequences of the Luby sequence *)
  let rec go size seq x =
    if size - 1 = x then (seq, x)
    else if size - 1 > x then
      let size = (size - 1) / 2 in
      go size (seq - 1) (x mod size)
    else (seq, x)
  in
  let rec outer size seq =
    if size < x + 1 then outer ((2 * size) + 1) (seq + 1) else (size, seq)
  in
  let size, seq = outer 1 0 in
  let seq, _ = go size seq x in
  y ** float_of_int seq

exception Found_unsat
exception Found_sat

let pick_branch s =
  let rec go () =
    if s.heap_size = 0 then -1
    else begin
      let v = heap_pop s in
      if s.assigns.(v) < 0 then v else go ()
    end
  in
  go ()

let search s assumptions conflict_budget =
  let conflicts_here = ref 0 in
  let rec loop () =
    let confl = propagate s in
    if confl != dummy_clause then begin
      s.conflicts <- s.conflicts + 1;
      incr conflicts_here;
      if decision_level s = 0 then begin
        s.ok <- false;
        log_event s (fun p -> Proof.log_add p [||]);
        raise Found_unsat
      end;
      let learnt, bt = analyze s confl in
      cancel_until s bt;
      record_learnt s learnt;
      var_decay s;
      cla_decay s;
      if float_of_int (Vec.size s.learnts) > s.max_learnts then reduce_db s;
      loop ()
    end
    else if
      conflict_budget >= 0 && !conflicts_here >= conflict_budget
    then begin
      cancel_until s 0;
      `Restart
    end
    else begin
      (* establish assumptions as pseudo-decisions *)
      let dl = decision_level s in
      if dl < List.length assumptions then begin
        let a = List.nth assumptions dl in
        match lvalue s a with
        | 1 ->
          Vec.push s.trail_lim (Vec.size s.trail);
          loop ()
        | 0 -> raise Found_unsat
        | _ ->
          Vec.push s.trail_lim (Vec.size s.trail);
          enqueue s a dummy_clause;
          loop ()
      end
      else begin
        let v = pick_branch s in
        if v < 0 then raise Found_sat
        else begin
          s.decisions <- s.decisions + 1;
          Vec.push s.trail_lim (Vec.size s.trail);
          enqueue s (if s.phase.(v) then pos v else neg_of v) dummy_clause;
          loop ()
        end
      end
    end
  in
  loop ()

let value s l =
  if not s.last_solve_sat then
    invalid_arg "Solver.value: no model (last solve did not return Sat)";
  let v = var_of l in
  let b = if s.assigns.(v) >= 0 then s.assigns.(v) = 1 else s.phase.(v) in
  let b = if s.corrupt_model then not b else b in
  if is_pos l then b else not b

let model s =
  if not s.last_solve_sat then
    invalid_arg "Solver.model: no model (last solve did not return Sat)";
  Array.init s.nvars (fun v -> value s (pos v))

(* Certify a Sat answer: the reported model must satisfy every live
   problem clause, agree with every top-level assignment, and satisfy
   every assumption.  The top-level check is what covers clauses
   dropped or strengthened at add time: a clause is only dropped when
   a top-level assignment satisfies it (unit inputs in particular are
   folded into the top level and never stored), so a model honouring
   the top level satisfies the dropped clauses too. *)
let check_model ?(assumptions = []) s =
  if not s.last_solve_sat then
    Error "no model: last solve did not return Sat"
  else begin
    let root_end =
      if Vec.size s.trail_lim > 0 then Vec.get s.trail_lim 0
      else Vec.size s.trail
    in
    let bad_roots = ref 0 in
    for i = 0 to root_end - 1 do
      if not (value s (Vec.get s.trail i)) then incr bad_roots
    done;
    let bad = ref 0 in
    Vec.iter
      (fun c ->
        if (not c.deleted) && not (Array.exists (fun l -> value s l) c.lits)
        then incr bad)
      s.clauses;
    if !bad_roots > 0 then
      Error
        (Printf.sprintf "model contradicts %d top-level assignment(s)"
           !bad_roots)
    else if !bad > 0 then
      Error (Printf.sprintf "model falsifies %d problem clause(s)" !bad)
    else
      match List.filter (fun a -> not (value s a)) assumptions with
      | [] -> Ok ()
      | falsified ->
        Error
          (Printf.sprintf "model falsifies %d assumption(s)"
             (List.length falsified))
  end

(* With DIAMBOUND_CHECK_MODEL=1 every genuine Sat answer is
   cross-checked before it leaves [solve] (and before any armed fault
   corrupts the report).  A failure here is a solver bug, not an
   injected fault, so it raises instead of degrading. *)
let debug_check_model =
  lazy
    (match Sys.getenv_opt "DIAMBOUND_CHECK_MODEL" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

let solve ?(assumptions = []) ?max_conflicts ?max_propagations ?should_stop s =
  s.last_solve_sat <- false;
  s.corrupt_model <- false;
  let final = ref (if s.ok then Unknown else Unsat) in
  if s.ok then begin
    cancel_until s 0;
    s.max_learnts <-
      max s.max_learnts (float_of_int (Vec.size s.clauses) /. 3.);
    (* per-call allowances, counted as deltas against the lifetime
       statistics and checked only at restart boundaries so the search
       loop stays clean *)
    let conflicts0 = s.conflicts in
    let propagations0 = s.propagations in
    let out_of_budget () =
      (match max_conflicts with
      | Some m -> s.conflicts - conflicts0 >= m
      | None -> false)
      || (match max_propagations with
         | Some m -> s.propagations - propagations0 >= m
         | None -> false)
      || match should_stop with Some f -> f () | None -> false
    in
    (* default Unknown: [run] only returns normally on exhaustion *)
    let result = ref Unknown in
    (try
       let restart = ref 0 in
       let rec run () =
         if out_of_budget () then ()
         else begin
           let luby_budget = int_of_float (100. *. luby 2. !restart) in
           let budget =
             (* never overshoot a conflict allowance by a whole Luby
                window: cap the inner budget at what remains *)
             match max_conflicts with
             | Some m -> min luby_budget (max 1 (m - (s.conflicts - conflicts0)))
             | None -> luby_budget
           in
           match search s assumptions budget with
           | `Restart ->
             s.restarts <- s.restarts + 1;
             incr restart;
             run ()
         end
       in
       run ()
     with
    | Found_sat -> result := Sat
    | Found_unsat -> result := Unsat);
    if !result = Sat then begin
      (* save the model in the phase array, then release decisions *)
      for v = 0 to s.nvars - 1 do
        if s.assigns.(v) >= 0 then s.phase.(v) <- s.assigns.(v) = 1
      done
    end;
    cancel_until s 0;
    final := !result
  end;
  s.last_solve_sat <- !final = Sat;
  if s.last_solve_sat && Lazy.force debug_check_model then begin
    match check_model ~assumptions s with
    | Ok () -> ()
    | Error msg -> failwith ("DIAMBOUND_CHECK_MODEL: " ^ msg)
  end;
  (* fault injection happens at the reporting boundary, after the
     debug cross-check of the genuine answer *)
  (match Chaos.instance_fault s.chaos with
  | Some Chaos.Flip_to_unsat when !final = Sat ->
    Chaos.instance_note s.chaos;
    s.last_solve_sat <- false;
    final := Unsat
  | Some Chaos.Flip_to_sat when !final = Unsat ->
    Chaos.instance_note s.chaos;
    (* the phase store becomes the "model": arbitrary garbage *)
    s.last_solve_sat <- true;
    final := Sat
  | Some Chaos.Corrupt_model when !final = Sat ->
    Chaos.instance_note s.chaos;
    s.corrupt_model <- true
  | _ -> ());
  !final

let pp_stats ppf s =
  Format.fprintf ppf
    "vars=%d clauses=%d learnts=%d conflicts=%d decisions=%d propagations=%d \
     restarts=%d reduce_dbs=%d"
    s.nvars (Vec.size s.clauses) (Vec.size s.learnts) s.conflicts s.decisions
    s.propagations s.restarts s.reduce_dbs
