(** Deterministic fault injection for testing the certification layer.

    When armed, {!Solver.solve} corrupts the answers it {e reports}
    (never its internal search state), simulating the solver bugs the
    certification layer exists to catch:

    - {!Flip_to_unsat}: satisfiable answers reported as [Unsat] — the
      classic unsoundness that silently converts "violated" into
      "proved".  Caught by proof certification (no refutation exists).
    - {!Flip_to_sat}: unsatisfiable answers reported as [Sat], with
      whatever garbage the phase store holds as the "model".  Caught by
      {!Solver.check_model} and by counterexample replay.
    - {!Corrupt_model}: genuine [Sat] answers whose reported model is
      negated wholesale.  Caught by {!Solver.check_model} / replay.
    - {!Drop_proof}: every proof-log event is silently discarded, as if
      the proof file were lost.  Caught by the {!Drup} checker (an
      empty derivation refutes nothing).

    Arming is process-global, OFF by default, and deterministic:
    every injection opportunity fires.  The [seed] is recorded so a
    chaos test run can derive its random workloads from the same value
    it arms with, making the whole suite reproducible from one number.

    Each solver {e captures} the armed configuration when it is
    created ({!capture}) and consults only its own {!instance} from
    then on, so concurrent solvers on different domains inject
    independently and count into one shared atomic total — arming or
    disarming mid-flight never changes what an existing solver
    does. *)

type fault = Flip_to_unsat | Flip_to_sat | Corrupt_model | Drop_proof

val fault_name : fault -> string

val arm : seed:int -> fault -> unit
val disarm : unit -> unit
val armed : unit -> fault option
val active : unit -> bool
val seed : unit -> int option

val injections : unit -> int
(** Faults injected since the last {!arm}, summed over every solver
    instance captured from it — tests assert this is positive, so a
    "caught" verdict cannot come from the fault never having fired. *)

val note : unit -> unit
(** Count an injection against the currently armed state; for
    injection sites outside any solver instance. *)

(** {1 Per-solver instances} *)

type instance
(** The armed configuration as seen by one solver: captured once at
    solver creation, immune to later {!arm}/{!disarm}. *)

val capture : unit -> instance
(** The currently armed configuration (or an inert instance when
    disarmed).  Called by [Solver.create]. *)

val instance_fault : instance -> fault option
val instance_note : instance -> unit
(** Count an injection against the arming this instance was captured
    from (atomic, so concurrent solvers never lose a count). *)

val with_fault : seed:int -> fault -> (unit -> 'a) -> 'a
(** [with_fault ~seed f k] runs [k] with the fault armed, disarming on
    the way out (also on exceptions). *)

val with_fault_scoped : seed:int -> fault -> (unit -> 'a) -> 'a * int
(** Like {!with_fault}, but armed for the {e calling domain only}, via
    domain-local storage consulted by {!capture} ahead of the global
    arming: solvers created by [k] on this domain inject, solvers
    created concurrently on other domains (innocent requests on other
    serve workers) never observe it.  Returns [k]'s result and how
    many injections this scope's solvers fired.  Nests (the previous
    scope is restored on exit) and unwinds on exceptions. *)
