(** Deterministic fault injection for testing the certification layer.

    When armed, {!Solver.solve} corrupts the answers it {e reports}
    (never its internal search state), simulating the solver bugs the
    certification layer exists to catch:

    - {!Flip_to_unsat}: satisfiable answers reported as [Unsat] — the
      classic unsoundness that silently converts "violated" into
      "proved".  Caught by proof certification (no refutation exists).
    - {!Flip_to_sat}: unsatisfiable answers reported as [Sat], with
      whatever garbage the phase store holds as the "model".  Caught by
      {!Solver.check_model} and by counterexample replay.
    - {!Corrupt_model}: genuine [Sat] answers whose reported model is
      negated wholesale.  Caught by {!Solver.check_model} / replay.
    - {!Drop_proof}: every proof-log event is silently discarded, as if
      the proof file were lost.  Caught by the {!Drup} checker (an
      empty derivation refutes nothing).

    Injection is process-global, OFF by default, and deterministic:
    every injection opportunity fires.  The [seed] is recorded so a
    chaos test run can derive its random workloads from the same value
    it arms with, making the whole suite reproducible from one
    number. *)

type fault = Flip_to_unsat | Flip_to_sat | Corrupt_model | Drop_proof

val fault_name : fault -> string

val arm : seed:int -> fault -> unit
val disarm : unit -> unit
val armed : unit -> fault option
val active : unit -> bool
val seed : unit -> int option

val injections : unit -> int
(** Faults injected since the last {!arm} — tests assert this is
    positive, so a "caught" verdict cannot come from the fault never
    having fired. *)

val note : unit -> unit
(** Used by the solver to count an injection; not for external use. *)

val with_fault : seed:int -> fault -> (unit -> 'a) -> 'a
(** [with_fault ~seed f k] runs [k] with the fault armed, disarming on
    the way out (also on exceptions). *)
