(** DRUP-style clausal proof log.

    When attached to a solver ({!Solver.set_proof}), the log records an
    event per input clause, learnt clause and learnt-clause deletion,
    in the exact operational order.  The event list is a self-contained
    derivation — {!Input} events are axioms, {!Add} events must each
    have the reverse-unit-propagation property — checkable by {!Drup}
    with no access to the solver that produced it.

    Clauses are canonicalized (copied, sorted, deduplicated) at log
    time, so later in-place literal shuffling by the solver's watch
    machinery cannot corrupt the record. *)

type event =
  | Input of int array  (** an original problem clause (axiom) *)
  | Add of int array  (** a learnt clause; must be RUP at this point *)
  | Delete of int array  (** a learnt clause leaving the active set *)

type t

val create : unit -> t
val log_input : t -> int array -> unit
val log_add : t -> int array -> unit
val log_delete : t -> int array -> unit

val events : t -> event list
(** All events, oldest first. *)

val num_inputs : t -> int
val num_adds : t -> int
val num_deletes : t -> int

(** {1 DRUP text}

    The textual form is drat-trim compatible: one lemma per line in
    DIMACS numbering terminated by [0], deletions prefixed with [d],
    comment lines starting with [c].  {!Input} events are omitted (a
    DRUP file accompanies a DIMACS file; dump the formula with
    {!Dimacs.print}). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val parse : string -> t
(** Parse DRUP text into {!Add}/{!Delete} events.
    @raise Failure on malformed input. *)

val parse_file : string -> t
