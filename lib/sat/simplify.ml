(* SatELite-style clause-database simplification.  See simplify.mli for
   the proof-logging contract; the short version is: additions are
   logged before the clauses they derive from are touched, ordinary
   removals are logged after, and variable elimination logs no removals
   at all so reintroduction stays proof-silent. *)

let negate l = l lxor 1
let var_of l = l lsr 1

type config = {
  subsumption : bool;
  var_elim : bool;
  probing : bool;
  occ_limit : int;
  growth : int;
  resolvent_limit : int;
  probe_limit : int;
  subsume_limit : int;
  rounds : int;
}

let default =
  {
    subsumption = true;
    var_elim = true;
    probing = true;
    occ_limit = 16;
    growth = 0;
    resolvent_limit = 24;
    probe_limit = 4096;
    subsume_limit = 400_000;
    rounds = 2;
  }

type simplified = Kept of int | Fresh of int array

type result = {
  clauses : simplified list;
  units : int list;
  eliminated : (int * int array array) list;
  contradiction : bool;
  n_subsumed : int;
  n_strengthened : int;
  n_probed : int;
}

(* Clause records are immutable once attached: strengthening kills the
   record and attaches a fresh one, so occurrence lists never need
   membership checks — only a deadness check. *)
type cls = {
  id : int;
  src : int; (* input index of an untouched clause, -1 if derived *)
  lits : int array; (* sorted, distinct *)
  sg : int; (* variable signature (subset filter) *)
  mutable dead : bool;
}

type state = {
  cfg : config;
  nvars : int;
  frozen : int -> bool;
  log_add : int array -> unit;
  log_delete : int array -> unit;
  assign : int array; (* var -> -1 unassigned / 0 false / 1 true *)
  occs : cls list array; (* literal -> clauses (lazy deletion) *)
  n_occ : int array; (* literal -> live occurrence count *)
  mutable all : cls list;
  mutable fresh : cls list; (* attached since the last drain *)
  mutable next_id : int;
  mutable contradiction : bool;
  elim_done : bool array;
  mutable eliminated : (int * int array array) list; (* reverse order *)
  mutable derived_units : int list; (* reverse order *)
  mutable n_subsumed : int;
  mutable n_strengthened : int;
  mutable n_probed : int;
  mutable steps : int;
}

let lvalue st l =
  let a = st.assign.(var_of l) in
  if a < 0 then -1 else a lxor (l land 1)

let lsig lits =
  Array.fold_left (fun acc l -> acc lor (1 lsl ((l lsr 1) mod 62))) 0 lits

let attach ?(src = -1) st lits =
  let c = { id = st.next_id; src; lits; sg = lsig lits; dead = false } in
  st.next_id <- st.next_id + 1;
  Array.iter
    (fun l ->
      st.occs.(l) <- c :: st.occs.(l);
      st.n_occ.(l) <- st.n_occ.(l) + 1)
    lits;
  st.all <- c :: st.all;
  st.fresh <- c :: st.fresh;
  c

let kill st c =
  if not c.dead then begin
    c.dead <- true;
    Array.iter (fun l -> st.n_occ.(l) <- st.n_occ.(l) - 1) c.lits
  end

let empty_clause st =
  if not st.contradiction then begin
    st.contradiction <- true;
    st.log_add [||]
  end

(* Insert a derived clause [keep] replacing nothing (old = None) or a
   live clause being strengthened.  [keep] must be sorted, duplicate-
   and tautology-free; [logged] says whether the Add event was already
   emitted by the caller. *)
let rec insert_derived st ~logged keep =
  if st.contradiction then ()
  else
    match Array.length keep with
    | 0 -> empty_clause st
    | 1 ->
      if not logged then st.log_add keep;
      assign_lit st keep.(0)
    | _ ->
      if not logged then st.log_add keep;
      ignore (attach st keep)

(* Make literal [l] true at the root and cascade: clauses containing
   [l] are satisfied and retired, clauses containing [not l] are
   strengthened.  The Add event for the unit itself is the caller's
   business (it is either a shrunk clause, a probe unit or a unit
   resolvent, each logged at its derivation site). *)
and assign_lit st l =
  if not st.contradiction then
    match lvalue st l with
    | 1 -> ()
    | 0 -> empty_clause st
    | _ ->
      st.assign.(var_of l) <- (if l land 1 = 0 then 1 else 0);
      st.derived_units <- l :: st.derived_units;
      List.iter
        (fun c ->
          if not c.dead then begin
            st.log_delete c.lits;
            kill st c
          end)
        st.occs.(l);
      List.iter (fun c -> if not c.dead then shrink_clause st c) st.occs.(negate l)

(* Re-normalize a live clause against the current root assignment. *)
and shrink_clause st c =
  if (not c.dead) && not st.contradiction then
    if Array.exists (fun l -> lvalue st l = 1) c.lits then begin
      st.log_delete c.lits;
      kill st c
    end
    else begin
      let keep =
        Array.of_list
          (List.filter (fun l -> lvalue st l <> 0) (Array.to_list c.lits))
      in
      if Array.length keep < Array.length c.lits then begin
        st.n_strengthened <- st.n_strengthened + 1;
        if Array.length keep > 0 then st.log_add keep;
        st.log_delete c.lits;
        kill st c;
        insert_derived st ~logged:true keep
      end
    end

(* ----- subsumption and self-subsuming resolution ----- *)

(* Does [c] subsume [d], possibly modulo flipping one literal?
   Returns [`No], [`Subsumes], or [`Strengthen l] where [l] is the
   literal of [c] whose negation can be removed from [d] by
   self-subsuming resolution.  Both clauses sorted. *)
let subsume_check c d =
  let a = c.lits and b = d.lits in
  let n = Array.length a and m = Array.length b in
  if n > m then `No
  else begin
    let flip = ref (-1) in
    let rec go i j =
      if i >= n then if !flip < 0 then `Subsumes else `Strengthen !flip
      else if j >= m || n - i > m - j then `No
      else
        let x = a.(i) and y = b.(j) in
        if x = y then go (i + 1) (j + 1)
        else if y lxor x = 1 then
          if !flip >= 0 then `No
          else begin
            flip := x;
            go (i + 1) (j + 1)
          end
        else if y < x then go i (j + 1)
        else `No
    in
    go 0 0
  end

let strengthen_by st d removed =
  st.n_strengthened <- st.n_strengthened + 1;
  let keep =
    Array.of_list (List.filter (fun l -> l <> removed) (Array.to_list d.lits))
  in
  if Array.length keep > 0 then st.log_add keep;
  st.log_delete d.lits;
  kill st d;
  insert_derived st ~logged:true keep

(* Find clauses subsumed or strengthened by [c]: candidates are the
   occurrences (either polarity) of c's least-common variable. *)
let backward st c =
  if (not c.dead) && not st.contradiction then begin
    let best = ref c.lits.(0) and bestn = ref max_int in
    Array.iter
      (fun l ->
        let n = st.n_occ.(l) + st.n_occ.(negate l) in
        if n < !bestn then begin
          bestn := n;
          best := l
        end)
      c.lits;
    let scan lst =
      List.iter
        (fun d ->
          if
            (not d.dead) && (not c.dead) && d != c
            && (not st.contradiction)
            && st.steps <= st.cfg.subsume_limit
            && Array.length d.lits >= Array.length c.lits
            && c.sg land lnot d.sg = 0
          then begin
            st.steps <- st.steps + 1;
            match subsume_check c d with
            | `No -> ()
            | `Subsumes ->
              st.n_subsumed <- st.n_subsumed + 1;
              st.log_delete d.lits;
              kill st d
            | `Strengthen l -> strengthen_by st d (negate l)
          end)
        lst
    in
    scan st.occs.(!best);
    scan st.occs.(negate !best)
  end

let live st = List.filter (fun c -> not c.dead) st.all

let subsume_pass st =
  st.steps <- 0;
  st.fresh <- [];
  let order =
    List.sort
      (fun a b -> compare (Array.length a.lits, a.id) (Array.length b.lits, b.id))
      (live st)
  in
  List.iter (fun c -> if st.steps <= st.cfg.subsume_limit then backward st c) order;
  (* clauses created mid-pass (strengthened replacements) get their own
     backward look, to a fixpoint or the step budget *)
  let rec drain () =
    match st.fresh with
    | [] -> ()
    | batch when st.steps > st.cfg.subsume_limit -> ignore batch
    | batch ->
      st.fresh <- [];
      List.iter
        (fun c -> if st.steps <= st.cfg.subsume_limit then backward st c)
        (List.rev batch);
      drain ()
  in
  drain ()

(* ----- failed-literal probing on the binary implication graph ----- *)

let probe st =
  let nlits = 2 * st.nvars in
  let imp = Array.make nlits [] in
  let pred = Array.make nlits 0 in
  List.iter
    (fun c ->
      if (not c.dead) && Array.length c.lits = 2 then begin
        let a = c.lits.(0) and b = c.lits.(1) in
        imp.(negate a) <- b :: imp.(negate a);
        pred.(b) <- pred.(b) + 1;
        imp.(negate b) <- a :: imp.(negate b);
        pred.(a) <- pred.(a) + 1
      end)
    st.all;
  let seen = Array.make nlits 0 in
  let epoch = ref 0 in
  let probes = ref 0 in
  for l = 0 to nlits - 1 do
    if
      !probes < st.cfg.probe_limit
      && imp.(l) <> []
      && pred.(l) = 0
      && lvalue st l < 0
      && not st.contradiction
    then begin
      incr probes;
      incr epoch;
      (* depth-first walk of everything [l] implies; implications from
         clauses retired mid-phase are still entailed, so stale edges
         cannot produce a wrong failure *)
      seen.(l) <- !epoch;
      let failed = ref false in
      let stack = ref [ l ] in
      while (not !failed) && !stack <> [] do
        match !stack with
        | [] -> ()
        | x :: rest ->
          stack := rest;
          List.iter
            (fun y ->
              if not !failed then
                if lvalue st y = 0 || seen.(negate y) = !epoch then failed := true
                else if lvalue st y < 0 && seen.(y) <> !epoch then begin
                  seen.(y) <- !epoch;
                  stack := y :: !stack
                end)
            imp.(x)
      done;
      if !failed then begin
        st.n_probed <- st.n_probed + 1;
        st.log_add [| negate l |];
        assign_lit st (negate l)
      end
    end
  done

(* ----- bounded variable elimination ----- *)

(* Resolvent of [a] (contains pos v) and [b] (contains neg v) on [v];
   both sorted, result sorted.  [`Taut] resolvents are skipped, [`Long]
   ones abort the elimination of [v]. *)
let resolve limit a b v =
  let la = Array.length a and lb = Array.length b in
  let buf = Array.make (la + lb) 0 in
  let k = ref 0 in
  let taut = ref false in
  let push l =
    if not !taut then
      if !k > 0 && buf.(!k - 1) = l then ()
      else if !k > 0 && buf.(!k - 1) lxor l = 1 then taut := true
      else begin
        buf.(!k) <- l;
        incr k
      end
  in
  let i = ref 0 and j = ref 0 in
  while (not !taut) && (!i < la || !j < lb) do
    let from_a = !j >= lb || (!i < la && a.(!i) <= b.(!j)) in
    let l =
      if from_a then begin
        let l = a.(!i) in
        incr i;
        l
      end
      else begin
        let l = b.(!j) in
        incr j;
        l
      end
    in
    if var_of l <> v then push l
  done;
  if !taut then `Taut
  else if !k > limit then `Long
  else `Res (Array.sub buf 0 !k)

let try_eliminate st v =
  if
    (not (st.frozen v))
    && (not st.elim_done.(v))
    && st.assign.(v) < 0
    && not st.contradiction
  then begin
    let p = List.filter (fun c -> not c.dead) st.occs.(2 * v) in
    let n = List.filter (fun c -> not c.dead) st.occs.((2 * v) + 1) in
    let total = List.length p + List.length n in
    if total > 0 && total <= st.cfg.occ_limit then begin
      let res = ref [] and nres = ref 0 and ok = ref true in
      List.iter
        (fun cp ->
          if !ok then
            List.iter
              (fun cn ->
                if !ok then
                  (* resolvents may not outgrow the widest parent: wider
                     clauses propagate worse, and on counting structure
                     (adder carries, hold-mux chains) that costs more
                     conflicts than the eliminated variable saves *)
                  let limit =
                    min st.cfg.resolvent_limit
                      (max (Array.length cp.lits) (Array.length cn.lits))
                  in
                  match resolve limit cp.lits cn.lits v with
                  | `Taut -> ()
                  | `Long -> ok := false
                  | `Res r ->
                    incr nres;
                    if !nres > total + st.cfg.growth then ok := false
                    else res := r :: !res)
              n)
        p;
      if !ok then begin
        let stored =
          Array.of_list (List.map (fun c -> c.lits) (p @ n))
        in
        let resolvents = List.rev !res in
        (* additions first, while both parents are still live (each
           resolvent is RUP against them); the parents then leave
           without Delete events — see the contract in simplify.mli *)
        List.iter st.log_add resolvents;
        List.iter (fun c -> kill st c) p;
        List.iter (fun c -> kill st c) n;
        st.elim_done.(v) <- true;
        st.eliminated <- (v, stored) :: st.eliminated;
        (* attach non-unit resolvents before applying unit ones, so the
           live-clause invariant (no assigned literals) is kept by the
           assignment cascade itself *)
        List.iter
          (fun r -> if Array.length r > 1 then ignore (attach st r))
          resolvents;
        List.iter
          (fun r ->
            if Array.length r = 1 then assign_lit st r.(0)
            else if Array.length r = 0 then empty_clause st)
          resolvents
      end
    end
  end

let bve_pass st =
  let order = Array.init st.nvars (fun v -> v) in
  let weight v = st.n_occ.(2 * v) + st.n_occ.((2 * v) + 1) in
  Array.sort (fun a b -> compare (weight a, a) (weight b, b)) order;
  Array.iter (fun v -> try_eliminate st v) order

(* ----- driver ----- *)

let run ?(config = default) ~nvars ~frozen ~value ~log_add ~log_delete input =
  let st =
    {
      cfg = config;
      nvars;
      frozen;
      log_add;
      log_delete;
      assign = Array.init nvars (fun v -> value (2 * v));
      occs = Array.make (2 * nvars) [];
      n_occ = Array.make (2 * nvars) 0;
      all = [];
      fresh = [];
      next_id = 0;
      contradiction = false;
      elim_done = Array.make nvars false;
      eliminated = [];
      derived_units = [];
      n_subsumed = 0;
      n_strengthened = 0;
      n_probed = 0;
      steps = 0;
    }
  in
  (* normalize the input against the root assignment; solver clauses
     arrive watch-shuffled, so sort a private copy.  Untouched clauses
     keep their input index so the caller can recognize them (Kept)
     and leave its own records — and their watch order — alone. *)
  List.iteri
    (fun i lits ->
      if not st.contradiction then begin
        let lits = Array.copy lits in
        Array.sort compare lits;
        if Array.exists (fun l -> lvalue st l = 1) lits then st.log_delete lits
        else begin
          let keep =
            Array.of_list
              (List.filter (fun l -> lvalue st l <> 0) (Array.to_list lits))
          in
          if Array.length keep = Array.length lits then
            ignore (attach ~src:i st keep)
          else begin
            st.n_strengthened <- st.n_strengthened + 1;
            if Array.length keep > 0 then st.log_add keep;
            st.log_delete lits;
            insert_derived st ~logged:true keep
          end
        end
      end)
    input;
  let progress st =
    (st.n_subsumed, st.n_strengthened, st.n_probed, List.length st.eliminated)
  in
  let round = ref 0 in
  let changed = ref true in
  while !changed && !round < config.rounds && not st.contradiction do
    incr round;
    let before = progress st in
    if config.subsumption then subsume_pass st;
    if config.probing && not st.contradiction then probe st;
    if config.var_elim && not st.contradiction then bve_pass st;
    changed := before <> progress st
  done;
  {
    clauses =
      List.rev_map
        (fun c -> if c.src >= 0 then Kept c.src else Fresh c.lits)
        (live st);
    units = List.rev st.derived_units;
    eliminated = List.rev st.eliminated;
    contradiction = st.contradiction;
    n_subsumed = st.n_subsumed;
    n_strengthened = st.n_strengthened;
    n_probed = st.n_probed;
  }
