(** A CDCL satisfiability solver built from scratch.

    Features: two-watched-literal propagation, first-UIP conflict-clause
    learning with basic minimization, VSIDS variable activities with
    phase saving, Luby restarts, LBD-tiered learnt-clause management
    (core / tier2 / local by glue), inprocessing at restart boundaries
    (subsumption, self-subsuming resolution, bounded variable
    elimination, failed-literal probing — see {!Simplify}), and
    incremental solving under assumptions.  Assumption variables are
    frozen against elimination; eliminated variables are transparently
    reintroduced when later clauses or assumptions mention them, and
    models are extended over eliminated variables before being
    reported.

    Literals are integers: variable [v] gives positive literal [2 * v]
    and negative literal [2 * v + 1]. *)

type t

type lit = int

val pos : int -> lit
(** Positive literal of a variable. *)

val neg_of : int -> lit
(** Negative literal of a variable. *)

val negate : lit -> lit
val var_of : lit -> int
val is_pos : lit -> bool

type result = Sat | Unsat | Unknown

val create : ?inprocess:bool -> unit -> t
(** [inprocess] fixes this instance's inprocessing switch at creation,
    overriding the process default ({!set_inprocess_default} /
    [DIAMBOUND_NO_INPROCESS]); omit it to inherit the default.  An
    explicit per-instance choice is what lets concurrent callers run
    with different options without racing on the global knob. *)

val new_var : t -> int
(** Allocate a fresh variable, returning its index. *)

val num_vars : t -> int

val add_clause : t -> lit list -> unit
(** Add a problem clause.  Tautologies are dropped; duplicate literals
    are removed; the empty clause makes the instance permanently
    unsatisfiable.  Only legal at decision level 0 (i.e. between
    [solve] calls). *)

val solve :
  ?assumptions:lit list ->
  ?max_conflicts:int ->
  ?max_propagations:int ->
  ?should_stop:(unit -> bool) ->
  t ->
  result
(** Solve the current clause set under the given assumptions.  The
    solver is reusable: more clauses and variables may be added after a
    call, and [solve] may be called again.

    The optional allowances bound a single call: [max_conflicts] /
    [max_propagations] cap the conflicts/propagations spent by this
    call (deltas, not lifetime totals), and [should_stop] is a cheap
    external predicate (typically a deadline check).  All three are
    checked only at restart boundaries, so a call may overrun by at
    most one Luby window of conflicts.  On exhaustion the call returns
    {!Unknown} — never a wrong [Sat]/[Unsat] — and the solver remains
    reusable.  Without allowances, [solve] never returns {!Unknown}. *)

val value : t -> lit -> bool
(** Value of a literal in the model found by the last [solve].
    Unassigned variables (eliminated by simplification) read as their
    saved phase.  @raise Invalid_argument when the last [solve] did
    not return [Sat] (or none has run yet): there is no model, and the
    phase-saved data a pre-guard implementation would return is
    stale. *)

val model : t -> bool array
(** Model by variable index.  @raise Invalid_argument when the last
    [solve] did not return [Sat]. *)

(** {1 Self-certification} *)

val set_proof : t -> Proof.t -> unit
(** Attach a proof log.  From now on every input clause, learnt clause
    and learnt-clause deletion is recorded; {!Drup.check} can then
    certify [Unsat] answers with no access to this solver.  Attach
    before adding clauses, or the derivation will be missing axioms. *)

val proof : t -> Proof.t option

val check_model : ?assumptions:lit list -> t -> (unit, string) Stdlib.result
(** Certify the last [Sat] answer: the reported model must satisfy
    every live problem clause, agree with every top-level assignment
    (covering unit clauses folded away at add time), and satisfy
    every listed assumption.  [Error]
    describes the first discrepancy.  Also runs automatically on every
    genuine [Sat] inside [solve] when the environment variable
    [DIAMBOUND_CHECK_MODEL] is set to [1] (raising [Failure] on
    mismatch — that path guards against solver bugs, not injected
    faults, and the test suite enables it globally). *)

(** Statistics from the lifetime of the solver. *)

val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int

val num_restarts : t -> int
(** Completed Luby restarts across all [solve] calls. *)

val num_reduce_dbs : t -> int
(** Learnt-database reductions (each halves the learnt set and sweeps
    deleted clauses out of the watch lists). *)

val num_clauses : t -> int
(** Live problem clauses. *)

val num_learnts : t -> int
(** Live learnt clauses. *)

val trail_depth : t -> int
(** Literals currently assigned (all decision levels).  A live
    progress signal for heartbeat snapshots: meaningful mid-[solve]
    when read from a [should_stop] callback, 0 between solves. *)

val num_watch_entries : t -> int
(** Total entries across all watch lists; with every clause watched
    twice this is [2 * (num_clauses + num_learnts)] between solves. *)

val num_dead_watches : t -> int
(** Watch entries pointing at deleted clauses — always 0 after
    [reduce_db]'s sweep; exposed for regression tests. *)

val set_max_learnts : t -> int -> unit
(** Lower (or raise) the learnt-database size that triggers a
    reduction.  [solve] still never reduces below a third of the
    problem clause count, and every [reduce_db] grows the trigger
    geometrically (at least ×1.1) so long runs stop thrashing. *)

val max_learnts : t -> int
(** Current learnt-database reduction trigger (for regression tests of
    the geometric growth). *)

(** {1 Inprocessing} *)

val set_inprocess_default : bool -> unit
(** Process-global default for inprocessing, captured by {!create}
    (existing solvers are unaffected).  When never called, the
    [DIAMBOUND_NO_INPROCESS] environment variable decides (set to [1]
    to disable).  The CLI tools call this from [--no-inprocess]. *)

val inprocess_default : unit -> bool

val set_inprocess : t -> bool -> unit
(** Enable/disable scheduled inprocessing for this solver instance. *)

val set_simplify_config : t -> Simplify.config -> unit

val simplify_now : t -> unit
(** Run one inprocessing pass immediately, regardless of the schedule
    and of {!set_inprocess}.  Only legal at decision level 0. *)

val freeze : t -> int -> unit
(** Protect a variable from elimination.  Assumption variables are
    frozen automatically (permanently) by [solve]. *)

val set_simplify_wrapper : t -> ((unit -> unit) -> unit) -> unit
(** Install a wrapper around every inprocessing pass (the observability
    layer uses this to time passes without [sat] depending on [obs]).
    The wrapper must call the supplied thunk exactly once. *)

val num_simplifies : t -> int
(** Inprocessing passes run. *)

val num_subsumed : t -> int
(** Clauses removed by subsumption. *)

val num_strengthened : t -> int
(** Clauses strengthened (self-subsuming resolution + unit rewriting). *)

val num_eliminated : t -> int
(** Variables eliminated (lifetime; reintroductions do not subtract). *)

val num_probed_units : t -> int
(** Units derived by failed-literal probing. *)

val num_core_deleted : t -> int
(** Core-tier (low-LBD) learnts deleted by [reduce_db] — the tier
    invariant says this must stay 0; exposed for regression tests. *)

val pp_stats : Format.formatter -> t -> unit
