(* Deterministic fault injection for the certification layer's own
   test harness.  When armed, the solver corrupts the answers it
   reports — never its internal search — so the independent checks
   (proof certification, model evaluation, counterexample replay)
   can be shown to catch every corrupted answer.

   Arming is process-global and OFF by default; it is only ever done
   by tests and the CI chaos stage.  Each solver captures the armed
   configuration at creation time into its own instance, so two
   solvers running on different domains inject (and count) faults
   independently instead of interleaving updates on one shared record.
   All faults are deterministic: a given (seed, fault, workload)
   triple always corrupts the same answers in the same way. *)

type fault =
  | Flip_to_unsat
  | Flip_to_sat
  | Corrupt_model
  | Drop_proof

let fault_name = function
  | Flip_to_unsat -> "flip-to-unsat"
  | Flip_to_sat -> "flip-to-sat"
  | Corrupt_model -> "corrupt-model"
  | Drop_proof -> "drop-proof"

(* the total counter is shared by every instance captured from the
   same arming, and atomic so concurrent solvers never lose a count *)
type state = { fault : fault; seed : int; injections : int Atomic.t }

type instance = state option

let current : state option ref = ref None

let arm ~seed fault =
  current := Some { fault; seed; injections = Atomic.make 0 }

let disarm () = current := None
let armed () = match !current with Some s -> Some s.fault | None -> None
let active () = !current <> None
let seed () = match !current with Some s -> Some s.seed | None -> None

let injections () =
  match !current with Some s -> Atomic.get s.injections | None -> 0

(* Domain-local override: a fault armed for ONE domain's work (a serve
   worker executing a chaos-seeded request) without leaking into
   solvers created concurrently on other domains.  The override always
   wins over the process-global arming while in scope. *)
let dls_override : state option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(* per-solver capture: the solver consults its own instance at every
   injection site, so the decision to inject never depends on which
   other solver disarmed or re-armed in the meantime *)
let capture () : instance =
  match Domain.DLS.get dls_override with
  | Some _ as scoped -> scoped
  | None -> !current

let with_fault_scoped ~seed fault f =
  let saved = Domain.DLS.get dls_override in
  let state = { fault; seed; injections = Atomic.make 0 } in
  Domain.DLS.set dls_override (Some state);
  let result =
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set dls_override saved)
      f
  in
  (result, Atomic.get state.injections)

let instance_fault (i : instance) =
  match i with Some s -> Some s.fault | None -> None

let instance_note (i : instance) =
  match i with Some s -> Atomic.incr s.injections | None -> ()

(* process-global convenience, kept for injection sites outside any
   solver instance *)
let note () = instance_note !current

let with_fault ~seed fault f =
  arm ~seed fault;
  Fun.protect ~finally:disarm f
