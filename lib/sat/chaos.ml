(* Deterministic fault injection for the certification layer's own
   test harness.  When armed, the solver corrupts the answers it
   reports — never its internal search — so the independent checks
   (proof certification, model evaluation, counterexample replay)
   can be shown to catch every corrupted answer.

   Injection is process-global and OFF by default; arming is only ever
   done by tests and the CI chaos stage.  All faults are deterministic:
   a given (seed, fault, workload) triple always corrupts the same
   answers in the same way. *)

type fault =
  | Flip_to_unsat
  | Flip_to_sat
  | Corrupt_model
  | Drop_proof

let fault_name = function
  | Flip_to_unsat -> "flip-to-unsat"
  | Flip_to_sat -> "flip-to-sat"
  | Corrupt_model -> "corrupt-model"
  | Drop_proof -> "drop-proof"

type state = { fault : fault; seed : int; mutable injections : int }

let current : state option ref = ref None

let arm ~seed fault = current := Some { fault; seed; injections = 0 }
let disarm () = current := None
let armed () = match !current with Some s -> Some s.fault | None -> None
let active () = !current <> None
let seed () = match !current with Some s -> Some s.seed | None -> None
let injections () = match !current with Some s -> s.injections | None -> 0

(* called by the solver at each injection site *)
let note () =
  match !current with Some s -> s.injections <- s.injections + 1 | None -> ()

let with_fault ~seed fault f =
  arm ~seed fault;
  Fun.protect ~finally:disarm f
