(* Clausal proof log: the solver appends an event per input clause,
   learnt clause and deletion, in operational order.  The log is both
   a self-contained derivation (inputs are axioms) and dumpable as a
   drat-trim-compatible DRUP text file (lemmas and deletions only —
   the formula itself ships separately as DIMACS). *)

type event =
  | Input of int array
  | Add of int array
  | Delete of int array

type t = {
  mutable events : event list; (* newest first *)
  mutable n_inputs : int;
  mutable n_adds : int;
  mutable n_deletes : int;
}

let create () = { events = []; n_inputs = 0; n_adds = 0; n_deletes = 0 }

(* canonical form: sorted, deduplicated.  Learnt-clause arrays are
   mutated in place by the solver's watch swapping, so events must
   copy at log time; sorting makes add/delete pairs match up. *)
let canon lits =
  let a = Array.copy lits in
  Array.sort compare a;
  let n = Array.length a in
  let j = ref 0 in
  for i = 0 to n - 1 do
    if i = 0 || a.(i) <> a.(i - 1) then begin
      a.(!j) <- a.(i);
      incr j
    end
  done;
  Array.sub a 0 !j

let log_input p lits =
  p.events <- Input (canon lits) :: p.events;
  p.n_inputs <- p.n_inputs + 1

let log_add p lits =
  p.events <- Add (canon lits) :: p.events;
  p.n_adds <- p.n_adds + 1

let log_delete p lits =
  p.events <- Delete (canon lits) :: p.events;
  p.n_deletes <- p.n_deletes + 1

let events p = List.rev p.events
let num_inputs p = p.n_inputs
let num_adds p = p.n_adds
let num_deletes p = p.n_deletes

(* ----- DRUP text (drat-trim compatible) ----- *)

(* solver literal <-> DIMACS integer *)
let dimacs_of_lit l =
  let v = (l lsr 1) + 1 in
  if l land 1 = 0 then v else -v

let lit_of_dimacs i =
  let v = abs i - 1 in
  if i > 0 then 2 * v else (2 * v) + 1

let pp_clause ppf lits =
  Array.iter (fun l -> Format.fprintf ppf "%d " (dimacs_of_lit l)) lits;
  Format.pp_print_string ppf "0"

let pp ppf p =
  List.iter
    (fun ev ->
      match ev with
      | Input _ -> () (* the formula is not part of a DRUP file *)
      | Add lits -> Format.fprintf ppf "%a@." pp_clause lits
      | Delete lits -> Format.fprintf ppf "d %a@." pp_clause lits)
    (events p)

let to_string p = Format.asprintf "%a" pp p

let parse text =
  let p = create () in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if String.length line > 0 && line.[0] <> 'c' then begin
        let deletion = line.[0] = 'd' in
        let body =
          if deletion then String.sub line 1 (String.length line - 1) else line
        in
        let toks =
          String.split_on_char ' ' body |> List.filter (( <> ) "")
        in
        let lits = ref [] in
        let closed = ref false in
        List.iter
          (fun tok ->
            match int_of_string_opt tok with
            | None ->
              failwith
                (Printf.sprintf "Proof.parse: line %d: bad token %S"
                   (lineno + 1) tok)
            | Some 0 -> closed := true
            | Some i ->
              if !closed then
                failwith
                  (Printf.sprintf "Proof.parse: line %d: literal after 0"
                     (lineno + 1));
              lits := lit_of_dimacs i :: !lits)
          toks;
        if toks <> [] then begin
          if not !closed then
            failwith
              (Printf.sprintf "Proof.parse: line %d: unterminated clause"
                 (lineno + 1));
          let arr = Array.of_list (List.rev !lits) in
          if deletion then log_delete p arr else log_add p arr
        end
      end)
    (String.split_on_char '\n' text);
  p

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      parse (really_input_string ic n))
