(* Forward DRUP checking: an independent certifier for Unsat answers.

   The checker shares nothing with the solver but the literal
   encoding: it has its own clause store, its own watch lists and its
   own unit propagation, so a bug in the solver's propagation or
   conflict analysis cannot also hide in the check.

   Each [Add] event must have the reverse-unit-propagation (RUP)
   property against the clauses live at that point: asserting the
   negation of every literal of the lemma and propagating to fixpoint
   must yield a conflict.  After the whole log is replayed, each goal
   cube (the assumptions of one Unsat answer) must itself propagate to
   a conflict against the final clause set.  Monotonicity of unit
   propagation makes checking early goals against the final set sound:
   the solver never deletes a clause locked as a top-level reason, so
   every root-level implication it ever derived is re-derivable. *)

type clause = {
  lits : int array; (* positions 0 and 1 are the watched literals *)
  mutable active : bool;
}

type t = {
  mutable nvars : int;
  mutable assigns : int array; (* var -> -1 unassigned / 0 false / 1 true *)
  mutable watches : clause Vec.t array; (* per literal *)
  trail : int Vec.t;
  mutable qhead : int;
  index : (int list, clause list ref) Hashtbl.t; (* for deletions *)
  mutable root_conflict : bool;
  mutable clauses : int; (* live clause count, for reporting *)
}

let dummy_clause = { lits = [||]; active = false }

let create () =
  {
    nvars = 0;
    assigns = [||];
    watches = [||];
    trail = Vec.create ~dummy:0 ();
    qhead = 0;
    index = Hashtbl.create 256;
    root_conflict = false;
    clauses = 0;
  }

let var_of l = l lsr 1
let negate l = l lxor 1

let ensure_var t v =
  if v >= t.nvars then begin
    (* grow the LOGICAL size geometrically, so consecutive fresh
       variables trigger O(log n) reallocations in total — growing only
       the capacity while keeping nvars at v+1 would reallocate (and
       double) the watch array on every single new variable *)
    let n = max (v + 1) (2 * t.nvars) in
    let assigns = Array.make n (-1) in
    Array.blit t.assigns 0 assigns 0 t.nvars;
    t.assigns <- assigns;
    let old = Array.length t.watches in
    let watches =
      Array.init (2 * n) (fun i ->
          if i < old then t.watches.(i) else Vec.create ~dummy:dummy_clause ())
    in
    t.watches <- watches;
    t.nvars <- n
  end

let value t l =
  let a = t.assigns.(var_of l) in
  if a < 0 then -1 else a lxor (l land 1)

(* returns false on conflict *)
let assign t l =
  match value t l with
  | 1 -> true
  | 0 -> false
  | _ ->
    t.assigns.(var_of l) <- (if l land 1 = 0 then 1 else 0);
    Vec.push t.trail l;
    true

(* two-watched-literal unit propagation; returns false on conflict *)
let propagate t =
  let ok = ref true in
  while !ok && t.qhead < Vec.size t.trail do
    let p = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    let false_lit = negate p in
    let ws = t.watches.(false_lit) in
    let n = Vec.size ws in
    let j = ref 0 in
    let i = ref 0 in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      if c.active then begin
        if c.lits.(0) = false_lit then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- false_lit
        end;
        let first = c.lits.(0) in
        if value t first = 1 then begin
          Vec.set ws !j c;
          incr j
        end
        else begin
          let len = Array.length c.lits in
          let rec find k =
            if k >= len then -1
            else if value t c.lits.(k) <> 0 then k
            else find (k + 1)
          in
          let k = find 2 in
          if k >= 0 then begin
            c.lits.(1) <- c.lits.(k);
            c.lits.(k) <- false_lit;
            Vec.push t.watches.(c.lits.(1)) c
          end
          else begin
            Vec.set ws !j c;
            incr j;
            if not (assign t first) then begin
              ok := false;
              (* keep the remaining watch entries *)
              while !i < n do
                Vec.set ws !j (Vec.get ws !i);
                incr j;
                incr i
              done
            end
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !ok

let undo_to t mark =
  for i = Vec.size t.trail - 1 downto mark do
    t.assigns.(var_of (Vec.get t.trail i)) <- -1
  done;
  Vec.shrink t.trail mark;
  t.qhead <- mark

let key lits =
  let l = Array.to_list lits in
  List.sort_uniq compare l

(* insert a clause (already RUP-checked or an axiom) into the store,
   folding it into the root assignment when unit or empty *)
let insert t lits =
  Array.iter (fun l -> ensure_var t (var_of l)) lits;
  if not t.root_conflict then begin
    (* a literal already true at root satisfies the clause, but it must
       stay watchable in case a temporary probe is undone; put a
       non-false literal (preferring a true one) in each watch slot *)
    let lits = Array.copy lits in
    let n = Array.length lits in
    let prefer slot =
      (* move the best literal (true > unassigned > false) to [slot];
         note raw values order false (0) above unassigned (-1), so
         rank them explicitly *)
      let rank l =
        match value t l with 1 -> 2 | -1 -> 1 | _ -> 0
      in
      let best = ref slot in
      for k = slot to n - 1 do
        if rank lits.(k) > rank lits.(!best) then best := k
      done;
      let tmp = lits.(slot) in
      lits.(slot) <- lits.(!best);
      lits.(!best) <- tmp
    in
    if n = 0 then t.root_conflict <- true
    else begin
      prefer 0;
      if value t lits.(0) = 0 then
        (* every literal false at root *)
        t.root_conflict <- true
      else if n = 1 || (prefer 1; value t lits.(1) = 0 && value t lits.(0) < 1)
      then begin
        (* unit under the root assignment: fold in permanently *)
        if not (assign t lits.(0) && propagate t) then t.root_conflict <- true
      end
      else begin
        let c = { lits; active = true } in
        Vec.push t.watches.(lits.(0)) c;
        Vec.push t.watches.(lits.(1)) c;
        t.clauses <- t.clauses + 1;
        let k = key lits in
        match Hashtbl.find_opt t.index k with
        | Some r -> r := c :: !r
        | None -> Hashtbl.add t.index k (ref [ c ])
      end
    end
  end

let delete t lits =
  match Hashtbl.find_opt t.index (key lits) with
  | Some ({ contents = c :: rest } as r) ->
    c.active <- false;
    t.clauses <- t.clauses - 1;
    r := rest
  | Some { contents = [] } | None ->
    (* deleting an unknown clause only weakens the derivation; a
       corrupted log still cannot certify a wrong answer *)
    ()

(* assert every literal of [cube], propagate, expect a conflict *)
let refutes t cube =
  t.root_conflict
  ||
  let mark = Vec.size t.trail in
  List.iter (fun l -> ensure_var t (var_of l)) cube;
  let conflict =
    not (List.for_all (fun l -> assign t l) cube && propagate t)
  in
  undo_to t mark;
  conflict

(* RUP check: the negation of every literal of [lits] propagates to a
   conflict.  A lemma containing a root-true literal is subsumed and
   passes trivially. *)
let rup t lits =
  t.root_conflict
  || Array.exists (fun l -> value t l = 1) lits
  || refutes t (List.map negate (Array.to_list lits))

let check ?(goals = [ [] ]) events =
  let t = create () in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let rec steps i = function
    | [] -> Ok ()
    | ev :: rest -> (
      match ev with
      | Proof.Input lits ->
        insert t lits;
        steps (i + 1) rest
      | Proof.Add lits ->
        if rup t lits then begin
          insert t lits;
          steps (i + 1) rest
        end
        else
          err "lemma %d of the proof is not reverse-unit-propagation (%d lits)"
            i (Array.length lits)
      | Proof.Delete lits ->
        delete t lits;
        steps (i + 1) rest)
  in
  match steps 0 events with
  | Error _ as e -> e
  | Ok () ->
    let rec check_goals i = function
      | [] -> Ok ()
      | g :: rest ->
        if refutes t g then check_goals (i + 1) rest
        else
          err
            "goal %d is not refuted by unit propagation over the certified \
             clauses (%d clauses live)"
            i t.clauses
    in
    check_goals 0 goals

let check_cnf cnf ?goals events =
  let inputs =
    List.map (fun c -> Proof.Input (Array.of_list c)) cnf.Cnf.clauses
  in
  check ?goals (inputs @ events)
