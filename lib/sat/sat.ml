(** Satisfiability substrate: a from-scratch CDCL solver, clause-list
    CNF staging, DIMACS I/O, and the self-certification stack (clausal
    proof logs, an independent DRUP checker, and deterministic fault
    injection for testing the checks themselves). *)

module Vec = Vec
module Solver = Solver
module Simplify = Simplify
module Cnf = Cnf
module Dimacs = Dimacs
module Proof = Proof
module Drup = Drup
module Chaos = Chaos
