(** Independent forward checker for DRUP derivations.

    The checker re-derives an [Unsat] answer from a {!Proof} event log
    using nothing but its own unit propagation: every {!Proof.Add}
    lemma must be a reverse-unit-propagation consequence of the clauses
    live at that point, and every goal cube must propagate to a
    conflict against the final clause set.

    Soundness of checking all goals against the {e final} set rests on
    unit propagation being monotone in the clause set together with the
    solver never deleting a clause locked as a top-level reason, so the
    set only ever gains root-level propagation power. *)

val check : ?goals:Solver.lit list list -> Proof.event list -> (unit, string) result
(** [check ~goals events] replays the derivation and then refutes each
    goal cube.  [goals] defaults to [[[]]] — the empty cube, i.e. plain
    unsatisfiability of the input clauses.  For an [Unsat] answer under
    assumptions, pass one cube per answer being certified (the
    assumption literals of that call).  [Error msg] pinpoints the first
    failing lemma or goal. *)

val check_cnf :
  Cnf.t -> ?goals:Solver.lit list list -> Proof.event list -> (unit, string) result
(** Like {!check} but seeds the axioms from a {!Cnf.t} instead of
    expecting {!Proof.Input} events — the shape used when re-checking a
    dumped DRUP file against its DIMACS formula. *)
