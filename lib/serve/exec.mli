(** One verification request, executed to a response body behind a
    total exception barrier.

    This is the single request path: [diam serve] workers and
    [diam batch] items both come through {!run}, so the barrier,
    budget handling and cache semantics cannot drift between the
    two front-ends. *)

type outcome =
  | Verdict of {
      verdict : Core.Engine.verdict;
      body : (string * Obs.Report.json) list;
      cache : string;
    }
      (** a verification outcome: the raw engine verdict (for
          front-ends like [diam batch] that render their own lines),
          the response fields (verdict, strategy, depth/time or
          unknown+reason+attempts, plus [injections] for chaos
          requests) and the cache status (["hit"], ["miss"],
          ["purged"] or ["bypass"]).  The body is deliberately free of timing —
          responses must be byte-identical across runs and [--jobs]
          values. *)
  | Failed of { code : string; detail : string }
      (** a structured error: ["bad-json"] | ["bad-request"] |
          ["parse-error"] | ["io-error"] | ["internal"] *)

val run :
  cache:Core.Bcache.t ->
  chaos_seed:int option ->
  ?budget:Obs.Budget.t ->
  ?corr:string ->
  Request.t ->
  outcome
(** Execute one [Verify] request: parse the netlist, resolve the
    target, build the per-request {!Obs.Budget} from [timeout_ms]
    (degrading to ["verdict":"unknown","reason":"budget-exhausted"]
    on expiry), and verify through {!Core.Engine.verify_cached}.
    [budget] overrides the request's own timeout — [diam batch] uses
    it to slice conflict/BDD allowances the wire format has no field
    for.

    The request runs under the correlation id [corr] (the server
    passes its deterministic ["req-<seq>"]; absent, one is
    generated): every log line, trace span and solver heartbeat it
    produces carries the id, and the request is registered in the
    {!Obs.Heartbeat} in-flight table for its whole execution.
    Failure outcomes are additionally logged — [Failed] with
    ["internal"] at error level (a crossed exception barrier), every
    other code at warn.

    [chaos_seed] armed (the server read [DIAMBOUND_CHAOS_SEED])
    enables two drill behaviors.  A request's ["chaos"] field injects
    the named {!Sat.Chaos} fault scoped to the executing worker domain
    (["crash"] raises instead, exercising the barrier); a faulted
    request bypasses the cache in both directions (["cache":"bypass"])
    — it may neither mask the injection with a clean cached answer nor
    write a corrupted one back.  And every cache hit of a non-chaos
    request is differentially replayed — a {e conclusive} mismatch
    purges all entries for the cone (["serve.cache.poisoned_purged"])
    and serves the fresh answer as ["cache":"purged"]; a replay that
    merely ran out of the requester's budget convicts nothing and the
    hit is served as usual.

    Never raises: any escaping exception becomes
    [Failed {code = "internal"; _}] and bumps
    ["serve.request_error"]. *)
