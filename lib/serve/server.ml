module Json = Obs.Report
module Stats = Obs.Stats

type config = {
  jobs : int;
  queue_limit : int option;
  cache_mb : int;
  chaos_seed : int option;
  stall_window_s : float option;
  flight_path : string option;
  metrics_interval_s : float option;
}

let default_config =
  {
    jobs = 1;
    queue_limit = None;
    cache_mb = 64;
    chaos_seed = None;
    stall_window_s = None;
    flight_path = None;
    metrics_interval_s = None;
  }

type ending = Eof | Shutdown_requested

let schema =
  [
    "serve.requests";
    "serve.responses";
    "serve.errors";
    "serve.shed";
    "serve.coalesced";
    "serve.stalls";
    "serve.drains";
    "serve.worker.restarts";
    "watchdog.stalls";
    "watchdog.dumps";
  ]

let () = Stats.declare schema

(* deterministic per-request correlation id: the admission sequence
   number is assigned in request order on the intake thread, so the
   same corpus always yields the same ids *)
let corr_of_seq seq = Printf.sprintf "req-%d" seq

(* a constant, so overload responses are byte-identical across runs *)
let retry_after_ms = 50

type follower = { fseq : int; fid : string option }

type session = {
  cfg : config;
  pool : Sched.Pool.t;
  cache : Core.Bcache.t;
  output : string -> unit;
  t0 : float; (* session start, the flight recorder's time origin *)
  (* reorder buffer: responses complete in any order across worker
     domains but are WRITTEN strictly in request order, which is what
     makes a session's output byte-identical for every --jobs value *)
  elock : Mutex.t;
  pending : (int, string) Hashtbl.t;
  mutable next_seq : int; (* first seq not yet written *)
  (* coalescing registry: leader key -> attached duplicates; entries
     are pruned when the leader emits, bounding the registry by the
     number of in-flight requests *)
  clock : Mutex.t;
  coalesce : (string, follower list ref) Hashtbl.t;
  (* stall release generation: a stall parks its worker until the
     generation moves past the one it was admitted under *)
  glock : Mutex.t;
  gcond : Condition.t;
  mutable gen : int;
  parked : int Atomic.t; (* workers parked in the current generation *)
  (* main-thread-only admission state *)
  mutable seq : int;
  mutable stop : bool;
  mutable stalls_admitted : int; (* stalls alive in the current generation *)
}

(* Deliver a completed response.  Whichever thread completes the
   next-in-order response flushes the consecutive run, so emission
   needs no dedicated thread and a lone request is answered the moment
   it completes. *)
let emit s seq line =
  Mutex.lock s.elock;
  Hashtbl.replace s.pending seq line;
  while Hashtbl.mem s.pending s.next_seq do
    s.output (Hashtbl.find s.pending s.next_seq);
    Stats.count "serve.responses" 1;
    Hashtbl.remove s.pending s.next_seq;
    s.next_seq <- s.next_seq + 1
  done;
  Mutex.unlock s.elock

let heal s =
  let n = Sched.Pool.heal s.pool in
  if n > 0 then begin
    Stats.count "serve.worker.restarts" n;
    Obs.Log.warn "serve.worker.respawned" [ ("workers", Json.Int n) ]
  end

let release_stalls s =
  Mutex.lock s.glock;
  s.gen <- s.gen + 1;
  Atomic.set s.parked 0;
  s.stalls_admitted <- 0;
  Condition.broadcast s.gcond;
  Mutex.unlock s.glock

(* Wait until every response before [upto] has been written.  Polls
   rather than waits on a condition so dead (poisoned) workers are
   healed while waiting — their queued jobs must still run for the
   drain to complete. *)
let wait_emitted s upto =
  let settled () =
    Mutex.lock s.elock;
    let d = s.next_seq >= upto in
    Mutex.unlock s.elock;
    d
  in
  while not (settled ()) do
    heal s;
    Unix.sleepf 0.002
  done

let render_outcome ~id ~cache_override outcome =
  match outcome with
  | Exec.Verdict { body; cache; _ } ->
    let cache = Option.value cache_override ~default:cache in
    Request.render
      ((Request.id_field id :: body) @ [ ("cache", Json.String cache) ])
  | Exec.Failed { code; detail } ->
    Stats.count "serve.errors" 1;
    Request.render_error ~id { Request.err_id = id; code; detail }

let bad_request ?corr ~id detail =
  Stats.count "serve.errors" 1;
  Obs.Log.warn "serve.bad_request"
    ((match corr with
     | Some c -> [ ("corr", Json.String c) ]
     | None -> [])
    @ [
        ( "id",
          match id with Some s -> Json.String s | None -> Json.Null );
        ("detail", Json.String detail);
      ]);
  Request.render_error ~id { Request.err_id = id; code = "bad-request"; detail }

(* [true] iff the job was accepted.  Without --queue-limit admission
   BLOCKS on a full queue (deterministic backpressure: the session
   simply stops reading input); with it, admission sheds instead. *)
let submit_or_shed s ~corr ~id job =
  match s.cfg.queue_limit with
  | Some limit ->
    if Sched.Pool.try_submit s.pool job then true
    else begin
      Stats.count "serve.shed" 1;
      Obs.Log.warn "serve.shed"
        [
          ("corr", Json.String corr);
          ("id", match id with Some s -> Json.String s | None -> Json.Null);
          ("queue_limit", Json.Int limit);
        ];
      false
    end
  | None ->
    Sched.Pool.submit s.pool job;
    true

let handle_verify s seq (r : Request.t) =
  let corr = corr_of_seq seq in
  let key = Request.coalesce_key r in
  let attach () =
    match key with
    | None -> false
    | Some k ->
      Mutex.lock s.clock;
      let attached =
        match Hashtbl.find_opt s.coalesce k with
        | Some fs ->
          fs := { fseq = seq; fid = r.Request.id } :: !fs;
          true
        | None -> false
      in
      Mutex.unlock s.clock;
      attached
  in
  if attach () then Stats.count "serve.coalesced" 1
  else begin
    (* become the leader BEFORE submitting, so a duplicate admitted
       next can attach while this request is still queued *)
    (match key with
    | Some k ->
      Mutex.lock s.clock;
      Hashtbl.replace s.coalesce k (ref []);
      Mutex.unlock s.clock
    | None -> ());
    let job () =
      let t0 = Stats.now () in
      let outcome =
        Exec.run ~cache:s.cache ~chaos_seed:s.cfg.chaos_seed ~corr r
      in
      Stats.dist "serve.latency_us" ((Stats.now () -. t0) *. 1e6);
      let followers =
        match key with
        | None -> []
        | Some k ->
          Mutex.lock s.clock;
          let fs =
            match Hashtbl.find_opt s.coalesce k with
            | Some fs -> !fs
            | None -> []
          in
          Hashtbl.remove s.coalesce k;
          Mutex.unlock s.clock;
          List.rev fs
      in
      emit s seq (render_outcome ~id:r.Request.id ~cache_override:None outcome);
      (* an attached duplicate was served from the leader's in-flight
         result: that IS a cache hit from the client's point of view *)
      let fcache =
        match outcome with Exec.Verdict _ -> Some "hit" | Exec.Failed _ -> None
      in
      List.iter
        (fun f ->
          emit s f.fseq (render_outcome ~id:f.fid ~cache_override:fcache outcome))
        followers
    in
    if not (submit_or_shed s ~corr ~id:r.Request.id job) then begin
      (match key with
      | Some k ->
        Mutex.lock s.clock;
        Hashtbl.remove s.coalesce k;
        Mutex.unlock s.clock
      | None -> ());
      emit s seq (Request.render_overloaded ~id:r.Request.id ~retry_after_ms)
    end
  end

let handle_stall s seq (r : Request.t) =
  let corr = corr_of_seq seq in
  match s.cfg.queue_limit with
  | None ->
    (* with blocking admission a stalled worker would eventually
       deadlock the intake; the drill op therefore requires the
       load-shedding regime *)
    emit s seq (bad_request ~corr ~id:r.Request.id "stall requires --queue-limit")
  | Some _ ->
    if s.stalls_admitted >= max 1 s.cfg.jobs then
      (* a stall beyond the worker count would sit in the queue
         forever: every worker is already parked *)
      emit s seq
        (bad_request ~corr ~id:r.Request.id "all workers already stalled")
    else begin
      Stats.count "serve.stalls" 1;
      let g0 = s.gen in
      let job () =
        (* the parked worker is visible to the watchdog: it registers
           in the in-flight table and — by design — never beats, so
           the stall drill exercises the whole stalled-request path *)
        Obs.Log.with_corr corr (fun () ->
            Obs.Heartbeat.register ~phase:"stall.parked" corr;
            Fun.protect
              ~finally:(fun () -> Obs.Heartbeat.finish corr)
              (fun () ->
                Mutex.lock s.glock;
                (* park only in the stall's own generation: a release
                   between admission and pickup means there is nothing
                   left to drill *)
                if s.gen = g0 then begin
                  Atomic.incr s.parked;
                  while s.gen = g0 do
                    Condition.wait s.gcond s.glock
                  done
                end;
                Mutex.unlock s.glock));
        emit s seq (Request.render_ok ~id:r.Request.id Request.Stall [])
      in
      if submit_or_shed s ~corr ~id:r.Request.id job then begin
        s.stalls_admitted <- s.stalls_admitted + 1;
        (* the park handshake: admit no more input until the worker has
           actually parked, so queue occupancy — and therefore which
           subsequent requests shed — is deterministic *)
        while Atomic.get s.parked < s.stalls_admitted do
          heal s;
          Unix.sleepf 0.001
        done
      end
      else
        emit s seq (Request.render_overloaded ~id:r.Request.id ~retry_after_ms)
    end

let handle_poison s seq (r : Request.t) =
  let corr = corr_of_seq seq in
  match s.cfg.chaos_seed with
  | None ->
    emit s seq
      (bad_request ~corr ~id:r.Request.id
         "poison requires the server to be armed (DIAMBOUND_CHAOS_SEED)")
  | Some _ ->
    let job () =
      (* respond first — every admitted request gets exactly one
         response — then kill this worker; supervision respawns it *)
      emit s seq (Request.render_ok ~id:r.Request.id Request.Poison []);
      raise Sched.Pool.Poison
    in
    if not (submit_or_shed s ~corr ~id:r.Request.id job) then
      emit s seq (Request.render_overloaded ~id:r.Request.id ~retry_after_ms)

let quiesce s upto =
  release_stalls s;
  wait_emitted s upto;
  heal s

(* ----- watchdog / flight recorder -----

   A monitor domain (spawned per session when a stall window or a
   metrics interval is configured) scans the in-flight heartbeat
   table.  A request whose heartbeat has not advanced within the
   window is logged at warn with its correlation id, and the whole
   live state — every in-flight request as a span, its recent beat
   history as instants, one queue/pool state instant — is appended to
   the flight-recorder file in the Trace JSONL schema, so
   [diam trace-report] reads a dump like any other capture.  The
   recorder only observes: it writes no response bytes and never
   touches a verdict. *)

let flight_events s ~now ~stalled_corrs views =
  let rel t = (t -. s.t0) *. 1e6 in
  let state =
    {
      Obs.Trace.name = "flight.state";
      kind = Obs.Trace.Instant;
      ts_us = rel now;
      dur_us = 0.;
      args =
        [
          ("jobs", Obs.Trace.Int s.cfg.jobs);
          ("queued", Obs.Trace.Int (Sched.Pool.queued s.pool));
          ("parked", Obs.Trace.Int (Atomic.get s.parked));
          (* racy reads of intake-thread fields — diagnostics only *)
          ("admitted", Obs.Trace.Int s.seq);
          ("emitted", Obs.Trace.Int s.next_seq);
          ("inflight", Obs.Trace.Int (List.length views));
        ];
    }
  in
  let of_view (v : Obs.Heartbeat.view) =
    let b = v.Obs.Heartbeat.v_last in
    let request =
      {
        Obs.Trace.name = "flight.request";
        kind = Obs.Trace.Span;
        ts_us = rel v.Obs.Heartbeat.v_started;
        dur_us = (now -. v.Obs.Heartbeat.v_started) *. 1e6;
        args =
          [
            ("corr", Obs.Trace.String v.Obs.Heartbeat.v_corr);
            ("phase", Obs.Trace.String v.Obs.Heartbeat.v_phase);
            ("beats", Obs.Trace.Int v.Obs.Heartbeat.v_beats);
            ("conflicts", Obs.Trace.Int b.Obs.Heartbeat.conflicts);
            ("propagations", Obs.Trace.Int b.Obs.Heartbeat.propagations);
            ("trail", Obs.Trace.Int b.Obs.Heartbeat.trail);
            ("learnts", Obs.Trace.Int b.Obs.Heartbeat.learnts);
            ( "stalled",
              Obs.Trace.Bool
                (List.mem v.Obs.Heartbeat.v_corr stalled_corrs) );
          ];
      }
    in
    let beats =
      List.map
        (fun (b : Obs.Heartbeat.beat) ->
          {
            Obs.Trace.name = "flight.beat";
            kind = Obs.Trace.Instant;
            ts_us = rel b.Obs.Heartbeat.at;
            dur_us = 0.;
            args =
              [
                ("corr", Obs.Trace.String v.Obs.Heartbeat.v_corr);
                ("conflicts", Obs.Trace.Int b.Obs.Heartbeat.conflicts);
                ("propagations", Obs.Trace.Int b.Obs.Heartbeat.propagations);
                ("trail", Obs.Trace.Int b.Obs.Heartbeat.trail);
                ("learnts", Obs.Trace.Int b.Obs.Heartbeat.learnts);
              ];
          })
        v.Obs.Heartbeat.v_history
    in
    request :: beats
  in
  state :: List.concat_map of_view views

let dump_flight s ~now stalled =
  match s.cfg.flight_path with
  | None -> ()
  | Some path -> (
    (* best-effort ring flush so an active --trace capture also holds
       everything this domain buffered (JSONL traces are per-event
       flushed already) *)
    Obs.Trace.flush ();
    let views = Obs.Heartbeat.snapshot () in
    let stalled_corrs =
      List.map (fun (v : Obs.Heartbeat.view) -> v.Obs.Heartbeat.v_corr) stalled
    in
    let events = flight_events s ~now ~stalled_corrs views in
    match open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path with
    | exception Sys_error msg ->
      Format.eprintf "flight-recorder: cannot open %s: %s@." path msg
    | oc ->
      (* one appended batch per firing, closed immediately: the file
         is complete on disk even if the server dies right after *)
      List.iter
        (fun e ->
          output_string oc (Json.to_string (Obs.Trace.to_json e));
          output_char oc '\n')
        events;
      close_out_noerr oc;
      Stats.count "watchdog.dumps" 1;
      Obs.Log.info "watchdog.dump"
        [ ("file", Json.String path); ("inflight", Json.Int (List.length views)) ])

let monitor_tick_s = 0.01

let monitor_loop s stop =
  let next_metrics =
    ref
      (match s.cfg.metrics_interval_s with
      | Some iv -> Stats.now () +. iv
      | None -> infinity)
  in
  while not (Atomic.get stop) do
    Unix.sleepf monitor_tick_s;
    (match s.cfg.stall_window_s with
    | None -> ()
    | Some window_s ->
      let stalled = Obs.Heartbeat.stalled ~window_s in
      if stalled <> [] then begin
        let now = Stats.now () in
        List.iter
          (fun (v : Obs.Heartbeat.view) ->
            Stats.count "watchdog.stalls" 1;
            Obs.Log.warn "watchdog.stall"
              [
                ("corr", Json.String v.Obs.Heartbeat.v_corr);
                ("phase", Json.String v.Obs.Heartbeat.v_phase);
                ("idle_ms", Json.Int (int_of_float (v.Obs.Heartbeat.v_idle_s *. 1e3)));
                ("age_ms", Json.Int (int_of_float (v.Obs.Heartbeat.v_age_s *. 1e3)));
                ("beats", Json.Int v.Obs.Heartbeat.v_beats);
              ])
          stalled;
        dump_flight s ~now stalled
      end);
    match s.cfg.metrics_interval_s with
    | Some iv when Stats.now () >= !next_metrics ->
      next_metrics := Stats.now () +. iv;
      (* the flag is the opt-in: emitted past the level filter, to the
         log sink (stderr or file), never stdout *)
      Obs.Log.force Obs.Log.Info "metrics" (Obs.Metrics.fields ())
    | _ -> ()
  done

let handle_line s line =
  let seq = s.seq in
  s.seq <- seq + 1;
  Stats.count "serve.requests" 1;
  match Request.parse line with
  | Error e ->
    Stats.count "serve.errors" 1;
    Obs.Log.warn "serve.bad_request"
      [
        ("corr", Json.String (corr_of_seq seq));
        ( "id",
          match e.Request.err_id with Some s -> Json.String s | None -> Json.Null
        );
        ("code", Json.String e.Request.code);
        ("detail", Json.String e.Request.detail);
      ];
    emit s seq (Request.render_error ~id:e.Request.err_id e)
  | Ok r -> (
    match r.Request.op with
    | Request.Verify -> handle_verify s seq r
    | Request.Ping -> emit s seq (Request.render_ok ~id:r.Request.id Request.Ping [])
    | Request.Metrics ->
      (* answered inline on the intake thread: a snapshot needs no
         worker, and the reorder buffer keeps it in request order *)
      emit s seq
        (Request.render_ok ~id:r.Request.id Request.Metrics
           [ ("text", Json.String (Obs.Metrics.prometheus ())) ])
    | Request.Stall -> handle_stall s seq r
    | Request.Poison -> handle_poison s seq r
    | Request.Drain ->
      Stats.count "serve.drains" 1;
      quiesce s seq;
      emit s seq (Request.render_ok ~id:r.Request.id Request.Drain [])
    | Request.Shutdown ->
      quiesce s seq;
      s.stop <- true;
      emit s seq (Request.render_ok ~id:r.Request.id Request.Shutdown []))

let make_cache cfg =
  Core.Bcache.create ~prefix:"serve.cache"
    ~max_bytes:(max 1 cfg.cache_mb * 1024 * 1024)
    ()

let run_session ?cache cfg ~input ~output () =
  let cache = match cache with Some c -> c | None -> make_cache cfg in
  let jobs = max 1 cfg.jobs in
  Sched.Pool.with_pool ?capacity:cfg.queue_limit ~jobs (fun pool ->
      let s =
        {
          cfg;
          pool;
          cache;
          output;
          t0 = Stats.now ();
          elock = Mutex.create ();
          pending = Hashtbl.create 64;
          next_seq = 0;
          clock = Mutex.create ();
          coalesce = Hashtbl.create 16;
          glock = Mutex.create ();
          gcond = Condition.create ();
          gen = 0;
          parked = Atomic.make 0;
          seq = 0;
          stop = false;
          stalls_admitted = 0;
        }
      in
      let rec loop () =
        if s.stop then Shutdown_requested
        else
          match input () with
          | None -> Eof
          | Some line ->
            heal s;
            if String.trim line = "" then loop ()
            else begin
              handle_line s line;
              loop ()
            end
      in
      (* the monitor rides alongside the session only when asked for:
         live telemetry must cost nothing when off *)
      let mon_stop = Atomic.make false in
      let monitor =
        if cfg.stall_window_s <> None || cfg.metrics_interval_s <> None then
          Some (Domain.spawn (fun () -> monitor_loop s mon_stop))
        else None
      in
      (* EOF is an implicit drain: release any parked drill workers and
         wait for every admitted response to reach the sink — also on
         the way out of an exception, or the pool shutdown below would
         join a parked worker forever *)
      Fun.protect
        ~finally:(fun () ->
          quiesce s s.seq;
          Atomic.set mon_stop true;
          Option.iter Domain.join monitor)
        loop)

let run_stdio cfg =
  let input () = try Some (input_line stdin) with End_of_file -> None in
  let output line =
    print_string line;
    print_char '\n';
    flush stdout
  in
  ignore (run_session cfg ~input ~output () : ending);
  0

let run_socket cfg ~path =
  (* one shared cache across connections: the whole point of a
     long-lived server is that later sessions hit what earlier ones
     proved *)
  let cache = make_cache cfg in
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup_path () =
    try Unix.unlink path with Unix.Unix_error _ -> () | Sys_error _ -> ()
  in
  cleanup_path ();
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  (* sequential accept: one JSONL session at a time, each with its own
     pool; parallelism lives inside a session (--jobs), not across
     connections *)
  let rec accept_loop () =
    let fd, _ = Unix.accept sock in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let input () = try Some (input_line ic) with End_of_file -> None in
    let output line =
      output_string oc line;
      output_char oc '\n';
      flush oc
    in
    let ending =
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> run_session ~cache cfg ~input ~output ())
    in
    match ending with Shutdown_requested -> () | Eof -> accept_loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      cleanup_path ())
    accept_loop;
  0
