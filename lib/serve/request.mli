(** The serve wire format: one JSON object per line, request in,
    response out, in request order.

    Request fields (all but the netlist optional):
    {v
    { "id": <string>,            echoed on the response (null if absent)
      "op": "verify" | "ping" | "metrics" | "stall" | "drain"
            | "poison" | "shutdown",
      "netlist": <bench text> | "netlist_file": <path>,   (exclusive)
      "target": <name>,          defaults to the netlist's only target
      "timeout_ms": <int>,       per-request budget (0 = already expired)
      "certify": <bool>,         default true
      "cutoff": <int>,           engine cutoff override
      "chaos": <fault> }         only honored when the server is armed
    v}

    Unknown fields are ignored (forward compatibility); wrongly-typed
    fields are a ["bad-request"] error.  The error taxonomy, response
    shapes and exit codes are documented in README "Server mode". *)

type source = Inline of string | File of string

type op = Verify | Ping | Metrics | Stall | Drain | Poison | Shutdown
(** [Metrics] answers with the current Prometheus text exposition
    (counters, spans, dist percentiles, per-request heartbeat gauges)
    in a ["text"] field — the one response whose body is
    time-dependent, so determinism drills must exclude it. *)

val op_name : op -> string

type t = {
  id : string option;
  op : op;
  source : source option;
  target : string option;
  timeout_ms : int option;
  certify : bool;
  cutoff : int option;
  chaos : string option;
}

type error = { err_id : string option; code : string; detail : string }

val parse : string -> (t, error) result
(** Parse one request line.  Malformed JSON is ["bad-json"], a
    well-formed object violating the schema is ["bad-request"]; in
    both cases the [id] is salvaged when one was readable, so even an
    error response correlates with its request. *)

val of_json : Obs.Report.json -> (t, error) result

val coalesce_key : t -> string option
(** A digest identifying requests whose responses must coincide: only
    [Verify] requests without [chaos], keyed on everything but [id].
    [None] marks the request non-coalescable. *)

(** {1 Response rendering} *)

val id_field : string option -> string * Obs.Report.json
val render : (string * Obs.Report.json) list -> string
val render_error : id:string option -> error -> string
val render_ok : id:string option -> op -> (string * Obs.Report.json) list -> string
val render_overloaded : id:string option -> retry_after_ms:int -> string
