module Json = Obs.Report
module Engine = Core.Engine
module Bcache = Core.Bcache

type outcome =
  | Verdict of {
      verdict : Engine.verdict;
      body : (string * Json.json) list;
      cache : string;
    }
  | Failed of { code : string; detail : string }

let schema =
  [
    "serve.chaos_requests";
    "serve.cache.poisoned_purged";
    "serve.request_error";
  ]

let () = Obs.Stats.declare schema

let fault_of_name = function
  | "flip-to-unsat" -> Some Sat.Chaos.Flip_to_unsat
  | "flip-to-sat" -> Some Sat.Chaos.Flip_to_sat
  | "corrupt-model" -> Some Sat.Chaos.Corrupt_model
  | "drop-proof" -> Some Sat.Chaos.Drop_proof
  | _ -> None

(* timing-free comparison for the differential replay: two verdicts
   agree iff strategy and depth/time (and, for inconclusive, the
   attempt reasons) coincide — the same notion the campaign oracle
   uses *)
let brief = function
  | Engine.Proved { strategy; depth } ->
    Printf.sprintf "P(%s,%d)" strategy depth
  | Engine.Violated { strategy; cex } ->
    Printf.sprintf "V(%s,%d)" strategy cex.Bmc.depth
  | Engine.Inconclusive { attempts } ->
    "I("
    ^ String.concat ";"
        (List.map
           (fun (a : Engine.attempt) -> a.Engine.strategy ^ "=" ^ a.Engine.reason)
           attempts)
    ^ ")"

let body_of_verdict ?injections v =
  let base =
    match v with
    | Engine.Proved { strategy; depth } ->
      [
        ("verdict", Json.String "proved");
        ("strategy", Json.String strategy);
        ("depth", Json.Int depth);
      ]
    | Engine.Violated { strategy; cex } ->
      [
        ("verdict", Json.String "violated");
        ("strategy", Json.String strategy);
        ("time", Json.Int cex.Bmc.depth);
      ]
    | Engine.Inconclusive { attempts } ->
      let reason =
        if Engine.exhausted v then Engine.budget_reason
        else if Engine.cert_failed v <> None then Engine.cert_fail_reason
        else "strategies-exhausted"
      in
      [
        ("verdict", Json.String "unknown");
        ("reason", Json.String reason);
        ( "attempts",
          Json.List
            (List.map
               (fun (a : Engine.attempt) ->
                 Json.Obj
                   [
                     ("strategy", Json.String a.Engine.strategy);
                     ("reason", Json.String a.Engine.reason);
                   ])
               attempts) );
      ]
  in
  match injections with
  | Some n -> base @ [ ("injections", Json.Int n) ]
  | None -> base

let cache_name = function
  | Engine.Cache_hit -> "hit"
  | Engine.Cache_miss -> "miss"

(* [override] (diam batch's per-problem budget, which may carry
   conflict/BDD allowances the wire format has no field for) wins over
   the request's own timeout *)
let budget_of ?override (r : Request.t) =
  match override with
  | Some b -> b
  | None -> (
    match r.Request.timeout_ms with
    | None -> Obs.Budget.unlimited
    | Some ms ->
      Obs.Budget.create ~timeout_s:(float_of_int (max 0 ms) /. 1000.) ())

(* the cone fingerprint inside a cache key: both "v:<fp>:..." and
   "b:<fp>:..." embed the 32-hex-char MD5 right after the kind tag *)
let fp_of_vkey vkey = String.sub vkey 2 32

(* fallback correlation ids for front-ends that pass none (diam
   batch); the server passes deterministic "req-<seq>" ids instead *)
let corr_seq = Atomic.make 0

let run ~cache ~chaos_seed ?budget ?corr (r : Request.t) =
  let corr =
    match corr with
    | Some c -> c
    | None -> Printf.sprintf "exec-%d" (Atomic.fetch_and_add corr_seq 1)
  in
  let id_json =
    match r.Request.id with Some s -> Json.String s | None -> Json.Null
  in
  let go () =
    match r.Request.source with
    | None -> Failed { code = "bad-request"; detail = "missing netlist" }
    | Some source -> (
      match
        match source with
        | Request.Inline text -> Textio.Bench_io.parse text
        | Request.File path -> Textio.Bench_io.parse_file path
      with
      | exception Textio.Parse_error { line; msg } ->
        Failed
          {
            code = "parse-error";
            detail = Printf.sprintf "line %d: %s" line msg;
          }
      | exception Sys_error msg -> Failed { code = "io-error"; detail = msg }
      | net -> (
        let targets = Netlist.Net.targets net in
        let target =
          match r.Request.target with
          | Some t ->
            if List.mem_assoc t targets then Ok t
            else Error ("unknown target " ^ t)
          | None -> (
            match targets with
            | [ (t, _) ] -> Ok t
            | [] -> Error "netlist has no targets"
            | _ -> Error "netlist has several targets; name one")
        in
        match target with
        | Error detail -> Failed { code = "bad-request"; detail }
        | Ok target -> (
          let config =
            match r.Request.cutoff with
            | Some cutoff -> { Engine.default with Engine.cutoff }
            | None -> Engine.default
          in
          let certify = r.Request.certify in
          let verify () =
            Engine.verify_cached ~config
              ~budget:(budget_of ?override:budget r)
              ~certify ~cache net ~target
          in
          match (r.Request.chaos, chaos_seed) with
          | Some _, None ->
            Failed
              {
                code = "bad-request";
                detail = "chaos requires the server to be armed (DIAMBOUND_CHAOS_SEED)";
              }
          | Some "crash", Some _ ->
            (* the crash drill: an exception escaping the request body,
               contained by the barrier in [run] *)
            failwith "chaos: injected crash"
          | Some name, Some seed -> (
            Obs.Stats.count "serve.chaos_requests" 1;
            match fault_of_name name with
            | None ->
              Failed
                { code = "bad-request"; detail = "unknown chaos fault " ^ name }
            | Some fault ->
              (* scoped to this worker domain: concurrent innocent
                 requests on other workers never observe the fault.
                 The cache is bypassed in BOTH directions — a fault
                 must neither read a clean cached answer (it would mask
                 the injection) nor write anything back *)
              let fresh () =
                Engine.verify_portfolio ~config
                  ~budget:(budget_of ?override:budget r)
                  ~certify net ~target
              in
              let v, injections =
                Sat.Chaos.with_fault_scoped ~seed fault fresh
              in
              Verdict
                {
                  verdict = v;
                  body = body_of_verdict ~injections v;
                  cache = "bypass";
                })
          | None, _ -> (
            let v, status = verify () in
            match (status, chaos_seed) with
            | Engine.Cache_hit, Some _ -> (
              (* Differential replay under chaos arming: a hit is
                 re-derived from scratch before being served.  A
                 mismatch means the cached entry is poisoned — purge
                 everything about this cone and serve the fresh
                 answer, so a fault can never be replayed out of the
                 cache. *)
              let fresh =
                Engine.verify_portfolio ~config
                  ~budget:(budget_of ?override:budget r)
                  ~certify net ~target
              in
              if String.equal (brief v) (brief fresh) || Engine.exhausted fresh
              then
                (* an exhausted replay (the requester brought a starved
                   budget) is no evidence against the cached proof —
                   only a CONCLUSIVE disagreement convicts an entry *)
                Verdict { verdict = v; body = body_of_verdict v; cache = "hit" }
              else begin
                let vkey, _ = Engine.cache_keys ~config ~certify net ~target in
                let fp = fp_of_vkey vkey in
                let holds_fp k =
                  String.length k >= 34 && String.equal (String.sub k 2 32) fp
                in
                let purged = Bcache.purge cache (fun k _ -> holds_fp k) in
                Obs.Stats.count "serve.cache.poisoned_purged" (max 1 purged);
                Obs.Log.error "serve.cache.poisoned"
                  [
                    ("id", id_json);
                    ("fingerprint", Json.String fp);
                    ("purged", Json.Int purged);
                  ];
                Verdict
                  {
                    verdict = fresh;
                    body = body_of_verdict fresh;
                    cache = "purged";
                  }
              end)
            | _ ->
              Verdict
                {
                  verdict = v;
                  body = body_of_verdict v;
                  cache = cache_name status;
                }
            ))))
  in
  (* The per-request exception barrier: NOTHING a request does — parse
     failure, solver crash, injected fault — may take the serving loop
     down.  Anything escaping the handlers above becomes a structured
     "internal" error response.

     The whole request runs under its correlation context (log lines,
     trace spans and heartbeats all join on [corr]) and is visible in
     the in-flight table from first to last instruction. *)
  Obs.Log.with_corr corr (fun () ->
      Obs.Heartbeat.register ~phase:"start" corr;
      Fun.protect
        ~finally:(fun () -> Obs.Heartbeat.finish corr)
        (fun () ->
          let outcome =
            match go () with
            | outcome -> outcome
            | exception e ->
              Obs.Stats.count "serve.request_error" 1;
              Failed { code = "internal"; detail = Printexc.to_string e }
          in
          (* formerly-silent failure paths become log events; the
             response itself is unchanged *)
          (match outcome with
          | Failed { code = "internal"; detail } ->
            Obs.Log.error "serve.request.crashed"
              [ ("id", id_json); ("detail", Json.String detail) ]
          | Failed { code; detail } ->
            Obs.Log.warn "serve.request.failed"
              [
                ("id", id_json);
                ("code", Json.String code);
                ("detail", Json.String detail);
              ]
          | Verdict _ -> ());
          outcome))
