module Json = Obs.Report

type source = Inline of string | File of string

type op = Verify | Ping | Metrics | Stall | Drain | Poison | Shutdown

let op_name = function
  | Verify -> "verify"
  | Ping -> "ping"
  | Metrics -> "metrics"
  | Stall -> "stall"
  | Drain -> "drain"
  | Poison -> "poison"
  | Shutdown -> "shutdown"

type t = {
  id : string option;
  op : op;
  source : source option;
  target : string option;
  timeout_ms : int option;
  certify : bool;
  cutoff : int option;
  chaos : string option;
}

type error = { err_id : string option; code : string; detail : string }

let op_of_name = function
  | "verify" -> Some Verify
  | "ping" -> Some Ping
  | "metrics" -> Some Metrics
  | "stall" -> Some Stall
  | "drain" -> Some Drain
  | "poison" -> Some Poison
  | "shutdown" -> Some Shutdown
  | _ -> None

(* Schema checks are strict on TYPE (a number where a string belongs
   is a client bug worth surfacing) but lenient on unknown fields
   (forward compatibility: an older server ignores what a newer client
   adds). *)
let of_json json =
  match json with
  | Json.Obj fields -> (
    let get k = List.assoc_opt k fields in
    let id =
      match get "id" with Some (Json.String s) -> Some s | _ -> None
    in
    let err code detail = Error { err_id = id; code; detail } in
    let str k =
      match get k with
      | None | Some Json.Null -> Ok None
      | Some (Json.String s) -> Ok (Some s)
      | Some _ -> Error (Printf.sprintf "field %S must be a string" k)
    in
    let int k =
      match get k with
      | None | Some Json.Null -> Ok None
      | Some (Json.Int n) -> Ok (Some n)
      | Some _ -> Error (Printf.sprintf "field %S must be an integer" k)
    in
    let bool k =
      match get k with
      | None | Some Json.Null -> Ok None
      | Some (Json.Bool b) -> Ok (Some b)
      | Some _ -> Error (Printf.sprintf "field %S must be a boolean" k)
    in
    let ( let* ) r f = match r with Ok v -> f v | Error e -> err "bad-request" e in
    let* op_s = str "op" in
    match op_of_name (Option.value op_s ~default:"verify") with
    | None -> err "bad-request" ("unknown op " ^ Option.get op_s)
    | Some op ->
      let* netlist = str "netlist" in
      let* netlist_file = str "netlist_file" in
      let* target = str "target" in
      let* timeout_ms = int "timeout_ms" in
      let* cutoff = int "cutoff" in
      let* chaos = str "chaos" in
      let* certify = bool "certify" in
      let source =
        match (netlist, netlist_file) with
        | Some text, _ -> Some (Inline text)
        | None, Some path -> Some (File path)
        | None, None -> None
      in
      (match (netlist, netlist_file) with
      | Some _, Some _ -> err "bad-request" "netlist and netlist_file are exclusive"
      | _ ->
        Ok
          {
            id;
            op;
            source;
            target;
            timeout_ms;
            (* serving defaults to certified answers: only checked
               results may enter the shared cache *)
            certify = Option.value certify ~default:true;
            cutoff;
            chaos;
          }))
  | _ -> Error { err_id = None; code = "bad-request"; detail = "request must be a JSON object" }

let parse line =
  match Json.parse line with
  | exception Failure msg -> Error { err_id = None; code = "bad-json"; detail = msg }
  | json -> of_json json

(* Exact-duplicate detection for request coalescing: two VERIFY
   requests with the same key would run the same computation, so the
   second attaches to the first's in-flight result.  [id] is excluded
   (it only names the response); chaos requests are never coalesced
   (fault injection is per-request by design). *)
let coalesce_key r =
  match (r.op, r.chaos) with
  | Verify, None ->
    let src =
      match r.source with
      | None -> "-"
      | Some (Inline s) -> "i:" ^ s
      | Some (File p) -> "f:" ^ p
    in
    Some
      (Digest.to_hex
         (Digest.string
            (String.concat "\x00"
               [
                 src;
                 Option.value r.target ~default:"-";
                 (match r.timeout_ms with Some n -> string_of_int n | None -> "-");
                 string_of_bool r.certify;
                 (match r.cutoff with Some n -> string_of_int n | None -> "-");
               ])))
  | _ -> None

(* ----- response rendering ----- *)

let id_field id =
  ("id", match id with Some s -> Json.String s | None -> Json.Null)

let render fields = Json.to_string (Json.Obj fields)

let render_error ~id { code; detail; _ } =
  render
    [ id_field id; ("error", Json.String code); ("detail", Json.String detail) ]

let render_ok ~id op extra =
  render ((id_field id :: ("ok", Json.Bool true) :: ("op", Json.String (op_name op)) :: extra))

let render_overloaded ~id ~retry_after_ms =
  render
    [
      id_field id;
      ("error", Json.String "overloaded");
      ("retry_after_ms", Json.Int retry_after_ms);
    ]
