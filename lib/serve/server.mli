(** The long-lived verification service: a JSONL request/response
    session scheduled on a supervised {!Sched.Pool}.

    Robustness properties (chaos-drilled by [scripts/ci.sh] and
    [test/test_serve.ml]; invariants in DESIGN.md §8):

    - {e Exactly one response per request}, written in {e request
      order} regardless of completion order or [--jobs], via a
      reorder buffer flushed by whichever thread completes the
      next-in-order response.  For a fixed cache state and corpus,
      session output is byte-identical for every [jobs] value.
    - {e Per-request exception barrier} ({!Exec.run}): parse errors,
      solver crashes and injected faults become structured error
      responses, never a dead server.
    - {e Worker supervision}: a poisoned worker domain is detected and
      respawned ({!Sched.Pool.heal}), counted as
      ["serve.worker.restarts"]; its queued work still runs.
    - {e Backpressure}: without [queue_limit], admission blocks (the
      session stops reading input — deterministic pipe backpressure);
      with it, a full queue sheds load as
      [{"error":"overloaded","retry_after_ms":N}].
    - {e Bound cache}: verdicts and strategy bounds keyed by canonical
      cone fingerprint, LRU-evicted under [cache_mb], with hit/miss/
      eviction counters and ["serve.latency_us"] percentiles in the
      stats snapshot.  Exact duplicate requests coalesce onto the
      in-flight leader and are answered as cache hits.

    Drill ops: ["stall"] parks a worker until the next ["drain"] (or
    EOF) to saturate the queue deterministically; ["poison"] kills a
    worker after responding; both require their regime (stall needs
    [queue_limit], poison needs chaos arming).

    Live telemetry (DESIGN.md §8): every request is executed under a
    deterministic correlation id ["req-<seq>"] joining its log lines,
    trace spans and solver heartbeats; formerly-silent error paths
    (bad request, shed, worker respawn, request crash, poisoned-cache
    purge) are logged through {!Obs.Log}; the ["metrics"] op answers
    with the Prometheus exposition of the whole stats snapshot plus
    per-request heartbeat gauges.  With [stall_window_s] set, a
    monitor domain flags any in-flight request whose heartbeat has
    not advanced within the window — warn log with its correlation
    id, plus a crash-safe flight-recorder dump ([flight_path], Trace
    JSONL schema, readable by [diam trace-report]).  Telemetry only
    observes: stdout carries protocol responses exclusively, and
    neither the watchdog nor logging can alter a verdict. *)

type config = {
  jobs : int;  (** worker domains per session (clamped to >= 1) *)
  queue_limit : int option;
      (** admission queue bound; [Some _] switches admission from
          blocking to load-shedding *)
  cache_mb : int;  (** bound cache budget, megabytes *)
  chaos_seed : int option;
      (** arms the chaos drill ops and the differential replay of
          cache hits; [None] in production *)
  stall_window_s : float option;
      (** watchdog stall window, seconds; [Some _] spawns the monitor
          domain *)
  flight_path : string option;
      (** flight-recorder sink for watchdog dumps (appended, Trace
          JSONL schema) *)
  metrics_interval_s : float option;
      (** periodic ["metrics"] JSONL emission through the log sink *)
}

val default_config : config
(** [jobs = 1], blocking admission, 64 MB cache, chaos off, no
    watchdog, no periodic metrics. *)

type ending = Eof | Shutdown_requested

val run_session :
  ?cache:Core.Bcache.t ->
  config ->
  input:(unit -> string option) ->
  output:(string -> unit) ->
  unit ->
  ending
(** Serve one session: read request lines from [input] (until [None] =
    EOF, an implicit drain) and write response lines to [output].
    [cache] lets callers share a cache across sessions (socket mode)
    or inject one pre-seeded (tests); omitted, a fresh
    ["serve.cache"]-prefixed cache is created.  Blank lines are
    ignored.  The pool is created on entry and fully drained and shut
    down on exit, also on exceptions. *)

val run_stdio : config -> int
(** One session over stdin/stdout; returns the process exit code
    (0 — protocol-level failures are responses, not exits). *)

val run_socket : config -> path:string -> int
(** Bind a Unix-domain socket at [path] (replacing a stale one) and
    serve one connection at a time, each connection being one JSONL
    session; the bound cache is shared across connections.  A
    ["shutdown"] request ends the server after its session; EOF on a
    connection only ends that session. *)
