module Net = Netlist.Net
module Lit = Netlist.Lit
module Coi = Netlist.Coi

type result = {
  net : Net.t;
  enlarged : Lit.t;
  k : int;
  empty : bool;
  bdd_size : int;
}

type failure = Unsuitable of string | Node_limit of int

let run ?(reg_limit = 24) ?max_nodes original ~target ~k =
  match List.assoc_opt target (Net.targets original) with
  | None -> Error (Unsuitable "unknown target")
  | Some _ when Net.num_latches original > 0 ->
    Error (Unsuitable "netlist has latches")
  | Some tlit ->
    let cone = Coi.of_lits original [ tlit ] in
    let regs = Coi.regs_in original cone in
    if List.length regs > reg_limit then
      Error
        (Unsuitable
           (Printf.sprintf "cone has %d registers (limit %d)"
              (List.length regs) reg_limit))
    else begin
      try
      let man = Bdd.man ?max_nodes () in
      (* BDD variable order: registers first, then inputs *)
      let bddvar = Hashtbl.create 64 in
      let counter = ref 0 in
      let assign v =
        Hashtbl.replace bddvar v !counter;
        incr counter
      in
      List.iter assign regs;
      let reg_count = !counter in
      Net.iter_nodes original (fun v node ->
          match node with
          | Net.Input _ when cone.(v) -> assign v
          | Net.Const | Net.Input _ | Net.And _ | Net.Reg _ | Net.Latch _ -> ());
      let input_vars =
        Hashtbl.fold
          (fun _ bv acc -> if bv >= reg_count then bv :: acc else acc)
          bddvar []
      in
      (* combinational BDD of each vertex: registers and inputs are
         leaves *)
      let memo = Hashtbl.create 256 in
      let rec fn v =
        match Hashtbl.find_opt memo v with
        | Some b -> b
        | None ->
          let b =
            match Net.node original v with
            | Net.Const -> Bdd.bfalse
            | Net.Input _ | Net.Reg _ -> Bdd.var man (Hashtbl.find bddvar v)
            | Net.Latch _ -> assert false
            | Net.And (a, b) -> Bdd.band man (fn_lit a) (fn_lit b)
          in
          Hashtbl.replace memo v b;
          b
      and fn_lit l =
        let b = fn (Lit.var l) in
        if Lit.is_neg l then Bdd.bnot man b else b
      in
      let target_bdd = fn_lit tlit in
      let next_of =
        List.map
          (fun r -> (Hashtbl.find bddvar r, fn_lit (Net.reg_of original r).Net.next))
          regs
      in
      let preimage s =
        (* s over register variables; substitute next-state functions
           and quantify the inputs *)
        let composed =
          Bdd.compose man
            (fun v -> List.assoc_opt v next_of)
            s
        in
        Bdd.exists man input_vars composed
      in
      let b0 = Bdd.exists man input_vars target_bdd in
      let rec iterate j current hit =
        if j = k then Bdd.band man current (Bdd.bnot man hit)
        else iterate (j + 1) (preimage current) (Bdd.bor man hit current)
      in
      let enlarged_set = iterate 0 b0 Bdd.bfalse in
      (* re-synthesize structurally on a fresh copy *)
      let copy = Rebuild.copy original in
      let net = copy.Rebuild.net in
      let leaf bv =
        (* invert the register variable mapping *)
        let orig =
          Hashtbl.fold (fun v b acc -> if b = bv then Some v else acc) bddvar
            None
        in
        match orig with
        | Some v -> Rebuild.map_lit copy (Lit.make v)
        | None -> invalid_arg "Enlarge: input variable in quantified set"
      in
      let enlarged = Bdd_synth.synthesize man net ~leaf enlarged_set in
      let name = Printf.sprintf "%s#enl%d" target k in
      Net.add_target net name enlarged;
      Ok
        {
          net;
          enlarged;
          k;
          empty = Bdd.is_false enlarged_set;
          bdd_size = Bdd.size man enlarged_set;
        }
      with Bdd.Node_limit n ->
        (* symbolic blow-up: the preimage chain outgrew the node
           allowance — stand down rather than thrash *)
        Obs.Budget.note_exhausted "bdd";
        Error (Node_limit n)
    end
