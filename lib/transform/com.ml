module Net = Netlist.Net
module Lit = Netlist.Lit
module Bsim = Netlist.Bsim
module Solver = Backend

type stats = {
  rounds : int;
  const_regs : int;
  merged_regs : int;
  merged_ands : int;
  sat_checks : int;
}

(* Compose vertex maps: [first] maps netlist A to B, [second] B to C. *)
let compose_maps (first : Lit.t option array) (second : Rebuild.result) :
    Lit.t option array =
  Array.map
    (fun slot ->
      match slot with
      | None -> None
      | Some l -> (
        match second.Rebuild.map.(Lit.var l) with
        | None -> None
        | Some nl -> Some (Lit.xor_sign nl (Lit.is_neg l))))
    first

(* Structural sequential merging: registers stuck at constants, and
   duplicate registers (same next literal, same constant init). *)
let structural_redirects net =
  let redirects = Hashtbl.create 16 in
  let const_regs = ref 0 in
  let merged_regs = ref 0 in
  let by_shape = Hashtbl.create 64 in
  List.iter
    (fun v ->
      let r = Net.reg_of net v in
      let next = r.Net.next in
      let stuck =
        (* next is the constant matching the initial value, or the
           register feeds itself *)
        match r.Net.r_init with
        | Net.Init0 when Lit.equal next Lit.false_ || Lit.equal next (Lit.make v)
          ->
          Some Lit.false_
        | Net.Init1 when Lit.equal next Lit.true_ || Lit.equal next (Lit.make v)
          ->
          Some Lit.true_
        | Net.Init0 | Net.Init1 | Net.Init_x -> None
      in
      match stuck with
      | Some c ->
        Hashtbl.replace redirects v c;
        incr const_regs
      | None -> (
        match r.Net.r_init with
        | Net.Init_x -> () (* independent nondeterminism: never merge *)
        | Net.Init0 | Net.Init1 -> (
          let key = (Lit.to_int next, r.Net.r_init) in
          match Hashtbl.find_opt by_shape key with
          | None -> Hashtbl.add by_shape key v
          | Some rep ->
            Hashtbl.replace redirects v (Lit.make rep);
            incr merged_regs)))
    (Net.regs net);
  (redirects, !const_regs, !merged_regs)

(* SAT sweeping of combinational vertices.  Returns redirects. *)
let sweep ~seed ~sim_steps ?budget ?inprocess net =
  let sigs = Bsim.signatures ~seed ~steps:sim_steps net in
  let classes = Hashtbl.create 256 in
  Net.iter_nodes net (fun v node ->
      match node with
      | Net.And _ | Net.Const ->
        (* the constant vertex participates so that semantically
           constant ANDs merge onto it *)
        let key, flipped = Bsim.canonical_signature sigs.(v) in
        let lit = Lit.of_var v ~sign:flipped in
        Hashtbl.replace classes key
          (lit :: Option.value (Hashtbl.find_opt classes key) ~default:[])
      | Net.Input _ | Net.Reg _ | Net.Latch _ -> ());
  let solver = Solver.create ?inprocess () in
  let frame = Encode.Frame.create solver net in
  let redirects = Hashtbl.create 16 in
  let merged = ref 0 in
  let checks = ref 0 in
  let max_conflicts = Option.bind budget Obs.Budget.conflicts in
  let max_propagations = Option.bind budget Obs.Budget.propagations in
  let should_stop = Option.bind budget Obs.Budget.should_stop in
  let unsat assumptions =
    (* Unknown is NOT Unsat: a candidate whose check is cut short by
       the budget is simply not merged — dropping a merge is always
       sound *)
    Solver.solve ~assumptions ?max_conflicts ?max_propagations ?should_stop
      solver
    = Solver.Unsat
  in
  let equivalent a b =
    (* a == b iff both (a & ~b) and (~a & b) are unsatisfiable *)
    incr checks;
    let sa = Encode.Frame.lit frame a in
    let sb = Encode.Frame.lit frame b in
    unsat [ sa; Solver.negate sb ] && unsat [ Solver.negate sa; sb ]
  in
  Hashtbl.iter
    (fun _key members ->
      match List.sort Lit.compare members with
      | [] | [ _ ] -> ()
      | rep :: rest ->
        List.iter
          (fun l ->
            if equivalent rep l then begin
              (* redirect the later vertex onto the representative,
                 respecting relative polarity *)
              let target = Lit.xor_sign rep (Lit.is_neg l) in
              Hashtbl.replace redirects (Lit.var l) target;
              incr merged
            end)
          rest)
    classes;
  (redirects, !merged, !checks)

let run ?(seed = 0x5eed) ?(sim_steps = 31) ?(max_rounds = 8) ?budget ?inprocess net =
  let identity = Array.init (Net.num_vars net) (fun v -> Some (Lit.make v)) in
  let expired () =
    match budget with
    | Some b when Obs.Budget.expired b ->
      Obs.Budget.note_exhausted "com";
      true
    | _ -> false
  in
  let rec go round map current const_regs merged_regs merged_ands sat_checks =
    if round >= max_rounds || expired () then
      ( { Rebuild.net = current; map },
        {
          rounds = round;
          const_regs;
          merged_regs;
          merged_ands;
          sat_checks;
        } )
    else begin
      let structural, cr, mr = structural_redirects current in
      let swept, ma, sc =
        if Hashtbl.length structural = 0 then
          sweep ~seed:(seed + round) ~sim_steps ?budget ?inprocess current
        else (Hashtbl.create 0, 0, 0)
      in
      let redirect v =
        match Hashtbl.find_opt structural v with
        | Some l -> Some l
        | None -> Hashtbl.find_opt swept v
      in
      if Hashtbl.length structural = 0 && Hashtbl.length swept = 0 then
        ( { Rebuild.net = current; map },
          {
            rounds = round;
            const_regs;
            merged_regs;
            merged_ands;
            sat_checks;
          } )
      else begin
        let step = Rebuild.copy ~redirect current in
        go (round + 1) (compose_maps map step) step.Rebuild.net
          (const_regs + cr) (merged_regs + mr) (merged_ands + ma)
          (sat_checks + sc)
      end
    end
  in
  (* initial cleanup pass: COI restriction + re-strash *)
  let first = Rebuild.copy net in
  go 0 (compose_maps identity first) first.Rebuild.net 0 0 0 0
