module Net = Netlist.Net
module Lit = Netlist.Lit
module Sim = Netlist.Sim
module Solver = Backend

(* deterministic pseudo-random bit per (seed, name, time) *)
let stim_bit seed name time =
  let h = Hashtbl.hash (seed, name, time) in
  h land 1 = 1

let input_names net =
  List.filter_map
    (fun v ->
      match Net.node net v with
      | Net.Input name -> Some (v, name)
      | Net.Const | Net.And _ | Net.Reg _ | Net.Latch _ -> None)
    (Net.inputs net)

(* split "n@p" into (base, sub-step) *)
let split_phase name =
  match String.rindex_opt name '@' with
  | None -> (name, None)
  | Some i -> (
    let base = String.sub name 0 i in
    let suffix = String.sub name (i + 1) (String.length name - i - 1) in
    match int_of_string_opt suffix with
    | Some p -> (base, Some p)
    | None -> (name, None))

let sim_equivalent ?(seeds = [ 1; 2; 3; 4 ]) ?(steps = 24) ?(skew = 0)
    ?(fold = 1) net_a lit_a net_b lit_b =
  let a_inputs = input_names net_a in
  let b_inputs = input_names net_b in
  let horizon_a = (fold * steps) + fold - 1 + skew + 1 in
  let check_seed seed =
    (* drive A, recording the compared values *)
    let sa = Sim.create net_a in
    let a_values = Array.make horizon_a Sim.Vx in
    for t = 0 to horizon_a - 1 do
      Sim.step sa (fun v ->
          match List.assoc_opt v a_inputs with
          | Some name -> Sim.value_of_bool (stim_bit seed name t)
          | None -> Sim.Vx);
      a_values.(t) <- Sim.value sa lit_a
    done;
    (* drive B with the matching stimulus *)
    let sb = Sim.create net_b in
    let ok = ref true in
    for bt = 0 to steps - 1 do
      Sim.step sb (fun v ->
          match List.assoc_opt v b_inputs with
          | Some name -> (
            let base, sub = split_phase name in
            match sub with
            | Some p -> Sim.value_of_bool (stim_bit seed base ((fold * bt) + p))
            | None -> Sim.value_of_bool (stim_bit seed base bt))
          | None -> Sim.Vx);
      let vb = Sim.value sb lit_b in
      let va = a_values.((fold * bt) + fold - 1 + skew) in
      (match (va, vb) with
      | Sim.Vx, _ | _, Sim.Vx -> ()
      | va, vb -> if va <> vb then ok := false);
      ()
    done;
    !ok
  in
  List.for_all check_seed seeds

let sat_equivalent ~depth net_a lit_a net_b lit_b =
  let solver = Solver.create () in
  let ua = Encode.Unroll.create solver net_a in
  let ub = Encode.Unroll.create solver net_b in
  let a_inputs = input_names net_a in
  let b_inputs = input_names net_b in
  (* tie same-named inputs frame by frame *)
  List.iter
    (fun (va, name) ->
      match
        List.find_opt (fun (_, n) -> String.equal n name) b_inputs
      with
      | None -> ()
      | Some (vb, _) ->
        for t = 0 to depth - 1 do
          let la = Encode.Unroll.lit_at ua (Lit.make va) t in
          let lb = Encode.Unroll.lit_at ub (Lit.make vb) t in
          Solver.add_clause solver [ Solver.negate la; lb ];
          Solver.add_clause solver [ la; Solver.negate lb ]
        done)
    a_inputs;
  (* a divergence at any frame *)
  let miters =
    List.init depth (fun t ->
        let la = Encode.Unroll.lit_at ua lit_a t in
        let lb = Encode.Unroll.lit_at ub lit_b t in
        let m = Solver.pos (Solver.new_var solver) in
        (* m -> (la xor lb) *)
        Solver.add_clause solver [ Solver.negate m; la; lb ];
        Solver.add_clause solver
          [ Solver.negate m; Solver.negate la; Solver.negate lb ];
        m)
  in
  Solver.add_clause solver miters;
  (* some asserted miter forces a real divergence, so Sat means the
     literals differ at some frame *)
  match Solver.solve solver with
  | Solver.Unsat -> true
  | Solver.Sat -> false
  | Solver.Unknown _ -> false (* unbudgeted solve never returns this *)
