(** Target enlargement (the paper's Section 3.4, after [22, 23, 24]).

    The k-step enlarged target of [t] is the characteristic function
    of the states that can hit [t] in exactly [k] steps but not in
    fewer (inductive simplification): [S = pre^k(T) /\ ~(pre^0(T) \/
    ... \/ pre^(k-1)(T))], with each preimage existentially quantifying
    the primary inputs.  The set is computed with BDDs over the target's
    cone-of-influence registers and re-synthesized structurally
    (multiplexer tree) so that downstream engines can process it.

    By Theorem 4, if the enlarged target has diameter bound [d], the
    original target is hittable within [d + k] steps, if at all — and
    BMC of the ORIGINAL netlist to that depth is complete for [t].
    As Section 3.4 cautions, this is a hittability bound only: the
    enlarged netlist must not be used to bound the diameter of an
    intermediate component. *)

type result = {
  net : Netlist.Net.t;
      (** copy of the original netlist with the enlarged target added
          as target "<name>#enl<k>" *)
  enlarged : Netlist.Lit.t;
  k : int;
  empty : bool;
      (** the enlarged set is empty: every hit of the original target,
          if any, occurs within the first [k - 1] steps, so BMC to
          depth [k - 1] is already complete *)
  bdd_size : int;
}

type failure =
  | Unsuitable of string
      (** the transformation does not apply (unknown target, latches,
          register cone over [reg_limit]) — trying harder won't help *)
  | Node_limit of int
      (** the BDD computation outgrew [max_nodes] — a resource event;
          the netlist may still be enlargeable with a bigger allowance *)

val run :
  ?reg_limit:int ->
  ?max_nodes:int ->
  Netlist.Net.t ->
  target:string ->
  k:int ->
  (result, failure) Stdlib.result
(** [Error (Unsuitable _)] when the target does not exist, the netlist
    has latches, or its cone has more than [reg_limit] (default 24)
    registers; [Error (Node_limit _)] when [max_nodes] is given and
    the symbolic preimage computation exceeds it (no exception
    escapes). *)
