module Net = Netlist.Net
module Lit = Netlist.Lit
module Bsim = Netlist.Bsim
module Solver = Backend

type stats = {
  iterations : int;
  merged : int;
  sat_checks : int;
}

(* candidate classes (canonical-polarity literals keyed by canonical
   signature), over the constant, AND and register vertices *)
let candidate_classes ~seed ~sim_steps net =
  let sigs = Bsim.signatures ~seed ~steps:sim_steps net in
  let classes = Hashtbl.create 256 in
  Net.iter_nodes net (fun v node ->
      match node with
      | Net.And _ | Net.Const | Net.Reg _ ->
        let key, flipped = Bsim.canonical_signature sigs.(v) in
        let lit = Lit.of_var v ~sign:flipped in
        Hashtbl.replace classes key
          (lit :: Option.value (Hashtbl.find_opt classes key) ~default:[])
      | Net.Input _ | Net.Latch _ -> ());
  Hashtbl.fold
    (fun _ members acc ->
      match List.sort Lit.compare members with
      | [] | [ _ ] -> acc
      | sorted -> ref sorted :: acc)
    classes []

(* equality of two netlist literals at times [0 .. depth - 1] from the
   initial states, with free nondeterministic initial values *)
let base_case_ok ~depth solver0 unroll0 checks a b =
  List.for_all
    (fun t ->
      let la = Encode.Unroll.lit_at unroll0 a t in
      let lb = Encode.Unroll.lit_at unroll0 b t in
      incr checks;
      Solver.solve ~assumptions:[ la; Solver.negate lb ] solver0 = Solver.Unsat
      && Solver.solve ~assumptions:[ Solver.negate la; lb ] solver0
         = Solver.Unsat)
    (List.init depth (fun t -> t))

let run ?(seed = 0xe11c) ?(sim_steps = 31) ?(depth = 2) original =
  if Net.num_latches original > 0 then
    invalid_arg "Van_eijk.run: register netlists only";
  if depth < 1 then invalid_arg "Van_eijk.run: depth must be positive";
  let base, _ = Com.run original in
  let net = base.Rebuild.net in
  let checks = ref 0 in
  (* base case filtering is iteration-invariant: do it once *)
  let solver0 = Solver.create () in
  let unroll0 = Encode.Unroll.create solver0 net in
  let classes =
    List.filter_map
      (fun cls ->
        match !cls with
        | rep :: rest ->
          let kept =
            List.filter
              (fun m -> base_case_ok ~depth solver0 unroll0 checks rep m)
              rest
          in
          if kept = [] then None
          else begin
            cls := rep :: kept;
            Some cls
          end
        | [] -> None)
      (candidate_classes ~seed ~sim_steps net)
  in
  (* inductive refinement *)
  let iterations = ref 0 in
  let changed = ref true in
  while !changed && classes <> [] do
    incr iterations;
    changed := false;
    let solver = Solver.create () in
    (* [depth]-induction: frames 0 .. depth, consecutive states tied by
       the transition functions; hypothesis on the first [depth]
       frames, consecution checked on the last *)
    let frames =
      Array.init (depth + 1) (fun _ -> Encode.Frame.create solver net)
    in
    for i = 0 to depth - 1 do
      List.iter
        (fun r ->
          let next_i =
            Encode.Frame.lit frames.(i) (Net.reg_of net r).Net.next
          in
          let s_next = Encode.Frame.state_var frames.(i + 1) r in
          Solver.add_clause solver [ Solver.negate next_i; s_next ];
          Solver.add_clause solver [ next_i; Solver.negate s_next ])
        (Net.regs net)
    done;
    (* induction hypothesis: every surviving equivalence holds on the
       first [depth] frames *)
    List.iter
      (fun cls ->
        match !cls with
        | rep :: rest ->
          for i = 0 to depth - 1 do
            let lr = Encode.Frame.lit frames.(i) rep in
            List.iter
              (fun m ->
                let lm = Encode.Frame.lit frames.(i) m in
                Solver.add_clause solver [ Solver.negate lr; lm ];
                Solver.add_clause solver [ lr; Solver.negate lm ])
              rest
          done
        | [] -> ())
      classes;
    (* consecution: each member must still equal its representative on
       the final frame *)
    List.iter
      (fun cls ->
        match !cls with
        | rep :: rest ->
          let lr = Encode.Frame.lit frames.(depth) rep in
          let kept =
            List.filter
              (fun m ->
                let lm = Encode.Frame.lit frames.(depth) m in
                incr checks;
                let equal =
                  Solver.solve ~assumptions:[ lr; Solver.negate lm ] solver
                  = Solver.Unsat
                  && Solver.solve ~assumptions:[ Solver.negate lr; lm ] solver
                     = Solver.Unsat
                in
                if not equal then changed := true;
                equal)
              rest
          in
          cls := rep :: kept
        | [] -> ())
      classes
  done;
  (* merge the survivors *)
  let redirects = Hashtbl.create 16 in
  let merged = ref 0 in
  List.iter
    (fun cls ->
      match !cls with
      | rep :: rest ->
        List.iter
          (fun m ->
            if not (Hashtbl.mem redirects (Lit.var m)) then begin
              Hashtbl.replace redirects (Lit.var m)
                (Lit.xor_sign rep (Lit.is_neg m));
              incr merged
            end)
          rest
      | [] -> ())
    classes;
  let step =
    if Hashtbl.length redirects = 0 then
      { Rebuild.net; map = Array.map (fun x -> x) base.Rebuild.map }
    else Rebuild.copy ~redirect:(Hashtbl.find_opt redirects) net
  in
  (* final combinational cleanup *)
  let final, _ = Com.run step.Rebuild.net in
  let compose first second =
    Array.map
      (function
        | None -> None
        | Some l -> (
          match second.Rebuild.map.(Lit.var l) with
          | None -> None
          | Some nl -> Some (Lit.xor_sign nl (Lit.is_neg l))))
      first
  in
  let map =
    if Hashtbl.length redirects = 0 then compose base.Rebuild.map final
    else compose (compose base.Rebuild.map step) final
  in
  ( { Rebuild.net = final.Rebuild.net; map },
    { iterations = !iterations; merged = !merged; sat_checks = !checks } )
