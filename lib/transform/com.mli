(** Redundancy removal (the paper's COM engine, after [14, 15, 27]).

    Semantically equivalent vertices are identified and merged, which
    preserves trace equivalence of every remaining vertex (Theorem 1),
    so diameter bounds computed after COM transfer to the original
    netlist unchanged.

    The engine iterates to fixpoint:
    - cone-of-influence restriction and re-strashing (constant
      propagation, structural AND merging);
    - structural sequential merging: registers with identical
      next-state literal and identical constant initial value;
      registers provably stuck at a constant;
    - SAT sweeping: candidate equivalences of combinational vertices
      proposed by bit-parallel random simulation and confirmed by a
      SAT check over all input/state valuations (state elements are
      cut points, so confirmed merges are sound in any state).

    Registers with nondeterministic ([Init_x]) initial values are
    never merged with each other: two such registers disagree at time
    0 in some trace even when their next-state cones coincide. *)

type stats = {
  rounds : int;
  const_regs : int;  (** registers replaced by constants *)
  merged_regs : int;
  merged_ands : int;  (** SAT-confirmed combinational merges *)
  sat_checks : int;
}

val run :
  ?seed:int ->
  ?sim_steps:int ->
  ?max_rounds:int ->
  ?budget:Obs.Budget.t ->
  ?inprocess:bool ->
  Netlist.Net.t ->
  Rebuild.result * stats
(** The result's [map] translates every original vertex that survived
    into the reduced netlist (Theorem 1's bijection on the mapped
    sets).

    A [budget] degrades gracefully: SAT equivalence checks get the
    budget's conflict/propagation allowances and deadline, a candidate
    whose check comes back unknown is simply not merged (dropping a
    merge never affects soundness), and an expired deadline stops the
    round loop early — the netlist reduced so far is returned. *)
