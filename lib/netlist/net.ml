type init = Init0 | Init1 | Init_x

type node =
  | Const
  | Input of string
  | And of Lit.t * Lit.t
  | Reg of reg
  | Latch of latch

and reg = { mutable next : Lit.t; r_init : init; r_name : string }

and latch = {
  mutable l_data : Lit.t;
  l_phase : int;
  l_init : init;
  l_name : string;
}

type t = {
  mutable nodes : node array;
  mutable count : int;
  strash : (int * int, Lit.t) Hashtbl.t;
  mutable rev_inputs : int list;
  mutable rev_regs : int list;
  mutable rev_latches : int list;
  mutable rev_outputs : (string * Lit.t) list;
  mutable rev_targets : (string * Lit.t) list;
  n_phases : int;
}

let create ?(phases = 1) () =
  assert (phases >= 1);
  {
    nodes = Array.make 64 Const;
    count = 1;
    strash = Hashtbl.create 1024;
    rev_inputs = [];
    rev_regs = [];
    rev_latches = [];
    rev_outputs = [];
    rev_targets = [];
    n_phases = phases;
  }

let phases t = t.n_phases
let num_vars t = t.count

let node t v =
  if v < 0 || v >= t.count then invalid_arg "Net.node: variable out of range";
  t.nodes.(v)

let grow t =
  if t.count = Array.length t.nodes then begin
    let nodes = Array.make (2 * Array.length t.nodes) Const in
    Array.blit t.nodes 0 nodes 0 t.count;
    t.nodes <- nodes
  end

let push t n =
  grow t;
  let v = t.count in
  t.nodes.(v) <- n;
  t.count <- v + 1;
  v

let add_input t name =
  let v = push t (Input name) in
  t.rev_inputs <- v :: t.rev_inputs;
  Lit.make v

let add_reg t ?(init = Init0) name =
  let v = push t (Reg { next = Lit.false_; r_init = init; r_name = name }) in
  t.rev_regs <- v :: t.rev_regs;
  Lit.make v

let add_latch t ?(init = Init0) ~phase name =
  if phase < 0 || phase >= t.n_phases then invalid_arg "Net.add_latch: phase";
  let v =
    push t
      (Latch { l_data = Lit.false_; l_phase = phase; l_init = init; l_name = name })
  in
  t.rev_latches <- v :: t.rev_latches;
  Lit.make v

let set_next t r d =
  if Lit.is_neg r then invalid_arg "Net.set_next: negated register literal";
  match node t (Lit.var r) with
  | Reg reg -> reg.next <- d
  | Const | Input _ | And _ | Latch _ ->
    invalid_arg "Net.set_next: not a register"

let set_latch_data t l d =
  if Lit.is_neg l then invalid_arg "Net.set_latch_data: negated literal";
  match node t (Lit.var l) with
  | Latch latch -> latch.l_data <- d
  | Const | Input _ | And _ | Reg _ ->
    invalid_arg "Net.set_latch_data: not a latch"

let strash_key a b = (Lit.to_int a, Lit.to_int b)

let add_and t a b =
  let a, b = if Lit.compare a b <= 0 then (a, b) else (b, a) in
  if Lit.equal a Lit.false_ then Lit.false_
  else if Lit.equal b Lit.false_ then Lit.false_
  else if Lit.equal a Lit.true_ then b
  else if Lit.equal b Lit.true_ then a
  else if Lit.equal a b then a
  else if Lit.equal a (Lit.neg b) then Lit.false_
  else begin
    let key = strash_key a b in
    match Hashtbl.find_opt t.strash key with
    | Some l -> l
    | None ->
      let v = push t (And (a, b)) in
      let l = Lit.make v in
      Hashtbl.add t.strash key l;
      l
  end

let add_or t a b = Lit.neg (add_and t (Lit.neg a) (Lit.neg b))

let add_xor t a b =
  (* a xor b = ~(~(a * ~b) * ~(~a * b)) *)
  let p = add_and t a (Lit.neg b) in
  let q = add_and t (Lit.neg a) b in
  add_or t p q

let add_mux t ~sel ~t1 ~t0 =
  let p = add_and t sel t1 in
  let q = add_and t (Lit.neg sel) t0 in
  add_or t p q

let add_and_list t = List.fold_left (add_and t) Lit.true_
let add_or_list t = List.fold_left (add_or t) Lit.false_
let add_output t name l = t.rev_outputs <- (name, l) :: t.rev_outputs
let add_target t name l = t.rev_targets <- (name, l) :: t.rev_targets
let outputs t = List.rev t.rev_outputs
let targets t = List.rev t.rev_targets
let inputs t = List.rev t.rev_inputs
let regs t = List.rev t.rev_regs
let latches t = List.rev t.rev_latches

let num_regs t = List.length t.rev_regs
let num_latches t = List.length t.rev_latches
let num_inputs t = List.length t.rev_inputs

let num_ands t =
  let n = ref 0 in
  for v = 0 to t.count - 1 do
    match t.nodes.(v) with
    | And _ -> incr n
    | Const | Input _ | Reg _ | Latch _ -> ()
  done;
  !n

let is_reg t v =
  match node t v with
  | Reg _ -> true
  | Const | Input _ | And _ | Latch _ -> false

let is_latch t v =
  match node t v with
  | Latch _ -> true
  | Const | Input _ | And _ | Reg _ -> false

let is_state t v = is_reg t v || is_latch t v

let reg_of t v =
  match node t v with
  | Reg r -> r
  | Const | Input _ | And _ | Latch _ -> invalid_arg "Net.reg_of"

let latch_of t v =
  match node t v with
  | Latch l -> l
  | Const | Input _ | And _ | Reg _ -> invalid_arg "Net.latch_of"

let iter_nodes t f =
  for v = 0 to t.count - 1 do
    f v t.nodes.(v)
  done

let fanins t v =
  match node t v with
  | Const | Input _ -> []
  | And (a, b) -> [ a; b ]
  | Reg r -> [ r.next ]
  | Latch l -> [ l.l_data ]

let fanouts t =
  let counts = Array.make t.count 0 in
  let record l = counts.(Lit.var l) <- counts.(Lit.var l) + 1 in
  iter_nodes t (fun _ n ->
      match n with
      | Const | Input _ -> ()
      | And (a, b) ->
        record a;
        record b
      | Reg r -> record r.next
      | Latch l -> record l.l_data);
  let out = Array.init t.count (fun v -> Array.make counts.(v) 0) in
  let fill = Array.make t.count 0 in
  let put l v =
    let s = Lit.var l in
    out.(s).(fill.(s)) <- v;
    fill.(s) <- fill.(s) + 1
  in
  iter_nodes t (fun v n ->
      match n with
      | Const | Input _ -> ()
      | And (a, b) ->
        put a v;
        put b v
      | Reg r -> put r.next v
      | Latch l -> put l.l_data v);
  out

let check t =
  let in_range l =
    let v = Lit.var l in
    if v < 0 || v >= t.count then failwith "Net.check: edge out of range"
  in
  iter_nodes t (fun v n ->
      match n with
      | Const -> if v <> 0 then failwith "Net.check: non-zero constant vertex"
      | Input _ -> ()
      | And (a, b) ->
        in_range a;
        in_range b;
        if Lit.var a >= v || Lit.var b >= v then
          failwith "Net.check: AND fanin does not precede gate"
      | Reg r -> in_range r.next
      | Latch l ->
        in_range l.l_data;
        if l.l_phase < 0 || l.l_phase >= t.n_phases then
          failwith "Net.check: latch phase out of range")

(* ----- canonical structural fingerprints -----

   Cache keys for the serve layer: a fingerprint must be identical for
   two structurally-equal netlists no matter the order their vertices
   were pushed in (vertex identifiers are construction-order), and
   must change under any structural mutation.  Identifier independence
   comes from hashing bottom-up over names and shapes only: inputs,
   registers and latches hash from their (name, init, phase) alone —
   state elements as leaves, so sequential cycles terminate — and an
   AND hashes from its fanin (hash, sign) pairs in hash order, not
   identifier order.  The serialized form then references vertices by
   their hashes and is sorted, so the digest never sees an
   identifier. *)

let mix h v =
  (* splitmix-style avalanche over the native int width *)
  let h = (h lxor v) * 0x9e3779b97f4a7 in
  let h = (h lxor (h lsr 29)) * 0xbf58476d1ce4e5b in
  h lxor (h lsr 32)

let init_code = function Init0 -> 0 | Init1 -> 1 | Init_x -> 2

let vertex_hashes t =
  let h = Array.make t.count 0 in
  (* identifier order is topological for the combinational logic, so
     one forward pass sees AND fanins before the gate *)
  for v = 0 to t.count - 1 do
    h.(v) <-
      (match t.nodes.(v) with
      | Const -> 0x5eed
      | Input name -> mix 0x11 (Hashtbl.hash name)
      | Reg r -> mix (mix 0x22 (Hashtbl.hash r.r_name)) (init_code r.r_init)
      | Latch l ->
        mix
          (mix (mix 0x33 (Hashtbl.hash l.l_name)) (init_code l.l_init))
          l.l_phase
      | And (a, b) ->
        let edge l = (h.(Lit.var l), if Lit.is_neg l then 1 else 0) in
        let (ha, sa), (hb, sb) = (edge a, edge b) in
        let (ha, sa), (hb, sb) =
          if (ha, sa) <= (hb, sb) then ((ha, sa), (hb, sb))
          else ((hb, sb), (ha, sa))
        in
        mix (mix (mix (mix 0x44 ha) sa) hb) sb)
  done;
  h

let edge_str h l =
  Printf.sprintf "%x%s" h.(Lit.var l) (if Lit.is_neg l then "-" else "+")

(* one canonical record per vertex, referencing fanins by hash *)
let vertex_record t h v =
  match t.nodes.(v) with
  | Const -> None
  | Input name -> Some ("i:" ^ String.escaped name)
  | Reg r ->
    Some
      (Printf.sprintf "r:%s:%d:%s" (String.escaped r.r_name)
         (init_code r.r_init) (edge_str h r.next))
  | Latch l ->
    Some
      (Printf.sprintf "l:%s:%d:%d:%s" (String.escaped l.l_name) l.l_phase
         (init_code l.l_init) (edge_str h l.l_data))
  | And (a, b) ->
    let ea = edge_str h a and eb = edge_str h b in
    let ea, eb = if ea <= eb then (ea, eb) else (eb, ea) in
    Some (Printf.sprintf "a:%s:%s" ea eb)

let digest_records ~header records =
  let records = List.sort compare records in
  Digest.to_hex (Digest.string (String.concat "\n" (header :: records)))

let fingerprint t =
  let h = vertex_hashes t in
  let records = ref [] in
  for v = 0 to t.count - 1 do
    match vertex_record t h v with
    | Some r -> records := r :: !records
    | None -> ()
  done;
  List.iter
    (fun (name, l) ->
      records :=
        Printf.sprintf "o:%s:%s" (String.escaped name) (edge_str h l)
        :: !records)
    (outputs t);
  List.iter
    (fun (name, l) ->
      records :=
        Printf.sprintf "t:%s:%s" (String.escaped name) (edge_str h l)
        :: !records)
    (targets t);
  let header =
    Printf.sprintf "net:phases=%d:vars=%d" t.n_phases (t.count - 1)
  in
  digest_records ~header !records

let cone_fingerprint t root =
  let h = vertex_hashes t in
  let seen = Array.make t.count false in
  let records = ref [] in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      (match vertex_record t h v with
      | Some r -> records := r :: !records
      | None -> ());
      List.iter (fun l -> visit (Lit.var l)) (fanins t v)
    end
  in
  visit (Lit.var root);
  let header =
    Printf.sprintf "cone:phases=%d:root=%s" t.n_phases (edge_str h root)
  in
  digest_records ~header !records

let pp_stats ppf t =
  Format.fprintf ppf "vars=%d inputs=%d ands=%d regs=%d latches=%d targets=%d"
    (num_vars t) (num_inputs t) (num_ands t) (num_regs t) (num_latches t)
    (List.length t.rev_targets)
