(** Mutable AIG-style netlists (Definition 1 of the paper).

    A netlist is a directed graph of typed vertices: the constant-false
    vertex, primary inputs, two-input AND gates (with literal edges that
    may be negated, so any combinational function is expressible),
    registers (edge-triggered state elements with an initial value), and
    level-sensitive latches (for c-phase designs, cf. Section 3.3 of the
    paper).

    AND vertices are structurally hashed at construction, so a netlist
    is always strashed.  Vertex identifiers grow monotonically and AND
    fanins always precede the gate itself, hence identifier order is a
    topological order of the combinational logic; only register/latch
    data edges may point "forward" (closing sequential cycles). *)

type init =
  | Init0  (** initialized to 0 *)
  | Init1  (** initialized to 1 *)
  | Init_x (** nondeterministic initial value *)

type node =
  | Const  (** vertex 0 only: constant false *)
  | Input of string
  | And of Lit.t * Lit.t
  | Reg of reg
  | Latch of latch

and reg = { mutable next : Lit.t; r_init : init; r_name : string }

and latch = {
  mutable l_data : Lit.t;
  l_phase : int;  (** transparent when [time mod phases = l_phase] *)
  l_init : init;
  l_name : string;
}

type t

val create : ?phases:int -> unit -> t
(** Fresh netlist containing only the constant vertex.  [phases] is the
    number of clock phases for level-sensitive latch designs (default
    [1], i.e. a register-based netlist). *)

val phases : t -> int
val num_vars : t -> int

val node : t -> int -> node
(** Vertex of a variable index.  @raise Invalid_argument if out of range. *)

val add_input : t -> string -> Lit.t
val add_reg : t -> ?init:init -> string -> Lit.t
(** A register whose [next] edge is initially the constant; set it with
    {!set_next} once its cone has been built. *)

val add_latch : t -> ?init:init -> phase:int -> string -> Lit.t

val set_next : t -> Lit.t -> Lit.t -> unit
(** [set_next t r d] sets the next-state edge of register literal [r]
    (which must be positive and denote a register) to [d]. *)

val set_latch_data : t -> Lit.t -> Lit.t -> unit

val add_and : t -> Lit.t -> Lit.t -> Lit.t
(** Structurally hashed AND with constant folding and the trivial
    simplifications [a*a = a], [a*~a = 0]. *)

(** Derived combinational constructors (AND/INV decompositions). *)

val add_or : t -> Lit.t -> Lit.t -> Lit.t
val add_xor : t -> Lit.t -> Lit.t -> Lit.t
val add_mux : t -> sel:Lit.t -> t1:Lit.t -> t0:Lit.t -> Lit.t
(** [add_mux t ~sel ~t1 ~t0] is [sel ? t1 : t0]. *)

val add_and_list : t -> Lit.t list -> Lit.t
val add_or_list : t -> Lit.t list -> Lit.t

(** Named outputs and verification targets (sets [T] of the paper). *)

val add_output : t -> string -> Lit.t -> unit
val add_target : t -> string -> Lit.t -> unit
val outputs : t -> (string * Lit.t) list
val targets : t -> (string * Lit.t) list

val inputs : t -> int list
(** Input variable indices, in creation order. *)

val regs : t -> int list
(** Register variable indices, in creation order. *)

val latches : t -> int list

val num_inputs : t -> int
val num_regs : t -> int
val num_latches : t -> int
val num_ands : t -> int

val is_reg : t -> int -> bool
val is_latch : t -> int -> bool
val is_state : t -> int -> bool
(** Register or latch. *)

val reg_of : t -> int -> reg
val latch_of : t -> int -> latch

val iter_nodes : t -> (int -> node -> unit) -> unit
(** Iterate vertices in identifier (topological) order, constant and
    all. *)

val fanins : t -> int -> Lit.t list
(** Direct fanin edges of a vertex (empty for constants and inputs;
    next-state/data edge for state elements). *)

val fanouts : t -> int array array
(** [fanouts t] computes, once per call, the fanout vertex lists:
    entry [v] lists the vertices having an edge sourced at [v]. *)

val check : t -> unit
(** Structural sanity check: every register/latch data edge set (not
    dangling on the constant unless intentionally so), fanins in range,
    latch phases within [phases].  @raise Failure on violation. *)

val fingerprint : t -> string
(** Canonical structural fingerprint (hex digest) of the whole
    netlist — every vertex, output and target.  Identical for two
    structurally-equal netlists regardless of construction order
    (vertices are referenced by bottom-up structural hashes, never by
    identifier); any structural mutation — dropping or adding a
    vertex, redirecting an edge, renaming an input/register/output,
    changing an initial value or latch phase — changes it.  State
    elements hash as leaves (by name and initial value), so sequential
    cycles are well-defined; their next-state cones enter through the
    per-register records. *)

val cone_fingerprint : t -> Lit.t -> string
(** {!fingerprint} restricted to the sequential cone of influence of
    the given edge (through register/latch data edges, transitively) —
    the cache key for per-target memoization: two targets with
    structurally identical cones share it even when the surrounding
    netlists differ.  Output/target {e names} are not part of a cone
    fingerprint. *)

val pp_stats : Format.formatter -> t -> unit
