module Fuzz = Workload.Fuzz
module Shrink = Workload.Shrink

type shrink_info = {
  original_size : int;
  shrunk_size : int;
  repro : string option;
}

type case_report = {
  label : string;
  species : string;
  size : int;
  verdicts : (string * string) list;
  findings : (Oracle.finding * shrink_info) list;
}

type report = {
  seed : int;
  count : int;
  cases : case_report list;
  findings : int;
}

let schema = [ "fuzz.cases"; "fuzz.findings"; "fuzz.shrink_accepted" ]
let () = Obs.Stats.declare schema

let same_kind a b =
  match (a, b) with
  | Oracle.Disagreement _, Oracle.Disagreement _
  | Oracle.Cert_failure _, Oracle.Cert_failure _
  | Oracle.Budget_violation _, Oracle.Budget_violation _
  | Oracle.Crash _, Oracle.Crash _ ->
    true
  | _ -> false

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

(* slug for repro file names: kind without the payload *)
let kind_slug k = Oracle.kind_name k

let shrink_finding ~oracle_jobs ~repro_dir ~label (case : Fuzz.case)
    (f : Oracle.finding) =
  (* the finding must survive a candidate for it to be accepted: same
     target, same kind of disagreement/failure.  Only the implicated
     cells are re-evaluated — paying for the whole matrix (notably the
     portfolio cell's pool) on every shrink trial is pure overhead —
     and each trial runs under a conflicts-only budget: deterministic
     (no wall clock), but an injected fault that sends every strategy
     to its limits costs milliseconds instead of minutes per trial *)
  let only = Oracle.cells_of_kind f.Oracle.kind in
  let mk_budget () = Obs.Budget.create ~conflicts:4_000 () in
  let keep net =
    let cells =
      Oracle.run_cells ~jobs:oracle_jobs ~only ~mk_budget net
        ~target:f.Oracle.target
    in
    let findings = Oracle.check ~target:f.Oracle.target cells in
    List.exists
      (fun (g : Oracle.finding) ->
        String.equal g.Oracle.target f.Oracle.target
        && same_kind g.Oracle.kind f.Oracle.kind)
      findings
  in
  let r = Shrink.run ~keep case.Fuzz.net ~target:f.Oracle.target in
  Obs.Stats.count "fuzz.shrink_accepted" r.Shrink.accepted;
  let repro =
    match repro_dir with
    | None -> None
    | Some dir ->
      ensure_dir dir;
      let path =
        Filename.concat dir
          (Printf.sprintf "%s-%s-%s.bench" label f.Oracle.target
             (kind_slug f.Oracle.kind))
      in
      Textio.Bench_io.write_file path r.Shrink.net;
      Some path
  in
  ( f,
    {
      original_size = r.Shrink.original_size;
      shrunk_size = r.Shrink.shrunk_size;
      repro;
    } )

let run_case ~oracle_jobs ~mk_budget ~repro_dir ~seed i =
  Obs.Stats.time "fuzz.case" (fun () ->
      match Fuzz.case ~seed i with
      | exception e ->
        (* per-case barrier: a generator crash is itself a finding,
           not a dead campaign *)
        {
          label = Printf.sprintf "%04d-?" i;
          species = "?";
          size = 0;
          verdicts = [];
          findings =
            [
              ( {
                  Oracle.target = "-";
                  kind =
                    Oracle.Crash
                      { cell = "generate"; detail = Printexc.to_string e };
                },
                { original_size = 0; shrunk_size = 0; repro = None } );
            ];
        }
      | case ->
        let targets = Netlist.Net.targets case.Fuzz.net in
        let per_target =
          List.map
            (fun (t, _) ->
              let findings, cells =
                Oracle.run ~jobs:oracle_jobs ?mk_budget case.Fuzz.net ~target:t
              in
              let verdicts =
                List.map
                  (fun (c : Oracle.cell) ->
                    ( t ^ "/" ^ c.Oracle.cell,
                      match c.Oracle.outcome with
                      | Ok v -> Oracle.verdict_brief v
                      | Error e -> "CRASH(" ^ e ^ ")" ))
                  cells
              in
              (findings, verdicts))
            targets
        in
        let findings = List.concat_map fst per_target in
        let verdicts = List.concat_map snd per_target in
        Obs.Stats.count "fuzz.cases" 1;
        Obs.Stats.count "fuzz.findings" (List.length findings);
        {
          label = case.Fuzz.label;
          species = Fuzz.species_name case.Fuzz.species;
          size = Shrink.size case.Fuzz.net;
          verdicts;
          findings =
            List.map
              (fun f ->
                shrink_finding ~oracle_jobs ~repro_dir ~label:case.Fuzz.label
                  case f)
              findings;
        })

let run ?(jobs = 1) ?(oracle_jobs = 2) ?mk_budget ?repro_dir ~seed ~count () =
  let indices = List.init count (fun i -> i) in
  let do_case = run_case ~oracle_jobs ~mk_budget ~repro_dir ~seed in
  let cases =
    if jobs <= 1 then List.map do_case indices
    else
      Sched.Pool.with_pool ~jobs (fun pool ->
          Sched.Pool.try_map pool do_case indices)
      |> List.map2
           (fun i -> function
             | Ok c -> c
             | Error e ->
               {
                 label = Printf.sprintf "%04d-?" i;
                 species = "?";
                 size = 0;
                 verdicts = [];
                 findings =
                   [
                     ( {
                         Oracle.target = "-";
                         kind =
                           Oracle.Crash
                             { cell = "worker"; detail = Printexc.to_string e };
                       },
                       { original_size = 0; shrunk_size = 0; repro = None } );
                   ];
               })
           indices
  in
  {
    seed;
    count;
    cases;
    findings =
      List.fold_left (fun n (c : case_report) -> n + List.length c.findings) 0 cases;
  }
