(** The fuzz campaign driver: breed adversarial designs ({!Workload.Fuzz}),
    run every target of every design through the differential oracle
    matrix ({!Oracle}), shrink each finding to a minimal repro
    ({!Workload.Shrink}) and optionally write it to a repro directory
    for [diam corpus] to replay.

    Determinism: case [i] is a pure function of [(seed, i)]
    ({!Workload.Rng.fork}), the oracle and the shrinker are
    deterministic, and reports keep cases in index order — the same
    seed and count produce a byte-identical report for every [jobs]
    value. *)

type shrink_info = {
  original_size : int;  (** {!Workload.Shrink.size} of the breeding design *)
  shrunk_size : int;
  repro : string option;  (** path of the written minimal repro *)
}

type case_report = {
  label : string;
  species : string;
  size : int;
  verdicts : (string * string) list;
      (** [("<target>/<cell>", timing-free brief)] in matrix order *)
  findings : (Oracle.finding * shrink_info) list;
}

type report = {
  seed : int;
  count : int;
  cases : case_report list;  (** in case-index order *)
  findings : int;  (** total across cases *)
}

val schema : string list

val run :
  ?jobs:int ->
  ?oracle_jobs:int ->
  ?mk_budget:(unit -> Obs.Budget.t) ->
  ?repro_dir:string ->
  seed:int ->
  count:int ->
  unit ->
  report
(** Run a [count]-design campaign.  [jobs] distributes whole cases
    across a {!Sched.Pool}; [oracle_jobs] (default 2) sizes each
    matrix's portfolio cell; [mk_budget] mints a per-cell allowance
    (see {!Oracle.run_cells} — prefer a conflicts-only budget to keep
    the report timing-independent).  Per-case exception barrier: a
    crashing generator or worker becomes a [Crash] finding on that
    case.

    Shrinking runs each trial under a small conflicts-only budget of
    its own, so a fault that defeats every strategy's certification
    (the chaos drill) does not turn minimization into a full-ladder
    run per candidate. *)
