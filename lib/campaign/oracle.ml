module Engine = Core.Engine

type kind =
  | Disagreement of {
      cell_a : string;
      verdict_a : string;
      cell_b : string;
      verdict_b : string;
    }
  | Cert_failure of { cell : string; detail : string }
  | Budget_violation of { cell : string; verdict : string }
  | Crash of { cell : string; detail : string }

type finding = { target : string; kind : kind }

let schema =
  [ "oracle.cells"; "oracle.findings"; "oracle.disagreements";
    "oracle.cert_failures"; "oracle.budget_violations"; "oracle.crashes" ]

let () = Obs.Stats.declare schema

let kind_name = function
  | Disagreement _ -> "disagreement"
  | Cert_failure _ -> "cert-failure"
  | Budget_violation _ -> "budget-violation"
  | Crash _ -> "crash"

let pp_finding ppf { target; kind } =
  match kind with
  | Disagreement { cell_a; verdict_a; cell_b; verdict_b } ->
    Format.fprintf ppf "%s: disagreement %s=%s vs %s=%s" target cell_a
      verdict_a cell_b verdict_b
  | Cert_failure { cell; detail } ->
    Format.fprintf ppf "%s: cert-failure in %s (%s)" target cell detail
  | Budget_violation { cell; verdict } ->
    Format.fprintf ppf "%s: budget-violation in %s (concluded %s on an expired budget)"
      target cell verdict
  | Crash { cell; detail } ->
    Format.fprintf ppf "%s: crash in %s (%s)" target cell detail

(* Campaign ladder config: fuzz designs are built small enough that
   every strategy concludes quickly under these limits, so a
   disagreement is a bug, not a tuning artifact. *)
let config =
  {
    Engine.default with
    Engine.probe_depth = 40;
    recurrence_limit = 16;
    induction_max_k = 8;
    enlargement_reg_limit = 12;
  }

(* A compact, timing-free rendering: agreement is decided on (and
   reports printed from) everything but wall-clock. *)
let verdict_brief = function
  | Engine.Proved { strategy; depth } ->
    Printf.sprintf "PROVED(%s,depth=%d)" strategy depth
  | Engine.Violated { strategy; cex } ->
    Printf.sprintf "VIOLATED(%s,t=%d)" strategy cex.Bmc.depth
  | Engine.Inconclusive { attempts } ->
    Printf.sprintf "INCONCLUSIVE(%s)"
      (String.concat ";"
         (List.map
            (fun (a : Engine.attempt) -> a.Engine.strategy ^ "=" ^ a.Engine.reason)
            attempts))

(* exact agreement modulo timing: strategy and depth/time must match,
   and inconclusive attempt logs must match reason-for-reason *)
let agree a b = String.equal (verdict_brief a) (verdict_brief b)

type cell = {
  cell : string;
  outcome : (Engine.verdict, string) result;
}

(* the cells whose re-evaluation can reproduce a finding of this
   kind: a shrinker's keep predicate need not pay for the rest of the
   matrix (in particular the portfolio cell's pool) on every trial *)
let cells_of_kind = function
  | Disagreement { cell_a; cell_b; _ } -> [ cell_a; cell_b ]
  | Cert_failure { cell; _ } | Budget_violation { cell; _ } | Crash { cell; _ }
    ->
    [ cell ]

let run_cells ?(jobs = 2) ?only ?mk_budget net ~target =
  let eval (name, f) =
    Obs.Stats.count "oracle.cells" 1;
    match f () with
    | v -> { cell = name; outcome = Ok v }
    | exception e -> { cell = name; outcome = Error (Printexc.to_string e) }
  in
  let wanted (name, _) =
    match only with None -> true | Some names -> List.mem name names
  in
  (* per-eval allowance for the live cells; fresh each call so a
     deadline (if the caller uses one) starts at the eval, not at
     matrix construction.  Never applied to "expired-budget", whose
     budget is the experiment. *)
  let budget () = Option.map (fun mk -> mk ()) mk_budget in
  List.map eval
    (List.filter wanted
    [
      ( "ladder",
        fun () -> Engine.verify ~config ?budget:(budget ()) ~certify:true net ~target
      );
      ( "ladder-noinproc",
        (* the inprocessing-off cell is just another backend
           configuration: a reference-backend instance created with
           inprocessing pinned off.  Each solver fixes the choice at
           creation, so a concurrent campaign (or serve request)
           running with inprocessing ON never observes this cell's
           choice — there is no global toggle left to race on *)
        fun () ->
          Engine.verify
            ~config:
              {
                config with
                Engine.backend =
                  Some (Backend.Single (Backend.reference ~inprocess:false ()));
              }
            ?budget:(budget ()) ~certify:true net ~target );
      ( "portfolio",
        fun () ->
          Engine.verify_portfolio ~config ?budget:(budget ()) ~certify:true
            ~jobs net ~target );
      ( "expired-budget",
        fun () ->
          Engine.verify ~config
            ~budget:(Obs.Budget.create ~timeout_s:0. ())
            net ~target );
    ])

let check ~target cells =
  let findings = ref [] in
  let note counter kind =
    Obs.Stats.count "oracle.findings" 1;
    Obs.Stats.count counter 1;
    findings := { target; kind } :: !findings
  in
  List.iter
    (fun c ->
      match c.outcome with
      | Error detail ->
        note "oracle.crashes" (Crash { cell = c.cell; detail })
      | Ok v when String.equal c.cell "expired-budget" ->
        (* an already-expired budget must stand every strategy down:
           any conclusive verdict is resource accounting gone wrong *)
        (match v with
        | Engine.Proved _ | Engine.Violated _ ->
          note "oracle.budget_violations"
            (Budget_violation { cell = c.cell; verdict = verdict_brief v })
        | Engine.Inconclusive _ -> ())
      | Ok v -> (
        match Engine.cert_failed v with
        | Some detail ->
          note "oracle.cert_failures" (Cert_failure { cell = c.cell; detail })
        | None -> ()))
    cells;
  (* verdict agreement across the matrix (the expired cell is excluded:
     its whole point is to answer differently) *)
  (match
     List.filter_map
       (fun c ->
         match c.outcome with
         | Ok v when not (String.equal c.cell "expired-budget") ->
           Some (c.cell, v)
         | _ -> None)
       cells
   with
  | [] -> ()
  | (ref_cell, ref_v) :: rest ->
    List.iter
      (fun (cell, v) ->
        if not (agree ref_v v) then
          note "oracle.disagreements"
            (Disagreement
               {
                 cell_a = ref_cell;
                 verdict_a = verdict_brief ref_v;
                 cell_b = cell;
                 verdict_b = verdict_brief v;
               }))
      rest);
  (* one finding per (target, kind): three cells failing certification
     the same way are one bug, and the shrinker need not re-minimize
     the same design once per cell *)
  let seen = Hashtbl.create 4 in
  List.filter
    (fun f ->
      let key = kind_name f.kind in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    (List.rev !findings)

let run ?jobs ?mk_budget net ~target =
  let cells = run_cells ?jobs ?mk_budget net ~target in
  let findings = check ~target cells in
  (findings, cells)
