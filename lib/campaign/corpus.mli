(** Corpus runner: walk a directory tree of [.bench]/[.aag] problems
    and verify every one under a per-problem budget and a per-problem
    exception barrier — a malformed file, a crashing strategy or an
    expired budget is a tallied outcome, never an aborted walk. *)

type outcome =
  | Proved  (** every target proved (vacuously, for no targets) *)
  | Violated  (** at least one target has a counterexample *)
  | Timeout  (** no violation; some target's budget ran out *)
  | Inconclusive  (** no violation/timeout; some target inconclusive *)
  | Malformed of { line : int option; msg : string }
      (** parse or I/O error; [line] when the parser reported one *)
  | Crashed of string  (** escaped exception, printed *)

type item = {
  path : string;
  targets : int;
  outcome : outcome;
  elapsed_s : float;
}

type summary = {
  items : item list;  (** in walk (sorted-path) order *)
  proved : int;
  violated : int;
  timeout : int;
  inconclusive : int;
  malformed : int;
  crashed : int;
}

val schema : string list
(** The ["corpus.*"] tally counters, declared so they appear as zeroes
    in every stats snapshot. *)

val outcome_name : outcome -> string
val pp_outcome : Format.formatter -> outcome -> unit

val walk : string -> string list
(** Recursively collect [.bench]/[.aag] paths under a root, visiting
    each directory's entries in sorted order — the walk order (and so
    the report) is deterministic. *)

val run :
  ?jobs:int ->
  ?config:Core.Engine.config ->
  ?mk_budget:(unit -> Obs.Budget.t) ->
  ?certify:bool ->
  string list ->
  summary
(** Run every path; [mk_budget] is called once {e per problem} (fresh
    deadline each), [jobs > 1] distributes problems across a
    {!Sched.Pool}.  Item order always matches input order. *)

val exit_code : summary -> int
(** The extended contract: [1] when any problem violated, was
    malformed or crashed (a finding); else [3] when any timed out or
    was inconclusive; else [0]. *)
