(** Robustness campaign layer: corpus-scale runs and the adversarial
    fuzzing campaign with its differential oracle matrix and failure
    shrinking. *)

module Corpus = Corpus
module Oracle = Oracle
module Hunt = Hunt
