module Net = Netlist.Net
module Engine = Core.Engine

type outcome =
  | Proved
  | Violated
  | Timeout
  | Inconclusive
  | Malformed of { line : int option; msg : string }
  | Crashed of string

type item = {
  path : string;
  targets : int;
  outcome : outcome;
  elapsed_s : float;
}

type summary = {
  items : item list;
  proved : int;
  violated : int;
  timeout : int;
  inconclusive : int;
  malformed : int;
  crashed : int;
}

let schema =
  [
    "corpus.files";
    "corpus.proved";
    "corpus.violated";
    "corpus.timeout";
    "corpus.inconclusive";
    "corpus.malformed";
    "corpus.crashed";
  ]

let () = Obs.Stats.declare schema

let outcome_name = function
  | Proved -> "proved"
  | Violated -> "violated"
  | Timeout -> "timeout"
  | Inconclusive -> "inconclusive"
  | Malformed _ -> "malformed"
  | Crashed _ -> "crashed"

let pp_outcome ppf = function
  | Malformed { line; msg } ->
    let pos = match line with Some l -> Printf.sprintf "line %d: " l | None -> "" in
    Format.fprintf ppf "malformed (%s%s)" pos msg
  | Crashed msg -> Format.fprintf ppf "crashed (%s)" msg
  | o -> Format.pp_print_string ppf (outcome_name o)

let is_problem path =
  Filename.check_suffix path ".bench" || Filename.check_suffix path ".aag"

(* Deterministic walk: entries of each directory visited in sorted
   order, so the item list (and hence the whole report) is independent
   of filesystem enumeration order. *)
let walk root =
  let rec go acc path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.fold_left (fun acc name -> go acc (Filename.concat path name)) acc
    else if is_problem path then path :: acc
    else acc
  in
  List.rev (go [] root)

let load path =
  if Filename.check_suffix path ".aag" then Textio.Aiger.parse_file path
  else Textio.Bench_io.parse_file path

(* The per-problem exception barrier: nothing a single problem does —
   malformed input, a crashing strategy, an expired budget — escapes
   as an exception; every failure mode is a tallied outcome and the
   walk continues. *)
let run_problem ~config ~mk_budget ~certify path =
  let t0 = Obs.Stats.now () in
  let targets = ref 0 in
  let outcome =
    match load path with
    | exception Textio.Parse_error { line; msg } ->
      Malformed { line = Some line; msg }
    | exception Sys_error msg -> Malformed { line = None; msg }
    | net -> (
      match
        let budget : Obs.Budget.t = mk_budget () in
        let tgts = Net.targets net in
        targets := List.length tgts;
        List.map
          (fun (t, _) -> Engine.verify ~config ~budget ~certify net ~target:t)
          tgts
      with
      | exception e -> Crashed (Printexc.to_string e)
      | verdicts ->
        let has p = List.exists p verdicts in
        if has (function Engine.Violated _ -> true | _ -> false) then Violated
        else if has Engine.exhausted then Timeout
        else if has (function Engine.Inconclusive _ -> true | _ -> false) then
          Inconclusive
        else Proved (* vacuously so for a target-free problem *))
  in
  let elapsed_s = Obs.Stats.now () -. t0 in
  Obs.Stats.add_span ("corpus.file." ^ Filename.basename path) elapsed_s;
  { path; targets = !targets; outcome; elapsed_s }

let tally items =
  let count p = List.length (List.filter (fun i -> p i.outcome) items) in
  let s =
    {
      items;
      proved = count (function Proved -> true | _ -> false);
      violated = count (function Violated -> true | _ -> false);
      timeout = count (function Timeout -> true | _ -> false);
      inconclusive = count (function Inconclusive -> true | _ -> false);
      malformed = count (function Malformed _ -> true | _ -> false);
      crashed = count (function Crashed _ -> true | _ -> false);
    }
  in
  Obs.Stats.count "corpus.files" (List.length items);
  Obs.Stats.count "corpus.proved" s.proved;
  Obs.Stats.count "corpus.violated" s.violated;
  Obs.Stats.count "corpus.timeout" s.timeout;
  Obs.Stats.count "corpus.inconclusive" s.inconclusive;
  Obs.Stats.count "corpus.malformed" s.malformed;
  Obs.Stats.count "corpus.crashed" s.crashed;
  s

let run ?(jobs = 1) ?(config = Engine.default) ?(mk_budget = fun () -> Obs.Budget.unlimited)
    ?(certify = false) paths =
  let solve = run_problem ~config ~mk_budget ~certify in
  let items =
    if jobs <= 1 then List.map solve paths
    else
      Sched.Pool.with_pool ~jobs (fun pool ->
          Sched.Pool.try_map pool solve paths)
      |> List.map2
           (fun path -> function
             | Ok item -> item
             | Error e ->
               (* barrier of last resort: [run_problem] catches its own
                  exceptions, but a worker-level failure must still be
                  a tallied item, not a dead walk *)
               {
                 path;
                 targets = 0;
                 outcome = Crashed (Printexc.to_string e);
                 elapsed_s = 0.;
               })
           paths
  in
  tally items

(* exit-code contract: 0 all-ok, 1 any violated/finding (malformed and
   crashed are findings), 3 inconclusive-or-timeout only *)
let exit_code s =
  if s.violated + s.malformed + s.crashed > 0 then 1
  else if s.timeout + s.inconclusive > 0 then 3
  else 0
