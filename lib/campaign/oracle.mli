(** The differential oracle matrix.

    One design/target is run through several engine configurations
    that must be observationally equivalent — sequential ladder,
    ladder with SAT inprocessing disabled, the parallel portfolio —
    plus an already-expired budget cell that must {e never} conclude.
    Certification is on everywhere.  Any verdict disagreement,
    certification failure, budget-accounting violation or crash is a
    {!finding}; a healthy build reports none, and a seeded
    {!Sat.Chaos} fault must surface as at least one. *)

type kind =
  | Disagreement of {
      cell_a : string;
      verdict_a : string;
      cell_b : string;
      verdict_b : string;
    }  (** two cells reached different verdicts (timing excluded) *)
  | Cert_failure of { cell : string; detail : string }
      (** a cell recorded a {!Core.Engine.cert_fail_reason} attempt *)
  | Budget_violation of { cell : string; verdict : string }
      (** the expired-budget cell concluded [Proved]/[Violated] *)
  | Crash of { cell : string; detail : string }
      (** a cell raised; the exception, printed *)

type finding = { target : string; kind : kind }

val schema : string list
val kind_name : kind -> string
val pp_finding : Format.formatter -> finding -> unit

val config : Core.Engine.config
(** The campaign ladder config: limits sized so every fuzz species
    concludes, making any disagreement a bug rather than a tuning
    artifact. *)

val verdict_brief : Core.Engine.verdict -> string
(** Timing-free one-line rendering; two verdicts agree iff their
    briefs are equal (strategy + depth/time + attempt reasons). *)

type cell = {
  cell : string;  (** "ladder" | "ladder-noinproc" | "portfolio" | "expired-budget" *)
  outcome : (Core.Engine.verdict, string) result;
}

val cells_of_kind : kind -> string list
(** The cell names whose re-evaluation can reproduce a finding of
    this kind — what a shrinker's keep predicate needs to re-run. *)

val run_cells :
  ?jobs:int ->
  ?only:string list ->
  ?mk_budget:(unit -> Obs.Budget.t) ->
  Netlist.Net.t ->
  target:string ->
  cell list
(** Evaluate the matrix cells without checking them.  [only] restricts
    to the named subset (e.g. {!cells_of_kind} during shrinking);
    [mk_budget] mints a fresh per-eval allowance for the live cells
    (never for ["expired-budget"], whose budget is the experiment) —
    a conflicts-only budget keeps repeated evaluation deterministic
    {e and} bounded even when an injected fault makes every strategy
    run to its limits. *)

val check : target:string -> cell list -> finding list
(** Check evaluated cells: crashes, budget violations, certification
    failures and pairwise disagreement, deduplicated to one finding
    per kind. *)

val run :
  ?jobs:int ->
  ?mk_budget:(unit -> Obs.Budget.t) ->
  Netlist.Net.t ->
  target:string ->
  finding list * cell list
(** Run the full matrix on one target ([jobs], default 2, sizes the
    portfolio cell) and check it: findings in deterministic (cell
    declaration) order, plus every cell's outcome for reporting. *)
