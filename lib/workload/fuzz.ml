module Net = Netlist.Net
module Lit = Netlist.Lit

type species =
  | Deep_cex
  | Wide_memory
  | Retiming_hostile
  | Near_miss
  | Reconvergent
  | Mixed

let all_species =
  [ Deep_cex; Wide_memory; Retiming_hostile; Near_miss; Reconvergent; Mixed ]

let species_name = function
  | Deep_cex -> "deep-cex"
  | Wide_memory -> "wide-memory"
  | Retiming_hostile -> "retiming-hostile"
  | Near_miss -> "near-miss"
  | Reconvergent -> "reconvergent"
  | Mixed -> "mixed"

type case = {
  index : int;
  species : species;
  label : string;
  net : Net.t;
}

(* every design shares a small primary-input pool so gadget operands
   can be picked distinct (see Gen.pick_distinct) *)
let fresh_inputs net n =
  List.init n (fun i -> Net.add_input net (Printf.sprintf "in%d" i))

let add_target net i l =
  let name = Printf.sprintf "t%d" i in
  Net.add_target net name l;
  Net.add_output net name l

(* The counterexample sits at depth 2^bits - 1 (+ delay), past the
   default shallow probe but inside the structural-bound discharge —
   a design whose verdict exercises the bound/translation machinery,
   not just BMC. *)
let deep_cex rng net inputs =
  let bits = 4 + Rng.int rng 2 in
  let enable = if Rng.bool rng then Lit.true_ else Rng.pick rng inputs in
  let c = Gen.counter net ~name:"dc" ~bits ~enable in
  let delay = Rng.int rng 3 in
  let out =
    if delay = 0 then c.Gen.out
    else (Gen.pipeline net ~name:"dcp" ~stages:delay ~data:c.Gen.out).Gen.out
  in
  add_target net 0 out

(* Wide state with shallow behaviour: hold-mux memories and queues
   whose verdicts are cheap but whose register populations stress the
   classification/rebuild layers. *)
let wide_memory rng net inputs =
  let rows = 4 in
  let width = 1 + Rng.int rng 2 in
  let addr, data, write =
    match Gen.pick_distinct rng inputs 5 with
    | [ a0; a1; d0; d1; w ] -> ([ a0; a1 ], [ d0; d1 ], w)
    | _ -> assert false
  in
  let m = Gen.memory net ~name:"wm" ~rows ~width ~addr ~data ~write in
  add_target net 0 m.Gen.out;
  let push, d =
    match Gen.pick_distinct rng inputs 2 with
    | [ p; d ] -> (p, d)
    | _ -> assert false
  in
  let depth = 3 + Rng.int rng 3 in
  let q = Gen.queue net ~name:"wq" ~depth ~width:1 ~push ~data:[ d ] in
  add_target net 1 q.Gen.out

(* A counter frozen behind a retiming-only guard: the target is
   unreachable, but only the COM,RET,COM pipeline (or induction) can
   prove it — the strategies disagree on cost, never on the verdict. *)
let retiming_hostile rng net inputs =
  let x, y =
    match Gen.pick_distinct rng inputs 2 with
    | [ x; y ] -> (x, y)
    | _ -> assert false
  in
  let guard = Gen.ret_guard net ~name:"rh" ~x ~y in
  let bits = 4 + Rng.int rng 2 in
  let c = Gen.counter net ~name:"rhc" ~bits ~enable:guard in
  add_target net 0 c.Gen.out

(* Two structurally-similar functions that are NOT equivalent (they
   differ in one operand) next to a pair that are: an unsound
   over-merge in the sweeping layer flips the live target's verdict,
   which the differential matrix would catch as a disagreement. *)
let near_miss rng net inputs =
  let a, b, c =
    match Gen.pick_distinct rng inputs 3 with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  let f = Net.add_xor net a b in
  let f' = Net.add_xor net (Net.add_xor net a b) c in
  let live_guard = Net.add_and net f (Lit.neg f') in
  let live = Gen.counter net ~name:"nml" ~bits:4 ~enable:live_guard in
  add_target net 0 live.Gen.out;
  let dead_guard = Gen.com_guard net rng ~inputs in
  let dead = Gen.counter net ~name:"nmd" ~bits:4 ~enable:dead_guard in
  add_target net 1 dead.Gen.out

(* Reconvergent select logic hiding a hold-mux chain: classified as a
   general component before sweeping, a table afterwards — the bound
   depends on which representation each strategy sees. *)
let reconvergent rng net inputs =
  let sel =
    match Gen.pick_distinct rng inputs 3 with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  let len = 3 + Rng.int rng 3 in
  let ch = Gen.obscured_chain net ~name:"rc" ~sel ~data:(Rng.pick rng inputs) ~len in
  add_target net 0 ch.Gen.out;
  let (a, b, c) = sel in
  add_target net 1 (Net.add_xor net ch.Gen.out (Net.add_and net a (Net.add_xor net b c)))

(* Two arbitrary small blocks conjoined: no particular adversarial
   shape, just coverage of the block generators' cross products. *)
let mixed rng net inputs =
  let block i =
    let name = Printf.sprintf "mx%d" i in
    match Rng.int rng 5 with
    | 0 -> Gen.ring net ~name ~length:(3 + Rng.int rng 3)
    | 1 -> Gen.lfsr net ~name ~bits:(3 + Rng.int rng 3)
    | 2 ->
      Gen.counter net ~name ~bits:(3 + Rng.int rng 2)
        ~enable:(Rng.pick rng inputs)
    | 3 ->
      Gen.pipeline net ~name
        ~stages:(2 + Rng.int rng 3)
        ~data:(Rng.pick rng inputs)
    | _ -> Gen.fsm net rng ~name ~bits:(2 + Rng.int rng 2) ~inputs
  in
  let b0 = block 0 in
  let b1 = block 1 in
  let join =
    if Rng.bool rng then Net.add_and net b0.Gen.out b1.Gen.out
    else Net.add_or net b0.Gen.out b1.Gen.out
  in
  add_target net 0 join

let build species rng =
  let net = Net.create () in
  let inputs = fresh_inputs net 6 in
  (match species with
  | Deep_cex -> deep_cex rng net inputs
  | Wide_memory -> wide_memory rng net inputs
  | Retiming_hostile -> retiming_hostile rng net inputs
  | Near_miss -> near_miss rng net inputs
  | Reconvergent -> reconvergent rng net inputs
  | Mixed -> mixed rng net inputs);
  Net.check net;
  net

let case ~seed i =
  if i < 0 then invalid_arg "Fuzz.case";
  let species = List.nth all_species (i mod List.length all_species) in
  (* forked stream: case i is a pure function of (seed, i), so a
     parallel campaign builds byte-identical designs in any order *)
  let rng = Rng.fork (Rng.create seed) i in
  {
    index = i;
    species;
    label = Printf.sprintf "%04d-%s" i (species_name species);
    net = build species rng;
  }

let generate ~seed ~count = List.init count (fun i -> case ~seed i)
