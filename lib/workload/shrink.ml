module Net = Netlist.Net
module Lit = Netlist.Lit

let size net =
  Net.num_inputs net + Net.num_regs net + Net.num_latches net + Net.num_ands net

type action =
  | Keep
  | Const of bool
  | Redirect of Lit.t  (* replace a gate by one of its (earlier) fanins *)

(* Rebuild [src] keeping only the cones of [targets], applying [subst]
   per old variable.  Constant-substituted vertices are cut (their
   cones vanish unless reachable elsewhere); redirected vertices alias
   an earlier literal.  Because AND fanins precede the gate and
   Redirect only points backwards, a single ascending pass builds every
   needed vertex before its uses; register/latch data edges close in a
   second pass. *)
let rebuild ?(subst = fun _ -> Keep) src ~targets =
  let n = Net.num_vars src in
  let needed = Array.make n false in
  let stack = ref [] in
  let push v =
    if v > 0 && not needed.(v) then begin
      needed.(v) <- true;
      stack := v :: !stack
    end
  in
  let deps v =
    match subst v with
    | Const _ -> []
    | Redirect l -> [ Lit.var l ]
    | Keep -> List.map Lit.var (Net.fanins src v)
  in
  List.iter (fun (_, l) -> push (Lit.var l)) targets;
  let rec drain () =
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      List.iter push (deps v);
      drain ()
  in
  drain ();
  let dst = Net.create ~phases:(Net.phases src) () in
  let mapped = Array.make n Lit.false_ in
  let have = Array.make n false in
  let map_lit l =
    let v = Lit.var l in
    let base =
      if v = 0 then Lit.false_
      else if have.(v) then mapped.(v)
      else
        match subst v with
        | Const b -> Lit.xor_sign Lit.false_ b
        | _ -> invalid_arg "Shrink.rebuild: forward edge into unbuilt vertex"
    in
    Lit.xor_sign base (Lit.is_neg l)
  in
  for v = 1 to n - 1 do
    if needed.(v) then begin
      (match subst v with
      | Const b -> mapped.(v) <- Lit.xor_sign Lit.false_ b
      | Redirect l -> mapped.(v) <- map_lit l
      | Keep -> (
        match Net.node src v with
        | Net.Const -> ()
        | Net.Input name -> mapped.(v) <- Net.add_input dst name
        | Net.And (a, b) -> mapped.(v) <- Net.add_and dst (map_lit a) (map_lit b)
        | Net.Reg r -> mapped.(v) <- Net.add_reg dst ~init:r.Net.r_init r.Net.r_name
        | Net.Latch l ->
          mapped.(v) <- Net.add_latch dst ~init:l.Net.l_init ~phase:l.Net.l_phase l.Net.l_name));
      have.(v) <- true
    end
  done;
  for v = 1 to n - 1 do
    if needed.(v) then
      match subst v with
      | Const _ | Redirect _ -> ()
      | Keep -> (
        match Net.node src v with
        | Net.Reg r -> Net.set_next dst mapped.(v) (map_lit r.Net.next)
        | Net.Latch l -> Net.set_latch_data dst mapped.(v) (map_lit l.Net.l_data)
        | _ -> ())
  done;
  List.iter
    (fun (name, l) ->
      let l' = map_lit l in
      Net.add_target dst name l';
      Net.add_output dst name l')
    targets;
  Net.check dst;
  dst

let restrict net ~target =
  match List.assoc_opt target (Net.targets net) with
  | None -> invalid_arg "Shrink.restrict: unknown target"
  | Some l -> rebuild net ~targets:[ (target, l) ]

type result = {
  net : Net.t;
  original_size : int;
  shrunk_size : int;
  rounds : int;
  tried : int;
  accepted : int;
}

let init_bool = function
  | Net.Init1 -> true
  | Net.Init0 | Net.Init_x -> false

(* Greedy passes to a fixpoint: within a round every candidate is a
   one-vertex substitution layered on the round's accepted set, so a
   trial is one rebuild + one [keep] call and variable identifiers stay
   those of the round's base net.  A candidate survives only when it
   strictly shrinks AND the finding still manifests ([keep]). *)
let run ?(max_rounds = 8) ?(max_tries = 2000) ~keep net ~target =
  let tlit =
    match List.assoc_opt target (Net.targets net) with
    | Some l -> l
    | None -> invalid_arg "Shrink.run: unknown target"
  in
  let original_size = size net in
  let current =
    (* cone-of-influence restriction first: free size loss, and it
       normally preserves the finding exactly; fall back to a plain
       all-targets copy when it does not *)
    let r = rebuild net ~targets:[ (target, tlit) ] in
    if keep r then ref r else ref (rebuild net ~targets:(Net.targets net))
  in
  let tried = ref 0 and accepted = ref 0 and rounds = ref 0 in
  let progress = ref true in
  while !progress && !rounds < max_rounds && !tried < max_tries do
    incr rounds;
    progress := false;
    let base = !current in
    let tgts = Net.targets base in
    let sub : (int, action) Hashtbl.t = Hashtbl.create 16 in
    let subst v = Option.value (Hashtbl.find_opt sub v) ~default:Keep in
    let try_cand v act =
      if !tried < max_tries && not (Hashtbl.mem sub v) then begin
        incr tried;
        Hashtbl.replace sub v act;
        let won =
          match rebuild base ~targets:tgts ~subst with
          | cand when size cand < size !current && keep cand -> Some cand
          | _ -> None
          | exception Failure _ -> None
        in
        match won with
        | Some cand ->
          incr accepted;
          progress := true;
          current := cand
        | None -> Hashtbl.remove sub v
      end
    in
    List.iter
      (fun v -> try_cand v (Const (init_bool (Net.reg_of base v).Net.r_init)))
      (Net.regs base);
    List.iter
      (fun v -> try_cand v (Const (init_bool (Net.latch_of base v).Net.l_init)))
      (Net.latches base);
    List.iter
      (fun v ->
        try_cand v (Const false);
        try_cand v (Const true))
      (Net.inputs base);
    let ands = ref [] in
    Net.iter_nodes base (fun v node ->
        match node with
        | Net.And (a, b) -> ands := (v, a, b) :: !ands
        | _ -> ());
    (* prepending above left the list in descending identifier order:
       cutting near the target first can delete whole cones in one step *)
    List.iter
      (fun (v, a, b) ->
        try_cand v (Const false);
        try_cand v (Redirect a);
        try_cand v (Redirect b))
      !ands
  done;
  {
    net = !current;
    original_size;
    shrunk_size = size !current;
    rounds = !rounds;
    tried = !tried;
    accepted = !accepted;
  }
