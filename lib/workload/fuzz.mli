(** Adversarial design breeder for the differential-oracle campaign.

    Each species targets a seam where the strategy ladder, the
    transformation pipeline, or the portfolio could disagree with
    itself: deep counterexamples past the shallow probe, wide
    memories, retiming-only guards, near-miss (inequivalent but
    structurally similar) redundancies, and reconvergent select logic
    that changes classification under sweeping.  Designs are small by
    construction so every oracle cell concludes within the campaign
    config. *)

type species =
  | Deep_cex          (** counterexample at depth [2^bits - 1 + delay] *)
  | Wide_memory       (** hold-mux memory + queue, many registers *)
  | Retiming_hostile  (** counter frozen behind a {!Gen.ret_guard} *)
  | Near_miss         (** inequivalent near-duplicates beside true ones *)
  | Reconvergent      (** obscured hold-mux chain + reconvergent XOR *)
  | Mixed             (** two random blocks conjoined *)

val all_species : species list
val species_name : species -> string

type case = {
  index : int;
  species : species;  (** [List.nth all_species (index mod 6)] *)
  label : string;  (** ["%04d-<species>" index] — stable across runs *)
  net : Netlist.Net.t;
}

val case : seed:int -> int -> case
(** [case ~seed i] builds case [i] of the campaign seeded [seed] via
    {!Rng.fork} — a pure function of [(seed, i)], so parallel workers
    reproduce the exact design regardless of scheduling.
    @raise Invalid_argument when [i < 0]. *)

val generate : seed:int -> count:int -> case list
(** Cases [0 .. count-1] in order. *)
