(** Deterministic synthetic benchmark families standing in for the
    paper's ISCAS89 (Table 1) and IBM Gigahertz Processor (Table 2)
    workloads, plus the block generators they are assembled from. *)

module Rng = Rng
module Gen = Gen
module Recipe = Recipe
module Iscas = Iscas
module Gp = Gp
module Fuzz = Fuzz
module Shrink = Shrink
