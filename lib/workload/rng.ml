(* Splitmix64.  [state] advances by [gamma] per draw; the classic
   generator uses the golden-ratio gamma, and split/fork derive
   children with their own (odd) gammas so streams never interleave.
   [seed0] remembers the creation state so {!fork} is a pure function
   of (creation seed, index), independent of draws made since. *)
type t = { mutable state : int64; gamma : int64; seed0 : int64 }

let golden = 0x9e3779b97f4a7c15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  { state = Int64.of_int seed; gamma = golden; seed0 = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state t.gamma;
  mix t.state

(* a child's gamma must be odd (full-period additive constant) and is
   itself mixed so nearby parents do not share gamma sequences *)
let derive_gamma z = Int64.logor (mix (Int64.logxor z golden)) 1L

let split t =
  let s = next t in
  let g = derive_gamma (next t) in
  { state = s; gamma = g; seed0 = s }

let fork t i =
  if i < 0 then invalid_arg "Rng.fork";
  let z = Int64.add t.seed0 (Int64.mul t.gamma (Int64.of_int (i + 1))) in
  { state = mix z; gamma = derive_gamma z; seed0 = mix z }

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int n))

let bool t = Int64.logand (next t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty"
  | l -> List.nth l (int t (List.length l))
