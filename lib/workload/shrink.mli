(** Greedy structural shrinker: reduce a finding-carrying netlist to a
    minimal repro while a caller-supplied predicate (the oracle re-run)
    still holds.

    Invariants the campaign relies on:
    - the shrunk net is always a {e valid} netlist ([Net.check] passes
      on every intermediate);
    - the named target survives every step, so the oracle re-runs
      against the same property;
    - the result never grows: each accepted candidate strictly
      decreases {!size}, and the original is returned when nothing is
      accepted. *)

val size : Netlist.Net.t -> int
(** Inputs + registers + latches + AND gates — the measure shrinking
    minimizes (target count and names are free). *)

val restrict : Netlist.Net.t -> target:string -> Netlist.Net.t
(** Cone-of-influence restriction: a copy keeping only logic reachable
    from the named target, which becomes the sole target/output.
    @raise Invalid_argument on an unknown target. *)

type result = {
  net : Netlist.Net.t;  (** the minimal repro *)
  original_size : int;
  shrunk_size : int;
  rounds : int;  (** greedy passes executed (last one accepts nothing) *)
  tried : int;  (** candidate substitutions evaluated *)
  accepted : int;  (** candidates that shrank and kept the finding *)
}

val run :
  ?max_rounds:int ->
  ?max_tries:int ->
  keep:(Netlist.Net.t -> bool) ->
  Netlist.Net.t ->
  target:string ->
  result
(** [run ~keep net ~target] restricts to the target's cone, then
    repeatedly tries per-vertex substitutions — registers/latches to
    their initial value, inputs to constants, AND gates to a constant
    or one of their fanins — keeping a candidate only when it strictly
    shrinks and [keep] still accepts it.  Deterministic: candidate
    order is a function of the netlist alone.  [max_rounds] (default 8)
    bounds greedy passes; [max_tries] (default 2000) bounds total
    [keep] evaluations.
    @raise Invalid_argument on an unknown target. *)
