(** Deterministic splitmix64 generator: workloads must be reproducible
    across runs and platforms, so no [Random.self_init]. *)

type t

val create : int -> t
val int : t -> int -> int
(** [int t n] in [0, n). *)

val bool : t -> bool
val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on the empty list. *)

(** {1 Independent streams}

    Parallel workers must draw from streams that neither interleave
    nor depend on scheduling order, so that a campaign report is
    byte-identical for every [--jobs] value. *)

val split : t -> t
(** A child generator with its own additive constant; advances the
    parent (two draws), so successive [split]s yield distinct
    children.  Parent and child sequences are independent. *)

val fork : t -> int -> t
(** [fork t i] is the [i]-th child stream, a pure function of the
    generator [t] was {e created} from and [i]: it does not advance
    [t], and draws made on [t] before or after do not change it.  This
    is the parallel-fan-out primitive — worker [i] gets [fork base i]
    and the fan-out is reproducible regardless of worker count or
    completion order.
    @raise Invalid_argument when [i < 0]. *)
