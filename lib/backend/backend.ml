(* Pluggable solver backends: the SOLVER contract, the three shipped
   implementations (reference CDCL, BDD oracle, external DIMACS
   round-trip), and the selection spec the engine races over.  See
   backend.mli for the contract and the determinism invariant. *)

module Solver = Sat.Solver

type lit = Solver.lit

type result = Sat | Unsat | Unknown of string

let budget_reason = "budget-exhausted"
let node_limit_reason n = Printf.sprintf "bdd-node-limit:%d" n

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let is_node_limit = has_prefix "bdd-node-limit"
let unavailable_prefix = "backend-unavailable"
let unavailable detail = unavailable_prefix ^ ": " ^ detail
let is_unavailable = has_prefix unavailable_prefix

type stats = {
  vars : int;
  clauses : int;
  learnts : int;
  trail : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  reduce_dbs : int;
  simplifies : int;
  subsumed : int;
  strengthened : int;
  eliminated : int;
  probed_units : int;
}

let zero_stats =
  {
    vars = 0;
    clauses = 0;
    learnts = 0;
    trail = 0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    reduce_dbs = 0;
    simplifies = 0;
    subsumed = 0;
    strengthened = 0;
    eliminated = 0;
    probed_units = 0;
  }

module type SOLVER = sig
  val name : string
  val new_var : unit -> int
  val add_clause : lit list -> unit

  val solve :
    ?assumptions:lit list ->
    ?max_conflicts:int ->
    ?max_propagations:int ->
    ?max_nodes:int ->
    ?should_stop:(unit -> bool) ->
    unit ->
    result

  val value : lit -> bool
  val set_proof : Sat.Proof.t -> unit
  val proof_capable : bool
  val stats : unit -> stats
  val set_simplify_wrapper : ((unit -> unit) -> unit) -> unit
  val interrupt : unit -> unit
end

type solver = (module SOLVER)

let of_module m = m

(* ----- literal helpers ----- *)

let pos = Solver.pos
let neg_of = Solver.neg_of
let negate = Solver.negate
let var_of = Solver.var_of
let is_pos = Solver.is_pos

(* ----- instance operations ----- *)

let name (module S : SOLVER) = S.name
let new_var (module S : SOLVER) = S.new_var ()
let add_clause (module S : SOLVER) c = S.add_clause c

let solve ?assumptions ?max_conflicts ?max_propagations ?max_nodes ?should_stop
    (module S : SOLVER) =
  S.solve ?assumptions ?max_conflicts ?max_propagations ?max_nodes ?should_stop
    ()

let value (module S : SOLVER) l = S.value l
let set_proof (module S : SOLVER) p = S.set_proof p
let proof_capable (module S : SOLVER) = S.proof_capable
let stats (module S : SOLVER) = S.stats ()
let set_simplify_wrapper (module S : SOLVER) w = S.set_simplify_wrapper w
let interrupt (module S : SOLVER) = S.interrupt ()
let num_conflicts s = (stats s).conflicts
let num_propagations s = (stats s).propagations
let num_vars s = (stats s).vars
let num_clauses s = (stats s).clauses

(* ----- chaos plumbing shared by the non-CDCL backends -----

   The reference backend injects inside Sat.Solver itself; the oracle
   backends corrupt their REPORTED answers here, at the seam, so the
   certification layer is exercised against every backend the same
   way.  Instances are captured at solver creation, exactly like
   Solver.create does. *)

let chaos_report inst ~garbage_model ~scramble_model r =
  match (Sat.Chaos.instance_fault inst, r) with
  | Some Sat.Chaos.Flip_to_unsat, Sat ->
    Sat.Chaos.instance_note inst;
    Unsat
  | Some Sat.Chaos.Flip_to_sat, Unsat ->
    Sat.Chaos.instance_note inst;
    garbage_model ();
    Sat
  | Some Sat.Chaos.Corrupt_model, Sat ->
    Sat.Chaos.instance_note inst;
    scramble_model ();
    Sat
  | _ -> r

(* ----- backend 1: the reference CDCL solver ----- *)

let reference_solver ?inprocess () : solver =
  let s = Solver.create ?inprocess () in
  let interrupted = Atomic.make false in
  (module struct
    let name = "reference"
    let new_var () = Solver.new_var s
    let add_clause c = Solver.add_clause s c

    let solve ?assumptions ?max_conflicts ?max_propagations ?max_nodes:_
        ?should_stop () =
      let should_stop () =
        Atomic.get interrupted
        || match should_stop with Some f -> f () | None -> false
      in
      match
        Solver.solve ?assumptions ?max_conflicts ?max_propagations
          ~should_stop s
      with
      | Solver.Sat -> Sat
      | Solver.Unsat -> Unsat
      | Solver.Unknown -> Unknown budget_reason

    let value l = Solver.value s l
    let set_proof p = Solver.set_proof s p
    let proof_capable = true

    let stats () =
      {
        vars = Solver.num_vars s;
        clauses = Solver.num_clauses s;
        learnts = Solver.num_learnts s;
        trail = Solver.trail_depth s;
        conflicts = Solver.num_conflicts s;
        decisions = Solver.num_decisions s;
        propagations = Solver.num_propagations s;
        restarts = Solver.num_restarts s;
        reduce_dbs = Solver.num_reduce_dbs s;
        simplifies = Solver.num_simplifies s;
        subsumed = Solver.num_subsumed s;
        strengthened = Solver.num_strengthened s;
        eliminated = Solver.num_eliminated s;
        probed_units = Solver.num_probed_units s;
      }

    let set_simplify_wrapper w = Solver.set_simplify_wrapper s w
    let interrupt () = Atomic.set interrupted true
  end)

(* ----- backend 2: the BDD oracle -----

   Exact SAT for small cones: conjoin every clause (and assumption
   unit) into one BDD under a node allowance.  False means Unsat; any
   other node yields a model along one true path (variables off the
   path are don't-care for that path, so defaulting them to false
   keeps the model satisfying).  A Node_limit unwinds to a structured
   Unknown — the manager is abandoned, nothing leaks into later
   solves. *)

let bdd_default_max_nodes () =
  match Sys.getenv_opt "DIAMBOUND_BDD_NODES" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | _ -> 200_000)
  | None -> 200_000

let bdd_solver ~max_nodes () : solver =
  let limit = match max_nodes with Some n -> n | None -> bdd_default_max_nodes () in
  let nvars = ref 0 in
  let nclauses = ref 0 in
  let clauses : lit list list ref = ref [] in
  let model : bool array option ref = ref None in
  let interrupted = Atomic.make false in
  let chaos = Sat.Chaos.capture () in
  (module struct
    let name = "bdd"

    let new_var () =
      let v = !nvars in
      incr nvars;
      v

    let add_clause c =
      incr nclauses;
      clauses := c :: !clauses

    let solve ?(assumptions = []) ?max_conflicts:_ ?max_propagations:_
        ?max_nodes ?should_stop () =
      model := None;
      let limit =
        match max_nodes with Some m -> min m limit | None -> limit
      in
      let stop () =
        Atomic.get interrupted
        || match should_stop with Some f -> f () | None -> false
      in
      let man = Bdd.man ~max_nodes:limit () in
      let bdd_of_lit l =
        let v = var_of l in
        if is_pos l then Bdd.var man v else Bdd.nvar man v
      in
      let exception Stopped in
      match
        let polled = ref 0 in
        let conjoin acc cl =
          if Bdd.is_false acc then acc
          else begin
            incr polled;
            if !polled land 127 = 0 && stop () then raise Stopped;
            Bdd.band man acc (Bdd.bor_list man (List.map bdd_of_lit cl))
          end
        in
        if stop () then raise Stopped;
        let conj = List.fold_left conjoin Bdd.btrue (List.rev !clauses) in
        List.fold_left (fun acc l -> conjoin acc [ l ]) conj assumptions
      with
      | conj ->
        let r =
          if Bdd.is_false conj then Unsat
          else begin
            let m = Array.make (max 1 !nvars) false in
            List.iter
              (fun (v, b) -> if v < Array.length m then m.(v) <- b)
              (Bdd.any_sat man conj);
            model := Some m;
            Sat
          end
        in
        chaos_report chaos
          ~garbage_model:(fun () ->
            model := Some (Array.make (max 1 !nvars) false))
          ~scramble_model:(fun () ->
            match !model with
            | Some m -> Array.iteri (fun i b -> m.(i) <- not b) m
            | None -> ())
          r
      | exception Bdd.Node_limit n -> Unknown (node_limit_reason n)
      | exception Stopped -> Unknown budget_reason

    let value l =
      match !model with
      | None -> invalid_arg "Backend(bdd).value: no model"
      | Some m ->
        let v = var_of l in
        let b = if v < Array.length m then m.(v) else false in
        if is_pos l then b else not b

    (* no clausal derivation to record: an Unsat answer from the
       oracle cannot be DRUP-certified, so certifying callers withhold
       it (conservative, documented in DESIGN.md §9) *)
    let set_proof _ = ()
    let proof_capable = false

    let stats () = { zero_stats with vars = !nvars; clauses = !nclauses }
    let set_simplify_wrapper _ = ()
    let interrupt () = Atomic.set interrupted true
  end)

(* ----- backend 3: external DIMACS round-trip -----

   Stateless per solve: the whole clause set plus the current
   assumptions (as unit clauses) is written as DIMACS, [cmd CNF PROOF]
   runs under /bin/sh, and the status / model / DRUP come back from
   stdout and the proof file.  Every failure mode — unset command,
   missing binary, crash, unparseable output — degrades to a
   structured backend-unavailable Unknown, never an exception. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* run [cmd] to completion, polling [stop] while it runs; stdout goes
   to a temp file whose contents are returned *)
let run_external ~stop cmd =
  let out_path = Filename.temp_file "diambound_ext" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out_path with Sys_error _ -> ())
  @@ fun () ->
  let out_fd =
    Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Fun.protect
      ~finally:(fun () ->
        Unix.close out_fd;
        Unix.close devnull)
      (fun () ->
        Unix.create_process "/bin/sh"
          [| "/bin/sh"; "-c"; cmd |]
          devnull out_fd devnull)
  in
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if stop () then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        `Stopped
      end
      else begin
        Unix.sleepf 0.005;
        wait ()
      end
    | _, Unix.WEXITED c -> `Exited c
    | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> `Signaled
  in
  let status = wait () in
  (status, read_file out_path)

(* status line + model integers out of solver stdout: competition "s"
   and "v" lines, or the bare SAT/UNSAT + assignment-line dialect *)
let parse_solver_output text =
  let status = ref `None in
  let v_ints = ref [] in
  let bare_ints = ref [] in
  let add_tok acc tok =
    match int_of_string_opt tok with
    | Some i when i <> 0 -> acc := i :: !acc
    | _ -> ()
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" then
        match line with
        | "s SATISFIABLE" | "SAT" | "SATISFIABLE" -> status := `Sat
        | "s UNSATISFIABLE" | "UNSAT" | "UNSATISFIABLE" -> status := `Unsat
        | "s UNKNOWN" | "UNKNOWN" | "INDETERMINATE" -> status := `Unknown
        | _ ->
          if line.[0] = 'v' then
            List.iter (add_tok v_ints) (String.split_on_char ' ' line)
          else if line.[0] <> 'c' && line.[0] <> 's' then begin
            let toks =
              String.split_on_char ' ' line |> List.filter (( <> ) "")
            in
            if
              toks <> []
              && List.for_all (fun t -> int_of_string_opt t <> None) toks
            then List.iter (add_tok bare_ints) toks
          end)
    (String.split_on_char '\n' text);
  (!status, if !v_ints <> [] then !v_ints else !bare_ints)

let external_solver_instance ~cmd () : solver =
  let nvars = ref 0 in
  let nclauses = ref 0 in
  let clauses : lit list list ref = ref [] in
  let model : bool array option ref = ref None in
  let proof : Sat.Proof.t option ref = ref None in
  let interrupted = Atomic.make false in
  let chaos = Sat.Chaos.capture () in
  let drop_proof () =
    Sat.Chaos.instance_fault chaos = Some Sat.Chaos.Drop_proof
    && begin
         Sat.Chaos.instance_note chaos;
         true
       end
  in
  (module struct
    let name = "ext"

    let new_var () =
      let v = !nvars in
      incr nvars;
      v

    let add_clause c =
      incr nclauses;
      clauses := c :: !clauses;
      match !proof with
      | Some p when not (drop_proof ()) ->
        Sat.Proof.log_input p (Array.of_list c)
      | _ -> ()

    let set_proof p =
      proof := Some p;
      (* tolerate late attachment: re-log what is already there *)
      if not (drop_proof ()) then
        List.iter
          (fun c -> Sat.Proof.log_input p (Array.of_list c))
          (List.rev !clauses)

    let proof_capable = true

    let solve ?(assumptions = []) ?max_conflicts:_ ?max_propagations:_
        ?max_nodes:_ ?should_stop () =
      model := None;
      let stop () =
        Atomic.get interrupted
        || match should_stop with Some f -> f () | None -> false
      in
      let cmd =
        match cmd with
        | Some c -> Some c
        | None -> Sys.getenv_opt "DIAMBOUND_EXT_SOLVER"
      in
      match cmd with
      | None | Some "" ->
        Unknown (unavailable "DIAMBOUND_EXT_SOLVER is not set")
      | Some cmd -> (
        try
          let cnf_path = Filename.temp_file "diambound_ext" ".cnf" in
          let proof_path = Filename.temp_file "diambound_ext" ".drup" in
          Fun.protect ~finally:(fun () ->
              List.iter
                (fun p -> try Sys.remove p with Sys_error _ -> ())
                [ cnf_path; proof_path ])
          @@ fun () ->
          let oc = open_out cnf_path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              Sat.Dimacs.print oc
                {
                  Sat.Cnf.num_vars = !nvars;
                  clauses =
                    List.rev_append !clauses
                      (List.map (fun l -> [ l ]) assumptions);
                });
          let status, text =
            run_external ~stop
              (Printf.sprintf "%s %s %s" cmd
                 (Filename.quote cnf_path)
                 (Filename.quote proof_path))
          in
          match status with
          | `Stopped -> Unknown budget_reason
          | `Signaled -> Unknown (unavailable "external solver killed")
          | `Exited code -> (
            match parse_solver_output text with
            | `Sat, ints ->
              let m = Array.make (max 1 !nvars) false in
              List.iter
                (fun i ->
                  let v = abs i - 1 in
                  if v >= 0 && v < Array.length m then m.(v) <- i > 0)
                ints;
              model := Some m;
              chaos_report chaos
                ~garbage_model:(fun () -> ())
                ~scramble_model:(fun () ->
                  match !model with
                  | Some m -> Array.iteri (fun i b -> m.(i) <- not b) m
                  | None -> ())
                Sat
            | `Unsat, _ ->
              (match !proof with
              | Some p when not (drop_proof ()) -> (
                try
                  let parsed = Sat.Proof.parse_file proof_path in
                  List.iter
                    (function
                      | Sat.Proof.Add c -> Sat.Proof.log_add p c
                      | Sat.Proof.Delete c -> Sat.Proof.log_delete p c
                      | Sat.Proof.Input _ -> ())
                    (Sat.Proof.events parsed)
                with Failure _ | Sys_error _ ->
                  (* an unreadable derivation only weakens
                     certification, never the verdict *)
                  ())
              | _ -> ());
              chaos_report chaos
                ~garbage_model:(fun () ->
                  model := Some (Array.make (max 1 !nvars) false))
                ~scramble_model:(fun () -> ())
                Unsat
            | `Unknown, _ -> Unknown budget_reason
            | `None, _ ->
              Unknown
                (unavailable
                   (Printf.sprintf "no solver status in output (exit %d)"
                      code)))
        with e -> Unknown (unavailable (Printexc.to_string e)))

    let value l =
      match !model with
      | None -> invalid_arg "Backend(ext).value: no model"
      | Some m ->
        let v = var_of l in
        let b = if v < Array.length m then m.(v) else false in
        if is_pos l then b else not b

    let stats () = { zero_stats with vars = !nvars; clauses = !nclauses }
    let set_simplify_wrapper _ = ()
    let interrupt () = Atomic.set interrupted true
  end)

(* ----- descriptors ----- *)

type t = {
  b_name : string;
  b_id : string;
  b_inprocess : bool option;
  b_create : unit -> solver;
}

let reference ?inprocess () =
  {
    b_name = "reference";
    b_id =
      (match inprocess with
      | None -> "reference"
      | Some true -> "reference+inproc"
      | Some false -> "reference-noinproc");
    b_inprocess = inprocess;
    b_create = (fun () -> reference_solver ?inprocess ());
  }

let bdd_oracle ?max_nodes () =
  {
    b_name = "bdd";
    b_id =
      (match max_nodes with
      | None -> "bdd"
      | Some n -> Printf.sprintf "bdd:%d" n);
    b_inprocess = None;
    b_create = (fun () -> bdd_solver ~max_nodes ());
  }

let external_solver ?cmd () =
  {
    b_name = "ext";
    b_id = (match cmd with None -> "ext" | Some c -> "ext:" ^ c);
    b_inprocess = None;
    b_create = (fun () -> external_solver_instance ~cmd ());
  }

let is_reference b = String.equal b.b_name "reference"
let instantiate b = b.b_create ()
let create ?inprocess () = reference_solver ?inprocess ()

(* ----- selection ----- *)

type spec = Single of t | Race of t list

let backends = function Single b -> [ b ] | Race bs -> bs

let spec_id = function
  | Single b -> b.b_id
  | Race bs -> "race:" ^ String.concat "+" (List.map (fun b -> b.b_id) bs)

let of_name n =
  match String.lowercase_ascii (String.trim n) with
  | "reference" | "cdcl" -> Ok (reference ())
  | "bdd" | "bdd-oracle" -> Ok (bdd_oracle ())
  | "ext" | "external" | "dimacs" -> Ok (external_solver ())
  | other ->
    Error
      (Printf.sprintf
         "unknown backend %S (expected reference, bdd, ext or race)" other)

let race_pool () =
  [ reference (); bdd_oracle () ]
  @
  match Sys.getenv_opt "DIAMBOUND_EXT_SOLVER" with
  | Some cmd when String.trim cmd <> "" -> [ external_solver () ]
  | _ -> []

let spec_of_string n =
  match String.lowercase_ascii (String.trim n) with
  | "race" -> Ok (Race (race_pool ()))
  | _ -> Result.map (fun b -> Single b) (of_name n)

let default_spec : spec option ref = ref None
let set_default s = default_spec := Some s

let default () =
  match !default_spec with
  | Some s -> s
  | None -> (
    match Sys.getenv_opt "DIAMBOUND_BACKEND" with
    | Some n when String.trim n <> "" -> (
      match spec_of_string n with
      | Ok s -> s
      | Error _ -> Single (reference ()))
    | _ -> Single (reference ()))

let default_solver () =
  match backends (default ()) with
  | b :: _ -> instantiate b
  | [] -> reference_solver ()
