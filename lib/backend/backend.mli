(** Pluggable solver backends.

    Everything above the raw CDCL solver — the unroller, BMC, the
    engine ladder — talks to a {e backend solver}: a first-class value
    satisfying the {!SOLVER} contract (create / new_var / add_clause /
    three-valued solve under assumptions / model access / proof hook /
    stats snapshot / cooperative cancellation).  Three backends ship:

    - {b reference}: the in-tree CDCL solver ({!Sat.Solver}), wrapped
      one-to-one.  Proof-capable; the only backend whose [Unknown]s
      are purely budget-driven.
    - {b bdd}: an exact oracle for small cones.  Clauses are conjoined
      into a node-count-limited BDD ({!Bdd.man}); a false BDD is
      [Unsat], anything else is [Sat] with a model read off one true
      path.  Crossing the node allowance degrades to
      [Unknown "bdd-node-limit:..."] — the oracle never guesses.
    - {b ext}: a DIMACS round-trip to an external solver command
      ([DIAMBOUND_EXT_SOLVER]), CNF written via {!Sat.Dimacs},
      model / DRUP parsed back.  A missing binary, crash, or
      unparseable answer degrades to a structured
      ["backend-unavailable: ..."] [Unknown] — never an exception.

    Literals use the {!Sat.Solver} convention throughout (variable [v]
    gives positive literal [2 * v], negative [2 * v + 1]), so encoders
    are backend-agnostic.

    {b Determinism invariant}: a backend's conclusive answers are a
    function of the clause set and assumptions alone.  [Sat]/[Unsat]
    must agree across backends (each is a sound decision procedure);
    only {e whether} a backend concludes (vs [Unknown]) may differ.
    This is what lets the engine race (strategy × backend) cells and
    still select verdicts by rank, byte-identically for every job
    count. *)

type lit = Sat.Solver.lit

type result = Sat | Unsat | Unknown of string
(** Three-valued answer.  The [Unknown] payload is a structured
    stand-down reason: {!budget_reason} for an exhausted or cancelled
    allowance, ["bdd-node-limit:<n>"] for a BDD blow-up,
    ["backend-unavailable: <detail>"] when a backend cannot run at
    all. *)

val budget_reason : string
(** ["budget-exhausted"] — same distinguished string the engine uses
    for budget-driven attempts. *)

val node_limit_reason : int -> string

val is_node_limit : string -> bool

val unavailable : string -> string
(** [unavailable detail] is ["backend-unavailable: " ^ detail]. *)

val is_unavailable : string -> bool

(** Lifetime statistics snapshot.  Backends without a notion of a
    counter report 0 for it ({!zero_stats} fields); the reference
    backend maps every counter one-to-one from {!Sat.Solver}. *)
type stats = {
  vars : int;
  clauses : int;
  learnts : int;
  trail : int;  (** meaningful mid-solve, from a [should_stop] poll *)
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  reduce_dbs : int;
  simplifies : int;
  subsumed : int;
  strengthened : int;
  eliminated : int;
  probed_units : int;
}

val zero_stats : stats

type solver
(** One live solver instance of some backend. *)

(** The backend contract, as a first-class module: what a solver
    instance must provide to sit behind the unroller and the engine.
    {!of_module} packs an implementation; the shipped backends are
    constructed directly. *)
module type SOLVER = sig
  val name : string

  val new_var : unit -> int

  val add_clause : lit list -> unit

  val solve :
    ?assumptions:lit list ->
    ?max_conflicts:int ->
    ?max_propagations:int ->
    ?max_nodes:int ->
    ?should_stop:(unit -> bool) ->
    unit ->
    result
  (** Solve the current clause set under the assumptions.  Allowances
      the backend has no notion of are ignored; a backend honours
      [should_stop] cooperatively (and {!interrupt}) by returning
      [Unknown budget_reason].  Conclusive answers are never wrong:
      resource pressure degrades to [Unknown]. *)

  val value : lit -> bool
  (** Model value after a [Sat] answer.
      @raise Invalid_argument when the last solve was not [Sat]. *)

  val set_proof : Sat.Proof.t -> unit
  (** Proof hook: route the clausal derivation into a DRUP log.
      Attach before adding clauses.  Backends with [proof_capable =
      false] accept the call but record nothing — their [Unsat]
      answers then fail DRUP certification and are conservatively
      withheld by certifying callers. *)

  val proof_capable : bool

  val stats : unit -> stats
  (** Stats snapshot hook — the only way the observability layer reads
      solver counters, so every backend feeds the same [sat.*]
      telemetry. *)

  val set_simplify_wrapper : ((unit -> unit) -> unit) -> unit
  (** Wrap inprocessing passes (no-op for backends that have none). *)

  val interrupt : unit -> unit
  (** Budget-cancellation hook: request that the current / next
      [solve] stand down with [Unknown budget_reason] at its next
      check point. *)
end

val of_module : (module SOLVER) -> solver

(** {1 Literal helpers} (re-exported from {!Sat.Solver}) *)

val pos : int -> lit
val neg_of : int -> lit
val negate : lit -> lit
val var_of : lit -> int
val is_pos : lit -> bool

(** {1 Instance operations} — thin wrappers over the packed module,
    argument order mirroring {!Sat.Solver} so call sites read the
    same. *)

val name : solver -> string
val new_var : solver -> int
val add_clause : solver -> lit list -> unit

val solve :
  ?assumptions:lit list ->
  ?max_conflicts:int ->
  ?max_propagations:int ->
  ?max_nodes:int ->
  ?should_stop:(unit -> bool) ->
  solver ->
  result

val value : solver -> lit -> bool
val set_proof : solver -> Sat.Proof.t -> unit
val proof_capable : solver -> bool
val stats : solver -> stats
val set_simplify_wrapper : solver -> ((unit -> unit) -> unit) -> unit
val interrupt : solver -> unit

val num_conflicts : solver -> int
val num_propagations : solver -> int
val num_vars : solver -> int
val num_clauses : solver -> int

(** {1 Backend descriptors} *)

type t = {
  b_name : string;  (** short name: "reference", "bdd", "ext" *)
  b_id : string;
      (** identity string folded into cache digests — name plus any
          per-instance configuration that can change answers or
          reasons *)
  b_inprocess : bool option;
      (** the instance-level inprocessing choice this descriptor
          creates solvers with (reference backend only); exposed so
          engine transformations pinned to the CDCL solver can honour
          the same choice *)
  b_create : unit -> solver;
}

val reference : ?inprocess:bool -> unit -> t
(** The CDCL solver as a backend.  [inprocess] is per-backend-instance
    configuration: every solver this descriptor creates is fixed at
    creation ({!Sat.Solver.create}), so concurrent runs with different
    choices never race on a global toggle. *)

val bdd_oracle : ?max_nodes:int -> unit -> t
(** [max_nodes] caps every solve's BDD manager (default: the
    [DIAMBOUND_BDD_NODES] environment variable, else 200000).  A
    tighter per-call allowance ({!solve}'s [max_nodes], fed from the
    budget's BDD-node allowance) wins when smaller. *)

val external_solver : ?cmd:string -> unit -> t
(** [cmd] is a shell command invoked as [cmd CNF PROOF] (default: the
    [DIAMBOUND_EXT_SOLVER] environment variable, resolved per solve).
    Expected output: a SAT-competition status line
    (["s SATISFIABLE"] / ["s UNSATISFIABLE"], or bare
    [SAT]/[UNSAT]/[SATISFIABLE]/[UNSATISFIABLE]) with ["v "]-style
    model lines, DRUP text written to [PROOF].  [diam sat] speaks
    exactly this protocol. *)

val is_reference : t -> bool
val instantiate : t -> solver

val create : ?inprocess:bool -> unit -> solver
(** [instantiate (reference ?inprocess ())] — drop-in for call sites
    that used [Sat.Solver.create]. *)

(** {1 Backend selection} *)

type spec = Single of t | Race of t list
(** What a run solves with: one backend, or a deterministic race over
    several (the engine crosses every ladder strategy with every
    backend in the list; list order is the rank tiebreak). *)

val backends : spec -> t list
val spec_id : spec -> string

val of_name : string -> (t, string) Stdlib.result
(** ["reference"]/["cdcl"], ["bdd"]/["bdd-oracle"],
    ["ext"]/["external"]/["dimacs"]. *)

val race_pool : unit -> t list
(** The backends a ["race"] spec enlists: reference and the BDD
    oracle, plus the external backend when [DIAMBOUND_EXT_SOLVER] is
    set (an unset command would only add structured-unavailable
    noise). *)

val spec_of_string : string -> (spec, string) Stdlib.result
(** {!of_name} names as [Single]; ["race"] as [Race (race_pool ())]. *)

val set_default : spec -> unit
(** Process default, consulted by {!default}.  The CLI tools set it
    from [--backend] / [DIAMBOUND_BACKEND] before any solving. *)

val default : unit -> spec
(** The process default: the last {!set_default}, else
    [DIAMBOUND_BACKEND] (a bad value falls back to the reference
    backend), else [Single (reference ())]. *)

val default_solver : unit -> solver
(** A solver from the first backend of {!default} — what plain
    [Bmc.check] and friends use when no backend is passed
    explicitly. *)
