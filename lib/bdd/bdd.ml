type t = int

let bfalse = 0
let btrue = 1
let is_false f = f = 0
let is_true f = f = 1
let equal = Int.equal

exception Node_limit of int

type man = {
  mutable vars : int array; (* node -> variable (max_int at terminals) *)
  mutable lows : int array;
  mutable highs : int array;
  mutable count : int;
  max_nodes : int option;
  unique : (int * int * int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
  not_cache : (int, int) Hashtbl.t;
  mutable quant_cache : (int, int) Hashtbl.t;
  mutable compose_cache : (int, int) Hashtbl.t;
}

let man ?max_nodes () =
  let m =
    {
      vars = Array.make 1024 max_int;
      lows = Array.make 1024 0;
      highs = Array.make 1024 0;
      count = 2;
      max_nodes;
      unique = Hashtbl.create 4096;
      ite_cache = Hashtbl.create 4096;
      not_cache = Hashtbl.create 1024;
      quant_cache = Hashtbl.create 64;
      compose_cache = Hashtbl.create 64;
    }
  in
  (* terminals *)
  m.vars.(0) <- max_int;
  m.vars.(1) <- max_int;
  m

let node_count m = m.count
let var_of m f = m.vars.(f)
let low m f = m.lows.(f)
let high m f = m.highs.(f)

let mk m v lo hi =
  if lo = hi then lo
  else begin
    let key = (v, lo, hi) in
    match Hashtbl.find_opt m.unique key with
    | Some id -> id
    | None ->
      (* [mk] is the single allocation point, so a node allowance is
         enforced here and nowhere else *)
      (match m.max_nodes with
      | Some lim when m.count >= lim -> raise (Node_limit m.count)
      | _ -> ());
      if m.count = Array.length m.vars then begin
        let n = 2 * m.count in
        let grow a d =
          let b = Array.make n d in
          Array.blit a 0 b 0 m.count;
          b
        in
        m.vars <- grow m.vars max_int;
        m.lows <- grow m.lows 0;
        m.highs <- grow m.highs 0
      end;
      let id = m.count in
      m.count <- id + 1;
      m.vars.(id) <- v;
      m.lows.(id) <- lo;
      m.highs.(id) <- hi;
      Hashtbl.add m.unique key id;
      id
  end

let var m v =
  assert (v >= 0 && v < max_int);
  mk m v bfalse btrue

let nvar m v = mk m v btrue bfalse

let rec bnot m f =
  if f = bfalse then btrue
  else if f = btrue then bfalse
  else
    match Hashtbl.find_opt m.not_cache f with
    | Some g -> g
    | None ->
      let g = mk m (var_of m f) (bnot m (low m f)) (bnot m (high m f)) in
      Hashtbl.add m.not_cache f g;
      g

let cofactors m v f =
  if var_of m f = v then (low m f, high m f) else (f, f)

let rec ite m f g h =
  if f = btrue then g
  else if f = bfalse then h
  else if g = h then g
  else if g = btrue && h = bfalse then f
  else if g = bfalse && h = btrue then bnot m f
  else begin
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
      let v =
        min (var_of m f) (min (var_of m g) (var_of m h))
      in
      let f0, f1 = cofactors m v f in
      let g0, g1 = cofactors m v g in
      let h0, h1 = cofactors m v h in
      let r0 = ite m f0 g0 h0 in
      let r1 = ite m f1 g1 h1 in
      let r = mk m v r0 r1 in
      Hashtbl.add m.ite_cache key r;
      r
  end

let band m f g = ite m f g bfalse
let bor m f g = ite m f btrue g
let bxor m f g = ite m f (bnot m g) g
let bimp m f g = ite m f g btrue
let biff m f g = ite m f g (bnot m g)
let band_list m = List.fold_left (band m) btrue
let bor_list m = List.fold_left (bor m) bfalse

module Iset = Set.Make (Int)

let quantify ~univ m vars f =
  let vars = Iset.of_list vars in
  let max_var = match Iset.max_elt_opt vars with Some v -> v | None -> -1 in
  m.quant_cache <- Hashtbl.create 1024;
  let cache = m.quant_cache in
  let rec go f =
    if f < 2 || var_of m f > max_var then f
    else
      match Hashtbl.find_opt cache f with
      | Some r -> r
      | None ->
        let v = var_of m f in
        let r0 = go (low m f) in
        let r1 = go (high m f) in
        let r =
          if Iset.mem v vars then
            if univ then band m r0 r1 else bor m r0 r1
          else mk m v r0 r1
        in
        Hashtbl.add cache f r;
        r
  in
  go f

let exists m vars f = quantify ~univ:false m vars f
let forall m vars f = quantify ~univ:true m vars f

let compose m subst f =
  m.compose_cache <- Hashtbl.create 1024;
  let cache = m.compose_cache in
  let rec go f =
    if f < 2 then f
    else
      match Hashtbl.find_opt cache f with
      | Some r -> r
      | None ->
        let v = var_of m f in
        let r0 = go (low m f) in
        let r1 = go (high m f) in
        let fv = match subst v with Some g -> g | None -> var m v in
        let r = ite m fv r1 r0 in
        Hashtbl.add cache f r;
        r
  in
  go f

let view m f =
  if f = bfalse then `False
  else if f = btrue then `True
  else `Node (var_of m f, low m f, high m f)

let rec eval m env f =
  if f = bfalse then false
  else if f = btrue then true
  else if env (var_of m f) then eval m env (high m f)
  else eval m env (low m f)

let support m f =
  let seen = Hashtbl.create 64 in
  let vars = ref Iset.empty in
  let rec go f =
    if f >= 2 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      vars := Iset.add (var_of m f) !vars;
      go (low m f);
      go (high m f)
    end
  in
  go f;
  Iset.elements !vars

let size m f =
  let seen = Hashtbl.create 64 in
  let n = ref 0 in
  let rec go f =
    if f >= 2 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      incr n;
      go (low m f);
      go (high m f)
    end
  in
  go f;
  !n

let sat_count m ~nvars f =
  let cache = Hashtbl.create 64 in
  (* counts over the suffix of the order starting at the node's var *)
  let rec go f =
    if f = bfalse then 0.
    else if f = btrue then 1.
    else
      match Hashtbl.find_opt cache f with
      | Some c -> c
      | None ->
        let v = var_of m f in
        let weight g =
          let sub = go g in
          let next = if g < 2 then nvars else var_of m g in
          sub *. (2. ** float_of_int (next - v - 1))
        in
        let c = weight (low m f) +. weight (high m f) in
        Hashtbl.add cache f c;
        c
  in
  if f = bfalse then 0.
  else if f = btrue then 2. ** float_of_int nvars
  else go f *. (2. ** float_of_int (var_of m f))

let any_sat m f =
  if f = bfalse then invalid_arg "Bdd.any_sat: false BDD";
  let rec go acc f =
    if f = btrue then List.rev acc
    else if low m f <> bfalse then go ((var_of m f, false) :: acc) (low m f)
    else go ((var_of m f, true) :: acc) (high m f)
  in
  go [] f
