(** Reduced ordered binary decision diagrams with hash-consed nodes
    and memoized operations.

    Variables are non-negative integers; the variable order is the
    integer order (smaller index nearer the root).  Used as the
    symbolic substrate of target enlargement (preimage computation
    with input quantification, Section 3.4 of the paper). *)

type man
(** A manager owning the node table and operation caches. *)

type t
(** A BDD handle, valid for the manager that created it. *)

exception Node_limit of int
(** Raised (with the current node count) by any operation needing a
    fresh node once a manager's [max_nodes] allowance is reached.  The
    manager stays usable — existing handles remain valid — but callers
    are expected to stand down from the symbolic computation. *)

val man : ?max_nodes:int -> unit -> man
(** [max_nodes] bounds the total nodes the manager may ever allocate;
    crossing it raises {!Node_limit} at the allocation site. *)

val bfalse : t
val btrue : t
val is_false : t -> bool
val is_true : t -> bool
val equal : t -> t -> bool

val var : man -> int -> t
(** The function of a single positive variable. *)

val nvar : man -> int -> t
val bnot : man -> t -> t
val band : man -> t -> t -> t
val bor : man -> t -> t -> t
val bxor : man -> t -> t -> t
val bimp : man -> t -> t -> t
val biff : man -> t -> t -> t
val ite : man -> t -> t -> t -> t
val band_list : man -> t list -> t
val bor_list : man -> t list -> t

val exists : man -> int list -> t -> t
(** Existential quantification over a set of variables. *)

val forall : man -> int list -> t -> t

val compose : man -> (int -> t option) -> t -> t
(** Simultaneous substitution: replace each variable [v] for which the
    function returns [Some g] by [g].  Substituted functions must only
    mention variables no earlier in the order than necessary for
    termination; the implementation uses full Shannon expansion and so
    is correct for arbitrary substitutions. *)

val view : man -> t -> [ `False | `True | `Node of int * t * t ]
(** Structure of a node: [`Node (v, low, high)]. *)

val eval : man -> (int -> bool) -> t -> bool
val support : man -> t -> int list
(** Variables the function depends on, ascending. *)

val size : man -> t -> int
(** Number of distinct internal nodes reachable from a handle. *)

val sat_count : man -> nvars:int -> t -> float
(** Number of satisfying assignments over a space of [nvars]
    variables (all variables in the support must be [< nvars]). *)

val any_sat : man -> t -> (int * bool) list
(** A satisfying partial assignment of a non-false BDD, as
    (variable, value) pairs along one true path.
    @raise Invalid_argument on the false BDD. *)

val node_count : man -> int
(** Total nodes allocated in the manager (diagnostics). *)
