(** A fixed pool of OCaml 5 worker domains draining one bounded job
    queue.

    The pool is deliberately dumb: jobs are opaque thunks, there is no
    stealing, no priorities and no futures — determinism lives in the
    callers (the engine's rank-based verdict selection), not here.
    Cancellation is likewise not a pool concept: callers share a
    [bool Atomic.t] through {!Obs.Budget} tokens and jobs observe it
    at their own check points, so a "cancelled" job is simply one that
    returns early.

    Domains are expensive (a few ms to spawn, an OS thread each), so a
    pool is created once per batch of related work and reused; it is
    not a per-call convenience.  Worker counts beyond
    [Domain.recommended_domain_count] oversubscribe the machine and
    are clamped by {!create}. *)

type t

exception Poison
(** Raised {e out of} a directly-{!submit}ted job to kill the worker
    domain executing it — the fault-injection handle the supervision
    drill is built on.  The dying worker registers itself and the next
    {!submit}/{!try_submit}/{!heal} replaces it (counted as
    ["sched.worker_restarts"]).  Jobs run via {!map}/{!try_map} cannot
    poison: their wrapper captures every exception as the item's
    outcome. *)

val create : ?capacity:int -> jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs] worker domains ([jobs] is clamped
    to [1 .. Domain.recommended_domain_count]).  [capacity] bounds the
    job queue (default [2 * jobs]); {!submit} blocks when the queue is
    full, which keeps a fast producer from buffering an unbounded
    batch ahead of slow workers. *)

val size : t -> int
(** Number of worker domains. *)

val queued : t -> int
(** Jobs currently waiting in the queue (not the ones already running)
    — a point-in-time telemetry probe for the serve flight recorder;
    the value can be stale by the time the caller reads it. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a job; blocks while the queue is full.  A job that raises
    does not kill its worker: the exception is counted
    (["sched.job_error"]) and reported on stderr — jobs that care
    about their outcome capture it themselves (see {!map}) — except
    {!Poison}, which kills the worker (and is healed on the next
    submission).
    @raise Invalid_argument on a pool that has been {!shutdown}. *)

val try_submit : t -> (unit -> unit) -> bool
(** Non-blocking {!submit}: enqueue the job and return [true], or
    return [false] without blocking when the queue is full (counted as
    ["sched.jobs_rejected"]) or the pool is shut down.  This is the
    admission edge backpressure policies (load-shedding servers) are
    built on: the caller learns {e now} that the pool is saturated and
    can answer "overloaded" instead of stalling its intake. *)

val heal : t -> int
(** Join and respawn every worker that died of {!Poison}, returning
    how many were replaced (0 on the healthy path, at the cost of one
    mutex acquisition).  Also run implicitly by {!submit} and
    {!try_submit}, so a pool under traffic self-heals; call it
    directly to bound the window in which capacity is degraded.  After
    {!shutdown} this is a no-op. *)

val try_map : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** [try_map pool f items] runs [f] on every item across the pool and
    waits for all of them; results are in input order regardless of
    completion order, each item's exception captured as its [Error] —
    the per-item exception barrier corpus-style walks are built on.
    Safe to call from the main domain while workers run; must not be
    called from inside a pool job (the worker would wait on itself). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f items] runs [f] on every item across the pool and
    waits for all of them; results are in input order regardless of
    completion order.  If any [f] raised, the first (by input order)
    such exception is re-raised in the caller after all items have
    settled.  Safe to call from the main domain while workers run;
    must not be called from inside a pool job (the worker would wait
    on itself). *)

val shutdown : t -> unit
(** Refuse further submissions, run every job already queued, join all
    workers.  Idempotent.  After shutdown the workers' buffered trace
    events have reached the sink, so a subsequent [Obs.Trace.stop] on
    the calling domain loses nothing. *)

val with_pool : ?capacity:int -> jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool, guaranteeing
    {!shutdown} on the way out (also on exceptions). *)
