(** Parallel portfolio scheduling on OCaml 5 domains.

    {!Pool} is the only moving part: a fixed set of worker domains
    draining a bounded queue of opaque jobs.  Everything that makes
    parallel verification deterministic — rank-based verdict
    selection, cooperative cancellation through [Obs.Budget] tokens —
    lives in the callers (see [Core.Engine.verify_portfolio]). *)

module Pool = Pool

let default_jobs () =
  match Sys.getenv_opt "DIAMBOUND_JOBS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)
  | None -> 1
