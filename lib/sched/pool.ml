type job = unit -> unit

exception Poison

type t = {
  capacity : int;
  queue : job Queue.t;
  lock : Mutex.t;
  not_empty : Condition.t; (* workers wait here for jobs *)
  not_full : Condition.t; (* submitters wait here for queue space *)
  mutable closed : bool;
  mutable workers : unit Domain.t array;
  mutable dead : int list; (* worker slots whose domain has exited *)
}

let schema =
  [
    "sched.jobs_submitted";
    "sched.jobs_completed";
    "sched.jobs_rejected";
    "sched.job_error";
    "sched.worker_restarts";
  ]

let () = Obs.Stats.declare schema

let size t = Array.length t.workers

let queued t =
  Mutex.lock t.lock;
  let n = Queue.length t.queue in
  Mutex.unlock t.lock;
  n

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Blocks until a job is available or the pool closes with an empty
   queue (the drain-then-exit contract of [shutdown]). *)
let next t =
  locked t (fun () ->
      while Queue.is_empty t.queue && not t.closed do
        Condition.wait t.not_empty t.lock
      done;
      if Queue.is_empty t.queue then None
      else begin
        let j = Queue.pop t.queue in
        Condition.signal t.not_full;
        Some j
      end)

(* Returns [true] when the job poisoned its worker.  Every other
   exception is contained: a raising job must not take its worker down
   with it; jobs that care about their outcome capture it themselves
   (see [map]). *)
let run_job job =
  let poisoned =
    match job () with
    | () -> false
    | exception Poison -> true
    | exception e ->
      Obs.Stats.count "sched.job_error" 1;
      Format.eprintf "sched: job raised %s@." (Printexc.to_string e);
      false
  in
  Obs.Stats.count "sched.jobs_completed" 1;
  (* the worker may park indefinitely (or die) after this job; its
     trace events must not sit in a ring the main domain would close
     over *)
  Obs.Trace.flush ();
  poisoned

let rec worker t slot =
  match next t with
  | None -> ()
  | Some job ->
    if run_job job then
      (* this domain is about to exit with the pool still open:
         register the death so [heal] can put a fresh worker in the
         slot.  Supervision is cooperative — the poisoned worker
         announces itself rather than a monitor probing liveness — so
         detection costs nothing on the healthy path. *)
      locked t (fun () -> t.dead <- slot :: t.dead)
    else worker t slot

(* Join and replace every announced-dead worker.  Only ever touches
   slots whose domain has already left its loop, so the join is
   prompt; [t.workers] is never read by workers, hence the unlocked
   slot store is safe (callers of [heal] are the submitting side).
   After [shutdown] the dead stay dead. *)
let heal t =
  let dead =
    locked t (fun () ->
        if t.closed || t.dead = [] then []
        else begin
          let d = t.dead in
          t.dead <- [];
          d
        end)
  in
  List.iter
    (fun slot ->
      Domain.join t.workers.(slot);
      t.workers.(slot) <- Domain.spawn (fun () -> worker t slot);
      Obs.Stats.count "sched.worker_restarts" 1)
    dead;
  List.length dead

let create ?capacity ~jobs () =
  let jobs = max 1 (min jobs (Domain.recommended_domain_count ())) in
  let capacity =
    match capacity with Some c -> max 1 c | None -> 2 * jobs
  in
  let t =
    {
      capacity;
      queue = Queue.create ();
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      closed = false;
      workers = [||];
      dead = [];
    }
  in
  (* workers never read [t.workers], so publishing the array after the
     spawns is benign *)
  t.workers <- Array.init jobs (fun slot -> Domain.spawn (fun () -> worker t slot));
  t

let submit t job =
  ignore (heal t : int);
  locked t (fun () ->
      while Queue.length t.queue >= t.capacity && not t.closed do
        Condition.wait t.not_full t.lock
      done;
      if t.closed then invalid_arg "Sched.Pool.submit: pool is shut down";
      Queue.push job t.queue;
      Obs.Stats.count "sched.jobs_submitted" 1;
      Condition.signal t.not_empty)

let try_submit t job =
  ignore (heal t : int);
  locked t (fun () ->
      if t.closed then false
      else if Queue.length t.queue >= t.capacity then begin
        Obs.Stats.count "sched.jobs_rejected" 1;
        false
      end
      else begin
        Queue.push job t.queue;
        Obs.Stats.count "sched.jobs_submitted" 1;
        Condition.signal t.not_empty;
        true
      end)

let shutdown t =
  let was_closed =
    locked t (fun () ->
        let was = t.closed in
        t.closed <- true;
        (* wake every parked worker (to drain and exit) and every
           blocked submitter (to fail) *)
        Condition.broadcast t.not_empty;
        Condition.broadcast t.not_full;
        was)
  in
  (* exited (poisoned) workers join immediately; each slot holds either
     the original or its [heal] replacement, never both, so every
     domain is joined exactly once *)
  if not was_closed then Array.iter Domain.join t.workers

let try_map t f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let results = Array.make n None in
  let lock = Mutex.create () in
  let all_done = Condition.create () in
  let remaining = ref n in
  Array.iteri
    (fun i x ->
      submit t (fun () ->
          let r = match f x with v -> Ok v | exception e -> Error e in
          Mutex.lock lock;
          results.(i) <- Some r;
          decr remaining;
          if !remaining = 0 then Condition.signal all_done;
          Mutex.unlock lock))
    items;
  Mutex.lock lock;
  while !remaining > 0 do
    Condition.wait all_done lock
  done;
  Mutex.unlock lock;
  Array.to_list results
  |> List.map (function
       | Some r -> r
       | None -> assert false (* remaining = 0 implies every slot set *))

let map t f items =
  try_map t f items
  |> List.map (function Ok v -> v | Error e -> raise e)

let with_pool ?capacity ~jobs f =
  let t = create ?capacity ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
