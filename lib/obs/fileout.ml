let write_or_warn ~what path f =
  match
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
  with
  | () -> true
  | exception Sys_error msg ->
    Format.eprintf "warning: cannot write %s: %s@." what msg;
    false
