type t = {
  deadline : float option; (* absolute wall-clock seconds *)
  conflicts : int option; (* per SAT call *)
  propagations : int option; (* per SAT call *)
  bdd_nodes : int option;
  cancel : bool Atomic.t option; (* cooperative cross-domain stand-down *)
  mutable tripped : bool; (* deadline expiry already counted *)
}

let schema = [ "budget.deadline_expired"; "budget.cancelled" ]

let () = Stats.declare schema

let unlimited =
  {
    deadline = None;
    conflicts = None;
    propagations = None;
    bdd_nodes = None;
    cancel = None;
    tripped = false;
  }

let create ?timeout_s ?conflicts ?propagations ?bdd_nodes ?cancel () =
  {
    deadline = Option.map (fun s -> Stats.now () +. s) timeout_s;
    conflicts;
    propagations;
    bdd_nodes;
    cancel;
    tripped = false;
  }

let is_unlimited t =
  t.deadline = None && t.conflicts = None && t.propagations = None
  && t.bdd_nodes = None && t.cancel = None

let deadline t = t.deadline
let conflicts t = t.conflicts
let propagations t = t.propagations
let bdd_nodes t = t.bdd_nodes

let with_cancel t cancel = { t with cancel = Some cancel; tripped = false }

let cancelled t =
  match t.cancel with None -> false | Some c -> Atomic.get c

let expired t =
  if cancelled t then begin
    if not t.tripped then begin
      t.tripped <- true;
      Stats.count "budget.cancelled" 1
    end;
    true
  end
  else
    match t.deadline with
    | None -> false
    | Some d ->
      (* inclusive: a zero timeout is expired from the first check even
         within one clock tick *)
      let e = Stats.now () >= d in
      if e && not t.tripped then begin
        t.tripped <- true;
        Stats.count "budget.deadline_expired" 1
      end;
      e

let remaining_s t =
  Option.map (fun d -> Float.max 0. (d -. Stats.now ())) t.deadline

let should_stop t =
  match (t.deadline, t.cancel) with
  | None, None -> None
  | Some d, None -> Some (fun () -> Stats.now () >= d)
  | None, Some c -> Some (fun () -> Atomic.get c)
  | Some d, Some c -> Some (fun () -> Atomic.get c || Stats.now () >= d)

let slice t ~ways =
  match t.deadline with
  | None -> { t with tripped = false }
  | Some d ->
    let now = Stats.now () in
    let rem = d -. now in
    (* an expired budget keeps its past deadline: [now +. 0.] would be
       momentarily un-expired under the strict comparison in [expired] *)
    if rem <= 0. then { t with tripped = false }
    else
      let share = rem /. float_of_int (max 1 ways) in
      { t with deadline = Some (now +. share); tripped = false }

let note_exhausted layer = Stats.count ("budget.exhausted." ^ layer) 1

let pp ppf t =
  if is_unlimited t then Format.fprintf ppf "unlimited"
  else begin
    let sep = ref "" in
    let item fmt =
      Format.fprintf ppf "%s" !sep;
      sep := " ";
      Format.fprintf ppf fmt
    in
    (match remaining_s t with
    | Some s -> item "deadline:%.3fs" s
    | None -> ());
    (match t.conflicts with Some n -> item "conflicts:%d" n | None -> ());
    (match t.propagations with Some n -> item "propagations:%d" n | None -> ());
    (match t.bdd_nodes with Some n -> item "bdd-nodes:%d" n | None -> ());
    if t.cancel <> None then item "cancellable"
  end
