type t = {
  deadline : float option; (* absolute wall-clock seconds *)
  conflicts : int option; (* per SAT call *)
  propagations : int option; (* per SAT call *)
  bdd_nodes : int option;
  mutable tripped : bool; (* deadline expiry already counted *)
}

let schema = [ "budget.deadline_expired" ]

let () = Stats.declare schema

let unlimited =
  {
    deadline = None;
    conflicts = None;
    propagations = None;
    bdd_nodes = None;
    tripped = false;
  }

let create ?timeout_s ?conflicts ?propagations ?bdd_nodes () =
  {
    deadline = Option.map (fun s -> Stats.now () +. s) timeout_s;
    conflicts;
    propagations;
    bdd_nodes;
    tripped = false;
  }

let is_unlimited t =
  t.deadline = None && t.conflicts = None && t.propagations = None
  && t.bdd_nodes = None

let deadline t = t.deadline
let conflicts t = t.conflicts
let propagations t = t.propagations
let bdd_nodes t = t.bdd_nodes

let expired t =
  match t.deadline with
  | None -> false
  | Some d ->
    (* inclusive: a zero timeout is expired from the first check even
       within one clock tick *)
    let e = Stats.now () >= d in
    if e && not t.tripped then begin
      t.tripped <- true;
      Stats.count "budget.deadline_expired" 1
    end;
    e

let remaining_s t =
  Option.map (fun d -> Float.max 0. (d -. Stats.now ())) t.deadline

let should_stop t =
  match t.deadline with
  | None -> None
  | Some d -> Some (fun () -> Stats.now () >= d)

let slice t ~ways =
  match t.deadline with
  | None -> { t with tripped = false }
  | Some d ->
    let now = Stats.now () in
    let rem = d -. now in
    (* an expired budget keeps its past deadline: [now +. 0.] would be
       momentarily un-expired under the strict comparison in [expired] *)
    if rem <= 0. then { t with tripped = false }
    else
      let share = rem /. float_of_int (max 1 ways) in
      { t with deadline = Some (now +. share); tripped = false }

let note_exhausted layer = Stats.count ("budget.exhausted." ^ layer) 1

let pp ppf t =
  if is_unlimited t then Format.fprintf ppf "unlimited"
  else begin
    let sep = ref "" in
    let item fmt =
      Format.fprintf ppf "%s" !sep;
      sep := " ";
      Format.fprintf ppf fmt
    in
    (match remaining_s t with
    | Some s -> item "deadline:%.3fs" s
    | None -> ());
    (match t.conflicts with Some n -> item "conflicts:%d" n | None -> ());
    (match t.propagations with Some n -> item "propagations:%d" n | None -> ());
    (match t.bdd_nodes with Some n -> item "bdd-nodes:%d" n | None -> ())
  end
