type node = {
  event : Trace.event;
  children : node list;
  self_us : float;
}

(* Mutable scaffolding used while the forest is under construction;
   frozen into [node] at the end. *)
type building = {
  b_event : Trace.event;
  mutable b_children : building list;
  mutable b_self : float;
}

let span_end (e : Trace.event) = e.Trace.ts_us +. e.Trace.dur_us

(* Nesting tolerance: both exporters timestamp from one clock, but a
   child can share its parent's start/end microsecond *)
let eps = 1e-3

(* Which domain recorded an event (multi-domain traces tag worker
   events with a "domain" attribute; untagged means the main domain).
   Spans from different domains overlap in time without nesting, so
   the containment forest is built per domain. *)
let domain_of (e : Trace.event) =
  match List.assoc_opt "domain" e.Trace.args with
  | Some (Trace.Int d) -> d
  | _ -> 0

let forest_one spans =
  (* parents first: earlier start, or same start with longer duration *)
  let sorted =
    List.stable_sort
      (fun (a : Trace.event) (b : Trace.event) ->
        match compare a.Trace.ts_us b.Trace.ts_us with
        | 0 -> compare b.Trace.dur_us a.Trace.dur_us
        | c -> c)
      spans
  in
  let roots = ref [] in
  let stack = ref [] in
  let contains (outer : Trace.event) (inner : Trace.event) =
    inner.Trace.ts_us >= outer.Trace.ts_us -. eps
    && span_end inner <= span_end outer +. eps
  in
  List.iter
    (fun e ->
      let rec unwind () =
        match !stack with
        | top :: rest when not (contains top.b_event e) ->
          stack := rest;
          unwind ()
        | _ -> ()
      in
      unwind ();
      let n = { b_event = e; b_children = []; b_self = e.Trace.dur_us } in
      (match !stack with
      | top :: _ ->
        top.b_children <- n :: top.b_children;
        top.b_self <- top.b_self -. e.Trace.dur_us
      | [] -> roots := n :: !roots);
      stack := n :: !stack)
    sorted;
  (* [roots] and [b_children] accumulate newest-first; one reversal
     restores start order *)
  let rec freeze b =
    {
      event = b.b_event;
      children = List.rev_map freeze b.b_children;
      self_us = Float.max 0. b.b_self;
    }
  in
  List.rev_map freeze !roots

let forest events =
  let spans =
    List.filter (fun (e : Trace.event) -> e.Trace.kind = Trace.Span) events
  in
  let by_domain : (int, Trace.event list ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun e ->
      let d = domain_of e in
      match Hashtbl.find_opt by_domain d with
      | Some l -> l := e :: !l
      | None -> Hashtbl.replace by_domain d (ref [ e ]))
    spans;
  Hashtbl.fold (fun d l acc -> (d, List.rev !l) :: acc) by_domain []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.concat_map (fun (_, spans) -> forest_one spans)

(* ----- aggregation by correlation id -----

   Serve traces stamp every span of a request with a "corr" attribute
   (Trace.push under Log.with_corr); grouping by it turns one
   interleaved multi-request capture into a per-request cost view. *)

let corr_of (e : Trace.event) =
  match List.assoc_opt "corr" e.Trace.args with
  | Some (Trace.String c) -> Some c
  | _ -> None

type corr_row = {
  c_corr : string;
  c_spans : int;
  c_first_us : float;
  c_last_us : float;
  c_busy_us : float;  (* summed self time, so nesting never double-counts *)
}

let corr_table roots =
  let tbl : (string, corr_row ref) Hashtbl.t = Hashtbl.create 16 in
  let rec visit n =
    (match corr_of n.event with
    | None -> ()
    | Some c ->
      let r =
        match Hashtbl.find_opt tbl c with
        | Some r -> r
        | None ->
          let r =
            ref
              {
                c_corr = c;
                c_spans = 0;
                c_first_us = n.event.Trace.ts_us;
                c_last_us = span_end n.event;
                c_busy_us = 0.;
              }
          in
          Hashtbl.replace tbl c r;
          r
      in
      r :=
        {
          !r with
          c_spans = !r.c_spans + 1;
          c_first_us = Float.min !r.c_first_us n.event.Trace.ts_us;
          c_last_us = Float.max !r.c_last_us (span_end n.event);
          c_busy_us = !r.c_busy_us +. n.self_us;
        });
    List.iter visit n.children
  in
  List.iter visit roots;
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b -> compare a.c_corr b.c_corr)

(* ----- aggregation by name ----- *)

type agg = {
  mutable calls : int;
  mutable total : float;
  mutable self : float;
  mutable max : float;
}

let by_name roots =
  let table : (string, agg) Hashtbl.t = Hashtbl.create 64 in
  let get name =
    match Hashtbl.find_opt table name with
    | Some a -> a
    | None ->
      let a = { calls = 0; total = 0.; self = 0.; max = 0. } in
      Hashtbl.replace table name a;
      a
  in
  let rec visit n =
    let a = get n.event.Trace.name in
    a.calls <- a.calls + 1;
    a.total <- a.total +. n.event.Trace.dur_us;
    a.self <- a.self +. n.self_us;
    if n.event.Trace.dur_us > a.max then a.max <- n.event.Trace.dur_us;
    List.iter visit n.children
  in
  List.iter visit roots;
  Hashtbl.fold (fun name a acc -> (name, a) :: acc) table []
  |> List.sort (fun (_, a) (_, b) -> compare b.self a.self)

(* ----- per-depth BMC table ----- *)

type depth_row = {
  depth : int;
  calls : int;
  total_us : float;
  max_us : float;
  conflicts : int;
  propagations : int;
}

let int_arg name (e : Trace.event) =
  match List.assoc_opt name e.Trace.args with
  | Some (Trace.Int n) -> Some n
  | _ -> None

let depth_table events =
  let rows : (int, depth_row ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.kind = Trace.Span && String.equal e.Trace.name "bmc.depth" then
        match int_arg "depth" e with
        | None -> ()
        | Some depth ->
          let r =
            match Hashtbl.find_opt rows depth with
            | Some r -> r
            | None ->
              let r =
                ref
                  {
                    depth;
                    calls = 0;
                    total_us = 0.;
                    max_us = 0.;
                    conflicts = 0;
                    propagations = 0;
                  }
              in
              Hashtbl.replace rows depth r;
              r
          in
          r :=
            {
              !r with
              calls = !r.calls + 1;
              total_us = !r.total_us +. e.Trace.dur_us;
              max_us = Float.max !r.max_us e.Trace.dur_us;
              conflicts =
                !r.conflicts + Option.value ~default:0 (int_arg "conflicts" e);
              propagations =
                !r.propagations
                + Option.value ~default:0 (int_arg "propagations" e);
            })
    events;
  Hashtbl.fold (fun _ r acc -> !r :: acc) rows []
  |> List.sort (fun a b -> compare a.depth b.depth)

(* ----- rendering ----- *)

let ms us = us /. 1e3

let pp_critical_path ppf roots =
  match
    List.fold_left
      (fun best n ->
        match best with
        | Some b when b.event.Trace.dur_us >= n.event.Trace.dur_us -> best
        | _ -> Some n)
      None roots
  with
  | None -> ()
  | Some root ->
    Format.fprintf ppf "critical path (longest child at each level):@.";
    let rec walk indent n parent_dur =
      Format.fprintf ppf "  %s%-*s %10.3fms %4.0f%%@." indent
        (max 1 (32 - String.length indent))
        n.event.Trace.name
        (ms n.event.Trace.dur_us)
        (if parent_dur > 0. then 100. *. n.event.Trace.dur_us /. parent_dur
         else 100.);
      match
        List.fold_left
          (fun best c ->
            match best with
            | Some b when b.event.Trace.dur_us >= c.event.Trace.dur_us -> best
            | _ -> Some c)
          None n.children
      with
      | None -> ()
      | Some widest -> walk (indent ^ "  ") widest n.event.Trace.dur_us
    in
    walk "" root root.event.Trace.dur_us

let pp ?(top = 12) ppf events =
  if events = [] then
    (* a clear verdict beats a table of zeroes: the capture is empty,
       never started, or was truncated beyond salvage *)
    Format.fprintf ppf
      "trace: no events (empty or truncated capture — nothing was \
       recorded, or the file lost every complete line)@."
  else begin
    let spans =
      List.filter (fun (e : Trace.event) -> e.Trace.kind = Trace.Span) events
    in
    let instants = List.length events - List.length spans in
    let wall =
      List.fold_left (fun acc e -> Float.max acc (span_end e)) 0. spans
    in
    Format.fprintf ppf "trace: %d spans, %d instants, %.3fms wall@."
      (List.length spans) instants (ms wall);
    let roots = forest events in
    (match by_name roots with
    | [] -> ()
    | aggs ->
      Format.fprintf ppf "@.top spans by self time:@.";
      Format.fprintf ppf "  %-32s %8s %12s %12s %12s@." "name" "calls"
        "self(ms)" "total(ms)" "max(ms)";
      List.iteri
        (fun i ((name, a) : string * agg) ->
          if i < top then
            Format.fprintf ppf "  %-32s %8d %12.3f %12.3f %12.3f@." name a.calls
              (ms a.self) (ms a.total) (ms a.max))
        aggs;
      Format.fprintf ppf "@.";
      pp_critical_path ppf roots);
    (match corr_table roots with
    | [] -> ()
    | rows ->
      Format.fprintf ppf "@.per-request view (correlation ids):@.";
      Format.fprintf ppf "  %-20s %8s %12s %12s@." "corr" "spans" "busy(ms)"
        "wall(ms)";
      List.iter
        (fun r ->
          Format.fprintf ppf "  %-20s %8d %12.3f %12.3f@." r.c_corr r.c_spans
            (ms r.c_busy_us)
            (ms (r.c_last_us -. r.c_first_us)))
        rows);
    match depth_table events with
    | [] -> ()
    | rows ->
      Format.fprintf ppf "@.per-depth BMC cost:@.";
      Format.fprintf ppf "  %6s %6s %12s %12s %12s %14s@." "depth" "calls"
        "total(ms)" "max(ms)" "conflicts" "propagations";
      List.iter
        (fun r ->
          Format.fprintf ppf "  %6d %6d %12.3f %12.3f %12d %14d@." r.depth
            r.calls (ms r.total_us) (ms r.max_us) r.conflicts r.propagations)
        rows
  end
