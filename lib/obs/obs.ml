(** Observability substrate: a process-global registry of counters and
    wall-clock spans ({!Stats}), its human/JSON renderers ({!Report}),
    leveled structured logging with per-request correlation ids
    ({!Log}), structured tracing with Chrome/JSONL export ({!Trace})
    and its offline analyzer ({!Trace_report}), the live in-flight
    progress table ({!Heartbeat}) with its Prometheus/JSONL renderer
    ({!Metrics}), snapshot diffing for bench baselines ({!Baseline}),
    resource budgets ({!Budget}) and warn-and-continue file output
    ({!Fileout}).

    The hot layers (SAT solver callers, the unroller, the BMC loop,
    the transformation pipelines and the verification engine) record
    into the registry and emit trace spans; tools expose it via
    [--stats] / [--stats-json FILE] / [--trace FILE] /
    [--log-level] / [--log FILE], and [diam serve] additionally live
    via its [metrics] protocol op and stall watchdog. *)

module Stats = Stats
module Report = Report
module Budget = Budget
module Fileout = Fileout
module Log = Log
module Trace = Trace
module Trace_report = Trace_report
module Heartbeat = Heartbeat
module Metrics = Metrics
module Baseline = Baseline
