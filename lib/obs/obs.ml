(** Observability substrate: a process-global registry of counters and
    wall-clock spans ({!Stats}) and its human/JSON renderers
    ({!Report}).

    The hot layers (SAT solver callers, the unroller, the BMC loop,
    the transformation pipelines and the verification engine) record
    into this registry; tools expose it via [--stats] /
    [--stats-json FILE]. *)

module Stats = Stats
module Report = Report
module Budget = Budget
module Fileout = Fileout
