(** Observability substrate: a process-global registry of counters and
    wall-clock spans ({!Stats}), its human/JSON renderers ({!Report}),
    structured tracing with Chrome/JSONL export ({!Trace}) and its
    offline analyzer ({!Trace_report}), snapshot diffing for bench
    baselines ({!Baseline}), resource budgets ({!Budget}) and
    warn-and-continue file output ({!Fileout}).

    The hot layers (SAT solver callers, the unroller, the BMC loop,
    the transformation pipelines and the verification engine) record
    into the registry and emit trace spans; tools expose it via
    [--stats] / [--stats-json FILE] / [--trace FILE]. *)

module Stats = Stats
module Report = Report
module Budget = Budget
module Fileout = Fileout
module Trace = Trace
module Trace_report = Trace_report
module Baseline = Baseline
