(** Process-global observability registry: monotonic counters and
    wall-clock spans.

    Every instrumented layer records into one shared registry, keyed
    by dotted names ("sat.conflicts", "engine.bmc-probe", ...), so a
    tool can run an arbitrary mix of engines and render a single
    coherent report at the end ({!Report}).

    Counters and spans are registered on first use and survive
    {!reset} (which only zeroes them), so a declared schema stays
    stable across runs within a process.

    The registry is domain-safe: counters are atomic (concurrent
    bumps from scheduler worker domains are never lost), and spans
    accumulate into per-domain tables that {!snapshot} merges (calls
    and totals summed, maxima maxed), so one report covers the whole
    process no matter which domain did the work. *)

type counter
type span

val now : unit -> float
(** Monotonic seconds (CLOCK_MONOTONIC; falls back to wall clock when
    unavailable).  The epoch is arbitrary — only differences between
    two readings are meaningful. *)

(** {1 Counters} *)

val counter : string -> counter
(** Get-or-create the named counter (initially 0). *)

val incr : counter -> unit
val add : counter -> int -> unit

val set : counter -> int -> unit
(** Overwrite: for gauges such as "bound.com.t.raw". *)

val record_max : counter -> int -> unit
(** High-water mark: keep the maximum of the current and given value. *)

val counter_value : counter -> int

val count : string -> int -> unit
(** One-shot [add (counter name) n]. *)

val set_gauge : string -> int -> unit
(** One-shot [set (counter name) n]. *)

val max_gauge : string -> int -> unit
(** One-shot [record_max (counter name) n]. *)

val declare : string list -> unit
(** Register names eagerly so they appear (as zeroes) in every
    snapshot even when the corresponding code path never ran. *)

(** {1 Distributions} *)

val dist : string -> float -> unit
(** Record one sample into the named distribution (domain-safe).  A
    non-empty distribution appears in {!snapshot} as five plain
    counters — [<name>.count], [<name>.p50], [<name>.p90],
    [<name>.p99] and [<name>.max] (nearest-rank percentiles, rounded
    to integers) — so callers pick the unit by scaling before
    recording (the serve layer records microseconds).  Cleared by
    {!reset}. *)

(** {1 Spans} *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f], accumulating its wall-clock duration into
    the named span; the duration is recorded even when [f] raises. *)

val timed : string -> (unit -> 'a) -> 'a * float
(** Like {!time}, but also returns the measured duration in seconds
    (not recorded when [f] raises). *)

val add_span : string -> float -> unit
(** Record an externally measured duration (seconds); negative values
    are clamped to zero. *)

(** {1 Snapshots} *)

type span_stats = { calls : int; total_s : float; max_s : float }

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  spans : (string * span_stats) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every counter and span, keeping registrations. *)
