(** Structured tracing: hierarchical wall-clock spans with typed
    attributes, captured into a preallocated ring buffer and exported
    as Chrome trace-event JSON (loadable in Perfetto or
    about://tracing) or as a streaming JSONL file.

    Tracing complements {!Stats}: the registry aggregates (how much
    time went to SAT overall), a trace preserves the sequence (which
    BMC depth blew up, which strategy slice burned the budget, what
    nested under what).  When no trace is active every probe is a
    cheap no-op — one ref read and a branch — so instrumentation can
    stay on permanently in the hot layers.

    Capture is domain-safe: each domain records into its own ring and
    span stack, events from worker domains carry a ["domain"]
    attribute, and the exporters emit one tid track per domain (the
    sink itself is shared under a lock).  Worker domains should call
    {!flush} before parking so their buffered events reach the sink
    even if they never fill a ring. *)

(** {1 Events} *)

type value = Int of int | Float of float | String of string | Bool of bool

type arg = string * value
(** A typed attribute ("depth" = 7, "verdict" = "unsat", ...). *)

type kind = Span | Instant

type event = {
  name : string;
  kind : kind;
  ts_us : float;  (** start, microseconds since trace start *)
  dur_us : float;  (** duration in microseconds; 0 for instants *)
  args : arg list;
}

(** {1 Capture} *)

type format =
  | Chrome  (** one JSON array of trace-event objects, written in
                ring-buffered batches and closed on {!stop} *)
  | Jsonl  (** one JSON object per line, flushed per event, so a
               crashed run keeps everything captured so far *)

val format_of_path : string -> format
(** [Jsonl] for a [.jsonl] suffix, [Chrome] otherwise. *)

val start : ?format:format -> string -> unit
(** Open a trace sink at the given path (format defaults to
    {!format_of_path}) and start capturing.  Replaces any active
    trace.  An unwritable path prints a warning and leaves tracing
    off — telemetry must not turn a successful run into a failure.
    The sink is closed automatically at process exit. *)

val setup : ?file:string -> unit -> unit
(** CLI convenience: [start] on [file] when given, else on the
    [DIAMBOUND_TRACE] environment variable when set and non-empty,
    else do nothing. *)

val stop : unit -> unit
(** Flush open spans and every domain's ring buffer, close the sink.
    All recording domains must be quiescent (joined or parked) by the
    time this runs.  No-op when no trace is active. *)

val flush : unit -> unit
(** Drain the calling domain's ring into the sink.  Scheduler workers
    call this when a job finishes so a later {!stop} on the main
    domain never races a worker mid-record.  No-op when no trace is
    active. *)

val active : unit -> bool

(** {1 Recording} *)

val with_span : ?args:arg list -> string -> (unit -> 'a) -> 'a
(** Run the function under a named span.  The span is recorded even
    when the function raises (with an ["exception"] attribute). *)

val with_span_args : ?args:arg list -> string -> (unit -> 'a * arg list) -> 'a
(** Like {!with_span} for attributes only known at the end — the
    function returns the result plus trailing attributes (per-call
    solver deltas, verdicts, after-sizes), appended to [args]. *)

val instant : ?args:arg list -> string -> unit
(** A point event at the current time. *)

val emit : event -> unit
(** Record a fully-formed event verbatim, timestamps included.  The
    recording primitive under {!with_span}/{!instant}; exposed so
    tests can drive the exporters with chosen timestamps.

    When a {!Log.with_corr} correlation context is active, recorded
    events additionally carry a ["corr"] string attribute (unless one
    is already present), so a serve trace can be partitioned per
    request by {!Trace_report}. *)

(** {1 Reading back} *)

val to_json : ?tid:int -> event -> Report.json
(** The exact JSON object either exporter writes for this event
    ([tid] defaults to 0, the main track) — for writers outside this
    module (the serve flight recorder) that must produce files
    {!read_file} and [diam trace-report] accept. *)

val read_file : string -> event list
(** Parse a trace produced by either exporter (sniffed from the
    leading character) back into events, in file order.  Truncated
    captures from crashed or killed runs are salvaged rather than
    refused: a JSONL file may lose its cut-off final line, and a
    Chrome array missing its closing bracket is recovered
    line-by-line (both exporters write one event per line).
    @raise Failure on malformed input (a damaged line mid-file in an
    otherwise intact capture), [Sys_error] on unreadable files. *)
