type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

(* ----- printing ----- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if not (Float.is_finite f) then
    (* JSON has no nan/inf literal, and "%.17g" would emit one; null
       is the conventional stand-in and [parse] maps it back to nan *)
    "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    (* keep integral durations short; parses back to the same float *)
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string j =
  let b = Buffer.create 1024 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s -> escape_string b s
    | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          go item)
        items;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b key;
          Buffer.add_char b ':';
          go value)
        fields;
      Buffer.add_char b '}'
  in
  go j;
  Buffer.contents b

(* ----- parsing (recursive descent) ----- *)

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "Report.parse: %s at offset %d" msg !pos) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = Stdlib.incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected '%c', found '%c'" c c')
    | None -> fail (Printf.sprintf "expected '%c', found end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> fail "unterminated escape"
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub text !pos 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          (* UTF-8 encode the BMP code point *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
          end;
          go ()
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ())
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
        advance ();
        go ()
      | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance ();
        go ()
      | Some _ | None -> ()
    in
    go ();
    let s = String.sub text start (!pos - start) in
    if !is_float then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" s)
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "bad number %S" s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (key, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ----- snapshot conversion ----- *)

let json_of_snapshot ?(meta = []) (s : Stats.snapshot) =
  Obj
    ((match meta with [] -> [] | m -> [ ("meta", Obj m) ])
    @ [
      ("counters", Obj (List.map (fun (name, n) -> (name, Int n)) s.Stats.counters));
      ( "spans",
        Obj
          (List.map
             (fun (name, sp) ->
               ( name,
                 Obj
                   [
                     ("calls", Int sp.Stats.calls);
                     ("total_s", Float sp.Stats.total_s);
                     ("max_s", Float sp.Stats.max_s);
                   ] ))
             s.Stats.spans) );
    ])

let shape_fail what = failwith ("Report.snapshot_of_json: expected " ^ what)

let as_obj = function Obj fields -> fields | _ -> shape_fail "an object"
let as_int = function Int n -> n | _ -> shape_fail "an integer"

let as_float = function
  | Float f -> f
  | Int n -> float_of_int n
  | Null -> Float.nan (* non-finite values are emitted as null *)
  | _ -> shape_fail "a number"

let field fields name =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> shape_fail (Printf.sprintf "field %S" name)

let snapshot_of_json j =
  let top = as_obj j in
  let counters =
    List.map (fun (name, v) -> (name, as_int v)) (as_obj (field top "counters"))
  in
  let spans =
    List.map
      (fun (name, v) ->
        let f = as_obj v in
        ( name,
          {
            Stats.calls = as_int (field f "calls");
            total_s = as_float (field f "total_s");
            max_s = as_float (field f "max_s");
          } ))
      (as_obj (field top "spans"))
  in
  { Stats.counters; spans }

(* ----- human rendering ----- *)

let pp_human ppf (s : Stats.snapshot) =
  let width =
    List.fold_left
      (fun acc (name, _) -> max acc (String.length name))
      24
      (List.map (fun (n, c) -> (n, `C c)) s.Stats.counters
      @ List.map (fun (n, sp) -> (n, `S sp)) s.Stats.spans)
  in
  if s.Stats.counters <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun (name, n) -> Format.fprintf ppf "  %-*s %12d@." width name n)
      s.Stats.counters
  end;
  if s.Stats.spans <> [] then begin
    Format.fprintf ppf "spans:@.";
    Format.fprintf ppf "  %-*s %8s %12s %12s@." width "" "calls" "total(ms)"
      "max(ms)";
    List.iter
      (fun (name, sp) ->
        Format.fprintf ppf "  %-*s %8d %12.3f %12.3f@." width name
          sp.Stats.calls
          (1e3 *. sp.Stats.total_s)
          (1e3 *. sp.Stats.max_s))
      s.Stats.spans
  end

let write_file ?meta path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string (json_of_snapshot ?meta s));
      output_char oc '\n')

let emit ?(ppf = Format.std_formatter) ?(human = false) ?json_file ?meta () =
  let s = Stats.snapshot () in
  if human then Format.fprintf ppf "%a" pp_human s;
  match json_file with
  | Some path -> (
    (* stats output must not turn a successful run into a crash *)
    match write_file ?meta path s with
    | () -> Format.fprintf ppf "stats: JSON snapshot written to %s@." path
    | exception Sys_error msg ->
      Format.eprintf "stats: cannot write JSON snapshot: %s@." msg)
  | None -> ()
