(** Offline analysis of a captured {!Trace}: reconstructs span
    nesting from timestamp containment and renders the three views
    that answer "where did the run go" —

    - the top-K span names by {e self} time (own duration minus the
      duration of directly nested spans),
    - the critical path (the longest root span, descending into the
      longest child at each level),
    - the per-request view, grouping spans by their ["corr"]
      correlation-id attribute when present (serve traces and flight
      recorder dumps stamp every span of a request), and
    - the per-depth BMC cost table, aggregated from ["bmc.depth"]
      spans and their [depth]/[conflicts]/[propagations] attributes.

    Pure presentation over {!Trace.event} lists; no global state. *)

type node = {
  event : Trace.event;
  children : node list;  (** in start order *)
  self_us : float;  (** duration minus direct children, clamped at 0 *)
}

val forest : Trace.event list -> node list
(** Span nesting reconstructed from timestamp containment (events on
    one track, as both exporters produce). *)

type corr_row = {
  c_corr : string;
  c_spans : int;
  c_first_us : float;
  c_last_us : float;
  c_busy_us : float;  (** summed self time — nesting never double-counts *)
}

val corr_table : node list -> corr_row list
(** Per-correlation-id aggregation over a forest, sorted by id; empty
    when no span carries a ["corr"] attribute. *)

type depth_row = {
  depth : int;
  calls : int;
  total_us : float;
  max_us : float;
  conflicts : int;
  propagations : int;
}

val depth_table : Trace.event list -> depth_row list
(** Per-depth BMC cost, sorted by depth; empty when the trace has no
    ["bmc.depth"] spans. *)

val pp : ?top:int -> Format.formatter -> Trace.event list -> unit
(** The full report: summary line, top-[top] (default 12) names by
    self time, critical path, per-request view (when correlation ids
    are present), per-depth table.  An empty event list renders a
    single clear "no events" line instead of empty tables. *)
