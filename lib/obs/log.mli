(** Leveled, structured JSONL logging to stderr or a file — never
    stdout, which belongs to the tools' own output (and, in
    [diam serve], to the response protocol).

    Each line is one JSON object:
    {v
    {"ts":<unix seconds>,"level":"warn","event":"serve.shed",
     "corr":"req-7",...event fields...}
    v}
    ["corr"] is added automatically when a correlation context is
    active (see {!with_corr}).  Emission is domain-safe (one lock
    around the sink) and flushed per line, so a crashed service keeps
    everything logged so far.  Every emitted line bumps a [log.<level>]
    counter in {!Stats}; the four names are declared eagerly.

    The default level is [Warn]: errors and warnings are visible
    without any configuration, [info]/[debug] are opt-in. *)

type level = Error | Warn | Info | Debug

val levels : (string * level) list
(** Name/level pairs for CLI enum flags, lowest severity last. *)

val level_name : level -> string
val level_of_string : string -> level option

val set_level : level -> unit
val level : unit -> level

val enabled : level -> bool
(** Whether a line at this level would currently be emitted — for
    guarding expensive field construction. *)

val set_file : string -> unit
(** Route subsequent lines to the given file (truncated) instead of
    stderr.  An unopenable path prints a warning and leaves the sink
    unchanged — telemetry must not turn a successful run into a
    failure.  The file is closed at process exit. *)

val to_stderr : unit -> unit
(** Close any file sink and return to stderr. *)

val setup : ?level:level -> ?file:string -> unit -> unit
(** CLI convenience: apply [--log-level]/[--log FILE].  When [level]
    is absent, falls back to the [DIAMBOUND_LOG] environment variable
    (unknown values print a warning and keep the default). *)

val reset : unit -> unit
(** Back to defaults (level [Warn], stderr sink) — for tests. *)

(** {1 Emission} *)

val log : level -> string -> (string * Report.json) list -> unit
(** [log lvl event fields] emits one line when [lvl] is enabled.
    [event] is a stable dotted name ("serve.shed", "watchdog.stall");
    [fields] are appended after the standard keys. *)

val error : string -> (string * Report.json) list -> unit
val warn : string -> (string * Report.json) list -> unit
val info : string -> (string * Report.json) list -> unit
val debug : string -> (string * Report.json) list -> unit

val force : level -> string -> (string * Report.json) list -> unit
(** Emit regardless of the current threshold — for lines the user
    explicitly requested by flag (the serve [--metrics-interval]
    stream), where the flag itself is the opt-in. *)

(** {1 Correlation context} *)

val with_corr : string -> (unit -> 'a) -> 'a
(** Run the function with the given correlation id as this domain's
    context: every log line emitted under it carries a ["corr"] field,
    every trace span a ["corr"] attribute, and solver heartbeats are
    attributed to it ({!Heartbeat}).  Nests (the previous context is
    restored on exit) and is per-domain, matching the serve layer
    where one worker domain runs one request at a time. *)

val current_corr : unit -> string option
