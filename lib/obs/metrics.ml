(* Prometheus text exposition of the whole observability surface: the
   Stats snapshot (counters, gauges and the dist-derived percentile
   counters) plus per-request heartbeat gauges.  Everything is
   exported as gauge type: the registry does not distinguish
   monotonic counters from set/max gauges by name, and Prometheus
   accepts gauge semantics for both. *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

(* label values: escape per the exposition format *)
let escape_label s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let metric buf name value =
  Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
  Buffer.add_string buf (Printf.sprintf "%s %s\n" name value)

let labeled buf name pairs value =
  let labels =
    pairs
    |> List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
    |> String.concat ","
  in
  Buffer.add_string buf (Printf.sprintf "%s{%s} %s\n" name labels value)

let float_str f = Printf.sprintf "%.6f" f

let prometheus () =
  let buf = Buffer.create 8192 in
  let snap = Stats.snapshot () in
  List.iter
    (fun (name, v) ->
      metric buf ("diambound_" ^ sanitize name) (string_of_int v))
    snap.Stats.counters;
  List.iter
    (fun (name, (s : Stats.span_stats)) ->
      let base = "diambound_span_" ^ sanitize name in
      metric buf (base ^ "_calls") (string_of_int s.Stats.calls);
      metric buf (base ^ "_seconds_total") (float_str s.Stats.total_s);
      metric buf (base ^ "_seconds_max") (float_str s.Stats.max_s))
    snap.Stats.spans;
  (* per-request heartbeat gauges, one labeled series per in-flight
     correlation id; the TYPE header is emitted even when idle so the
     exposition shape is stable *)
  let views = Heartbeat.snapshot () in
  let series name value_of =
    let m = "diambound_heartbeat_" ^ name in
    Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" m);
    List.iter
      (fun (v : Heartbeat.view) ->
        labeled buf m
          [ ("corr", v.Heartbeat.v_corr); ("phase", v.Heartbeat.v_phase) ]
          (value_of v))
      views
  in
  series "conflicts" (fun v -> string_of_int v.Heartbeat.v_last.Heartbeat.conflicts);
  series "propagations" (fun v ->
      string_of_int v.Heartbeat.v_last.Heartbeat.propagations);
  series "trail_depth" (fun v -> string_of_int v.Heartbeat.v_last.Heartbeat.trail);
  series "learnts" (fun v -> string_of_int v.Heartbeat.v_last.Heartbeat.learnts);
  series "beats" (fun v -> string_of_int v.Heartbeat.v_beats);
  series "age_seconds" (fun v -> float_str v.Heartbeat.v_age_s);
  series "idle_seconds" (fun v -> float_str v.Heartbeat.v_idle_s);
  series "conflicts_per_second" (fun v -> float_str v.Heartbeat.v_conflicts_per_s);
  Buffer.contents buf

(* ----- periodic JSONL emission ----- *)

let json_of_view (v : Heartbeat.view) =
  Report.Obj
    [
      ("corr", Report.String v.Heartbeat.v_corr);
      ("phase", Report.String v.Heartbeat.v_phase);
      ("age_s", Report.Float v.Heartbeat.v_age_s);
      ("idle_s", Report.Float v.Heartbeat.v_idle_s);
      ("beats", Report.Int v.Heartbeat.v_beats);
      ("conflicts", Report.Int v.Heartbeat.v_last.Heartbeat.conflicts);
      ("propagations", Report.Int v.Heartbeat.v_last.Heartbeat.propagations);
      ("trail", Report.Int v.Heartbeat.v_last.Heartbeat.trail);
      ("learnts", Report.Int v.Heartbeat.v_last.Heartbeat.learnts);
      ("conflicts_per_s", Report.Float v.Heartbeat.v_conflicts_per_s);
    ]

let fields () =
  let snap = Stats.snapshot () in
  (* only non-zero counters: a periodic line must stay compact *)
  let counters =
    List.filter_map
      (fun (k, v) -> if v = 0 then None else Some (k, Report.Int v))
      snap.Stats.counters
  in
  [
    ("counters", Report.Obj counters);
    ("inflight", Report.List (List.map json_of_view (Heartbeat.snapshot ())));
  ]
