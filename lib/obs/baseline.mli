(** Bench baseline tracking: diff two stats snapshots (the stored
    [BENCH_*.json] trajectory entry and the current run), render a
    per-counter/per-span delta table, and decide whether the current
    run regressed past a threshold — so the bench history is an
    enforced perf trajectory, not just an archive.

    Snapshots are the {!Report} JSON schema, optionally carrying the
    self-describing ["meta"] object ({!Report.emit}'s [?meta]).  Two
    entries are only comparable when their meta agree on schema,
    tool, and experiment list; {!compat} refuses mismatches so a
    trajectory never silently compares apples to oranges. *)

type entry = {
  meta : (string * Report.json) list;  (** empty for legacy snapshots *)
  snap : Stats.snapshot;
}

val of_json : Report.json -> entry
(** @raise Failure when the snapshot shape is wrong. *)

val load : string -> entry
(** Parse a snapshot file.
    @raise Failure on malformed JSON, [Sys_error] on unreadable files. *)

val compat : base:entry -> cur:entry -> (unit, string) result
(** [Ok] when the two entries may be compared: their meta agree on
    ["schema"], ["tool"] and ["experiments"].  An entry without meta
    (legacy snapshot) is accepted against anything. *)

type counter_row = { name : string; base_n : int option; cur_n : int option }

type span_row = {
  name : string;
  base_s : Stats.span_stats option;
  cur_s : Stats.span_stats option;
}

type diff = { counters : counter_row list; spans : span_row list }

val diff : base:entry -> cur:entry -> diff
(** Outer join by name, sorted; a [None] side means the name only
    exists in the other snapshot. *)

val pct : base:float -> cur:float -> float option
(** Relative change in percent; [None] when [base] is not positive. *)

val regressions :
  ?min_total_s:float -> threshold_pct:float -> diff -> (string * float) list
(** Span names whose total time grew by strictly more than
    [threshold_pct] percent, with the growth; spans whose current
    total is below [min_total_s] (default 1ms) are noise and never
    count. *)

val pp : Format.formatter -> diff -> unit
(** The delta table: counters (base, current, delta) then spans
    (total ms base, current, delta %). *)
