(* Leveled structured logging: one JSON object per line, to stderr or
   a file, never stdout.  The serve protocol owns stdout, so every
   emitter here writes to the shared sink under a lock (lines from
   worker domains never interleave mid-record) and flushes per line
   (a crashed service keeps everything logged so far).

   The correlation context is domain-local: a serve request runs
   entirely on the worker domain that claimed it, so [with_corr]
   around the request body makes every log line — and, via
   {!Trace.push}, every trace span — of that request joinable by one
   id without threading a parameter through engine/bmc/sat. *)

type level = Error | Warn | Info | Debug

let level_name = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let levels =
  [ ("error", Error); ("warn", Warn); ("info", Info); ("debug", Debug) ]

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

(* eager, so "log.*" appears as zeroes in every snapshot and stays
   baseline-comparable from the first run *)
let schema = [ "log.error"; "log.warn"; "log.info"; "log.debug" ]
let () = Stats.declare schema

let current = Atomic.make (severity Warn)
let set_level l = Atomic.set current (severity l)

let level () =
  match Atomic.get current with
  | 0 -> Error
  | 1 -> Warn
  | 2 -> Info
  | _ -> Debug

let enabled l = severity l <= Atomic.get current

(* ----- sink ----- *)

let lock = Mutex.create ()
let sink : out_channel option ref = ref None (* None = stderr *)

let close_sink_locked () =
  match !sink with
  | None -> ()
  | Some oc ->
    close_out_noerr oc;
    sink := None

let to_stderr () =
  Mutex.lock lock;
  close_sink_locked ();
  Mutex.unlock lock

let exit_hook = ref false

let set_file path =
  match open_out path with
  | exception Sys_error msg -> Format.eprintf "log: cannot open sink: %s@." msg
  | oc ->
    Mutex.lock lock;
    close_sink_locked ();
    sink := Some oc;
    Mutex.unlock lock;
    if not !exit_hook then begin
      exit_hook := true;
      at_exit to_stderr
    end

(* ----- correlation context ----- *)

let corr_key : string option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_corr () = !(Domain.DLS.get corr_key)

let with_corr corr f =
  let cell = Domain.DLS.get corr_key in
  let saved = !cell in
  cell := Some corr;
  Fun.protect ~finally:(fun () -> cell := saved) f

(* ----- emission ----- *)

let force lvl event fields =
  begin
    Stats.count ("log." ^ level_name lvl) 1;
    let corr =
      match current_corr () with
      | Some c -> [ ("corr", Report.String c) ]
      | None -> []
    in
    let line =
      Report.to_string
        (Report.Obj
           ([
              ("ts", Report.Float (Unix.gettimeofday ()));
              ("level", Report.String (level_name lvl));
              ("event", Report.String event);
            ]
           @ corr @ fields))
    in
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        (* a sink that went away must not turn telemetry into a crash *)
        try
          match !sink with
          | Some oc ->
            output_string oc line;
            output_char oc '\n';
            flush oc
          | None ->
            output_string stderr line;
            output_char stderr '\n';
            flush stderr
        with Sys_error _ -> ())
  end

let log lvl event fields = if enabled lvl then force lvl event fields
let error event fields = log Error event fields
let warn event fields = log Warn event fields
let info event fields = log Info event fields
let debug event fields = log Debug event fields

let setup ?level ?file () =
  (match level with
  | Some l -> set_level l
  | None -> (
    (* tools wire DIAMBOUND_LOG through their flag parser; this
       fallback covers embedders that call [setup] directly *)
    match Sys.getenv_opt "DIAMBOUND_LOG" with
    | Some s when String.trim s <> "" -> (
      match level_of_string s with
      | Some l -> set_level l
      | None ->
        Format.eprintf
          "log: unknown DIAMBOUND_LOG level %S (want error|warn|info|debug)@." s)
    | _ -> ()));
  Option.iter set_file file

let reset () =
  to_stderr ();
  set_level Warn
