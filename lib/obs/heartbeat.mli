(** Per-request in-flight progress table — the live complement to the
    post-mortem {!Stats} registry.

    The serve layer {!register}s each admitted request under its
    correlation id; {!Sat_obs} (via the write side here) publishes a
    {!type:beat} at every restart-boundary [Budget.should_stop] poll;
    the serve watchdog polls {!stalled} for entries whose heartbeat
    has not advanced within the stall window, and {!Metrics} renders
    {!snapshot} as per-request gauges.

    The write side ({!set_phase}, {!beat}) is addressed implicitly by
    the current {!Log.with_corr} context, so instrumented layers need
    no request parameter; both are no-ops when no context is active
    or the id was never registered (batch tools without telemetry pay
    one domain-local read).  All operations are domain-safe. *)

type beat = {
  at : float;  (** {!Stats.now} at publication *)
  conflicts : int;
  propagations : int;
  trail : int;  (** assigned literals at the poll *)
  learnts : int;
}

val register : ?phase:string -> string -> unit
(** Add the correlation id to the in-flight table (phase defaults to
    ["queued"]); re-registration replaces.  Bumps
    [serve.heartbeat.registered] and the [serve.heartbeat.inflight]
    gauge. *)

val finish : string -> unit
(** Remove the id (request completed, failed, or was shed). *)

val active : unit -> bool
(** Whether the calling domain's correlation context names a
    registered in-flight request — i.e. whether a {!beat} would
    land. *)

val set_phase : string -> unit
(** Record which stage the current request is in ("engine.bmc-probe",
    "bmc@7", ...).  Counts as progress for stall detection. *)

val beat :
  conflicts:int -> propagations:int -> trail:int -> learnts:int -> unit
(** Publish a progress snapshot for the current request.  Bumps
    [serve.heartbeat.beats] and clears any stall flag. *)

(** {1 Read side} *)

type view = {
  v_corr : string;
  v_phase : string;
  v_started : float;
  v_age_s : float;  (** seconds since registration *)
  v_idle_s : float;  (** seconds since the last beat or phase change *)
  v_beats : int;
  v_last : beat;
  v_conflicts_per_s : float;  (** averaged from registration to last beat *)
  v_history : beat list;  (** most recent beats, oldest first *)
}

val snapshot : unit -> view list
(** All in-flight requests, sorted by correlation id. *)

val stalled : window_s:float -> view list
(** In-flight requests idle for at least the window that have not
    been reported yet.  Marks them reported, so each stall episode is
    returned once; a subsequent beat or phase change re-arms the
    entry. *)

val clear : unit -> unit
(** Empty the table — for tests. *)
