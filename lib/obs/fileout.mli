(** Warn-and-continue file output for auxiliary CLI artifacts.

    Waveform dumps, generated netlists and stats snapshots are
    by-products: an unwritable path must not turn an otherwise
    successful run into a crash (the same contract {!Report.emit}
    already honours for [--stats-json]). *)

val write_or_warn : what:string -> string -> (out_channel -> unit) -> bool
(** [write_or_warn ~what path f] opens [path], runs [f] on the
    channel, and closes it.  On [Sys_error] (unwritable directory,
    permission denied, ...) a one-line warning naming [what] goes to
    stderr and the result is [false]; no exception escapes. *)
