type entry = {
  meta : (string * Report.json) list;
  snap : Stats.snapshot;
}

let of_json j =
  let meta =
    match j with
    | Report.Obj fields -> (
      match List.assoc_opt "meta" fields with
      | Some (Report.Obj m) -> m
      | Some _ -> failwith "Baseline.of_json: meta is not an object"
      | None -> [])
    | _ -> failwith "Baseline.of_json: expected an object"
  in
  { meta; snap = Report.snapshot_of_json j }

let load path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_json (Report.parse text)

let compat ~base ~cur =
  if base.meta = [] || cur.meta = [] then Ok ()
  else
    let check what =
      let b = List.assoc_opt what base.meta in
      let c = List.assoc_opt what cur.meta in
      if b = c then Ok ()
      else
        let show = function
          | Some j -> Report.to_string j
          | None -> "(absent)"
        in
        Error
          (Printf.sprintf "baseline %s is %s but current is %s" what (show b)
             (show c))
    in
    match check "schema" with
    | Error _ as e -> e
    | Ok () -> (
      match check "tool" with
      | Error _ as e -> e
      | Ok () -> check "experiments")

type counter_row = { name : string; base_n : int option; cur_n : int option }

type span_row = {
  name : string;
  base_s : Stats.span_stats option;
  cur_s : Stats.span_stats option;
}

type diff = { counters : counter_row list; spans : span_row list }

(* outer join of two name-sorted assoc lists *)
let join mk xs ys =
  let rec go xs ys acc =
    match (xs, ys) with
    | [], [] -> List.rev acc
    | (n, x) :: xs', [] -> go xs' [] (mk n (Some x) None :: acc)
    | [], (n, y) :: ys' -> go [] ys' (mk n None (Some y) :: acc)
    | (nx, x) :: xs', (ny, y) :: ys' ->
      let c = String.compare nx ny in
      if c = 0 then go xs' ys' (mk nx (Some x) (Some y) :: acc)
      else if c < 0 then go xs' ys (mk nx (Some x) None :: acc)
      else go xs ys' (mk ny None (Some y) :: acc)
  in
  go xs ys []

let diff ~base ~cur =
  {
    counters =
      join
        (fun name base_n cur_n -> { name; base_n; cur_n })
        base.snap.Stats.counters cur.snap.Stats.counters;
    spans =
      join
        (fun name base_s cur_s -> { name; base_s; cur_s })
        base.snap.Stats.spans cur.snap.Stats.spans;
  }

let pct ~base ~cur =
  if base > 0. then Some (100. *. (cur -. base) /. base) else None

let regressions ?(min_total_s = 1e-3) ~threshold_pct d =
  List.filter_map
    (fun r ->
      match (r.base_s, r.cur_s) with
      | Some b, Some c when c.Stats.total_s >= min_total_s -> (
        match pct ~base:b.Stats.total_s ~cur:c.Stats.total_s with
        | Some growth when growth > threshold_pct -> Some (r.name, growth)
        | _ -> None)
      | _ -> None)
    d.spans

let pp ppf d =
  let width =
    List.fold_left
      (fun acc n -> max acc (String.length n))
      24
      (List.map (fun (r : counter_row) -> r.name) d.counters
      @ List.map (fun (r : span_row) -> r.name) d.spans)
  in
  if d.counters <> [] then begin
    Format.fprintf ppf "counters:%*s %12s %12s %12s@." (width - 8) "" "base"
      "current" "delta";
    List.iter
      (fun r ->
        let s = function Some n -> string_of_int n | None -> "-" in
        let delta =
          match (r.base_n, r.cur_n) with
          | Some b, Some c -> Printf.sprintf "%+d" (c - b)
          | _ -> "-"
        in
        Format.fprintf ppf "  %-*s %12s %12s %12s@." width r.name (s r.base_n)
          (s r.cur_n) delta)
      d.counters
  end;
  if d.spans <> [] then begin
    Format.fprintf ppf "spans:%*s %12s %12s %12s@." (width - 5) "" "base(ms)"
      "current(ms)" "delta";
    List.iter
      (fun (r : span_row) ->
        let s = function
          | Some (sp : Stats.span_stats) ->
            Printf.sprintf "%.3f" (1e3 *. sp.Stats.total_s)
          | None -> "-"
        in
        let delta =
          match (r.base_s, r.cur_s) with
          | Some b, Some c -> (
            match pct ~base:b.Stats.total_s ~cur:c.Stats.total_s with
            | Some p -> Printf.sprintf "%+.1f%%" p
            | None -> "-")
          | Some _, None -> "gone"
          | None, Some _ -> "new"
          | None, None -> "-"
        in
        Format.fprintf ppf "  %-*s %12s %12s %12s@." width r.name (s r.base_s)
          (s r.cur_s) delta)
      d.spans
  end
