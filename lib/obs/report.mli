(** Rendering of {!Stats} snapshots: a human-readable table and a
    stable, machine-readable JSON form.

    The JSON schema is
    {v
    { "counters": { "<name>": <int>, ... },
      "spans":    { "<name>": { "calls": <int>,
                                "total_s": <number>,
                                "max_s": <number> }, ... } }
    v}
    with keys emitted in sorted order, so diffs between runs are
    meaningful and BENCH_*.json entries are reproducible. *)

(** {1 JSON} *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact rendering with sorted-as-given keys and round-trippable
    floats.  Non-finite floats (nan, infinities) have no JSON literal
    and are emitted as [null]; numeric accessors on the parse side
    read [null] back as [nan], so a snapshot containing one still
    round-trips to valid JSON. *)

val parse : string -> json
(** @raise Failure on malformed input. *)

(** {1 Snapshots} *)

val json_of_snapshot : ?meta:(string * json) list -> Stats.snapshot -> json
(** A non-empty [meta] is prepended as a top-level ["meta"] object —
    tool name, experiment list, budget flags, schema version — so
    snapshot files are self-describing and {!Baseline} can refuse to
    compare mismatched runs. *)

val snapshot_of_json : json -> Stats.snapshot
(** @raise Failure when the shape does not match the schema above.
    Unknown top-level fields (such as ["meta"]) are ignored; use
    {!Baseline.of_json} to read the meta back. *)

val pp_human : Format.formatter -> Stats.snapshot -> unit
(** Two aligned tables: counters, then spans with call counts and
    total/max wall-clock time. *)

val write_file : ?meta:(string * json) list -> string -> Stats.snapshot -> unit
(** Write the JSON rendering (with a trailing newline). *)

val emit :
  ?ppf:Format.formatter ->
  ?human:bool ->
  ?json_file:string ->
  ?meta:(string * json) list ->
  unit ->
  unit
(** CLI convenience: snapshot the global registry once, print the
    human table to [ppf] (default stdout) when [human], and write the
    JSON snapshot to [json_file] when given.  An unwritable
    [json_file] prints a warning to stderr instead of raising —
    telemetry must not turn a successful run into a failure.
    [diam serve] passes [Format.err_formatter]: its stdout is a
    JSONL protocol stream and must carry nothing else. *)
