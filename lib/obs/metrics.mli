(** Live rendering of the observability surface.

    {!prometheus} turns one {!Stats.snapshot} — counters, gauges and
    the five [dist]-derived percentile counters — plus the
    {!Heartbeat} table into Prometheus text exposition: every series
    is prefixed [diambound_], dotted names have their punctuation
    mapped to underscores, spans export [_calls] /
    [_seconds_total] / [_seconds_max], and each in-flight request
    exports [diambound_heartbeat_*] gauges labeled with its
    correlation id and phase.  The serve protocol's [metrics] op
    returns this text; everything is exported as gauge type since the
    registry does not record counter-vs-gauge intent.

    {!fields} is the compact form for [--metrics-interval N] periodic
    JSONL emission through {!Log}: non-zero counters plus the
    in-flight table. *)

val prometheus : unit -> string

val fields : unit -> (string * Report.json) list
