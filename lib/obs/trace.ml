type value = Int of int | Float of float | String of string | Bool of bool
type arg = string * value
type kind = Span | Instant

type event = {
  name : string;
  kind : kind;
  ts_us : float;
  dur_us : float;
  args : arg list;
}

type format = Chrome | Jsonl

let format_of_path path =
  if Filename.check_suffix path ".jsonl" then Jsonl else Chrome

(* ----- serialization (via the Report JSON printer, so escaping and
   float round-tripping are shared with the stats snapshots) ----- *)

let json_of_value = function
  | Int n -> Report.Int n
  | Float f -> Report.Float f
  | String s -> Report.String s
  | Bool b -> Report.Bool b

(* [tid] is the recording domain, so a multi-domain trace renders as
   one track per domain in Perfetto instead of one garbled track *)
let json_of_event ~tid e =
  let args =
    match e.args with
    | [] -> []
    | l -> [ ("args", Report.Obj (List.map (fun (k, v) -> (k, json_of_value v)) l)) ]
  in
  Report.Obj
    ([
       ("name", Report.String e.name);
       ("ph", Report.String (match e.kind with Span -> "X" | Instant -> "i"));
       ("pid", Report.Int 1);
       ("tid", Report.Int tid);
       ("ts", Report.Float e.ts_us);
     ]
    @ (match e.kind with
      | Span -> [ ("dur", Report.Float e.dur_us) ]
      | Instant -> [ ("s", Report.String "t") ] (* thread-scoped instant *))
    @ args)

let value_of_json = function
  | Report.Int n -> Int n
  | Report.Float f -> Float f
  | Report.String s -> String s
  | Report.Bool b -> Bool b
  | Report.Null -> Float Float.nan (* non-finite floats export as null *)
  | Report.List _ | Report.Obj _ ->
    failwith "Trace.read_file: composite attribute value"

let event_of_json j =
  let fields =
    match j with
    | Report.Obj fields -> fields
    | _ -> failwith "Trace.read_file: event is not an object"
  in
  let str name =
    match List.assoc_opt name fields with
    | Some (Report.String s) -> s
    | _ -> failwith (Printf.sprintf "Trace.read_file: missing field %S" name)
  in
  let num ?default name =
    match (List.assoc_opt name fields, default) with
    | Some (Report.Float f), _ -> f
    | Some (Report.Int n), _ -> float_of_int n
    | _, Some d -> d
    | _, None -> failwith (Printf.sprintf "Trace.read_file: missing field %S" name)
  in
  let kind =
    match str "ph" with
    | "X" -> Span
    | "i" | "I" -> Instant
    | ph -> failwith (Printf.sprintf "Trace.read_file: unsupported phase %S" ph)
  in
  let args =
    match List.assoc_opt "args" fields with
    | None -> []
    | Some (Report.Obj l) -> List.map (fun (k, v) -> (k, value_of_json v)) l
    | Some _ -> failwith "Trace.read_file: args is not an object"
  in
  {
    name = str "name";
    kind;
    ts_us = num "ts";
    dur_us = (match kind with Span -> num ~default:0. "dur" | Instant -> 0.);
    args;
  }

(* ----- capture state -----

   The sink (file, format, start time) is process-global; every domain
   records into its own ring and span stack, so concurrent spans from
   scheduler workers never interleave on one stack.  Rings drain into
   the shared channel under the sink lock; each drained event carries
   its domain both as the Chrome [tid] and, for worker domains, as a
   "domain" attribute so offline analysis can partition the track. *)

type frame = { f_name : string; f_ts : float; f_args : arg list }

type sink = {
  format : format;
  oc : out_channel;
  t0 : float;
  lock : Mutex.t;
  mutable wrote_any : bool; (* Chrome comma management *)
}

type local = {
  domain : int;
  ring : event array; (* preallocated; [pending] slots await a drain *)
  mutable pending : int;
  mutable stack : frame list; (* open spans, innermost first *)
}

let capacity = 1024

let dummy =
  { name = ""; kind = Instant; ts_us = 0.; dur_us = 0.; args = [] }

let state : sink option ref = ref None
let active () = !state <> None

(* every domain's buffer, for the final drain at [stop]; guarded by
   the registry lock below *)
let locals_lock = Mutex.create ()
let all_locals : local list ref = ref []

let local_key : local Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let l =
        {
          domain = (Domain.self () :> int);
          ring = Array.make capacity dummy;
          pending = 0;
          stack = [];
        }
      in
      Mutex.lock locals_lock;
      all_locals := l :: !all_locals;
      Mutex.unlock locals_lock;
      l)

let local () = Domain.DLS.get local_key

(* caller holds st.lock *)
let drain_locked st l =
  for i = 0 to l.pending - 1 do
    let line = Report.to_string (json_of_event ~tid:l.domain l.ring.(i)) in
    (match st.format with
    | Chrome ->
      if st.wrote_any then output_string st.oc ",\n";
      st.wrote_any <- true;
      output_string st.oc line
    | Jsonl ->
      output_string st.oc line;
      output_char st.oc '\n');
    l.ring.(i) <- dummy
  done;
  l.pending <- 0;
  (* crash-safety: a JSONL sink is flushed through to disk per drain *)
  if st.format = Jsonl then flush st.oc

let drain st l =
  Mutex.lock st.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock st.lock)
    (fun () -> drain_locked st l)

let push st l e =
  (* an active correlation context stamps every event, so all spans
     of one serve request are joinable with its log lines by id *)
  let e =
    match Log.current_corr () with
    | Some c when not (List.mem_assoc "corr" e.args) ->
      { e with args = e.args @ [ ("corr", String c) ] }
    | _ -> e
  in
  (* worker-domain events carry their origin as an attribute too, so
     format-agnostic consumers (trace-report) can partition *)
  let e =
    if l.domain = 0 then e
    else { e with args = e.args @ [ ("domain", Int l.domain) ] }
  in
  l.ring.(l.pending) <- e;
  l.pending <- l.pending + 1;
  if l.pending = capacity || st.format = Jsonl then drain st l

let flush () =
  match !state with
  | None -> ()
  | Some st -> drain st (local ())

let now_us st = (Stats.now () -. st.t0) *. 1e6

let end_span st l extra =
  match l.stack with
  | [] -> () (* unbalanced end; drop rather than crash the run *)
  | f :: rest ->
    l.stack <- rest;
    let dur = Float.max 0. (now_us st -. f.f_ts) in
    push st l
      {
        name = f.f_name;
        kind = Span;
        ts_us = f.f_ts;
        dur_us = dur;
        args = f.f_args @ extra;
      }

let stop () =
  match !state with
  | None -> ()
  | Some st ->
    state := None;
    Mutex.lock locals_lock;
    let locals = !all_locals in
    Mutex.unlock locals_lock;
    (* spans still open anywhere (exception unwind, at_exit, a worker
       domain parked between jobs) are closed now so the trace stays
       well-formed; the recording domains must be quiescent by the
       time the sink closes (the scheduler joins its pool first) *)
    List.iter
      (fun l ->
        while l.stack <> [] do
          end_span st l [ ("truncated", Bool true) ]
        done;
        drain st l)
      locals;
    if st.format = Chrome then output_string st.oc "\n]\n";
    (match close_out st.oc with
    | () -> ()
    | exception Sys_error msg ->
      Format.eprintf "trace: error closing sink: %s@." msg)

let exit_hook = ref false

let start ?format path =
  stop ();
  let format = match format with Some f -> f | None -> format_of_path path in
  match open_out path with
  | exception Sys_error msg -> Format.eprintf "trace: cannot open sink: %s@." msg
  | oc ->
    if format = Chrome then output_string oc "[\n";
    (* stale buffers from a previous sink must not leak into this one *)
    Mutex.lock locals_lock;
    List.iter
      (fun l ->
        l.pending <- 0;
        l.stack <- [])
      !all_locals;
    Mutex.unlock locals_lock;
    state :=
      Some
        { format; oc; t0 = Stats.now (); lock = Mutex.create (); wrote_any = false };
    if not !exit_hook then begin
      exit_hook := true;
      at_exit stop
    end

let setup ?file () =
  match file with
  | Some path -> start path
  | None -> (
    match Sys.getenv_opt "DIAMBOUND_TRACE" with
    | Some path when path <> "" -> start path
    | _ -> ())

let emit e = match !state with None -> () | Some st -> push st (local ()) e

let instant ?(args = []) name =
  match !state with
  | None -> ()
  | Some st ->
    push st (local ())
      { name; kind = Instant; ts_us = now_us st; dur_us = 0.; args }

let with_span ?(args = []) name f =
  match !state with
  | None -> f ()
  | Some st ->
    let l = local () in
    l.stack <- { f_name = name; f_ts = now_us st; f_args = args } :: l.stack;
    (match f () with
    | r ->
      end_span st l [];
      r
    | exception e ->
      end_span st l [ ("exception", String (Printexc.to_string e)) ];
      raise e)

let with_span_args ?(args = []) name f =
  match !state with
  | None -> fst (f ())
  | Some st ->
    let l = local () in
    l.stack <- { f_name = name; f_ts = now_us st; f_args = args } :: l.stack;
    (match f () with
    | r, extra ->
      end_span st l extra;
      r
    | exception e ->
      end_span st l [ ("exception", String (Printexc.to_string e)) ];
      raise e)

let to_json ?(tid = 0) e = json_of_event ~tid e

(* ----- reading back ----- *)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_file path =
  let text = read_all path in
  let n = String.length text in
  let rec first_nonspace i =
    if i >= n then None
    else
      match text.[i] with
      | ' ' | '\t' | '\n' | '\r' -> first_nonspace (i + 1)
      | c -> Some c
  in
  (* salvage pass for a capture cut off mid-write (crashed or killed
     run): both exporters write one event object per line, so any
     complete line is recoverable even when the file as a whole no
     longer parses *)
  let salvage () =
    String.split_on_char '\n' text
    |> List.filter_map (fun l ->
           let l = String.trim l in
           let n = String.length l in
           let l = if n > 0 && l.[n - 1] = ',' then String.sub l 0 (n - 1) else l in
           if String.length l = 0 || l.[0] <> '{' then None
           else
             match event_of_json (Report.parse l) with
             | e -> Some e
             | exception Failure _ -> None)
  in
  match first_nonspace 0 with
  | None -> []
  | Some '[' -> (
    match Report.parse text with
    | Report.List items -> List.map event_of_json items
    | _ -> failwith "Trace.read_file: expected a trace-event array"
    | exception Failure _ -> salvage ())
  | Some _ -> (
    (* JSONL: one event per non-empty line; only a truncated FINAL
       line is forgiven (that is the crash-safety contract), a
       malformed line mid-file still fails loudly *)
    let lines =
      String.split_on_char '\n' text
      |> List.filter (fun l -> String.trim l <> "")
    in
    let rec parse_lines = function
      | [] -> []
      | [ last ] -> (
        match event_of_json (Report.parse last) with
        | e -> [ e ]
        | exception Failure _ -> [])
      | l :: rest -> event_of_json (Report.parse l) :: parse_lines rest
    in
    parse_lines lines)
