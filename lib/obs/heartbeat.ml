(* In-flight request table: the live-progress complement to the
   post-mortem Stats registry.  Serve registers every admitted
   request under its correlation id; Sat_obs publishes a beat at each
   restart-boundary [Budget.should_stop] poll; the serve watchdog
   scans for entries whose last beat is older than the stall window.

   One process-wide table under one mutex: beats arrive at restart
   granularity (hundreds of conflicts apart), not per-conflict, so
   contention is negligible. *)

type beat = {
  at : float;  (* Stats.now at publication *)
  conflicts : int;
  propagations : int;
  trail : int;
  learnts : int;
}

type entry = {
  corr : string;
  started : float;
  mutable phase : string;
  mutable beats : int;
  mutable last : beat;
  mutable flagged : bool; (* already reported stalled; cleared by progress *)
  history : beat option array; (* ring of the most recent beats *)
  mutable hist_next : int;
}

let history_len = 16
let lock = Mutex.create ()
let table : (string, entry) Hashtbl.t = Hashtbl.create 16

let schema =
  [
    "serve.heartbeat.registered";
    "serve.heartbeat.beats";
    "serve.heartbeat.inflight";
  ]

let () = Stats.declare schema

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let register ?(phase = "queued") corr =
  let now = Stats.now () in
  let b = { at = now; conflicts = 0; propagations = 0; trail = 0; learnts = 0 } in
  let e =
    {
      corr;
      started = now;
      phase;
      beats = 0;
      last = b;
      flagged = false;
      history = Array.make history_len None;
      hist_next = 0;
    }
  in
  locked (fun () ->
      Hashtbl.replace table corr e;
      Stats.count "serve.heartbeat.registered" 1;
      Stats.set_gauge "serve.heartbeat.inflight" (Hashtbl.length table))

let finish corr =
  locked (fun () ->
      Hashtbl.remove table corr;
      Stats.set_gauge "serve.heartbeat.inflight" (Hashtbl.length table))

let active () =
  match Log.current_corr () with
  | None -> false
  | Some corr -> locked (fun () -> Hashtbl.mem table corr)

let set_phase phase =
  match Log.current_corr () with
  | None -> ()
  | Some corr ->
    locked (fun () ->
        match Hashtbl.find_opt table corr with
        | None -> ()
        | Some e ->
          e.phase <- phase;
          (* a phase transition is progress: the request moved to a
             new stage even if the solver has not polled yet *)
          e.last <- { e.last with at = Stats.now () };
          e.flagged <- false)

let beat ~conflicts ~propagations ~trail ~learnts =
  match Log.current_corr () with
  | None -> ()
  | Some corr ->
    locked (fun () ->
        match Hashtbl.find_opt table corr with
        | None -> ()
        | Some e ->
          let b =
            { at = Stats.now (); conflicts; propagations; trail; learnts }
          in
          e.last <- b;
          e.beats <- e.beats + 1;
          e.flagged <- false;
          e.history.(e.hist_next) <- Some b;
          e.hist_next <- (e.hist_next + 1) mod history_len;
          Stats.count "serve.heartbeat.beats" 1)

(* ----- read side ----- *)

type view = {
  v_corr : string;
  v_phase : string;
  v_started : float;
  v_age_s : float;
  v_idle_s : float;
  v_beats : int;
  v_last : beat;
  v_conflicts_per_s : float;
  v_history : beat list;  (* oldest first *)
}

let view_of now e =
  let span = e.last.at -. e.started in
  let cps = if span > 0. then float_of_int e.last.conflicts /. span else 0. in
  let history =
    (* ring order: hist_next is the oldest surviving slot *)
    List.filter_map Fun.id
      (List.init history_len (fun i ->
           e.history.((e.hist_next + i) mod history_len)))
  in
  {
    v_corr = e.corr;
    v_phase = e.phase;
    v_started = e.started;
    v_age_s = now -. e.started;
    v_idle_s = now -. e.last.at;
    v_beats = e.beats;
    v_last = e.last;
    v_conflicts_per_s = cps;
    v_history = history;
  }

let snapshot () =
  let now = Stats.now () in
  locked (fun () ->
      Hashtbl.fold (fun _ e acc -> view_of now e :: acc) table [])
  |> List.sort (fun a b -> compare a.v_corr b.v_corr)

let stalled ~window_s =
  let now = Stats.now () in
  locked (fun () ->
      Hashtbl.fold
        (fun _ e acc ->
          if (not e.flagged) && now -. e.last.at >= window_s then begin
            e.flagged <- true;
            view_of now e :: acc
          end
          else acc)
        table [])
  |> List.sort (fun a b -> compare a.v_corr b.v_corr)

let clear () =
  locked (fun () ->
      Hashtbl.reset table;
      Stats.set_gauge "serve.heartbeat.inflight" 0)
