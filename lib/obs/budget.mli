(** Resource governance: wall-clock deadlines and solver/BDD
    allowances threaded through the prover stack.

    A budget is a bundle of optional limits — a wall-clock deadline,
    a per-SAT-call conflict/propagation allowance, and a BDD node
    allowance.  Layers consult it at coarse boundaries (solver restart
    boundaries, BMC depth boundaries, transformation rounds), so the
    hot loops stay clean, and degrade to an explicit
    unknown/exhausted outcome instead of running unbounded.  Budget
    exhaustion is never an escaping exception at an API boundary: the
    solver returns [Unknown], BMC returns [Unknown], the engine
    records a ["budget-exhausted"] attempt and moves on.

    A budget may also carry a {e cancellation token} — a shared
    [bool Atomic.t] — checked at the same boundaries as the deadline.
    The portfolio scheduler uses it to stand down in-flight strategies
    once a conclusive verdict arrives: cancellation looks exactly like
    deadline expiry to the layer being stopped (an [Unknown] outcome,
    never an exception), so no solver or transformation needs a second
    stop mechanism.

    Exhaustion events are counted in {!Stats} under
    ["budget.deadline_expired"] / ["budget.cancelled"] (once per budget
    value) and ["budget.exhausted.<layer>"] (once per stand-down). *)

type t

val unlimited : t
(** No limits at all; every check is a cheap no-op. *)

val create :
  ?timeout_s:float ->
  ?conflicts:int ->
  ?propagations:int ->
  ?bdd_nodes:int ->
  ?cancel:bool Atomic.t ->
  unit ->
  t
(** [timeout_s] is relative to now; the deadline is absolute from the
    moment of creation.  [conflicts]/[propagations] limit each
    individual SAT call (checked at restart boundaries).  [bdd_nodes]
    caps BDD manager allocation (target enlargement).  [cancel], when
    given, makes the budget additionally expire as soon as the atomic
    reads [true]. *)

val is_unlimited : t -> bool

val deadline : t -> float option
(** Absolute wall-clock deadline, if any. *)

val conflicts : t -> int option
val propagations : t -> int option
val bdd_nodes : t -> int option

val with_cancel : t -> bool Atomic.t -> t
(** The same limits with the given cancellation token attached
    (replacing any previous token). *)

val cancelled : t -> bool
(** Has the cancellation token (if any) been set?  Does not consult
    the deadline. *)

val expired : t -> bool
(** Has the deadline passed, or the cancellation token been set?
    Always [false] without either.  The first observation bumps the
    ["budget.deadline_expired"] or ["budget.cancelled"] counter (once
    per budget value, so per-depth polling does not inflate it). *)

val remaining_s : t -> float option
(** Seconds left before the deadline ([Some 0.] once expired). *)

val should_stop : t -> (unit -> bool) option
(** Deadline and/or cancellation token as a polling closure, in the
    shape the (observability-free) SAT solver accepts.  [None] only
    when the budget has neither. *)

val slice : t -> ways:int -> t
(** A per-phase slice: the remaining time divided by [ways], with the
    other allowances — including the cancellation token — carried over
    unchanged.  Slicing an expired or deadline-free budget is harmless
    (still expired / still free).  Used by the engine to give each
    remaining strategy a fair share of the total deadline. *)

val note_exhausted : string -> unit
(** Record a budget-driven stand-down in the named layer: bumps
    ["budget.exhausted.<layer>"]. *)

val pp : Format.formatter -> t -> unit
