(* Domain-safe registry: counters are atomics (a lost increment under
   concurrent bumping is a silent lie in every report downstream), and
   spans live in per-domain tables merged at snapshot time so two
   domains timing the same name never race on one record.  The
   registry hashtables themselves are guarded by one mutex; counter
   and span handles are looked up under the lock but bumped without
   it. *)

type counter = int Atomic.t
type span = { mutable calls : int; mutable total : float; mutable max : float }

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

(* one span table per domain, registered on first use and kept for the
   life of the process (domains are few: the scheduler pool plus the
   main domain), merged by {!snapshot} *)
let span_tables : (string, span) Hashtbl.t list ref = ref []

let span_key : (string, span) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let tbl = Hashtbl.create 64 in
      locked (fun () -> span_tables := tbl :: !span_tables);
      tbl)

(* CLOCK_MONOTONIC (bechamel's stub, nanoseconds): an NTP step
   mid-span must not record a negative or wildly wrong duration.
   The epoch is arbitrary (boot), which every consumer tolerates —
   budgets and spans only ever subtract two readings.  If the stub is
   unavailable on this platform, fall back to wall clock. *)
let monotonic () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let now =
  match monotonic () with
  | (_ : float) -> monotonic
  | exception _ -> Unix.gettimeofday

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = Atomic.make 0 in
        Hashtbl.replace counters name c;
        c)

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let set c n = Atomic.set c n

let rec record_max c n =
  let cur = Atomic.get c in
  if n > cur && not (Atomic.compare_and_set c cur n) then record_max c n

let counter_value c = Atomic.get c
let count name n = add (counter name) n
let set_gauge name n = set (counter name) n
let max_gauge name n = record_max (counter name) n
let declare names = List.iter (fun name -> ignore (counter name)) names

(* spans: the calling domain's private table, so no lock is needed on
   the record itself *)
let span name =
  let spans = Domain.DLS.get span_key in
  match Hashtbl.find_opt spans name with
  | Some sp -> sp
  | None ->
    let sp = { calls = 0; total = 0.; max = 0. } in
    Hashtbl.replace spans name sp;
    sp

let add_span name dt =
  (* clock steps (or misuse) must never record negative durations;
     nan is kept as-is so a corrupted measurement stays visible *)
  let dt = if dt < 0. then 0. else dt in
  let sp = span name in
  sp.calls <- sp.calls + 1;
  sp.total <- sp.total +. dt;
  if dt > sp.max then sp.max <- dt

let time name f =
  let t0 = now () in
  Fun.protect ~finally:(fun () -> add_span name (now () -. t0)) f

let timed name f =
  let t0 = now () in
  let r = f () in
  let dt = now () -. t0 in
  add_span name dt;
  (r, dt)

(* ----- distributions -----

   Percentile gauges for the serve layer: each [dist name v] appends
   into a per-name reservoir, and {!snapshot} folds every non-empty
   reservoir into plain counters (<name>.count/.p50/.p90/.p99/.max),
   so percentiles ride the existing snapshot/JSON/baseline schema
   without a new field.  Recording is mutex-guarded — distributions
   are per-request-rate events (never hot-loop), so contention is
   irrelevant next to losing a sample. *)

let dists : (string, float list ref) Hashtbl.t = Hashtbl.create 16

let dist name v =
  locked (fun () ->
      match Hashtbl.find_opt dists name with
      | Some r -> r := v :: !r
      | None -> Hashtbl.replace dists name (ref [ v ]))

let percentile sorted n q =
  (* nearest-rank on a sorted array: the conventional estimator, exact
     at the sample points, monotone in q *)
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let dist_counters () =
  let folded = ref [] in
  locked (fun () ->
      Hashtbl.iter
        (fun name r ->
          let a = Array.of_list !r in
          let n = Array.length a in
          if n > 0 then begin
            Array.sort Float.compare a;
            let p q = int_of_float (Float.round (percentile a n q)) in
            folded :=
              (name ^ ".count", n)
              :: (name ^ ".p50", p 0.50)
              :: (name ^ ".p90", p 0.90)
              :: (name ^ ".p99", p 0.99)
              :: (name ^ ".max", int_of_float (Float.round a.(n - 1)))
              :: !folded
          end)
        dists);
  !folded

type span_stats = { calls : int; total_s : float; max_s : float }

type snapshot = {
  counters : (string * int) list;
  spans : (string * span_stats) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  let counters, tables =
    locked (fun () ->
        ( Hashtbl.fold (fun name c acc -> (name, Atomic.get c) :: acc) counters
            [],
          !span_tables ))
  in
  (* merge the per-domain tables: sum calls and totals, max of maxes.
     Quiescent domains' records are stable; a domain still recording
     contributes a consistent-enough prefix (each field is a single
     word store). *)
  let merged : (string, span_stats) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name (sp : span) ->
          let prev =
            match Hashtbl.find_opt merged name with
            | Some s -> s
            | None -> { calls = 0; total_s = 0.; max_s = 0. }
          in
          Hashtbl.replace merged name
            {
              calls = prev.calls + sp.calls;
              total_s = prev.total_s +. sp.total;
              max_s = Float.max prev.max_s sp.max;
            })
        tbl)
    tables;
  {
    counters = List.sort by_name (dist_counters () @ counters);
    spans =
      Hashtbl.fold (fun name s acc -> (name, s) :: acc) merged []
      |> List.sort by_name;
  }

let reset () =
  locked (fun () ->
      Hashtbl.reset dists;
      Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
      List.iter
        (fun tbl ->
          Hashtbl.iter
            (fun _ (sp : span) ->
              sp.calls <- 0;
              sp.total <- 0.;
              sp.max <- 0.)
            tbl)
        !span_tables)
