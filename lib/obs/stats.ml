type counter = { mutable n : int }
type span = { mutable calls : int; mutable total : float; mutable max : float }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let spans : (string, span) Hashtbl.t = Hashtbl.create 64

(* CLOCK_MONOTONIC (bechamel's stub, nanoseconds): an NTP step
   mid-span must not record a negative or wildly wrong duration.
   The epoch is arbitrary (boot), which every consumer tolerates —
   budgets and spans only ever subtract two readings.  If the stub is
   unavailable on this platform, fall back to wall clock. *)
let monotonic () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let now =
  match monotonic () with
  | (_ : float) -> monotonic
  | exception _ -> Unix.gettimeofday

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { n = 0 } in
    Hashtbl.replace counters name c;
    c

let incr c = c.n <- c.n + 1
let add c n = c.n <- c.n + n
let set c n = c.n <- n
let record_max c n = if n > c.n then c.n <- n
let counter_value c = c.n
let count name n = add (counter name) n
let set_gauge name n = set (counter name) n
let max_gauge name n = record_max (counter name) n
let declare names = List.iter (fun name -> ignore (counter name)) names

let span name =
  match Hashtbl.find_opt spans name with
  | Some sp -> sp
  | None ->
    let sp = { calls = 0; total = 0.; max = 0. } in
    Hashtbl.replace spans name sp;
    sp

let add_span name dt =
  (* clock steps (or misuse) must never record negative durations;
     nan is kept as-is so a corrupted measurement stays visible *)
  let dt = if dt < 0. then 0. else dt in
  let sp = span name in
  sp.calls <- sp.calls + 1;
  sp.total <- sp.total +. dt;
  if dt > sp.max then sp.max <- dt

let time name f =
  let t0 = now () in
  Fun.protect ~finally:(fun () -> add_span name (now () -. t0)) f

let timed name f =
  let t0 = now () in
  let r = f () in
  let dt = now () -. t0 in
  add_span name dt;
  (r, dt)

type span_stats = { calls : int; total_s : float; max_s : float }

type snapshot = {
  counters : (string * int) list;
  spans : (string * span_stats) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  {
    counters =
      Hashtbl.fold (fun name c acc -> (name, c.n) :: acc) counters []
      |> List.sort by_name;
    spans =
      Hashtbl.fold
        (fun name (sp : span) acc ->
          (name, { calls = sp.calls; total_s = sp.total; max_s = sp.max })
          :: acc)
        spans []
      |> List.sort by_name;
  }

let reset () =
  Hashtbl.iter (fun _ c -> c.n <- 0) counters;
  Hashtbl.iter
    (fun _ (sp : span) ->
      sp.calls <- 0;
      sp.total <- 0.;
      sp.max <- 0.)
    spans
