(** Time-frame expansion (unrolling) of a netlist into a SAT solver.

    The value of vertex [v] at time [t] is represented by a solver
    literal; register outputs at time [t > 0] alias the literal of
    their next-state cone at [t - 1], registers at time 0 alias their
    initial value (a forced constant, or a fresh variable for
    [Init_x]).  Level-sensitive latches follow the implicit c-phase
    clock exactly as in {!Netlist.Sim}. *)

type t

val create : Backend.solver -> Netlist.Net.t -> t
val solver : t -> Backend.solver
val net : t -> Netlist.Net.t

val lit_at : t -> Netlist.Lit.t -> int -> Backend.lit
(** [lit_at u l t] is the solver literal for netlist literal [l] at
    time [t >= 0], encoding cones on demand. *)

val false_lit : t -> Backend.lit
(** A solver literal constrained to false. *)

val value_at : t -> Netlist.Lit.t -> int -> bool
(** Value in the model of the last satisfiable solve. *)

val init_x_assignments : t -> (int * bool) list
(** Values chosen for the nondeterministic initial values in the model
    of the last satisfiable solve, as (state variable, value) pairs,
    sorted by state variable. *)

val input_frames : t -> upto:int -> (int * int * Backend.lit) list
(** All encoded (input variable, time, literal) triples with
    [time <= upto] — for counterexample extraction.  Sorted by
    (time, variable), so extracted counterexamples are deterministic
    across runs. *)

val frame_profile : t -> (int * int * int) list
(** Per time frame, the (time, solver variables, clauses) emitted while
    encoding it, sorted by time.  Register/latch aliasing attributes
    cost to the frame whose cone forced the encoding.  Also accumulated
    into the global {!Obs.Stats} counters ["encode.vars"] and
    ["encode.clauses"]. *)
