module Net = Netlist.Net
module Lit = Netlist.Lit
module Solver = Backend

type frame_cost = { mutable f_vars : int; mutable f_clauses : int }

type t = {
  solver : Solver.solver;
  net : Net.t;
  table : (int * int, Solver.lit) Hashtbl.t; (* (var, time) -> solver lit *)
  inputs : (int * int, Solver.lit) Hashtbl.t;
  init_x : (int, Solver.lit) Hashtbl.t; (* state var -> free init literal *)
  fls : Solver.lit;
  frames : (int, frame_cost) Hashtbl.t; (* time -> encoding cost *)
  c_vars : Obs.Stats.counter;
  c_clauses : Obs.Stats.counter;
}

let frame_cost t time =
  match Hashtbl.find_opt t.frames time with
  | Some f -> f
  | None ->
    let f = { f_vars = 0; f_clauses = 0 } in
    Hashtbl.replace t.frames time f;
    f

let emitted t time ~vars ~clauses =
  let f = frame_cost t time in
  f.f_vars <- f.f_vars + vars;
  f.f_clauses <- f.f_clauses + clauses;
  Obs.Stats.add t.c_vars vars;
  Obs.Stats.add t.c_clauses clauses

let create solver net =
  let v = Solver.new_var solver in
  (* [pos v] is the constant-false literal: assert its negation *)
  let fls = Solver.pos v in
  Solver.add_clause solver [ Solver.neg_of v ];
  let t =
    {
      solver;
      net;
      table = Hashtbl.create 4096;
      inputs = Hashtbl.create 256;
      init_x = Hashtbl.create 16;
      fls;
      frames = Hashtbl.create 64;
      c_vars = Obs.Stats.counter "encode.vars";
      c_clauses = Obs.Stats.counter "encode.clauses";
    }
  in
  emitted t 0 ~vars:1 ~clauses:1;
  t

let solver t = t.solver
let net t = t.net
let false_lit t = t.fls

let apply_sign l sl = if Lit.is_neg l then Solver.negate sl else sl

let rec var_at t v time =
  match Hashtbl.find_opt t.table (v, time) with
  | Some sl -> sl
  | None ->
    let sl =
      match Net.node t.net v with
      | Net.Const -> t.fls
      | Net.Input _ ->
        let sv = Solver.pos (Solver.new_var t.solver) in
        Hashtbl.replace t.inputs (v, time) sv;
        emitted t time ~vars:1 ~clauses:0;
        sv
      | Net.And (a, b) ->
        let sa = lit_at t a time in
        let sb = lit_at t b time in
        let c = Solver.pos (Solver.new_var t.solver) in
        Solver.add_clause t.solver [ Solver.negate c; sa ];
        Solver.add_clause t.solver [ Solver.negate c; sb ];
        Solver.add_clause t.solver [ c; Solver.negate sa; Solver.negate sb ];
        emitted t time ~vars:1 ~clauses:3;
        c
      | Net.Reg r ->
        if time = 0 then init_lit t v r.Net.r_init
        else lit_at t r.Net.next (time - 1)
      | Net.Latch l ->
        if time mod Net.phases t.net = l.Net.l_phase then
          lit_at t l.Net.l_data time
        else if time = 0 then init_lit t v l.Net.l_init
        else var_at t v (time - 1)
    in
    Hashtbl.replace t.table (v, time) sl;
    sl

and lit_at t l time = apply_sign l (var_at t (Lit.var l) time)

and init_lit t v = function
  | Net.Init0 -> t.fls
  | Net.Init1 -> Solver.negate t.fls
  | Net.Init_x ->
    let sl = Solver.pos (Solver.new_var t.solver) in
    Hashtbl.replace t.init_x v sl;
    emitted t 0 ~vars:1 ~clauses:0;
    sl

let value_at t l time = Solver.value t.solver (lit_at t l time)

(* Hashtable folds visit entries in bucket order, which depends on
   table history; sort so counterexample rendering, VCD dumps and
   golden tests are stable across runs. *)
let init_x_assignments t =
  Hashtbl.fold (fun v sl acc -> (v, Solver.value t.solver sl) :: acc) t.init_x []
  |> List.sort (fun (v1, _) (v2, _) -> compare v1 v2)

let input_frames t ~upto =
  Hashtbl.fold
    (fun (v, time) sl acc -> if time <= upto then (v, time, sl) :: acc else acc)
    t.inputs []
  |> List.sort (fun (v1, t1, _) (v2, t2, _) -> compare (t1, v1) (t2, v2))

let frame_profile t =
  Hashtbl.fold
    (fun time f acc -> (time, f.f_vars, f.f_clauses) :: acc)
    t.frames []
  |> List.sort (fun (t1, _, _) (t2, _, _) -> compare t1 t2)
