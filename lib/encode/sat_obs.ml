(** Per-solve SAT statistics recording.

    The solver itself keeps plain lifetime counters (no dependency on
    the observability layer); callers route deltas into the global
    {!Obs.Stats} registry by solving through this wrapper. *)

module Solver = Sat.Solver

let schema =
  [
    "sat.solves";
    "sat.sat_results";
    "sat.unknowns";
    "sat.conflicts";
    "sat.decisions";
    "sat.propagations";
    "sat.restarts";
    "sat.reduce_dbs";
    "sat.simplify.runs";
    "sat.simplify.subsumed";
    "sat.simplify.strengthened";
    "sat.simplify.eliminated_vars";
    "sat.simplify.probed_units";
    "encode.vars";
    "encode.clauses";
  ]

(* register the schema eagerly so every snapshot carries the solver
   counters, zeroed when nothing ran *)
let () = Obs.Stats.declare schema

let result_name = function
  | Solver.Sat -> "sat"
  | Solver.Unsat -> "unsat"
  | Solver.Unknown -> "unknown"

(* [solve ?assumptions ?budget ?span solver] is [Solver.solve] plus
   recording: the wall-clock time goes to [span] (default "sat.solve")
   and the statistic deltas to the "sat.*" counters; when a trace is
   active the call also emits one span (same name) whose attributes
   carry the per-call deltas and the problem size.  A [budget]
   translates to the solver's per-call allowances; an [Unknown] result
   is counted both here and against the budget layer.  Returns the
   result and the elapsed seconds. *)
let solve ?assumptions ?budget ?(span = "sat.solve") solver =
  let conflicts = Solver.num_conflicts solver in
  let decisions = Solver.num_decisions solver in
  let propagations = Solver.num_propagations solver in
  let restarts = Solver.num_restarts solver in
  let reduce_dbs = Solver.num_reduce_dbs solver in
  let simplifies = Solver.num_simplifies solver in
  let subsumed = Solver.num_subsumed solver in
  let strengthened = Solver.num_strengthened solver in
  let eliminated = Solver.num_eliminated solver in
  let probed = Solver.num_probed_units solver in
  (* inprocessing passes show up as their own span nested under the
     solve span, so trace-report attributes time to "sat.simplify" *)
  Solver.set_simplify_wrapper solver (fun pass ->
      Obs.Trace.with_span "sat.simplify" (fun () ->
          Obs.Stats.time "sat.simplify" pass));
  let max_conflicts = Option.bind budget Obs.Budget.conflicts in
  let max_propagations = Option.bind budget Obs.Budget.propagations in
  let should_stop = Option.bind budget Obs.Budget.should_stop in
  (* live telemetry rides the same restart-boundary poll the budget
     uses: when this solve belongs to a registered in-flight request
     (serve), each poll also publishes a heartbeat snapshot.  Forced
     to [Some] even without a budget so a stuck-but-unbudgeted solve
     still beats. *)
  let should_stop =
    if not (Obs.Heartbeat.active ()) then should_stop
    else
      Some
        (fun () ->
          Obs.Heartbeat.beat
            ~conflicts:(Solver.num_conflicts solver)
            ~propagations:(Solver.num_propagations solver)
            ~trail:(Solver.trail_depth solver)
            ~learnts:(Solver.num_learnts solver);
          match should_stop with Some f -> f () | None -> false)
  in
  let result, dt =
    Obs.Trace.with_span_args span (fun () ->
        let r =
          Obs.Stats.timed span (fun () ->
              Solver.solve ?assumptions ?max_conflicts ?max_propagations
                ?should_stop solver)
        in
        ( r,
          Obs.Trace.
            [
              ("result", String (result_name (fst r)));
              ("vars", Int (Solver.num_vars solver));
              ("clauses", Int (Solver.num_clauses solver));
              ("conflicts", Int (Solver.num_conflicts solver - conflicts));
              ("decisions", Int (Solver.num_decisions solver - decisions));
              ( "propagations",
                Int (Solver.num_propagations solver - propagations) );
              ("restarts", Int (Solver.num_restarts solver - restarts));
            ] ))
  in
  Obs.Stats.count "sat.solves" 1;
  if result = Solver.Sat then Obs.Stats.count "sat.sat_results" 1;
  if result = Solver.Unknown then begin
    Obs.Stats.count "sat.unknowns" 1;
    Obs.Budget.note_exhausted "sat"
  end;
  Obs.Stats.count "sat.conflicts" (Solver.num_conflicts solver - conflicts);
  Obs.Stats.count "sat.decisions" (Solver.num_decisions solver - decisions);
  Obs.Stats.count "sat.propagations"
    (Solver.num_propagations solver - propagations);
  Obs.Stats.count "sat.restarts" (Solver.num_restarts solver - restarts);
  Obs.Stats.count "sat.reduce_dbs" (Solver.num_reduce_dbs solver - reduce_dbs);
  Obs.Stats.count "sat.simplify.runs" (Solver.num_simplifies solver - simplifies);
  Obs.Stats.count "sat.simplify.subsumed" (Solver.num_subsumed solver - subsumed);
  Obs.Stats.count "sat.simplify.strengthened"
    (Solver.num_strengthened solver - strengthened);
  Obs.Stats.count "sat.simplify.eliminated_vars"
    (Solver.num_eliminated solver - eliminated);
  Obs.Stats.count "sat.simplify.probed_units"
    (Solver.num_probed_units solver - probed);
  (result, dt)
