(** Per-solve SAT statistics recording.

    Backends keep plain lifetime counters (no dependency on the
    observability layer); callers route deltas into the global
    {!Obs.Stats} registry by solving through this wrapper.  All
    telemetry reads go through the backend's stats-snapshot hook
    ({!Backend.stats}), so the BDD oracle and the external solver
    report into the same ["sat.*"] counters and flight recorder as the
    reference CDCL backend. *)

module Solver = Backend

let schema =
  [
    "sat.solves";
    "sat.sat_results";
    "sat.unknowns";
    "sat.conflicts";
    "sat.decisions";
    "sat.propagations";
    "sat.restarts";
    "sat.reduce_dbs";
    "sat.simplify.runs";
    "sat.simplify.subsumed";
    "sat.simplify.strengthened";
    "sat.simplify.eliminated_vars";
    "sat.simplify.probed_units";
    "encode.vars";
    "encode.clauses";
  ]

(* register the schema eagerly so every snapshot carries the solver
   counters, zeroed when nothing ran *)
let () = Obs.Stats.declare schema

let result_name = function
  | Solver.Sat -> "sat"
  | Solver.Unsat -> "unsat"
  | Solver.Unknown _ -> "unknown"

(* [solve ?assumptions ?budget ?span solver] is [Backend.solve] plus
   recording: the wall-clock time goes to [span] (default "sat.solve")
   and the statistic deltas to the "sat.*" counters; when a trace is
   active the call also emits one span (same name) whose attributes
   carry the per-call deltas and the problem size.  A [budget]
   translates to the backend's per-call allowances (conflicts,
   propagations, BDD nodes); an [Unknown] result is counted both here
   and against the budget layer — except backend-unavailable Unknowns,
   which are a configuration condition, not an exhausted allowance.
   Returns the result and the elapsed seconds. *)
let solve ?assumptions ?budget ?(span = "sat.solve") solver =
  let s0 = Backend.stats solver in
  (* inprocessing passes show up as their own span nested under the
     solve span, so trace-report attributes time to "sat.simplify" *)
  Backend.set_simplify_wrapper solver (fun pass ->
      Obs.Trace.with_span "sat.simplify" (fun () ->
          Obs.Stats.time "sat.simplify" pass));
  let max_conflicts = Option.bind budget Obs.Budget.conflicts in
  let max_propagations = Option.bind budget Obs.Budget.propagations in
  let max_nodes = Option.bind budget Obs.Budget.bdd_nodes in
  let should_stop = Option.bind budget Obs.Budget.should_stop in
  (* live telemetry rides the same restart-boundary poll the budget
     uses: when this solve belongs to a registered in-flight request
     (serve), each poll also publishes a heartbeat snapshot.  Forced
     to [Some] even without a budget so a stuck-but-unbudgeted solve
     still beats. *)
  let should_stop =
    if not (Obs.Heartbeat.active ()) then should_stop
    else
      Some
        (fun () ->
          let s = Backend.stats solver in
          Obs.Heartbeat.beat ~conflicts:s.Backend.conflicts
            ~propagations:s.Backend.propagations ~trail:s.Backend.trail
            ~learnts:s.Backend.learnts;
          match should_stop with Some f -> f () | None -> false)
  in
  let result, dt =
    Obs.Trace.with_span_args span (fun () ->
        let r =
          Obs.Stats.timed span (fun () ->
              Backend.solve ?assumptions ?max_conflicts ?max_propagations
                ?max_nodes ?should_stop solver)
        in
        let s = Backend.stats solver in
        ( r,
          Obs.Trace.
            [
              ("result", String (result_name (fst r)));
              ("backend", String (Backend.name solver));
              ("vars", Int s.Backend.vars);
              ("clauses", Int s.Backend.clauses);
              ("conflicts", Int (s.Backend.conflicts - s0.Backend.conflicts));
              ("decisions", Int (s.Backend.decisions - s0.Backend.decisions));
              ( "propagations",
                Int (s.Backend.propagations - s0.Backend.propagations) );
              ("restarts", Int (s.Backend.restarts - s0.Backend.restarts));
            ] ))
  in
  let s1 = Backend.stats solver in
  Obs.Stats.count "sat.solves" 1;
  (match result with
  | Solver.Sat -> Obs.Stats.count "sat.sat_results" 1
  | Solver.Unknown why ->
    Obs.Stats.count "sat.unknowns" 1;
    if not (Backend.is_unavailable why) then Obs.Budget.note_exhausted "sat"
  | Solver.Unsat -> ());
  Obs.Stats.count "sat.conflicts" (s1.Backend.conflicts - s0.Backend.conflicts);
  Obs.Stats.count "sat.decisions" (s1.Backend.decisions - s0.Backend.decisions);
  Obs.Stats.count "sat.propagations"
    (s1.Backend.propagations - s0.Backend.propagations);
  Obs.Stats.count "sat.restarts" (s1.Backend.restarts - s0.Backend.restarts);
  Obs.Stats.count "sat.reduce_dbs"
    (s1.Backend.reduce_dbs - s0.Backend.reduce_dbs);
  Obs.Stats.count "sat.simplify.runs"
    (s1.Backend.simplifies - s0.Backend.simplifies);
  Obs.Stats.count "sat.simplify.subsumed"
    (s1.Backend.subsumed - s0.Backend.subsumed);
  Obs.Stats.count "sat.simplify.strengthened"
    (s1.Backend.strengthened - s0.Backend.strengthened);
  Obs.Stats.count "sat.simplify.eliminated_vars"
    (s1.Backend.eliminated - s0.Backend.eliminated);
  Obs.Stats.count "sat.simplify.probed_units"
    (s1.Backend.probed_units - s0.Backend.probed_units);
  (result, dt)
