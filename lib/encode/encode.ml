(** SAT encodings of netlists: single combinational frames and
    time-frame unrollings, plus per-solve statistics recording. *)

module Frame = Frame
module Unroll = Unroll
module Sat_obs = Sat_obs
