(** Single combinational time-frame of a netlist encoded into a SAT
    solver (Tseitin encoding of the AND graph).

    Inputs and state-element outputs become free solver variables;
    ANDs get defining clauses.  Used for combinational equivalence
    queries (SAT sweeping) where state elements are cut points. *)

type t

val create : Backend.solver -> Netlist.Net.t -> t
(** Lazily encodes on demand; creating is cheap. *)

val solver : t -> Backend.solver

val lit : t -> Netlist.Lit.t -> Backend.lit
(** Solver literal for a netlist literal, encoding its combinational
    cone (down to inputs/state elements) on first use. *)

val state_var : t -> int -> Backend.lit
(** Solver literal (positive) for the current-state output of a
    register/latch variable. *)
