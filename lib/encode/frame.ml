module Net = Netlist.Net
module Lit = Netlist.Lit
module Solver = Backend

type t = {
  solver : Solver.solver;
  net : Net.t;
  vars : int array; (* netlist var -> solver var, -1 if not yet encoded *)
  const_var : int;
}

let create solver net =
  let const_var = Solver.new_var solver in
  Solver.add_clause solver [ Solver.neg_of const_var ];
  { solver; net; vars = Array.make (Net.num_vars net) (-1); const_var }

let solver t = t.solver

let rec var t v =
  if t.vars.(v) >= 0 then t.vars.(v)
  else begin
    match Net.node t.net v with
    | Net.Const -> t.const_var
    | Net.Input _ | Net.Reg _ | Net.Latch _ ->
      let sv = Solver.new_var t.solver in
      t.vars.(v) <- sv;
      sv
    | Net.And (a, b) ->
      let sa = slit t a in
      let sb = slit t b in
      let sv = Solver.new_var t.solver in
      t.vars.(v) <- sv;
      let c = Solver.pos sv in
      Solver.add_clause t.solver [ Solver.negate c; sa ];
      Solver.add_clause t.solver [ Solver.negate c; sb ];
      Solver.add_clause t.solver [ c; Solver.negate sa; Solver.negate sb ];
      sv
  end

and slit t l =
  let sv = var t (Lit.var l) in
  if Lit.is_neg l then Solver.neg_of sv else Solver.pos sv

let lit = slit

let state_var t v =
  if not (Net.is_state t.net v) then invalid_arg "Frame.state_var";
  Solver.pos (var t v)
