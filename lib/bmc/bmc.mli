(** Bounded model checking over a solver backend.

    The checker unrolls the netlist incrementally (one shared solver,
    cones encoded on demand) and asks, per depth, whether the target
    can be asserted at that time step.  Combined with a diameter bound
    [d] from the core library, [check ~depth:(d - 1)] returning
    [No_hit] constitutes a complete proof of [AG (not target)]
    (a bounded check of depth equal to the diameter is complete;
    Definition 3 makes the bound one greater than the classical graph
    diameter, hence hits can only occur at times [0 .. d - 1]). *)

type cex = {
  depth : int;  (** time step at which the target is hit *)
  inputs : (int * int * bool) list;
      (** (input variable, time, value) for every encoded frame *)
  init_x : (int * bool) list;
      (** resolution of the nondeterministic initial values *)
}

type outcome =
  | Hit of cex
  | No_hit of int  (** no hit at times [0 .. n] *)
  | Unknown of { after : int; why : string }
      (** stood down; no hit established at times [0 .. after] (which
          may be [from - 1], i.e. nothing at all).  [why] is the
          backend's structured reason: {!Backend.budget_reason} for an
          exhausted allowance, a node-limit or backend-unavailable
          reason otherwise. *)

type cert = {
  proof : Sat.Proof.t;  (** the discharge solver's clausal proof *)
  mutable goals : (int * Sat.Solver.lit) list;
      (** per refuted depth, the assumption literal standing for "the
          target holds at this time"; newest first.  A [No_hit d]
          outcome is certified by {!Sat.Drup.check} refuting every
          goal against the proof (see [Core.Certify.check_no_hit]). *)
}

val new_cert : unit -> cert

val check :
  ?from:int ->
  ?budget:Obs.Budget.t ->
  ?cert:cert ->
  ?backend:Backend.t ->
  Netlist.Net.t ->
  target:string ->
  depth:int ->
  outcome
(** Search depths [from .. depth] (inclusive) for a hit of the named
    target, solving with [backend] (default: the first backend of
    {!Backend.default}).  A [budget] is checked before each depth and
    threaded into each SAT call; exhaustion yields {!Unknown} carrying
    the deepest completed depth and a structured reason.  @raise Invalid_argument on an unknown target
    name. *)

val check_lit :
  ?from:int ->
  ?budget:Obs.Budget.t ->
  ?cert:cert ->
  ?backend:Backend.t ->
  Netlist.Net.t ->
  Netlist.Lit.t ->
  depth:int ->
  outcome

val replay : Netlist.Net.t -> Netlist.Lit.t -> cex -> bool
(** Replay a counterexample on the three-valued simulator and confirm
    the target is hit at [cex.depth]. *)

val frames_of_cex : Netlist.Net.t -> cex -> Netlist.Sim.value array array
(** Replay a counterexample and capture every vertex's value at each
    time step [0 .. depth] — ready for waveform dumping
    ({!Textio.Vcd}). *)

val prove :
  ?budget:Obs.Budget.t ->
  Netlist.Net.t ->
  target:string ->
  bound:int ->
  [ `Proved | `Cex of cex | `Unknown ]
(** Complete invariant check given a diameter bound: BMC to depth
    [bound - 1]; absence of hits is a proof.  [`Unknown] only under an
    exhausted [budget] — never treated as either verdict. *)
