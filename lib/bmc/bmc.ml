module Net = Netlist.Net
module Lit = Netlist.Lit
module Sim = Netlist.Sim
module Solver = Backend

type cex = {
  depth : int;
  inputs : (int * int * bool) list;
  init_x : (int * bool) list;
}

type outcome = Hit of cex | No_hit of int | Unknown of { after : int; why : string }

(* Everything needed to re-derive a No_hit answer independently: the
   solver's clausal proof plus, per refuted depth, the assumption
   literal whose refutation means "no hit at that time".  The goals
   are recorded here — outside the solver — so a fault that drops
   proof events cannot also drop the obligations. *)
type cert = {
  proof : Sat.Proof.t;
  mutable goals : (int * Solver.lit) list; (* (depth, target literal) *)
}

let new_cert () = { proof = Sat.Proof.create (); goals = [] }

let check_lit ?(from = 0) ?budget ?cert ?backend net target ~depth =
  let solver =
    match backend with
    | Some b -> Backend.instantiate b
    | None -> Backend.default_solver ()
  in
  (* attach before [Unroll.create]: the unroller emits clauses *)
  Option.iter (fun c -> Solver.set_proof solver c.proof) cert;
  let unroll = Encode.Unroll.create solver net in
  let give_up ~why t =
    (* a backend that cannot run at all is a configuration condition,
       not an exhausted allowance *)
    if not (Backend.is_unavailable why) then Obs.Budget.note_exhausted "bmc";
    Unknown { after = t - 1; why }
  in
  let expired () =
    match budget with Some b -> Obs.Budget.expired b | None -> false
  in
  let rec search t =
    if t > depth then No_hit depth
    else if expired () then give_up ~why:Backend.budget_reason t
    else begin
      Obs.Stats.max_gauge "bmc.depth_reached" t;
      Obs.Heartbeat.set_phase (Printf.sprintf "bmc@%d" t);
      (* one trace span per unrolled depth, attributed with the
         per-depth solver work, so per-depth cost curves fall straight
         out of a trace *)
      let c0 = Solver.num_conflicts solver in
      let p0 = Solver.num_propagations solver in
      let tl, (result, dt) =
        Obs.Trace.with_span_args "bmc.depth"
          ~args:[ ("depth", Obs.Trace.Int t) ]
          (fun () ->
            (* the unrolling of this time step is part of its cost *)
            let tl = Encode.Unroll.lit_at unroll target t in
            let r =
              Encode.Sat_obs.solve ~assumptions:[ tl ] ?budget
                ~span:"bmc.solve" solver
            in
            ( (tl, r),
              Obs.Trace.
                [
                  ("result", String (Encode.Sat_obs.result_name (fst r)));
                  ("conflicts", Int (Solver.num_conflicts solver - c0));
                  ("propagations", Int (Solver.num_propagations solver - p0));
                ] ))
      in
      Obs.Stats.add_span (Printf.sprintf "bmc.solve.depth%d" t) dt;
      match result with
      | Solver.Sat ->
        Obs.Stats.count "bmc.hits" 1;
        let inputs =
          List.map
            (fun (v, time, sl) -> (v, time, Solver.value solver sl))
            (Encode.Unroll.input_frames unroll ~upto:t)
        in
        Hit { depth = t; inputs; init_x = Encode.Unroll.init_x_assignments unroll }
      | Solver.Unsat ->
        Option.iter (fun c -> c.goals <- (t, tl) :: c.goals) cert;
        search (t + 1)
      | Solver.Unknown why -> give_up ~why t
    end
  in
  search from

let find_target net name =
  match List.assoc_opt name (Net.targets net) with
  | Some l -> l
  | None -> invalid_arg ("Bmc: unknown target " ^ name)

let check ?from ?budget ?cert ?backend net ~target ~depth =
  check_lit ?from ?budget ?cert ?backend net (find_target net target) ~depth

let replay net target cex =
  let init_table = Hashtbl.create 16 in
  List.iter (fun (v, b) -> Hashtbl.replace init_table v b) cex.init_x;
  let input_table = Hashtbl.create 64 in
  List.iter (fun (v, t, b) -> Hashtbl.replace input_table (v, t) b) cex.inputs;
  let init v =
    match Hashtbl.find_opt init_table v with
    | Some b -> Sim.value_of_bool b
    | None -> Sim.Vx
  in
  let s = Sim.create_with ~init net in
  let rec run t =
    Sim.step s (fun v ->
        match Hashtbl.find_opt input_table (v, t) with
        | Some b -> Sim.value_of_bool b
        | None -> Sim.V0);
    if t = cex.depth then Sim.value s target = Sim.V1 else run (t + 1)
  in
  run 0

let frames_of_cex net cex =
  let init_table = Hashtbl.create 16 in
  List.iter (fun (v, b) -> Hashtbl.replace init_table v b) cex.init_x;
  let input_table = Hashtbl.create 64 in
  List.iter (fun (v, t, b) -> Hashtbl.replace input_table (v, t) b) cex.inputs;
  let init v =
    match Hashtbl.find_opt init_table v with
    | Some b -> Sim.value_of_bool b
    | None -> Sim.Vx
  in
  let s = Sim.create_with ~init net in
  Array.init (cex.depth + 1) (fun t ->
      Sim.step s (fun v ->
          match Hashtbl.find_opt input_table (v, t) with
          | Some b -> Sim.value_of_bool b
          | None -> Sim.V0);
      Array.init (Net.num_vars net) (fun v -> Sim.value s (Lit.make v)))

let prove ?budget net ~target ~bound =
  if bound <= 0 then `Proved
  else
    match check ?budget net ~target ~depth:(bound - 1) with
    | No_hit _ -> `Proved
    | Hit cex -> `Cex cex
    | Unknown _ -> `Unknown
