module Net = Netlist.Net
module Lit = Netlist.Lit

let fail = Parse_error.fail

let parse text =
  (* keep original 1-based line numbers before discarding blanks, so
     diagnostics survive the filtering *)
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  (* truncated-file errors point just past the last non-blank line *)
  let eof_line =
    match List.rev lines with (n, _) :: _ -> n | [] -> 1
  in
  let int_at ~line s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> fail ~line "expected a number, got %s" s
  in
  let header, rest =
    match lines with
    | h :: rest -> (h, rest)
    | [] -> fail ~line:1 "empty input"
  in
  let m, i, l, o, a =
    let hline, htext = header in
    match String.split_on_char ' ' htext |> List.filter (( <> ) "") with
    | [ "aag"; m; i; l; o; a ] ->
      ( int_at ~line:hline m,
        int_at ~line:hline i,
        int_at ~line:hline l,
        int_at ~line:hline o,
        int_at ~line:hline a )
    | _ -> fail ~line:hline "expected 'aag M I L O A' header"
  in
  let ints ~line text =
    String.split_on_char ' ' text |> List.filter (( <> ) "")
    |> List.map (int_at ~line)
  in
  let take n rest =
    let rec go n acc rest =
      if n = 0 then (List.rev acc, rest)
      else
        match rest with
        | x :: tail -> go (n - 1) (x :: acc) tail
        | [] -> fail ~line:eof_line "truncated file"
    in
    go n [] rest
  in
  let input_lines, rest = take i rest in
  let latch_lines, rest = take l rest in
  let output_lines, rest = take o rest in
  let and_lines, rest = take a rest in
  (* symbol table and comments *)
  let symbols = Hashtbl.create 16 in
  List.iter
    (fun (_, line) ->
      if String.length line >= 2 then
        match line.[0] with
        | ('i' | 'l' | 'o') as kind -> (
          match String.index_opt line ' ' with
          | Some sp ->
            let idx = String.sub line 1 (sp - 1) in
            let name = String.sub line (sp + 1) (String.length line - sp - 1) in
            (match int_of_string_opt idx with
            | Some k -> Hashtbl.replace symbols (kind, k) name
            | None -> ())
          | None -> ())
        | _ -> ())
    rest;
  let net = Net.create () in
  (* aiger var -> our literal, built on demand *)
  let table : (int, Lit.t) Hashtbl.t = Hashtbl.create (m + 1) in
  Hashtbl.replace table 0 Lit.false_;
  let and_defs = Hashtbl.create (a + 1) in
  List.iter
    (fun (line, text) ->
      match ints ~line text with
      | [ lhs; r0; r1 ] ->
        if lhs land 1 = 1 then fail ~line "negated AND lhs";
        Hashtbl.replace and_defs (lhs / 2) (r0, r1, line)
      | _ -> fail ~line "bad AND line")
    and_lines;
  (* inputs and latches allocate variables up front *)
  List.iteri
    (fun k (line, text) ->
      match ints ~line text with
      | [ lit ] ->
        if lit land 1 = 1 || lit = 0 then fail ~line "bad input literal";
        let name =
          Option.value (Hashtbl.find_opt symbols ('i', k))
            ~default:(Printf.sprintf "i%d" k)
        in
        Hashtbl.replace table (lit / 2) (Net.add_input net name)
      | _ -> fail ~line "bad input line")
    input_lines;
  let pending = ref [] in
  List.iteri
    (fun k (line, text) ->
      match ints ~line text with
      | [ lit ] -> fail ~line "latch %d lacks next" lit
      | [ lit; next ] | [ lit; next; _ ] | [ lit; next; _; _ ] -> (
        if lit land 1 = 1 || lit = 0 then fail ~line "bad latch literal";
        let init =
          match ints ~line text with
          | [ _; _ ] | [ _; _; 0 ] -> Net.Init0
          | [ _; _; 1 ] -> Net.Init1
          | [ _; _; r ] when r = lit -> Net.Init_x
          | _ -> fail ~line "unsupported latch reset"
        in
        let name =
          Option.value (Hashtbl.find_opt symbols ('l', k))
            ~default:(Printf.sprintf "l%d" k)
        in
        let r = Net.add_reg net ~init name in
        Hashtbl.replace table (lit / 2) r;
        pending := (r, next, line) :: !pending)
      | _ -> fail ~line "bad latch line")
    latch_lines;
  (* ANDs on demand; [line] is the reference site, AND bodies use the
     stored definition line *)
  let visiting = Hashtbl.create 16 in
  let rec build_var ~line v =
    match Hashtbl.find_opt table v with
    | Some l -> l
    | None -> (
      match Hashtbl.find_opt and_defs v with
      | None -> fail ~line "undefined variable %d" v
      | Some (r0, r1, dline) ->
        if Hashtbl.mem visiting v then fail ~line:dline "combinational cycle";
        Hashtbl.replace visiting v ();
        let l =
          Net.add_and net (build_lit ~line:dline r0) (build_lit ~line:dline r1)
        in
        Hashtbl.remove visiting v;
        Hashtbl.replace table v l;
        l)
  and build_lit ~line al =
    Lit.xor_sign (build_var ~line (al / 2)) (al land 1 = 1)
  in
  (* materialize ANDs in file (row) order — a writer that lists
     operands before uses (ours does) then gets its creation order
     back verbatim, so write→parse→write is a fixpoint after one
     iteration; rows referencing later rows still resolve by
     recursion, and dangling cones are built too (the parse is
     faithful to the file, not to any particular cone) *)
  List.iter
    (fun (line, text) ->
      match ints ~line text with
      | [ lhs; _; _ ] -> ignore (build_var ~line (lhs / 2))
      | _ -> ())
    and_lines;
  List.iter
    (fun (r, next, line) -> Net.set_next net r (build_lit ~line next))
    !pending;
  List.iteri
    (fun k (line, text) ->
      match ints ~line text with
      | [ lit ] ->
        let name =
          Option.value (Hashtbl.find_opt symbols ('o', k))
            ~default:(Printf.sprintf "o%d" k)
        in
        let l = build_lit ~line lit in
        Net.add_output net name l;
        Net.add_target net name l
      | _ -> fail ~line "bad output line")
    output_lines;
  net

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text

let to_string net =
  if Net.phases net > 1 || Net.num_latches net > 0 then
    invalid_arg "Aiger.to_string: c-phase latch netlists have no AIGER form";
  (* assign compact AIGER variables: inputs, then registers, then ANDs *)
  let index : int array = Array.make (Net.num_vars net) 0 in
  let next = ref 1 in
  let assign v =
    index.(v) <- !next;
    incr next
  in
  let inputs = Net.inputs net in
  let regs = Net.regs net in
  List.iter assign inputs;
  List.iter assign regs;
  let ands = ref [] in
  Net.iter_nodes net (fun v node ->
      match node with
      | Net.And _ ->
        assign v;
        ands := v :: !ands
      | Net.Const | Net.Input _ | Net.Reg _ | Net.Latch _ -> ());
  let ands = List.rev !ands in
  let alit l = (2 * index.(Lit.var l)) + if Lit.is_neg l then 1 else 0 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "aag %d %d %d %d %d\n" (!next - 1) (List.length inputs)
       (List.length regs)
       (List.length (Net.outputs net))
       (List.length ands));
  List.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%d\n" (2 * index.(v)))) inputs;
  List.iter
    (fun v ->
      let r = Net.reg_of net v in
      let reset =
        match r.Net.r_init with
        | Net.Init0 -> "0"
        | Net.Init1 -> "1"
        | Net.Init_x -> string_of_int (2 * index.(v))
      in
      Buffer.add_string buf
        (Printf.sprintf "%d %d %s\n" (2 * index.(v)) (alit r.Net.next) reset))
    regs;
  List.iter
    (fun (_, l) -> Buffer.add_string buf (Printf.sprintf "%d\n" (alit l)))
    (Net.outputs net);
  List.iter
    (fun v ->
      match Net.node net v with
      | Net.And (a, b) ->
        Buffer.add_string buf
          (Printf.sprintf "%d %d %d\n" (2 * index.(v)) (alit a) (alit b))
      | Net.Const | Net.Input _ | Net.Reg _ | Net.Latch _ -> assert false)
    ands;
  (* symbol table *)
  List.iteri
    (fun k v ->
      match Net.node net v with
      | Net.Input name -> Buffer.add_string buf (Printf.sprintf "i%d %s\n" k name)
      | Net.Const | Net.And _ | Net.Reg _ | Net.Latch _ -> ())
    inputs;
  List.iteri
    (fun k v ->
      Buffer.add_string buf
        (Printf.sprintf "l%d %s\n" k (Net.reg_of net v).Net.r_name))
    regs;
  List.iteri
    (fun k (name, _) -> Buffer.add_string buf (Printf.sprintf "o%d %s\n" k name))
    (Net.outputs net);
  Buffer.contents buf

let write_file path net =
  let oc = open_out path in
  output_string oc (to_string net);
  close_out oc
