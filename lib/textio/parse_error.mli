(** The one exception every textual netlist reader raises on malformed
    input, carrying enough position to render a "file:line: message"
    diagnostic at the CLI boundary. *)

exception Parse_error of { line : int; msg : string }
(** [line] is 1-based; for errors only detectable after reading the
    whole input (e.g. a truncated file) it points at the last line. *)

val fail : line:int -> ('a, unit, string, 'b) format4 -> 'a
(** [fail ~line fmt ...] raises {!Parse_error} with the formatted
    message. *)
