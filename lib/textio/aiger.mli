(** ASCII AIGER ([aag]) reader/writer (Biere's AIGER format, with the
    1.9 reset extension).

    AIGER literal encoding (2*var, +1 for negation, variable 0 the
    constant false) coincides with {!Netlist.Lit}, so the mapping is
    direct.  Latch resets: [0]/[1] are constant initial values and a
    latch reset to its own literal is uninitialized ([Init_x]).
    Outputs are registered as both netlist outputs and verification
    targets, like {!Bench_io}.

    Level-sensitive latch netlists (phases > 1) have no AIGER
    representation and are rejected on write. *)

val parse : string -> Netlist.Net.t
(** @raise Parse_error.Parse_error on malformed input, with the
    1-based source line (truncated-file errors point at the last
    non-blank line). *)

val parse_file : string -> Netlist.Net.t
(** @raise Parse_error.Parse_error on malformed input.
    @raise Sys_error if the file cannot be read. *)

val to_string : Netlist.Net.t -> string
(** @raise Invalid_argument on latch-based (c-phase) netlists. *)

val write_file : string -> Netlist.Net.t -> unit
