(** Textual netlist interchange: ISCAS89 [.bench] and a native dump. *)

exception Parse_error = Parse_error.Parse_error
(** Re-exported so that callers can match [Textio.Parse_error
    {line; msg}] without reaching into the submodule. *)

module Bench_io = Bench_io
module Netfmt = Netfmt
module Aiger = Aiger
module Vcd = Vcd
