(** ISCAS89 [.bench] format reader and writer.

    Supported gate types: [AND], [NAND], [OR], [NOR], [XOR], [XNOR],
    [NOT], [BUFF], [DFF] (all with arbitrary arity where sensible), the
    constants [CONST0]/[CONST1], plus two extensions:

    - [DFF(d, i)] with [i] in [{0, 1, X}] selects the initial value
      (plain [DFF(d)] defaults to 0);
    - [LATCH(d, p)] declares a level-sensitive latch of clock phase
      [p]; the netlist's phase count is the maximum declared phase + 1.

    Every [OUTPUT] is registered both as a netlist output and as a
    verification target (the paper uses each primary output as a
    target for the ISCAS89 experiments). *)

val parse : string -> Netlist.Net.t
(** @raise Parse_error.Parse_error on malformed input, with the
    1-based line of the offending declaration. *)

val parse_file : string -> Netlist.Net.t
(** @raise Parse_error.Parse_error on malformed input.
    @raise Sys_error if the file cannot be read. *)

val to_string : Netlist.Net.t -> string
val write_file : string -> Netlist.Net.t -> unit
