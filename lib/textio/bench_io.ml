module Net = Netlist.Net
module Lit = Netlist.Lit

type def =
  | Dinput
  | Dgate of string * string list (* gate type, operand names *)

let tokenize_args s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let fail = Parse_error.fail

(* "NAME = GATE(a, b, c)" -> (NAME, GATE, [a;b;c]) *)
let parse_assignment ~line text =
  match String.index_opt text '=' with
  | None -> fail ~line "expected '=' in: %s" text
  | Some eq ->
    let name = String.trim (String.sub text 0 eq) in
    let rhs = String.trim (String.sub text (eq + 1) (String.length text - eq - 1)) in
    (match (String.index_opt rhs '(', String.rindex_opt rhs ')') with
    | Some l, Some r when r > l ->
      let gate = String.uppercase_ascii (String.trim (String.sub rhs 0 l)) in
      let args = tokenize_args (String.sub rhs (l + 1) (r - l - 1)) in
      (name, gate, args)
    | _, _ -> fail ~line "malformed right-hand side: %s" rhs)

let parse text =
  (* defs and outputs remember the 1-based line of their declaration
     so that errors detected during netlist construction still point
     into the source *)
  let defs : (string, def * int) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  let outputs = ref [] in
  let max_phase = ref 0 in
  let add_def ~line name d =
    if Hashtbl.mem defs name then fail ~line "duplicate definition of %s" name;
    Hashtbl.add defs name (d, line);
    order := name :: !order
  in
  String.split_on_char '\n' text
  |> List.iteri (fun i raw ->
         let line = i + 1 in
         let text =
           match String.index_opt raw '#' with
           | Some i -> String.sub raw 0 i
           | None -> raw
         in
         let text = String.trim text in
         if text <> "" then begin
           let upper = String.uppercase_ascii text in
           if String.length upper >= 6 && String.sub upper 0 6 = "INPUT(" then begin
             let name =
               String.trim
                 (String.sub text 6 (String.length text - 7))
             in
             add_def ~line name Dinput
           end
           else if String.length upper >= 7 && String.sub upper 0 7 = "OUTPUT(" then
             outputs :=
               (String.trim (String.sub text 7 (String.length text - 8)), line)
               :: !outputs
           else begin
             let name, gate, args = parse_assignment ~line text in
             if gate = "LATCH" then begin
               match args with
               | [ _; p ] -> (
                 match int_of_string_opt p with
                 | Some ph -> max_phase := max !max_phase ph
                 | None -> fail ~line "bad LATCH phase %s" p)
               | _ -> fail ~line "LATCH takes (data, phase)"
             end;
             add_def ~line name (Dgate (gate, args))
           end
         end);
  let net = Net.create ~phases:(!max_phase + 1) () in
  let built : (string, Lit.t) Hashtbl.t = Hashtbl.create 256 in
  let init_of ~line = function
    | "0" -> Net.Init0
    | "1" -> Net.Init1
    | "X" | "x" -> Net.Init_x
    | s -> fail ~line "bad initial value %s" s
  in
  let visiting : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let pending = ref [] in
  (* [line] is the position of the reference being resolved, so
     "undefined signal" blames the use site, while gate errors blame
     the signal's own definition line *)
  let rec build ~line name =
    match Hashtbl.find_opt built name with
    | Some l -> l
    | None ->
      if Hashtbl.mem visiting name then
        fail ~line "combinational cycle through %s" name;
      Hashtbl.add visiting name ();
      Fun.protect
        ~finally:(fun () -> Hashtbl.remove visiting name)
        (fun () ->
          match Hashtbl.find_opt defs name with
          | None -> fail ~line "undefined signal %s" name
          | Some (Dinput, _) ->
            let l = Net.add_input net name in
            Hashtbl.add built name l;
            l
          | Some (Dgate (gate, args), dline) ->
            build_gate ~line:dline name gate args)
  and build_gate ~line name gate args =
    match (gate, args) with
    | "DFF", (d :: rest) ->
      let init =
        match rest with
        | [] -> Net.Init0
        | [ i ] -> init_of ~line i
        | _ :: _ :: _ -> fail ~line "DFF takes (data[, init])"
      in
      let r = Net.add_reg net ~init name in
      Hashtbl.add built name r;
      (* defer the data cone: recursing here would thread the
         combinational-cycle check through the register boundary *)
      pending := `Reg (r, d, line) :: !pending;
      r
    | "LATCH", [ d; p ] ->
      let l = Net.add_latch net ~phase:(int_of_string p) name in
      Hashtbl.add built name l;
      pending := `Latch (l, d, line) :: !pending;
      l
    | _, _ ->
      let ops () = List.map (build ~line) args in
      let arity_error () = fail ~line "bad arity for %s at %s" gate name in
      let l =
        match gate with
        | "CONST0" -> Lit.false_
        | "CONST1" -> Lit.true_
        | "AND" -> Net.add_and_list net (ops ())
        | "NAND" -> Lit.neg (Net.add_and_list net (ops ()))
        | "OR" -> Net.add_or_list net (ops ())
        | "NOR" -> Lit.neg (Net.add_or_list net (ops ()))
        | "XOR" -> (
          match ops () with
          | [ a; b ] -> Net.add_xor net a b
          | a :: rest -> List.fold_left (Net.add_xor net) a rest
          | [] -> arity_error ())
        | "XNOR" -> (
          match ops () with
          | [ a; b ] -> Lit.neg (Net.add_xor net a b)
          | _ -> arity_error ())
        | "NOT" -> (
          match ops () with [ a ] -> Lit.neg a | _ -> arity_error ())
        | "BUFF" | "BUF" -> (
          match ops () with [ a ] -> a | _ -> arity_error ())
        | "MUX" -> (
          match ops () with
          | [ s; a; b ] -> Net.add_mux net ~sel:s ~t1:a ~t0:b
          | _ -> arity_error ())
        | other -> fail ~line "unknown gate type %s" other
      in
      Hashtbl.add built name l;
      l
  in
  let def_line name = snd (Hashtbl.find defs name) in
  (* build state elements first so that forward references resolve *)
  List.iter
    (fun name ->
      match Hashtbl.find defs name with
      | Dgate (("DFF" | "LATCH"), _), line -> ignore (build ~line name)
      | (Dinput | Dgate _), _ -> ())
    (List.rev !order);
  List.iter
    (fun name -> ignore (build ~line:(def_line name) name))
    (List.rev !order);
  (* data cones last; draining may enqueue more state elements *)
  let rec drain () =
    match !pending with
    | [] -> ()
    | item :: rest ->
      pending := rest;
      (match item with
      | `Reg (r, d, line) -> Net.set_next net r (build ~line d)
      | `Latch (l, d, line) -> Net.set_latch_data net l (build ~line d));
      drain ()
  in
  drain ();
  List.iter
    (fun (name, line) ->
      let l = build ~line name in
      Net.add_output net name l;
      Net.add_target net name l)
    (List.rev !outputs);
  net

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text

let to_string net =
  let buf = Buffer.create 4096 in
  let name_of = Array.make (Net.num_vars net) "" in
  (* Written text must always re-parse: every printed definition needs
     a unique name.  Names the writer itself synthesizes ("const0",
     "const1", gate/inverter/alias names) are part of the same
     namespace as declared input/register/latch names, so everything
     goes through one claim table; a collision — duplicate declared
     names, or an input literally called "n5" or "not_x" — gets a
     deterministic "_u<k>" suffix.  Synthesized gate names are claimed
     after all declared names so that a design that doesn't collide
     keeps exactly its declared spelling. *)
  let used = Hashtbl.create 64 in
  Hashtbl.replace used "const0" ();
  Hashtbl.replace used "const1" ();
  let claim base =
    let base = if base = "" then "sig" else base in
    if not (Hashtbl.mem used base) then begin
      Hashtbl.replace used base ();
      base
    end
    else begin
      let rec go k =
        let cand = Printf.sprintf "%s_u%d" base k in
        if Hashtbl.mem used cand then go (k + 1) else cand
      in
      let fresh = go 1 in
      Hashtbl.replace used fresh ();
      fresh
    end
  in
  Net.iter_nodes net (fun v node ->
      match node with
      | Net.Const -> name_of.(v) <- "const"
      | Net.Input s -> name_of.(v) <- claim s
      | Net.And _ -> ()
      | Net.Reg r -> name_of.(v) <- claim r.Net.r_name
      | Net.Latch l -> name_of.(v) <- claim l.Net.l_name);
  Net.iter_nodes net (fun v node ->
      match node with
      | Net.And _ -> name_of.(v) <- claim (Printf.sprintf "n%d" v)
      | _ -> ());
  let const_used = ref false in
  let not_emitted = Hashtbl.create 64 in
  let not_order = ref [] in
  (* name of a literal, emitting a NOT line (once) for negations *)
  let operand l =
    let v = Lit.var l in
    if v = 0 then begin
      const_used := true;
      if Lit.is_neg l then "const1" else "const0"
    end
    else if Lit.is_neg l then begin
      match Hashtbl.find_opt not_emitted v with
      | Some n -> n
      | None ->
        let n = claim ("not_" ^ name_of.(v)) in
        Hashtbl.add not_emitted v n;
        not_order := v :: !not_order;
        n
    end
    else name_of.(v)
  in
  let body = Buffer.create 4096 in
  Net.iter_nodes net (fun v node ->
      match node with
      | Net.Const -> ()
      | Net.Input _ ->
        Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" name_of.(v))
      | Net.And (a, b) ->
        Buffer.add_string body
          (Printf.sprintf "%s = AND(%s, %s)\n" name_of.(v) (operand a)
             (operand b))
      | Net.Reg r ->
        let init =
          match r.Net.r_init with
          | Net.Init0 -> "0"
          | Net.Init1 -> "1"
          | Net.Init_x -> "X"
        in
        Buffer.add_string body
          (Printf.sprintf "%s = DFF(%s, %s)\n" name_of.(v) (operand r.Net.next)
             init)
      | Net.Latch l ->
        Buffer.add_string body
          (Printf.sprintf "%s = LATCH(%s, %d)\n" name_of.(v)
             (operand l.Net.l_data) l.Net.l_phase));
  List.iter
    (fun (name, l) ->
      let op = operand l in
      if op = name then
        (* the signal itself carries the output name: a bare reference *)
        Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" name)
      else begin
        (* the alias line defines [name], so it too must be unique *)
        let name = claim name in
        Buffer.add_string body (Printf.sprintf "%s = BUFF(%s)\n" name op);
        Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" name)
      end)
    (Net.outputs net);
  if !const_used then begin
    Buffer.add_string buf "const0 = CONST0()\n";
    Buffer.add_string buf "const1 = CONST1()\n"
  end;
  Buffer.add_buffer buf body;
  (* Inverter aliases go after the body so a re-parse creates gates in
     body (vertex-id) order: resolving a NOT whose operand is already
     built allocates nothing, whereas a leading NOT block would drag
     whole cones in first-use order and renumber them — write→parse→
     write must reach a fixpoint after one iteration.  (DFF/LATCH data
     references never recurse at all: the parser defers data cones.) *)
  List.iter
    (fun v ->
      let n = Hashtbl.find not_emitted v in
      Buffer.add_string buf (Printf.sprintf "%s = NOT(%s)\n" n name_of.(v)))
    (List.rev !not_order);
  Buffer.contents buf

let write_file path net =
  let oc = open_out path in
  output_string oc (to_string net);
  close_out oc
