exception Parse_error of { line : int; msg : string }

let fail ~line fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { line; msg })) fmt
