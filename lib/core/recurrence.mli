(** Recurrence diameter (Biere et al. [2], initial-state variant of
    Kroening & Strichman [6]): the longest loop-free state path from an
    initial state, computed as a series of SAT problems.

    The baseline the paper argues against: complete but NP-hard per
    depth, and possibly exponentially looser than the true diameter
    (e.g. a free-running mod-2^n counter has recurrence diameter 2^n -
    1 even when the property's diameter is small). *)

type result = {
  bound : Sat_bound.t;
      (** recurrence diameter + 1: a sound BMC completeness threshold,
          comparable with {!Bound.t} *)
  path_length : int;  (** the longest irredundant path found *)
  sat_calls : int;
  exhausted : bool;
      (** the resource [budget] ran out before the search concluded
          (distinct from exceeding [limit], which is a configured
          give-up, not a budget event) *)
  why : string option;
      (** the structured stand-down reason when [exhausted]:
          {!Backend.budget_reason}, a node-limit string, or a
          backend-unavailable string passed through from the solver *)
}

type evidence =
  | Structural
      (** the target cone holds no registers, so the bound is a
          structural fact needing no SAT answer (like {!Bound}) *)
  | Refutation of Sat.Proof.event list
      (** clausal proof of the closing Unsat answer — "no irredundant
          path of length [bound] exists"; checking that it derives the
          empty clause (see [Core.Certify.check_recurrence]) certifies
          the bound *)

type cert = { mutable evidence : evidence option }
(** Only meaningful when {!result.bound} is finite; give-ups and
    budget exhaustion leave it empty. *)

val new_cert : unit -> cert

val compute :
  ?limit:int ->
  ?bounded_coi:bool ->
  ?budget:Obs.Budget.t ->
  ?cert:cert ->
  ?backend:Backend.t ->
  Netlist.Net.t ->
  Netlist.Lit.t ->
  result
(** Restricts to the cone of influence of the target literal.  Gives
    up (returning [Sat_bound.huge]) once the path length exceeds
    [limit] (default 64): the series of SAT problems grows
    quadratically.  A [budget] is checked between extensions and
    threaded into each SAT call; exhaustion also returns
    [Sat_bound.huge], with [exhausted = true].

    [bounded_coi] enables Kroening & Strichman's bounded
    cone-of-influence tightening [6] (cited in the paper's footnote):
    frame [j] of a length-[k] path only needs to be distinguished from
    earlier frames on the registers within [k - j] dependency steps of
    the target, which can shorten the longest "irredundant" path
    dramatically — a deep pipeline drops from an exponential search to
    a handful of frames.  This variant ranges over free start states
    (init-anchoring would break the monotonicity that lets the first
    UNSAT close the search) and re-encodes per step instead of solving
    incrementally. *)
