module Net = Netlist.Net
module Lit = Netlist.Lit
module Solver = Backend

type outcome =
  | Proved of int
  | Cex of Bmc.cex
  | Unknown of int
  | Exhausted of { k : int; why : string }

(* certificate for a [Proved k] outcome: the base case is an ordinary
   BMC certificate to depth k; the step case is the step solver's
   proof together with the assumption literal ("target at frame k+1")
   whose refutation is the induction step *)
type cert = {
  mutable base : Bmc.cert option;
  mutable step : (Sat.Proof.event list * Solver.lit) option;
}

let new_cert () = { base = None; step = None }

(* chained free-initial-state frames, as in the van Eijk engine *)
let chain_frames solver net k =
  let frames = Array.init (k + 1) (fun _ -> Encode.Frame.create solver net) in
  for i = 0 to k - 1 do
    List.iter
      (fun r ->
        let next_i = Encode.Frame.lit frames.(i) (Net.reg_of net r).Net.next in
        let s_next = Encode.Frame.state_var frames.(i + 1) r in
        Solver.add_clause solver [ Solver.negate next_i; s_next ];
        Solver.add_clause solver [ next_i; Solver.negate s_next ])
      (Net.regs net)
  done;
  frames

let add_distinct solver net frames i j =
  let diffs =
    List.map
      (fun r ->
        let a = Encode.Frame.state_var frames.(i) r in
        let b = Encode.Frame.state_var frames.(j) r in
        let d = Solver.pos (Solver.new_var solver) in
        Solver.add_clause solver [ Solver.negate d; a; b ];
        Solver.add_clause solver [ Solver.negate d; Solver.negate a; Solver.negate b ];
        d)
      (Net.regs net)
  in
  Solver.add_clause solver diffs

(* step case: from a free state, k hit-free steps force step k+1 to be
   hit-free *)
let step_holds ~unique ?budget ?cert ?backend net target k =
  let solver =
    match backend with
    | Some b -> Backend.instantiate b
    | None -> Backend.default_solver ()
  in
  let proof =
    Option.map
      (fun _ ->
        let p = Sat.Proof.create () in
        Solver.set_proof solver p;
        p)
      cert
  in
  let frames = chain_frames solver net (k + 1) in
  for i = 0 to k do
    Solver.add_clause solver [ Solver.negate (Encode.Frame.lit frames.(i) target) ]
  done;
  if unique then
    for i = 0 to k do
      for j = i + 1 to k + 1 do
        add_distinct solver net frames i j
      done
    done;
  let goal = Encode.Frame.lit frames.(k + 1) target in
  match
    fst
      (Encode.Sat_obs.solve ~assumptions:[ goal ] ?budget
         ~span:"induction.solve" solver)
  with
  | Solver.Unsat ->
    Option.iter
      (fun c ->
        c.step <- Some (Sat.Proof.events (Option.get proof), goal))
      cert;
    `Holds
  | Solver.Sat -> `Fails
  | Solver.Unknown why -> `Unknown why

let prove ?(max_k = 32) ?(unique = true) ?budget ?cert ?backend net ~target =
  if Net.num_latches net > 0 then
    invalid_arg "Induction.prove: register netlists only";
  let tlit =
    match List.assoc_opt target (Net.targets net) with
    | Some l -> l
    | None -> invalid_arg ("Induction.prove: unknown target " ^ target)
  in
  let give_up ?(why = Backend.budget_reason) k =
    if not (Backend.is_unavailable why) then
      Obs.Budget.note_exhausted "induction";
    Exhausted { k; why }
  in
  let expired () =
    match budget with Some b -> Obs.Budget.expired b | None -> false
  in
  (* a fresh BMC certificate per base check: check_lit builds a fresh
     solver each call, and only the final k's base matters *)
  let base_cert () =
    Option.map
      (fun c ->
        let bc = Bmc.new_cert () in
        c.base <- Some bc;
        bc)
      cert
  in
  (* degenerate case: no state at all *)
  if Net.regs net = [] then begin
    match Bmc.check_lit ?budget ?cert:(base_cert ()) ?backend net tlit ~depth:0 with
    | Bmc.Hit cex -> Cex cex
    | Bmc.No_hit _ -> Proved 0
    | Bmc.Unknown { why; _ } -> give_up ~why 0
  end
  else begin
    let rec go k =
      if k > max_k then Unknown max_k
      else if expired () then give_up k
      else begin
        (* base case: no hit within the first k steps *)
        match Bmc.check_lit ?budget ?cert:(base_cert ()) ?backend net tlit ~depth:k with
        | Bmc.Hit cex -> Cex cex
        | Bmc.Unknown { why; _ } -> give_up ~why k
        | Bmc.No_hit _ -> (
          match step_holds ~unique ?budget ?cert ?backend net tlit k with
          | `Holds -> Proved k
          | `Fails -> go (k + 1)
          | `Unknown why -> give_up ~why k)
      end
    in
    go 0
  end
