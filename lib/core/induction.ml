module Net = Netlist.Net
module Lit = Netlist.Lit
module Solver = Sat.Solver

type outcome =
  | Proved of int
  | Cex of Bmc.cex
  | Unknown of int
  | Exhausted of int

(* chained free-initial-state frames, as in the van Eijk engine *)
let chain_frames solver net k =
  let frames = Array.init (k + 1) (fun _ -> Encode.Frame.create solver net) in
  for i = 0 to k - 1 do
    List.iter
      (fun r ->
        let next_i = Encode.Frame.lit frames.(i) (Net.reg_of net r).Net.next in
        let s_next = Encode.Frame.state_var frames.(i + 1) r in
        Solver.add_clause solver [ Solver.negate next_i; s_next ];
        Solver.add_clause solver [ next_i; Solver.negate s_next ])
      (Net.regs net)
  done;
  frames

let add_distinct solver net frames i j =
  let diffs =
    List.map
      (fun r ->
        let a = Encode.Frame.state_var frames.(i) r in
        let b = Encode.Frame.state_var frames.(j) r in
        let d = Solver.pos (Solver.new_var solver) in
        Solver.add_clause solver [ Solver.negate d; a; b ];
        Solver.add_clause solver [ Solver.negate d; Solver.negate a; Solver.negate b ];
        d)
      (Net.regs net)
  in
  Solver.add_clause solver diffs

(* step case: from a free state, k hit-free steps force step k+1 to be
   hit-free *)
let step_holds ~unique ?budget net target k =
  let solver = Solver.create () in
  let frames = chain_frames solver net (k + 1) in
  for i = 0 to k do
    Solver.add_clause solver [ Solver.negate (Encode.Frame.lit frames.(i) target) ]
  done;
  if unique then
    for i = 0 to k do
      for j = i + 1 to k + 1 do
        add_distinct solver net frames i j
      done
    done;
  match
    fst
      (Encode.Sat_obs.solve
         ~assumptions:[ Encode.Frame.lit frames.(k + 1) target ]
         ?budget ~span:"induction.solve" solver)
  with
  | Solver.Unsat -> `Holds
  | Solver.Sat -> `Fails
  | Solver.Unknown -> `Unknown

let prove ?(max_k = 32) ?(unique = true) ?budget net ~target =
  if Net.num_latches net > 0 then
    invalid_arg "Induction.prove: register netlists only";
  let tlit =
    match List.assoc_opt target (Net.targets net) with
    | Some l -> l
    | None -> invalid_arg ("Induction.prove: unknown target " ^ target)
  in
  let give_up k =
    Obs.Budget.note_exhausted "induction";
    Exhausted k
  in
  let expired () =
    match budget with Some b -> Obs.Budget.expired b | None -> false
  in
  (* degenerate case: no state at all *)
  if Net.regs net = [] then begin
    match Bmc.check_lit ?budget net tlit ~depth:0 with
    | Bmc.Hit cex -> Cex cex
    | Bmc.No_hit _ -> Proved 0
    | Bmc.Unknown _ -> give_up 0
  end
  else begin
    let rec go k =
      if k > max_k then Unknown max_k
      else if expired () then give_up k
      else begin
        (* base case: no hit within the first k steps *)
        match Bmc.check_lit ?budget net tlit ~depth:k with
        | Bmc.Hit cex -> Cex cex
        | Bmc.Unknown _ -> give_up k
        | Bmc.No_hit _ -> (
          match step_holds ~unique ?budget net tlit k with
          | `Holds -> Proved k
          | `Fails -> go (k + 1)
          | `Unknown -> give_up k)
      end
    in
    go 0
  end
