module Net = Netlist.Net
module Lit = Netlist.Lit
module Coi = Netlist.Coi

type t = {
  bound : Sat_bound.t;
  analysis : Classify.analysis;
  coi_regs : int;
}

(* Count fanout references of each vertex (for input freshness). *)
let fanout_counts net =
  let counts = Array.make (Net.num_vars net) 0 in
  Net.iter_nodes net (fun _ node ->
      let touch l = counts.(Lit.var l) <- counts.(Lit.var l) + 1 in
      match node with
      | Net.Const | Net.Input _ -> ()
      | Net.And (a, b) ->
        touch a;
        touch b
      | Net.Reg r -> touch r.Net.next
      | Net.Latch l -> touch l.Net.l_data);
  counts

(* A vertex is FREE when it is trace-equivalent to a fresh primary
   input: any valuation is producible at any time step independently of
   other time steps.  This is Definition 3's second worked example: an
   input, or a chain of registers with nondeterministic initial values
   whose sources fan out nowhere else (the paper's i0 -> r1 -> r2 with
   input-driven initial values has d(r2) = 1).  [slack] is the number
   of fanout references allowed at the top of the chain: 1 for a chain
   link, 2 for an XOR operand (the AIG decomposition of XOR references
   each operand twice). *)
let rec is_free net fanouts ~slack v =
  match Net.node net v with
  | Net.Input _ -> fanouts.(v) <= slack
  | Net.Reg r ->
    r.Net.r_init = Net.Init_x
    && fanouts.(v) <= slack
    &&
    let u = Lit.var r.Net.next in
    is_free net fanouts ~slack:1 u
  | Net.Const | Net.And _ | Net.Latch _ -> false

let is_fresh_input net fanouts l =
  is_free net fanouts ~slack:2 (Lit.var l)

(* XOR recognition on the strashed AIG:
   a ^ b = ~( ~(a & ~b) & ~(~a & b) ), so an XOR is a negated AND of
   two negated ANDs whose operand pairs are element-wise complements.
   The XOR operands are then one inner AND's operands, one of them
   complemented. *)
let as_xor net l =
  if not (Lit.is_neg l) then None
  else
    match Net.node net (Lit.var l) with
    | Net.And (p, q) when Lit.is_neg p && Lit.is_neg q -> (
      match (Net.node net (Lit.var p), Net.node net (Lit.var q)) with
      | Net.And (a1, b1), Net.And (a2, b2) ->
        if
          (Lit.equal a2 (Lit.neg a1) && Lit.equal b2 (Lit.neg b1))
          || (Lit.equal a2 (Lit.neg b1) && Lit.equal b2 (Lit.neg a1))
        then Some (a1, Lit.neg b1)
        else None
      | (Net.Const | Net.Input _ | Net.Reg _ | Net.Latch _), _
      | _, (Net.Const | Net.Input _ | Net.Reg _ | Net.Latch _) ->
        None)
    | Net.And _ | Net.Const | Net.Input _ | Net.Reg _ | Net.Latch _ -> None

let controlled_with net fanouts l =
  match Net.node net (Lit.var l) with
  | Net.Input _ | Net.Const -> true
  | Net.Reg _ ->
    (* a free-register chain is trace-equivalent to an input; the
       target itself may fan out arbitrarily *)
    is_free net fanouts ~slack:max_int (Lit.var l)
  | Net.Latch _ -> false
  | Net.And _ -> (
    match as_xor net l with
    | Some (a, b) ->
      is_fresh_input net fanouts a || is_fresh_input net fanouts b
    | None -> (
      (* also accept the complement of an XOR *)
      match as_xor net (Lit.neg l) with
      | Some (a, b) ->
        is_fresh_input net fanouts a || is_fresh_input net fanouts b
      | None -> false))

let input_controlled net l = controlled_with net (fanout_counts net) l

let target net l =
  Obs.Stats.time "bound.target" (fun () ->
      Obs.Stats.count "bound.targets_analyzed" 1;
      let cone = Coi.of_lits net [ l ] in
      let coi_regs =
        List.length (Coi.regs_in net cone)
        + List.length (Coi.latches_in net cone)
      in
      let analysis = Classify.analyze ~within:cone net in
      let bound =
        if coi_regs = 0 || input_controlled net l then Sat_bound.of_int 1
        else begin
          Compose.bound_for net analysis l
        end
      in
      { bound; analysis; coi_regs })

let target_named net name =
  match List.assoc_opt name (Net.targets net) with
  | Some l -> target net l
  | None -> invalid_arg ("Bound.target_named: unknown target " ^ name)

(* For a whole target list, one netlist-level analysis suffices: the
   levelized composition restricts itself to each target's cone, so
   classifying once is equivalent to classifying per cone. *)
let all_targets net =
  Obs.Stats.time "bound.all_targets" (fun () ->
      let analysis = Classify.analyze net in
      let fanouts = fanout_counts net in
      let controlled l = controlled_with net fanouts l in
      List.map
        (fun (name, l) ->
          Obs.Stats.count "bound.targets_analyzed" 1;
          let cone = Coi.of_lits net [ l ] in
          let coi_regs =
            List.length (Coi.regs_in net cone)
            + List.length (Coi.latches_in net cone)
          in
          let bound =
            if coi_regs = 0 || controlled l then Sat_bound.of_int 1
            else Compose.bound_for net analysis l
          in
          (name, { bound; analysis; coi_regs }))
        (Net.targets net))
