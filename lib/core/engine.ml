module Net = Netlist.Net
module Lit = Netlist.Lit
module Stats = Obs.Stats

type config = {
  cutoff : int;
  probe_depth : int;
  enlargement_k : int;
  enlargement_reg_limit : int;
  recurrence_limit : int;
  induction_max_k : int;
}

let default =
  {
    cutoff = 50;
    probe_depth = 10;
    enlargement_k = 3;
    enlargement_reg_limit = 18;
    recurrence_limit = 48;
    induction_max_k = 16;
  }

type attempt = {
  strategy : string;
  reason : string;
  elapsed_s : float;
  bound : Sat_bound.t option;
}

type verdict =
  | Proved of { strategy : string; depth : int }
  | Violated of { strategy : string; cex : Bmc.cex }
  | Inconclusive of { attempts : attempt list }

let pp_verdict ppf = function
  | Proved { strategy; depth } ->
    Format.fprintf ppf "PROVED by %s (complete to depth %d)" strategy depth
  | Violated { strategy; cex } ->
    Format.fprintf ppf "VIOLATED at time %d (found by %s)" cex.Bmc.depth
      strategy
  | Inconclusive { attempts } ->
    Format.fprintf ppf "INCONCLUSIVE after %d strategies:"
      (List.length attempts);
    List.iter
      (fun a ->
        Format.fprintf ppf "@.  %-20s %s" a.strategy a.reason;
        (match a.bound with
        | Some b -> Format.fprintf ppf " [bound %s]" (Sat_bound.to_string b)
        | None -> ());
        Format.fprintf ppf " (%.1fms)" (1e3 *. a.elapsed_s))
      attempts

let discharge_depth bound =
  if Sat_bound.is_huge bound || bound <= 0 then None else Some (bound - 1)

exception Done of verdict

(* the one distinguished stand-down reason: resource budget ran out,
   as opposed to a strategy being inapplicable or giving up *)
let budget_reason = "budget-exhausted"

(* prefix of every certification-failure stand-down reason *)
let cert_fail_reason = "certification-failed"

let n_strategies = 7

let () = Stats.declare [ "engine.cert_ok"; "engine.cert_fail" ]

let verify ?(config = default) ?(budget = Obs.Budget.unlimited) ?(certify = false)
    ?proof_sink net ~target =
  if not (List.mem_assoc target (Net.targets net)) then
    invalid_arg ("Engine.verify: unknown target " ^ target);
  (* a proof sink only ever receives certified proofs *)
  let certify = certify || proof_sink <> None in
  let tlit = List.assoc target (Net.targets net) in
  let attempts = ref [] in
  let remaining = ref n_strategies in
  (* Gate a candidate verdict behind its certification.  Certification
     is a safety net, so any failure — including an exception escaping
     a checker — downgrades the candidate to a stand-down with the
     distinguished reason and lets the ladder continue; it never
     crashes the engine and never lets an uncertified Proved/Violated
     through. *)
  let certified ~stand_down check verdict =
    if not certify then raise (Done verdict)
    else begin
      match try check () with exn -> Error (Printexc.to_string exn) with
      | Ok () ->
        Stats.count "engine.cert_ok" 1;
        raise (Done verdict)
      | Error msg ->
        Stats.count "engine.cert_fail" 1;
        stand_down (cert_fail_reason ^ ": " ^ msg)
    end
  in
  (* each strategy runs under a Stats span and receives scoped
     [stand_down]/[discharge] callbacks so the recorded attempt carries
     its elapsed time and the translated bound it computed, if any.

     Deadlines degrade gracefully: every strategy gets an equal slice
     of whatever wall-clock remains (so an early strategy overrunning
     only squeezes, never starves, the later ones), a strategy whose
     slice runs out records the distinguished [budget_reason] attempt
     and the ladder continues — partial results such as computed bounds
     are kept in the attempt log either way. *)
  let strategy name f =
    let slice = Obs.Budget.slice budget ~ways:(max 1 !remaining) in
    let t0 = Stats.now () in
    let bound_seen = ref None in
    let stand_down reason =
      if String.equal reason budget_reason then begin
        Stats.count "engine.budget_exhausted" 1;
        Obs.Budget.note_exhausted "engine"
      end;
      attempts :=
        {
          strategy = name;
          reason;
          elapsed_s = Stats.now () -. t0;
          bound = !bound_seen;
        }
        :: !attempts
    in
    (* a finite translated bound below the cutoff closes the problem
       with one complete BMC run on the ORIGINAL netlist.  [raw] is
       the bound as computed on the transformed netlist; [translator]
       carries it back.  Under certification the arithmetic is
       recomputed from the recorded theorem steps and the discharge
       run's Unsat answers re-check through the DRUP verifier. *)
    let discharge ?(translator = Translate.identity) ?(pre = fun () -> Ok ())
        raw =
      let bound = translator.Translate.apply raw in
      bound_seen := Some bound;
      if Sat_bound.is_huge bound then
        stand_down "no practically useful bound"
      else if bound >= config.cutoff then
        stand_down
          (Printf.sprintf "bound %s above cutoff %d"
             (Sat_bound.to_string bound) config.cutoff)
      else begin
        (* [pre] certifies the raw bound's own provenance when it came
           from a SAT answer (recurrence); arithmetic re-derives the
           translation *)
        let arithmetic () =
          match pre () with
          | Error _ as e -> e
          | Ok () ->
            Certify.check_translation ~raw ~steps:translator.Translate.steps
              ~claimed:bound
        in
        match discharge_depth bound with
        | None ->
          (* bound 0: the target is unhittable at any depth; the
             BMC run would be vacuous (and [depth - 1] negative) *)
          certified ~stand_down arithmetic
            (Proved { strategy = name; depth = 0 })
        | Some depth -> (
          let cert = if certify then Some (Bmc.new_cert ()) else None in
          match Bmc.check ?cert ~budget:slice net ~target ~depth with
          | Bmc.No_hit d ->
            certified ~stand_down
              (fun () ->
                match arithmetic () with
                | Error _ as e -> e
                | Ok () -> (
                  let c = Option.get cert in
                  match Certify.check_no_hit ~depth:d c with
                  | Ok () ->
                    Option.iter (fun sink -> sink c.Bmc.proof) proof_sink;
                    Ok ()
                  | Error _ as e -> e))
              (Proved { strategy = name; depth = d })
          | Bmc.Hit cex ->
            certified ~stand_down
              (fun () -> Certify.check_cex net tlit cex)
              (Violated { strategy = name; cex })
          | Bmc.Unknown _ -> stand_down budget_reason)
      end
    in
    if Obs.Budget.expired budget then stand_down budget_reason
    else begin
      (* one trace span per strategy slice; the Done unwind that
         delivers a verdict is converted to an "outcome" attribute
         rather than recorded as an exception *)
      let won =
        Obs.Trace.with_span_args ("engine." ^ name)
          ~args:[ ("target", Obs.Trace.String target) ]
          (fun () ->
            match
              Stats.time ("engine." ^ name) (fun () ->
                  f ~budget:slice ~stand_down ~discharge)
            with
            | () -> (None, [ ("outcome", Obs.Trace.String "stand-down") ])
            | exception Done v ->
              let outcome =
                match v with
                | Proved _ -> "proved"
                | Violated _ -> "violated"
                | Inconclusive _ -> "inconclusive"
              in
              (Some v, [ ("outcome", Obs.Trace.String outcome) ]))
      in
      match won with Some v -> raise (Done v) | None -> ()
    end;
    decr remaining
  in
  let latch_based = Net.num_latches net > 0 in
  let run_ladder () =
    try
      (* 1. shallow probe *)
      strategy "bmc-probe" (fun ~budget ~stand_down ~discharge:_ ->
          match Bmc.check ~budget net ~target ~depth:config.probe_depth with
          | Bmc.Hit cex ->
            certified ~stand_down
              (fun () -> Certify.check_cex net tlit cex)
              (Violated { strategy = "bmc-probe"; cex })
          | Bmc.No_hit _ -> stand_down "no shallow counterexample"
          | Bmc.Unknown _ -> stand_down budget_reason);
      (* bounds are computed on the register-based view; for latch
         designs that is the phase abstraction, translated by Theorem 3 *)
      let reg_view, fold =
        if latch_based then begin
          let abstracted, translator = Pipeline.phase_front net in
          (abstracted, translator)
        end
        else (net, Translate.identity)
      in
      (* 2. structural bound, untransformed *)
      strategy "structural-bound" (fun ~budget:_ ~stand_down ~discharge ->
          match List.assoc_opt target (Net.targets reg_view) with
          | None -> stand_down "target lost by phase abstraction"
          | Some l ->
            discharge ~translator:fold (Bound.target reg_view l).Bound.bound);
      (* 3. COM (Theorem 1) *)
      strategy "com+bound" (fun ~budget ~stand_down ~discharge ->
          let com_report = Pipeline.com ~budget reg_view in
          match
            List.find_opt
              (fun t -> String.equal t.Pipeline.target target)
              com_report.Pipeline.targets
          with
          | Some t ->
            discharge
              ~translator:(Translate.compose fold t.Pipeline.translator)
              t.Pipeline.raw_bound
          | None -> stand_down "target reduced away");
      (* 4. COM,RET,COM (Theorems 1 + 2) *)
      strategy "com-ret-com+bound" (fun ~budget ~stand_down ~discharge ->
          let crc_report = Pipeline.com_ret_com ~budget reg_view in
          match
            List.find_opt
              (fun t -> String.equal t.Pipeline.target target)
              crc_report.Pipeline.targets
          with
          | Some t ->
            discharge
              ~translator:(Translate.compose fold t.Pipeline.translator)
              t.Pipeline.raw_bound
          | None -> stand_down "target reduced away");
      (* 5. target enlargement (Theorem 4) — register view only, and the
         hittability bound is still a valid completeness threshold for
         this very target *)
      strategy "enlargement+bound" (fun ~budget ~stand_down ~discharge ->
          if latch_based then stand_down "latch-based design"
          else begin
            match
              Transform.Enlarge.run ~reg_limit:config.enlargement_reg_limit
                ?max_nodes:(Obs.Budget.bdd_nodes budget) net ~target
                ~k:config.enlargement_k
            with
            | Error (Transform.Enlarge.Unsuitable reason) -> stand_down reason
            | Error (Transform.Enlarge.Node_limit _) ->
              stand_down budget_reason
            | Ok r ->
              if r.Transform.Enlarge.empty then begin
                (* every hit, if any, occurs within the first k steps;
                   clamp so k = 0 (nothing hittable at all) does not
                   turn into a depth -1 run.  Note the BDD emptiness
                   result itself has no certificate — only this BMC
                   run is certified *)
                let cert = if certify then Some (Bmc.new_cert ()) else None in
                match
                  Bmc.check ?cert ~budget net ~target
                    ~depth:(max 0 (config.enlargement_k - 1))
                with
                | Bmc.No_hit d ->
                  certified ~stand_down
                    (fun () ->
                      let c = Option.get cert in
                      match Certify.check_no_hit ~depth:d c with
                      | Ok () ->
                        Option.iter (fun sink -> sink c.Bmc.proof) proof_sink;
                        Ok ()
                      | Error _ as e -> e)
                    (Proved { strategy = "enlargement-empty"; depth = d })
                | Bmc.Hit cex ->
                  certified ~stand_down
                    (fun () -> Certify.check_cex net tlit cex)
                    (Violated { strategy = "enlargement-empty"; cex })
                | Bmc.Unknown _ -> stand_down budget_reason
              end
              else begin
                let name =
                  Printf.sprintf "%s#enl%d" target config.enlargement_k
                in
                let b = Bound.target_named r.Transform.Enlarge.net name in
                discharge
                  ~translator:
                    (Translate.target_enlargement ~k:config.enlargement_k)
                  b.Bound.bound
              end
          end);
      (* 6. bounded-COI recurrence diameter *)
      strategy "recurrence-bcoi" (fun ~budget ~stand_down ~discharge ->
          match List.assoc_opt target (Net.targets reg_view) with
          | None -> stand_down "target lost by phase abstraction"
          | Some l ->
            let rcert = if certify then Some (Recurrence.new_cert ()) else None in
            let r =
              Recurrence.compute ~limit:config.recurrence_limit
                ~bounded_coi:true ~budget ?cert:rcert reg_view l
            in
            if r.Recurrence.exhausted then stand_down budget_reason
            else
              let pre () =
                match rcert with
                | Some c -> Certify.check_recurrence c
                | None -> Ok ()
              in
              discharge ~translator:fold ~pre r.Recurrence.bound);
      (* 7. temporal induction *)
      strategy "k-induction" (fun ~budget ~stand_down ~discharge:_ ->
          if latch_based then stand_down "latch-based design"
          else begin
            let icert = if certify then Some (Induction.new_cert ()) else None in
            match
              Induction.prove ~max_k:config.induction_max_k ~budget ?cert:icert
                net ~target
            with
            | Induction.Proved k ->
              certified ~stand_down
                (fun () ->
                  let c = Option.get icert in
                  match Certify.check_induction ~k c with
                  | Ok () ->
                    Option.iter
                      (fun sink ->
                        match c.Induction.base with
                        | Some bc -> sink bc.Bmc.proof
                        | None -> ())
                      proof_sink;
                    Ok ()
                  | Error _ as e -> e)
                (Proved { strategy = "k-induction"; depth = k })
            | Induction.Cex cex ->
              certified ~stand_down
                (fun () -> Certify.check_cex net tlit cex)
                (Violated { strategy = "k-induction"; cex })
            | Induction.Unknown k ->
              stand_down (Printf.sprintf "gave up at k = %d" k)
            | Induction.Exhausted _ -> stand_down budget_reason
          end);
      Inconclusive { attempts = List.rev !attempts }
    with Done v -> v
  in
  let verdict =
    Obs.Trace.with_span_args "engine.verify"
      ~args:[ ("target", Obs.Trace.String target) ]
      (fun () ->
        let v = run_ladder () in
        let outcome =
          match v with
          | Proved _ -> "proved"
          | Violated _ -> "violated"
          | Inconclusive _ -> "inconclusive"
        in
        (v, [ ("verdict", Obs.Trace.String outcome) ]))
  in
  (match verdict with
  | Proved _ -> Stats.count "engine.proved" 1
  | Violated _ -> Stats.count "engine.violated" 1
  | Inconclusive _ -> Stats.count "engine.inconclusive" 1);
  verdict
