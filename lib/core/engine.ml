module Net = Netlist.Net
module Lit = Netlist.Lit
module Stats = Obs.Stats

type config = {
  cutoff : int;
  probe_depth : int;
  enlargement_k : int;
  enlargement_reg_limit : int;
  recurrence_limit : int;
  induction_max_k : int;
  backend : Backend.spec option;
}

let default =
  {
    cutoff = 50;
    probe_depth = 10;
    enlargement_k = 3;
    enlargement_reg_limit = 18;
    recurrence_limit = 48;
    induction_max_k = 16;
    backend = None;
  }

(* the backend spec a run solves with: an explicit config choice, else
   the process default (set by the CLI / DIAMBOUND_BACKEND) *)
let spec_of config =
  match config.backend with Some s -> s | None -> Backend.default ()

type attempt = {
  strategy : string;
  reason : string;
  elapsed_s : float;
  bound : Sat_bound.t option;
}

type verdict =
  | Proved of { strategy : string; depth : int }
  | Violated of { strategy : string; cex : Bmc.cex }
  | Inconclusive of { attempts : attempt list }

let pp_verdict ppf = function
  | Proved { strategy; depth } ->
    Format.fprintf ppf "PROVED by %s (complete to depth %d)" strategy depth
  | Violated { strategy; cex } ->
    Format.fprintf ppf "VIOLATED at time %d (found by %s)" cex.Bmc.depth
      strategy
  | Inconclusive { attempts } ->
    Format.fprintf ppf "INCONCLUSIVE after %d strategies:"
      (List.length attempts);
    List.iter
      (fun a ->
        Format.fprintf ppf "@.  %-20s %s" a.strategy a.reason;
        (match a.bound with
        | Some b -> Format.fprintf ppf " [bound %s]" (Sat_bound.to_string b)
        | None -> ());
        Format.fprintf ppf " (%.1fms)" (1e3 *. a.elapsed_s))
      attempts

let discharge_depth bound =
  if Sat_bound.is_huge bound || bound <= 0 then None else Some (bound - 1)

exception Done of verdict

(* the one distinguished stand-down reason: resource budget ran out,
   as opposed to a strategy being inapplicable or giving up *)
let budget_reason = "budget-exhausted"

(* prefix of every certification-failure stand-down reason *)
let cert_fail_reason = "certification-failed"

let () =
  Stats.declare
    [ "engine.cert_ok"; "engine.cert_fail"; "engine.cache.bound_seeded" ]

(* ----- one strategy, run in isolation -----

   A strategy body receives scoped callbacks rather than touching any
   verify-wide state, so the same ladder runs identically whether the
   strategies execute sequentially on one domain or as independent
   portfolio jobs across several. *)

type callbacks = {
  sbudget : Obs.Budget.t;  (* this strategy's slice *)
  certifying : bool;
  sink : (Sat.Proof.t -> unit) option;
  stand_down : string -> unit;
  discharge :
    ?translator:Translate.t ->
    ?pre:(unit -> (unit, string) result) ->
    Sat_bound.t ->
    unit;
  certified : (unit -> (unit, string) result) -> verdict -> unit;
}

type strategy = string * (callbacks -> unit)

(* Run one strategy under [slice], collecting its verdict (if any) and
   the attempts it recorded.  The [Done] unwind never escapes: the
   portfolio path must not have exceptions crossing domain boundaries,
   and the sequential path decides itself when to stop. *)
let run_strategy ~config ~certify ~proof_sink ~backend ~slice net ~target
    ~tlit ((name, body) : strategy) =
  let t0 = Stats.now () in
  let attempts = ref [] in
  let bound_seen = ref None in
  let stand_down reason =
    if String.equal reason budget_reason then begin
      Stats.count "engine.budget_exhausted" 1;
      Obs.Budget.note_exhausted "engine"
    end;
    attempts :=
      {
        strategy = name;
        reason;
        elapsed_s = Stats.now () -. t0;
        bound = !bound_seen;
      }
      :: !attempts
  in
  (* Gate a candidate verdict behind its certification.  Certification
     is a safety net, so any failure — including an exception escaping
     a checker — downgrades the candidate to a stand-down with the
     distinguished reason and lets the ladder continue; it never
     crashes the engine and never lets an uncertified Proved/Violated
     through. *)
  let certified check verdict =
    if not certify then raise (Done verdict)
    else begin
      match try check () with exn -> Error (Printexc.to_string exn) with
      | Ok () ->
        Stats.count "engine.cert_ok" 1;
        raise (Done verdict)
      | Error msg ->
        Stats.count "engine.cert_fail" 1;
        stand_down (cert_fail_reason ^ ": " ^ msg)
    end
  in
  (* a finite translated bound below the cutoff closes the problem
     with one complete BMC run on the ORIGINAL netlist.  [raw] is
     the bound as computed on the transformed netlist; [translator]
     carries it back.  Under certification the arithmetic is
     recomputed from the recorded theorem steps and the discharge
     run's Unsat answers re-check through the DRUP verifier. *)
  let discharge ?(translator = Translate.identity) ?(pre = fun () -> Ok ())
      raw =
    let bound = translator.Translate.apply raw in
    bound_seen := Some bound;
    if Sat_bound.is_huge bound then stand_down "no practically useful bound"
    else if bound >= config.cutoff then
      stand_down
        (Printf.sprintf "bound %s above cutoff %d" (Sat_bound.to_string bound)
           config.cutoff)
    else begin
      (* [pre] certifies the raw bound's own provenance when it came
         from a SAT answer (recurrence); arithmetic re-derives the
         translation *)
      let arithmetic () =
        match pre () with
        | Error _ as e -> e
        | Ok () ->
          Certify.check_translation ~raw ~steps:translator.Translate.steps
            ~claimed:bound
      in
      match discharge_depth bound with
      | None ->
        (* bound 0: the target is unhittable at any depth; the
           BMC run would be vacuous (and [depth - 1] negative) *)
        certified arithmetic (Proved { strategy = name; depth = 0 })
      | Some depth -> (
        let cert = if certify then Some (Bmc.new_cert ()) else None in
        match Bmc.check ?cert ~budget:slice ~backend net ~target ~depth with
        | Bmc.No_hit d ->
          certified
            (fun () ->
              match arithmetic () with
              | Error _ as e -> e
              | Ok () -> (
                let c = Option.get cert in
                match Certify.check_no_hit ~depth:d c with
                | Ok () ->
                  Option.iter (fun sink -> sink c.Bmc.proof) proof_sink;
                  Ok ()
                | Error _ as e -> e))
            (Proved { strategy = name; depth = d })
        | Bmc.Hit cex ->
          certified
            (fun () -> Certify.check_cex net tlit cex)
            (Violated { strategy = name; cex })
        | Bmc.Unknown { why; _ } -> stand_down why)
    end
  in
  let cb =
    {
      sbudget = slice;
      certifying = certify;
      sink = proof_sink;
      stand_down;
      discharge;
      certified;
    }
  in
  let verdict =
    (* an exhausted (or cancelled) budget still records an attempt: a
       strategy is never skipped silently, no matter how degenerate
       the slice an overrunning predecessor left it *)
    if Obs.Budget.expired slice then begin
      stand_down budget_reason;
      None
    end
    else begin
      (* one trace span per strategy slice; the Done unwind that
         delivers a verdict is converted to an "outcome" attribute
         rather than recorded as an exception *)
      Obs.Heartbeat.set_phase ("engine." ^ name);
      let won =
        Obs.Trace.with_span_args ("engine." ^ name)
          ~args:[ ("target", Obs.Trace.String target) ]
          (fun () ->
            match Stats.time ("engine." ^ name) (fun () -> body cb) with
            | () -> (None, [ ("outcome", Obs.Trace.String "stand-down") ])
            | exception Done v ->
              let outcome =
                match v with
                | Proved _ -> "proved"
                | Violated _ -> "violated"
                | Inconclusive _ -> "inconclusive"
              in
              (Some v, [ ("outcome", Obs.Trace.String outcome) ]))
      in
      (* a body that returned without concluding or standing down
         would vanish from the attempt log; make the gap visible *)
      if won = None && !attempts = [] then
        stand_down "stood down without a recorded reason";
      won
    end
  in
  (verdict, List.rev !attempts, !bound_seen)

(* ----- the strategy ladder -----

   [rv] is the register-based view (the phase abstraction for
   latch-based designs, translated by Theorem 3), lazy so the
   sequential path only pays for it when the shallow probe fails.
   Portfolio execution forces it before submitting jobs: OCaml 5's
   [Lazy] is not safe to force concurrently, but reading an
   already-forced suspension is. *)
let ladder ~config ~backend ~suffix net ~target ~tlit ~rv : strategy list =
  let latch_based = Net.num_latches net > 0 in
  (* [cell base] is the (strategy, backend) cell's name: the plain
     strategy name except for non-reference backends in a race, which
     are suffixed so ranked cells stay distinguishable in attempt logs
     and cache keys while the default single-backend output stays
     byte-identical *)
  let cell base = base ^ suffix in
  [
    (* 1. shallow probe *)
    ( cell "bmc-probe",
      fun cb ->
        match
          Bmc.check ~budget:cb.sbudget ~backend net ~target
            ~depth:config.probe_depth
        with
        | Bmc.Hit cex ->
          cb.certified
            (fun () -> Certify.check_cex net tlit cex)
            (Violated { strategy = cell "bmc-probe"; cex })
        | Bmc.No_hit _ -> cb.stand_down "no shallow counterexample"
        | Bmc.Unknown { why; _ } -> cb.stand_down why );
    (* 2. structural bound, untransformed *)
    ( cell "structural-bound",
      fun cb ->
        let reg_view, fold = Lazy.force rv in
        match List.assoc_opt target (Net.targets reg_view) with
        | None -> cb.stand_down "target lost by phase abstraction"
        | Some l ->
          cb.discharge ~translator:fold (Bound.target reg_view l).Bound.bound
    );
    (* 3. COM (Theorem 1) *)
    ( cell "com+bound",
      fun cb ->
        let reg_view, fold = Lazy.force rv in
        let com_report =
          Pipeline.com ~budget:cb.sbudget
            ?inprocess:backend.Backend.b_inprocess reg_view
        in
        match
          List.find_opt
            (fun t -> String.equal t.Pipeline.target target)
            com_report.Pipeline.targets
        with
        | Some t ->
          cb.discharge
            ~translator:(Translate.compose fold t.Pipeline.translator)
            t.Pipeline.raw_bound
        | None -> cb.stand_down "target reduced away" );
    (* 4. COM,RET,COM (Theorems 1 + 2) *)
    ( cell "com-ret-com+bound",
      fun cb ->
        let reg_view, fold = Lazy.force rv in
        let crc_report =
          Pipeline.com_ret_com ~budget:cb.sbudget
            ?inprocess:backend.Backend.b_inprocess reg_view
        in
        match
          List.find_opt
            (fun t -> String.equal t.Pipeline.target target)
            crc_report.Pipeline.targets
        with
        | Some t ->
          cb.discharge
            ~translator:(Translate.compose fold t.Pipeline.translator)
            t.Pipeline.raw_bound
        | None -> cb.stand_down "target reduced away" );
    (* 5. target enlargement (Theorem 4) — register view only, and the
       hittability bound is still a valid completeness threshold for
       this very target *)
    ( cell "enlargement+bound",
      fun cb ->
        if latch_based then cb.stand_down "latch-based design"
        else begin
          match
            Transform.Enlarge.run ~reg_limit:config.enlargement_reg_limit
              ?max_nodes:(Obs.Budget.bdd_nodes cb.sbudget) net ~target
              ~k:config.enlargement_k
          with
          | Error (Transform.Enlarge.Unsuitable reason) -> cb.stand_down reason
          | Error (Transform.Enlarge.Node_limit _) ->
            cb.stand_down budget_reason
          | Ok r ->
            if r.Transform.Enlarge.empty then begin
              (* every hit, if any, occurs within the first k steps;
                 clamp so k = 0 (nothing hittable at all) does not
                 turn into a depth -1 run.  Note the BDD emptiness
                 result itself has no certificate — only this BMC
                 run is certified *)
              let cert =
                if cb.certifying then Some (Bmc.new_cert ()) else None
              in
              match
                Bmc.check ?cert ~budget:cb.sbudget ~backend net ~target
                  ~depth:(max 0 (config.enlargement_k - 1))
              with
              | Bmc.No_hit d ->
                cb.certified
                  (fun () ->
                    let c = Option.get cert in
                    match Certify.check_no_hit ~depth:d c with
                    | Ok () ->
                      Option.iter (fun sink -> sink c.Bmc.proof) cb.sink;
                      Ok ()
                    | Error _ as e -> e)
                  (Proved { strategy = cell "enlargement-empty"; depth = d })
              | Bmc.Hit cex ->
                cb.certified
                  (fun () -> Certify.check_cex net tlit cex)
                  (Violated { strategy = cell "enlargement-empty"; cex })
              | Bmc.Unknown { why; _ } -> cb.stand_down why
            end
            else begin
              let name =
                Printf.sprintf "%s#enl%d" target config.enlargement_k
              in
              let b = Bound.target_named r.Transform.Enlarge.net name in
              cb.discharge
                ~translator:
                  (Translate.target_enlargement ~k:config.enlargement_k)
                b.Bound.bound
            end
        end );
    (* 6. bounded-COI recurrence diameter *)
    ( cell "recurrence-bcoi",
      fun cb ->
        let reg_view, fold = Lazy.force rv in
        match List.assoc_opt target (Net.targets reg_view) with
        | None -> cb.stand_down "target lost by phase abstraction"
        | Some l ->
          let rcert =
            if cb.certifying then Some (Recurrence.new_cert ()) else None
          in
          let r =
            Recurrence.compute ~limit:config.recurrence_limit ~bounded_coi:true
              ~budget:cb.sbudget ?cert:rcert ~backend reg_view l
          in
          if r.Recurrence.exhausted then
            cb.stand_down
              (Option.value ~default:budget_reason r.Recurrence.why)
          else
            let pre () =
              match rcert with
              | Some c -> Certify.check_recurrence c
              | None -> Ok ()
            in
            cb.discharge ~translator:fold ~pre r.Recurrence.bound );
    (* 7. temporal induction *)
    ( cell "k-induction",
      fun cb ->
        if latch_based then cb.stand_down "latch-based design"
        else begin
          let icert =
            if cb.certifying then Some (Induction.new_cert ()) else None
          in
          match
            Induction.prove ~max_k:config.induction_max_k ~budget:cb.sbudget
              ?cert:icert ~backend net ~target
          with
          | Induction.Proved k ->
            cb.certified
              (fun () ->
                let c = Option.get icert in
                match Certify.check_induction ~k c with
                | Ok () ->
                  Option.iter
                    (fun sink ->
                      match c.Induction.base with
                      | Some bc -> sink bc.Bmc.proof
                      | None -> ())
                    cb.sink;
                  Ok ()
                | Error _ as e -> e)
              (Proved { strategy = cell "k-induction"; depth = k })
          | Induction.Cex cex ->
            cb.certified
              (fun () -> Certify.check_cex net tlit cex)
              (Violated { strategy = cell "k-induction"; cex })
          | Induction.Unknown k ->
            cb.stand_down (Printf.sprintf "gave up at k = %d" k)
          | Induction.Exhausted { why; _ } -> cb.stand_down why
        end );
  ]

(* ----- drivers ----- *)

let check_target net target =
  if not (List.mem_assoc target (Net.targets net)) then
    invalid_arg ("Engine.verify: unknown target " ^ target);
  List.assoc target (Net.targets net)

let reg_view_of net =
  lazy
    (if Net.num_latches net > 0 then Pipeline.phase_front net
     else (net, Translate.identity))

(* ----- the (strategy x backend) cell grid -----

   One cell per ladder strategy per backend of the run's spec,
   STRATEGY-MAJOR: all backends of strategy 1 outrank every cell of
   strategy 2.  With a single backend this degenerates to the plain
   ladder (identical names, identical order), so default output is
   unchanged.  Rank order is total and static, which is what keeps
   portfolio selection deterministic for every job count. *)

let rec transpose = function
  | [] | [] :: _ -> []
  | rows -> List.map List.hd rows :: transpose (List.map List.tl rows)

let cells ~config net ~target ~tlit ~rv : (Backend.t * strategy) list =
  let bs =
    match Backend.backends (spec_of config) with
    | [] -> [ Backend.reference () ]
    | bs -> bs
  in
  let multi = List.length bs > 1 in
  List.map
    (fun b ->
      let suffix =
        if multi && not (Backend.is_reference b) then "@" ^ b.Backend.b_name
        else ""
      in
      List.map
        (fun s -> (b, s))
        (ladder ~config ~backend:b ~suffix net ~target ~tlit ~rv))
    bs
  |> transpose |> List.concat

let count_verdict verdict =
  match verdict with
  | Proved _ -> Stats.count "engine.proved" 1
  | Violated _ -> Stats.count "engine.violated" 1
  | Inconclusive _ -> Stats.count "engine.inconclusive" 1

let outcome_name = function
  | Proved _ -> "proved"
  | Violated _ -> "violated"
  | Inconclusive _ -> "inconclusive"

(* ----- the bound cache hooks -----

   [bcache] is [(cache, key_prefix)]: per ladder strategy, the prefix
   plus the strategy name keys a previously certified completeness
   bound.  Seeding replaces the strategy's body with a direct
   discharge of the cached bound — the expensive analysis
   (COM/RET/BDD/recurrence) is skipped, while the discharge BMC run
   and its certification are repeated in full, so a seeded ladder can
   only conclude what a fresh ladder would.  [Bcache.peek] keeps these
   speculative probes out of the request-level hit/miss counters. *)

let seed_strategies bcache cells =
  match bcache with
  | None -> cells
  | Some (cache, kp) ->
    List.map
      (fun ((backend, (name, body)) as c) ->
        match Bcache.peek cache (kp ^ name) with
        | Some (Bcache.Bound { raw; _ }) ->
          Stats.count "engine.cache.bound_seeded" 1;
          (backend, (name, fun cb -> cb.discharge raw))
        | Some _ | None ->
          ignore body;
          c)
      cells

(* Bounds enter the cache only off a certified [Proved]: that
   certification re-derived the translation arithmetic (and any
   recurrence evidence), so the stored bound's provenance is checked —
   an injected fault upstream of it cannot be laundered through the
   cache.  [Violated] is excluded: its certification replays the cex
   but does not re-check the bound. *)
let store_bound bcache ~certify verdict name bound =
  match (bcache, verdict, bound) with
  | Some (cache, kp), Proved _, Some raw when certify ->
    Bcache.add cache (kp ^ name) (Bcache.Bound { strategy = name; raw })
  | _ -> ()

let verify ?(config = default) ?(budget = Obs.Budget.unlimited)
    ?(certify = false) ?proof_sink ?bcache net ~target =
  let tlit = check_target net target in
  (* a proof sink only ever receives certified proofs *)
  let certify = certify || proof_sink <> None in
  let rv = reg_view_of net in
  let grid = seed_strategies bcache (cells ~config net ~target ~tlit ~rv) in
  let attempts = ref [] in
  let remaining = ref (List.length grid) in
  let run_ladder () =
    try
      List.iter
        (fun (backend, s) ->
          (* Deadlines degrade gracefully: every cell gets an equal
             slice of whatever wall-clock remains (so an early
             strategy overrunning only squeezes, never starves, the
             later ones — [slice] clamps an overdrawn remainder, and
             [run_strategy] records a budget attempt on a dead slice
             rather than skipping). *)
          let slice = Obs.Budget.slice budget ~ways:(max 1 !remaining) in
          let verdict, atts, bound =
            run_strategy ~config ~certify ~proof_sink ~backend ~slice net
              ~target ~tlit s
          in
          attempts := !attempts @ atts;
          decr remaining;
          match verdict with
          | Some v ->
            store_bound bcache ~certify v (fst s) bound;
            raise (Done v)
          | None -> ())
        grid;
      Inconclusive { attempts = !attempts }
    with Done v -> v
  in
  let verdict =
    Obs.Trace.with_span_args "engine.verify"
      ~args:[ ("target", Obs.Trace.String target) ]
      (fun () ->
        let v = run_ladder () in
        (v, [ ("verdict", Obs.Trace.String (outcome_name v)) ]))
  in
  count_verdict verdict;
  verdict

(* ----- portfolio execution -----

   Each (strategy, backend) cell becomes an independent job: cells
   already discharge on the ORIGINAL netlist, so their verdicts
   compose without any cross-cell state.  Determinism comes from the
   selection rule, not arrival order: the conclusive verdict of the
   LOWEST-ranked cell wins, which is exactly the cell sequential
   [verify] would have stopped at (every lower-ranked cell ran to
   completion uncancelled and was inconclusive).  A conclusive verdict
   at rank k stands down only ranks ABOVE k — their outcome can no
   longer matter — through the budget cancellation token each job
   polls at its existing check points (the backends' solve loops all
   poll [should_stop], so BDD and external cells cancel too). *)

let verify_portfolio ?(config = default) ?(budget = Obs.Budget.unlimited)
    ?(certify = false) ?proof_sink ?pool ?(jobs = 1) ?bcache net ~target =
  let pool_size = match pool with Some p -> Sched.Pool.size p | None -> jobs in
  if pool_size <= 1 && pool = None then
    (* one worker: run the ladder in-domain, bit-for-bit the
       sequential semantics (including lazy phase abstraction) *)
    verify ~config ~budget ~certify ?proof_sink ?bcache net ~target
  else begin
    let tlit = check_target net target in
    let certify = certify || proof_sink <> None in
    let rv = reg_view_of net in
    (* force before sharing: concurrent Lazy.force is unsafe, reading
       a forced suspension is not *)
    ignore (Lazy.force rv);
    (* seeding happens here, on the calling domain, before any job is
       submitted — workers never touch the cache, so the seeded ladder
       is the same for every [jobs] value given the same cache state *)
    let grid = seed_strategies bcache (cells ~config net ~target ~tlit ~rv) in
    let n = List.length grid in
    let cancels = Array.init n (fun _ -> Atomic.make false) in
    let cancel_above k =
      for j = k + 1 to n - 1 do
        Atomic.set cancels.(j) true
      done
    in
    let run_job (rank, (backend, s)) =
      (* proofs are sunk locally and replayed only if this rank is
         selected — the real sink must not observe losers *)
      let proofs = ref [] in
      let local_sink =
        match proof_sink with
        | None -> None
        | Some _ -> Some (fun p -> proofs := p :: !proofs)
      in
      (* every job gets the WHOLE remaining budget (racing strategies
         replace the sequential equal split) plus its rank's
         cancellation token *)
      let jbudget = Obs.Budget.with_cancel budget cancels.(rank) in
      let verdict, atts, bound =
        run_strategy ~config ~certify ~proof_sink:local_sink ~backend
          ~slice:jbudget net ~target ~tlit s
      in
      if verdict <> None then cancel_above rank;
      (verdict, atts, List.rev !proofs, (fst s, bound))
    in
    let indexed = List.mapi (fun i c -> (i, c)) grid in
    let verdict =
      Obs.Trace.with_span_args "engine.verify"
        ~args:
          [
            ("target", Obs.Trace.String target);
            ("jobs", Obs.Trace.Int pool_size);
          ]
        (fun () ->
          let results =
            match pool with
            | Some p -> Sched.Pool.map p run_job indexed
            | None ->
              Sched.Pool.with_pool ~jobs (fun p ->
                  Sched.Pool.map p run_job indexed)
          in
          let v =
            match
              (* results are in rank order; the first conclusive one
                 is the sequential answer *)
              List.find_map
                (function
                  | Some v, _, proofs, nb -> Some (v, proofs, nb)
                  | None, _, _, _ -> None)
                results
            with
            | Some (v, proofs, (sname, bound)) ->
              Option.iter (fun sink -> List.iter sink proofs) proof_sink;
              (* only the WINNING rank's bound enters the cache — the
                 same bound the sequential ladder would have stored *)
              store_bound bcache ~certify v sname bound;
              v
            | None ->
              Inconclusive
                { attempts = List.concat_map (fun (_, a, _, _) -> a) results }
          in
          (v, [ ("verdict", Obs.Trace.String (outcome_name v)) ]))
    in
    count_verdict verdict;
    verdict
  end

(* ----- cached verification ----- *)

type cache_status = Cache_hit | Cache_miss

(* The configuration digest folded into every cache key.  The verdict
   key includes [cutoff] (it decides whether a bound concludes); the
   bound key omits it — a completeness bound is a property of the cone,
   valid under any cutoff.  The budget is in neither: a conclusive,
   certified verdict holds regardless of how much time the run that
   produced it was allowed. *)
let config_digest ~with_cutoff c =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "cfg:%s:%d:%d:%d:%d:%d:%s"
          (if with_cutoff then string_of_int c.cutoff else "-")
          c.probe_depth c.enlargement_k c.enlargement_reg_limit
          c.recurrence_limit c.induction_max_k
          (Backend.spec_id (spec_of c))))

let cache_keys ?(config = default) ~certify net ~target =
  let tlit = check_target net target in
  let fp = Net.cone_fingerprint net tlit in
  ( Printf.sprintf "v:%s:%s:%b" fp (config_digest ~with_cutoff:true config)
      certify,
    Printf.sprintf "b:%s:%s:" fp (config_digest ~with_cutoff:false config) )

let verify_cached ?(config = default) ?budget ?(certify = false) ?pool
    ?(jobs = 1) ~cache net ~target =
  let vkey, bprefix = cache_keys ~config ~certify net ~target in
  match Bcache.find cache vkey with
  | Some (Bcache.Proved { strategy; depth }) ->
    let v = Proved { strategy; depth } in
    count_verdict v;
    (v, Cache_hit)
  | Some (Bcache.Violated { strategy; cex }) ->
    let v = Violated { strategy; cex } in
    count_verdict v;
    (v, Cache_hit)
  | Some (Bcache.Bound _) (* never stored under a "v:" key *) | None ->
    let v =
      verify_portfolio ~config ?budget ~certify ?pool ~jobs
        ~bcache:(cache, bprefix) net ~target
    in
    (if certify then
       match v with
       | Proved { strategy; depth } ->
         Bcache.add cache vkey (Bcache.Proved { strategy; depth })
       | Violated { strategy; cex } ->
         Bcache.add cache vkey (Bcache.Violated { strategy; cex })
       | Inconclusive _ ->
         (* never cached: an inconclusive outcome is circumstance
            (budget, limits), not a fact about the cone *)
         ());
    (v, Cache_miss)

let exhausted = function
  | Proved _ | Violated _ -> false
  | Inconclusive { attempts } ->
    List.exists (fun a -> String.equal a.reason budget_reason) attempts

let cert_failed = function
  | Proved _ | Violated _ -> None
  | Inconclusive { attempts } ->
    let p = cert_fail_reason in
    let plen = String.length p in
    List.find_map
      (fun a ->
        if String.length a.reason >= plen && String.equal (String.sub a.reason 0 plen) p
        then Some (a.strategy ^ ": " ^ a.reason)
        else None)
      attempts
