module Net = Netlist.Net
module Stats = Obs.Stats

type target_report = {
  target : string;
  raw_bound : Sat_bound.t;
  bound : Sat_bound.t;
  translator : Translate.t;
}

type report = {
  pipeline : string;
  reg_counts : Classify.counts;
  targets : target_report list;
  final : Netlist.Net.t;
}

(* slug for stats keys: "COM,RET,COM" -> "com-ret-com" *)
let slug name =
  String.map (function ',' -> '-' | c -> Char.lowercase_ascii c) name

(* trace attributes: netlist size under a prefix, so every pipeline
   span carries its before/after shape *)
let size_args prefix net =
  Obs.Trace.
    [
      (prefix ^ "_regs", Int (Net.num_regs net + Net.num_latches net));
      (prefix ^ "_ands", Int (Net.num_ands net));
    ]

(* one trace span per transformation step, attributed with the
   before/after netlist sizes; the timed stats span keeps its name *)
let traced_step name ~before ~after f =
  Obs.Trace.with_span_args name ~args:(size_args "before" before) (fun () ->
      let r = Stats.time name f in
      (r, size_args "after" (after r)))

(* node/register reduction accounting shared by every pipeline *)
let record_reduction name ~before ~after =
  let s = slug name in
  let state n = Net.num_regs n + Net.num_latches n in
  Stats.count
    (Printf.sprintf "pipeline.%s.regs_removed" s)
    (state before - state after);
  Stats.count
    (Printf.sprintf "pipeline.%s.ands_removed" s)
    (Net.num_ands before - Net.num_ands after);
  Stats.set_gauge (Printf.sprintf "pipeline.%s.regs_after" s) (state after);
  Stats.set_gauge (Printf.sprintf "pipeline.%s.ands_after" s) (Net.num_ands after)

let report_on name net translator_of =
  let s = slug name in
  let targets =
    List.map
      (fun (tname, b) ->
        let translator = translator_of tname in
        let translated = translator.Translate.apply b.Bound.bound in
        (* per-transform bound-reduction entry: the bound on the
           transformed netlist and its translation to the original *)
        Stats.set_gauge (Printf.sprintf "bound.%s.%s.raw" s tname) b.Bound.bound;
        Stats.set_gauge
          (Printf.sprintf "bound.%s.%s.translated" s tname)
          translated;
        { target = tname; raw_bound = b.Bound.bound; bound = translated; translator })
      (Bound.all_targets net)
  in
  {
    pipeline = name;
    reg_counts = Classify.netlist_counts net;
    targets;
    final = net;
  }

let original net =
  traced_step "pipeline.original" ~before:net
    ~after:(fun r -> r.final)
    (fun () -> report_on "Original" net (fun _ -> Translate.identity))

let com ?budget ?inprocess net =
  traced_step "pipeline.com" ~before:net
    ~after:(fun r -> r.final)
    (fun () ->
      let reduced, _stats = Transform.Com.run ?budget ?inprocess net in
      record_reduction "COM" ~before:net ~after:reduced.Transform.Rebuild.net;
      report_on "COM" reduced.Transform.Rebuild.net (fun _ ->
          Translate.trace_equivalence))

let com_ret_com ?budget ?inprocess net =
  traced_step "pipeline.com-ret-com" ~before:net
    ~after:(fun r -> r.final)
    (fun () ->
      let first, _ =
        traced_step "pipeline.com-ret-com.com1" ~before:net
          ~after:(fun (r, _) -> r.Transform.Rebuild.net)
          (fun () -> Transform.Com.run ?budget ?inprocess net)
      in
      let retimed =
        traced_step "pipeline.com-ret-com.ret"
          ~before:first.Transform.Rebuild.net
          ~after:(fun r -> r.Transform.Retime.rebuilt.Transform.Rebuild.net)
          (fun () -> Transform.Retime.run first.Transform.Rebuild.net)
      in
      let second, _ =
        traced_step "pipeline.com-ret-com.com2"
          ~before:retimed.Transform.Retime.rebuilt.Transform.Rebuild.net
          ~after:(fun (r, _) -> r.Transform.Rebuild.net)
          (fun () ->
            Transform.Com.run ?budget ?inprocess
              retimed.Transform.Retime.rebuilt.Transform.Rebuild.net)
      in
      record_reduction "COM,RET,COM" ~before:net
        ~after:second.Transform.Rebuild.net;
      let skews = retimed.Transform.Retime.target_skews in
      report_on "COM,RET,COM" second.Transform.Rebuild.net (fun tname ->
          let skew = Option.value (List.assoc_opt tname skews) ~default:0 in
          Translate.compose Translate.trace_equivalence
            (Translate.compose (Translate.retiming ~skew)
               Translate.trace_equivalence)))

let phase_front net =
  traced_step "pipeline.phase" ~before:net
    ~after:(fun (abstracted, _) -> abstracted)
    (fun () ->
      let abstracted = Transform.Phase.run net in
      record_reduction "phase" ~before:net ~after:abstracted.Transform.Phase.net;
      ( abstracted.Transform.Phase.net,
        Translate.state_folding ~factor:abstracted.Transform.Phase.factor ))

type summary = { proved_small : int; total : int; average : float }

let summarize ~cutoff report =
  let small =
    List.filter
      (fun t -> (not (Sat_bound.is_huge t.bound)) && t.bound < cutoff)
      report.targets
  in
  let proved_small = List.length small in
  let total = List.length report.targets in
  let average =
    if proved_small = 0 then 0.
    else
      List.fold_left (fun acc t -> acc +. float_of_int t.bound) 0. small
      /. float_of_int proved_small
  in
  { proved_small; total; average }

let pp_report ~cutoff ppf report =
  let s = summarize ~cutoff report in
  Format.fprintf ppf "%-12s R:%a  |T'|/|T|: %d/%d  avg: %.1f" report.pipeline
    Classify.pp_counts report.reg_counts s.proved_small s.total s.average
