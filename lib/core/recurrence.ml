module Net = Netlist.Net
module Lit = Netlist.Lit
module Coi = Netlist.Coi
module Solver = Backend

type result = {
  bound : Sat_bound.t;
  path_length : int;
  sat_calls : int;
  exhausted : bool;
  why : string option;
}

(* The bound is only as good as the closing Unsat answer ("no
   irredundant path of length k exists"), so that answer can carry a
   clausal proof.  A register-free cone needs no SAT at all: its
   bound is a structural fact, recorded as such. *)
type evidence = Structural | Refutation of Sat.Proof.event list

type cert = { mutable evidence : evidence option }

let new_cert () = { evidence = None }

let attach_proof cert solver =
  match cert with
  | None -> None
  | Some _ ->
    let p = Sat.Proof.create () in
    Solver.set_proof solver p;
    Some p

let record_refutation cert proof =
  match (cert, proof) with
  | Some c, Some p -> c.evidence <- Some (Refutation (Sat.Proof.events p))
  | _ -> ()

(* distance of each register to the target: 0 if the target's
   combinational cone reads it, else 1 + the minimum over the registers
   whose next-state cones read it (BFS over reversed dependencies) *)
let target_distances net target =
  let regs = Net.regs net in
  (* reads: register -> registers its next-state cone reads *)
  let reads = Hashtbl.create 64 in
  List.iter
    (fun r' ->
      let cone = Coi.combinational net [ (Net.reg_of net r').Net.next ] in
      Hashtbl.replace reads r' (List.filter (fun r -> cone.(r)) regs))
    regs;
  let dist = Hashtbl.create 64 in
  let queue = Queue.create () in
  let cone0 = Coi.combinational net [ target ] in
  List.iter
    (fun r ->
      if cone0.(r) then begin
        Hashtbl.replace dist r 0;
        Queue.add r queue
      end)
    regs;
  while not (Queue.is_empty queue) do
    let r' = Queue.pop queue in
    let d = Hashtbl.find dist r' in
    List.iter
      (fun r ->
        if not (Hashtbl.mem dist r) then begin
          Hashtbl.replace dist r (d + 1);
          Queue.add r queue
        end)
      (Hashtbl.find reads r')
  done;
  dist

let add_distinct solver lits_i lits_j =
  let diffs =
    List.map2
      (fun a b ->
        let d = Solver.pos (Solver.new_var solver) in
        (* d -> (a xor b) *)
        Solver.add_clause solver [ Solver.negate d; a; b ];
        Solver.add_clause solver
          [ Solver.negate d; Solver.negate a; Solver.negate b ];
        d)
      lits_i lits_j
  in
  Solver.add_clause solver diffs

let gave_up ?(why = Backend.budget_reason) k sat_calls =
  if not (Backend.is_unavailable why) then
    Obs.Budget.note_exhausted "recurrence";
  {
    bound = Sat_bound.huge;
    path_length = k - 1;
    sat_calls;
    exhausted = true;
    why = Some why;
  }

let expired budget =
  match budget with Some b -> Obs.Budget.expired b | None -> false

let mk_solver backend =
  match backend with
  | Some b -> Backend.instantiate b
  | None -> Backend.default_solver ()

let plain ~limit ?budget ?cert ?backend net target regs =
  let solver = mk_solver backend in
  let proof = attach_proof cert solver in
  let unroll = Encode.Unroll.create solver net in
  ignore target;
  let state_lits t =
    List.map (fun r -> Encode.Unroll.lit_at unroll (Lit.make r) t) regs
  in
  let sat_calls = ref 0 in
  let rec extend k =
    if k > limit then
      {
        bound = Sat_bound.huge;
        path_length = k - 1;
        sat_calls = !sat_calls;
        exhausted = false;
        why = None;
      }
    else if expired budget then gave_up k !sat_calls
    else begin
      for i = 0 to k - 1 do
        add_distinct solver (state_lits i) (state_lits k)
      done;
      incr sat_calls;
      match
        fst (Encode.Sat_obs.solve ?budget ~span:"recurrence.solve" solver)
      with
      | Solver.Sat -> extend (k + 1)
      | Solver.Unsat ->
        record_refutation cert proof;
        {
          bound = Sat_bound.of_int k;
          path_length = k - 1;
          sat_calls = !sat_calls;
          exhausted = false;
        why = None;
        }
      | Solver.Unknown why -> gave_up ~why k !sat_calls
    end
  in
  extend 1

(* Kroening & Strichman's bounded cone of influence [6]: on a path
   hitting the target at its final frame, an earlier frame [j] only
   needs to be distinguished from frames before it on the registers
   that can still reach the target in the remaining [k - j] steps —
   agreeing on those lets the suffix be spliced forward, shortening
   the hit.

   Two details keep the "first UNSAT k" search sound: the path's start
   state is FREE (an init-anchored path's suffix is not init-anchored,
   which would break monotonicity in k), and relevance is measured
   from the path's end, so a satisfying path of length k+1 contains a
   satisfying path of length k as its suffix (monotone, hence the
   first UNSAT closes the search).  The relevance sets depend on [k],
   so each [k] is encoded afresh. *)
let bounded ~limit ?budget ?cert ?backend net target regs =
  let dist = target_distances net target in
  let sat_calls = ref 0 in
  let rec extend k =
    if k > limit then
      {
        bound = Sat_bound.huge;
        path_length = k - 1;
        sat_calls = !sat_calls;
        exhausted = false;
        why = None;
      }
    else if expired budget then gave_up k !sat_calls
    else begin
      let solver = mk_solver backend in
      (* each k is a fresh encoding, so a fresh proof; only the final
         (Unsat) one becomes the certificate *)
      let proof = attach_proof cert solver in
      (* free-start chained frames *)
      let frames =
        Array.init (k + 1) (fun _ -> Encode.Frame.create solver net)
      in
      for i = 0 to k - 1 do
        List.iter
          (fun r ->
            let next_i =
              Encode.Frame.lit frames.(i) (Net.reg_of net r).Net.next
            in
            let s_next = Encode.Frame.state_var frames.(i + 1) r in
            Solver.add_clause solver [ Solver.negate next_i; s_next ];
            Solver.add_clause solver [ next_i; Solver.negate s_next ])
          regs
      done;
      let relevant j =
        List.filter
          (fun r ->
            match Hashtbl.find_opt dist r with
            | Some d -> d <= k - j
            | None -> false)
          regs
      in
      let lits rs f = List.map (fun r -> Encode.Frame.state_var frames.(f) r) rs in
      for j = 1 to k do
        let rs = relevant j in
        if rs <> [] then
          for i = 0 to j - 1 do
            add_distinct solver (lits rs i) (lits rs j)
          done
      done;
      incr sat_calls;
      match
        fst (Encode.Sat_obs.solve ?budget ~span:"recurrence.solve" solver)
      with
      | Solver.Sat -> extend (k + 1)
      | Solver.Unsat ->
        record_refutation cert proof;
        {
          bound = Sat_bound.of_int k;
          path_length = k - 1;
          sat_calls = !sat_calls;
          exhausted = false;
        why = None;
        }
      | Solver.Unknown why -> gave_up ~why k !sat_calls
    end
  in
  extend 1

let compute ?(limit = 64) ?(bounded_coi = false) ?budget ?cert ?backend net target =
  Obs.Stats.time "recurrence.compute" (fun () ->
      (* work on the target's cone only *)
      let cone = Transform.Rebuild.copy ~roots:[ target ] net in
      let target = Transform.Rebuild.map_lit cone target in
      let net = cone.Transform.Rebuild.net in
      let regs = Net.regs net in
      let result =
        if regs = [] then begin
          Option.iter (fun c -> c.evidence <- Some Structural) cert;
          {
            bound = Sat_bound.of_int 1;
            path_length = 0;
            sat_calls = 0;
            exhausted = false;
        why = None;
          }
        end
        else if bounded_coi then
          bounded ~limit ?budget ?cert ?backend net target regs
        else plain ~limit ?budget ?cert ?backend net target regs
      in
      Obs.Stats.count "recurrence.sat_calls" result.sat_calls;
      result)
