(** The transformation-based verification driver: the paper's
    machinery assembled into a push-button prover.

    Strategies are attempted in cost order, each producing either a
    verdict or a recorded reason to move on:

    + a shallow BMC probe (cheap bug hunting);
    + the structural diameter bound on the original netlist
      (Definition 3 + [7]); if below the cutoff, a BMC run of that
      depth is a complete proof;
    + the bound after COM (Theorem 1) and after COM,RET,COM
      (Theorems 1 and 2), each translated back to the original;
    + for latch-based designs, the above are computed on the
      phase-abstracted netlist and translated through Theorem 3;
    + k-step target enlargement (Theorem 4) when the cone is small
      enough for BDDs;
    + the bounded-COI recurrence diameter [6];
    + temporal induction with uniqueness [5].

    Every completeness-threshold strategy discharges its final BMC run
    on the {e original} netlist, so counterexamples always replay
    there and proofs never depend on a transformation being trusted
    end-to-end. *)

type config = {
  cutoff : int;  (** a bound below this is considered BMC-dischargeable *)
  probe_depth : int;
  enlargement_k : int;
  enlargement_reg_limit : int;
  recurrence_limit : int;
  induction_max_k : int;
}

val default : config

type attempt = {
  strategy : string;
  reason : string;  (** why the strategy stood down *)
  elapsed_s : float;  (** wall-clock seconds spent in the strategy *)
  bound : Sat_bound.t option;
      (** the translated completeness bound it computed, when one was
          reached before standing down *)
}

type verdict =
  | Proved of { strategy : string; depth : int }
      (** complete: no hit at times [0 .. depth] *)
  | Violated of { strategy : string; cex : Bmc.cex }
  | Inconclusive of { attempts : attempt list }
      (** every strategy's reason for standing down, with timing and
          the bound it got stuck at *)

val discharge_depth : Sat_bound.t -> int option
(** BMC depth that turns a finite diameter bound into a complete
    check: [Some (bound - 1)] for positive finite bounds, [None] for
    huge or non-positive bounds (a bound of 0 means the target is
    unhittable at any depth — no BMC run is needed, and naively using
    [bound - 1] would request a depth of -1). *)

val verify : ?config:config -> Netlist.Net.t -> target:string -> verdict
(** @raise Invalid_argument on an unknown target name.

    Every strategy is timed into the {!Obs.Stats} span
    ["engine.<strategy>"], and verdicts bump the
    ["engine.proved"/"engine.violated"/"engine.inconclusive"]
    counters. *)

val pp_verdict : Format.formatter -> verdict -> unit
