(** The transformation-based verification driver: the paper's
    machinery assembled into a push-button prover.

    Strategies are attempted in cost order, each producing either a
    verdict or a recorded reason to move on:

    + a shallow BMC probe (cheap bug hunting);
    + the structural diameter bound on the original netlist
      (Definition 3 + [7]); if below the cutoff, a BMC run of that
      depth is a complete proof;
    + the bound after COM (Theorem 1) and after COM,RET,COM
      (Theorems 1 and 2), each translated back to the original;
    + for latch-based designs, the above are computed on the
      phase-abstracted netlist and translated through Theorem 3;
    + k-step target enlargement (Theorem 4) when the cone is small
      enough for BDDs;
    + the bounded-COI recurrence diameter [6];
    + temporal induction with uniqueness [5].

    Every completeness-threshold strategy discharges its final BMC run
    on the {e original} netlist, so counterexamples always replay
    there and proofs never depend on a transformation being trusted
    end-to-end.  That independence is also what lets
    {!verify_portfolio} race the same ladder across domains with no
    cross-strategy state.

    Every SAT query goes through a pluggable {!Backend}; the ladder is
    really a grid of (strategy, backend) {e cells}.  With the default
    single reference backend the grid degenerates to the plain ladder
    and behaves exactly as documented above; with a [Race] spec each
    strategy is attempted once per backend, strategy-major (every
    backend of strategy [i] outranks every cell of strategy [i + 1]),
    and non-reference cells are named ["<strategy>@<backend>"] in
    attempts and verdicts. *)

type config = {
  cutoff : int;  (** a bound below this is considered BMC-dischargeable *)
  probe_depth : int;
  enlargement_k : int;
  enlargement_reg_limit : int;
  recurrence_limit : int;
  induction_max_k : int;
  backend : Backend.spec option;
      (** the solver backend(s) this run's ladder solves with; [None]
          inherits the process default ({!Backend.default}).  A
          [Single] backend replaces the reference solver in every cell
          of the ladder; a [Race] crosses every ladder strategy with
          every listed backend (see {!verify_portfolio}).  Per-run and
          per-backend-instance (e.g. [Single (Backend.reference
          ~inprocess:false ())] pins SAT inprocessing off for this run
          only), so concurrent runs with different configurations
          never race on any global toggle. *)
}

val default : config

type attempt = {
  strategy : string;
  reason : string;  (** why the strategy stood down *)
  elapsed_s : float;  (** wall-clock seconds spent in the strategy *)
  bound : Sat_bound.t option;
      (** the translated completeness bound it computed, when one was
          reached before standing down *)
}

type verdict =
  | Proved of { strategy : string; depth : int }
      (** complete: no hit at times [0 .. depth] *)
  | Violated of { strategy : string; cex : Bmc.cex }
  | Inconclusive of { attempts : attempt list }
      (** every strategy's reason for standing down, with timing and
          the bound it got stuck at *)

val discharge_depth : Sat_bound.t -> int option
(** BMC depth that turns a finite diameter bound into a complete
    check: [Some (bound - 1)] for positive finite bounds, [None] for
    huge or non-positive bounds (a bound of 0 means the target is
    unhittable at any depth — no BMC run is needed, and naively using
    [bound - 1] would request a depth of -1). *)

val budget_reason : string
(** The distinguished {!attempt.reason} ("budget-exhausted") recorded
    when a strategy stood down because the resource budget ran out,
    rather than because it was inapplicable or gave up. *)

val cert_fail_reason : string
(** The prefix ("certification-failed") of every {!attempt.reason}
    recorded when a strategy reached a verdict whose certification
    did not check out.  Such a verdict is withheld — the engine
    reports at most [Inconclusive], never an uncertified
    [Proved]/[Violated]. *)

val verify :
  ?config:config ->
  ?budget:Obs.Budget.t ->
  ?certify:bool ->
  ?proof_sink:(Sat.Proof.t -> unit) ->
  ?bcache:Bcache.t * string ->
  Netlist.Net.t ->
  target:string ->
  verdict
(** @raise Invalid_argument on an unknown target name.

    With [~certify:true] every candidate verdict is independently
    re-derived before being reported (see {!Certify}): counterexamples
    must replay on the original netlist, discharge/induction Unsat
    answers must re-check through the DRUP verifier, bound
    translations are recomputed from their recorded theorem steps, and
    a recurrence-derived bound must carry evidence for its closing
    Unsat answer (see {!Recurrence.evidence}).
    Success bumps ["engine.cert_ok"]; any failure (or exception in a
    checker) bumps ["engine.cert_fail"], records a
    {!cert_fail_reason} attempt and lets the ladder continue — so a
    corrupted answer degrades to [Inconclusive] rather than becoming
    a wrong verdict or a crash.  Certification never changes a sound
    verdict, it can only withhold a corrupt one.

    [proof_sink] (implies [certify]) receives the clausal proof of
    each discharge BMC run that certified a [Proved] verdict — for
    [--proof] style dumping.

    Every strategy is timed into the {!Obs.Stats} span
    ["engine.<strategy>"], and verdicts bump the
    ["engine.proved"/"engine.violated"/"engine.inconclusive"]
    counters.

    A [budget] governs the whole ladder: each strategy receives an
    equal {!Obs.Budget.slice} of the wall-clock remaining when it
    starts (per-call SAT/BDD allowances pass through unchanged), a
    strategy that runs out records a {!budget_reason} attempt — with
    any bound it managed to compute — and the ladder continues; once
    the overall deadline is gone the remaining strategies stand down
    immediately.  The slice arithmetic is clamped: an overrunning
    early strategy can squeeze a later one down to an already-expired
    slice, but never make it disappear from the attempt log — a dead
    slice still records its {!budget_reason} attempt.  Budget
    exhaustion is never reported as [Proved] or [Violated], and
    additionally bumps ["engine.budget_exhausted"].

    [bcache] is [(cache, key_prefix)]: each ladder strategy probes
    [key_prefix ^ strategy] for a previously certified completeness
    bound and, on a hit, skips its analysis and discharges the cached
    bound directly (BMC run and certification repeated in full, so a
    seeded ladder can only conclude what a fresh one would); when a
    strategy's certified [Proved] carries a bound, it is stored back
    under the same key.  Callers normally reach this through
    {!verify_cached} rather than directly. *)

val verify_portfolio :
  ?config:config ->
  ?budget:Obs.Budget.t ->
  ?certify:bool ->
  ?proof_sink:(Sat.Proof.t -> unit) ->
  ?pool:Sched.Pool.t ->
  ?jobs:int ->
  ?bcache:Bcache.t * string ->
  Netlist.Net.t ->
  target:string ->
  verdict
(** {!verify} with the (strategy, backend) cell grid racing as
    independent portfolio jobs across [jobs] worker domains ([pool], when given, is used
    instead and [jobs] is ignored; with neither, or [jobs <= 1], this
    {e is} sequential {!verify}).

    The result is reproducible and identical to sequential {!verify}
    regardless of [jobs]: the conclusive verdict of the lowest-ranked
    cell wins — never the first to finish — and that is exactly the
    cell the sequential ladder would have stopped at, since every
    lower-ranked cell ran uncancelled to completion and was
    inconclusive.  This holds for multi-backend [Race] specs too:
    backends are sound decision procedures, so a cell's conclusive
    verdict is a function of the problem alone and rank selection
    yields byte-identical output for every [jobs] value.  A conclusive verdict at rank [k] cooperatively
    cancels only the ranks above [k] (their outcome can no longer be
    selected) via {!Obs.Budget} cancellation tokens, which those jobs
    observe at their existing budget check points and record as
    {!budget_reason} attempts.

    Two deliberate semantic differences from a budgeted sequential
    run: each racing cell receives the {e whole} remaining budget
    rather than an equal slice, and for latch-based designs the phase
    abstraction is computed up front rather than lazily after the
    probe.  With an unconstrained budget the verdict, selected
    strategy and (for [Inconclusive]) the attempt reasons coincide
    exactly with {!verify}'s.

    [proof_sink] observes only the winning rank's proofs, in their
    original order, from the calling domain.

    [bcache] behaves as in {!verify}: seeding and storing both happen
    on the calling domain (probe before submission, store on the
    winning rank's verdict), so worker domains never touch the cache
    and the outcome is independent of [jobs] for a given cache
    state. *)

(** {1 Cached verification} *)

type cache_status = Cache_hit | Cache_miss

val cache_keys :
  ?config:config ->
  certify:bool ->
  Netlist.Net.t ->
  target:string ->
  string * string
(** [(verdict_key, bound_key_prefix)] for this problem.  Both embed
    {!Netlist.Net.cone_fingerprint} of the target's cone — structural,
    so build order and names outside the cone do not matter — plus a
    digest of [config] ([verdict_key] as ["v:<fp>:<digest>:<certify>"];
    the bound prefix ["b:<fp>:<digest'>:"] omits [cutoff], a
    completeness bound being valid under any cutoff).  A purge of
    every entry about one cone matches the fingerprint substring.
    @raise Invalid_argument on an unknown target name. *)

val verify_cached :
  ?config:config ->
  ?budget:Obs.Budget.t ->
  ?certify:bool ->
  ?pool:Sched.Pool.t ->
  ?jobs:int ->
  cache:Bcache.t ->
  Netlist.Net.t ->
  target:string ->
  verdict * cache_status
(** {!verify_portfolio} in front of a {!Bcache}: a cached conclusive
    verdict for the same cone fingerprint and configuration is
    returned without running anything ([Cache_hit]); otherwise the
    ladder runs with per-strategy bound seeding (see {!verify}) and,
    when [certify] is on, a conclusive verdict is stored back
    ([Cache_miss]).  Only {e certified} conclusive verdicts ever enter
    the cache — [Inconclusive] outcomes and uncertified runs are never
    cached, so the cache cannot launder an unchecked answer; budget is
    deliberately not part of the key (a certified verdict holds
    however long it took to find).  The verdict-level lookup is what
    the cache's hit/miss counters measure. *)

val pp_verdict : Format.formatter -> verdict -> unit

val exhausted : verdict -> bool
(** [true] iff the verdict is [Inconclusive] with at least one
    {!budget_reason} attempt — i.e. the ladder may only have failed
    because resources ran out.  Conclusive verdicts are never
    exhausted (budget exhaustion must not be reported as
    [Proved]/[Violated]; the campaign's budget oracle asserts exactly
    this). *)

val cert_failed : verdict -> string option
(** The first {!cert_fail_reason} attempt of an [Inconclusive]
    verdict, as ["<strategy>: <reason>"]; [None] for conclusive
    verdicts (which, by construction, certified). *)
