(** Transformation pipelines: the experiment driver of Section 4.

    Each pipeline transforms a netlist, runs the structural diameter
    bounding engine on the result, and translates every per-target
    bound back to the original netlist through the Theorem-1/2/3
    translators.  The three pipelines of Tables 1 and 2 are provided
    ([original], [com], [com_ret_com]), plus the phase-abstraction
    front-end used for the GP (Table 2) designs. *)

type target_report = {
  target : string;
  raw_bound : Sat_bound.t;  (** on the transformed netlist *)
  bound : Sat_bound.t;  (** translated back to the input netlist *)
  translator : Translate.t;
}

type report = {
  pipeline : string;
  reg_counts : Classify.counts;  (** on the transformed netlist *)
  targets : target_report list;
  final : Netlist.Net.t;
}

val original : Netlist.Net.t -> report
val com : ?budget:Obs.Budget.t -> ?inprocess:bool -> Netlist.Net.t -> report

val com_ret_com : ?budget:Obs.Budget.t -> ?inprocess:bool -> Netlist.Net.t -> report
(** COM; RET; COM, with per-target Theorem-2 skews.  The [budget] is
    threaded into the COM sweeps (see {!Transform.Com.run}); the
    structural passes always run to completion. *)

val phase_front : Netlist.Net.t -> Netlist.Net.t * Translate.t
(** Phase abstraction front-end for latch-based designs; the returned
    translator multiplies bounds by the folding factor (Theorem 3). *)

type summary = {
  proved_small : int;  (** |T'|: targets with a bound below the cutoff *)
  total : int;  (** |T| *)
  average : float;  (** average translated bound over T' (0 if empty) *)
}

val summarize : cutoff:int -> report -> summary
val pp_report : cutoff:int -> Format.formatter -> report -> unit
