(* Independent certification primitives for engine verdicts.

   Each check re-derives an answer from recorded evidence using
   machinery disjoint from whatever produced it: counterexamples
   replay on the three-valued simulator, Unsat answers re-check
   through the DRUP verifier, and bound translations are recomputed
   from the recorded theorem applications with local arithmetic
   instead of the translator closures.  The checks are verdict-shaped
   primitives; {!Engine} composes them per strategy. *)

module Net = Netlist.Net
module Stats = Obs.Stats

(* every check runs under a stats span and a trace span of the same
   name, so certification overhead is separable from the solver work
   it is checking; the trace span records whether the check passed *)
let timed name f =
  Obs.Trace.with_span_args name (fun () ->
      let r = Stats.time name f in
      (r, [ ("ok", Obs.Trace.Bool (Result.is_ok r)) ]))

let check_cex net target cex =
  timed "certify.replay" (fun () ->
      if Bmc.replay net target cex then Ok ()
      else
        Error
          (Printf.sprintf
             "counterexample does not replay: target not hit at time %d"
             cex.Bmc.depth))

let check_no_hit ?depth (cert : Bmc.cert) =
  timed "certify.drup" (fun () ->
      let goals = List.rev_map (fun (_, tl) -> [ tl ]) cert.Bmc.goals in
      let missing =
        (* one refuted goal per depth 0..d, or the answer is not what
           the proof claims to certify *)
        match depth with
        | Some d -> List.length goals <> d + 1
        | None -> goals = []
      in
      if missing then
        Error
          (Printf.sprintf "no-hit certificate covers %d depth(s), expected %s"
             (List.length goals)
             (match depth with
             | Some d -> string_of_int (d + 1)
             | None -> "at least 1"))
      else Sat.Drup.check ~goals (Sat.Proof.events cert.Bmc.proof))

(* Saturating arithmetic reimplemented locally (same semantics as
   Sat_bound: saturation at max_int / 4) so that certifying a
   translation shares no code with computing it. *)
let sat_point = max_int / 4

let sat_add a b =
  if a >= sat_point || b >= sat_point || a + b >= sat_point then sat_point
  else a + b

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if a >= sat_point || b >= sat_point || a > sat_point / b then sat_point
  else a * b

let pp_step ppf = function
  | Translate.Id -> Format.pp_print_string ppf "id"
  | Translate.T1 -> Format.pp_print_string ppf "T1"
  | Translate.T2 skew -> Format.fprintf ppf "T2(+%d)" skew
  | Translate.T3 factor -> Format.fprintf ppf "T3(x%d)" factor
  | Translate.T4 k -> Format.fprintf ppf "T4(+%d)" k

let apply_step d = function
  | Translate.Id | Translate.T1 -> d
  | Translate.T2 skew -> sat_add d skew
  | Translate.T3 factor -> sat_mul d factor
  | Translate.T4 k -> sat_add d k

let check_translation ~raw ~steps ~claimed =
  timed "certify.translate" (fun () ->
      let negative =
        List.exists
          (function
            | Translate.T2 skew -> skew < 0
            | Translate.T3 factor -> factor < 1
            | Translate.T4 k -> k < 0
            | Translate.Id | Translate.T1 -> false)
          steps
      in
      if negative then Error "translation step with an illegal parameter"
      else if raw < 0 then Error "negative raw bound"
      else begin
        let recomputed = List.fold_left apply_step raw steps in
        if recomputed = claimed then Ok ()
        else
          Error
            (Format.asprintf
               "bound translation mismatch: %d via [%a] gives %d, claimed %d"
               raw
               (Format.pp_print_list
                  ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
                  pp_step)
               steps recomputed claimed)
      end)

let check_recurrence (cert : Recurrence.cert) =
  match cert.Recurrence.evidence with
  | None -> Error "recurrence certificate has no evidence"
  | Some Recurrence.Structural ->
    (* register-free cone: the bound never depended on a SAT answer,
       so there is nothing clausal to check — same trust class as the
       structural bounds *)
    Ok ()
  | Some (Recurrence.Refutation events) ->
    timed "certify.drup" (fun () ->
        match Sat.Drup.check events with
        | Ok () -> Ok ()
        | Error msg -> Error ("recurrence closure: " ^ msg))

let check_induction ~k (cert : Induction.cert) =
  match cert.Induction.base with
  | None -> Error "induction certificate has no base-case evidence"
  | Some base -> (
    match check_no_hit ~depth:k base with
    | Error msg -> Error ("base case: " ^ msg)
    | Ok () -> (
      match cert.Induction.step with
      | None ->
        (* stateless designs are proved by the depth-0 base alone *)
        if k = 0 then Ok ()
        else Error "induction certificate has no step-case evidence"
      | Some (events, goal) ->
        timed "certify.drup" (fun () ->
            match Sat.Drup.check ~goals:[ [ goal ] ] events with
            | Ok () -> Ok ()
            | Error msg -> Error ("step case: " ^ msg))))
