(** A byte-budgeted LRU cache for verification results.

    Keys are opaque strings — in practice canonical fingerprints
    ({!Netlist.Net.cone_fingerprint}) combined with a digest of the
    engine configuration, so structurally equal problems share entries
    no matter how their netlists were built.  Values are the {e
    reusable} part of a verification: a strategy's computed
    completeness bound, or a certified conclusive verdict.  Anything
    uncertified or inconclusive is deliberately uncacheable — a cache
    must never launder a result whose provenance was not checked
    (see DESIGN.md §8 for the coherence invariants the serve layer's
    chaos drill enforces on top).

    The cache is mutex-protected (serve workers on several domains hit
    it concurrently) and instrumented: [<prefix>.hits], [.misses],
    [.insertions], [.evictions], [.purged] counters plus [.entries]
    and [.bytes] gauges, so a [--stats-json] snapshot shows cache
    effectiveness directly. *)

type payload =
  | Bound of { strategy : string; raw : Sat_bound.t }
      (** a strategy's completeness bound, already translated to the
          original netlist of the cached cone.  Cutoff-independent:
          whether the bound is {e dischargeable} is decided by the
          configuration of the run that replays it. *)
  | Proved of { strategy : string; depth : int }
  | Violated of { strategy : string; cex : Bmc.cex }
      (** conclusive verdicts are cached only after certification
          succeeded; the replaying side may re-certify (the cex
          replays on the requesting netlist precisely because the key
          fingerprints the cone it was found in) *)

type t

val create : ?prefix:string -> max_bytes:int -> unit -> t
(** [create ~max_bytes ()] — an empty cache holding at most (an
    estimate of) [max_bytes] bytes of entries; least-recently-used
    entries are evicted on overflow.  [prefix] (default ["cache"])
    names the counters, e.g. ["serve.cache"].
    @raise Invalid_argument when [max_bytes <= 0]. *)

val find : t -> string -> payload option
(** Lookup; a hit refreshes the entry's recency and bumps
    [<prefix>.hits] / [<prefix>.misses]. *)

val peek : t -> string -> payload option
(** {!find} without the hit/miss counters (recency is still
    refreshed).  For speculative probes — the engine probing every
    ladder strategy for a seedable bound must not drown the
    request-level hit ratio. *)

val add : t -> string -> payload -> unit
(** Insert or replace, then evict from the cold end until the byte
    budget holds.  An entry larger than the whole budget is refused
    (and counted as an eviction) rather than cycling the cache. *)

val remove : t -> string -> bool
(** [true] iff the key was present. *)

val purge : t -> (string -> payload -> bool) -> int
(** Drop every entry the predicate selects, returning how many.  The
    coherence hammer: when a served result is found poisoned or fails
    re-certification, the serve layer purges the fingerprint's entries
    so the fault cannot be replayed to a later request. *)

val clear : t -> unit

val length : t -> int
val bytes : t -> int
(** Current entry count / estimated resident bytes. *)

val max_bytes : t -> int
