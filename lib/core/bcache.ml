type payload =
  | Bound of { strategy : string; raw : Sat_bound.t }
  | Proved of { strategy : string; depth : int }
  | Violated of { strategy : string; cex : Bmc.cex }

(* intrusive doubly-linked LRU order: [first] is most recently used,
   [last] is the eviction candidate *)
type node = {
  key : string;
  mutable payload : payload;
  mutable size : int;
  mutable prev : node option; (* towards [first] *)
  mutable next : node option; (* towards [last] *)
}

type t = {
  prefix : string;
  max_bytes : int;
  lock : Mutex.t;
  index : (string, node) Hashtbl.t;
  mutable first : node option;
  mutable last : node option;
  mutable bytes : int;
}

(* Approximate heap footprint.  The budget exists to keep a long-lived
   server's memory bounded, not to account bytes exactly, so a cheap
   structural estimate is enough: fixed per-node overhead (node, two
   hashtable words, LRU links) plus string payloads plus list cells. *)
let node_overhead = 120

let payload_bytes = function
  | Bound { strategy; _ } -> 48 + String.length strategy
  | Proved { strategy; _ } -> 32 + String.length strategy
  | Violated { strategy; cex } ->
    48 + String.length strategy
    + (48 * List.length cex.Bmc.inputs)
    + (32 * List.length cex.Bmc.init_x)

let entry_bytes key payload =
  node_overhead + String.length key + payload_bytes payload

let c t name = t.prefix ^ name

let create ?(prefix = "cache") ~max_bytes () =
  if max_bytes <= 0 then invalid_arg "Bcache.create: max_bytes must be positive";
  let prefix = prefix ^ "." in
  Obs.Stats.declare
    (List.map (( ^ ) prefix)
       [ "hits"; "misses"; "insertions"; "evictions"; "purged"; "entries";
         "bytes" ]);
  {
    prefix;
    max_bytes;
    lock = Mutex.create ();
    index = Hashtbl.create 64;
    first = None;
    last = None;
    bytes = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ----- DLL plumbing (callers hold the lock) ----- *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.first <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.last <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.first;
  (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n

let touch t n =
  if t.first != Some n then begin
    unlink t n;
    push_front t n
  end

let drop t n =
  unlink t n;
  Hashtbl.remove t.index n.key;
  t.bytes <- t.bytes - n.size

let gauges t =
  Obs.Stats.set_gauge (c t "entries") (Hashtbl.length t.index);
  Obs.Stats.set_gauge (c t "bytes") t.bytes

let evict_to_budget t =
  while t.bytes > t.max_bytes && t.last <> None do
    (match t.last with
    | Some n ->
      drop t n;
      Obs.Stats.count (c t "evictions") 1
    | None -> ())
  done

(* ----- public surface ----- *)

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.index key with
      | Some n ->
        touch t n;
        Obs.Stats.count (c t "hits") 1;
        Some n.payload
      | None ->
        Obs.Stats.count (c t "misses") 1;
        None)

let peek t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.index key with
      | Some n ->
        touch t n;
        Some n.payload
      | None -> None)

let add t key payload =
  let size = entry_bytes key payload in
  locked t (fun () ->
      if size > t.max_bytes then begin
        (* a single entry larger than the whole budget would evict
           everything and then itself — refuse it instead (it still
           counts as an eviction: the budget pushed it out) *)
        (match Hashtbl.find_opt t.index key with Some n -> drop t n | None -> ());
        Obs.Stats.count (c t "evictions") 1
      end
      else begin
        (match Hashtbl.find_opt t.index key with
        | Some n ->
          t.bytes <- t.bytes - n.size + size;
          n.payload <- payload;
          n.size <- size;
          touch t n
        | None ->
          let n = { key; payload; size; prev = None; next = None } in
          Hashtbl.replace t.index key n;
          t.bytes <- t.bytes + size;
          push_front t n);
        Obs.Stats.count (c t "insertions") 1;
        evict_to_budget t
      end;
      gauges t)

let remove t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.index key with
      | Some n ->
        drop t n;
        gauges t;
        true
      | None -> false)

let purge t pred =
  locked t (fun () ->
      let doomed =
        Hashtbl.fold
          (fun _ n acc -> if pred n.key n.payload then n :: acc else acc)
          t.index []
      in
      List.iter (drop t) doomed;
      let n = List.length doomed in
      if n > 0 then Obs.Stats.count (c t "purged") n;
      gauges t;
      n)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.index;
      t.first <- None;
      t.last <- None;
      t.bytes <- 0;
      gauges t)

let length t = locked t (fun () -> Hashtbl.length t.index)
let bytes t = locked t (fun () -> t.bytes)
let max_bytes t = t.max_bytes
