(** Temporal induction (k-induction with simple-path uniqueness),
    after Sheeran, Singh & Stålmarck [5] — the hybrid the paper's
    footnote positions between QBF diameter computation and the
    recurrence diameter.

    For increasing [k]: the base case is BMC to depth [k]; the step
    case checks, from a {e free} state, that [k] consecutive hit-free
    steps force a hit-free step [k+1].  With [unique] (default), the
    [k+1] states are additionally constrained pairwise distinct, which
    makes the method complete at the recurrence diameter: the method
    thus terminates on exactly the designs whose recurrence diameter
    is small — whereas the structural bound of {!Bound} can prove
    pipelines of any depth with a single shallow BMC run (see the
    comparison in the benchmark harness). *)

type outcome =
  | Proved of int  (** induction depth that closed the proof *)
  | Cex of Bmc.cex
  | Unknown of int  (** gave up after this k (configured [max_k]) *)
  | Exhausted of int
      (** resource budget ran out at this k — unlike {!Unknown}, raising
          [max_k] would not have helped *)

val prove :
  ?max_k:int ->
  ?unique:bool ->
  ?budget:Obs.Budget.t ->
  Netlist.Net.t ->
  target:string ->
  outcome
(** [max_k] defaults to 32.  A [budget] is checked between induction
    depths and threaded into every SAT call.  @raise Invalid_argument
    on an unknown target. *)
