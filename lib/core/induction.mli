(** Temporal induction (k-induction with simple-path uniqueness),
    after Sheeran, Singh & Stålmarck [5] — the hybrid the paper's
    footnote positions between QBF diameter computation and the
    recurrence diameter.

    For increasing [k]: the base case is BMC to depth [k]; the step
    case checks, from a {e free} state, that [k] consecutive hit-free
    steps force a hit-free step [k+1].  With [unique] (default), the
    [k+1] states are additionally constrained pairwise distinct, which
    makes the method complete at the recurrence diameter: the method
    thus terminates on exactly the designs whose recurrence diameter
    is small — whereas the structural bound of {!Bound} can prove
    pipelines of any depth with a single shallow BMC run (see the
    comparison in the benchmark harness). *)

type outcome =
  | Proved of int  (** induction depth that closed the proof *)
  | Cex of Bmc.cex
  | Unknown of int  (** gave up after this k (configured [max_k]) *)
  | Exhausted of { k : int; why : string }
      (** resource budget ran out at this k — unlike {!Unknown}, raising
          [max_k] would not have helped; [why] is the structured
          stand-down reason ({!Backend.budget_reason}, or a
          backend-specific node-limit / unavailable string) *)

type cert = {
  mutable base : Bmc.cert option;
      (** BMC certificate of the final base case (depth k) *)
  mutable step : (Sat.Proof.event list * Sat.Solver.lit) option;
      (** the step solver's proof and the frame-[k+1] target literal;
          refuting the literal against the proof certifies the
          induction step *)
}
(** Certificate for a [Proved k] outcome (see
    [Core.Certify.check_induction]).  Note the step case certifies the
    induction argument relative to the step encoding; the base BMC
    certificate is what ties the verdict to the netlist. *)

val new_cert : unit -> cert

val prove :
  ?max_k:int ->
  ?unique:bool ->
  ?budget:Obs.Budget.t ->
  ?cert:cert ->
  ?backend:Backend.t ->
  Netlist.Net.t ->
  target:string ->
  outcome
(** [max_k] defaults to 32.  A [budget] is checked between induction
    depths and threaded into every SAT call.  When a [cert] is passed
    it is filled in as the proof progresses; its contents are only
    meaningful on a [Proved] outcome.  @raise Invalid_argument on an
    unknown target. *)
