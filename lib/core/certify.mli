(** Independent certification of engine verdicts.

    Every check re-derives an answer from recorded evidence through a
    code path disjoint from the one that produced it:

    - a counterexample replays on the three-valued {e simulator} (the
      netlist semantics), never through the SAT encoding that found it;
    - an Unsat answer re-checks through the {!Sat.Drup} verifier,
      which has its own clause store and unit propagation;
    - a bound translation is recomputed from the recorded
      {!Translate.step} chain with locally reimplemented saturating
      arithmetic, not the translator closures.

    All checks are pure with respect to the prover state and record
    their cost in the ["certify.replay"], ["certify.drup"] and
    ["certify.translate"] spans.  {!Engine.verify} composes them per
    strategy when called with [~certify:true]. *)

val check_cex :
  Netlist.Net.t -> Netlist.Lit.t -> Bmc.cex -> (unit, string) result
(** Certify a [Violated] verdict: the counterexample must replay on
    the {e original} netlist and hit the target literal at its claimed
    depth. *)

val check_no_hit : ?depth:int -> Bmc.cert -> (unit, string) result
(** Certify a [No_hit] outcome: every per-depth goal must be refuted
    by the DRUP derivation.  When [depth] is given, additionally
    require one goal per time step [0 .. depth] — a certificate
    covering fewer depths than the answer claims is rejected even if
    its goals all check. *)

val check_translation :
  raw:Sat_bound.t ->
  steps:Translate.step list ->
  claimed:Sat_bound.t ->
  (unit, string) result
(** Certify the Theorems-1..4 bound arithmetic: folding [steps] over
    [raw] (with independent saturating arithmetic) must reproduce
    [claimed] exactly. *)

val check_recurrence : Recurrence.cert -> (unit, string) result
(** Certify a finite recurrence-diameter bound: the closing Unsat
    answer's derivation must reach the empty clause through the DRUP
    verifier.  A register-free cone carries [Structural] evidence and
    is accepted without a clausal check. *)

val check_induction : k:int -> Induction.cert -> (unit, string) result
(** Certify an [Induction.Proved k] outcome: the base-case BMC
    certificate must cover depths [0 .. k], and the step-case proof
    must refute the frame-[k+1] target literal.  A missing step case
    is accepted only at [k = 0] (stateless designs are proved by the
    base alone). *)
