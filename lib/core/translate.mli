(** The paper's Theorems 1-4 as typed bound translators: each
    transformation contributes a constant-time function carrying a
    diameter bound obtained on the transformed netlist back to the
    original netlist.  Pipelines compose these functions.

    {!localization} and {!case_split} deliberately have no translator:
    Sections 3.5/3.6 prove that bounds from over/under-approximate
    abstractions cannot be used in general (see [Test_unsound] for the
    witnessing netlists). *)

type step = Id | T1 | T2 of int | T3 of int | T4 of int
(** One theorem application, as data: the skew of a retiming, the
    factor of a state folding, the k of an enlargement.  Carried
    alongside the opaque [apply] closure so the certification layer
    ({!Certify.check_translation}) can recompute the arithmetic
    independently instead of trusting the closure. *)

type t = {
  name : string;
  apply : Sat_bound.t -> Sat_bound.t;
      (** bound on the transformed netlist -> bound on the original *)
  kind : [ `Exact | `Upper | `Hittability ];
      (** [`Exact]: the diameters are equal (Theorem 1);
          [`Upper]: an upper bound on the diameter (Theorems 2, 3);
          [`Hittability]: bounds only the depth at which the target
          can first be hit (Theorem 4) — still a sound BMC
          completeness threshold for that target. *)
  steps : step list;
      (** the applications making up [apply], first-applied first: a
          left fold over [steps] starting from the raw bound equals
          [apply raw] *)
}

val identity : t

val trace_equivalence : t
(** Theorem 1: trace-equivalence-preserving transformations
    (redundancy removal, COI reduction, parametric re-encoding)
    preserve the diameter exactly. *)

val retiming : skew:int -> t
(** Theorem 2: [d(U) <= d(U') + skew] for a normalized retiming where
    every vertex of [U] has lag [-skew]. *)

val state_folding : factor:int -> t
(** Theorem 3: [d(U) <= factor * d(U')] for phase abstraction and
    c-slow abstraction. *)

val target_enlargement : k:int -> t
(** Theorem 4: a k-step enlarged target with diameter [d] means the
    original target is hittable within [d + k] steps, if at all. *)

val compose : t -> t -> t
(** [compose outer inner]: [inner] transformed the output of [outer];
    bounds flow [inner]'s netlist -> [outer]'s netlist -> original. *)

val pp : Format.formatter -> t -> unit
