type step = Id | T1 | T2 of int | T3 of int | T4 of int

type t = {
  name : string;
  apply : Sat_bound.t -> Sat_bound.t;
  kind : [ `Exact | `Upper | `Hittability ];
  steps : step list;
}

let identity = { name = "id"; apply = Fun.id; kind = `Exact; steps = [ Id ] }

let trace_equivalence =
  { name = "T1"; apply = Fun.id; kind = `Exact; steps = [ T1 ] }

let retiming ~skew =
  if skew < 0 then invalid_arg "Translate.retiming: negative skew";
  {
    name = Printf.sprintf "T2(+%d)" skew;
    apply = (fun d -> Sat_bound.add d (Sat_bound.of_int skew));
    kind = `Upper;
    steps = [ T2 skew ];
  }

let state_folding ~factor =
  if factor < 1 then invalid_arg "Translate.state_folding: factor < 1";
  {
    name = Printf.sprintf "T3(x%d)" factor;
    apply = (fun d -> Sat_bound.mul d (Sat_bound.of_int factor));
    kind = `Upper;
    steps = [ T3 factor ];
  }

let target_enlargement ~k =
  if k < 0 then invalid_arg "Translate.target_enlargement: negative k";
  {
    name = Printf.sprintf "T4(+%d)" k;
    apply = (fun d -> Sat_bound.add d (Sat_bound.of_int k));
    kind = `Hittability;
    steps = [ T4 k ];
  }

let weakest a b =
  match (a, b) with
  | `Hittability, _ | _, `Hittability -> `Hittability
  | `Upper, _ | _, `Upper -> `Upper
  | `Exact, `Exact -> `Exact

let compose outer inner =
  {
    name = outer.name ^ ";" ^ inner.name;
    apply = (fun d -> outer.apply (inner.apply d));
    kind = weakest outer.kind inner.kind;
    (* [steps] lists applications first-applied first, so a fold over
       it reproduces [apply] *)
    steps = inner.steps @ outer.steps;
  }

let pp ppf t = Format.pp_print_string ppf t.name
