(** Enhanced diameter bounding via structural transformation
    (Baumgartner & Kuehlmann, DATE 2004).

    The core library: the compositional structural diameter
    overapproximation of [7] ({!Classify}, {!Compose}, {!Bound}), the
    Theorem-1..4 bound translators ({!Translate}), the recurrence
    diameter baseline ({!Recurrence}), an exact explicit-state oracle
    ({!Exact}) and the transformation pipelines driving the paper's
    experiments ({!Pipeline}). *)

module Sat_bound = Sat_bound
module Classify = Classify
module Compose = Compose
module Bound = Bound
module Translate = Translate
module Recurrence = Recurrence
module Induction = Induction
module Certify = Certify
module Exact = Exact
module Pipeline = Pipeline
module Engine = Engine
module Bcache = Bcache
module Symbolic = Symbolic
