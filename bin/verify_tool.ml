(* diam-verify: the push-button transformation-based verification
   driver.

     diam-verify circuit.bench --target po0
     diam-verify circuit.bench               # every target            *)

module Net = Netlist.Net

let run file target cutoff vcd stats stats_json =
  let net = Textio.Bench_io.parse_file file in
  let targets =
    match target with
    | Some t -> [ t ]
    | None -> List.map fst (Net.targets net)
  in
  if targets = [] then begin
    Format.eprintf "netlist has no targets@.";
    exit 2
  end;
  let config = { Core.Engine.default with Core.Engine.cutoff } in
  let failures = ref 0 in
  List.iter
    (fun t ->
      let verdict = Core.Engine.verify ~config net ~target:t in
      Format.printf "%-24s %a@." t Core.Engine.pp_verdict verdict;
      match verdict with
      | Core.Engine.Violated { cex; _ } ->
        incr failures;
        (match vcd with
        | Some path ->
          let path = Printf.sprintf "%s.%s.vcd" path t in
          Textio.Vcd.write_file path net (Bmc.frames_of_cex net cex);
          Format.printf "  waveform: %s@." path
        | None -> ())
      | Core.Engine.Proved _ -> ()
      | Core.Engine.Inconclusive _ -> incr failures)
    targets;
  Obs.Report.emit ~human:stats ?json_file:stats_json ();
  if !failures > 0 then exit 1

open Cmdliner

let file =
  Arg.(
    required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:".bench netlist")

let target =
  Arg.(
    value
    & opt (some string) None
    & info [ "target" ] ~docv:"NAME" ~doc:"Target to verify (default: all)")

let cutoff =
  Arg.(
    value & opt int 50
    & info [ "cutoff" ] ~docv:"N"
        ~doc:"Largest diameter bound considered BMC-dischargeable")

let vcd =
  Arg.(
    value
    & opt (some string) None
    & info [ "vcd" ] ~docv:"PREFIX"
        ~doc:"Dump counterexample waveforms to PREFIX.<target>.vcd")

let stats =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print the observability counters and timing spans after the run")

let stats_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:"Write the observability snapshot as JSON to $(docv)")

let cmd =
  let doc = "transformation-based verification (probe, bounds, induction)" in
  Cmd.v
    (Cmd.info "diam-verify" ~doc)
    Term.(const run $ file $ target $ cutoff $ vcd $ stats $ stats_json)

let () = exit (Cmd.eval cmd)
