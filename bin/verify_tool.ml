(* diam-verify: the push-button transformation-based verification
   driver.

     diam-verify circuit.bench --target po0
     diam-verify circuit.bench               # every target
     diam-verify circuit.bench --timeout 60  # shared deadline         *)

module Net = Netlist.Net

let run file target cutoff certify proof vcd budget jobs stats stats_json trace
    log_level log_file no_inprocess backend =
  Cli.setup_trace trace;
  Cli.setup_log log_level log_file;
  Cli.apply_inprocess no_inprocess;
  Cli.apply_backend backend;
  let net = Cli.load_bench file in
  let certify = certify || proof <> None in
  let targets =
    match target with
    | Some t -> [ t ]
    | None -> List.map fst (Net.targets net)
  in
  if targets = [] then Cli.die Cli.usage_error "netlist has no targets";
  let config = { Core.Engine.default with Core.Engine.cutoff } in
  let violated = ref 0 in
  let inconclusive = ref 0 in
  (* each target gets a fair share of whatever deadline remains *)
  let remaining = ref (List.length targets) in
  (* one pool shared by every target's portfolio run; verdicts and
     verdict lines are identical to --jobs 1 (rank-based selection) *)
  let pool = if jobs > 1 then Some (Sched.Pool.create ~jobs ()) else None in
  Fun.protect ~finally:(fun () -> Option.iter Sched.Pool.shutdown pool)
  @@ fun () ->
  List.iter
    (fun t ->
      let slice = Obs.Budget.slice budget ~ways:(max 1 !remaining) in
      decr remaining;
      let proof_sink =
        match proof with
        | None -> None
        | Some prefix ->
          Some
            (fun p ->
              let path = Printf.sprintf "%s.%s.drup" prefix t in
              if
                Obs.Fileout.write_or_warn ~what:"proof" path (fun oc ->
                    output_string oc (Sat.Proof.to_string p))
              then Format.printf "  proof: %s@." path)
      in
      let verdict =
        Core.Engine.verify_portfolio ~config ~budget:slice ~certify ?proof_sink
          ?pool ~jobs net ~target:t
      in
      Format.printf "%-24s %a%s@." t Core.Engine.pp_verdict verdict
        (match verdict with
        | (Core.Engine.Proved _ | Core.Engine.Violated _) when certify ->
          " [certified]"
        | _ -> "");
      match verdict with
      | Core.Engine.Violated { cex; _ } ->
        incr violated;
        (match vcd with
        | Some path ->
          let path = Printf.sprintf "%s.%s.vcd" path t in
          let text = Textio.Vcd.dump net (Bmc.frames_of_cex net cex) in
          if
            Obs.Fileout.write_or_warn ~what:"waveform" path (fun oc ->
                output_string oc text)
          then Format.printf "  waveform: %s@." path
        | None -> ())
      | Core.Engine.Proved _ -> ()
      | Core.Engine.Inconclusive _ -> incr inconclusive)
    targets;
  Obs.Report.emit ~human:stats ?json_file:stats_json
    ~meta:(Cli.stats_meta ~tool:"diam-verify" ~experiments:[ "verify" ] budget)
    ();
  if !violated > 0 then Cli.violated
  else if !inconclusive > 0 then Cli.inconclusive
  else Cli.ok

open Cmdliner

let file =
  Arg.(
    required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:".bench netlist")

let target =
  Arg.(
    value
    & opt (some string) None
    & info [ "target" ] ~docv:"NAME" ~doc:"Target to verify (default: all)")

let cutoff =
  Arg.(
    value & opt int 50
    & info [ "cutoff" ] ~docv:"N"
        ~doc:"Largest diameter bound considered BMC-dischargeable")

let vcd =
  Arg.(
    value
    & opt (some string) None
    & info [ "vcd" ] ~docv:"PREFIX"
        ~doc:"Dump counterexample waveforms to PREFIX.<target>.vcd")

let cmd =
  let doc = "transformation-based verification (probe, bounds, induction)" in
  Cmd.v
    (Cmd.info "diam-verify" ~doc)
    Term.(
      const run $ file $ target $ cutoff $ Cli.certify $ Cli.proof_file $ vcd
      $ Cli.budget $ Cli.jobs $ Cli.stats $ Cli.stats_json $ Cli.trace
      $ Cli.log_level $ Cli.log_file $ Cli.no_inprocess $ Cli.backend)

let () = exit (Cli.main cmd)
