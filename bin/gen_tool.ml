(* diam-gen: emit the synthetic benchmark designs as .bench files.

     diam-gen --design S5378 -o s5378.bench
     diam-gen --list                                                  *)

let run design output list_them trace =
  Cli.setup_trace trace;
  if list_them then begin
    Format.printf "ISCAS89-like (Table 1):@.";
    List.iter (Format.printf "  %s@.") Workload.Iscas.names;
    Format.printf "GP-like, two-phase latches (Table 2):@.";
    List.iter (Format.printf "  %s@.") Workload.Gp.names;
    Cli.ok
  end
  else
    match design with
    | None -> Cli.die Cli.usage_error "give --design NAME (see --list)"
    | Some name -> (
      let net =
        match Workload.Iscas.by_name name with
        | net -> Some net
        | exception Not_found -> (
          match Workload.Gp.by_name name with
          | net -> Some net
          | exception Not_found -> None)
      in
      match net with
      | None -> Cli.die Cli.usage_error "unknown design %s (see --list)" name
      | Some net -> (
        let text = Textio.Bench_io.to_string net in
        match output with
        | Some path ->
          if
            Obs.Fileout.write_or_warn ~what:"netlist" path (fun oc ->
                output_string oc text)
          then begin
            Format.printf "wrote %s (%a)@." path Netlist.Net.pp_stats net;
            Cli.ok
          end
          else Cli.usage_error
        | None ->
          print_string text;
          Cli.ok))

open Cmdliner

let design =
  Arg.(
    value
    & opt (some string) None
    & info [ "design" ] ~docv:"NAME" ~doc:"Design to emit")

let output =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path (default stdout)")

let list_them =
  Arg.(value & flag & info [ "list" ] ~doc:"List the available designs")

let cmd =
  let doc = "emit the synthetic Table 1/2 benchmark designs as .bench" in
  Cmd.v
    (Cmd.info "diam-gen" ~doc)
    Term.(const run $ design $ output $ list_them $ Cli.trace)

let () = exit (Cli.main cmd)
