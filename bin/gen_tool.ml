(* diam-gen: emit the synthetic benchmark designs as .bench files.

     diam-gen --design S5378 -o s5378.bench
     diam-gen --list                                                  *)

(* --all DIR: emit every built-in design, generated across --jobs
   worker domains (each design builds its own netlist, so generation
   parallelizes trivially); the "wrote ..." lines print in catalogue
   order either way *)
let run_all dir jobs =
  (match Sys.is_directory dir with
  | true -> ()
  | false -> Cli.die Cli.usage_error "%s exists and is not a directory" dir
  | exception Sys_error _ -> (
    match Sys.mkdir dir 0o755 with
    | () -> ()
    | exception Sys_error msg -> Cli.die Cli.usage_error "%s" msg));
  let names = Workload.Iscas.names @ Workload.Gp.names in
  let emit name =
    let net =
      match Workload.Iscas.by_name name with
      | net -> net
      | exception Not_found -> Workload.Gp.by_name name
    in
    let path =
      Filename.concat dir (String.lowercase_ascii name ^ ".bench")
    in
    let text = Textio.Bench_io.to_string net in
    let ok =
      Obs.Fileout.write_or_warn ~what:"netlist" path (fun oc ->
          output_string oc text)
    in
    (path, net, ok)
  in
  let results =
    if jobs > 1 then
      Sched.Pool.with_pool ~jobs (fun pool -> Sched.Pool.map pool emit names)
    else List.map emit names
  in
  let failed = ref 0 in
  List.iter
    (fun (path, net, ok) ->
      if ok then Format.printf "wrote %s (%a)@." path Netlist.Net.pp_stats net
      else incr failed)
    results;
  if !failed > 0 then Cli.usage_error else Cli.ok

let run design output list_them all jobs trace log_level log_file no_inprocess
    backend =
  Cli.setup_trace trace;
  Cli.setup_log log_level log_file;
  Cli.apply_inprocess no_inprocess;
  Cli.apply_backend backend;
  if list_them then begin
    Format.printf "ISCAS89-like (Table 1):@.";
    List.iter (Format.printf "  %s@.") Workload.Iscas.names;
    Format.printf "GP-like, two-phase latches (Table 2):@.";
    List.iter (Format.printf "  %s@.") Workload.Gp.names;
    Cli.ok
  end
  else
    match all with
    | Some dir -> run_all dir jobs
    | None ->
      (match design with
    | None -> Cli.die Cli.usage_error "give --design NAME (see --list)"
    | Some name -> (
      let net =
        match Workload.Iscas.by_name name with
        | net -> Some net
        | exception Not_found -> (
          match Workload.Gp.by_name name with
          | net -> Some net
          | exception Not_found -> None)
      in
      match net with
      | None -> Cli.die Cli.usage_error "unknown design %s (see --list)" name
      | Some net -> (
        let text = Textio.Bench_io.to_string net in
        match output with
        | Some path ->
          if
            Obs.Fileout.write_or_warn ~what:"netlist" path (fun oc ->
                output_string oc text)
          then begin
            Format.printf "wrote %s (%a)@." path Netlist.Net.pp_stats net;
            Cli.ok
          end
          else Cli.usage_error
        | None ->
          print_string text;
          Cli.ok)))

open Cmdliner

let design =
  Arg.(
    value
    & opt (some string) None
    & info [ "design" ] ~docv:"NAME" ~doc:"Design to emit")

let output =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path (default stdout)")

let list_them =
  Arg.(value & flag & info [ "list" ] ~doc:"List the available designs")

let all =
  Arg.(
    value
    & opt (some string) None
    & info [ "all" ] ~docv:"DIR"
        ~doc:"Emit every built-in design into $(docv) (created if missing), \
              one <name>.bench each; with $(b,--jobs) the designs generate \
              in parallel")

let cmd =
  let doc = "emit the synthetic Table 1/2 benchmark designs as .bench" in
  Cmd.v
    (Cmd.info "diam-gen" ~doc)
    Term.(
      const run $ design $ output $ list_them $ all $ Cli.jobs $ Cli.trace
      $ Cli.log_level $ Cli.log_file $ Cli.no_inprocess $ Cli.backend)

let () = exit (Cli.main cmd)
