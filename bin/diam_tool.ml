(* diam: per-target structural diameter bounds for a .bench netlist,
   through a chosen transformation pipeline.

     diam circuit.bench
     diam --design S5378 --pipeline com-ret-com
     diam circuit.bench --recurrence --cutoff 30
     diam circuit.bench --pipeline com --timeout 30                    *)

module Net = Netlist.Net

let load file design =
  match (file, design) with
  | Some path, None -> Cli.load_bench path
  | None, Some name -> (
    match Workload.Iscas.by_name name with
    | net -> net
    | exception Not_found -> (
      match Workload.Gp.by_name name with
      | latched -> fst (Core.Pipeline.phase_front latched)
      | exception Not_found ->
        Cli.die Cli.usage_error "unknown built-in design %s" name))
  | Some _, Some _ ->
    Cli.die Cli.usage_error "give either a file or --design, not both"
  | None, None ->
    Cli.die Cli.usage_error "no input: give a .bench file or --design NAME"

let run file design pipeline cutoff recurrence budget jobs stats stats_json
    trace no_inprocess =
  Cli.setup_trace trace;
  Cli.apply_inprocess no_inprocess;
  let net = load file design in
  Format.printf "netlist: %a@." Net.pp_stats net;
  let report =
    match pipeline with
    | "original" -> Core.Pipeline.original net
    | "com" -> Core.Pipeline.com ~budget net
    | "com-ret-com" -> Core.Pipeline.com_ret_com ~budget net
    | other -> Cli.die Cli.usage_error "unknown pipeline %s" other
  in
  Format.printf "pipeline %s: register classes (CC;AC;MC+QC;GC) %a@."
    report.Core.Pipeline.pipeline Core.Classify.pp_counts
    report.Core.Pipeline.reg_counts;
  (* the per-target recurrence baselines are independent SAT problems:
     with --jobs they compute across worker domains, then print in
     target order so the output never depends on completion order *)
  let recurrences =
    if not recurrence then List.map (fun _ -> None) report.Core.Pipeline.targets
    else begin
      let compute t =
        match List.assoc_opt t.Core.Pipeline.target (Net.targets net) with
        | Some lit -> Some (Core.Recurrence.compute ~limit:64 ~budget net lit)
        | None -> None
      in
      if jobs > 1 then
        Sched.Pool.with_pool ~jobs (fun pool ->
            Sched.Pool.map pool compute report.Core.Pipeline.targets)
      else List.map compute report.Core.Pipeline.targets
    end
  in
  List.iter2
    (fun t rec_result ->
      Format.printf "  %-24s bound %-8s (raw %s via %a)" t.Core.Pipeline.target
        (Core.Sat_bound.to_string t.Core.Pipeline.bound)
        (Core.Sat_bound.to_string t.Core.Pipeline.raw_bound)
        Core.Translate.pp t.Core.Pipeline.translator;
      (match rec_result with
      | Some r ->
        Format.printf "  recurrence %s (%d SAT calls%s)"
          (Core.Sat_bound.to_string r.Core.Recurrence.bound)
          r.Core.Recurrence.sat_calls
          (if r.Core.Recurrence.exhausted then ", budget exhausted" else "")
      | None -> ());
      Format.printf "@.")
    report.Core.Pipeline.targets recurrences;
  let s = Core.Pipeline.summarize ~cutoff report in
  Format.printf "targets below cutoff %d: %d/%d (avg %.1f)@." cutoff
    s.Core.Pipeline.proved_small s.Core.Pipeline.total s.Core.Pipeline.average;
  Obs.Report.emit ~human:stats ?json_file:stats_json
    ~meta:(Cli.stats_meta ~tool:"diam" ~experiments:[ pipeline ] budget)
    ();
  Cli.ok

open Cmdliner

let file =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:".bench netlist")

let design =
  Arg.(
    value
    & opt (some string) None
    & info [ "design" ] ~docv:"NAME"
        ~doc:"Built-in benchmark design (Table 1/2 name, e.g. S5378 or L_LRU)")

let pipeline =
  Arg.(
    value & opt string "original"
    & info [ "pipeline" ] ~docv:"P"
        ~doc:"Transformation pipeline: original, com, or com-ret-com")

let cutoff =
  Arg.(
    value & opt int 50
    & info [ "cutoff" ] ~docv:"N" ~doc:"BMC-dischargeable bound cutoff")

let recurrence =
  Arg.(
    value & flag
    & info [ "recurrence" ]
        ~doc:"Also compute the recurrence-diameter baseline per target")

(* ----- batch: multi-problem server mode ----- *)

(* Every (netlist, target) pair across the given files becomes one
   job; jobs run the full sequential strategy ladder and are scheduled
   across the pool for throughput (problem-level parallelism, in
   contrast to diam-verify's strategy-level portfolio).  Verdict lines
   print in input order; the wall-clock budget is one shared deadline
   for the whole batch. *)
let run_batch files cutoff certify budget jobs stats stats_json trace
    no_inprocess =
  Cli.setup_trace trace;
  Cli.apply_inprocess no_inprocess;
  let problems =
    List.concat_map
      (fun file ->
        let net = Cli.load_bench file in
        List.map (fun (t, _) -> (file, net, t)) (Net.targets net))
      files
  in
  if problems = [] then Cli.die Cli.usage_error "no targets in any input";
  let config = { Core.Engine.default with Core.Engine.cutoff } in
  let solve (_, net, t) =
    Core.Engine.verify ~config ~certify ~budget net ~target:t
  in
  let verdicts =
    if jobs > 1 then
      Sched.Pool.with_pool ~jobs (fun pool ->
          Sched.Pool.map pool solve problems)
    else List.map solve problems
  in
  let violated = ref 0 in
  let inconclusive = ref 0 in
  List.iter2
    (fun (file, _, t) v ->
      Format.printf "%s:%-24s %a@." file t Core.Engine.pp_verdict v;
      match v with
      | Core.Engine.Violated _ -> incr violated
      | Core.Engine.Inconclusive _ -> incr inconclusive
      | Core.Engine.Proved _ -> ())
    problems verdicts;
  Obs.Report.emit ~human:stats ?json_file:stats_json
    ~meta:(Cli.stats_meta ~tool:"diam" ~experiments:[ "batch" ] budget)
    ();
  if !violated > 0 then Cli.violated
  else if !inconclusive > 0 then Cli.inconclusive
  else Cli.ok

let batch_cmd =
  let files =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILE" ~doc:".bench netlists (every target of each)")
  in
  let cutoff =
    Arg.(
      value & opt int 50
      & info [ "cutoff" ] ~docv:"N"
          ~doc:"Largest diameter bound considered BMC-dischargeable")
  in
  let doc =
    "verify many (netlist, target) problems across a shared worker pool; \
     verdict lines are in input order and identical to a sequential run"
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      const run_batch $ files $ cutoff $ Cli.certify $ Cli.budget $ Cli.jobs
      $ Cli.stats $ Cli.stats_json $ Cli.trace $ Cli.no_inprocess)

(* ----- trace-report: offline analysis of a --trace capture ----- *)

let run_trace_report file top =
  match Obs.Trace.read_file file with
  | events ->
    Format.printf "%a" (Obs.Trace_report.pp ~top) events;
    Cli.ok
  | exception Failure msg -> Cli.die Cli.usage_error "%s: %s" file msg
  | exception Sys_error msg -> Cli.die Cli.usage_error "%s" msg

let trace_report_cmd =
  let trace_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:"Trace produced by --trace (Chrome trace-event JSON or JSONL)")
  in
  let top =
    Arg.(
      value & opt int 12
      & info [ "top" ] ~docv:"K"
          ~doc:"How many names to show in the self-time table")
  in
  let doc =
    "summarize a captured trace: top spans by self time, the critical \
     path, and the per-depth BMC cost table"
  in
  Cmd.v (Cmd.info "trace-report" ~doc) Term.(const run_trace_report $ trace_file $ top)

let doc =
  "structural diameter bounds via transformation pipelines (also: diam \
   batch FILES.., diam trace-report TRACE)"

let main_cmd =
  Cmd.v (Cmd.info "diam" ~doc)
    Term.(
      const run $ file $ design $ pipeline $ cutoff $ recurrence $ Cli.budget
      $ Cli.jobs $ Cli.stats $ Cli.stats_json $ Cli.trace $ Cli.no_inprocess)

(* a subcommand can't coexist with a default term taking positional
   args in one cmdliner group (FILE would parse as a command name), so
   dispatch on the first token ourselves *)
let cmd =
  if
    Array.length Sys.argv > 1
    && (Sys.argv.(1) = "trace-report" || Sys.argv.(1) = "batch")
  then Cmd.group (Cmd.info "diam" ~doc) [ trace_report_cmd; batch_cmd ]
  else main_cmd

let () = exit (Cli.main cmd)
