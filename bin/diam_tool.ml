(* diam: per-target structural diameter bounds for a .bench netlist,
   through a chosen transformation pipeline.

     diam circuit.bench
     diam --design S5378 --pipeline com-ret-com
     diam circuit.bench --recurrence --cutoff 30
     diam circuit.bench --pipeline com --timeout 30                    *)

module Net = Netlist.Net

let load file design =
  match (file, design) with
  | Some path, None -> Cli.load_bench path
  | None, Some name -> (
    match Workload.Iscas.by_name name with
    | net -> net
    | exception Not_found -> (
      match Workload.Gp.by_name name with
      | latched -> fst (Core.Pipeline.phase_front latched)
      | exception Not_found ->
        Cli.die Cli.usage_error "unknown built-in design %s" name))
  | Some _, Some _ ->
    Cli.die Cli.usage_error "give either a file or --design, not both"
  | None, None ->
    Cli.die Cli.usage_error "no input: give a .bench file or --design NAME"

let run file design pipeline cutoff recurrence budget jobs stats stats_json
    trace log_level log_file no_inprocess backend =
  Cli.setup_trace trace;
  Cli.setup_log log_level log_file;
  Cli.apply_inprocess no_inprocess;
  Cli.apply_backend backend;
  let net = load file design in
  Format.printf "netlist: %a@." Net.pp_stats net;
  let report =
    match pipeline with
    | "original" -> Core.Pipeline.original net
    | "com" -> Core.Pipeline.com ~budget net
    | "com-ret-com" -> Core.Pipeline.com_ret_com ~budget net
    | other -> Cli.die Cli.usage_error "unknown pipeline %s" other
  in
  Format.printf "pipeline %s: register classes (CC;AC;MC+QC;GC) %a@."
    report.Core.Pipeline.pipeline Core.Classify.pp_counts
    report.Core.Pipeline.reg_counts;
  (* the per-target recurrence baselines are independent SAT problems:
     with --jobs they compute across worker domains, then print in
     target order so the output never depends on completion order *)
  let recurrences =
    if not recurrence then List.map (fun _ -> None) report.Core.Pipeline.targets
    else begin
      let compute t =
        match List.assoc_opt t.Core.Pipeline.target (Net.targets net) with
        | Some lit -> Some (Core.Recurrence.compute ~limit:64 ~budget net lit)
        | None -> None
      in
      if jobs > 1 then
        Sched.Pool.with_pool ~jobs (fun pool ->
            Sched.Pool.map pool compute report.Core.Pipeline.targets)
      else List.map compute report.Core.Pipeline.targets
    end
  in
  List.iter2
    (fun t rec_result ->
      Format.printf "  %-24s bound %-8s (raw %s via %a)" t.Core.Pipeline.target
        (Core.Sat_bound.to_string t.Core.Pipeline.bound)
        (Core.Sat_bound.to_string t.Core.Pipeline.raw_bound)
        Core.Translate.pp t.Core.Pipeline.translator;
      (match rec_result with
      | Some r ->
        Format.printf "  recurrence %s (%d SAT calls%s)"
          (Core.Sat_bound.to_string r.Core.Recurrence.bound)
          r.Core.Recurrence.sat_calls
          (if r.Core.Recurrence.exhausted then ", budget exhausted" else "")
      | None -> ());
      Format.printf "@.")
    report.Core.Pipeline.targets recurrences;
  let s = Core.Pipeline.summarize ~cutoff report in
  Format.printf "targets below cutoff %d: %d/%d (avg %.1f)@." cutoff
    s.Core.Pipeline.proved_small s.Core.Pipeline.total s.Core.Pipeline.average;
  Obs.Report.emit ~human:stats ?json_file:stats_json
    ~meta:(Cli.stats_meta ~tool:"diam" ~experiments:[ pipeline ] budget)
    ();
  Cli.ok

open Cmdliner

let file =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:".bench netlist")

let design =
  Arg.(
    value
    & opt (some string) None
    & info [ "design" ] ~docv:"NAME"
        ~doc:"Built-in benchmark design (Table 1/2 name, e.g. S5378 or L_LRU)")

let pipeline =
  Arg.(
    value & opt string "original"
    & info [ "pipeline" ] ~docv:"P"
        ~doc:"Transformation pipeline: original, com, or com-ret-com")

let cutoff =
  Arg.(
    value & opt int 50
    & info [ "cutoff" ] ~docv:"N" ~doc:"BMC-dischargeable bound cutoff")

let recurrence =
  Arg.(
    value & flag
    & info [ "recurrence" ]
        ~doc:"Also compute the recurrence-diameter baseline per target")

(* ----- shared serve/batch terms ----- *)

let queue_limit =
  let env =
    Cmdliner.Cmd.Env.info "DIAMBOUND_QUEUE_LIMIT"
      ~doc:"Default admission queue bound when $(b,--queue-limit) is absent"
  in
  Cmdliner.Arg.(
    value
    & opt (some int) None
    & info [ "queue-limit" ] ~env ~docv:"N"
        ~doc:"Bound the scheduler's admission queue at $(docv) waiting \
              jobs.  $(b,diam serve) then sheds load (overloaded \
              responses) instead of blocking its intake; $(b,diam batch) \
              bounds its job backlog, blocking submission until workers \
              catch up")

let cache_mb =
  let env =
    Cmdliner.Cmd.Env.info "DIAMBOUND_CACHE_MB"
      ~doc:"Default bound-cache budget when $(b,--cache-mb) is absent"
  in
  Cmdliner.Arg.(
    value & opt int 64
    & info [ "cache-mb" ] ~docv:"MB" ~env
        ~doc:"Bound cache budget in megabytes: certified verdicts and \
              strategy bounds keyed by canonical cone fingerprint, \
              LRU-evicted beyond the budget")

(* ----- batch: multi-problem server mode ----- *)

(* Every (netlist, target) pair across the given files becomes one
   Serve.Exec request — the SAME request path diam serve's workers
   run, so batch inherits the per-request exception barrier, budget
   slicing and bound cache, and the two front-ends cannot drift.
   Verdict lines print in input order; each problem gets a fresh
   budget sliced from the --timeout/--conflicts/--bdd-nodes spec. *)
let run_batch files cutoff certify budget_spec jobs queue_limit cache_mb stats
    stats_json trace log_level log_file no_inprocess backend =
  Cli.setup_trace trace;
  Cli.setup_log log_level log_file;
  Cli.apply_inprocess no_inprocess;
  Cli.apply_backend backend;
  let problems =
    List.concat_map
      (fun file ->
        let net = Cli.load_bench file in
        List.map (fun (t, _) -> (file, t)) (Net.targets net))
      files
  in
  if problems = [] then Cli.die Cli.usage_error "no targets in any input";
  let cache =
    Core.Bcache.create ~prefix:"serve.cache"
      ~max_bytes:(max 1 cache_mb * 1024 * 1024)
      ()
  in
  let solve (file, t) =
    let r =
      {
        Serve.Request.id = None;
        op = Serve.Request.Verify;
        source = Some (Serve.Request.File file);
        target = Some t;
        timeout_ms = None;
        certify;
        cutoff = Some cutoff;
        chaos = None;
      }
    in
    Serve.Exec.run ~cache ~chaos_seed:None
      ~budget:(Cli.budget_of_spec budget_spec) r
  in
  let outcomes =
    if jobs > 1 then
      Sched.Pool.with_pool ?capacity:queue_limit ~jobs (fun pool ->
          Sched.Pool.map pool solve problems)
    else List.map solve problems
  in
  let violated = ref 0 in
  let inconclusive = ref 0 in
  let errors = ref 0 in
  List.iter2
    (fun (file, t) outcome ->
      match outcome with
      | Serve.Exec.Verdict { verdict = v; _ } -> (
        Format.printf "%s:%-24s %a@." file t Core.Engine.pp_verdict v;
        match v with
        | Core.Engine.Violated _ -> incr violated
        | Core.Engine.Inconclusive _ -> incr inconclusive
        | Core.Engine.Proved _ -> ())
      | Serve.Exec.Failed { code; detail } ->
        Format.printf "%s:%-24s error %s: %s@." file t code detail;
        incr errors)
    problems outcomes;
  Obs.Report.emit ~human:stats ?json_file:stats_json
    ~meta:
      (Cli.stats_meta ~tool:"diam" ~experiments:[ "batch" ]
         (Cli.budget_of_spec budget_spec))
    ();
  if !violated > 0 then Cli.violated
  else if !errors > 0 then Cli.internal_error
  else if !inconclusive > 0 then Cli.inconclusive
  else Cli.ok

let batch_cmd =
  let files =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILE" ~doc:".bench netlists (every target of each)")
  in
  let cutoff =
    Arg.(
      value & opt int 50
      & info [ "cutoff" ] ~docv:"N"
          ~doc:"Largest diameter bound considered BMC-dischargeable")
  in
  let doc =
    "verify many (netlist, target) problems across a shared worker pool, \
     through the same per-request barrier, budget slicing and bound cache \
     as diam serve; verdict lines are in input order and identical to a \
     sequential run"
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      const run_batch $ files $ cutoff $ Cli.certify $ Cli.budget_spec
      $ Cli.jobs $ queue_limit $ cache_mb $ Cli.stats $ Cli.stats_json
      $ Cli.trace $ Cli.log_level $ Cli.log_file $ Cli.no_inprocess
      $ Cli.backend)

(* ----- serve: the long-lived JSONL verification service ----- *)

let run_serve socket jobs queue_limit cache_mb chaos_seed stall_window
    flight_recorder metrics_interval stats stats_json trace log_level log_file
    no_inprocess backend =
  Cli.setup_trace trace;
  Cli.setup_log log_level log_file;
  Cli.apply_inprocess no_inprocess;
  Cli.apply_backend backend;
  (* arming the watchdog without naming a sink still records flights *)
  let flight_path =
    match (flight_recorder, stall_window) with
    | (Some _ as p), _ -> p
    | None, Some _ -> Some "flight-recorder.jsonl"
    | None, None -> None
  in
  let cfg =
    {
      Serve.Server.jobs;
      queue_limit;
      cache_mb;
      chaos_seed;
      stall_window_s = stall_window;
      flight_path;
      metrics_interval_s = metrics_interval;
    }
  in
  let code =
    match socket with
    | None -> Serve.Server.run_stdio cfg
    | Some path -> Serve.Server.run_socket cfg ~path
  in
  (* stats go to stderr: serve's stdout is the JSONL response stream
     and must stay byte-identical to the protocol (CI diffs it) *)
  Obs.Report.emit ~ppf:Format.err_formatter ~human:stats ?json_file:stats_json
    ~meta:
      (Cli.stats_meta ~tool:"diam" ~experiments:[ "serve" ]
         Obs.Budget.unlimited)
    ();
  code

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Serve connections on a Unix-domain socket at $(docv) (one \
                JSONL session per connection, bound cache shared across \
                them) instead of a single stdin/stdout session")
  in
  let chaos_seed =
    let env =
      Cmdliner.Cmd.Env.info "DIAMBOUND_CHAOS_SEED"
        ~doc:"Default chaos arming when $(b,--chaos-seed) is absent"
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-seed" ] ~env ~docv:"SEED"
          ~doc:"Arm the chaos drill: honor requests' \"chaos\" fault field \
                and the \"poison\" op, and differentially replay every \
                cache hit, purging entries that disagree with a fresh \
                derivation.  Never set in production")
  in
  let stall_window =
    let env =
      Cmdliner.Cmd.Env.info "DIAMBOUND_STALL_WINDOW"
        ~doc:"Default watchdog stall window when $(b,--stall-window) is absent"
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "stall-window" ] ~env ~docv:"SECONDS"
          ~doc:"Arm the stuck-request watchdog: a monitor flags any \
                in-flight request whose solver heartbeat has not advanced \
                for $(docv) seconds — a warn log line with its correlation \
                id, plus a flight-recorder dump.  Purely observational: \
                verdicts and the response stream are untouched")
  in
  let flight_recorder =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-recorder" ] ~docv:"FILE"
          ~doc:"Where watchdog dumps go (default flight-recorder.jsonl): \
                appended batches of in-flight request spans, heartbeat \
                history and queue/pool state in the trace JSONL schema, \
                readable by $(b,diam trace-report)")
  in
  let metrics_interval =
    let env =
      Cmdliner.Cmd.Env.info "DIAMBOUND_METRICS_INTERVAL"
        ~doc:"Default periodic metrics interval when \
              $(b,--metrics-interval) is absent"
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "metrics-interval" ] ~env ~docv:"SECONDS"
          ~doc:"Emit a JSONL metrics line (non-zero counters plus the \
                in-flight heartbeat table) through the log sink every \
                $(docv) seconds — for socket-mode services whose operator \
                tails the log.  Never written to stdout")
  in
  let doc =
    "long-lived verification service: one JSON request per input line, one \
     JSON response per request in request order (byte-identical for every \
     --jobs value); parse errors, solver crashes and injected faults \
     become structured error responses behind a per-request barrier; \
     poisoned workers are respawned; --queue-limit switches admission \
     from blocking to load-shedding; certified verdicts and bounds are \
     served from an LRU cone-fingerprint cache; the metrics op, \
     --stall-window watchdog and --metrics-interval stream expose live \
     telemetry without touching the response bytes"
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run_serve $ socket $ Cli.jobs $ queue_limit $ cache_mb
      $ chaos_seed $ stall_window $ flight_recorder $ metrics_interval
      $ Cli.stats $ Cli.stats_json $ Cli.trace $ Cli.log_level $ Cli.log_file
      $ Cli.no_inprocess $ Cli.backend)

(* ----- corpus: walk a problem tree under a per-problem barrier ----- *)

(* Output discipline: stdout carries no timings, so the report is
   byte-identical across --jobs values (CI diffs jobs 1 vs 2); timing
   lives in --stats/--stats-json. *)
let run_corpus dir cutoff certify budget_spec jobs baseline fail_on_regress
    stats stats_json trace log_level log_file no_inprocess backend =
  Cli.setup_trace trace;
  Cli.setup_log log_level log_file;
  Cli.apply_inprocess no_inprocess;
  Cli.apply_backend backend;
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Cli.die Cli.usage_error "%s: not a directory" dir;
  let paths = Campaign.Corpus.walk dir in
  if paths = [] then
    Cli.die Cli.usage_error "no .bench/.aag problems under %s" dir;
  let config = { Core.Engine.default with Core.Engine.cutoff } in
  let mk_budget () = Cli.budget_of_spec budget_spec in
  let summary =
    Campaign.Corpus.run ~jobs ~config ~mk_budget ~certify paths
  in
  List.iter
    (fun (i : Campaign.Corpus.item) ->
      Format.printf "%-40s targets=%d %a@." i.Campaign.Corpus.path
        i.Campaign.Corpus.targets Campaign.Corpus.pp_outcome
        i.Campaign.Corpus.outcome)
    summary.Campaign.Corpus.items;
  Format.printf
    "corpus: %d problems: %d proved, %d violated, %d timeout, %d \
     inconclusive, %d malformed, %d crashed@."
    (List.length summary.Campaign.Corpus.items)
    summary.Campaign.Corpus.proved summary.Campaign.Corpus.violated
    summary.Campaign.Corpus.timeout summary.Campaign.Corpus.inconclusive
    summary.Campaign.Corpus.malformed summary.Campaign.Corpus.crashed;
  let meta =
    Cli.stats_meta ~tool:"diam" ~experiments:[ "corpus" ]
      (Cli.budget_of_spec budget_spec)
  in
  Obs.Report.emit ~human:stats ?json_file:stats_json ~meta ();
  let rc = Campaign.Corpus.exit_code summary in
  match baseline with
  | None -> rc
  | Some base_file -> (
    let base = Obs.Baseline.load base_file in
    let cur = { Obs.Baseline.meta; snap = Obs.Stats.snapshot () } in
    match Obs.Baseline.compat ~base ~cur with
    | Error msg -> Cli.die Cli.usage_error "baseline %s: %s" base_file msg
    | Ok () -> (
      let d = Obs.Baseline.diff ~base ~cur in
      match fail_on_regress with
      | None -> rc
      | Some threshold_pct ->
        let regs = Obs.Baseline.regressions ~threshold_pct d in
        List.iter
          (fun (name, growth) ->
            Format.printf "REGRESSION %s +%.1f%%@." name growth)
          regs;
        if regs <> [] then Cli.violated else rc))

let corpus_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR" ~doc:"Directory tree of .bench/.aag problems")
  in
  let cutoff =
    Arg.(
      value & opt int 50
      & info [ "cutoff" ] ~docv:"N"
          ~doc:"Largest diameter bound considered BMC-dischargeable")
  in
  let baseline =
    Arg.(
      value
      & opt (some file) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Stored BENCH_* snapshot to diff the corpus stats against")
  in
  let fail_on_regress =
    Arg.(
      value
      & opt (some float) None
      & info [ "fail-on-regress" ] ~docv:"PCT"
          ~doc:"With $(b,--baseline): exit 1 when any span regressed by \
                more than $(docv) percent")
  in
  let doc =
    "walk a directory tree of .bench/.aag problems, verifying every one \
     under a fresh per-problem budget and a per-problem exception barrier: \
     malformed files, crashes, timeouts and inconclusive results are \
     tallied outcomes (exit 0 all-ok / 1 any violated-or-finding / 3 \
     inconclusive-only), never an aborted walk"
  in
  Cmd.v (Cmd.info "corpus" ~doc)
    Term.(
      const run_corpus $ dir $ cutoff $ Cli.certify $ Cli.budget_spec
      $ Cli.jobs $ baseline $ fail_on_regress $ Cli.stats $ Cli.stats_json
      $ Cli.trace $ Cli.log_level $ Cli.log_file $ Cli.no_inprocess
      $ Cli.backend)

(* ----- fuzz: the adversarial differential campaign ----- *)

let run_fuzz count seed jobs repro_dir stats stats_json trace log_level
    log_file no_inprocess backend =
  Cli.setup_trace trace;
  Cli.setup_log log_level log_file;
  Cli.apply_inprocess no_inprocess;
  Cli.apply_backend backend;
  if count <= 0 then Cli.die Cli.usage_error "--count must be positive";
  let report = Campaign.Hunt.run ~jobs ?repro_dir ~seed ~count () in
  List.iter
    (fun (c : Campaign.Hunt.case_report) ->
      (* one line per target (reference ladder cell); the other cells
         only surface when they disagree, as findings *)
      let ladder_verdicts =
        List.filter
          (fun (key, _) ->
            match String.rindex_opt key '/' with
            | Some i ->
              String.equal
                (String.sub key (i + 1) (String.length key - i - 1))
                "ladder"
            | None -> false)
          c.Campaign.Hunt.verdicts
      in
      Format.printf "case %-24s size=%-4d %s@." c.Campaign.Hunt.label
        c.Campaign.Hunt.size
        (String.concat " "
           (List.map (fun (k, v) -> k ^ "=" ^ v) ladder_verdicts));
      List.iter
        (fun ((f : Campaign.Oracle.finding), (s : Campaign.Hunt.shrink_info))
           ->
          Format.printf "FINDING %s %a shrunk %d -> %d%s@."
            c.Campaign.Hunt.label Campaign.Oracle.pp_finding f
            s.Campaign.Hunt.original_size s.Campaign.Hunt.shrunk_size
            (match s.Campaign.Hunt.repro with
            | Some p -> " repro " ^ p
            | None -> ""))
        c.Campaign.Hunt.findings)
    report.Campaign.Hunt.cases;
  Format.printf "fuzz: %d cases, %d findings (seed %d)@."
    report.Campaign.Hunt.count report.Campaign.Hunt.findings
    report.Campaign.Hunt.seed;
  Obs.Report.emit ~human:stats ?json_file:stats_json
    ~meta:
      (Cli.stats_meta ~tool:"diam" ~experiments:[ "fuzz" ]
         Obs.Budget.unlimited)
    ();
  if report.Campaign.Hunt.findings > 0 then Cli.violated else Cli.ok

let fuzz_cmd =
  let count =
    Arg.(
      value & opt int 20
      & info [ "count" ] ~docv:"N" ~doc:"How many designs to breed")
  in
  let seed =
    let env =
      Cmd.Env.info "DIAMBOUND_FUZZ_SEED"
        ~doc:"Default campaign seed when $(b,--seed) is not given"
    in
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~env ~docv:"SEED"
          ~doc:"Campaign seed; case $(i,i) is a pure function of (seed, \
                $(i,i)), so a seeded campaign is byte-reproducible at any \
                $(b,--jobs)")
  in
  let repro_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro-dir" ] ~docv:"DIR"
          ~doc:"Write each finding's shrunk minimal repro netlist here (as \
                .bench), for $(b,diam corpus) to replay")
  in
  let doc =
    "breed adversarial designs (deep counterexamples, wide memories, \
     retiming-hostile gadgets, near-miss redundancies, pathological \
     reconvergence) and run every target through a differential oracle \
     matrix — sequential ladder, inprocessing off, parallel portfolio, \
     expired budget, certification everywhere; any disagreement, \
     certification failure, budget violation or crash is a finding, \
     greedily shrunk to a minimal repro (exit 1 on findings)"
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run_fuzz $ count $ seed $ Cli.jobs $ repro_dir $ Cli.stats
      $ Cli.stats_json $ Cli.trace $ Cli.log_level $ Cli.log_file
      $ Cli.no_inprocess $ Cli.backend)

(* ----- sat: a SAT-competition front door to the reference solver -----

   Speaks exactly the protocol the external (ext) backend expects of
   DIAMBOUND_EXT_SOLVER: [diam sat CNF [PROOF]] prints an
   "s SATISFIABLE" / "s UNSATISFIABLE" status line (exit 10/20) with
   "v " model lines on satisfiable instances, and writes DRUP text to
   PROOF on unsatisfiable ones.  Pointing DIAMBOUND_EXT_SOLVER at a
   script that execs this subcommand closes the round-trip loop, which
   is how the differential suite and CI exercise the ext backend
   without any third-party solver installed. *)

let run_sat cnf_file proof_out no_inprocess =
  Cli.apply_inprocess no_inprocess;
  let cnf =
    try Sat.Dimacs.parse_file cnf_file
    with Failure msg -> Cli.die Cli.usage_error "%s: %s" cnf_file msg
  in
  let solver = Sat.Solver.create () in
  let proof = Sat.Proof.create () in
  Sat.Solver.set_proof solver proof;
  for _ = 1 to cnf.Sat.Cnf.num_vars do
    ignore (Sat.Solver.new_var solver)
  done;
  List.iter (Sat.Solver.add_clause solver) cnf.Sat.Cnf.clauses;
  match Sat.Solver.solve solver with
  | Sat.Solver.Sat ->
    Format.printf "s SATISFIABLE@.";
    let lits =
      List.init cnf.Sat.Cnf.num_vars (fun v ->
          let b = Sat.Solver.value solver (Sat.Solver.pos v) in
          string_of_int (if b then v + 1 else -(v + 1)))
    in
    Format.printf "v %s 0@." (String.concat " " lits);
    10
  | Sat.Solver.Unsat ->
    Option.iter
      (fun path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (Sat.Proof.to_string proof)))
      proof_out;
    Format.printf "s UNSATISFIABLE@.";
    20
  | Sat.Solver.Unknown ->
    (* unreachable without allowances; keep the protocol total *)
    Format.printf "s UNKNOWN@.";
    Cli.inconclusive

let sat_cmd =
  let cnf_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"CNF" ~doc:"DIMACS CNF input")
  in
  let proof_out =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"PROOF"
          ~doc:"Where to write the DRUP proof of an unsatisfiable answer")
  in
  let doc =
    "decide a DIMACS CNF with the reference solver, speaking the \
     SAT-competition output protocol (s/v lines, exit 10/20) and writing \
     a DRUP proof on unsat — the counterpart of the ext backend's \
     round-trip, usable as its DIAMBOUND_EXT_SOLVER"
  in
  Cmd.v (Cmd.info "sat" ~doc ~exits:[])
    Term.(const run_sat $ cnf_file $ proof_out $ Cli.no_inprocess)

(* ----- trace-report: offline analysis of a --trace capture ----- *)

let run_trace_report file top =
  match Obs.Trace.read_file file with
  | events ->
    Format.printf "%a" (Obs.Trace_report.pp ~top) events;
    Cli.ok
  | exception Failure msg -> Cli.die Cli.usage_error "%s: %s" file msg
  | exception Sys_error msg -> Cli.die Cli.usage_error "%s" msg

let trace_report_cmd =
  let trace_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:"Trace produced by --trace (Chrome trace-event JSON or JSONL)")
  in
  let top =
    Arg.(
      value & opt int 12
      & info [ "top" ] ~docv:"K"
          ~doc:"How many names to show in the self-time table")
  in
  let doc =
    "summarize a captured trace: top spans by self time, the critical \
     path, and the per-depth BMC cost table"
  in
  Cmd.v (Cmd.info "trace-report" ~doc) Term.(const run_trace_report $ trace_file $ top)

let doc =
  "structural diameter bounds via transformation pipelines (also: diam \
   serve, diam batch FILES.., diam corpus DIR, diam fuzz, diam sat CNF, \
   diam trace-report TRACE)"

let main_cmd =
  Cmd.v (Cmd.info "diam" ~doc)
    Term.(
      const run $ file $ design $ pipeline $ cutoff $ recurrence $ Cli.budget
      $ Cli.jobs $ Cli.stats $ Cli.stats_json $ Cli.trace $ Cli.log_level
      $ Cli.log_file $ Cli.no_inprocess $ Cli.backend)

(* a subcommand can't coexist with a default term taking positional
   args in one cmdliner group (FILE would parse as a command name), so
   dispatch on the first token ourselves *)
let cmd =
  if
    Array.length Sys.argv > 1
    && List.mem Sys.argv.(1)
         [ "trace-report"; "batch"; "corpus"; "fuzz"; "serve"; "sat" ]
  then
    Cmd.group (Cmd.info "diam" ~doc)
      [ trace_report_cmd; batch_cmd; corpus_cmd; fuzz_cmd; serve_cmd; sat_cmd ]
  else main_cmd

let () = exit (Cli.main cmd)
