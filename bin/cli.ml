(* Shared plumbing for the four command-line tools: the exit-code
   contract, the top-level exception barrier, the parse-error
   renderer, and the resource-budget flags.

   Exit-code contract (all tools):

     0    proved / no counterexample / informational run completed
     1    property violated (a counterexample was found)
     2    usage or input error: bad flags, unreadable file, or a
          malformed netlist (rendered as "file:line: message")
     3    inconclusive: the budget ran out, or no practically useful
          bound exists, before any definite answer
     125  internal error — a bug in the tool, not in the input

   Multi-problem runs (diam corpus, diam fuzz) extend the same codes
   over a whole walk or campaign: 0 every problem ok, 1 any violated
   problem or any finding — a malformed file inside the corpus, a
   crash, an oracle disagreement — and 3 when the only non-ok
   outcomes are inconclusive/timeout.  Per-problem failures are
   tallied outcomes, never a 2/125 abort of the walk.              *)

let ok = 0
let violated = 1
let usage_error = 2
let inconclusive = 3
let internal_error = 125

exception Fail of int
(** Unwind to the barrier in {!main} with the given exit code; the
    message has already been printed. *)

let die code fmt = Format.kasprintf (fun msg ->
    Format.eprintf "%s@." msg;
    raise (Fail code)) fmt

(* parse a .bench file behind the Parse_error/Sys_error barrier,
   rendering diagnostics as "file:line: message" *)
let load_bench path =
  try Textio.Bench_io.parse_file path with
  | Textio.Parse_error { line; msg } -> die usage_error "%s:%d: %s" path line msg
  | Sys_error msg -> die usage_error "%s" msg

open Cmdliner

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Wall-clock budget for the run; on expiry the tool reports an \
              inconclusive result (exit 3) instead of running on")

let conflicts_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "conflicts" ] ~docv:"N"
        ~doc:"Conflict allowance per SAT call; an exhausted call returns \
              unknown rather than looping")

let bdd_nodes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "bdd-nodes" ] ~docv:"N"
        ~doc:"BDD node allowance for target enlargement; on blow-up the \
              enlargement strategy stands down")

let budget =
  let make timeout_s conflicts bdd_nodes =
    Obs.Budget.create ?timeout_s ?conflicts ?bdd_nodes ()
  in
  Term.(const make $ timeout_arg $ conflicts_arg $ bdd_nodes_arg)

(* the raw flag triple, for tools that must mint a FRESH budget per
   problem: [budget] above starts its wall-clock deadline at flag
   parse time, which would charge problem N for problems 1..N-1 *)
let budget_spec =
  let make timeout_s conflicts bdd_nodes = (timeout_s, conflicts, bdd_nodes) in
  Term.(const make $ timeout_arg $ conflicts_arg $ bdd_nodes_arg)

let budget_of_spec (timeout_s, conflicts, bdd_nodes) =
  Obs.Budget.create ?timeout_s ?conflicts ?bdd_nodes ()

let jobs =
  let env =
    Cmd.Env.info "DIAMBOUND_JOBS"
      ~doc:"Default worker-domain count when $(b,--jobs) is not given"
  in
  let clamp n = max 1 n in
  Term.(
    const clamp
    $ Arg.(
        value & opt int 1
        & info [ "jobs"; "j" ] ~env ~docv:"N"
            ~doc:"Worker domains for parallel execution.  Results are \
                  deterministic: parallel runs report the same verdicts as \
                  $(b,--jobs 1) (verdict selection is by strategy rank, \
                  never wall-clock order), only faster"))

(* --no-inprocess: escape hatch for SAT inprocessing (subsumption,
   variable elimination, probing and the rest of Sat.Simplify).  The
   returned term is the flag's value; [apply_inprocess] must run before
   any solver is created, since the default is captured per instance. *)
let no_inprocess =
  let env =
    Cmd.Env.info "DIAMBOUND_NO_INPROCESS"
      ~doc:"Disable SAT inprocessing, like $(b,--no-inprocess)"
  in
  Arg.(
    value & flag
    & info [ "no-inprocess" ] ~env
        ~doc:"Disable SAT inprocessing (clause subsumption, self-subsuming \
              resolution, bounded variable elimination and failed-literal \
              probing between restarts).  Verdicts never change, only \
              solving speed; this is the escape hatch for debugging or \
              measuring the simplifier itself")

let apply_inprocess no_inprocess =
  if no_inprocess then Sat.Solver.set_inprocess_default false

(* --backend: which solver backend(s) verdicts are produced with.  The
   returned term is the raw name; [apply_backend] must run before any
   solving, since the process default is consulted per solver
   creation. *)
let backend =
  let env =
    Cmd.Env.info "DIAMBOUND_BACKEND"
      ~doc:"Default solver backend when $(b,--backend) is not given"
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "backend" ] ~env ~docv:"NAME"
        ~doc:"Solver backend: $(b,reference) (the in-tree CDCL solver, \
              the default), $(b,bdd) (exact BDD oracle for small cones; \
              degrades to unknown past its node allowance, \
              $(b,DIAMBOUND_BDD_NODES)), $(b,ext) (DIMACS round-trip to \
              the external command in $(b,DIAMBOUND_EXT_SOLVER); missing \
              binary degrades to a structured backend-unavailable \
              unknown), or $(b,race) to race every available backend \
              against each strategy with deterministic rank selection")

let apply_backend = function
  | None -> ()
  | Some name -> (
    match Backend.spec_of_string name with
    | Ok spec -> Backend.set_default spec
    | Error msg -> die usage_error "%s" msg)

let certify =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:"Independently certify every answer before reporting it: \
              counterexamples must replay on the netlist, Unsat answers \
              re-check through the in-tree DRUP verifier, and bound \
              translations are recomputed from their recorded theorem \
              steps.  An answer that fails certification is withheld and \
              the run reports inconclusive instead; certification cost \
              shows up in the $(b,--stats) spans (certify.*)")

let proof_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "proof" ] ~docv:"FILE"
        ~doc:"Write the DRUP clausal proof of the discharge run \
              (drat-trim-compatible text).  Implies $(b,--certify): only \
              certified proofs are written")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Capture a structured trace of the run — hierarchical spans \
              with per-SAT-call, per-BMC-depth, per-strategy and \
              per-transformation attributes — to $(docv).  A .json file is \
              Chrome trace-event JSON (open in Perfetto or \
              about://tracing); a .jsonl file streams one event per line \
              and survives crashes.  Also enabled by the DIAMBOUND_TRACE \
              environment variable; inspect with $(b,diam trace-report)")

(* call before any instrumented work: --trace FILE, falling back to
   DIAMBOUND_TRACE; the sink closes itself at process exit *)
let setup_trace file = Obs.Trace.setup ?file ()

let log_level =
  let env =
    Cmd.Env.info "DIAMBOUND_LOG"
      ~doc:"Default log level when $(b,--log-level) is not given"
  in
  Arg.(
    value
    & opt (some (enum Obs.Log.levels)) None
    & info [ "log-level" ] ~env ~docv:"LEVEL"
        ~doc:"Structured-log threshold: $(b,error), $(b,warn) (default), \
              $(b,info) or $(b,debug).  Lines are JSONL \
              ({\"ts\":..,\"level\":..,\"event\":..,...}), carry the request \
              correlation id where one is active, and go to stderr — never \
              stdout — unless $(b,--log) routes them to a file")

let log_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:"Route structured log lines to $(docv) (truncated) instead of \
              stderr")

(* call before any instrumented work, like [setup_trace]; an explicit
   flag wins, otherwise DIAMBOUND_LOG applies (via the flag's env) *)
let setup_log level file = Obs.Log.setup ?level ?file ()

(* schema version of the --stats-json / bench snapshot format; bump
   when the snapshot or meta shape changes incompatibly *)
let stats_schema_version = 2

(* self-describing "meta" object for --stats-json snapshots, so a
   stored baseline can refuse to compare against a different tool,
   experiment mix, or schema *)
let stats_meta ~tool ~experiments budget =
  Obs.Report.
    [
      ("schema", Int stats_schema_version);
      ("tool", String tool);
      ("experiments", List (List.map (fun e -> String e) experiments));
      ("budget", String (Format.asprintf "%a" Obs.Budget.pp budget));
    ]

let stats =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print the observability counters and timing spans after the run")

let stats_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:"Write the observability snapshot as JSON to $(docv)")

(* the single exception barrier: every tool's [main] funnels through
   here, so no input however malformed produces a raw backtrace *)
let main cmd =
  match Cmd.eval_value ~catch:false cmd with
  | Ok (`Ok code) -> code
  | Ok (`Version | `Help) -> ok
  | Error (`Parse | `Term) -> usage_error
  | Error `Exn -> internal_error (* unreachable with ~catch:false *)
  | exception Fail code -> code
  | exception Textio.Parse_error { line; msg } ->
    Format.eprintf "line %d: %s@." line msg;
    usage_error
  | exception Sys_error msg ->
    Format.eprintf "%s@." msg;
    usage_error
  | exception e ->
    Format.eprintf "internal error: %s@." (Printexc.to_string e);
    internal_error
