(* bmc-check: bounded model checking with optional diameter-bound
   completeness.

     bmc-check circuit.bench --target po0 --depth 20
     bmc-check circuit.bench --target po0 --complete
     bmc-check circuit.bench --complete --timeout 10                  *)

module Net = Netlist.Net

(* --jobs N without --target: check every target, scheduled across N
   worker domains.  Result lines print in target order regardless of
   completion order, so the output is reproducible; the wall-clock
   budget is shared (one deadline for the whole batch). *)
let run_all net certify budget jobs complete depth =
  let targets = Net.targets net in
  let check (t, tlit) =
    let depth =
      if complete then begin
        let b = Core.Bound.target_named net t in
        if Core.Sat_bound.is_huge b.Core.Bound.bound then None
        else Some (b.Core.Bound.bound - 1)
      end
      else Some depth
    in
    match depth with
    | None -> `Unknown "no practically useful diameter bound"
    | Some depth -> (
      let cert = if certify then Some (Bmc.new_cert ()) else None in
      match Bmc.check ?cert ~budget net ~target:t ~depth with
      | Bmc.Hit cex -> (
        match
          if certify then Core.Certify.check_cex net tlit cex else Ok ()
        with
        | Ok () -> `Hit cex.Bmc.depth
        | Error msg -> `Unknown ("certification failed: " ^ msg))
      | Bmc.No_hit d -> (
        match
          match cert with
          | Some c -> Core.Certify.check_no_hit ~depth:d c
          | None -> Ok ()
        with
        | Ok () -> `No_hit d
        | Error msg -> `Unknown ("certification failed: " ^ msg))
      | Bmc.Unknown { after; why } ->
        `Unknown (Printf.sprintf "%s after depth %d" why after))
  in
  let results =
    Sched.Pool.with_pool ~jobs (fun pool -> Sched.Pool.map pool check targets)
  in
  let tag = if certify then " [certified]" else "" in
  let violated = ref 0 in
  let unknown = ref 0 in
  List.iter2
    (fun (t, _) r ->
      match r with
      | `Hit d ->
        incr violated;
        Format.printf "%-24s HIT at time %d%s@." t d tag
      | `No_hit d -> Format.printf "%-24s no hit to depth %d%s@." t d tag
      | `Unknown msg ->
        incr unknown;
        Format.printf "%-24s UNKNOWN: %s@." t msg)
    targets results;
  if !violated > 0 then Cli.violated
  else if !unknown > 0 then Cli.inconclusive
  else Cli.ok

let run file target depth complete certify proof vcd budget jobs stats
    stats_json trace log_level log_file no_inprocess backend =
  Cli.setup_trace trace;
  Cli.setup_log log_level log_file;
  Cli.apply_inprocess no_inprocess;
  Cli.apply_backend backend;
  let net = Cli.load_bench file in
  let certify = certify || proof <> None in
  if jobs > 1 && target = None then begin
    if vcd <> None || proof <> None then
      Cli.die Cli.usage_error "--vcd/--proof need a single --target";
    if Net.targets net = [] then
      Cli.die Cli.usage_error "netlist has no targets";
    let code = run_all net certify budget jobs complete depth in
    Obs.Report.emit ~human:stats ?json_file:stats_json
      ~meta:(Cli.stats_meta ~tool:"bmc-check" ~experiments:[ "bmc" ] budget)
      ();
    code
  end
  else
  let target =
    match (target, Net.targets net) with
    | Some t, _ -> t
    | None, (t, _) :: _ -> t
    | None, [] -> Cli.die Cli.usage_error "netlist has no targets"
  in
  let depth =
    if complete then begin
      let b = Core.Bound.target_named net target in
      if Core.Sat_bound.is_huge b.Core.Bound.bound then
        Cli.die Cli.inconclusive
          "no practically useful diameter bound for %s (cone of %d \
           registers); try --depth"
          target b.Core.Bound.coi_regs;
      Format.printf "diameter bound %a: checking to depth %d is complete@."
        Core.Sat_bound.pp b.Core.Bound.bound
        (b.Core.Bound.bound - 1);
      b.Core.Bound.bound - 1
    end
    else depth
  in
  let finish () =
    Obs.Report.emit ~human:stats ?json_file:stats_json
      ~meta:(Cli.stats_meta ~tool:"bmc-check" ~experiments:[ "bmc" ] budget)
      ()
  in
  let cert = if certify then Some (Bmc.new_cert ()) else None in
  let dump_proof () =
    match (proof, cert) with
    | Some path, Some c ->
      if
        Obs.Fileout.write_or_warn ~what:"proof" path (fun oc ->
            output_string oc (Sat.Proof.to_string c.Bmc.proof))
      then Format.printf "proof written to %s@." path
    | _ -> ()
  in
  (* an answer that fails certification is withheld: report
     inconclusive (exit 3), never a wrong verdict *)
  let withhold what msg =
    Format.eprintf "certification of the %s FAILED: %s@." what msg;
    Format.printf "target %s: answer withheld (certification failed).@."
      target;
    finish ();
    Cli.inconclusive
  in
  match Bmc.check ?cert ~budget net ~target ~depth with
  | Bmc.Hit cex -> (
    let tlit = List.assoc target (Net.targets net) in
    let checked =
      if certify then Core.Certify.check_cex net tlit cex
      else Ok ()
    in
    match checked with
    | Error msg -> withhold "counterexample" msg
    | Ok () ->
      Format.printf "target %s HIT at time %d%s@." target cex.Bmc.depth
        (if certify then " (certified: replays on the netlist)"
         else Printf.sprintf " (replay: %b)"
             (Bmc.replay net tlit cex));
      (match vcd with
      | Some path ->
        let text = Textio.Vcd.dump net (Bmc.frames_of_cex net cex) in
        if
          Obs.Fileout.write_or_warn ~what:"waveform" path (fun oc ->
              output_string oc text)
        then Format.printf "waveform written to %s@." path
      | None -> ());
      List.iter
        (fun (v, t, value) ->
          match Net.node net v with
          | Net.Input name -> Format.printf "  %s@%d = %b@." name t value
          | Net.Const | Net.And _ | Net.Reg _ | Net.Latch _ -> ())
        (List.sort compare cex.Bmc.inputs);
      dump_proof ();
      finish ();
      Cli.violated)
  | Bmc.No_hit d -> (
    let checked =
      match cert with
      | Some c -> Core.Certify.check_no_hit ~depth:d c
      | None -> Ok ()
    in
    match checked with
    | Error msg -> withhold "no-hit answer" msg
    | Ok () ->
      let tag = if certify then " (certified: DRUP checked)" else "" in
      if complete then Format.printf "no hit to depth %d: PROVED.%s@." d tag
      else Format.printf "no hit to depth %d (bounded result only).%s@." d tag;
      dump_proof ();
      finish ();
      Cli.ok)
  | Bmc.Unknown { after; why } ->
    Format.printf "%s after depth %d: result UNKNOWN.@." why after;
    finish ();
    Cli.inconclusive

open Cmdliner

let file =
  Arg.(
    required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:".bench netlist")

let target =
  Arg.(
    value
    & opt (some string) None
    & info [ "target" ] ~docv:"NAME" ~doc:"Target to check (default: first)")

let depth =
  Arg.(value & opt int 20 & info [ "depth" ] ~docv:"N" ~doc:"BMC depth")

let complete =
  Arg.(
    value & flag
    & info [ "complete" ]
        ~doc:"Derive the depth from the structural diameter bound, turning \
              the bounded check into a proof")

let vcd =
  Arg.(
    value
    & opt (some string) None
    & info [ "vcd" ] ~docv:"FILE" ~doc:"Dump the counterexample as a VCD waveform")

let cmd =
  let doc = "bounded model checking with diameter-bound completeness" in
  Cmd.v
    (Cmd.info "bmc-check" ~doc)
    Term.(
      const run $ file $ target $ depth $ complete $ Cli.certify
      $ Cli.proof_file $ vcd $ Cli.budget $ Cli.jobs $ Cli.stats
      $ Cli.stats_json $ Cli.trace $ Cli.log_level $ Cli.log_file
      $ Cli.no_inprocess $ Cli.backend)

let () = exit (Cli.main cmd)
