(* bmc-check: bounded model checking with optional diameter-bound
   completeness.

     bmc-check circuit.bench --target po0 --depth 20
     bmc-check circuit.bench --target po0 --complete                  *)

module Net = Netlist.Net

let run file target depth complete vcd stats stats_json =
  let net = Textio.Bench_io.parse_file file in
  let target =
    match (target, Net.targets net) with
    | Some t, _ -> t
    | None, (t, _) :: _ -> t
    | None, [] ->
      Format.eprintf "netlist has no targets@.";
      exit 2
  in
  let depth =
    if complete then begin
      let b = Core.Bound.target_named net target in
      if Core.Sat_bound.is_huge b.Core.Bound.bound then begin
        Format.eprintf
          "no practically useful diameter bound for %s (cone of %d \
           registers); try --depth@."
          target b.Core.Bound.coi_regs;
        exit 3
      end;
      Format.printf "diameter bound %a: checking to depth %d is complete@."
        Core.Sat_bound.pp b.Core.Bound.bound
        (b.Core.Bound.bound - 1);
      b.Core.Bound.bound - 1
    end
    else depth
  in
  let finish () = Obs.Report.emit ~human:stats ?json_file:stats_json () in
  match Bmc.check net ~target ~depth with
  | Bmc.Hit cex ->
    let replayed = Bmc.replay net (List.assoc target (Net.targets net)) cex in
    Format.printf "target %s HIT at time %d (replay: %b)@." target
      cex.Bmc.depth replayed;
    (match vcd with
    | Some path ->
      Textio.Vcd.write_file path net (Bmc.frames_of_cex net cex);
      Format.printf "waveform written to %s@." path
    | None -> ());
    List.iter
      (fun (v, t, value) ->
        match Net.node net v with
        | Net.Input name -> Format.printf "  %s@%d = %b@." name t value
        | Net.Const | Net.And _ | Net.Reg _ | Net.Latch _ -> ())
      (List.sort compare cex.Bmc.inputs);
    finish ();
    exit 1
  | Bmc.No_hit d ->
    if complete then Format.printf "no hit to depth %d: PROVED.@." d
    else Format.printf "no hit to depth %d (bounded result only).@." d;
    finish ()

open Cmdliner

let file =
  Arg.(
    required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:".bench netlist")

let target =
  Arg.(
    value
    & opt (some string) None
    & info [ "target" ] ~docv:"NAME" ~doc:"Target to check (default: first)")

let depth =
  Arg.(value & opt int 20 & info [ "depth" ] ~docv:"N" ~doc:"BMC depth")

let complete =
  Arg.(
    value & flag
    & info [ "complete" ]
        ~doc:"Derive the depth from the structural diameter bound, turning \
              the bounded check into a proof")

let vcd =
  Arg.(
    value
    & opt (some string) None
    & info [ "vcd" ] ~docv:"FILE" ~doc:"Dump the counterexample as a VCD waveform")

let stats =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print the observability counters and timing spans after the run")

let stats_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:"Write the observability snapshot as JSON to $(docv)")

let cmd =
  let doc = "bounded model checking with diameter-bound completeness" in
  Cmd.v
    (Cmd.info "bmc-check" ~doc)
    Term.(
      const run $ file $ target $ depth $ complete $ vcd $ stats $ stats_json)

let () = exit (Cmd.eval cmd)
