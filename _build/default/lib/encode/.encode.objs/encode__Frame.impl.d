lib/encode/frame.ml: Array Netlist Sat
