lib/encode/unroll.mli: Netlist Sat
