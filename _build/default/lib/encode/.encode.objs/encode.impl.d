lib/encode/encode.ml: Frame Unroll
