lib/encode/unroll.ml: Hashtbl Netlist Sat
