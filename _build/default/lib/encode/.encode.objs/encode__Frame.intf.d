lib/encode/frame.mli: Netlist Sat
