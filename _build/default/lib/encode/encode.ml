(** SAT encodings of netlists: single combinational frames and
    time-frame unrollings. *)

module Frame = Frame
module Unroll = Unroll
