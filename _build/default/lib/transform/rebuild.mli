(** Netlist reconstruction: the shared machinery of the
    semantics-preserving transformations.

    [copy] rebuilds the cone of influence of the given roots into a
    fresh netlist, re-strashing every AND on the way (so constant
    propagation and structural merging happen automatically), while
    applying an optional vertex redirection (used by redundancy
    removal to merge equivalent vertices). *)

type result = {
  net : Netlist.Net.t;
  map : Netlist.Lit.t option array;
      (** old variable -> new literal; [None] outside the copied cone *)
}

val map_lit : result -> Netlist.Lit.t -> Netlist.Lit.t
(** Translate an old literal.  @raise Invalid_argument if unmapped. *)

val copy :
  ?roots:Netlist.Lit.t list ->
  ?redirect:(int -> Netlist.Lit.t option) ->
  Netlist.Net.t ->
  result
(** [copy net] rebuilds [net] restricted to the sequential cone of
    influence of [roots] (default: all outputs and targets).  Named
    outputs and targets whose cone was kept are re-registered on the
    new netlist.

    [redirect v = Some l] requests that every use of vertex [v] be
    replaced by (old-netlist) literal [l]; redirections are followed
    transitively and must not form cycles. *)
