(** Localization / cut-point insertion (the paper's Section 3.5):
    replace chosen vertices by fresh primary inputs.

    This is an OVERapproximate abstraction: target-unreachable results
    transfer to the original netlist, but diameter bounds do not —
    unreachable states may become reachable (possibly increasing the
    diameter) and unreachable transitions may become reachable
    (possibly decreasing it).  The library exposes it to demonstrate
    (and property-test) that negative result; it must not feed the
    bound translators. *)

val run : Netlist.Net.t -> cut:int list -> Rebuild.result
(** [run net ~cut] replaces each vertex in [cut] by a fresh input. *)

val cut_at_depth : Netlist.Net.t -> depth:int -> int list
(** Heuristic cut: vertices whose combinational depth from the targets
    exceeds [depth] and that source a crossing edge. *)
