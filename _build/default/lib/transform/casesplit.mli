(** Case splitting (the paper's Section 3.6): constrain chosen primary
    inputs to constants.

    This is an UNDERapproximate abstraction: target hits found on the
    split netlist are valid for the original, but unreachability
    results and diameter bounds are not — reachable states may become
    unreachable (possibly decreasing the diameter) and reachable
    transitions may vanish (possibly increasing it).  Exposed, like
    {!Localize}, to demonstrate the paper's negative result. *)

val run : Netlist.Net.t -> assignment:(string * bool) list -> Rebuild.result
(** Replace each named input by the given constant. *)
