(** C-slow abstraction of register netlists (the paper's Section 3.3,
    after Baumgartner et al. [21]).

    A netlist is c-slow when its registers can be c-colored such that
    color-p registers combinationally feed only color-((p+1) mod c)
    registers; equivalently, every sequential cycle crosses a multiple
    of c registers.  The largest such c is the gcd of all cycle
    discrepancies of a potential assignment on the register dependency
    graph.

    The abstraction keeps one color of registers (normalized to the
    color read by the targets) and dissolves the other colors into
    combinational logic, splitting primary inputs per sub-step; one
    abstract step then corresponds to c original steps, and Theorem 3
    translates a bound [d] on the abstraction to [c * d] on the
    original netlist.

    The abstraction is exact for the kept-color projection: the
    abstract state at step T equals the original kept registers at
    time [c * T].

    When the netlist is not c-slow for any [c > 1], or its targets mix
    colors, [run] degrades to the identity transformation
    ([factor = 1]). *)

type result = {
  net : Netlist.Net.t;
  factor : int;
  map : Netlist.Lit.t option array;
      (** original vertex -> abstract literal, for kept registers and
          sub-step-0 combinational logic *)
}

val detect : Netlist.Net.t -> int
(** The largest [c] for which the netlist is structurally c-slow
    (1 when it has no sequential cycles or is not foldable). *)

val run : Netlist.Net.t -> result
