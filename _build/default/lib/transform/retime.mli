(** Normalized retiming for verification (the paper's RET engine,
    after Kuehlmann & Baumgartner [9]).

    Registers not lying on any sequential cycle ("acyclic registers")
    are contracted into weighted edges; every combinational vertex [v]
    receives the maximal legal peel [p v] (the shortest register
    distance from any host — primary input, constant or cyclic
    register — to [v]).  This is a normalized retiming with lag
    [r v = -p v <= 0]: the rebuilt recurrence structure contains, on
    each edge, [w + p(tail) - p(head)] registers, and each rebuilt
    vertex leads its original by [p v] time steps.

    Initial values of relocated registers are the original chain
    constants where the required value predates time 0, and otherwise
    come from the retiming stump — the first [p] time steps of the
    original netlist — evaluated with three-valued simulation under
    unknown inputs.  Stump values that do not resolve to constants
    become [Init_x]; this widening is sound for the structural
    diameter bound (which never reads initial values) and exact on
    designs whose stump is input-independent.

    Theorem 2 gives the bound translation: if the retimed target has
    diameter bound [d], the original target has bound [d + skew]. *)

type result = {
  rebuilt : Rebuild.result;
      (** new netlist; [map] sends each surviving combinational vertex
          [v] to its retimed correspondent, which leads the original
          by [skew.(v)] steps *)
  skew : int array;  (** per original vertex: [-lag], non-negative *)
  target_skews : (string * int) list;
  max_skew : int;
  moved_regs : int;  (** acyclic registers dissolved into chains *)
}

val run : Netlist.Net.t -> result
(** @raise Invalid_argument on netlists with level-sensitive latches
    (retime after phase abstraction, as the paper does). *)
