(** Structural re-synthesis of a BDD into AIG logic (used to represent
    enlarged targets structurally, after [24] and [7]). *)

val synthesize :
  Bdd.man ->
  Netlist.Net.t ->
  leaf:(int -> Netlist.Lit.t) ->
  Bdd.t ->
  Netlist.Lit.t
(** [synthesize man net ~leaf f] builds a multiplexer tree for [f] in
    [net]; [leaf v] supplies the netlist literal of BDD variable
    [v]. *)
