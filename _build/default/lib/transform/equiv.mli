(** Equivalence checking helpers used to validate transformations
    (Theorem 1's trace equivalence, and its skewed/folded variants for
    Theorems 2 and 3). *)

val sim_equivalent :
  ?seeds:int list ->
  ?steps:int ->
  ?skew:int ->
  ?fold:int ->
  Netlist.Net.t ->
  Netlist.Lit.t ->
  Netlist.Net.t ->
  Netlist.Lit.t ->
  bool
(** [sim_equivalent a la b lb] drives both netlists with the same
    pseudo-random input sequences (inputs matched by name; the fold
    factor maps input "n\@p" of [b] to input "n" of [a] at sub-step p)
    and checks [value a la (fold * t + fold - 1 + skew) = value b lb t]
    for every step [t], ignoring comparisons involving X values.
    [skew] skews netlist [a] forward (Theorem 2); [fold > 1] folds
    time modulo [fold] (Theorem 3). *)

val sat_equivalent :
  depth:int -> Netlist.Net.t -> Netlist.Lit.t -> Netlist.Net.t -> Netlist.Lit.t -> bool
(** Complete bounded equivalence: unrolls both netlists to [depth],
    ties inputs of equal names frame by frame, and asks the SAT solver
    for a divergence.  [true] iff none exists within the bound.  Only
    meaningful for netlists without [Init_x] state (nondeterministic
    initial values are independent free variables on the two sides). *)
