module Net = Netlist.Net
module Lit = Netlist.Lit

let run net ~cut =
  let n = Net.num_vars net in
  (* pre-create replacement inputs on a staging copy: redirect each cut
     vertex to a fresh input built beside the original (Rebuild copies
     only the cone, so we stage the inputs in the old netlist) *)
  let fresh_inputs = Hashtbl.create 16 in
  List.iter
    (fun v ->
      if v > 0 && v < n && not (Hashtbl.mem fresh_inputs v) then
        Hashtbl.add fresh_inputs v
          (Net.add_input net (Printf.sprintf "cutpoint%d" v)))
    cut;
  Rebuild.copy ~redirect:(Hashtbl.find_opt fresh_inputs) net

let cut_at_depth net ~depth =
  let roots = List.map snd (Net.targets net) in
  let dist = Hashtbl.create 256 in
  let rec visit v d =
    let better =
      match Hashtbl.find_opt dist v with Some d' -> d < d' | None -> true
    in
    if better then begin
      Hashtbl.replace dist v d;
      List.iter (fun l -> visit (Lit.var l) (d + 1)) (Net.fanins net v)
    end
  in
  List.iter (fun l -> visit (Lit.var l) 0) roots;
  Hashtbl.fold (fun v d acc -> if d > depth then v :: acc else acc) dist []
