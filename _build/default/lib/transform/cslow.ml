module Net = Netlist.Net
module Lit = Netlist.Lit
module Coi = Netlist.Coi

type result = {
  net : Net.t;
  factor : int;
  map : Lit.t option array;
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Register dependency edges: [s -> r] when register [r]'s next-state
   cone combinationally reads register [s]. *)
let reg_edges net =
  let edges = ref [] in
  List.iter
    (fun r ->
      let next = (Net.reg_of net r).Net.next in
      let cone = Coi.combinational net [ next ] in
      Net.iter_nodes net (fun s node ->
          match node with
          | Net.Reg _ when cone.(s) -> edges := (s, r) :: !edges
          | Net.Const | Net.Input _ | Net.And _ | Net.Reg _ | Net.Latch _ -> ()))
    (Net.regs net);
  !edges

(* Potential assignment over the weakly-connected register graph and
   the gcd of all edge discrepancies. *)
let potentials net =
  let n = Net.num_vars net in
  let pot = Array.make n min_int in
  let edges = reg_edges net in
  let adj = Hashtbl.create 64 in
  let add_adj a b delta =
    Hashtbl.replace adj a ((b, delta) :: Option.value (Hashtbl.find_opt adj a) ~default:[])
  in
  List.iter
    (fun (s, r) ->
      (* desired: pot r = pot s + 1 *)
      add_adj s r 1;
      add_adj r s (-1))
    edges;
  let rec dfs v =
    List.iter
      (fun (w, delta) ->
        if pot.(w) = min_int then begin
          pot.(w) <- pot.(v) + delta;
          dfs w
        end)
      (Option.value (Hashtbl.find_opt adj v) ~default:[])
  in
  List.iter
    (fun r ->
      if pot.(r) = min_int then begin
        pot.(r) <- 0;
        dfs r
      end)
    (Net.regs net);
  let c =
    List.fold_left
      (fun acc (s, r) -> gcd acc (abs (pot.(s) + 1 - pot.(r))))
      0 edges
  in
  (pot, c)

let detect net =
  if Net.num_latches net > 0 then 1
  else begin
    let _, c = potentials net in
    if c <= 0 then 1 else c
  end

exception Not_foldable

let identity original =
  let base = Rebuild.copy original in
  { net = base.Rebuild.net; factor = 1; map = base.Rebuild.map }

let run original =
  if Net.num_latches original > 0 then
    invalid_arg "Cslow.run: phase-abstract latch designs first";
  let pot, c = potentials original in
  if c <= 1 then identity original
  else begin
    let n = Net.num_vars original in
    (* normalize colors so that target cones read color 0 *)
    let roots =
      List.map snd (Net.targets original) @ List.map snd (Net.outputs original)
    in
    let root_cone = Coi.combinational original roots in
    let shift = ref None in
    List.iter
      (fun r ->
        if root_cone.(r) && !shift = None then
          shift := Some (((pot.(r) mod c) + c) mod c))
      (Net.regs original);
    let shift = Option.value !shift ~default:0 in
    let color r = (((pot.(r) - shift) mod c) + c) mod c in
    let fresh = Net.create () in
    let memo : (int * int, Lit.t) Hashtbl.t = Hashtbl.create (2 * n) in
    let pending = ref [] in
    let rec build v ctx =
      match Hashtbl.find_opt memo (v, ctx) with
      | Some l -> l
      | None ->
        let l =
          match Net.node original v with
          | Net.Const -> Lit.false_
          | Net.Input name ->
            Net.add_input fresh
              (if c = 1 then name else Printf.sprintf "%s@%d" name ctx)
          | Net.And (a, b) -> Net.add_and fresh (blit a ctx) (blit b ctx)
          | Net.Latch _ -> assert false
          | Net.Reg reg ->
            let p = color v in
            if p <> ctx then raise Not_foldable
            else if p = 0 then begin
              (* kept color: abstract register *)
              let r = Net.add_reg fresh ~init:reg.Net.r_init reg.Net.r_name in
              Hashtbl.replace memo (v, ctx) r;
              pending := (r, reg.Net.next) :: !pending;
              r
            end
            else
              (* dissolved color: substitute the next-state cone,
                 evaluated one sub-step earlier *)
              blit reg.Net.next (p - 1)
        in
        Hashtbl.replace memo (v, ctx) l;
        l
    and blit l ctx = Lit.xor_sign (build (Lit.var l) ctx) (Lit.is_neg l) in
    let rec drain () =
      match !pending with
      | [] -> ()
      | (r, next) :: rest ->
        pending := rest;
        (* the kept register's next cone evaluates at the last sub-step
           of the major cycle *)
        Net.set_next fresh r (blit next (c - 1));
        drain ()
    in
    match
      List.iter
        (fun (name, l) -> Net.add_target fresh name (blit l 0))
        (Net.targets original);
      List.iter
        (fun (name, l) -> Net.add_output fresh name (blit l 0))
        (Net.outputs original);
      drain ()
    with
    | () ->
      let map = Array.make n None in
      Hashtbl.iter
        (fun (v, ctx) l -> if ctx = 0 then map.(v) <- Some l)
        memo;
      { net = fresh; factor = c; map }
    | exception Not_foldable -> identity original
  end
