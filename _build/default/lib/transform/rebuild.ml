module Net = Netlist.Net
module Lit = Netlist.Lit

type result = { net : Net.t; map : Lit.t option array }

let map_lit r l =
  match r.map.(Lit.var l) with
  | Some nl -> Lit.xor_sign nl (Lit.is_neg l)
  | None -> invalid_arg "Rebuild.map_lit: vertex not in copied cone"

let copy ?roots ?(redirect = fun _ -> None) old =
  let roots =
    match roots with
    | Some rs -> rs
    | None ->
      List.map snd (Net.outputs old)
      @ List.map snd (Net.targets old)
  in
  let fresh = Net.create ~phases:(Net.phases old) () in
  let map : Lit.t option array = Array.make (Net.num_vars old) None in
  (* resolve redirections transitively, tracking the accumulated sign *)
  let resolve v =
    let rec go v sign budget =
      if budget = 0 then failwith "Rebuild.copy: redirection cycle";
      match redirect v with
      | None -> Lit.of_var v ~sign
      | Some l -> go (Lit.var l) (sign <> Lit.is_neg l) (budget - 1)
    in
    go v false (Net.num_vars old + 1)
  in
  (* pending state-element data edges, set after their cones exist *)
  let pending = ref [] in
  let rec build_var v =
    match map.(v) with
    | Some nl -> nl
    | None ->
      let target = resolve v in
      let nl =
        if Lit.var target <> v then begin
          let sub = build_var (Lit.var target) in
          Lit.xor_sign sub (Lit.is_neg target)
        end
        else begin
          match Net.node old v with
          | Net.Const -> Lit.false_
          | Net.Input name -> Net.add_input fresh name
          | Net.And (a, b) -> Net.add_and fresh (build_lit a) (build_lit b)
          | Net.Reg r ->
            let nr = Net.add_reg fresh ~init:r.Net.r_init r.Net.r_name in
            map.(v) <- Some nr;
            pending := `Reg (nr, r.Net.next) :: !pending;
            nr
          | Net.Latch l ->
            let nlat =
              Net.add_latch fresh ~init:l.Net.l_init ~phase:l.Net.l_phase
                l.Net.l_name
            in
            map.(v) <- Some nlat;
            pending := `Latch (nlat, l.Net.l_data) :: !pending;
            nlat
        end
      in
      map.(v) <- Some nl;
      nl
  and build_lit l = Lit.xor_sign (build_var (Lit.var l)) (Lit.is_neg l) in
  List.iter (fun l -> ignore (build_var (Lit.var l))) roots;
  (* state-element data cones: new pending edges may appear while we
     process, so drain the worklist *)
  let rec drain () =
    match !pending with
    | [] -> ()
    | item :: rest ->
      pending := rest;
      (match item with
      | `Reg (nr, next) -> Net.set_next fresh nr (build_lit next)
      | `Latch (nlat, data) -> Net.set_latch_data fresh nlat (build_lit data));
      drain ()
  in
  drain ();
  let result = { net = fresh; map } in
  List.iter
    (fun (name, l) ->
      match map.(Lit.var l) with
      | Some _ -> Net.add_output fresh name (map_lit result l)
      | None -> ())
    (Net.outputs old);
  List.iter
    (fun (name, l) ->
      match map.(Lit.var l) with
      | Some _ -> Net.add_target fresh name (map_lit result l)
      | None -> ())
    (Net.targets old);
  result
