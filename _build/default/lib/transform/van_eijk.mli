(** Sequential redundancy removal by induction (van Eijk's algorithm).

    Combinational SAT sweeping ({!Com}) cuts at state elements and so
    only merges vertices equivalent over {e all} state valuations.
    This engine finds vertices equivalent over all {e reachable}
    states provable by 1-step induction:

    1. candidate equivalence classes from bit-parallel simulation;
    2. refinement: assuming all current classes hold on the
       current-state cut, check with SAT that each member equals its
       representative one step later (and at the initial state);
    3. classes that survive to a fixpoint are inductively equivalent
       and merged.

    This is strictly stronger than {!Com} — it merges, for instance,
    two pipelines computing the same function with registers at
    different positions, a case {!Com} misses and {!Retime} only
    resolves by normalization (see the A4 ablation in the benchmark
    harness).  The paper's COM engine [27] is the combinational
    variant, so the Table 1/2 pipelines deliberately do not use this
    engine; it is provided as the natural next step of the program of
    Section 3.1 (any trace-equivalence-preserving reduction transfers
    diameter bounds verbatim, Theorem 1). *)

type stats = {
  iterations : int;  (** refinement rounds until fixpoint *)
  merged : int;  (** vertices redirected *)
  sat_checks : int;
}

val run :
  ?seed:int -> ?sim_steps:int -> ?depth:int -> Netlist.Net.t -> Rebuild.result * stats
(** Fixpoint of induction-based merging followed by a final {!Com}
    cleanup.  Trace equivalence of mapped vertices is preserved
    (Theorem 1 applies). *)
