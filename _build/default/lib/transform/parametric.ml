module Net = Netlist.Net
module Lit = Netlist.Lit
module Coi = Netlist.Coi

type result = {
  rebuilt : Rebuild.result;
  cut_size : int;
  params : int;
  image_size : float;
}

let run net ~cut =
  let n = List.length cut in
  if n = 0 || n > 16 then None
  else begin
    (* memoryless check: the cut cones stop at inputs *)
    let cone = Coi.combinational net cut in
    let stateless = ref true in
    Net.iter_nodes net (fun v node ->
        if cone.(v) then
          match node with
          | Net.Reg _ | Net.Latch _ -> stateless := false
          | Net.Const | Net.Input _ | Net.And _ -> ());
    if not !stateless then None
    else begin
      let man = Bdd.man () in
      (* BDD variables: cut signals 0 .. n-1, inputs after *)
      let input_var = Hashtbl.create 16 in
      let next_var = ref n in
      let memo = Hashtbl.create 256 in
      let rec fn v =
        match Hashtbl.find_opt memo v with
        | Some b -> b
        | None ->
          let b =
            match Net.node net v with
            | Net.Const -> Bdd.bfalse
            | Net.Input _ ->
              let bv =
                match Hashtbl.find_opt input_var v with
                | Some bv -> bv
                | None ->
                  let bv = !next_var in
                  incr next_var;
                  Hashtbl.replace input_var v bv;
                  bv
              in
              Bdd.var man bv
            | Net.And (a, b) -> Bdd.band man (fn_lit a) (fn_lit b)
            | Net.Reg _ | Net.Latch _ -> assert false
          in
          Hashtbl.replace memo v b;
          b
      and fn_lit l =
        let b = fn (Lit.var l) in
        if Lit.is_neg l then Bdd.bnot man b else b
      in
      (* image = exists inputs . AND_i (v_i <-> f_i(inputs)) *)
      let relation =
        List.fold_left
          (fun acc (i, l) ->
            Bdd.band man acc (Bdd.biff man (Bdd.var man i) (fn_lit l)))
          Bdd.btrue
          (List.mapi (fun i l -> (i, l)) cut)
      in
      let inputs = Hashtbl.fold (fun _ bv acc -> bv :: acc) input_var [] in
      let image = Bdd.exists man inputs relation in
      let image_size = Bdd.sat_count man ~nvars:n image in
      (* chronological parameterization: E_i = exists v_(i+1..n-1) image *)
      let exist_down = Array.make (n + 1) image in
      for i = n - 1 downto 0 do
        exist_down.(i) <- Bdd.exists man [ i ] exist_down.(i + 1)
      done;
      (* exist_down.(i) ranges over v_0 .. v_(i-1); build the circuit in
         cut order, staged into the old netlist with fresh params *)
      let built : Lit.t array = Array.make n Lit.false_ in
      let leaf bv =
        if bv < n then built.(bv)
        else invalid_arg "Parametric: unquantified input in image"
      in
      let params = ref 0 in
      List.iteri
        (fun i _l ->
          (* possibility predicates over v_0 .. v_(i-1) *)
          let e = exist_down.(i + 1) in
          let possible1 =
            Bdd.compose man (fun v -> if v = i then Some Bdd.btrue else None) e
          in
          let possible0 =
            Bdd.compose man (fun v -> if v = i then Some Bdd.bfalse else None) e
          in
          let p1 = Bdd_synth.synthesize man net ~leaf possible1 in
          let p0 = Bdd_synth.synthesize man net ~leaf possible0 in
          let value =
            if Lit.equal p1 Lit.false_ then Lit.false_
            else if Lit.equal p0 Lit.false_ then Lit.true_
            else begin
              incr params;
              let p = Net.add_input net (Printf.sprintf "param%d" (Net.num_vars net)) in
              Net.add_or net (Net.add_and net p p1) (Lit.neg p0)
            end
          in
          built.(i) <- value)
        cut;
      (* redirect each cut vertex to its parametric replacement,
         folding the cut literal's sign back in *)
      let redirect_table = Hashtbl.create 16 in
      List.iteri
        (fun i l ->
          (* constant cut literals are already their own replacement *)
          if not (Lit.is_const l) then
            Hashtbl.replace redirect_table (Lit.var l)
              (Lit.xor_sign built.(i) (Lit.is_neg l)))
        cut;
      let rebuilt = Rebuild.copy ~redirect:(Hashtbl.find_opt redirect_table) net in
      Some { rebuilt; cut_size = n; params = !params; image_size }
    end
  end
