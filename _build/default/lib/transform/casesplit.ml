module Net = Netlist.Net
module Lit = Netlist.Lit

let run net ~assignment =
  let by_var = Hashtbl.create 16 in
  Net.iter_nodes net (fun v node ->
      match node with
      | Net.Input name -> (
        match List.assoc_opt name assignment with
        | Some b -> Hashtbl.add by_var v (if b then Lit.true_ else Lit.false_)
        | None -> ())
      | Net.Const | Net.And _ | Net.Reg _ | Net.Latch _ -> ());
  Rebuild.copy ~redirect:(Hashtbl.find_opt by_var) net
