(** Parametric re-encoding (the paper's Section 3.1, after Moon et
    al. [16] and [17]): replace the fanin cone of a cut by a smaller
    cone producing {e exactly} the same set of valuations, driven by
    fresh parametric inputs.

    Unlike cut-point insertion (Section 3.5), which overapproximates
    by making every cut valuation producible, the parametric
    replacement preserves the image and hence trace equivalence of
    every vertex outside the replaced cone — Theorem 1 transfers
    diameter bounds verbatim.

    This implementation handles the memoryless case: every cut
    signal's combinational cone may contain only primary inputs and
    constants (each time step is then independent, so per-step image
    equality is trace equivalence).  The image is computed as a BDD
    and re-synthesized with the classic chronological parameterization:
    cut signal [i] becomes [(p_i & possible1_i) | ~possible0_i], where
    the possibility predicates are functions of the already-re-encoded
    signals. *)

type result = {
  rebuilt : Rebuild.result;
  cut_size : int;
  params : int;  (** fresh parametric inputs introduced *)
  image_size : float;  (** number of producible cut valuations *)
}

val run : Netlist.Net.t -> cut:Netlist.Lit.t list -> result option
(** [None] when some cut cone reaches a state element (not
    memoryless), the cut is empty, or it exceeds 16 signals. *)

(** {b Cut discipline}: the cut must dominate its cone — vertices
    outside the replaced logic should read the cone only through the
    cut signals.  Readers that bypass the cut keep the original
    (shared) logic and lose correlation with the re-encoded copy. *)
