(** Structural transformation engines (Section 3 of the paper):
    semantics-preserving reductions whose effect on the diameter is
    captured by Theorems 1-4, plus the over/under-approximate
    abstractions whose effect is demonstrably uncapturable. *)

module Rebuild = Rebuild
module Com = Com
module Van_eijk = Van_eijk
module Retime = Retime
module Phase = Phase
module Cslow = Cslow
module Enlarge = Enlarge
module Parametric = Parametric
module Bdd_synth = Bdd_synth
module Localize = Localize
module Casesplit = Casesplit
module Equiv = Equiv
