lib/transform/van_eijk.ml: Array Com Encode Hashtbl List Netlist Option Rebuild Sat
