lib/transform/phase.mli: Netlist
