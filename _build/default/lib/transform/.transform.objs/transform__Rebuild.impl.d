lib/transform/rebuild.ml: Array List Netlist
