lib/transform/parametric.ml: Array Bdd Bdd_synth Hashtbl List Netlist Printf Rebuild
