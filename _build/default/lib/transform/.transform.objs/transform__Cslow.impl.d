lib/transform/cslow.ml: Array Hashtbl List Netlist Option Printf Rebuild
