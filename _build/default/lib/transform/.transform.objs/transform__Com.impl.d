lib/transform/com.ml: Array Encode Hashtbl List Netlist Option Rebuild Sat
