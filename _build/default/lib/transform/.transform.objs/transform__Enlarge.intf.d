lib/transform/enlarge.mli: Netlist
