lib/transform/transform.ml: Bdd_synth Casesplit Com Cslow Enlarge Equiv Localize Parametric Phase Rebuild Retime Van_eijk
