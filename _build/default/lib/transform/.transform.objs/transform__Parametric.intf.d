lib/transform/parametric.mli: Netlist Rebuild
