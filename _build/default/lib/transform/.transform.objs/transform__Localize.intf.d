lib/transform/localize.mli: Netlist Rebuild
