lib/transform/com.mli: Netlist Rebuild
