lib/transform/localize.ml: Hashtbl List Netlist Printf Rebuild
