lib/transform/casesplit.ml: Hashtbl List Netlist Rebuild
