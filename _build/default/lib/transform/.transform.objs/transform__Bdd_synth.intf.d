lib/transform/bdd_synth.mli: Bdd Netlist
