lib/transform/van_eijk.mli: Netlist Rebuild
