lib/transform/casesplit.mli: Netlist Rebuild
