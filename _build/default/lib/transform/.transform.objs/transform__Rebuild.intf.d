lib/transform/rebuild.mli: Netlist
