lib/transform/bdd_synth.ml: Bdd Hashtbl Netlist
