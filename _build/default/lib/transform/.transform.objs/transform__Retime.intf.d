lib/transform/retime.mli: Netlist Rebuild
