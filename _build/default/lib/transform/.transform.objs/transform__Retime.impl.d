lib/transform/retime.ml: Array Hashtbl List Netlist Printf Rebuild
