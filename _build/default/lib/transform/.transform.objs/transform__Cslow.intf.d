lib/transform/cslow.mli: Netlist
