lib/transform/equiv.ml: Array Encode Hashtbl List Netlist Sat String
