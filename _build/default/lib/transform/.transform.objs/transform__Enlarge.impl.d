lib/transform/enlarge.ml: Array Bdd Bdd_synth Hashtbl List Netlist Printf Rebuild
