lib/transform/phase.ml: Array Hashtbl List Netlist Printf Rebuild
