lib/transform/equiv.mli: Netlist
