module Net = Netlist.Net
module Lit = Netlist.Lit
module Sim = Netlist.Sim
module Scc = Netlist.Scc

type result = {
  rebuilt : Rebuild.result;
  skew : int array;
  target_skews : (string * int) list;
  max_skew : int;
  moved_regs : int;
}

let v_xor_sign value sign =
  if sign then Sim.v_not value else value

let init_to_value = function
  | Net.Init0 -> Sim.V0
  | Net.Init1 -> Sim.V1
  | Net.Init_x -> Sim.Vx

let value_to_init = function
  | Sim.V0 -> Net.Init0
  | Sim.V1 -> Net.Init1
  | Sim.Vx -> Net.Init_x

let run original =
  if Net.num_latches original > 0 then
    invalid_arg "Retime.run: phase-abstract latch designs first";
  (* operate on the cone of influence of outputs and targets *)
  let base = Rebuild.copy original in
  let net = base.Rebuild.net in
  let n = Net.num_vars net in
  (* cyclic registers: on some sequential cycle *)
  let succ v = List.map Lit.var (Net.fanins net v) in
  let scc = Scc.compute n succ in
  let self_loop v = List.exists (fun l -> Lit.var l = v) (Net.fanins net v) in
  let cyclic v = Net.is_reg net v && Scc.is_cyclic scc ~self_loop v in
  let acyclic_reg v = Net.is_reg net v && not (cyclic v) in
  (* contract acyclic-register chains into weighted edges *)
  let rec walk l =
    let v = Lit.var l in
    if acyclic_reg v then begin
      let r = Net.reg_of net v in
      let l' = Lit.xor_sign r.Net.next (Lit.is_neg l) in
      let u, w, inits = walk l' in
      (u, w + 1, v_xor_sign (init_to_value r.Net.r_init) (Lit.is_neg l) :: inits)
    end
    else (l, 0, [])
  in
  (* maximal legal peel of each combinational vertex: shortest register
     distance from hosts (inputs, constants, cyclic registers) *)
  let peel = Array.make n (-1) in
  let rec peel_of v =
    match Net.node net v with
    | Net.Const | Net.Input _ -> 0
    | Net.Reg _ -> 0 (* endpoints are always cyclic registers *)
    | Net.Latch _ -> assert false
    | Net.And (a, b) ->
      if peel.(v) = -2 then failwith "Retime.run: combinational cycle";
      if peel.(v) >= 0 then peel.(v)
      else begin
        peel.(v) <- -2;
        let edge_peel l =
          let u, w, _ = walk l in
          w + peel_of (Lit.var u)
        in
        let p = min (edge_peel a) (edge_peel b) in
        peel.(v) <- p;
        p
      end
  in
  (* per-root skew: registers on the root chain plus the endpoint peel *)
  let root_skew l =
    let u, w, _ = walk l in
    (u, w + peel_of (Lit.var u))
  in
  let roots =
    List.map (fun (name, l) -> (`Target, name, l)) (Net.targets net)
    @ List.map (fun (name, l) -> (`Output, name, l)) (Net.outputs net)
  in
  let max_skew =
    List.fold_left (fun acc (_, _, l) -> max acc (snd (root_skew l))) 0 roots
  in
  (* force all peels so the stump depth covers every relocated init *)
  let max_peel = ref 0 in
  Net.iter_nodes net (fun v node ->
      match node with
      | Net.And _ -> max_peel := max !max_peel (peel_of v)
      | Net.Const | Net.Input _ | Net.Reg _ | Net.Latch _ -> ());
  let prefix_depth = max !max_peel max_skew in
  (* the retiming stump: three-valued values of the original prefix
     under unknown inputs, supplying relocated initial values *)
  let prefix =
    let s = Sim.create net in
    Array.init prefix_depth (fun _ ->
        Sim.step s (fun _ -> Sim.Vx);
        Array.init n (fun v -> Sim.value s (Lit.make v)))
  in
  let stump_value l t =
    if t >= prefix_depth then Sim.Vx
    else v_xor_sign prefix.(t).(Lit.var l) (Lit.is_neg l)
  in
  (* rebuild *)
  let fresh = Net.create () in
  let map : Lit.t option array = Array.make n None in
  let chain_cache : (int * Net.init, Lit.t) Hashtbl.t = Hashtbl.create 256 in
  let reg_counter = ref 0 in
  let pending = ref [] in
  let rec build_var v =
    match map.(v) with
    | Some l -> l
    | None ->
      let nl =
        match Net.node net v with
        | Net.Const -> Lit.false_
        | Net.Input name -> Net.add_input fresh name
        | Net.Latch _ -> assert false
        | Net.Reg r ->
          (* cyclic register: kept in place, next edge needs exact-time
             values (peel 0) *)
          let nr = Net.add_reg fresh ~init:r.Net.r_init r.Net.r_name in
          map.(v) <- Some nr;
          pending := (nr, r.Net.next) :: !pending;
          nr
        | Net.And (a, b) ->
          let p = peel_of v in
          Net.add_and fresh (build_edge a p) (build_edge b p)
      in
      map.(v) <- Some nl;
      nl
  (* rebuild fanin edge [l] as consumed by a vertex of peel [p_v]:
     endpoint copy plus a shared-prefix chain of
     [w + peel(endpoint) - p_v] registers *)
  and build_edge l p_v =
    let u, w, inits = walk l in
    let pu = peel_of (Lit.var u) in
    let endpoint = Lit.xor_sign (build_var (Lit.var u)) (Lit.is_neg u) in
    let total = w + pu - p_v in
    assert (total >= 0);
    let inits = Array.of_list inits in
    (* original value of [l] at time [s] *)
    let needed s = if s < w then inits.(s) else stump_value u (s - w) in
    let rec chain j cur =
      if j > total then cur
      else begin
        let init = value_to_init (needed (w + pu - j)) in
        let key = (Lit.to_int cur, init) in
        let stage =
          match Hashtbl.find_opt chain_cache key with
          | Some r -> r
          | None ->
            incr reg_counter;
            let r =
              Net.add_reg fresh ~init (Printf.sprintf "rt%d" !reg_counter)
            in
            Net.set_next fresh r cur;
            Hashtbl.add chain_cache key r;
            r
        in
        chain (j + 1) stage
      end
    in
    chain 1 endpoint
  in
  let target_skews = ref [] in
  List.iter
    (fun (kind, name, l) ->
      let u, skew = root_skew l in
      let nl = Lit.xor_sign (build_var (Lit.var u)) (Lit.is_neg u) in
      match kind with
      | `Target ->
        Net.add_target fresh name nl;
        target_skews := (name, skew) :: !target_skews
      | `Output -> Net.add_output fresh name nl)
    roots;
  let rec drain () =
    match !pending with
    | [] -> ()
    | (nr, next) :: rest ->
      pending := rest;
      Net.set_next fresh nr (build_edge next 0);
      drain ()
  in
  drain ();
  let moved_regs = List.length (List.filter acyclic_reg (Net.regs net)) in
  (* compose: original -> base -> retimed *)
  let compose =
    Array.map
      (function
        | None -> None
        | Some l -> (
          match map.(Lit.var l) with
          | None -> None
          | Some nl -> Some (Lit.xor_sign nl (Lit.is_neg l))))
      base.Rebuild.map
  in
  let skew_orig = Array.make (Net.num_vars original) 0 in
  Array.iteri
    (fun ov slot ->
      match slot with
      | Some l ->
        let v = Lit.var l in
        if v < n && peel.(v) >= 0 then skew_orig.(ov) <- peel.(v)
      | None -> ())
    base.Rebuild.map;
  ( {
      rebuilt = { Rebuild.net = fresh; map = compose };
      skew = skew_orig;
      target_skews = List.rev !target_skews;
      max_skew;
      moved_regs;
    }
    : result )
