module Net = Netlist.Net
module Lit = Netlist.Lit

let synthesize man net ~leaf f =
  let memo = Hashtbl.create 256 in
  let rec go f =
    match Bdd.view man f with
    | `False -> Lit.false_
    | `True -> Lit.true_
    | `Node (v, low, high) -> (
      match Hashtbl.find_opt memo f with
      | Some l -> l
      | None ->
        let l =
          Net.add_mux net ~sel:(leaf v) ~t1:(go high) ~t0:(go low)
        in
        Hashtbl.add memo f l;
        l)
  in
  go f
