(** Phase abstraction of c-phase level-sensitive latch designs (the
    paper's Section 3.3, after Baumgartner et al. [10]).

    The state elements must be c-colorable: the data cone of a phase-q
    latch may combinationally reach only phase-((q-1) mod c) latches,
    primary inputs and constants.  The abstraction evaluates the
    netlist symbolically through one major clock cycle:

    - a latch read in its own phase context is transparent and
      dissolves into its data cone;
    - a latch sampled earlier in the same major cycle dissolves
      likewise;
    - a latch whose sample wraps from the previous major cycle (with
      the canonical coloring, exactly the phase-(c-1) latches read by
      phase-0 logic) becomes an edge-triggered register;
    - a primary input read in phase context q becomes the abstract
      input "name\@q" (per-phase input splitting), since the original
      input is sampled c times per major cycle.

    One abstract step corresponds to [c] original steps, so by
    Theorem 3 a diameter bound [d] on the abstract netlist translates
    to [c * d] on the original.  Targets and outputs are evaluated in
    the phase-(c-1) context (end of major cycle). *)

type result = {
  net : Netlist.Net.t;
  factor : int;  (** the c of the folding; bound translation is [c * d] *)
  map : Netlist.Lit.t option array;
      (** original vertex -> abstract literal in the phase-(c-1)
          context: the abstract value at step T equals the original
          value at time [c*T + c-1] *)
}

val run : Netlist.Net.t -> result
(** Identity (factor 1) on pure register netlists.
    @raise Failure if the netlist is not properly colored. *)
