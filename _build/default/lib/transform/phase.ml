module Net = Netlist.Net
module Lit = Netlist.Lit

type result = {
  net : Net.t;
  factor : int;
  map : Lit.t option array;
}

let run original =
  let c = Net.phases original in
  if c = 1 && Net.num_latches original = 0 then begin
    let base = Rebuild.copy original in
    { net = base.Rebuild.net; factor = 1; map = base.Rebuild.map }
  end
  else begin
    let n = Net.num_vars original in
    let fresh = Net.create () in
    (* memo per (vertex, phase context) *)
    let memo : (int * int, Lit.t) Hashtbl.t = Hashtbl.create (4 * n) in
    let visiting : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
    let pending = ref [] in
    let rec build v ph =
      match Hashtbl.find_opt memo (v, ph) with
      | Some l -> l
      | None ->
        if Hashtbl.mem visiting (v, ph) then
          failwith "Phase.run: netlist is not properly c-colored (cycle)";
        Hashtbl.add visiting (v, ph) ();
        let l =
          match Net.node original v with
          | Net.Const -> Lit.false_
          | Net.Input name ->
            let abstract_name =
              if c = 1 then name else Printf.sprintf "%s@%d" name ph
            in
            Net.add_input fresh abstract_name
          | Net.And (a, b) -> Net.add_and fresh (blit a ph) (blit b ph)
          | Net.Reg _ ->
            failwith "Phase.run: mixed register/latch netlists unsupported"
          | Net.Latch latch ->
            let p = latch.Net.l_phase in
            let delta = (ph - p + c) mod c in
            if delta <= ph then
              (* transparent now (delta = 0) or sampled earlier in the
                 same major cycle: dissolve into the data cone *)
              blit latch.Net.l_data p
            else begin
              (* sample wraps from the previous major cycle: register *)
              let r =
                Net.add_reg fresh ~init:latch.Net.l_init latch.Net.l_name
              in
              Hashtbl.replace memo (v, ph) r;
              pending := (r, latch.Net.l_data, p) :: !pending;
              r
            end
        in
        Hashtbl.remove visiting (v, ph);
        Hashtbl.replace memo (v, ph) l;
        l
    and blit l ph = Lit.xor_sign (build (Lit.var l) ph) (Lit.is_neg l) in
    let rec drain () =
      match !pending with
      | [] -> ()
      | (r, data, p) :: rest ->
        pending := rest;
        Net.set_next fresh r (blit data p);
        drain ()
    in
    List.iter
      (fun (name, l) -> Net.add_target fresh name (blit l (c - 1)))
      (Net.targets original);
    List.iter
      (fun (name, l) -> Net.add_output fresh name (blit l (c - 1)))
      (Net.outputs original);
    drain ();
    let map = Array.make n None in
    Hashtbl.iter
      (fun (v, ph) l -> if ph = c - 1 then map.(v) <- Some l)
      memo;
    { net = fresh; factor = c; map }
  end
