module Net = Netlist.Net

type target_report = {
  target : string;
  raw_bound : Sat_bound.t;
  bound : Sat_bound.t;
  translator : Translate.t;
}

type report = {
  pipeline : string;
  reg_counts : Classify.counts;
  targets : target_report list;
  final : Netlist.Net.t;
}

let report_on name net translator_of =
  let targets =
    List.map
      (fun (tname, b) ->
        let translator = translator_of tname in
        {
          target = tname;
          raw_bound = b.Bound.bound;
          bound = translator.Translate.apply b.Bound.bound;
          translator;
        })
      (Bound.all_targets net)
  in
  {
    pipeline = name;
    reg_counts = Classify.netlist_counts net;
    targets;
    final = net;
  }

let original net =
  report_on "Original" net (fun _ -> Translate.identity)

let com net =
  let reduced, _stats = Transform.Com.run net in
  report_on "COM" reduced.Transform.Rebuild.net (fun _ ->
      Translate.trace_equivalence)

let com_ret_com net =
  let first, _ = Transform.Com.run net in
  let retimed = Transform.Retime.run first.Transform.Rebuild.net in
  let second, _ = Transform.Com.run retimed.Transform.Retime.rebuilt.Transform.Rebuild.net in
  let skews = retimed.Transform.Retime.target_skews in
  report_on "COM,RET,COM" second.Transform.Rebuild.net (fun tname ->
      let skew = Option.value (List.assoc_opt tname skews) ~default:0 in
      Translate.compose Translate.trace_equivalence
        (Translate.compose (Translate.retiming ~skew) Translate.trace_equivalence))

let phase_front net =
  let abstracted = Transform.Phase.run net in
  ( abstracted.Transform.Phase.net,
    Translate.state_folding ~factor:abstracted.Transform.Phase.factor )

type summary = { proved_small : int; total : int; average : float }

let summarize ~cutoff report =
  let small =
    List.filter
      (fun t -> (not (Sat_bound.is_huge t.bound)) && t.bound < cutoff)
      report.targets
  in
  let proved_small = List.length small in
  let total = List.length report.targets in
  let average =
    if proved_small = 0 then 0.
    else
      List.fold_left (fun acc t -> acc +. float_of_int t.bound) 0. small
      /. float_of_int proved_small
  in
  { proved_small; total; average }

let pp_report ~cutoff ppf report =
  let s = summarize ~cutoff report in
  Format.fprintf ppf "%-12s R:%a  |T'|/|T|: %d/%d  avg: %.1f" report.pipeline
    Classify.pp_counts report.reg_counts s.proved_small s.total s.average
