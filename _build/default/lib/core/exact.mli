(** Exact explicit-state analysis of small netlists — the validation
    oracle for the overapproximate bounds.

    Enumerates the reachable state graph of the target's cone of
    influence (breadth-first over register valuations, all input
    valuations per state) and computes exact distances.  Exponential;
    refuses cones beyond the given limits. *)

type result = {
  reachable : int;  (** number of reachable states *)
  init_diameter : int;
      (** 1 + max over reachable states of the distance from the
          initial state(s): the paper-convention sufficient BMC depth
          (cf. [6] — distances from initial states suffice) *)
  pair_diameter : int;
      (** 1 + max over ordered reachable pairs (s, s') with s'
          reachable from s of dist(s, s'): the classical diameter in
          the paper's convention *)
  earliest_hit : int option;
      (** earliest time the target can be asserted, if ever *)
}

val explore :
  ?max_regs:int ->
  ?max_inputs:int ->
  ?max_states:int ->
  Netlist.Net.t ->
  Netlist.Lit.t ->
  result option
(** [None] if the cone exceeds the limits (defaults: 16 registers, 10
    inputs, 65536 states) or the netlist has latches. *)
