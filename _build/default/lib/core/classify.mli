(** Component classification of the structural diameter bounding
    technique ([7], summarized in Section 4 of the paper).

    The registers of (a cone of) a netlist are partitioned into
    strongly connected components of the register dependency graph and
    each component is classified:

    - [CC] — constant components: registers provably stuck at a binary
      constant (ternary fixpoint under unknown inputs); they do not
      affect the diameter.
    - [AC] — acyclic components: registers on no sequential cycle;
      each pipeline stage increments the diameter by one, regardless
      of width.
    - [MC]/[QC] — memory/queue components: clusters of hold-mux cells
      (next state a multiplexer between held value and new data) with
      [m] atomically-updated rows; they multiply the diameter by
      [m + 1] regardless of row width.  Queues are memory clusters
      whose cells form a data chain.
    - [GC] — general components: everything else; their diameter is
      assumed exponential in their register count (the paper's
      experiments do the same "for speed"). *)

type cls =
  | CC
  | AC
  | MC of int  (** rows *)
  | QC of int  (** depth *)
  | GC of int  (** registers *)

type component = {
  regs : int list;  (** member register variables *)
  cls : cls;
  deps : int list;  (** indices of components this one reads *)
}

type analysis = {
  components : component array;
      (** memory clustering may reorder components; consumers must
          follow [deps] rather than array order (see {!Compose}) *)
  of_reg : (int, int) Hashtbl.t;  (** register variable -> component index *)
  cell_key : (int, int) Hashtbl.t;
      (** memory/queue cell -> canonical select key, letting a bound
          computation count only the rows inside a target's cone *)
}

type counts = { cc : int; ac : int; table : int; gc : int }
(** Register population per class; [table] counts MC and QC cells
    ("table cells" in the paper's terminology). *)

val analyze : ?within:bool array -> Netlist.Net.t -> analysis
(** Classify the registers of [net], restricted to the vertices marked
    in [within] (default: the whole netlist). *)

val counts_of : analysis -> counts
val netlist_counts : Netlist.Net.t -> counts
(** Classification of all registers, as reported per design in
    Tables 1 and 2. *)

val pp_counts : Format.formatter -> counts -> unit
val constant_regs : Netlist.Net.t -> bool array -> (int, bool) Hashtbl.t
(** Ternary-fixpoint constant detection: register variable -> stuck
    value, for registers within the cone. *)
