(** The transformation-based verification driver: the paper's
    machinery assembled into a push-button prover.

    Strategies are attempted in cost order, each producing either a
    verdict or a recorded reason to move on:

    + a shallow BMC probe (cheap bug hunting);
    + the structural diameter bound on the original netlist
      (Definition 3 + [7]); if below the cutoff, a BMC run of that
      depth is a complete proof;
    + the bound after COM (Theorem 1) and after COM,RET,COM
      (Theorems 1 and 2), each translated back to the original;
    + for latch-based designs, the above are computed on the
      phase-abstracted netlist and translated through Theorem 3;
    + k-step target enlargement (Theorem 4) when the cone is small
      enough for BDDs;
    + the bounded-COI recurrence diameter [6];
    + temporal induction with uniqueness [5].

    Every completeness-threshold strategy discharges its final BMC run
    on the {e original} netlist, so counterexamples always replay
    there and proofs never depend on a transformation being trusted
    end-to-end. *)

type config = {
  cutoff : int;  (** a bound below this is considered BMC-dischargeable *)
  probe_depth : int;
  enlargement_k : int;
  enlargement_reg_limit : int;
  recurrence_limit : int;
  induction_max_k : int;
}

val default : config

type verdict =
  | Proved of { strategy : string; depth : int }
      (** complete: no hit at times [0 .. depth] *)
  | Violated of { strategy : string; cex : Bmc.cex }
  | Inconclusive of { attempts : (string * string) list }
      (** every strategy's reason for standing down *)

val verify : ?config:config -> Netlist.Net.t -> target:string -> verdict
(** @raise Invalid_argument on an unknown target name. *)

val pp_verdict : Format.formatter -> verdict -> unit
