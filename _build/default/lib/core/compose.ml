module Net = Netlist.Net
module Coi = Netlist.Coi

let factor cls =
  match cls with
  | Classify.CC | Classify.AC -> Sat_bound.of_int 1
  | Classify.MC rows | Classify.QC rows -> Sat_bound.of_int (rows + 1)
  | Classify.GC k -> Sat_bound.pow2 k

let effect cls d =
  match cls with
  | Classify.CC -> d
  | Classify.AC -> Sat_bound.add d 1
  | Classify.MC _ | Classify.QC _ | Classify.GC _ -> Sat_bound.mul d (factor cls)

let bound_for net analysis target =
  let comps = analysis.Classify.components in
  (* components whose state elements the target's sequential cone
     reaches, pruned at constant components (a stuck register shields
     whatever feeds it) *)
  let cone = Coi.combinational net [ target ] in
  let seq_cone = Coi.of_lits net [ target ] in
  (* refine factors by the cone: only the rows/cells a target can
     observe contribute (a shared analysis then agrees with a
     per-cone analysis) *)
  let refined c =
    let members =
      List.filter (fun v -> seq_cone.(v)) comps.(c).Classify.regs
    in
    match comps.(c).Classify.cls with
    | Classify.MC _ ->
      let keys =
        List.sort_uniq compare
          (List.filter_map
             (fun v -> Hashtbl.find_opt analysis.Classify.cell_key v)
             members)
      in
      Classify.MC (max 1 (List.length keys))
    | Classify.QC _ -> Classify.QC (max 1 (List.length members))
    | (Classify.CC | Classify.AC | Classify.GC _) as cls -> cls
  in
  let roots = ref [] in
  Net.iter_nodes net (fun v _ ->
      if cone.(v) then
        match Hashtbl.find_opt analysis.Classify.of_reg v with
        | Some c when not (List.mem c !roots) -> roots := c :: !roots
        | Some _ | None -> ());
  let in_cone = Hashtbl.create 16 in
  let rec reach c =
    if not (Hashtbl.mem in_cone c) then begin
      Hashtbl.replace in_cone c ();
      if comps.(c).Classify.cls <> Classify.CC then
        List.iter reach comps.(c).Classify.deps
    end
  in
  List.iter reach !roots;
  (* levelize over the restricted DAG; clustering can in principle
     create dependency cycles, in which case the affected components
     saturate (sound: the composition diverges) *)
  let level = Hashtbl.create 16 in
  let visiting = Hashtbl.create 16 in
  let cyclic = ref false in
  let rec level_of c =
    match Hashtbl.find_opt level c with
    | Some l -> l
    | None ->
      if Hashtbl.mem visiting c then begin
        cyclic := true;
        0
      end
      else begin
        Hashtbl.replace visiting c ();
        let deps =
          List.filter (fun d -> Hashtbl.mem in_cone d) comps.(c).Classify.deps
        in
        let l =
          if comps.(c).Classify.cls = Classify.CC then 0
          else 1 + List.fold_left (fun acc d -> max acc (level_of d)) 0 deps
        in
        Hashtbl.remove visiting c;
        Hashtbl.replace level c l;
        l
      end
  in
  Hashtbl.iter (fun c () -> ignore (level_of c)) in_cone;
  if !cyclic then Sat_bound.huge
  else begin
    let max_level = Hashtbl.fold (fun _ l acc -> max acc l) level 0 in
    (* per level: additive step if any acyclic component, then the
       product of the sequential factors *)
    let by_level = Array.make (max_level + 1) [] in
    Hashtbl.iter (fun c l -> by_level.(l) <- c :: by_level.(l)) level;
    let d = ref (Sat_bound.of_int 1) in
    for l = 1 to max_level do
      let has_ac =
        List.exists (fun c -> comps.(c).Classify.cls = Classify.AC) by_level.(l)
      in
      let g =
        List.fold_left
          (fun acc c -> Sat_bound.mul acc (factor (refined c)))
          (Sat_bound.of_int 1) by_level.(l)
      in
      if has_ac then d := Sat_bound.add !d 1;
      d := Sat_bound.mul !d g
    done;
    !d
  end
