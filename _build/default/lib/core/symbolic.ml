module Net = Netlist.Net
module Lit = Netlist.Lit
module Coi = Netlist.Coi

type result = {
  sequential_depth : int;
  reachable : float;
  earliest_hit : int option;
}

exception Too_big

let explore ?(reg_limit = 28) ?(node_limit = 200_000) net target =
  if Net.num_latches net > 0 then None
  else begin
    let cone = Transform.Rebuild.copy ~roots:[ target ] net in
    let target = Transform.Rebuild.map_lit cone target in
    let net = cone.Transform.Rebuild.net in
    let regs = Array.of_list (Net.regs net) in
    let n = Array.length regs in
    if n > reg_limit then None
    else begin
      let man = Bdd.man () in
      (* interleaved order: register i at var 2i, its primed copy at
         2i+1; inputs after *)
      let reg_pos = Hashtbl.create 16 in
      Array.iteri (fun i r -> Hashtbl.replace reg_pos r (2 * i)) regs;
      let next_input = ref (2 * n) in
      let input_vars = Hashtbl.create 16 in
      let memo = Hashtbl.create 256 in
      let rec fn v =
        match Hashtbl.find_opt memo v with
        | Some b -> b
        | None ->
          let b =
            match Net.node net v with
            | Net.Const -> Bdd.bfalse
            | Net.Reg _ -> Bdd.var man (Hashtbl.find reg_pos v)
            | Net.Input _ ->
              let bv =
                match Hashtbl.find_opt input_vars v with
                | Some bv -> bv
                | None ->
                  let bv = !next_input in
                  incr next_input;
                  Hashtbl.replace input_vars v bv;
                  bv
              in
              Bdd.var man bv
            | Net.And (a, b) -> Bdd.band man (fn_lit a) (fn_lit b)
            | Net.Latch _ -> assert false
          in
          Hashtbl.replace memo v b;
          b
      and fn_lit l =
        let b = fn (Lit.var l) in
        if Lit.is_neg l then Bdd.bnot man b else b
      in
      let guard b =
        if Bdd.node_count man > node_limit then raise Too_big;
        b
      in
      try
        let target_fn = fn_lit target in
        (* the input variable set is only known after the cones are
           built, so it is recomputed at each use *)
        let inputs () = Hashtbl.fold (fun _ bv acc -> bv :: acc) input_vars [] in
        let relation =
          Array.to_list regs
          |> List.fold_left
               (fun acc r ->
                 let f = fn_lit (Net.reg_of net r).Net.next in
                 let primed = Bdd.var man (Hashtbl.find reg_pos r + 1) in
                 guard (Bdd.band man acc (Bdd.biff man primed f)))
               Bdd.btrue
        in
        let hit_states = guard (Bdd.exists man (inputs ()) target_fn) in
        let unprimed = List.init n (fun i -> 2 * i) in
        let image s =
          let conj = guard (Bdd.band man s relation) in
          let primed_only = guard (Bdd.exists man (unprimed @ inputs ()) conj) in
          guard
            (Bdd.compose man
               (fun v ->
                 if v land 1 = 1 then Some (Bdd.var man (v - 1)) else None)
               primed_only)
        in
        let init =
          Array.fold_left
            (fun acc r ->
              let v = Bdd.var man (Hashtbl.find reg_pos r) in
              match (Net.reg_of net r).Net.r_init with
              | Net.Init0 -> Bdd.band man acc (Bdd.bnot man v)
              | Net.Init1 -> Bdd.band man acc v
              | Net.Init_x -> acc)
            Bdd.btrue regs
        in
        let rec bfs depth reached frontier earliest =
          let earliest =
            match earliest with
            | Some _ -> earliest
            | None ->
              if Bdd.is_false (Bdd.band man frontier hit_states) then None
              else Some depth
          in
          let fresh =
            guard (Bdd.band man (image frontier) (Bdd.bnot man reached))
          in
          if Bdd.is_false fresh then (depth, reached, earliest)
          else bfs (depth + 1) (Bdd.bor man reached fresh) fresh earliest
        in
        let depth, reached, earliest = bfs 0 init init None in
        Some
          {
            sequential_depth = depth;
            reachable =
              (* count over register variables only: inputs are
                 quantified and primed copies never appear in reached *)
              Bdd.sat_count man ~nvars:(2 * n) reached /. (2. ** float_of_int n);
            earliest_hit = earliest;
          }
      with Too_big -> None
    end
  end
