module Net = Netlist.Net
module Lit = Netlist.Lit

type config = {
  cutoff : int;
  probe_depth : int;
  enlargement_k : int;
  enlargement_reg_limit : int;
  recurrence_limit : int;
  induction_max_k : int;
}

let default =
  {
    cutoff = 50;
    probe_depth = 10;
    enlargement_k = 3;
    enlargement_reg_limit = 18;
    recurrence_limit = 48;
    induction_max_k = 16;
  }

type verdict =
  | Proved of { strategy : string; depth : int }
  | Violated of { strategy : string; cex : Bmc.cex }
  | Inconclusive of { attempts : (string * string) list }

let pp_verdict ppf = function
  | Proved { strategy; depth } ->
    Format.fprintf ppf "PROVED by %s (complete to depth %d)" strategy depth
  | Violated { strategy; cex } ->
    Format.fprintf ppf "VIOLATED at time %d (found by %s)" cex.Bmc.depth
      strategy
  | Inconclusive { attempts } ->
    Format.fprintf ppf "INCONCLUSIVE after %d strategies:"
      (List.length attempts);
    List.iter
      (fun (s, why) -> Format.fprintf ppf "@.  %s: %s" s why)
      attempts

exception Done of verdict

let verify ?(config = default) net ~target =
  if not (List.mem_assoc target (Net.targets net)) then
    invalid_arg ("Engine.verify: unknown target " ^ target);
  let attempts = ref [] in
  let stand_down strategy reason =
    attempts := (strategy, reason) :: !attempts
  in
  (* a finite translated bound below the cutoff closes the problem
     with one complete BMC run on the ORIGINAL netlist *)
  let discharge strategy bound =
    if Sat_bound.is_huge bound then
      stand_down strategy "no practically useful bound"
    else if bound >= config.cutoff then
      stand_down strategy
        (Printf.sprintf "bound %s above cutoff %d" (Sat_bound.to_string bound)
           config.cutoff)
    else begin
      match Bmc.check net ~target ~depth:(bound - 1) with
      | Bmc.No_hit d -> raise (Done (Proved { strategy; depth = d }))
      | Bmc.Hit cex -> raise (Done (Violated { strategy; cex }))
    end
  in
  let latch_based = Net.num_latches net > 0 in
  try
    (* 1. shallow probe *)
    (match Bmc.check net ~target ~depth:config.probe_depth with
    | Bmc.Hit cex -> raise (Done (Violated { strategy = "bmc-probe"; cex }))
    | Bmc.No_hit _ -> stand_down "bmc-probe" "no shallow counterexample");
    (* bounds are computed on the register-based view; for latch
       designs that is the phase abstraction, translated by Theorem 3 *)
    let reg_view, fold =
      if latch_based then begin
        let abstracted, translator = Pipeline.phase_front net in
        (abstracted, translator)
      end
      else (net, Translate.identity)
    in
    let fold_back b = fold.Translate.apply b in
    (* 2. structural bound, untransformed *)
    (match List.assoc_opt target (Net.targets reg_view) with
    | None -> stand_down "structural-bound" "target lost by phase abstraction"
    | Some l ->
      discharge "structural-bound" (fold_back (Bound.target reg_view l).Bound.bound));
    (* 3. COM (Theorem 1) *)
    let com_report = Pipeline.com reg_view in
    (match
       List.find_opt
         (fun t -> String.equal t.Pipeline.target target)
         com_report.Pipeline.targets
     with
    | Some t -> discharge "com+bound" (fold_back t.Pipeline.bound)
    | None -> stand_down "com+bound" "target reduced away");
    (* 4. COM,RET,COM (Theorems 1 + 2) *)
    let crc_report = Pipeline.com_ret_com reg_view in
    (match
       List.find_opt
         (fun t -> String.equal t.Pipeline.target target)
         crc_report.Pipeline.targets
     with
    | Some t -> discharge "com-ret-com+bound" (fold_back t.Pipeline.bound)
    | None -> stand_down "com-ret-com+bound" "target reduced away");
    (* 5. target enlargement (Theorem 4) — register view only, and the
       hittability bound is still a valid completeness threshold for
       this very target *)
    if latch_based then
      stand_down "enlargement+bound" "latch-based design"
    else begin
      match
        Transform.Enlarge.run ~reg_limit:config.enlargement_reg_limit net
          ~target ~k:config.enlargement_k
      with
      | None -> stand_down "enlargement+bound" "cone too large for BDDs"
      | Some r ->
        if r.Transform.Enlarge.empty then begin
          (* every hit, if any, occurs within the first k steps *)
          match Bmc.check net ~target ~depth:(config.enlargement_k - 1) with
          | Bmc.No_hit d ->
            raise (Done (Proved { strategy = "enlargement-empty"; depth = d }))
          | Bmc.Hit cex ->
            raise (Done (Violated { strategy = "enlargement-empty"; cex }))
        end
        else begin
          let name =
            Printf.sprintf "%s#enl%d" target config.enlargement_k
          in
          let b = Bound.target_named r.Transform.Enlarge.net name in
          discharge "enlargement+bound"
            ((Translate.target_enlargement ~k:config.enlargement_k)
               .Translate.apply b.Bound.bound)
        end
    end;
    (* 6. bounded-COI recurrence diameter *)
    (match List.assoc_opt target (Net.targets reg_view) with
    | None -> stand_down "recurrence-bcoi" "target lost by phase abstraction"
    | Some l ->
      let r =
        Recurrence.compute ~limit:config.recurrence_limit ~bounded_coi:true
          reg_view l
      in
      discharge "recurrence-bcoi" (fold_back r.Recurrence.bound));
    (* 7. temporal induction *)
    if latch_based then stand_down "k-induction" "latch-based design"
    else begin
      match Induction.prove ~max_k:config.induction_max_k net ~target with
      | Induction.Proved k ->
        raise (Done (Proved { strategy = "k-induction"; depth = k }))
      | Induction.Cex cex ->
        raise (Done (Violated { strategy = "k-induction"; cex }))
      | Induction.Unknown k ->
        stand_down "k-induction" (Printf.sprintf "gave up at k = %d" k)
    end;
    Inconclusive { attempts = List.rev !attempts }
  with Done v -> v
