(** Per-target structural diameter bounding: the overapproximation
    engine of [7] with the Definition-3 refinements described in the
    paper's introduction.

    Special cases applied before the compositional bound:
    - a target whose cone of influence contains no state element is
      combinational: diameter 1;
    - a target that is (an input, or) an XOR of a fresh primary input
      with anything is input-controlled: any valuation is producible
      at any time, so its diameter is 1 regardless of the rest of its
      cone (the paper's XOR example after Definition 3);
    - a target on a {e free register chain} — registers with
      nondeterministic initial values fed exclusively by further free
      state or a dedicated input — is trace-equivalent to a primary
      input and has diameter 1 (the paper's i0 -> r1 -> r2 example:
      d(r2) = 1 even though d(r1, r2) = 2). *)

type t = {
  bound : Sat_bound.t;
  analysis : Classify.analysis;  (** restricted to the target's cone *)
  coi_regs : int;  (** state elements in the cone *)
}

val target : Netlist.Net.t -> Netlist.Lit.t -> t
val target_named : Netlist.Net.t -> string -> t
(** @raise Invalid_argument on an unknown target name. *)

val all_targets : Netlist.Net.t -> (string * t) list
val input_controlled : Netlist.Net.t -> Netlist.Lit.t -> bool
