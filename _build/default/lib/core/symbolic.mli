(** Symbolic (BDD-based) forward reachability: exact sequential depth
    and hit times for mid-size cones.

    The {e sequential depth} (cf. Mneimneh & Sakallah [4], cited by the
    paper as an emerging exact technique) is the number of breadth-first
    image steps until the reachable-state fixpoint — exactly the
    maximum distance of any reachable state from the initial states,
    i.e. {!Exact.result.init_diameter} minus one.  Where the explicit
    oracle enumerates states one by one (≤ ~16 registers), the
    symbolic computation handles a few dozen registers when the BDDs
    stay small. *)

type result = {
  sequential_depth : int;
      (** BFS steps to the fixpoint; [sequential_depth + 1] is a sound
          and {e exact} BMC completeness threshold in the paper's
          convention *)
  reachable : float;  (** number of reachable states *)
  earliest_hit : int option;
}

val explore :
  ?reg_limit:int -> ?node_limit:int -> Netlist.Net.t -> Netlist.Lit.t -> result option
(** Restricted to the target's cone of influence.  [None] when the
    cone exceeds [reg_limit] (default 28) registers, the netlist has
    latches, or the BDDs outgrow [node_limit] (default 200000)
    nodes. *)
