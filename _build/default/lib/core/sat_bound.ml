type t = int

let huge = max_int / 4
let of_int n = if n >= huge then huge else n
let add a b = if a >= huge || b >= huge || a + b >= huge then huge else a + b

let mul a b =
  if a = 0 || b = 0 then 0
  else if a >= huge || b >= huge || a > huge / b then huge
  else a * b

let pow2 n = if n >= 60 then huge else of_int (1 lsl n)
let is_huge t = t >= huge
let pp ppf t = if is_huge t then Format.pp_print_string ppf "inf" else Format.pp_print_int ppf t
let to_string t = if is_huge t then "inf" else string_of_int t
