(** Saturating bound arithmetic.

    Diameter bounds of general components are assumed exponential in
    their register count (as in the paper's experiments), so raw
    integers overflow; all bound arithmetic saturates at {!huge},
    printed as "inf". *)

type t = int

val huge : t
(** The saturation point (far above any practically useful bound). *)

val of_int : int -> t
val add : t -> t -> t
val mul : t -> t -> t
val pow2 : int -> t
(** [2^n], saturating. *)

val is_huge : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
