module Net = Netlist.Net
module Lit = Netlist.Lit

type result = {
  reachable : int;
  init_diameter : int;
  pair_diameter : int;
  earliest_hit : int option;
}

let explore ?(max_regs = 16) ?(max_inputs = 10) ?(max_states = 65536) net
    target =
  if Net.num_latches net > 0 then None
  else begin
    (* restrict to the target's cone *)
    let cone = Transform.Rebuild.copy ~roots:[ target ] net in
    let net = cone.Transform.Rebuild.net in
    let target = Transform.Rebuild.map_lit cone target in
    let regs = Array.of_list (Net.regs net) in
    let inputs = Array.of_list (Net.inputs net) in
    let k = Array.length regs in
    let ni = Array.length inputs in
    if k > max_regs || ni > max_inputs then None
    else begin
      let n = Net.num_vars net in
      let reg_pos = Hashtbl.create 16 in
      Array.iteri (fun i r -> Hashtbl.replace reg_pos r i) regs;
      let input_pos = Hashtbl.create 16 in
      Array.iteri (fun i v -> Hashtbl.replace input_pos v i) inputs;
      let vals = Array.make n false in
      (* evaluate one step: returns (next state, target value) *)
      let step state input =
        Net.iter_nodes net (fun v node ->
            match node with
            | Net.Const -> vals.(v) <- false
            | Net.Input _ ->
              vals.(v) <- input land (1 lsl Hashtbl.find input_pos v) <> 0
            | Net.Reg _ ->
              vals.(v) <- state land (1 lsl Hashtbl.find reg_pos v) <> 0
            | Net.And (a, b) ->
              let value l =
                let x = vals.(Lit.var l) in
                if Lit.is_neg l then not x else x
              in
              vals.(v) <- value a && value b
            | Net.Latch _ -> assert false);
        let value l =
          let x = vals.(Lit.var l) in
          if Lit.is_neg l then not x else x
        in
        let next = ref 0 in
        Array.iteri
          (fun i r ->
            if value (Net.reg_of net r).Net.next then next := !next lor (1 lsl i))
          regs;
        (!next, value target)
      in
      (* initial states: expand the Init_x registers *)
      let x_regs =
        Array.to_list regs
        |> List.filter (fun r -> (Net.reg_of net r).Net.r_init = Net.Init_x)
      in
      let base_state =
        Array.to_list regs
        |> List.fold_left
             (fun acc r ->
               if (Net.reg_of net r).Net.r_init = Net.Init1 then
                 acc lor (1 lsl Hashtbl.find reg_pos r)
               else acc)
             0
      in
      let init_states =
        let rec expand acc = function
          | [] -> acc
          | r :: rest ->
            let bit = 1 lsl Hashtbl.find reg_pos r in
            expand
              (List.concat_map (fun s -> [ s; s lor bit ]) acc)
              rest
        in
        expand [ base_state ] x_regs
      in
      if List.length init_states > max_states then None
      else begin
        let n_inputs_combos = 1 lsl ni in
        (* BFS from a set of sources; returns distance table *)
        let bfs sources =
          let dist = Hashtbl.create 1024 in
          let queue = Queue.create () in
          List.iter
            (fun s ->
              if not (Hashtbl.mem dist s) then begin
                Hashtbl.replace dist s 0;
                Queue.add s queue
              end)
            sources;
          let overflow = ref false in
          while not (Queue.is_empty queue) do
            let s = Queue.pop queue in
            let d = Hashtbl.find dist s in
            for input = 0 to n_inputs_combos - 1 do
              let s', _ = step s input in
              if not (Hashtbl.mem dist s') then
                if Hashtbl.length dist >= max_states then overflow := true
                else begin
                  Hashtbl.replace dist s' (d + 1);
                  Queue.add s' queue
                end
            done
          done;
          if !overflow then None else Some dist
        in
        match bfs init_states with
        | None -> None
        | Some dist ->
          let reachable = Hashtbl.length dist in
          let init_diameter =
            1 + Hashtbl.fold (fun _ d acc -> max acc d) dist 0
          in
          (* earliest hit: minimum d over states with a hitting input *)
          let earliest_hit =
            Hashtbl.fold
              (fun s d acc ->
                let hit = ref false in
                for input = 0 to n_inputs_combos - 1 do
                  let _, t = step s input in
                  if t then hit := true
                done;
                if !hit then
                  match acc with
                  | Some best -> Some (min best d)
                  | None -> Some d
                else acc)
              dist None
          in
          (* pairwise diameter: BFS from every reachable state *)
          let pair_diameter =
            if reachable * reachable > 4_000_000 then init_diameter
            else
              Hashtbl.fold
                (fun s _ acc ->
                  match bfs [ s ] with
                  | None -> acc
                  | Some d ->
                    max acc (1 + Hashtbl.fold (fun _ x m -> max m x) d 0))
                dist init_diameter
          in
          Some { reachable; init_diameter; pair_diameter; earliest_hit }
      end
    end
  end
