(** Compositional diameter bound over the component partition ([7]).

    The components in the target's sequential cone of influence are
    levelized over the dependency DAG (a component's level is one more
    than the maximum level of the components it reads; constant
    components shield their upstream cones and are dropped).  The
    bound folds levels bottom-up from the combinational diameter 1:

    - acyclic components at a level add one time step, regardless of
      how many run in parallel (a pipeline stage of arbitrary width);
    - memory/queue components multiply by (rows + 1);
    - general components multiply by 2^registers (assumed exponential,
      as in the paper's experiments);
    - {b parallel} sequential components at the same level combine
      multiplicatively: the joint state space of independent machines
      is their product, and witnessing a joint valuation may require
      synchronizing them (e.g. two free-running rings of coprime
      lengths need up to lcm steps, which max-composition would
      unsoundly undercut).

    The per-level effect is [d' = (d + ac) * product(factors)]. *)

val effect : Classify.cls -> Sat_bound.t -> Sat_bound.t
(** The single-component effect (series composition). *)

val bound_for :
  Netlist.Net.t -> Classify.analysis -> Netlist.Lit.t -> Sat_bound.t
(** Diameter bound of a single vertex (target) by levelized
    composition of the components its sequential cone reaches. *)
