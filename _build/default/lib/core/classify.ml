module Net = Netlist.Net
module Lit = Netlist.Lit
module Sim = Netlist.Sim
module Coi = Netlist.Coi
module Scc = Netlist.Scc

type cls = CC | AC | MC of int | QC of int | GC of int

type component = { regs : int list; cls : cls; deps : int list }

type analysis = {
  components : component array;
  of_reg : (int, int) Hashtbl.t;
  cell_key : (int, int) Hashtbl.t;
}

type counts = { cc : int; ac : int; table : int; gc : int }

(* ---- ternary constant fixpoint ---- *)

let join a b =
  match (a, b) with
  | Sim.V0, Sim.V0 -> Sim.V0
  | Sim.V1, Sim.V1 -> Sim.V1
  | _, _ -> Sim.Vx

let init_value = function
  | Net.Init0 -> Sim.V0
  | Net.Init1 -> Sim.V1
  | Net.Init_x -> Sim.Vx

(* Evaluate the combinational logic with the given state-element values
   and all inputs unknown. *)
let eval_comb net within state =
  let n = Net.num_vars net in
  let vals = Array.make n Sim.Vx in
  let value_of l =
    let v = vals.(Lit.var l) in
    if Lit.is_neg l then Sim.v_not v else v
  in
  Net.iter_nodes net (fun v node ->
      if within.(v) then
        match node with
        | Net.Const -> vals.(v) <- Sim.V0
        | Net.Input _ -> vals.(v) <- Sim.Vx
        | Net.And (a, b) -> vals.(v) <- Sim.v_and (value_of a) (value_of b)
        | Net.Reg _ | Net.Latch _ -> vals.(v) <- state v);
  vals

let state_elems net within =
  List.filter (fun v -> within.(v)) (Net.regs net @ Net.latches net)

let data_edge net v =
  match Net.node net v with
  | Net.Reg r -> r.Net.next
  | Net.Latch l -> l.Net.l_data
  | Net.Const | Net.Input _ | Net.And _ -> invalid_arg "Classify.data_edge"

let init_of net v =
  match Net.node net v with
  | Net.Reg r -> r.Net.r_init
  | Net.Latch l -> l.Net.l_init
  | Net.Const | Net.Input _ | Net.And _ -> invalid_arg "Classify.init_of"

let constant_regs net within =
  let elems = state_elems net within in
  let state = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace state v (init_value (init_of net v))) elems;
  let lookup v = Option.value (Hashtbl.find_opt state v) ~default:Sim.Vx in
  let rec fixpoint budget =
    let vals = eval_comb net within lookup in
    let value_of l =
      let x = vals.(Lit.var l) in
      if Lit.is_neg l then Sim.v_not x else x
    in
    let changed = ref false in
    List.iter
      (fun v ->
        let next = value_of (data_edge net v) in
        let merged = join (lookup v) next in
        if merged <> lookup v then begin
          Hashtbl.replace state v merged;
          changed := true
        end)
      elems;
    if !changed && budget > 0 then fixpoint (budget - 1)
  in
  fixpoint (List.length elems + 2);
  let out = Hashtbl.create 16 in
  Hashtbl.iter
    (fun v value ->
      match value with
      | Sim.V0 -> Hashtbl.replace out v false
      | Sim.V1 -> Hashtbl.replace out v true
      | Sim.Vx -> ())
    state;
  out

(* ---- hold-mux (memory cell) detection ---- *)

(* Does [next] encode "sel ? data : r" (value held when not loaded),
   with neither [sel] nor [data] depending on [r] itself?  The
   self-independence requirement is what separates a memory row (new
   content comes from outside; m rows multiply the diameter by m+1)
   from a toggle-like cell (e.g. a counter bit, whose next state
   "loads" a function of itself and which may need exponentially many
   steps).  Returns the select literal on success. *)
let hold_mux net r next =
  let self = Lit.make r in
  let independent l =
    (* the combinational walk stops at state elements but marks them *)
    not (Coi.combinational net [ l ]).(r)
  in
  let as_and l =
    if Lit.is_neg l then None
    else
      match Net.node net (Lit.var l) with
      | Net.And (a, b) -> Some (a, b)
      | Net.Const | Net.Input _ | Net.Reg _ | Net.Latch _ -> None
  in
  (* next = r & y : hold (y=1) or load 0 (y=0) -> sel = ~y *)
  let and_form l =
    (* hold or load-0: the data branch is the constant false *)
    match as_and l with
    | Some (a, b) when Lit.equal a self && independent b ->
      Some (Lit.neg b, Lit.false_)
    | Some (a, b) when Lit.equal b self && independent a ->
      Some (Lit.neg a, Lit.false_)
    | Some _ | None -> None
  in
  match and_form next with
  | Some result -> Some result
  | None ->
    (* next = ~(p & q) = ~p | ~q; try the full mux decomposition
       (sel & data) | (~sel & r), i.e. p = ~(sel & data),
       q = ~(~sel & r) — and the or-form r | y = hold or load 1 *)
    if not (Lit.is_neg next) then None
    else (
      match as_and (Lit.neg next) with
      | None -> None
      | Some (p, q) ->
        (* or-form: next = ~p | ~q with ~q = r, i.e. hold unless ~p
           loads a 1 *)
        if Lit.equal (Lit.neg q) self && independent p then
          Some (Lit.neg p, Lit.true_)
        else if Lit.equal (Lit.neg p) self && independent q then
          Some (Lit.neg q, Lit.true_)
        else (
          match (as_and (Lit.neg p), as_and (Lit.neg q)) with
          | Some (a1, a2), Some (b1, b2) ->
            (* one conjunct is (sel & data), the other (~sel & r);
               rebuilds may flip which is which, so try both roles and
               both operand orders.  [s]/[data] come from the load
               conjunct, [s'] / [hold] from the hold conjunct. *)
            let branches =
              [
                (a1, a2, b1, b2); (a1, a2, b2, b1);
                (a2, a1, b1, b2); (a2, a1, b2, b1);
                (b1, b2, a1, a2); (b1, b2, a2, a1);
                (b2, b1, a1, a2); (b2, b1, a2, a1);
              ]
            in
            List.find_map
              (fun (s, data, s', hold) ->
                if
                  Lit.equal s (Lit.neg s')
                  && Lit.equal hold self && independent s && independent data
                then Some (s, data)
                else None)
              branches
          | (Some _ | None), (Some _ | None) -> None))

(* ---- analysis ---- *)

let analyze ?within net =
  let n = Net.num_vars net in
  let within =
    match within with Some w -> w | None -> Array.make n true
  in
  let elems = state_elems net within in
  let constants = constant_regs net within in
  (* register dependency graph over non-constant state elements *)
  let live = List.filter (fun v -> not (Hashtbl.mem constants v)) elems in
  let index = Hashtbl.create 64 in
  List.iteri (fun i v -> Hashtbl.replace index v i) live;
  let live_arr = Array.of_list live in
  let nlive = Array.length live_arr in
  let dep_sets =
    Array.map
      (fun v ->
        let cone = Coi.combinational net [ data_edge net v ] in
        List.filter_map
          (fun s ->
            if cone.(s) && within.(s) && Hashtbl.mem index s then
              Some (Hashtbl.find index s)
            else None)
          elems)
      live_arr
  in
  let scc = Scc.compute nlive (fun i -> dep_sets.(i)) in
  let self_dep i = List.mem i dep_sets.(i) in
  (* initial components in dependency order *)
  let base =
    Array.map
      (fun members ->
        let regs = Array.to_list (Array.map (fun i -> live_arr.(i)) members) in
        (Array.to_list members, regs))
      scc.Scc.members
  in
  (* classify *)
  let cell_select = Hashtbl.create 32 in
  let cell_data = Hashtbl.create 32 in
  let cls_of (members, regs) =
    match members with
    | [ i ] when not (self_dep i) -> AC
    | [ i ] -> (
      let v = live_arr.(i) in
      match hold_mux net v (data_edge net v) with
      | Some (sel, data) ->
        Hashtbl.replace cell_select v sel;
        Hashtbl.replace cell_data v data;
        MC 1
      | None -> GC 1)
    | _ -> GC (List.length regs)
  in
  let classified = Array.map (fun c -> (c, cls_of c)) base in
  (* cluster memory cells: queues = chains linked by direct data edges;
     memories = same select-cone support *)
  let is_cell v = Hashtbl.mem cell_select v in
  let direct_pred v =
    (* queue link: another cell inside the LOADED branch's cone (the
       select must not count: a memory gated by a queue is not part of
       the queue) *)
    let cone = Coi.combinational net [ Hashtbl.find cell_data v ] in
    List.filter
      (fun w -> w <> v && is_cell w && cone.(w))
      (state_elems net within)
  in
  let support_sig v =
    let sel = Hashtbl.find cell_select v in
    let cone = Coi.combinational net [ sel ] in
    let sources = ref [] in
    Net.iter_nodes net (fun s node ->
        if cone.(s) then
          match node with
          | Net.Input _ | Net.Reg _ | Net.Latch _ -> sources := s :: !sources
          | Net.Const | Net.And _ -> ());
    List.sort compare !sources
  in
  (* union-find over cells *)
  let parent = Hashtbl.create 32 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | Some p when p <> v ->
      let r = find p in
      Hashtbl.replace parent v r;
      r
    | _ -> v
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  let cells = List.filter is_cell (List.map (fun v -> v) live) in
  List.iter (fun v -> Hashtbl.replace parent v v) cells;
  (* queue chains *)
  let chain_links = Hashtbl.create 16 in
  List.iter
    (fun v ->
      match direct_pred v with
      | [ w ] ->
        union v w;
        Hashtbl.replace chain_links v w
      | [] | _ :: _ :: _ -> ())
    cells;
  (* memories: same select support (only among cells not in chains) *)
  let by_support = Hashtbl.create 16 in
  List.iter
    (fun v ->
      if not (Hashtbl.mem chain_links v) && direct_pred v = [] then begin
        let key = support_sig v in
        match Hashtbl.find_opt by_support key with
        | None -> Hashtbl.replace by_support key v
        | Some w -> union v w
      end)
    cells;
  (* assemble final components *)
  let cluster_members = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let r = find v in
      Hashtbl.replace cluster_members r
        (v :: Option.value (Hashtbl.find_opt cluster_members r) ~default:[]))
    cells;
  let comp_of_reg = Hashtbl.create 64 in
  let acc = ref [] in
  let n_comp = ref 0 in
  let push regs cls =
    let id = !n_comp in
    incr n_comp;
    List.iter (fun v -> Hashtbl.replace comp_of_reg v id) regs;
    acc := (regs, cls) :: !acc;
    id
  in
  (* constants first *)
  Hashtbl.iter (fun v _ -> ignore (push [ v ] CC)) constants;
  (* non-cell components in dependency order *)
  Array.iter
    (fun ((_, regs), cls) ->
      match regs with
      | [ v ] when is_cell v -> () (* emitted as clusters below *)
      | _ -> ignore (push regs cls))
    classified;
  (* cell clusters *)
  Hashtbl.iter
    (fun _root members ->
      let depth = List.length members in
      let has_chain = List.exists (fun v -> Hashtbl.mem chain_links v) members in
      if has_chain then ignore (push members (QC depth))
      else begin
        let selects =
          List.sort_uniq compare
            (List.map (fun v -> Lit.to_int (Hashtbl.find cell_select v)) members)
        in
        ignore (push members (MC (List.length selects)))
      end)
    cluster_members;
  let comps = Array.of_list (List.rev !acc) in
  (* dependency edges between final components *)
  let comp_deps =
    Array.mapi
      (fun id (regs, _) ->
        let deps = ref [] in
        List.iter
          (fun v ->
            let cone = Coi.combinational net [ data_edge net v ] in
            List.iter
              (fun s ->
                if cone.(s) then
                  match Hashtbl.find_opt comp_of_reg s with
                  | Some d when d <> id && not (List.mem d !deps) ->
                    deps := d :: !deps
                  | Some _ | None -> ())
              (state_elems net within))
          regs;
        !deps)
      comps
  in
  let components =
    Array.mapi
      (fun id (regs, cls) -> { regs; cls; deps = comp_deps.(id) })
      comps
  in
  let cell_key = Hashtbl.create 16 in
  Hashtbl.iter
    (fun v sel -> Hashtbl.replace cell_key v (Lit.to_int sel))
    cell_select;
  { components; of_reg = comp_of_reg; cell_key }

let counts_of analysis =
  Array.fold_left
    (fun acc c ->
      let n = List.length c.regs in
      match c.cls with
      | CC -> { acc with cc = acc.cc + n }
      | AC -> { acc with ac = acc.ac + n }
      | MC _ | QC _ -> { acc with table = acc.table + n }
      | GC _ -> { acc with gc = acc.gc + n })
    { cc = 0; ac = 0; table = 0; gc = 0 }
    analysis.components

let netlist_counts net = counts_of (analyze net)

let pp_counts ppf c =
  Format.fprintf ppf "%d;%d;%d;%d" c.cc c.ac c.table c.gc
