lib/core/compose.mli: Classify Netlist Sat_bound
