lib/core/recurrence.mli: Netlist Sat_bound
