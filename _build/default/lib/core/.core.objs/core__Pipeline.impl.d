lib/core/pipeline.ml: Bound Classify Format List Netlist Option Sat_bound Transform Translate
