lib/core/symbolic.ml: Array Bdd Hashtbl List Netlist Transform
