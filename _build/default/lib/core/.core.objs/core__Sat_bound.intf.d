lib/core/sat_bound.mli: Format
