lib/core/recurrence.ml: Array Encode Hashtbl List Netlist Queue Sat Sat_bound Transform
