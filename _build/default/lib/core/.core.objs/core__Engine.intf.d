lib/core/engine.mli: Bmc Format Netlist
