lib/core/core.ml: Bound Classify Compose Engine Exact Induction Pipeline Recurrence Sat_bound Symbolic Translate
