lib/core/compose.ml: Array Classify Hashtbl List Netlist Sat_bound
