lib/core/induction.mli: Bmc Netlist
