lib/core/engine.ml: Bmc Bound Format Induction List Netlist Pipeline Printf Recurrence Sat_bound String Transform Translate
