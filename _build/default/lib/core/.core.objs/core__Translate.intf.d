lib/core/translate.mli: Format Sat_bound
