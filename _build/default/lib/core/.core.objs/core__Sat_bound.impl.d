lib/core/sat_bound.ml: Format
