lib/core/bound.ml: Array Classify Compose List Netlist Sat_bound
