lib/core/classify.mli: Format Hashtbl Netlist
