lib/core/classify.ml: Array Format Hashtbl List Netlist Option
