lib/core/induction.ml: Array Bmc Encode List Netlist Sat
