lib/core/bound.mli: Classify Netlist Sat_bound
