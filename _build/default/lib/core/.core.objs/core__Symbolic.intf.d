lib/core/symbolic.mli: Netlist
