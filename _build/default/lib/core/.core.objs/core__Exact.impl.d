lib/core/exact.ml: Array Hashtbl List Netlist Queue Transform
