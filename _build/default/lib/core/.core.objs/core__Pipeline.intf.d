lib/core/pipeline.mli: Classify Format Netlist Sat_bound Translate
