lib/core/exact.mli: Netlist
