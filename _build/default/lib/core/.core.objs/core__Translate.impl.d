lib/core/translate.ml: Format Fun Printf Sat_bound
