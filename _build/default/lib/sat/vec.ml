type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let size v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

let push v x =
  if v.len = Array.length v.data then begin
    let data = Array.make (2 * v.len) v.dummy in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let last v =
  if v.len = 0 then invalid_arg "Vec.last";
  v.data.(v.len - 1)

let shrink v n =
  if n < 0 || n > v.len then invalid_arg "Vec.shrink";
  for i = n to v.len - 1 do
    v.data.(i) <- v.dummy
  done;
  v.len <- n

let clear v = shrink v 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.len - 1) []

let swap_remove v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.swap_remove";
  v.len <- v.len - 1;
  v.data.(i) <- v.data.(v.len);
  v.data.(v.len) <- v.dummy

let sort cmp v =
  let a = Array.sub v.data 0 v.len in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.len
