lib/sat/dimacs.ml: Cnf Format List Solver String
