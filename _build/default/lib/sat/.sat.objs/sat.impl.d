lib/sat/sat.ml: Cnf Dimacs Solver Vec
