lib/sat/vec.ml: Array
