lib/sat/cnf.ml: Array Format List Solver
