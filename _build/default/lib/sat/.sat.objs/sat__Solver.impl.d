lib/sat/solver.ml: Array Format List Vec
