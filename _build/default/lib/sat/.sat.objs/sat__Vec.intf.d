lib/sat/vec.mli:
