lib/sat/solver.mli: Format
