lib/sat/dimacs.mli: Cnf
