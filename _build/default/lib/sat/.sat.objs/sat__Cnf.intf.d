lib/sat/cnf.mli: Format Solver
