(** DIMACS CNF reader/writer. *)

val parse : string -> Cnf.t
(** Parse DIMACS text.  @raise Failure on malformed input. *)

val parse_file : string -> Cnf.t
val print : out_channel -> Cnf.t -> unit
