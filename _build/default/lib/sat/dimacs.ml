let parse text =
  let num_vars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let lines = String.split_on_char '\n' text in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> failwith ("Dimacs.parse: bad token " ^ tok)
    | Some 0 ->
      clauses := List.rev !current :: !clauses;
      current := []
    | Some i ->
      let v = abs i - 1 in
      if v >= !num_vars then num_vars := v + 1;
      let l = if i > 0 then Solver.pos v else Solver.neg_of v in
      current := l :: !current
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if String.length line > 0 && line.[0] <> 'c' then
        if line.[0] = 'p' then begin
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | [ "p"; "cnf"; nv; _nc ] -> num_vars := max !num_vars (int_of_string nv)
          | _ -> failwith "Dimacs.parse: bad problem line"
        end
        else
          String.split_on_char ' ' line
          |> List.filter (( <> ) "")
          |> List.iter handle_token)
    lines;
  if !current <> [] then failwith "Dimacs.parse: unterminated clause";
  { Cnf.num_vars = !num_vars; clauses = List.rev !clauses }

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text

let print oc t =
  let ppf = Format.formatter_of_out_channel oc in
  Cnf.pp ppf t;
  Format.pp_print_flush ppf ()
