type clause = Solver.lit list
type t = { num_vars : int; clauses : clause list }

let eval_clause assignment clause =
  List.exists
    (fun l ->
      let v = assignment.(Solver.var_of l) in
      if Solver.is_pos l then v else not v)
    clause

let eval assignment t = List.for_all (eval_clause assignment) t.clauses

let brute_force t =
  let n = t.num_vars in
  assert (n <= 24);
  let assignment = Array.make (max n 1) false in
  let rec go i =
    if i = n then if eval assignment t then Some (Array.copy assignment) else None
    else begin
      assignment.(i) <- false;
      match go (i + 1) with
      | Some m -> Some m
      | None ->
        assignment.(i) <- true;
        go (i + 1)
    end
  in
  go 0

let load solver t =
  while Solver.num_vars solver < t.num_vars do
    ignore (Solver.new_var solver)
  done;
  List.iter (Solver.add_clause solver) t.clauses

let pp ppf t =
  Format.fprintf ppf "p cnf %d %d@." t.num_vars (List.length t.clauses);
  List.iter
    (fun clause ->
      List.iter
        (fun l ->
          let v = Solver.var_of l + 1 in
          Format.fprintf ppf "%d " (if Solver.is_pos l then v else -v))
        clause;
      Format.fprintf ppf "0@.")
    t.clauses
