(** Plain clause-list CNF representation: reference semantics for the
    CDCL solver (used heavily by the property-based tests) and a
    convenient staging format. *)

type clause = Solver.lit list
type t = { num_vars : int; clauses : clause list }

val eval_clause : bool array -> clause -> bool
val eval : bool array -> t -> bool

val brute_force : t -> bool array option
(** Exhaustive-search satisfiability (exponential; for testing only,
    [num_vars] must be small). *)

val load : Solver.t -> t -> unit
(** Allocate variables [0 .. num_vars - 1] (on a fresh solver) and add
    all clauses. *)

val pp : Format.formatter -> t -> unit
