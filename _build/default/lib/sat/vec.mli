(** Growable arrays (OCaml 5.1 has no [Dynarray]). *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
val size : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
(** Remove and return the last element.  @raise Invalid_argument if empty. *)

val last : 'a t -> 'a
val shrink : 'a t -> int -> unit
(** [shrink v n] truncates to the first [n] elements. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val swap_remove : 'a t -> int -> unit
(** Remove index [i] by swapping in the last element (O(1), order not
    preserved). *)

val sort : ('a -> 'a -> int) -> 'a t -> unit
