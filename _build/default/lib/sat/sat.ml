(** Satisfiability substrate: a from-scratch CDCL solver, clause-list
    CNF staging, and DIMACS I/O. *)

module Vec = Vec
module Solver = Solver
module Cnf = Cnf
module Dimacs = Dimacs
