(** A CDCL satisfiability solver built from scratch.

    Features: two-watched-literal propagation, first-UIP conflict-clause
    learning with basic minimization, VSIDS variable activities with
    phase saving, Luby restarts, activity-driven learnt-clause deletion,
    and incremental solving under assumptions.

    Literals are integers: variable [v] gives positive literal [2 * v]
    and negative literal [2 * v + 1]. *)

type t

type lit = int

val pos : int -> lit
(** Positive literal of a variable. *)

val neg_of : int -> lit
(** Negative literal of a variable. *)

val negate : lit -> lit
val var_of : lit -> int
val is_pos : lit -> bool

type result = Sat | Unsat

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable, returning its index. *)

val num_vars : t -> int

val add_clause : t -> lit list -> unit
(** Add a problem clause.  Tautologies are dropped; duplicate literals
    are removed; the empty clause makes the instance permanently
    unsatisfiable.  Only legal at decision level 0 (i.e. between
    [solve] calls). *)

val solve : ?assumptions:lit list -> t -> result
(** Solve the current clause set under the given assumptions.  The
    solver is reusable: more clauses and variables may be added after a
    call, and [solve] may be called again. *)

val value : t -> lit -> bool
(** Value of a literal in the model found by the last [solve].  Only
    meaningful after [solve] returned [Sat]; unassigned variables
    (eliminated by simplification) read as their saved phase. *)

val model : t -> bool array
(** Model by variable index. *)

(** Statistics from the lifetime of the solver. *)

val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int
val pp_stats : Format.formatter -> t -> unit
