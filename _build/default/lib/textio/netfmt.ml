module Net = Netlist.Net
module Lit = Netlist.Lit

(* Line formats:
     dnet <phases>
     i <var> <name>          input
     a <var> <lit> <lit>     and
     r <var> <init> <nextlit> <name>   register (init in 0/1/x)
     l <var> <init> <phase> <datalit> <name>   latch
     o <lit> <name>          output
     t <lit> <name>          target
   Literals are the packed integer encoding. *)

let init_char = function
  | Net.Init0 -> '0'
  | Net.Init1 -> '1'
  | Net.Init_x -> 'x'

let init_of_string = function
  | "0" -> Net.Init0
  | "1" -> Net.Init1
  | "x" -> Net.Init_x
  | s -> failwith ("Netfmt: bad init " ^ s)

let to_string net =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "dnet %d\n" (Net.phases net));
  Net.iter_nodes net (fun v node ->
      match node with
      | Net.Const -> ()
      | Net.Input s -> Buffer.add_string buf (Printf.sprintf "i %d %s\n" v s)
      | Net.And (a, b) ->
        Buffer.add_string buf
          (Printf.sprintf "a %d %d %d\n" v (Lit.to_int a) (Lit.to_int b))
      | Net.Reg r ->
        Buffer.add_string buf
          (Printf.sprintf "r %d %c %d %s\n" v (init_char r.Net.r_init)
             (Lit.to_int r.Net.next) r.Net.r_name)
      | Net.Latch l ->
        Buffer.add_string buf
          (Printf.sprintf "l %d %c %d %d %s\n" v (init_char l.Net.l_init)
             l.Net.l_phase (Lit.to_int l.Net.l_data) l.Net.l_name));
  List.iter
    (fun (name, l) ->
      Buffer.add_string buf (Printf.sprintf "o %d %s\n" (Lit.to_int l) name))
    (Net.outputs net);
  List.iter
    (fun (name, l) ->
      Buffer.add_string buf (Printf.sprintf "t %d %s\n" (Lit.to_int l) name))
    (Net.targets net);
  Buffer.contents buf

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let net, rest =
    match lines with
    | first :: rest -> (
      match String.split_on_char ' ' first with
      | [ "dnet"; p ] -> (Net.create ~phases:(int_of_string p) (), rest)
      | _ -> failwith "Netfmt: missing dnet header")
    | [] -> failwith "Netfmt: empty input"
  in
  (* next-state edges may reference later vertices: set them in a second
     pass *)
  let pending = ref [] in
  let expect_var v actual =
    if v <> actual then failwith "Netfmt: vertex numbering mismatch"
  in
  List.iter
    (fun line ->
      match String.split_on_char ' ' line with
      | "i" :: v :: name ->
        expect_var (int_of_string v)
          (Lit.var (Net.add_input net (String.concat " " name)))
      | [ "a"; v; a; b ] ->
        (* reconstruct through the strash: identical structure yields
           identical numbering because the source was strashed *)
        expect_var (int_of_string v)
          (Lit.var
             (Net.add_and net
                (Lit.of_int (int_of_string a))
                (Lit.of_int (int_of_string b))))
      | "r" :: v :: init :: next :: name ->
        let r =
          Net.add_reg net ~init:(init_of_string init) (String.concat " " name)
        in
        expect_var (int_of_string v) (Lit.var r);
        pending := `Reg (r, int_of_string next) :: !pending
      | "l" :: v :: init :: phase :: data :: name ->
        let l =
          Net.add_latch net ~init:(init_of_string init)
            ~phase:(int_of_string phase) (String.concat " " name)
        in
        expect_var (int_of_string v) (Lit.var l);
        pending := `Latch (l, int_of_string data) :: !pending
      | "o" :: l :: name ->
        Net.add_output net (String.concat " " name) (Lit.of_int (int_of_string l))
      | "t" :: l :: name ->
        Net.add_target net (String.concat " " name) (Lit.of_int (int_of_string l))
      | _ -> failwith ("Netfmt: bad line: " ^ line))
    rest;
  List.iter
    (function
      | `Reg (r, next) -> Net.set_next net r (Lit.of_int next)
      | `Latch (l, data) -> Net.set_latch_data net l (Lit.of_int data))
    !pending;
  net

let write_file path net =
  let oc = open_out path in
  output_string oc (to_string net);
  close_out oc

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text
