lib/textio/bench_io.ml: Array Buffer Fun Hashtbl List Netlist Printf String
