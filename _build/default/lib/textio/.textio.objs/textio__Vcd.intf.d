lib/textio/vcd.mli: Netlist
