lib/textio/netfmt.mli: Netlist
