lib/textio/aiger.mli: Netlist
