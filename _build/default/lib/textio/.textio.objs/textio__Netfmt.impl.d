lib/textio/netfmt.ml: Buffer List Netlist Printf String
