lib/textio/vcd.ml: Array Buffer Char Hashtbl List Netlist Printf String
