lib/textio/aiger.ml: Array Buffer Hashtbl List Netlist Option Printf String
