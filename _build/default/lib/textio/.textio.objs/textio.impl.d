lib/textio/textio.ml: Aiger Bench_io Netfmt Vcd
