lib/textio/bench_io.mli: Netlist
