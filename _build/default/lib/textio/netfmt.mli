(** Native netlist dump: one line per vertex, loss-free (preserves
    vertex numbering, initial values, phases, outputs and targets).
    Useful for exact round-trip tests and debugging. *)

val to_string : Netlist.Net.t -> string
val of_string : string -> Netlist.Net.t
(** @raise Failure on malformed input. *)

val write_file : string -> Netlist.Net.t -> unit
val read_file : string -> Netlist.Net.t
