module Net = Netlist.Net
module Lit = Netlist.Lit
module Sim = Netlist.Sim

(* compact VCD identifier codes: printable ASCII 33..126 *)
let code k =
  let base = 94 in
  let rec go k acc =
    let c = Char.chr (33 + (k mod base)) in
    let acc = acc ^ String.make 1 c in
    if k < base then acc else go ((k / base) - 1) acc
  in
  go k ""

let char_of = function Sim.V0 -> '0' | Sim.V1 -> '1' | Sim.Vx -> 'x'

let dump ?(design = "diambound") net frames =
  let buf = Buffer.create 4096 in
  (* watched signals: every named vertex *)
  let watched = ref [] in
  Net.iter_nodes net (fun v node ->
      match node with
      | Net.Input name -> watched := (v, name) :: !watched
      | Net.Reg r -> watched := (v, r.Net.r_name) :: !watched
      | Net.Latch l -> watched := (v, l.Net.l_name) :: !watched
      | Net.Const | Net.And _ -> ());
  List.iter
    (fun (name, l) -> watched := (Lit.var l, name ^ "$out") :: !watched)
    (Net.outputs net);
  let watched = List.rev !watched in
  Buffer.add_string buf "$date reproducible $end\n";
  Buffer.add_string buf "$version diambound $end\n";
  Buffer.add_string buf "$timescale 1ns $end\n";
  Buffer.add_string buf (Printf.sprintf "$scope module %s $end\n" design);
  List.iteri
    (fun k (_, name) ->
      Buffer.add_string buf (Printf.sprintf "$var wire 1 %s %s $end\n" (code k) name))
    watched;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let previous = Hashtbl.create 64 in
  Array.iteri
    (fun t frame ->
      Buffer.add_string buf (Printf.sprintf "#%d\n" t);
      if t = 0 then Buffer.add_string buf "$dumpvars\n";
      List.iteri
        (fun k (v, _) ->
          let value = if v < Array.length frame then frame.(v) else Sim.Vx in
          let changed =
            match Hashtbl.find_opt previous k with
            | Some old -> old <> value
            | None -> true
          in
          if changed then begin
            Hashtbl.replace previous k value;
            Buffer.add_string buf
              (Printf.sprintf "%c%s\n" (char_of value) (code k))
          end)
        watched;
      if t = 0 then Buffer.add_string buf "$end\n")
    frames;
  Buffer.contents buf

let write_file ?design path net frames =
  let oc = open_out path in
  output_string oc (dump ?design net frames);
  close_out oc
