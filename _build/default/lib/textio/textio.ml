(** Textual netlist interchange: ISCAS89 [.bench] and a native dump. *)

module Bench_io = Bench_io
module Netfmt = Netfmt
module Aiger = Aiger
module Vcd = Vcd
