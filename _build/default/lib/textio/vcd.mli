(** Value-change-dump (VCD) writer for waveform viewers.

    Dumps the named signals of a netlist (inputs, state elements and
    outputs) from a frame matrix as produced by simulation or
    counterexample replay ([frames.(t).(v)] is vertex [v]'s
    three-valued value at time [t]; X renders as ['x']). *)

val dump :
  ?design:string -> Netlist.Net.t -> Netlist.Sim.value array array -> string

val write_file :
  ?design:string ->
  string ->
  Netlist.Net.t ->
  Netlist.Sim.value array array ->
  unit
