type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state 0x9e3779b97f4a7c15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int n))

let bool t = Int64.logand (next t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty"
  | l -> List.nth l (int t (List.length l))
