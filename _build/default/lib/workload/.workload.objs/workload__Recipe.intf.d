lib/workload/recipe.mli: Netlist
