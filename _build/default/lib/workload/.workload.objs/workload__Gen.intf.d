lib/workload/gen.mli: Netlist Rng
