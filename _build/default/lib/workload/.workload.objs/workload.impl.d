lib/workload/workload.ml: Gen Gp Iscas Recipe Rng
