lib/workload/gen.ml: Array List Netlist Printf Rng
