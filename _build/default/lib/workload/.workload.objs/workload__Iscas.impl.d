lib/workload/iscas.ml: List Recipe String
