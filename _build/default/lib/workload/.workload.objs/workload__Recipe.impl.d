lib/workload/recipe.ml: Gen Hashtbl List Netlist Printf Rng
