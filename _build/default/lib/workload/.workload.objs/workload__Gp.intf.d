lib/workload/gp.mli: Netlist Recipe
