lib/workload/gp.ml: Array List Netlist Printf Recipe String
