lib/workload/rng.ml: Int64 List
