lib/workload/iscas.mli: Netlist Recipe
