lib/workload/rng.mli:
