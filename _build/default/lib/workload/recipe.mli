(** Shared design assembler for the ISCAS89-like and GP-like benchmark
    families.

    A profile gives the register population per class and the paper's
    three per-pipeline |T'| counts; the assembler deterministically
    composes blocks so that:
    - [t_small] targets read only cheap cones (pipelines, memories,
      queues, small counters): bounded below the cutoff already on the
      original netlist;
    - [t_com - t_small] targets are additionally gated by a counter
      enabled through {!Gen.com_guard}: bounded only after COM;
    - [t_ret - t_com] targets are gated through {!Gen.ret_guard}:
      bounded only after COM,RET,COM;
    - the remaining targets read a large general component and stay
      beyond any practical bound. *)

type profile = {
  name : string;
  cc : int;  (** stuck registers (GP designs) *)
  ac : int;
  table : int;
  gc : int;
  targets : int;
  t_small : int;  (** paper |T'| on the original netlist *)
  t_com : int;  (** paper |T'| after COM *)
  t_ret : int;  (** paper |T'| after COM,RET,COM *)
}

val build : profile -> Netlist.Net.t
