module Net = Netlist.Net
module Lit = Netlist.Lit

let mk name cc ac table gc targets t_small t_com t_ret =
  {
    Recipe.name;
    cc;
    ac;
    table;
    gc;
    targets;
    t_small;
    t_com;
    t_ret;
  }

(* One row per Table-2 design ("Original Netlist" column of the
   phase-abstracted netlists; the latchified design has twice the
   state elements until phase abstraction folds it back). *)
let profiles =
  [
    mk "CP_RAS" 0 279 66 315 2 0 0 0;
    mk "CLB_CNTL" 0 29 2 19 2 0 0 0;
    mk "CR_RAS" 0 96 6 329 1 0 0 0;
    mk "D_DASA" 0 16 81 18 2 1 2 2;
    mk "D_DCLA" 0 382 1 754 2 0 0 0;
    mk "D_DUDD" 0 30 28 71 22 4 4 7;
    mk "I_IBBQn" 0 623 1488 0 15 15 15 15;
    mk "I_IFAR" 0 303 11 99 2 0 0 0;
    mk "I_IFPF" 11 893 44 598 1 0 0 0;
    mk "L3_SNP1" 25 529 39 82 5 0 0 1;
    mk "L_EMQn" 5 146 6 66 1 0 1 1;
    mk "L_EXEC" 12 421 0 102 2 0 0 0;
    mk "L_FLUSHn" 6 198 0 4 7 7 7 7;
    mk "L_INTRo" 14 143 12 5 30 30 30 30;
    mk "L_LMQ0" 28 690 4 133 16 0 0 0;
    mk "L_LRU" 0 142 20 75 12 0 12 12;
    mk "L_PFQ0" 14 1936 17 84 67 1 1 1;
    mk "L_PNTRn" 3 228 10 11 31 23 23 23;
    mk "L_PRQn" 34 366 106 265 10 10 10 10;
    mk "L_SLB" 3 135 6 27 3 2 2 2;
    mk "L_TBWKn" 0 202 117 14 21 0 1 1;
    mk "M_CIU" 0 343 10 424 6 0 0 6;
    mk "SIDECAR4" 3 109 32 455 1 0 0 0;
    mk "S_SCU1" 1 232 4 136 3 0 0 2;
    mk "V_CACH" 5 94 15 59 1 0 0 1;
    mk "V_DIR" 6 91 13 68 2 0 0 2;
    mk "V_SNPM" 65 846 134 376 2 1 2 2;
    mk "W_GAR" 0 159 0 83 7 1 1 1;
    mk "W_SFA" 0 22 0 42 8 0 0 0;
  ]

(* Master/slave expansion: register -> phase-0 latch sampling the
   next-state cone, phase-1 latch sampling the master; consumers read
   the slave.  At even times the master samples d(t); at odd times the
   slave publishes it, so the slave at time 2T+1 equals the register
   at time T+1 and phase abstraction (keeping phase 1) recovers the
   register design exactly. *)
let latchify ?(phases = 2) original =
  if phases < 2 then invalid_arg "Gp.latchify: phases must be >= 2";
  let n = Net.num_vars original in
  let fresh = Net.create ~phases () in
  let map : Lit.t option array = Array.make n None in
  let pending = ref [] in
  let rec build v =
    match map.(v) with
    | Some l -> l
    | None ->
      let nl =
        match Net.node original v with
        | Net.Const -> Lit.false_
        | Net.Input name -> Net.add_input fresh name
        | Net.And (a, b) -> Net.add_and fresh (blit a) (blit b)
        | Net.Latch _ -> invalid_arg "Gp.latchify: already latch-based"
        | Net.Reg r ->
          (* a chain of [phases] latches: the phase-0 master samples
             the next-state cone, each later phase samples its
             predecessor, consumers read the final phase *)
          let master =
            Net.add_latch fresh ~init:r.Net.r_init ~phase:0
              (r.Net.r_name ^ "_p0")
          in
          let last = ref master in
          for p = 1 to phases - 1 do
            let stage =
              Net.add_latch fresh ~init:r.Net.r_init ~phase:p
                (Printf.sprintf "%s_p%d" r.Net.r_name p)
            in
            Net.set_latch_data fresh stage !last;
            last := stage
          done;
          map.(v) <- Some !last;
          pending := (master, r.Net.next) :: !pending;
          !last
      in
      map.(v) <- Some nl;
      nl
  and blit l = Lit.xor_sign (build (Lit.var l)) (Lit.is_neg l) in
  List.iter
    (fun (name, l) -> Net.add_target fresh name (blit l))
    (Net.targets original);
  List.iter
    (fun (name, l) -> Net.add_output fresh name (blit l))
    (Net.outputs original);
  (* keep unreferenced state (e.g. the stuck CC registers) so the
     latchified design's population matches the register design *)
  List.iter (fun v -> ignore (build v)) (Net.regs original);
  let rec drain () =
    match !pending with
    | [] -> ()
    | (master, next) :: rest ->
      pending := rest;
      Net.set_latch_data fresh master (blit next);
      drain ()
  in
  drain ();
  fresh

let build p = latchify (Recipe.build p)

let by_name name =
  match List.find_opt (fun p -> String.equal p.Recipe.name name) profiles with
  | Some p -> build p
  | None -> raise Not_found

let names = List.map (fun p -> p.Recipe.name) profiles
