(** Building-block circuit generators.  Each generator builds into a
    caller-supplied netlist and returns the literals a caller needs to
    observe or connect, so whole designs compose from blocks.

    Naming: every block takes a [name] prefix; generated vertex names
    are ["<name>_<role><i>"]. *)

type block = {
  out : Netlist.Lit.t;  (** a representative observable output *)
  regs : Netlist.Lit.t list;  (** the block's state elements *)
}

val pipeline :
  Netlist.Net.t -> name:string -> stages:int -> data:Netlist.Lit.t -> block
(** [stages] acyclic registers in series behind [data]; classified AC,
    fully removable by retiming when [data] is input-fed. *)

val counter : Netlist.Net.t -> name:string -> bits:int -> enable:Netlist.Lit.t -> block
(** Mod-2^bits binary counter with enable; a GC whose exact diameter
    (paper convention) is 2^bits.  [out] is the all-ones detector. *)

val ring : Netlist.Net.t -> name:string -> length:int -> block
(** One-hot ring counter (token rotates each step): a GC of [length]
    registers with true diameter [length]. *)

val lfsr : Netlist.Net.t -> name:string -> bits:int -> block
(** Galois LFSR (taps from a fixed table): a dense GC. *)

val fsm :
  Netlist.Net.t -> Rng.t -> name:string -> bits:int ->
  inputs:Netlist.Lit.t list -> block
(** Random Moore machine over [bits] binary-encoded state registers
    with input-dependent transition logic: the generic GC. *)

val memory :
  Netlist.Net.t -> name:string -> rows:int -> width:int ->
  addr:Netlist.Lit.t list -> data:Netlist.Lit.t list ->
  write:Netlist.Lit.t -> block
(** Addressable memory: [rows] rows of hold-mux cells with one-hot
    decoded write selects; classified MC with [rows] rows.  [out] is a
    read-back of row 0's first bit xored across rows. *)

val queue :
  Netlist.Net.t -> name:string -> depth:int -> width:int ->
  push:Netlist.Lit.t -> data:Netlist.Lit.t list -> block
(** Shift queue with conditional advance: hold-mux cells chained by
    data edges; classified QC of [depth] rows. *)

val com_guard :
  Netlist.Net.t -> Rng.t -> inputs:Netlist.Lit.t list -> Netlist.Lit.t
(** A semantically-false guard that only SAT sweeping discovers: two
    differently-associated computations of the same function, combined
    as [f & ~f'].  A counter enabled by it is a GC blocking its
    targets until COM constant-folds the guard and the counter
    freezes. *)

val ret_guard :
  Netlist.Net.t -> name:string -> x:Netlist.Lit.t -> y:Netlist.Lit.t ->
  Netlist.Lit.t
(** A semantically-false guard that only retiming normalizes: the XOR
    of two pipelines computing the same function with registers at
    different positions.  Combinational sweeping cannot match them
    across the register cut, but retiming peels both onto one shared
    chain and the XOR collapses structurally — the COM,RET,COM-only
    win of Section 4. *)

val obscured_chain :
  Netlist.Net.t -> name:string ->
  sel:(Netlist.Lit.t * Netlist.Lit.t * Netlist.Lit.t) ->
  data:Netlist.Lit.t -> len:int -> block
(** A chain of hold-mux cells whose selects are computed twice with
    different gate associations, hiding the mux pattern: classified as
    a chain of GC(1) components (arrival 2^len) before COM, and as a
    QC of [len] rows (arrival len + 1) after — the paper's observation
    that transformations impact table identification. *)

val pick_distinct : Rng.t -> Netlist.Lit.t list -> int -> Netlist.Lit.t list
(** [k] distinct literals from the pool (order unspecified).
    @raise Invalid_argument when the pool has fewer than [k] distinct
    members. *)
