module Net = Netlist.Net
module Lit = Netlist.Lit

type profile = {
  name : string;
  cc : int;
  ac : int;
  table : int;
  gc : int;
  targets : int;
  t_small : int;
  t_com : int;
  t_ret : int;
}

let build p =
  let rng = Rng.create (Hashtbl.hash p.name) in
  let net = Net.create () in
  let inputs =
    List.init 12 (fun i -> Net.add_input net (Printf.sprintf "in%d" i))
  in
  let input () = Rng.pick rng inputs in
  (* a fresh combinational function per call: XOR over a distinct
     non-singleton input subset.  Distinct subsets give structurally
     distinct strashed cones, so pipelines fed by them never collapse
     under redundancy removal (a realistic netlist does not duplicate
     whole pipelines). *)
  let subset_mask = ref 2 in
  let fresh_signal () =
    let rec next_mask m =
      let m = m + 1 in
      let rec popcount x = if x = 0 then 0 else (x land 1) + popcount (x lsr 1) in
      if popcount m >= 2 then m else next_mask m
    in
    subset_mask := next_mask !subset_mask;
    let mask = !subset_mask in
    List.fold_left
      (fun (i, acc) l ->
        (i + 1, if mask land (1 lsl i) <> 0 then Net.add_xor net acc l else acc))
      (0, Lit.false_) inputs
    |> snd
  in
  let small_pool = ref [] in
  let big_pool = ref [] in
  (* stuck registers (classified CC), observed so they survive the
     latchification and phase abstraction of the GP flow *)
  let cc_outs = ref [] in
  for i = 0 to p.cc - 1 do
    let r =
      Net.add_reg net
        ~init:(if i mod 2 = 0 then Net.Init0 else Net.Init1)
        (Printf.sprintf "cc%d" i)
    in
    (* self-loop form: materializes as a stuck register across
       master/slave expansion and phase abstraction *)
    Net.set_next net r r;
    cc_outs := r :: !cc_outs
  done;
  (* the RET-only wins: counters frozen once retiming normalizes the
     guard pipelines (6 AC + 6 GC registers each) *)
  let ret_wins = max 0 (p.t_ret - p.t_com) in
  let ret_gadgets = if ret_wins > 0 then 1 + ((ret_wins - 1) / 12) else 0 in
  let ac_budget = ref (max 0 (p.ac - (6 * ret_gadgets))) in
  let gc_budget = ref (max 0 (p.gc - (6 * ret_gadgets))) in
  let ret_outs =
    List.init ret_gadgets (fun i ->
        let x, y =
          match Gen.pick_distinct rng inputs 2 with
          | [ x; y ] -> (x, y)
          | _ -> assert false
        in
        let guard =
          Gen.ret_guard net ~name:(Printf.sprintf "rg%d" i) ~x ~y
        in
        (* negated so the frozen all-zero counter leaves a live cone *)
        Lit.neg
          (Gen.counter net ~name:(Printf.sprintf "rc%d" i) ~bits:6
             ~enable:guard)
            .Gen.out)
  in
  (* the COM-only wins: counters frozen once SAT sweeping folds the
     guard (6 GC registers each) *)
  let com_wins = max 0 (p.t_com - p.t_small) in
  let com_gadgets = if com_wins > 0 then 1 + ((com_wins - 1) / 12) else 0 in
  gc_budget := max 0 (!gc_budget - (6 * com_gadgets));
  let com_outs =
    List.init com_gadgets (fun i ->
        if i mod 2 = 0 then begin
          let guard = Gen.com_guard net rng ~inputs in
          `Counter
            (Lit.neg
               (Gen.counter net
                  ~name:(Printf.sprintf "kc%d" i)
                  ~bits:6 ~enable:guard)
                 .Gen.out)
        end
        else begin
          (* chained obscured cells: GC (arrival 2^6) until sweeping
             re-exposes the hold-mux, then a QC of 6 rows *)
          let sel =
            match Gen.pick_distinct rng inputs 3 with
            | [ a; b; c ] -> (a, b, c)
            | _ -> assert false
          in
          `Chain
            (Gen.obscured_chain net
               ~name:(Printf.sprintf "ko%d" i)
               ~sel ~data:(input ()) ~len:6)
              .Gen.out
        end)
  in
  (* general components; one large chunk if some targets must stay
     beyond the cutoff *)
  let blocked = max 0 (p.targets - max p.t_ret (max p.t_com p.t_small)) in
  let gc_index = ref 0 in
  if blocked > 0 then begin
    let bits = max 7 (min 12 !gc_budget) in
    gc_budget := max 0 (!gc_budget - bits);
    let b =
      Gen.fsm net rng ~name:(Printf.sprintf "gbig%d" !gc_index) ~bits ~inputs
    in
    incr gc_index;
    big_pool := b.Gen.out :: !big_pool
  end;
  while !gc_budget > 0 do
    let remaining = !gc_budget in
    let name = Printf.sprintf "g%d" !gc_index in
    incr gc_index;
    if remaining >= 9 && Rng.int rng 3 = 0 then begin
      (* another large chunk *)
      let bits = min remaining (9 + Rng.int rng 8) in
      gc_budget := remaining - bits;
      let b = Gen.fsm net rng ~name ~bits ~inputs in
      big_pool := b.Gen.out :: !big_pool
    end
    else begin
      let bits = min remaining (2 + Rng.int rng 4) in
      gc_budget := remaining - bits;
      let b =
        match Rng.int rng 3 with
        | 0 -> Gen.counter net ~name ~bits ~enable:(input ())
        | 1 -> Gen.ring net ~name ~length:(max bits 2)
        | _ -> Gen.lfsr net ~name ~bits
      in
      small_pool := b.Gen.out :: !small_pool
    end
  done;
  (* pipelines (AC); kept in their own pool — combining two arbitrary
     sequential blocks in one cone multiplies their factors under the
     levelized composition, whereas pipelines only add steps *)
  let pipe_pool = ref [] in
  let pipe_obs = ref [] in
  let pipe_index = ref 0 in
  while !ac_budget > 0 do
    let stages = min !ac_budget (2 + Rng.int rng 7) in
    let b =
      Gen.pipeline net
        ~name:(Printf.sprintf "pl%d" !pipe_index)
        ~stages ~data:(fresh_signal ())
    in
    incr pipe_index;
    ac_budget := !ac_budget - stages;
    pipe_pool := b.Gen.out :: !pipe_pool;
    (* a third of the pipelines are observed conjoined with an
       exact-time signal: that reconvergence pins the combining gate's
       peel at zero, so retiming cannot eliminate those registers —
       as in real designs, where not every pipeline hangs off a
       retimable boundary *)
    let obs =
      if Rng.int rng 3 = 0 then Net.add_and net b.Gen.out (input ())
      else b.Gen.out
    in
    pipe_obs := obs :: !pipe_obs
  done;
  (* memories and queues (MC/QC cells) *)
  let tab_budget = ref p.table in
  let tab_index = ref 0 in
  while !tab_budget > 0 do
    let b =
      if Rng.bool rng && !tab_budget >= 8 then begin
        let rows = 4 in
        let width = min 2 (max 1 (!tab_budget / rows)) in
        tab_budget := !tab_budget - (rows * width);
        match Gen.pick_distinct rng inputs 5 with
        | [ a0; a1; d0; d1; w ] ->
          Gen.memory net
            ~name:(Printf.sprintf "mem%d" !tab_index)
            ~rows ~width ~addr:[ a0; a1 ] ~data:[ d0; d1 ] ~write:w
        | _ -> assert false
      end
      else begin
        let depth = min !tab_budget (3 + Rng.int rng 4) in
        tab_budget := !tab_budget - depth;
        match Gen.pick_distinct rng inputs 2 with
        | [ push; d ] ->
          Gen.queue net
            ~name:(Printf.sprintf "q%d" !tab_index)
            ~depth ~width:1 ~push ~data:[ d ]
        | _ -> assert false
      end
    in
    incr tab_index;
    small_pool := b.Gen.out :: !small_pool
  done;
  (* keep every block alive through the COI-restricting pipelines *)
  let com_gate_lits =
    List.map (function `Counter l -> l | `Chain l -> l) com_outs
  in
  List.iteri
    (fun i l -> Net.add_output net (Printf.sprintf "obs%d" i) l)
    (!pipe_obs @ !small_pool @ !big_pool @ com_gate_lits @ ret_outs
    @ !cc_outs);
  if !small_pool = [] then
    small_pool := (if !pipe_pool <> [] then !pipe_pool else [ input () ]);
  if !big_pool = [] then big_pool := [ Lit.neg (input ()) ];
  let pick_small () = Rng.pick rng !small_pool in
  (* targets *)
  let add_target i l =
    let name = Printf.sprintf "po%d" i in
    Net.add_target net name l;
    Net.add_output net name l
  in
  let idx = ref 0 in
  let next_index () =
    let i = !idx in
    incr idx;
    i
  in
  (* small targets read a single content block: under the levelized
     composition every additional sequential block in a cone
     multiplies the factors, so realistic "cheap" properties observe
     one structure *)
  for _ = 1 to p.t_small do
    add_target (next_index ()) (pick_small ())
  done;
  (* gated targets: the gate literal is chosen so that after its win
     the cone stays live (counter gates are pre-negated) *)
  for j = 1 to com_wins do
    match List.nth com_outs (j mod List.length com_outs) with
    | `Counter gate ->
      add_target (next_index ()) (Net.add_and net gate (pick_small ()))
    | `Chain gate -> add_target (next_index ()) gate
  done;
  for j = 1 to ret_wins do
    let gate = List.nth ret_outs (j mod List.length ret_outs) in
    add_target (next_index ()) (Net.add_and net gate (pick_small ()))
  done;
  (* blocked targets avoid the small pool entirely: a zero-peel gate
     in a conjunction would (faithfully) pin the pipelines' registers
     in place under retiming *)
  for _ = 1 to blocked do
    let gate = Rng.pick rng !big_pool in
    let companion = Rng.pick rng !big_pool in
    add_target (next_index ()) (Net.add_or net gate companion)
  done;
  net
