type profile = Recipe.profile = {
  name : string;
  cc : int;
  ac : int;
  table : int;
  gc : int;
  targets : int;
  t_small : int;
  t_com : int;
  t_ret : int;
}

(* One row per Table-1 design: register populations and target counts
   follow the paper's "Original Netlist" column; t_small/t_com/t_ret
   are the paper's three |T'| counts, which the assembler realizes
   with honest COM-/RET-sensitive structures.  (S38584_1's post-RET
   |T'| decrease, 133 -> 110, is not reproducible with our tight
   Theorem-2 accounting and is kept at the COM level; see
   EXPERIMENTS.md.) *)
let mk name ac table gc targets t_small t_com t_ret =
  { name; cc = 0; ac; table; gc; targets; t_small; t_com; t_ret }

let profiles =
  [
    mk "PROLOG" 107 1 28 73 14 16 24;
    mk "S1196" 18 0 0 14 14 14 14;
    mk "S1238" 18 0 0 14 14 14 14;
    mk "S1269" 9 17 11 10 2 2 2;
    mk "S13207_1" 314 128 196 152 49 49 79;
    mk "S1423" 3 16 55 5 1 1 1;
    mk "S1488" 0 0 6 19 19 19 19;
    mk "S1494" 0 0 6 19 19 19 19;
    mk "S1512" 0 1 56 21 0 0 0;
    mk "S15850_1" 99 124 311 150 115 115 115;
    mk "S208_1" 0 0 8 1 0 0 0;
    mk "S27" 1 2 0 1 1 1 1;
    mk "S298" 0 1 13 6 0 0 0;
    mk "S3271" 6 0 110 14 1 1 1;
    mk "S3330" 103 1 28 73 16 16 33;
    mk "S3384" 111 0 72 26 6 6 6;
    mk "S344" 0 4 11 11 3 3 3;
    mk "S349" 0 4 11 11 3 3 3;
    mk "S35932" 0 0 1728 320 0 0 0;
    mk "S382" 6 0 15 6 0 0 0;
    mk "S38584_1" 47 4 1375 304 56 133 133;
    mk "S386" 0 0 6 7 7 7 7;
    mk "S400" 6 0 15 6 0 0 0;
    mk "S420_1" 0 0 16 1 0 0 0;
    mk "S444" 6 0 15 6 0 0 0;
    mk "S4863" 62 0 42 16 0 0 0;
    mk "S499" 0 0 22 22 0 0 0;
    mk "S510" 0 0 6 7 7 7 7;
    mk "S526N" 0 1 20 6 0 0 0;
    mk "S5378" 115 0 64 49 4 4 7;
    mk "S635" 0 0 32 1 0 0 0;
    mk "S641" 7 0 12 24 3 3 7;
    mk "S6669" 181 0 58 55 37 37 37;
    mk "S713" 7 0 12 23 3 3 7;
    mk "S820" 0 0 5 19 19 19 19;
    mk "S832" 0 0 5 19 19 19 19;
    mk "S838_1" 0 0 32 1 0 0 0;
    mk "S9234_1" 45 9 157 39 22 22 22;
    mk "S938" 0 0 32 1 0 0 0;
    mk "S953" 23 0 6 23 3 3 23;
    mk "S967" 23 0 6 23 3 3 23;
    mk "S991" 0 0 19 17 17 17 17;
  ]

let build = Recipe.build

let by_name name =
  match List.find_opt (fun p -> String.equal p.name name) profiles with
  | Some p -> build p
  | None -> raise Not_found

let names = List.map (fun p -> p.name) profiles
