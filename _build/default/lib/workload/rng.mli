(** Deterministic splitmix64 generator: workloads must be reproducible
    across runs and platforms, so no [Random.self_init]. *)

type t

val create : int -> t
val int : t -> int -> int
(** [int t n] in [0, n). *)

val bool : t -> bool
val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on the empty list. *)
