(** ISCAS89-like benchmark family (Table 1 substitution).

    The real ISCAS89 netlists are not redistributable in this sealed
    environment, so each design name maps to a deterministic synthetic
    circuit whose register population (acyclic / table / general) and
    target count mirror the paper's per-design "Original Netlist" row;
    see {!Recipe} for how the per-pipeline |T'| counts are realized
    with honest COM-/RET-sensitive structures. *)

type profile = Recipe.profile = {
  name : string;
  cc : int;
  ac : int;
  table : int;
  gc : int;
  targets : int;
  t_small : int;
  t_com : int;
  t_ret : int;
}

val profiles : profile list
(** The 42 designs of Table 1, in the paper's order. *)

val build : profile -> Netlist.Net.t

val by_name : string -> Netlist.Net.t
(** @raise Not_found for unknown design names. *)

val names : string list
