(** GP-like benchmark family (Table 2 substitution): two-phase
    level-sensitive latch designs in the style of the IBM Gigahertz
    Processor units the paper evaluates.

    Each design is assembled by the shared {!Recipe} and then
    converted to a two-phase latch implementation ({!latchify}): every
    register becomes a master (phase 0) / slave (phase 1) latch pair,
    which is exactly the structure phase abstraction folds back.  The
    class populations mirror Table 2's "Original Netlist" column
    (high acyclic and table fractions, as the paper notes is intuitive
    for highly-pipelined gigahertz designs). *)

val profiles : Recipe.profile list
(** The 29 designs of Table 2, in the paper's order. *)

val latchify : ?phases:int -> Netlist.Net.t -> Netlist.Net.t
(** Master/slave expansion (default [phases = 2]): every register
    becomes a chain of [phases] level-sensitive latches, one per
    clock phase, folded back by {!Transform.Phase} with factor
    [phases].  @raise Invalid_argument for [phases < 2]. *)

val build : Recipe.profile -> Netlist.Net.t
(** [latchify (Recipe.build profile)]. *)

val by_name : string -> Netlist.Net.t
(** @raise Not_found for unknown design names. *)

val names : string list
