module Net = Netlist.Net
module Lit = Netlist.Lit

type block = { out : Lit.t; regs : Lit.t list }

(* pick [k] distinct literals (the gadgets degenerate structurally if
   their operands coincide: the strash merges both associations at
   build time and the guard folds before any transformation runs) *)
let pick_distinct rng inputs k =
  let rec go acc n budget =
    if n = 0 || budget = 0 then acc
    else
      let l = Rng.pick rng inputs in
      if List.exists (Netlist.Lit.equal l) acc then go acc n (budget - 1)
      else go (l :: acc) (n - 1) budget
  in
  let picked = go [] k 1000 in
  if List.length picked < k then invalid_arg "Gen.pick_distinct: pool too small"
  else picked

let pipeline net ~name ~stages ~data =
  let rec go i prev acc =
    if i = stages then (prev, List.rev acc)
    else begin
      let r = Net.add_reg net (Printf.sprintf "%s_p%d" name i) in
      Net.set_next net r prev;
      go (i + 1) r (r :: acc)
    end
  in
  let out, regs = go 0 data [] in
  { out; regs }

let counter net ~name ~bits ~enable =
  let regs =
    List.init bits (fun i -> Net.add_reg net (Printf.sprintf "%s_c%d" name i))
  in
  (* increment when enabled: bit i toggles when all lower bits are 1 *)
  let rec wire i carry =
    match List.nth_opt regs i with
    | None -> carry
    | Some r ->
      let toggle = Net.add_and net carry enable in
      Net.set_next net r (Net.add_xor net r toggle);
      wire (i + 1) (Net.add_and net carry r)
  in
  let all_ones = wire 0 Lit.true_ in
  { out = all_ones; regs }

let ring net ~name ~length =
  let regs =
    List.init length (fun i ->
        Net.add_reg net
          ~init:(if i = 0 then Net.Init1 else Net.Init0)
          (Printf.sprintf "%s_r%d" name i))
  in
  List.iteri
    (fun i r ->
      let prev = List.nth regs ((i + length - 1) mod length) in
      Net.set_next net r prev)
    regs;
  { out = List.nth regs (length - 1); regs }

(* primitive polynomial tap masks per width (good-enough selection) *)
let lfsr_taps = [| 0b11; 0b110; 0b1100; 0b10100; 0b110000; 0b1100000 |]

let lfsr net ~name ~bits =
  let bits = max bits 2 in
  let regs =
    List.init bits (fun i ->
        Net.add_reg net
          ~init:(if i = 0 then Net.Init1 else Net.Init0)
          (Printf.sprintf "%s_l%d" name i))
  in
  (* always tap the top bit: the update is then a permutation of the
     state space, so the nonzero states form a single closed orbit *)
  let taps =
    lfsr_taps.((bits - 2) mod Array.length lfsr_taps) lor (1 lsl (bits - 1))
  in
  let feedback =
    List.fold_left
      (fun acc (i, r) -> if taps land (1 lsl i) <> 0 then Net.add_xor net acc r else acc)
      Lit.false_
      (List.mapi (fun i r -> (i, r)) regs)
  in
  List.iteri
    (fun i r ->
      if i = 0 then Net.set_next net r feedback
      else Net.set_next net r (List.nth regs (i - 1)))
    regs;
  { out = List.nth regs (bits - 1); regs }

let fsm net rng ~name ~bits ~inputs =
  let regs =
    List.init bits (fun i -> Net.add_reg net (Printf.sprintf "%s_s%d" name i))
  in
  let pool = regs @ inputs in
  (* a two-literal AND over distinct variables is never constant, so
     no transition cone degenerates under strashing or sweeping *)
  let safe_and () =
    match pick_distinct rng pool 2 with
    | [ a; b ] ->
      let a = if Rng.bool rng then Lit.neg a else a in
      let b = if Rng.bool rng then Lit.neg b else b in
      Net.add_and net a b
    | _ -> assert false
  in
  List.iteri
    (fun i r ->
      (* ring through the neighbour keeps the component one SCC *)
      let neighbour = List.nth regs ((i + 1) mod bits) in
      Net.set_next net r (Net.add_xor net (safe_and ()) neighbour))
    regs;
  let out =
    match regs with
    | r0 :: r1 :: _ -> Net.add_xor net r0 (Net.add_and net r1 (safe_and ()))
    | [ r0 ] -> r0
    | [] -> invalid_arg "Gen.fsm: bits must be positive"
  in
  { out; regs }

let decode net ~name addr row =
  List.fold_left
    (fun (i, acc) a ->
      let bit = if row land (1 lsl i) <> 0 then a else Lit.neg a in
      (i + 1, Net.add_and net acc bit))
    (0, Lit.true_) addr
  |> snd
  |> fun sel ->
  ignore name;
  sel

let memory net ~name ~rows ~width ~addr ~data ~write =
  let cells = ref [] in
  let reads = ref [] in
  for row = 0 to rows - 1 do
    let sel = Net.add_and net (decode net ~name addr row) write in
    for bit = 0 to width - 1 do
      let r = Net.add_reg net (Printf.sprintf "%s_m%d_%d" name row bit) in
      let d = List.nth data (bit mod List.length data) in
      Net.set_next net r (Net.add_mux net ~sel ~t1:d ~t0:r);
      cells := r :: !cells;
      if bit = 0 then reads := r :: !reads
    done
  done;
  let out = List.fold_left (Net.add_xor net) Lit.false_ !reads in
  { out; regs = List.rev !cells }

let queue net ~name ~depth ~width ~push ~data =
  let cells = ref [] in
  let heads = ref [] in
  for bit = 0 to width - 1 do
    let d0 = List.nth data (bit mod List.length data) in
    let rec go i prev =
      if i < depth then begin
        let r = Net.add_reg net (Printf.sprintf "%s_q%d_%d" name i bit) in
        Net.set_next net r (Net.add_mux net ~sel:push ~t1:prev ~t0:r);
        cells := r :: !cells;
        if i = depth - 1 then heads := r :: !heads;
        go (i + 1) r
      end
    in
    go 0 d0
  done;
  let out = List.fold_left (Net.add_xor net) Lit.false_ !heads in
  { out; regs = List.rev !cells }

let com_guard net rng ~inputs =
  let a, b, c =
    match pick_distinct rng inputs 3 with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  (* (a & b) & c vs a & (b & c): structurally distinct, semantically
     equal; their conjunction with the complement is constant false *)
  let left = Net.add_and net (Net.add_and net a b) c in
  let right = Net.add_and net a (Net.add_and net b c) in
  Net.add_and net left (Lit.neg right)

let ret_guard net ~name ~x ~y =
  (* pipeline 1: registers after the gate *)
  let p1 =
    (pipeline net ~name:(name ^ "_g1") ~stages:2 ~data:(Net.add_and net x y)).out
  in
  (* pipeline 2: registers before the gate *)
  let px = (pipeline net ~name:(name ^ "_g2x") ~stages:2 ~data:x).out in
  let py = (pipeline net ~name:(name ^ "_g2y") ~stages:2 ~data:y).out in
  let p2 = Net.add_and net px py in
  Net.add_xor net p1 p2

let obscured_chain net ~name ~sel:(a, b, c) ~data ~len =
  let sel1 = Net.add_and net (Net.add_and net a b) c in
  let sel2 = Net.add_and net a (Net.add_and net b c) in
  let cells = ref [] in
  let rec go i prev =
    if i = len then prev
    else begin
      let r = Net.add_reg net (Printf.sprintf "%s_oc%d" name i) in
      (* (sel1 & prev) | (~sel2 & r): a mux only once sel1 = sel2 *)
      let load = Net.add_and net sel1 prev in
      let hold = Net.add_and net (Lit.neg sel2) r in
      Net.set_next net r (Net.add_or net load hold);
      cells := r :: !cells;
      go (i + 1) r
    end
  in
  let out = go 0 data in
  { out; regs = List.rev !cells }
