(** Netlist kernel: literals, AIG-style netlists, cones of influence,
    and three-valued / bit-parallel simulation. *)

module Lit = Lit
module Net = Net
module Coi = Coi
module Sim = Sim
module Bsim = Bsim
module Scc = Scc
