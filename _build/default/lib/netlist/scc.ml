type t = { component : int array; members : int array array }

(* Iterative Tarjan: explicit stack of (vertex, next successor index). *)
let compute n successors =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let component = Array.make n (-1) in
  let components = ref [] in
  let ncomp = ref 0 in
  let succs = Array.init n (fun v -> Array.of_list (successors v)) in
  let visit root =
    if index.(root) < 0 then begin
      let call = ref [ (root, ref 0) ] in
      index.(root) <- !counter;
      lowlink.(root) <- !counter;
      incr counter;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while !call <> [] do
        match !call with
        | [] -> ()
        | (v, cursor) :: rest ->
          if !cursor < Array.length succs.(v) then begin
            let w = succs.(v).(!cursor) in
            incr cursor;
            if index.(w) < 0 then begin
              index.(w) <- !counter;
              lowlink.(w) <- !counter;
              incr counter;
              stack := w :: !stack;
              on_stack.(w) <- true;
              call := (w, ref 0) :: !call
            end
            else if on_stack.(w) then
              lowlink.(v) <- min lowlink.(v) index.(w)
          end
          else begin
            if lowlink.(v) = index.(v) then begin
              (* v is a component root: pop the stack down to v *)
              let id = !ncomp in
              incr ncomp;
              let members = ref [] in
              let rec pop () =
                match !stack with
                | [] -> assert false
                | w :: tail ->
                  stack := tail;
                  on_stack.(w) <- false;
                  component.(w) <- id;
                  members := w :: !members;
                  if w <> v then pop ()
              in
              pop ();
              components := Array.of_list !members :: !components
            end;
            call := rest;
            (match rest with
            | (parent, _) :: _ ->
              lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
            | [] -> ())
          end
      done
    end
  in
  for v = 0 to n - 1 do
    visit v
  done;
  let members = Array.of_list (List.rev !components) in
  { component; members }

let is_cyclic t ~self_loop v =
  Array.length t.members.(t.component.(v)) > 1 || self_loop v
