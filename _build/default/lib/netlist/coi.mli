(** Cone-of-influence computation.

    The (sequential) cone of influence of a vertex set is the least set
    of vertices containing it and closed under fanin edges, including
    the next-state edges of registers and the data edges of latches. *)

val of_lits : Net.t -> Lit.t list -> bool array
(** [of_lits t roots] marks every vertex in the sequential cone of
    influence of [roots]. *)

val combinational : Net.t -> Lit.t list -> bool array
(** Like {!of_lits} but stopping at state elements: their next-state
    cones are not entered.  Inputs, ANDs and the state elements feeding
    the roots combinationally are marked. *)

val regs_in : Net.t -> bool array -> int list
(** Register variables marked in a cone, in creation order. *)

val latches_in : Net.t -> bool array -> int list
val size : bool array -> int
