lib/netlist/coi.mli: Lit Net
