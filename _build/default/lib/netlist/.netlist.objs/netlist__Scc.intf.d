lib/netlist/scc.mli:
