lib/netlist/scc.ml: Array List
