lib/netlist/bsim.mli: Lit Net
