lib/netlist/bsim.ml: Array Int64 List Lit Net Random
