lib/netlist/coi.ml: Array List Lit Net
