lib/netlist/sim.mli: Format Lit Net
