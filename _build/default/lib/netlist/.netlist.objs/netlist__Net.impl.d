lib/netlist/net.ml: Array Format Hashtbl List Lit
