lib/netlist/lit.ml: Format Int
