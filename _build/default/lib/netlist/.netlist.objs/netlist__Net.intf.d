lib/netlist/net.mli: Format Lit
