lib/netlist/sim.ml: Array Format Hashtbl List Lit Net Option
