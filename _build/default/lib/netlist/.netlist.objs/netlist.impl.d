lib/netlist/netlist.ml: Bsim Coi Lit Net Scc Sim
