lib/netlist/lit.mli: Format
