type t = int

let make v =
  assert (v >= 0);
  v * 2

let make_neg v =
  assert (v >= 0);
  (v * 2) + 1

let of_var v ~sign = if sign then make_neg v else make v
let var l = l lsr 1
let is_neg l = l land 1 = 1
let neg l = l lxor 1
let xor_sign l s = if s then neg l else l
let abs l = l land lnot 1
let false_ = 0
let true_ = 1
let is_const l = l < 2
let to_int l = l

let of_int i =
  assert (i >= 0);
  i

let compare = Int.compare
let equal = Int.equal
let hash l = l

let pp ppf l =
  if l = false_ then Format.fprintf ppf "0"
  else if l = true_ then Format.fprintf ppf "1"
  else Format.fprintf ppf "%s%d" (if is_neg l then "~" else "") (var l)
