type state = {
  net : Net.t;
  vals : int64 array;
  held : int64 array;
  rng : Random.State.t;
  mutable now : int;
}

let create ~seed net =
  let n = Net.num_vars net in
  let rng = Random.State.make [| seed; 0x5eed |] in
  let held = Array.make n 0L in
  Net.iter_nodes net (fun v node ->
      let init_word = function
        | Net.Init0 -> 0L
        | Net.Init1 -> -1L
        | Net.Init_x -> Random.State.int64 rng Int64.max_int
      in
      match node with
      | Net.Reg r -> held.(v) <- init_word r.Net.r_init
      | Net.Latch l -> held.(v) <- init_word l.Net.l_init
      | Net.Const | Net.Input _ | Net.And _ -> ());
  { net; vals = Array.make n 0L; held; rng; now = 0 }

let net s = s.net
let time s = s.now

let lit_word vals l =
  let w = vals.(Lit.var l) in
  if Lit.is_neg l then Int64.lognot w else w

let word s l = lit_word s.vals l

let sweep s phase input_words =
  let changed = ref false in
  let set v x =
    if not (Int64.equal s.vals.(v) x) then begin
      s.vals.(v) <- x;
      changed := true
    end
  in
  Net.iter_nodes s.net (fun v node ->
      match node with
      | Net.Const -> set v 0L
      | Net.Input _ -> set v input_words.(v)
      | Net.And (a, b) ->
        set v (Int64.logand (lit_word s.vals a) (lit_word s.vals b))
      | Net.Reg _ -> set v s.held.(v)
      | Net.Latch l ->
        if l.Net.l_phase = phase then set v (lit_word s.vals l.Net.l_data)
        else set v s.held.(v));
  !changed

let step_random s =
  let n = Net.num_vars s.net in
  let input_words = Array.make n 0L in
  List.iter
    (fun v ->
      input_words.(v) <-
        Int64.logxor
          (Random.State.int64 s.rng Int64.max_int)
          (Int64.shift_left (Random.State.int64 s.rng Int64.max_int) 1))
    (Net.inputs s.net);
  let phase = s.now mod Net.phases s.net in
  let rec settle budget =
    if sweep s phase input_words then
      if budget = 0 then failwith "Bsim.step_random: latch cycle"
      else settle (budget - 1)
  in
  settle (Net.num_vars s.net + 2);
  Net.iter_nodes s.net (fun v node ->
      match node with
      | Net.Reg r -> s.held.(v) <- lit_word s.vals r.Net.next
      | Net.Latch _ -> s.held.(v) <- s.vals.(v)
      | Net.Const | Net.Input _ | Net.And _ -> ());
  s.now <- s.now + 1

(* Signature combining: must satisfy sig(~v) = lognot (sig v) so that
   candidate detection can consider complemented merges.  We fold each
   step's word with a self-inverse-under-complement mix: rotating by a
   per-step amount and xoring preserves the complement relation only if
   the number of xored terms per lane is odd-symmetric; instead we keep
   it exact by construction: sig = word_0 rotl 1 xor word_1 rotl 2 ...
   complementing every word complements the xor of an odd count, so we
   use an odd number of steps (enforced by rounding [steps] up). *)
let signatures ~seed ~steps net =
  let steps = if steps mod 2 = 0 then steps + 1 else steps in
  let s = create ~seed net in
  let n = Net.num_vars net in
  let sigs = Array.make n 0L in
  for i = 1 to steps do
    step_random s;
    let r = 1 + (i mod 62) in
    for v = 0 to n - 1 do
      let w = s.vals.(v) in
      let rotated =
        Int64.logor (Int64.shift_left w r) (Int64.shift_right_logical w (64 - r))
      in
      sigs.(v) <- Int64.logxor sigs.(v) rotated
    done
  done;
  sigs

let canonical_signature s =
  let c = Int64.lognot s in
  if Int64.unsigned_compare s c <= 0 then (s, false) else (c, true)
