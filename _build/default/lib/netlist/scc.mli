(** Strongly connected components (iterative Tarjan), generic over an
    adjacency function.  Used for sequential-loop detection (retiming)
    and for the component partition of the diameter bounding engine. *)

type t = {
  component : int array;  (** vertex -> component id *)
  members : int array array;
      (** component id -> member vertices.  Tarjan emits a component
          only after every component reachable from it (through the
          [successors] relation), so component ids increase from sinks
          toward sources of that relation.  In particular, with
          [successors = fanins], iterating components in id order
          processes dependencies before dependents. *)
}

val compute : int -> (int -> int list) -> t
(** [compute n successors] decomposes the graph on vertices
    [0 .. n-1]. *)

val is_cyclic : t -> self_loop:(int -> bool) -> int -> bool
(** [is_cyclic scc ~self_loop v]: [v] lies on some cycle — its
    component has at least two members, or it has a self-loop. *)
