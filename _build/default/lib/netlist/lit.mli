(** Literals: a netlist vertex (variable) together with an optional
    negation, packed into a single integer as [2 * var + sign].

    Variable 0 is reserved for the constant-false vertex, so
    [false_ = 0] and [true_ = 1] are valid literals in every netlist. *)

type t = private int

val make : int -> t
(** [make v] is the positive literal of variable [v].  [v] must be
    non-negative. *)

val make_neg : int -> t
(** [make_neg v] is the negated literal of variable [v]. *)

val of_var : int -> sign:bool -> t
(** [of_var v ~sign] is [v] negated iff [sign] is [true]. *)

val var : t -> int
(** Variable index of a literal. *)

val is_neg : t -> bool
(** [true] iff the literal is negated. *)

val neg : t -> t
(** Complement. *)

val xor_sign : t -> bool -> t
(** [xor_sign l s] negates [l] iff [s]. *)

val abs : t -> t
(** Positive literal of the same variable. *)

val false_ : t
(** The constant-false literal (variable 0, positive). *)

val true_ : t
(** The constant-true literal (variable 0, negated). *)

val is_const : t -> bool
(** [true] iff the literal is [false_] or [true_]. *)

val to_int : t -> int
(** The raw packed encoding. *)

val of_int : int -> t
(** Inverse of [to_int].  Must be non-negative. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
