(** Three-valued netlist simulation (the semantic traces of
    Definition 2, with X modelling unresolved nondeterministic initial
    values).

    Level-sensitive latches are simulated against an implicit c-phase
    clock: the latch of phase [q] is transparent at times [t] with
    [t mod phases = q] and holds its last sampled value otherwise.
    Evaluation relaxes to a fixpoint within each time step, so chains of
    transparent latches settle correctly. *)

type value = V0 | V1 | Vx

val v_not : value -> value
val v_and : value -> value -> value
val value_of_bool : bool -> value
val pp_value : Format.formatter -> value -> unit

type state

val create : Net.t -> state
(** Fresh simulation at time 0; state elements hold their initial
    values ([Vx] for [Init_x]). *)

val create_resolved : seed:int -> Net.t -> state
(** Like {!create} but [Init_x] initial values are resolved to
    deterministic pseudo-random booleans derived from [seed]. *)

val create_with : init:(int -> value) -> Net.t -> state
(** Like {!create} but each [Init_x] state element [v] starts at
    [init v] (counterexample replay). *)

val time : state -> int
val value : state -> Lit.t -> value
(** Value of a literal at the current time (after the last {!step}). *)

val step : state -> (int -> value) -> unit
(** [step s input] advances one time step; [input v] supplies the value
    of input variable [v] for this step.  Raises [Failure] if latch
    evaluation fails to reach a fixpoint (combinational cycle through
    transparent latches). *)

val step_bools : state -> bool list -> unit
(** Convenience: inputs supplied positionally, in input creation
    order.  Missing inputs read as [V0]. *)

val run : Net.t -> bool list list -> Lit.t -> value list
(** [run t vectors l] simulates from the initial state through
    [vectors] (one per step) and returns the value of [l] at each
    step. *)
