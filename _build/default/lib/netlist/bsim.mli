(** 64-way bit-parallel random simulation.

    Each vertex carries a 64-bit word, one independent random pattern
    per bit lane.  Used to partition vertices into candidate
    equivalence classes before SAT sweeping (redundancy removal) —
    two vertices whose words ever differ are definitely not equivalent.

    Nondeterministic ([Init_x]) initial values are resolved to random
    words, so equalities observed here are only candidates and must be
    confirmed by a complete method. *)

type state

val create : seed:int -> Net.t -> state
val net : state -> Net.t
val time : state -> int

val step_random : state -> unit
(** Advance one time step feeding fresh pseudo-random input words. *)

val word : state -> Lit.t -> int64
(** Word of a literal after the last step. *)

val signatures : seed:int -> steps:int -> Net.t -> int64 array
(** [signatures ~seed ~steps t] runs [steps] random steps and returns a
    per-vertex signature hashing the vertex's words over time.  Equal
    signatures mark candidate-equivalent vertices; a vertex's negation
    candidate uses the complement-closed variant in
    {!canonical_signature}. *)

val canonical_signature : int64 -> int64 * bool
(** [canonical_signature s] maps a signature and its complement-lane
    counterpart to a canonical representative, returning the
    representative and whether a complementation was applied.
    Signatures are built so that the signature of [~v] is the bitwise
    complement of the signature of [v]. *)
