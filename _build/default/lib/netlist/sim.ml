type value = V0 | V1 | Vx

let v_not = function V0 -> V1 | V1 -> V0 | Vx -> Vx

let v_and a b =
  match (a, b) with
  | V0, _ | _, V0 -> V0
  | V1, V1 -> V1
  | Vx, (V1 | Vx) | V1, Vx -> Vx

let value_of_bool b = if b then V1 else V0

let pp_value ppf = function
  | V0 -> Format.pp_print_char ppf '0'
  | V1 -> Format.pp_print_char ppf '1'
  | Vx -> Format.pp_print_char ppf 'x'

type state = {
  net : Net.t;
  vals : value array;  (* stabilized value of each vertex this step *)
  held : value array;  (* state-element memory entering the step *)
  mutable now : int;
  mutable started : bool;
}

(* Deterministic splitmix-style hash for resolving Init_x values. *)
let mix seed v =
  let z = ref (seed + (v * 0x9e3779b9)) in
  z := (!z lxor (!z lsr 16)) * 0x85ebca6b land max_int;
  z := (!z lxor (!z lsr 13)) * 0xc2b2ae35 land max_int;
  !z land 1 = 1

let init_value resolve v = function
  | Net.Init0 -> V0
  | Net.Init1 -> V1
  | Net.Init_x -> resolve v

let make resolve net =
  let n = Net.num_vars net in
  let held = Array.make n Vx in
  Net.iter_nodes net (fun v node ->
      match node with
      | Net.Reg r -> held.(v) <- init_value resolve v r.Net.r_init
      | Net.Latch l -> held.(v) <- init_value resolve v l.Net.l_init
      | Net.Const | Net.Input _ | Net.And _ -> ());
  { net; vals = Array.make n Vx; held; now = 0; started = false }

let create net = make (fun _ -> Vx) net

let create_resolved ~seed net =
  make (fun v -> value_of_bool (mix seed v)) net

let create_with ~init net = make init net

let time s = s.now

let lit_value vals l =
  let v = vals.(Lit.var l) in
  if Lit.is_neg l then v_not v else v

let value s l =
  if not s.started then invalid_arg "Sim.value: no step taken yet";
  lit_value s.vals l

(* One evaluation sweep; returns true if any value changed.  Registers
   and opaque latches read from [held]; transparent latches and ANDs
   read the current sweep values. *)
let sweep s phase input =
  let changed = ref false in
  let set v x =
    if s.vals.(v) <> x then begin
      s.vals.(v) <- x;
      changed := true
    end
  in
  Net.iter_nodes s.net (fun v node ->
      match node with
      | Net.Const -> set v V0
      | Net.Input _ -> set v (input v)
      | Net.And (a, b) -> set v (v_and (lit_value s.vals a) (lit_value s.vals b))
      | Net.Reg _ -> set v s.held.(v)
      | Net.Latch l ->
        if l.Net.l_phase = phase then set v (lit_value s.vals l.Net.l_data)
        else set v s.held.(v));
  !changed

let step s input =
  let phase = s.now mod Net.phases s.net in
  let rec settle budget =
    if sweep s phase input then
      if budget = 0 then
        failwith "Sim.step: combinational cycle through transparent latches"
      else settle (budget - 1)
  in
  settle (Net.num_vars s.net + 2);
  (* Latch the end-of-step values into state-element memory. *)
  Net.iter_nodes s.net (fun v node ->
      match node with
      | Net.Reg r -> s.held.(v) <- lit_value s.vals r.Net.next
      | Net.Latch _ -> s.held.(v) <- s.vals.(v)
      | Net.Const | Net.Input _ | Net.And _ -> ());
  s.now <- s.now + 1;
  s.started <- true

let step_bools s bits =
  let table = Hashtbl.create 16 in
  let rec pair vars bs =
    match (vars, bs) with
    | v :: vars', b :: bs' ->
      Hashtbl.replace table v (value_of_bool b);
      pair vars' bs'
    | _, [] | [], _ -> ()
  in
  pair (Net.inputs s.net) bits;
  step s (fun v -> Option.value (Hashtbl.find_opt table v) ~default:V0)

let run net vectors l =
  let s = create net in
  List.map
    (fun bits ->
      step_bools s bits;
      value s l)
    vectors
