let walk ~through_state t roots =
  let seen = Array.make (Net.num_vars t) false in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      match Net.node t v with
      | Net.Const | Net.Input _ -> ()
      | Net.And (a, b) ->
        visit (Lit.var a);
        visit (Lit.var b)
      | Net.Reg r -> if through_state then visit (Lit.var r.Net.next)
      | Net.Latch l -> if through_state then visit (Lit.var l.Net.l_data)
    end
  in
  List.iter (fun l -> visit (Lit.var l)) roots;
  seen

let of_lits t roots = walk ~through_state:true t roots
let combinational t roots = walk ~through_state:false t roots

let members_in pred t seen =
  let out = ref [] in
  Net.iter_nodes t (fun v _ -> if seen.(v) && pred t v then out := v :: !out);
  List.rev !out

let regs_in t seen = members_in Net.is_reg t seen
let latches_in t seen = members_in Net.is_latch t seen

let size seen =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen
