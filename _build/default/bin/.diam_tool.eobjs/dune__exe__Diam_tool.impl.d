bin/diam_tool.ml: Arg Cmd Cmdliner Core Format List Netlist Term Textio Workload
