bin/bmc_tool.ml: Arg Bmc Cmd Cmdliner Core Format List Netlist Term Textio
