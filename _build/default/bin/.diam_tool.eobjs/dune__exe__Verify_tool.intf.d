bin/verify_tool.mli:
