bin/gen_tool.mli:
