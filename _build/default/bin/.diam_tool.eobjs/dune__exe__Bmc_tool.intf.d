bin/bmc_tool.mli:
