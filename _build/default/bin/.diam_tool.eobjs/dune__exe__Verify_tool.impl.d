bin/verify_tool.ml: Arg Bmc Cmd Cmdliner Core Format List Netlist Printf Term Textio
