bin/diam_tool.mli:
