bin/gen_tool.ml: Arg Cmd Cmdliner Format List Netlist Term Textio Workload
