module Net = Netlist.Net
module Lit = Netlist.Lit

let test_free_counter () =
  let net = Net.create () in
  let c = Workload.Gen.counter net ~name:"c" ~bits:3 ~enable:Lit.true_ in
  Net.add_target net "t" c.Workload.Gen.out;
  let e = Option.get (Core.Exact.explore net (List.assoc "t" (Net.targets net))) in
  Helpers.check_int "8 reachable states" 8 e.Core.Exact.reachable;
  Helpers.check_int "init diameter 8" 8 e.Core.Exact.init_diameter;
  Helpers.check_int "pair diameter 8" 8 e.Core.Exact.pair_diameter;
  Helpers.check_bool "hit at 7" true (e.Core.Exact.earliest_hit = Some 7)

let test_enabled_counter () =
  let net = Net.create () in
  let en = Net.add_input net "en" in
  let c = Workload.Gen.counter net ~name:"c" ~bits:2 ~enable:en in
  Net.add_target net "t" c.Workload.Gen.out;
  let e = Option.get (Core.Exact.explore net (List.assoc "t" (Net.targets net))) in
  Helpers.check_int "4 states" 4 e.Core.Exact.reachable;
  Helpers.check_bool "hit at 3" true (e.Core.Exact.earliest_hit = Some 3)

let test_ring () =
  let net = Net.create () in
  let r = Workload.Gen.ring net ~name:"r" ~length:5 in
  Net.add_target net "t" r.Workload.Gen.out;
  let e = Option.get (Core.Exact.explore net (List.assoc "t" (Net.targets net))) in
  Helpers.check_int "5 reachable one-hot states" 5 e.Core.Exact.reachable;
  Helpers.check_int "pair diameter 5" 5 e.Core.Exact.pair_diameter;
  (* token starts at position 0, observed at position 4 after 4 steps *)
  Helpers.check_bool "hit at 4" true (e.Core.Exact.earliest_hit = Some 4)

let test_pipeline_distances () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let p = Workload.Gen.pipeline net ~name:"p" ~stages:3 ~data:a in
  Net.add_target net "t" p.Workload.Gen.out;
  let e = Option.get (Core.Exact.explore net (List.assoc "t" (Net.targets net))) in
  Helpers.check_int "all 8 fillings reachable" 8 e.Core.Exact.reachable;
  (* filling the last stage with a 1 takes 3 steps *)
  Helpers.check_bool "hit at 3" true (e.Core.Exact.earliest_hit = Some 3);
  Helpers.check_int "init diameter 4" 4 e.Core.Exact.init_diameter

let test_unreachable_target () =
  let net = Net.create () in
  let r = Net.add_reg net ~init:Net.Init0 "r" in
  Net.set_next net r Lit.false_;
  Net.add_target net "t" r;
  let e = Option.get (Core.Exact.explore net (List.assoc "t" (Net.targets net))) in
  Helpers.check_bool "unreachable" true (e.Core.Exact.earliest_hit = None);
  Helpers.check_int "single state" 1 e.Core.Exact.reachable

let test_x_init_expansion () =
  let net = Net.create () in
  let r = Net.add_reg net ~init:Net.Init_x "r" in
  Net.set_next net r r;
  Net.add_target net "t" r;
  let e = Option.get (Core.Exact.explore net (List.assoc "t" (Net.targets net))) in
  Helpers.check_int "both initial states" 2 e.Core.Exact.reachable;
  Helpers.check_bool "hit immediately in one of them" true
    (e.Core.Exact.earliest_hit = Some 0)

let test_limits () =
  let net = Net.create () in
  let l = Workload.Gen.lfsr net ~name:"l" ~bits:6 in
  Net.add_target net "t" l.Workload.Gen.out;
  Helpers.check_bool "reg limit" true
    (Core.Exact.explore ~max_regs:4 net (List.assoc "t" (Net.targets net)) = None)

let suite =
  [
    Alcotest.test_case "free counter" `Quick test_free_counter;
    Alcotest.test_case "enabled counter" `Quick test_enabled_counter;
    Alcotest.test_case "ring" `Quick test_ring;
    Alcotest.test_case "pipeline distances" `Quick test_pipeline_distances;
    Alcotest.test_case "unreachable target" `Quick test_unreachable_target;
    Alcotest.test_case "X-init expansion" `Quick test_x_init_expansion;
    Alcotest.test_case "limits" `Quick test_limits;
  ]
