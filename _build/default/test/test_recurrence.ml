module Net = Netlist.Net
module Lit = Netlist.Lit

let test_free_counter () =
  (* the longest loop-free path of a free-running 2-bit counter visits
     all 4 states: recurrence diameter 3, bound 4 *)
  let net = Net.create () in
  let c = Workload.Gen.counter net ~name:"c" ~bits:2 ~enable:Lit.true_ in
  Net.add_target net "t" c.Workload.Gen.out;
  let r = Core.Recurrence.compute net (List.assoc "t" (Net.targets net)) in
  Helpers.check_int "path length" 3 r.Core.Recurrence.path_length;
  Helpers.check_int "bound" 4 r.Core.Recurrence.bound

let test_pipeline_loose () =
  (* the paper's criticism: the recurrence diameter of an n-stage
     pipeline can be much larger than the property's diameter *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let p = Workload.Gen.pipeline net ~name:"p" ~stages:4 ~data:a in
  Net.add_target net "t" p.Workload.Gen.out;
  let t = List.assoc "t" (Net.targets net) in
  let rd = Core.Recurrence.compute net t in
  let structural = (Core.Bound.target net t).Core.Bound.bound in
  Helpers.check_int "structural bound tight" 5 structural;
  Helpers.check_bool "recurrence no tighter than structural" true
    (rd.Core.Recurrence.bound >= structural)

let test_combinational () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  Net.add_target net "t" a;
  let r = Core.Recurrence.compute net (List.assoc "t" (Net.targets net)) in
  Helpers.check_int "no state: bound 1" 1 r.Core.Recurrence.bound

let test_limit_gives_huge () =
  let net = Net.create () in
  let c = Workload.Gen.counter net ~name:"c" ~bits:6 ~enable:Lit.true_ in
  Net.add_target net "t" c.Workload.Gen.out;
  let r = Core.Recurrence.compute ~limit:10 net (List.assoc "t" (Net.targets net)) in
  Helpers.check_bool "gave up at the limit" true
    (Core.Sat_bound.is_huge r.Core.Recurrence.bound)

let prop_recurrence_sound =
  (* the recurrence bound covers the earliest hit *)
  Helpers.qtest ~count:25 "recurrence bound covers earliest hit"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_net_with_target seed ~inputs:2 ~regs:4 ~gates:8 in
      let r = Core.Recurrence.compute ~limit:40 net t in
      if Core.Sat_bound.is_huge r.Core.Recurrence.bound then true
      else
        match Core.Exact.explore net t with
        | None -> true
        | Some e -> (
          match e.Core.Exact.earliest_hit with
          | None -> true
          | Some hit -> hit <= r.Core.Recurrence.bound - 1))

let prop_recurrence_at_least_init_diameter =
  Helpers.qtest ~count:25 "recurrence bound dominates exact distances"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_net_with_target seed ~inputs:2 ~regs:4 ~gates:8 in
      let r = Core.Recurrence.compute ~limit:40 net t in
      if Core.Sat_bound.is_huge r.Core.Recurrence.bound then true
      else
        (* restrict the oracle to the same cone the engine used *)
        match Core.Exact.explore net t with
        | None -> true
        | Some e -> e.Core.Exact.init_diameter <= r.Core.Recurrence.bound)

let suite =
  [
    Alcotest.test_case "free counter" `Quick test_free_counter;
    Alcotest.test_case "pipeline looseness" `Quick test_pipeline_loose;
    Alcotest.test_case "combinational" `Quick test_combinational;
    Alcotest.test_case "limit" `Quick test_limit_gives_huge;
    prop_recurrence_sound;
    prop_recurrence_at_least_init_diameter;
  ]

let test_bounded_coi_pipeline () =
  (* plain recurrence diverges on a pipeline; bounded COI terminates
     quickly at a tight bound *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let p = Workload.Gen.pipeline net ~name:"p" ~stages:6 ~data:a in
  Net.add_target net "t" p.Workload.Gen.out;
  let t = List.assoc "t" (Net.targets net) in
  let plain = Core.Recurrence.compute ~limit:20 net t in
  let bcoi = Core.Recurrence.compute ~limit:20 ~bounded_coi:true net t in
  Helpers.check_bool "plain diverges past the limit" true
    (Core.Sat_bound.is_huge plain.Core.Recurrence.bound);
  Helpers.check_bool "bounded COI converges" false
    (Core.Sat_bound.is_huge bcoi.Core.Recurrence.bound);
  (* and the bound still covers the earliest hit (at time 6) *)
  Helpers.check_bool "still sound" true (bcoi.Core.Recurrence.bound >= 7)

let prop_bounded_coi_sound =
  Helpers.qtest ~count:25 "bounded-COI recurrence covers earliest hit"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_net_with_target seed ~inputs:2 ~regs:4 ~gates:8 in
      let r = Core.Recurrence.compute ~limit:32 ~bounded_coi:true net t in
      if Core.Sat_bound.is_huge r.Core.Recurrence.bound then true
      else
        match Core.Exact.explore net t with
        | None -> true
        | Some e -> (
          match e.Core.Exact.earliest_hit with
          | None -> true
          | Some hit -> hit <= r.Core.Recurrence.bound - 1))

let prop_bounded_coi_finite_on_pipelines =
  (* the variant's selling point: pipelines of any depth converge *)
  Helpers.qtest ~count:10 "bounded COI converges on pipelines"
    QCheck.(int_range 2 10)
    (fun stages ->
      let net = Net.create () in
      let a = Net.add_input net "a" in
      let p = Workload.Gen.pipeline net ~name:"p" ~stages ~data:a in
      Net.add_target net "t" p.Workload.Gen.out;
      let t = List.assoc "t" (Net.targets net) in
      let r = Core.Recurrence.compute ~limit:40 ~bounded_coi:true net t in
      (not (Core.Sat_bound.is_huge r.Core.Recurrence.bound))
      && r.Core.Recurrence.bound >= stages + 1)

let suite =
  suite
  @ [
      Alcotest.test_case "bounded COI on pipelines" `Quick test_bounded_coi_pipeline;
      prop_bounded_coi_sound;
      prop_bounded_coi_finite_on_pipelines;
    ]
