module Net = Netlist.Net
module Lit = Netlist.Lit

let test_copy_identity_semantics () =
  let net, t = Helpers.rand_net_with_target 7 ~inputs:3 ~regs:4 ~gates:12 in
  let copy = Transform.Rebuild.copy net in
  let t' = Transform.Rebuild.map_lit copy t in
  Helpers.check_bool "copy is trace-equivalent" true
    (Transform.Equiv.sim_equivalent net t copy.Transform.Rebuild.net t')

let test_coi_restriction () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let r1 = Net.add_reg net "r1" in
  Net.set_next net r1 a;
  (* dead register, never referenced by target *)
  let r2 = Net.add_reg net "r2" in
  Net.set_next net r2 (Lit.neg r2);
  Net.add_target net "t" r1;
  let copy = Transform.Rebuild.copy net in
  Helpers.check_int "dead register dropped" 1
    (Net.num_regs copy.Transform.Rebuild.net);
  Helpers.check_bool "dead register unmapped" true
    (copy.Transform.Rebuild.map.(Lit.var r2) = None)

let test_redirect_merge () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Net.add_input net "b" in
  let g1 = Net.add_and net a b in
  let r = Net.add_reg net "r" in
  Net.set_next net r g1;
  Net.add_target net "t" r;
  (* redirect the AND to constant true: the register's next collapses *)
  let copy =
    Transform.Rebuild.copy
      ~redirect:(fun v -> if v = Lit.var g1 then Some Lit.true_ else None)
      net
  in
  let r' = Transform.Rebuild.map_lit copy r in
  let reg = Net.reg_of copy.Transform.Rebuild.net (Lit.var r') in
  Helpers.check_bool "next redirected to true" true (Lit.equal reg.Net.next Lit.true_);
  Helpers.check_int "no ANDs left" 0 (Net.num_ands copy.Transform.Rebuild.net)

let test_redirect_with_sign () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Net.add_input net "b" in
  let g = Net.add_and net a b in
  Net.add_target net "t" g;
  (* redirect b to ~a: the AND becomes a & ~a = false *)
  let copy =
    Transform.Rebuild.copy
      ~redirect:(fun v -> if v = Lit.var b then Some (Lit.neg a) else None)
      net
  in
  let t' = Transform.Rebuild.map_lit copy g in
  Helpers.check_bool "folded to constant" true (Lit.equal t' Lit.false_)

let test_redirect_cycle_detected () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Net.add_input net "b" in
  Net.add_target net "t" (Net.add_and net a b);
  let redirect v =
    if v = Lit.var a then Some b else if v = Lit.var b then Some a else None
  in
  match Transform.Rebuild.copy ~redirect net with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected redirection-cycle failure"

let test_outputs_remapped () =
  let net, t = Helpers.rand_net_with_target 11 ~inputs:2 ~regs:2 ~gates:6 in
  ignore t;
  let copy = Transform.Rebuild.copy net in
  Helpers.check_int "outputs kept" (List.length (Net.outputs net))
    (List.length (Net.outputs copy.Transform.Rebuild.net));
  Helpers.check_int "targets kept" (List.length (Net.targets net))
    (List.length (Net.targets copy.Transform.Rebuild.net))

let prop_copy_equivalence =
  Helpers.qtest ~count:60 "copy preserves target semantics"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_net_with_target seed ~inputs:3 ~regs:3 ~gates:10 in
      let copy = Transform.Rebuild.copy net in
      let t' = Transform.Rebuild.map_lit copy t in
      Transform.Equiv.sim_equivalent ~steps:16 net t
        copy.Transform.Rebuild.net t')

let suite =
  [
    Alcotest.test_case "copy preserves semantics" `Quick test_copy_identity_semantics;
    Alcotest.test_case "cone-of-influence restriction" `Quick test_coi_restriction;
    Alcotest.test_case "redirect merge" `Quick test_redirect_merge;
    Alcotest.test_case "redirect with sign" `Quick test_redirect_with_sign;
    Alcotest.test_case "redirect cycle detected" `Quick test_redirect_cycle_detected;
    Alcotest.test_case "outputs remapped" `Quick test_outputs_remapped;
    prop_copy_equivalence;
  ]
