module Net = Netlist.Net
module Lit = Netlist.Lit
module Coi = Netlist.Coi

let fixture () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Net.add_input net "b" in
  let r1 = Net.add_reg net "r1" in
  let r2 = Net.add_reg net "r2" in
  let g = Net.add_and net r1 b in
  Net.set_next net r1 a;
  Net.set_next net r2 g;
  (net, a, b, r1, r2, g)

let test_sequential_cone () =
  let net, a, b, r1, r2, g = fixture () in
  let cone = Coi.of_lits net [ r2 ] in
  Helpers.check_bool "follows next edges" true cone.(Lit.var r1);
  Helpers.check_bool "reaches inputs" true (cone.(Lit.var a) && cone.(Lit.var b));
  Helpers.check_bool "gate included" true cone.(Lit.var g);
  Helpers.check_int "two registers in cone" 2
    (List.length (Coi.regs_in net cone))

let test_combinational_stops_at_state () =
  let net, a, b, r1, r2, g = fixture () in
  ignore r2;
  let cone = Coi.combinational net [ g ] in
  Helpers.check_bool "marks the register" true cone.(Lit.var r1);
  Helpers.check_bool "does not enter its next cone" false cone.(Lit.var a);
  Helpers.check_bool "reads the input" true cone.(Lit.var b)

let test_disjoint_roots () =
  let net, a, b, r1, r2, g = fixture () in
  ignore (b, r2, g);
  let cone = Coi.of_lits net [ r1 ] in
  Helpers.check_bool "r1 cone excludes g" false cone.(Lit.var g);
  Helpers.check_bool "r1 cone has a" true cone.(Lit.var a);
  Helpers.check_int "size counts marks" (Coi.size cone)
    (Array.fold_left (fun n x -> if x then n + 1 else n) 0 cone)

let prop_cone_closed =
  Helpers.qtest ~count:60 "sequential cones are fanin-closed"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_net_with_target seed ~inputs:3 ~regs:4 ~gates:12 in
      let cone = Coi.of_lits net [ t ] in
      let ok = ref true in
      Net.iter_nodes net (fun v _ ->
          if cone.(v) then
            List.iter
              (fun l -> if not cone.(Lit.var l) then ok := false)
              (Net.fanins net v));
      !ok)

let suite =
  [
    Alcotest.test_case "sequential cone" `Quick test_sequential_cone;
    Alcotest.test_case "combinational stops at state" `Quick
      test_combinational_stops_at_state;
    Alcotest.test_case "disjoint roots" `Quick test_disjoint_roots;
    prop_cone_closed;
  ]
