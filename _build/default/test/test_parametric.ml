module Net = Netlist.Net
module Lit = Netlist.Lit
module Sim = Netlist.Sim

(* the set of joint valuations a list of literals can produce in one
   step, by exhaustive input enumeration (combinational cones only) *)
let producible net lits =
  let inputs = Net.inputs net in
  let ni = List.length inputs in
  assert (ni <= 12);
  let out = Hashtbl.create 16 in
  for bits = 0 to (1 lsl ni) - 1 do
    let s = Sim.create net in
    Sim.step s (fun v ->
        match List.find_index (( = ) v) (List.map (fun x -> x) inputs) with
        | Some i -> Sim.value_of_bool (bits land (1 lsl i) <> 0)
        | None -> Sim.V0);
    let key =
      List.map
        (fun l -> match Sim.value s l with Sim.V1 -> true | _ -> false)
        lits
    in
    Hashtbl.replace out key ()
  done;
  Hashtbl.fold (fun k () acc -> k :: acc) out []
  |> List.sort compare

let test_image_preserved () =
  (* cut = (a | b, a & b): image is {00, 10, 11} *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Net.add_input net "b" in
  let hi = Net.add_or net a b in
  let lo = Net.add_and net a b in
  Net.add_target net "hi" hi;
  Net.add_target net "lo" lo;
  let before = producible net [ hi; lo ] in
  Helpers.check_int "three producible valuations" 3 (List.length before);
  match Transform.Parametric.run net ~cut:[ hi; lo ] with
  | None -> Alcotest.fail "memoryless cut must re-encode"
  | Some r ->
    Helpers.check_bool "image size" true (r.Transform.Parametric.image_size = 3.);
    let net' = r.Transform.Parametric.rebuilt.Transform.Rebuild.net in
    let hi' = List.assoc "hi" (Net.targets net') in
    let lo' = List.assoc "lo" (Net.targets net') in
    let after = producible net' [ hi'; lo' ] in
    Helpers.check_bool "image preserved exactly" true (before = after)

let test_single_signal_becomes_free () =
  (* a non-constant single-signal cut has image {0,1}: the whole cone
     collapses to one fresh input *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Net.add_input net "b" in
  let c = Net.add_input net "c" in
  let f = Net.add_and net (Net.add_xor net a b) (Lit.neg c) in
  Net.add_target net "f" f;
  match Transform.Parametric.run net ~cut:[ f ] with
  | None -> Alcotest.fail "expected re-encoding"
  | Some r ->
    Helpers.check_int "one parameter" 1 r.Transform.Parametric.params;
    let net' = r.Transform.Parametric.rebuilt.Transform.Rebuild.net in
    Helpers.check_int "cone collapsed to the parameter" 0 (Net.num_ands net');
    Helpers.check_int "single input remains" 1 (Net.num_inputs net')

let test_forced_signal () =
  (* cut = (a | ~a, a): first component is forced to 1 *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let t = Net.add_or net a (Lit.neg a) in
  Net.add_target net "t" t;
  Net.add_target net "a" a;
  match Transform.Parametric.run net ~cut:[ t; a ] with
  | None -> Alcotest.fail "expected re-encoding"
  | Some r ->
    let net' = r.Transform.Parametric.rebuilt.Transform.Rebuild.net in
    Helpers.check_bool "tautology forced to constant true" true
      (Lit.equal (List.assoc "t" (Net.targets net')) Lit.true_)

let test_stateful_cut_rejected () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let r = Net.add_reg net "r" in
  Net.set_next net r a;
  Net.add_target net "t" r;
  Helpers.check_bool "register cone rejected" true
    (Transform.Parametric.run net ~cut:[ r ] = None);
  Helpers.check_bool "empty cut rejected" true
    (Transform.Parametric.run net ~cut:[] = None)

let test_theorem1_bound_preserved () =
  (* a pipeline behind a re-encoded cut keeps its diameter bound *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Net.add_input net "b" in
  let f = Net.add_xor net (Net.add_and net a b) b in
  let p = Workload.Gen.pipeline net ~name:"p" ~stages:4 ~data:f in
  Net.add_target net "t" p.Workload.Gen.out;
  let before = (Core.Bound.target_named net "t").Core.Bound.bound in
  match Transform.Parametric.run net ~cut:[ f ] with
  | None -> Alcotest.fail "expected re-encoding"
  | Some r ->
    let net' = r.Transform.Parametric.rebuilt.Transform.Rebuild.net in
    let after = (Core.Bound.target_named net' "t").Core.Bound.bound in
    Helpers.check_int "bound unchanged (Theorem 1)" before after

let prop_image_preserved_random =
  Helpers.qtest ~count:60 "re-encoding preserves random cut images"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Workload.Rng.create seed in
      let net = Net.create () in
      let ins = List.init 4 (fun i -> Net.add_input net (Printf.sprintf "i%d" i)) in
      let pool = ref ins in
      let pick () =
        let l = Workload.Rng.pick rng !pool in
        if Workload.Rng.bool rng then Lit.neg l else l
      in
      for _ = 1 to 6 do
        let g =
          match Workload.Rng.int rng 3 with
          | 0 -> Net.add_and net (pick ()) (pick ())
          | 1 -> Net.add_or net (pick ()) (pick ())
          | _ -> Net.add_xor net (pick ()) (pick ())
        in
        if not (Lit.is_const g) then pool := g :: !pool
      done;
      let cut_size = 1 + Workload.Rng.int rng 3 in
      let cut = List.init cut_size (fun _ -> pick ()) in
      List.iteri
        (fun i l -> Net.add_target net (Printf.sprintf "c%d" i) l)
        cut;
      match Transform.Parametric.run net ~cut with
      | None -> true
      | Some r ->
        let before = producible net cut in
        let net' = r.Transform.Parametric.rebuilt.Transform.Rebuild.net in
        let cut' =
          List.mapi
            (fun i _ -> List.assoc (Printf.sprintf "c%d" i) (Net.targets net'))
            cut
        in
        let after = producible net' cut' in
        before = after)

let suite =
  [
    Alcotest.test_case "image preserved" `Quick test_image_preserved;
    Alcotest.test_case "single signal becomes free" `Quick
      test_single_signal_becomes_free;
    Alcotest.test_case "forced signal" `Quick test_forced_signal;
    Alcotest.test_case "stateful cut rejected" `Quick test_stateful_cut_rejected;
    Alcotest.test_case "Theorem 1 bound preserved" `Quick
      test_theorem1_bound_preserved;
    prop_image_preserved_random;
  ]
