module Net = Netlist.Net
module Lit = Netlist.Lit
module Sim = Netlist.Sim

let run_steps net steps input l =
  let s = Sim.create net in
  List.init steps (fun t ->
      Sim.step s (input t);
      Sim.value s l)

let const_input _ _ = Sim.V0

let test_counter_counts () =
  let net = Net.create () in
  let c = Workload.Gen.counter net ~name:"c" ~bits:3 ~enable:Lit.true_ in
  (* read the binary value from the register bits *)
  let value s =
    List.fold_left
      (fun (i, acc) r ->
        (i + 1, acc + if Sim.value s r = Sim.V1 then 1 lsl i else 0))
      (0, 0) c.Workload.Gen.regs
    |> snd
  in
  let s = Sim.create net in
  for t = 0 to 10 do
    Sim.step s (fun _ -> Sim.V0);
    (* the increment computed during step t becomes visible at t+1 *)
    Helpers.check_int (Printf.sprintf "count at %d" t) (t mod 8) (value s)
  done

let test_counter_enable_stalls () =
  let net = Net.create () in
  let en = Net.add_input net "en" in
  let c = Workload.Gen.counter net ~name:"c" ~bits:2 ~enable:en in
  let b0 = List.hd c.Workload.Gen.regs in
  let values =
    run_steps net 4 (fun t _ -> if t < 2 then Sim.V0 else Sim.V1) b0
  in
  Helpers.check_bool "stalls then toggles" true
    (values = [ Sim.V0; Sim.V0; Sim.V0; Sim.V1 ])

let test_queue_shifts_on_push () =
  let net = Net.create () in
  let push = Net.add_input net "push" in
  let d = Net.add_input net "d" in
  let q = Workload.Gen.queue net ~name:"q" ~depth:3 ~width:1 ~push ~data:[ d ] in
  let head = List.nth q.Workload.Gen.regs 2 in
  (* push 1, then stall, then push twice more: the 1 reaches the head
     only after the third push *)
  let stim t v =
    if v = Lit.var push then
      Sim.value_of_bool (List.nth [ true; false; true; true; false ] t)
    else if v = Lit.var d then Sim.value_of_bool (t = 0)
    else Sim.V0
  in
  let s = Sim.create net in
  let got =
    List.init 5 (fun t ->
        Sim.step s (fun v -> stim t v);
        Sim.value s head)
  in
  Helpers.check_bool "token arrives after the third push" true
    (got = [ Sim.V0; Sim.V0; Sim.V0; Sim.V0; Sim.V1 ])

let test_memory_write_read () =
  let net = Net.create () in
  let a0 = Net.add_input net "a0" in
  let d = Net.add_input net "d" in
  let w = Net.add_input net "w" in
  let m =
    Workload.Gen.memory net ~name:"m" ~rows:2 ~width:1 ~addr:[ a0 ] ~data:[ d ]
      ~write:w
  in
  let row0 = List.nth m.Workload.Gen.regs 0 in
  let row1 = List.nth m.Workload.Gen.regs 1 in
  (* write 1 into row 1, then idle: only row 1 changes and holds *)
  let stim t v =
    if v = Lit.var a0 then Sim.value_of_bool (t = 0)
    else if v = Lit.var d then Sim.value_of_bool (t = 0)
    else if v = Lit.var w then Sim.value_of_bool (t = 0)
    else Sim.V0
  in
  let s = Sim.create net in
  let rows =
    List.init 3 (fun t ->
        Sim.step s (fun v -> stim t v);
        (Sim.value s row0, Sim.value s row1))
  in
  Helpers.check_bool "row1 written and held, row0 untouched" true
    (rows
    = [ (Sim.V0, Sim.V0); (Sim.V0, Sim.V1); (Sim.V0, Sim.V1) ])

let test_ring_token_rotates () =
  let net = Net.create () in
  let r = Workload.Gen.ring net ~name:"r" ~length:3 in
  let positions =
    List.map
      (fun reg -> run_steps net 4 const_input reg)
      r.Workload.Gen.regs
  in
  (* exactly one token at each step *)
  List.iteri
    (fun t _ ->
      let count =
        List.fold_left
          (fun acc vs -> if List.nth vs t = Sim.V1 then acc + 1 else acc)
          0 positions
      in
      Helpers.check_int (Printf.sprintf "one-hot at %d" t) 1 count)
    [ 0; 1; 2; 3 ]

let test_lfsr_period () =
  (* the permutation property: a 4-bit LFSR returns to its seed and
     never hits zero *)
  let net = Net.create () in
  let l = Workload.Gen.lfsr net ~name:"l" ~bits:4 in
  let s = Sim.create net in
  let states =
    List.init 20 (fun _ ->
        Sim.step s (fun _ -> Sim.V0);
        List.map (fun r -> Sim.value s r) l.Workload.Gen.regs)
  in
  Helpers.check_bool "never all-zero" true
    (List.for_all (fun st -> List.exists (( = ) Sim.V1) st) states);
  Helpers.check_bool "revisits a state (periodic)" true
    (List.length (List.sort_uniq compare states) < 20)

let test_pipeline_delay () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let p = Workload.Gen.pipeline net ~name:"p" ~stages:4 ~data:a in
  let stim t v = if v = Lit.var a then Sim.value_of_bool (t = 0) else Sim.V0 in
  let s = Sim.create net in
  let got =
    List.init 6 (fun t ->
        Sim.step s (fun v -> stim t v);
        Sim.value s p.Workload.Gen.out)
  in
  Helpers.check_bool "pulse emerges after 4 steps" true
    (got = [ Sim.V0; Sim.V0; Sim.V0; Sim.V0; Sim.V1; Sim.V0 ])

let test_com_guard_semantically_false () =
  let net = Net.create () in
  let rng = Workload.Rng.create 11 in
  let ins = List.init 4 (fun i -> Net.add_input net (Printf.sprintf "i%d" i)) in
  let g = Workload.Gen.com_guard net rng ~inputs:ins in
  (* exhaustively false *)
  for bits = 0 to 15 do
    let s = Sim.create net in
    Sim.step s (fun v ->
        match List.find_index (Lit.equal (Lit.make v)) ins with
        | Some i -> Sim.value_of_bool (bits land (1 lsl i) <> 0)
        | None -> Sim.V0);
    Helpers.check_bool "guard false" true (Sim.value s g = Sim.V0)
  done

let test_ret_guard_semantically_false () =
  let net = Net.create () in
  let x = Net.add_input net "x" in
  let y = Net.add_input net "y" in
  let g = Workload.Gen.ret_guard net ~name:"r" ~x ~y in
  let s = Sim.create net in
  for t = 0 to 15 do
    Sim.step s (fun v ->
        Sim.value_of_bool (Hashtbl.hash (v, t) land 1 = 1));
    Helpers.check_bool (Printf.sprintf "guard false at %d" t) true
      (Sim.value s g = Sim.V0)
  done

let suite =
  [
    Alcotest.test_case "counter counts" `Quick test_counter_counts;
    Alcotest.test_case "counter enable stalls" `Quick test_counter_enable_stalls;
    Alcotest.test_case "queue shifts on push" `Quick test_queue_shifts_on_push;
    Alcotest.test_case "memory write/read" `Quick test_memory_write_read;
    Alcotest.test_case "ring token rotates" `Quick test_ring_token_rotates;
    Alcotest.test_case "lfsr period" `Quick test_lfsr_period;
    Alcotest.test_case "pipeline delay" `Quick test_pipeline_delay;
    Alcotest.test_case "com guard false" `Quick test_com_guard_semantically_false;
    Alcotest.test_case "ret guard false" `Quick test_ret_guard_semantically_false;
  ]
