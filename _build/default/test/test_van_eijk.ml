module Net = Netlist.Net
module Lit = Netlist.Lit

let test_merges_shifted_pipelines () =
  (* the RET-gadget scenario: registers before vs after the gate; only
     sequential reasoning identifies them *)
  let net = Net.create () in
  let x = Net.add_input net "x" in
  let y = Net.add_input net "y" in
  let guard = Workload.Gen.ret_guard net ~name:"g" ~x ~y in
  Net.add_target net "t" guard;
  (* combinational COM cannot fold the guard *)
  let com, _ = Transform.Com.run net in
  let t_com = List.assoc "t" (Net.targets com.Transform.Rebuild.net) in
  Helpers.check_bool "COM alone leaves the guard" false (Lit.is_const t_com);
  (* sequential sweeping folds it to constant false *)
  let ve, stats = Transform.Van_eijk.run net in
  let t_ve = List.assoc "t" (Net.targets ve.Transform.Rebuild.net) in
  Helpers.check_bool "van Eijk folds the guard" true (Lit.equal t_ve Lit.false_);
  Helpers.check_bool "some merges happened" true (stats.Transform.Van_eijk.merged > 0)

let test_merges_duplicate_fsm () =
  (* two copies of the same toggle driven by the same input *)
  let net = Net.create () in
  let en = Net.add_input net "en" in
  let mk name =
    let r = Net.add_reg net ~init:Net.Init0 name in
    Net.set_next net r (Net.add_xor net r en);
    r
  in
  let r1 = mk "t1" in
  let r2 = mk "t2" in
  Net.add_target net "diff" (Net.add_xor net r1 r2);
  let ve, _ = Transform.Van_eijk.run net in
  Helpers.check_bool "duplicate toggles merged" true
    (Lit.equal
       (List.assoc "diff" (Net.targets ve.Transform.Rebuild.net))
       Lit.false_)

let test_respects_different_inits () =
  (* same next functions but complementary initial values: the toggles
     stay complementary, never equal *)
  let net = Net.create () in
  let en = Net.add_input net "en" in
  let r1 = Net.add_reg net ~init:Net.Init0 "a" in
  let r2 = Net.add_reg net ~init:Net.Init1 "b" in
  Net.set_next net r1 (Net.add_xor net r1 en);
  Net.set_next net r2 (Net.add_xor net r2 en);
  Net.add_target net "same" (Lit.neg (Net.add_xor net r1 r2));
  let ve, _ = Transform.Van_eijk.run net in
  let t = List.assoc "same" (Net.targets ve.Transform.Rebuild.net) in
  (* r1 = ~r2 invariantly: "same" is constant false; merging r1 onto
     ~r2 is legitimate, merging them positively is not *)
  Helpers.check_bool "complementary, not equal" true
    (Lit.equal t Lit.false_ || not (Lit.is_const t));
  (* and the result must still be trace-equivalent *)
  Helpers.check_bool "semantics preserved" true
    (Transform.Equiv.sim_equivalent net
       (List.assoc "same" (Net.targets net))
       ve.Transform.Rebuild.net t)

let test_x_init_not_merged () =
  let net = Net.create () in
  let r1 = Net.add_reg net ~init:Net.Init_x "x1" in
  let r2 = Net.add_reg net ~init:Net.Init_x "x2" in
  Net.set_next net r1 r1;
  Net.set_next net r2 r2;
  Net.add_target net "diff" (Net.add_xor net r1 r2);
  let ve, _ = Transform.Van_eijk.run net in
  Helpers.check_bool "independent nondeterminism kept" false
    (Lit.is_const (List.assoc "diff" (Net.targets ve.Transform.Rebuild.net)))

let test_latch_rejected () =
  let net = Net.create ~phases:2 () in
  let a = Net.add_input net "a" in
  let l = Net.add_latch net ~phase:0 "l" in
  Net.set_latch_data net l a;
  Net.add_target net "t" l;
  match Transform.Van_eijk.run net with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "latch netlists must be rejected"

let prop_preserves_semantics =
  Helpers.qtest ~count:40 "van Eijk preserves target traces"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_net_with_target seed ~inputs:3 ~regs:4 ~gates:12 in
      let ve, _ = Transform.Van_eijk.run net in
      let t' = List.assoc "t" (Net.targets ve.Transform.Rebuild.net) in
      Transform.Equiv.sim_equivalent ~steps:20 net t ve.Transform.Rebuild.net t')

let prop_at_least_as_strong_as_com =
  Helpers.qtest ~count:30 "never keeps more vertices than COM"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, _ = Helpers.rand_net_with_target seed ~inputs:3 ~regs:4 ~gates:12 in
      let com, _ = Transform.Com.run net in
      let ve, _ = Transform.Van_eijk.run net in
      Net.num_vars ve.Transform.Rebuild.net
      <= Net.num_vars com.Transform.Rebuild.net)

let prop_bounds_remain_sound =
  Helpers.qtest ~count:30 "bounds on the van Eijk result are sound (Thm 1)"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_structured seed in
      let ve, _ = Transform.Van_eijk.run net in
      match List.assoc_opt "t" (Net.targets ve.Transform.Rebuild.net) with
      | None -> true
      | Some t' ->
        let b = (Core.Bound.target ve.Transform.Rebuild.net t').Core.Bound.bound in
        if Core.Sat_bound.is_huge b then true
        else (
          match Core.Exact.explore net t with
          | None -> true
          | Some e -> (
            match e.Core.Exact.earliest_hit with
            | None -> true
            | Some hit -> hit <= b - 1)))

let suite =
  [
    Alcotest.test_case "merges shifted pipelines" `Quick test_merges_shifted_pipelines;
    Alcotest.test_case "merges duplicate FSMs" `Quick test_merges_duplicate_fsm;
    Alcotest.test_case "respects different inits" `Quick test_respects_different_inits;
    Alcotest.test_case "X inits not merged" `Quick test_x_init_not_merged;
    Alcotest.test_case "latches rejected" `Quick test_latch_rejected;
    prop_preserves_semantics;
    prop_at_least_as_strong_as_com;
    prop_bounds_remain_sound;
  ]
