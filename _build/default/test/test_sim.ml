module Net = Netlist.Net
module Lit = Netlist.Lit
module Sim = Netlist.Sim
module Bsim = Netlist.Bsim

let test_three_valued_ops () =
  Helpers.check_bool "0 & x = 0" true (Sim.v_and Sim.V0 Sim.Vx = Sim.V0);
  Helpers.check_bool "1 & x = x" true (Sim.v_and Sim.V1 Sim.Vx = Sim.Vx);
  Helpers.check_bool "1 & 1 = 1" true (Sim.v_and Sim.V1 Sim.V1 = Sim.V1);
  Helpers.check_bool "~x = x" true (Sim.v_not Sim.Vx = Sim.Vx);
  Helpers.check_bool "~0 = 1" true (Sim.v_not Sim.V0 = Sim.V1)

let test_combinational () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Net.add_input net "b" in
  let g = Net.add_xor net a b in
  let s = Sim.create net in
  Sim.step s (fun v ->
      if v = Lit.var a then Sim.V1 else if v = Lit.var b then Sim.V0 else Sim.Vx);
  Helpers.check_bool "1 xor 0" true (Sim.value s g = Sim.V1);
  Sim.step s (fun _ -> Sim.V1);
  Helpers.check_bool "1 xor 1" true (Sim.value s g = Sim.V0)

let test_register_delay () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let r = Net.add_reg net ~init:Net.Init1 "r" in
  Net.set_next net r a;
  let s = Sim.create net in
  Sim.step s (fun _ -> Sim.V0);
  Helpers.check_bool "initial value visible at t=0" true (Sim.value s r = Sim.V1);
  Sim.step s (fun _ -> Sim.V1);
  Helpers.check_bool "t=1 sees input from t=0" true (Sim.value s r = Sim.V0);
  Sim.step s (fun _ -> Sim.V0);
  Helpers.check_bool "t=2 sees input from t=1" true (Sim.value s r = Sim.V1)

let test_counter_behaviour () =
  let net = Net.create () in
  let block = Workload.Gen.counter net ~name:"c" ~bits:3 ~enable:Lit.true_ in
  let s = Sim.create net in
  (* free-running 3-bit counter: all-ones first observed at t = 7 *)
  let hit = ref (-1) in
  for t = 0 to 8 do
    Sim.step s (fun _ -> Sim.V0);
    if !hit < 0 && Sim.value s block.Workload.Gen.out = Sim.V1 then hit := t
  done;
  Helpers.check_int "all-ones at t=7" 7 !hit

let test_x_propagation () =
  let net = Net.create () in
  let r = Net.add_reg net ~init:Net.Init_x "r" in
  Net.set_next net r r;
  let s = Sim.create net in
  Sim.step s (fun _ -> Sim.V0);
  Helpers.check_bool "X init stays X" true (Sim.value s r = Sim.Vx);
  (* but a resolved simulation picks a boolean *)
  let s' = Sim.create_resolved ~seed:1 net in
  Sim.step s' (fun _ -> Sim.V0);
  Helpers.check_bool "resolved init is binary" true (Sim.value s' r <> Sim.Vx)

let test_latch_transparency () =
  let net = Net.create ~phases:2 () in
  let a = Net.add_input net "a" in
  let l = Net.add_latch net ~init:Net.Init0 ~phase:0 "l" in
  Net.set_latch_data net l a;
  let s = Sim.create net in
  (* phase 0 at even times: transparent *)
  Sim.step s (fun _ -> Sim.V1);
  Helpers.check_bool "transparent at t=0" true (Sim.value s l = Sim.V1);
  (* phase 1 at odd times: holds the sampled value *)
  Sim.step s (fun _ -> Sim.V0);
  Helpers.check_bool "holds at t=1" true (Sim.value s l = Sim.V1);
  Sim.step s (fun _ -> Sim.V0);
  Helpers.check_bool "transparent again at t=2" true (Sim.value s l = Sim.V0)

let test_latch_chain () =
  (* master/slave pair behaves as a register at odd times *)
  let net = Net.create ~phases:2 () in
  let a = Net.add_input net "a" in
  let m = Net.add_latch net ~init:Net.Init0 ~phase:0 "m" in
  let sl = Net.add_latch net ~init:Net.Init0 ~phase:1 "s" in
  Net.set_latch_data net m a;
  Net.set_latch_data net sl m;
  let s = Sim.create net in
  Sim.step s (fun _ -> Sim.V1);
  Helpers.check_bool "slave holds init at t=0" true (Sim.value s sl = Sim.V0);
  Sim.step s (fun _ -> Sim.V0);
  Helpers.check_bool "slave publishes sample at t=1" true (Sim.value s sl = Sim.V1)

let prop_bsim_agrees_with_sim =
  (* each lane of the bit-parallel simulator follows netlist semantics:
     compare AND-consistency of every gate at each step *)
  Helpers.qtest ~count:50 "bit-parallel lanes consistent"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Workload.Rng.create seed in
      let net, _ = Helpers.rand_net rng ~inputs:3 ~regs:3 ~gates:10 in
      let s = Bsim.create ~seed net in
      let ok = ref true in
      for _ = 1 to 8 do
        Bsim.step_random s;
        Net.iter_nodes net (fun v node ->
            match node with
            | Net.And (a, b) ->
              let got = Bsim.word s (Lit.make v) in
              let expect = Int64.logand (Bsim.word s a) (Bsim.word s b) in
              if not (Int64.equal got expect) then ok := false
            | Net.Const | Net.Input _ | Net.Reg _ | Net.Latch _ -> ())
      done;
      !ok)

let prop_signature_complement =
  Helpers.qtest ~count:50 "signature of complement is complement"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Workload.Rng.create seed in
      let net, pool = Helpers.rand_net rng ~inputs:3 ~regs:2 ~gates:8 in
      let sigs = Bsim.signatures ~seed ~steps:9 net in
      (* sanity via canonical_signature on an arbitrary vertex *)
      List.for_all
        (fun l ->
          let s = sigs.(Lit.var l) in
          let c, flipped = Bsim.canonical_signature s in
          if flipped then Int64.equal c (Int64.lognot s) else Int64.equal c s)
        pool)

let test_run_helper () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let r = Net.add_reg net "r" in
  Net.set_next net r a;
  let values = Sim.run net [ [ true ]; [ false ]; [ true ] ] r in
  Helpers.check_bool "delayed input stream" true
    (values = [ Sim.V0; Sim.V1; Sim.V0 ])

let suite =
  [
    Alcotest.test_case "three-valued operators" `Quick test_three_valued_ops;
    Alcotest.test_case "combinational evaluation" `Quick test_combinational;
    Alcotest.test_case "register delay" `Quick test_register_delay;
    Alcotest.test_case "counter behaviour" `Quick test_counter_behaviour;
    Alcotest.test_case "X propagation" `Quick test_x_propagation;
    Alcotest.test_case "latch transparency" `Quick test_latch_transparency;
    Alcotest.test_case "latch master/slave chain" `Quick test_latch_chain;
    Alcotest.test_case "Sim.run helper" `Quick test_run_helper;
    prop_bsim_agrees_with_sim;
    prop_signature_complement;
  ]
