module Net = Netlist.Net
module Lit = Netlist.Lit

let cutoff = 50

let summaries net =
  let s r = Core.Pipeline.summarize ~cutoff r in
  ( s (Core.Pipeline.original net),
    s (Core.Pipeline.com net),
    s (Core.Pipeline.com_ret_com net) )

let test_monotone_on_gadget_design () =
  let net = Workload.Iscas.by_name "PROLOG" in
  let o, c, r = summaries net in
  Helpers.check_int "paper |T'| original" 14 o.Core.Pipeline.proved_small;
  Helpers.check_int "paper |T'| after COM" 16 c.Core.Pipeline.proved_small;
  Helpers.check_int "paper |T'| after COM,RET,COM" 24 r.Core.Pipeline.proved_small;
  Helpers.check_int "|T| stable" o.Core.Pipeline.total r.Core.Pipeline.total

let test_ret_only_win () =
  let net = Workload.Iscas.by_name "S953" in
  let o, c, r = summaries net in
  Helpers.check_int "original" 3 o.Core.Pipeline.proved_small;
  Helpers.check_int "COM alone does not help" 3 c.Core.Pipeline.proved_small;
  Helpers.check_int "retiming unlocks everything" 23 r.Core.Pipeline.proved_small

let test_translated_bounds_sound_via_bmc () =
  (* every finite translated bound below the cutoff is a real BMC
     completeness threshold on the ORIGINAL netlist: absence of a hit
     within it matches exact reachability *)
  let net = Workload.Iscas.by_name "S27" in
  let report = Core.Pipeline.com_ret_com net in
  List.iter
    (fun tr ->
      if (not (Core.Sat_bound.is_huge tr.Core.Pipeline.bound))
         && tr.Core.Pipeline.bound < cutoff
      then begin
        let t = List.assoc tr.Core.Pipeline.target (Net.targets net) in
        match Core.Exact.explore net t with
        | None -> ()
        | Some e -> (
          match e.Core.Exact.earliest_hit with
          | None -> ()
          | Some hit ->
            Helpers.check_bool
              (Printf.sprintf "hit of %s within bound" tr.Core.Pipeline.target)
              true
              (hit <= tr.Core.Pipeline.bound - 1))
      end)
    report.Core.Pipeline.targets

let prop_pipeline_bounds_sound =
  Helpers.qtest ~count:25 "pipeline-translated bounds cover earliest hits"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_structured seed in
      let report = Core.Pipeline.com_ret_com net in
      match
        List.find_opt
          (fun tr -> String.equal tr.Core.Pipeline.target "t")
          report.Core.Pipeline.targets
      with
      | None -> true (* target collapsed to a constant inside COM *)
      | Some tr ->
        if Core.Sat_bound.is_huge tr.Core.Pipeline.bound then true
        else (
          match Core.Exact.explore net t with
          | None -> true
          | Some e -> (
            match e.Core.Exact.earliest_hit with
            | None -> true
            | Some hit -> hit <= tr.Core.Pipeline.bound - 1)))

let test_phase_front () =
  let base = Workload.Recipe.build (List.nth Workload.Gp.profiles 3) (* D_DASA *) in
  let latched = Workload.Gp.latchify base in
  let abstracted, translator = Core.Pipeline.phase_front latched in
  Helpers.check_bool "factor 2 translator" true
    (String.equal translator.Core.Translate.name "T3(x2)");
  Helpers.check_bool "registers near the base design" true
    (let n = Net.num_regs abstracted in
     n > 0 && n <= Net.num_regs base)

let test_gp_monotone () =
  let latched = Workload.Gp.by_name "L_LRU" in
  let abstracted, _ = Core.Pipeline.phase_front latched in
  let o, c, r = summaries abstracted in
  Helpers.check_int "original" 0 o.Core.Pipeline.proved_small;
  Helpers.check_int "COM win" 12 c.Core.Pipeline.proved_small;
  Helpers.check_int "stays after RET" 12 r.Core.Pipeline.proved_small

let test_summary_average () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let p = Workload.Gen.pipeline net ~name:"p" ~stages:3 ~data:a in
  Net.add_target net "t1" p.Workload.Gen.out;
  Net.add_target net "t2" (List.hd p.Workload.Gen.regs);
  let r = Core.Pipeline.original net in
  let s = Core.Pipeline.summarize ~cutoff r in
  Helpers.check_int "both small" 2 s.Core.Pipeline.proved_small;
  (* bounds 4 and 2 *)
  Helpers.check_bool "average" true (abs_float (s.Core.Pipeline.average -. 3.0) < 1e-9)

let suite =
  [
    Alcotest.test_case "gadget design monotone" `Slow test_monotone_on_gadget_design;
    Alcotest.test_case "RET-only win" `Slow test_ret_only_win;
    Alcotest.test_case "translated bounds sound (BMC)" `Quick
      test_translated_bounds_sound_via_bmc;
    Alcotest.test_case "phase front-end" `Quick test_phase_front;
    Alcotest.test_case "GP COM win" `Slow test_gp_monotone;
    Alcotest.test_case "summary average" `Quick test_summary_average;
    prop_pipeline_bounds_sound;
  ]
