module Net = Netlist.Net
module Lit = Netlist.Lit

let counts net = Core.Classify.netlist_counts net

let test_pipeline_is_ac () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let p = Workload.Gen.pipeline net ~name:"p" ~stages:5 ~data:a in
  Net.add_target net "t" p.Workload.Gen.out;
  let c = counts net in
  Helpers.check_int "all acyclic" 5 c.Core.Classify.ac;
  Helpers.check_int "no gc" 0 c.Core.Classify.gc

let test_counter_is_gc () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Workload.Gen.counter net ~name:"c" ~bits:4 ~enable:a in
  Net.add_target net "t" b.Workload.Gen.out;
  let c = counts net in
  Helpers.check_int "all general" 4 c.Core.Classify.gc;
  (* ripple-carry dependencies run strictly upward, so each bit is its
     own self-looping component, chained by dependency edges *)
  let a = Core.Classify.analyze net in
  Array.iter
    (fun c ->
      match c.Core.Classify.cls with
      | Core.Classify.GC 1 -> ()
      | _ -> Alcotest.fail "expected singleton GC components")
    a.Core.Classify.components;
  (* an LFSR's feedback makes one multi-register component *)
  let net2 = Net.create () in
  let l = Workload.Gen.lfsr net2 ~name:"l" ~bits:4 in
  Net.add_target net2 "t" l.Workload.Gen.out;
  let a2 = Core.Classify.analyze net2 in
  Helpers.check_int "lfsr is one component" 1
    (Array.length a2.Core.Classify.components);
  (match a2.Core.Classify.components.(0).Core.Classify.cls with
  | Core.Classify.GC 4 -> ()
  | _ -> Alcotest.fail "expected GC(4)")

let test_memory_is_mc () =
  let net = Net.create () in
  let a0 = Net.add_input net "a0" in
  let a1 = Net.add_input net "a1" in
  let d = Net.add_input net "d" in
  let w = Net.add_input net "w" in
  let m =
    Workload.Gen.memory net ~name:"m" ~rows:4 ~width:2 ~addr:[ a0; a1 ]
      ~data:[ d; Lit.neg d ] ~write:w
  in
  Net.add_target net "t" m.Workload.Gen.out;
  let analysis = Core.Classify.analyze net in
  let mcs =
    Array.to_list analysis.Core.Classify.components
    |> List.filter_map (fun c ->
           match c.Core.Classify.cls with
           | Core.Classify.MC rows -> Some (rows, List.length c.Core.Classify.regs)
           | _ -> None)
  in
  Helpers.check_bool "one MC with 4 rows and 8 cells" true (mcs = [ (4, 8) ])

let test_queue_is_qc () =
  let net = Net.create () in
  let push = Net.add_input net "push" in
  let d = Net.add_input net "d" in
  let q = Workload.Gen.queue net ~name:"q" ~depth:5 ~width:1 ~push ~data:[ d ] in
  Net.add_target net "t" q.Workload.Gen.out;
  let analysis = Core.Classify.analyze net in
  let qcs =
    Array.to_list analysis.Core.Classify.components
    |> List.filter_map (fun c ->
           match c.Core.Classify.cls with
           | Core.Classify.QC depth -> Some depth
           | _ -> None)
  in
  Helpers.check_bool "one QC of depth 5" true (qcs = [ 5 ])

let test_constants_are_cc () =
  let net = Net.create () in
  let r1 = Net.add_reg net ~init:Net.Init0 "r1" in
  Net.set_next net r1 Lit.false_;
  let r2 = Net.add_reg net ~init:Net.Init1 "r2" in
  Net.set_next net r2 r2;
  (* a register that settles only through the fixpoint: next = r1 | r2'
     where both are constants *)
  let r3 = Net.add_reg net ~init:Net.Init1 "r3" in
  Net.set_next net r3 (Net.add_or net r1 r2);
  Net.add_target net "t" r3;
  let c = counts net in
  Helpers.check_int "all constant" 3 c.Core.Classify.cc

let test_toggle_is_not_mc () =
  (* a counter bit loads a function of itself: must stay GC even
     though its next looks mux-like *)
  let net = Net.create () in
  let en = Net.add_input net "en" in
  let r = Net.add_reg net "r" in
  Net.set_next net r (Net.add_xor net r en);
  Net.add_target net "t" r;
  let c = counts net in
  Helpers.check_int "toggle is GC" 1 c.Core.Classify.gc;
  Helpers.check_int "not a table" 0 c.Core.Classify.table

let test_obscured_chain_reclassifies () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Net.add_input net "b" in
  let c = Net.add_input net "c" in
  let d = Net.add_input net "d" in
  let chain =
    Workload.Gen.obscured_chain net ~name:"o" ~sel:(a, b, c) ~data:d ~len:4
  in
  Net.add_target net "t" chain.Workload.Gen.out;
  let before = counts net in
  Helpers.check_int "GC before COM" 4 before.Core.Classify.gc;
  let reduced, _ = Transform.Com.run net in
  let after = counts reduced.Transform.Rebuild.net in
  Helpers.check_int "table after COM" 4 after.Core.Classify.table;
  Helpers.check_int "no GC after COM" 0 after.Core.Classify.gc

let test_latch_classification () =
  (* classification works on latch netlists too: a latchified pipeline
     is acyclic *)
  let base = Net.create () in
  let a = Net.add_input base "a" in
  let p = Workload.Gen.pipeline base ~name:"p" ~stages:3 ~data:a in
  Net.add_target base "t" p.Workload.Gen.out;
  let latched = Workload.Gp.latchify base in
  let c = counts latched in
  Helpers.check_int "latch pairs acyclic" 6 c.Core.Classify.ac

let prop_counts_partition_registers =
  Helpers.qtest ~count:60 "classes partition the registers"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, _ = Helpers.rand_structured seed in
      let c = counts net in
      c.Core.Classify.cc + c.Core.Classify.ac + c.Core.Classify.table
      + c.Core.Classify.gc
      = Net.num_regs net + Net.num_latches net)

let prop_every_reg_in_a_component =
  Helpers.qtest ~count:60 "analysis covers every register"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, _ = Helpers.rand_structured seed in
      let a = Core.Classify.analyze net in
      List.for_all
        (fun v -> Hashtbl.mem a.Core.Classify.of_reg v)
        (Net.regs net))

let suite =
  [
    Alcotest.test_case "pipeline -> AC" `Quick test_pipeline_is_ac;
    Alcotest.test_case "counter -> GC" `Quick test_counter_is_gc;
    Alcotest.test_case "memory -> MC" `Quick test_memory_is_mc;
    Alcotest.test_case "queue -> QC" `Quick test_queue_is_qc;
    Alcotest.test_case "constants -> CC" `Quick test_constants_are_cc;
    Alcotest.test_case "toggle is not a table cell" `Quick test_toggle_is_not_mc;
    Alcotest.test_case "obscured chain reclassifies" `Quick
      test_obscured_chain_reclassifies;
    Alcotest.test_case "latch netlists classify" `Quick test_latch_classification;
    prop_counts_partition_registers;
    prop_every_reg_in_a_component;
  ]
