module Net = Netlist.Net
module Lit = Netlist.Lit

let bound net name = (Core.Bound.target_named net name).Core.Bound.bound

let test_combinational_target () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Net.add_input net "b" in
  Net.add_target net "t" (Net.add_and net a b);
  Helpers.check_int "combinational diameter is 1" 1 (bound net "t")

let test_pipeline_closed_form () =
  (* the i-th register of an input-fed pipeline has diameter i + 1
     (the paper's Section 3.2 example) *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let p = Workload.Gen.pipeline net ~name:"p" ~stages:6 ~data:a in
  List.iteri
    (fun i r -> Net.add_target net (Printf.sprintf "t%d" i) r)
    p.Workload.Gen.regs;
  List.iteri
    (fun i _ ->
      Helpers.check_int
        (Printf.sprintf "stage %d bounded at %d" i (i + 2))
        (i + 2)
        (bound net (Printf.sprintf "t%d" i)))
    p.Workload.Gen.regs

let test_counter_exponential () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let c = Workload.Gen.counter net ~name:"c" ~bits:5 ~enable:a in
  Net.add_target net "t" c.Workload.Gen.out;
  Helpers.check_int "2^bits" 32 (bound net "t")

let test_memory_multiplier () =
  let net = Net.create () in
  let a0 = Net.add_input net "a0" in
  let a1 = Net.add_input net "a1" in
  let d = Net.add_input net "d" in
  let w = Net.add_input net "w" in
  let m =
    Workload.Gen.memory net ~name:"m" ~rows:4 ~width:1 ~addr:[ a0; a1 ]
      ~data:[ d ] ~write:w
  in
  Net.add_target net "t" m.Workload.Gen.out;
  Helpers.check_int "rows + 1" 5 (bound net "t")

let test_queue_multiplier () =
  let net = Net.create () in
  let push = Net.add_input net "push" in
  let d = Net.add_input net "d" in
  let q = Workload.Gen.queue net ~name:"q" ~depth:4 ~width:1 ~push ~data:[ d ] in
  Net.add_target net "t" q.Workload.Gen.out;
  Helpers.check_int "depth + 1" 5 (bound net "t")

let test_series_composition () =
  (* pipeline feeding a memory's data: effects compose *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let a0 = Net.add_input net "a0" in
  let w = Net.add_input net "w" in
  let p = Workload.Gen.pipeline net ~name:"p" ~stages:3 ~data:a in
  let m =
    Workload.Gen.memory net ~name:"m" ~rows:2 ~width:1 ~addr:[ a0 ]
      ~data:[ p.Workload.Gen.out ] ~write:w
  in
  Net.add_target net "t" m.Workload.Gen.out;
  (* (1 + 3 stages) * (2 rows + 1) *)
  Helpers.check_int "composed bound" 12 (bound net "t")

let test_parallel_max () =
  (* parallel pipelines contribute their maximum, not their sum *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Net.add_input net "b" in
  let p1 = Workload.Gen.pipeline net ~name:"p1" ~stages:7 ~data:a in
  let p2 = Workload.Gen.pipeline net ~name:"p2" ~stages:2 ~data:b in
  Net.add_target net "t" (Net.add_and net p1.Workload.Gen.out p2.Workload.Gen.out);
  Helpers.check_int "max of branches" 8 (bound net "t")

let test_input_xor_refinement () =
  (* Definition 3's XOR example: an XOR with a fresh input has
     diameter 1 regardless of the sequential side *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let fresh = Net.add_input net "fresh" in
  let c = Workload.Gen.counter net ~name:"c" ~bits:6 ~enable:a in
  let t = Net.add_xor net fresh c.Workload.Gen.out in
  Net.add_target net "t" t;
  Helpers.check_int "input-controlled diameter" 1 (bound net "t");
  Helpers.check_bool "detected as input controlled" true
    (Core.Bound.input_controlled net t)

let test_input_xor_requires_freshness () =
  (* if the "fresh" input also drives the counter enable it is not
     free at the XOR *)
  let net = Net.create () in
  let shared = Net.add_input net "shared" in
  let c = Workload.Gen.counter net ~name:"c" ~bits:4 ~enable:shared in
  let t = Net.add_xor net shared c.Workload.Gen.out in
  Net.add_target net "t" t;
  Helpers.check_bool "shared input not free" false
    (Core.Bound.input_controlled net t)

let test_constant_shielding () =
  (* a stuck register between a big component and the target shields
     the bound *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let c = Workload.Gen.counter net ~name:"c" ~bits:8 ~enable:a in
  let stuck = Net.add_reg net ~init:Net.Init0 "stuck" in
  Net.set_next net stuck (Net.add_and net c.Workload.Gen.out Lit.false_) ;
  Net.add_target net "t" stuck;
  Helpers.check_int "shielded" 1 (bound net "t")

let test_huge_bound_saturates () =
  let net = Net.create () in
  let rng = Workload.Rng.create 1 in
  let ins = List.init 4 (fun i -> Net.add_input net (Printf.sprintf "i%d" i)) in
  let f = Workload.Gen.fsm net rng ~name:"f" ~bits:80 ~inputs:ins in
  Net.add_target net "t" f.Workload.Gen.out;
  Helpers.check_bool "saturated" true (Core.Sat_bound.is_huge (bound net "t"))

let prop_completeness_random =
  (* THE soundness property: a BMC run to depth bound-1 with no hit is
     a proof; cross-check against exact reachability on random
     netlists *)
  Helpers.qtest ~count:80 "bound is a sound completeness threshold (random)"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_net_with_target seed ~inputs:3 ~regs:5 ~gates:12 in
      let b = (Core.Bound.target net t).Core.Bound.bound in
      if Core.Sat_bound.is_huge b then true
      else
        match Core.Exact.explore net t with
        | None -> true
        | Some e -> (
          match e.Core.Exact.earliest_hit with
          | None -> true
          | Some hit -> hit <= b - 1))

let prop_completeness_structured =
  Helpers.qtest ~count:60 "bound is a sound completeness threshold (structured)"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_structured seed in
      let b = (Core.Bound.target net t).Core.Bound.bound in
      if Core.Sat_bound.is_huge b then true
      else
        match Core.Exact.explore net t with
        | None -> true
        | Some e -> (
          match e.Core.Exact.earliest_hit with
          | None -> true
          | Some hit -> hit <= b - 1))

let prop_all_targets_agrees_with_target =
  Helpers.qtest ~count:40 "all_targets matches per-target analysis"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, _ = Helpers.rand_structured seed in
      let shared = Core.Bound.all_targets net in
      List.for_all
        (fun (name, b) ->
          let solo = Core.Bound.target_named net name in
          b.Core.Bound.bound = solo.Core.Bound.bound)
        shared)

let suite =
  [
    Alcotest.test_case "combinational" `Quick test_combinational_target;
    Alcotest.test_case "pipeline closed form" `Quick test_pipeline_closed_form;
    Alcotest.test_case "counter exponential" `Quick test_counter_exponential;
    Alcotest.test_case "memory multiplier" `Quick test_memory_multiplier;
    Alcotest.test_case "queue multiplier" `Quick test_queue_multiplier;
    Alcotest.test_case "series composition" `Quick test_series_composition;
    Alcotest.test_case "parallel max" `Quick test_parallel_max;
    Alcotest.test_case "input-XOR refinement" `Quick test_input_xor_refinement;
    Alcotest.test_case "freshness required" `Quick test_input_xor_requires_freshness;
    Alcotest.test_case "constant shielding" `Quick test_constant_shielding;
    Alcotest.test_case "saturation" `Quick test_huge_bound_saturates;
    prop_completeness_random;
    prop_completeness_structured;
    prop_all_targets_agrees_with_target;
  ]

(* appended: Definition 3's second worked example *)
let test_definition3_free_chain () =
  (* i0 -> r1 (init i1) -> r2 (init i2): d(r2) = 1 — the
     nondeterministic initial values model the paper's input-driven
     initialization.  (Observed alone: any extra fanout of the chain
     would correlate it with the rest of the design.) *)
  let chain () =
    let net = Net.create () in
    let i0 = Net.add_input net "i0" in
    let r1 = Net.add_reg net ~init:Net.Init_x "r1" in
    let r2 = Net.add_reg net ~init:Net.Init_x "r2" in
    Net.set_next net r1 i0;
    Net.set_next net r2 r1;
    (net, r1, r2)
  in
  let net, _, r2 = chain () in
  Net.add_target net "r2" r2;
  Helpers.check_int "d(r2) = 1" 1 (bound net "r2");
  Helpers.check_bool "r2 is input-controlled" true
    (Core.Bound.input_controlled net r2);
  (* a joint observation correlates the two registers: the paper's
     d(r1, r2) = 2; our bound must cover it *)
  let net', r1', r2' = chain () in
  Net.add_target net' "joint" (Net.add_and net' r1' r2');
  Helpers.check_bool "joint bound covers d = 2" true (bound net' "joint" >= 2)

let test_free_chain_requires_x_init () =
  (* a constant initial value breaks freeness: the register's value at
     time 0 is forced *)
  let net = Net.create () in
  let i0 = Net.add_input net "i0" in
  let r = Net.add_reg net ~init:Net.Init0 "r" in
  Net.set_next net r i0;
  Net.add_target net "r" r;
  Helpers.check_bool "constant init is not free" false
    (Core.Bound.input_controlled net r);
  Helpers.check_int "falls back to the AC bound" 2 (bound net "r")

let test_free_chain_requires_exclusive_fanout () =
  (* if the chain's source also feeds other logic, values at different
     time steps are correlated with the rest of the design *)
  let net = Net.create () in
  let i0 = Net.add_input net "i0" in
  let r1 = Net.add_reg net ~init:Net.Init_x "r1" in
  let r2 = Net.add_reg net ~init:Net.Init_x "r2" in
  Net.set_next net r1 i0;
  Net.set_next net r2 r1;
  (* r1 also observed directly: its fanout is no longer exclusive *)
  Net.add_target net "both" (Net.add_and net r2 (Lit.neg r1));
  Net.add_target net "r2" r2;
  Helpers.check_bool "shared chain is not free" false
    (Core.Bound.input_controlled net
       (List.assoc "r2" (Net.targets net)))

let test_xor_with_free_register () =
  (* the XOR refinement extends to free registers *)
  let net = Net.create () in
  let i0 = Net.add_input net "i0" in
  let free = Net.add_reg net ~init:Net.Init_x "free" in
  Net.set_next net free i0;
  let c = Workload.Gen.counter net ~name:"c" ~bits:6 ~enable:Lit.true_ in
  Net.add_target net "t" (Net.add_xor net free c.Workload.Gen.out);
  Helpers.check_int "xor with free register" 1 (bound net "t")

let suite =
  suite
  @ [
      Alcotest.test_case "Definition 3 free chain" `Quick
        test_definition3_free_chain;
      Alcotest.test_case "freeness needs X init" `Quick
        test_free_chain_requires_x_init;
      Alcotest.test_case "freeness needs exclusive fanout" `Quick
        test_free_chain_requires_exclusive_fanout;
      Alcotest.test_case "XOR with free register" `Quick
        test_xor_with_free_register;
    ]
