module Net = Netlist.Net
module Lit = Netlist.Lit

let test_counter_depth () =
  let net = Net.create () in
  let c = Workload.Gen.counter net ~name:"c" ~bits:4 ~enable:Lit.true_ in
  Net.add_target net "t" c.Workload.Gen.out;
  let t = List.assoc "t" (Net.targets net) in
  match Core.Symbolic.explore net t with
  | None -> Alcotest.fail "small counter must be explorable"
  | Some r ->
    Helpers.check_int "sequential depth 15" 15 r.Core.Symbolic.sequential_depth;
    Helpers.check_bool "16 states" true (r.Core.Symbolic.reachable = 16.);
    Helpers.check_bool "hit at 15" true (r.Core.Symbolic.earliest_hit = Some 15)

let test_queue_beyond_explicit_limit () =
  (* 20 registers: past the explicit oracle's default, fine for BDDs *)
  let net = Net.create () in
  let push = Net.add_input net "push" in
  let d = Net.add_input net "d" in
  let q = Workload.Gen.queue net ~name:"q" ~depth:20 ~width:1 ~push ~data:[ d ] in
  Net.add_target net "t" q.Workload.Gen.out;
  let t = List.assoc "t" (Net.targets net) in
  Helpers.check_bool "explicit oracle declines" true
    (Core.Exact.explore net t = None);
  match Core.Symbolic.explore net t with
  | None -> Alcotest.fail "symbolic oracle should handle 20 registers"
  | Some r ->
    Helpers.check_int "fills in 20 pushes" 20 r.Core.Symbolic.sequential_depth;
    Helpers.check_bool "2^20 states" true (r.Core.Symbolic.reachable = 1048576.);
    Helpers.check_bool "head filled after 20 pushes" true
      (r.Core.Symbolic.earliest_hit = Some 20)

let test_x_init () =
  let net = Net.create () in
  let r = Net.add_reg net ~init:Net.Init_x "r" in
  Net.set_next net r r;
  Net.add_target net "t" r;
  match Core.Symbolic.explore net (List.assoc "t" (Net.targets net)) with
  | None -> Alcotest.fail "explorable"
  | Some res ->
    Helpers.check_bool "both initial states" true (res.Core.Symbolic.reachable = 2.);
    Helpers.check_bool "hit at 0" true (res.Core.Symbolic.earliest_hit = Some 0)

let test_limits () =
  let net = Net.create () in
  let l = Workload.Gen.lfsr net ~name:"l" ~bits:8 in
  Net.add_target net "t" l.Workload.Gen.out;
  Helpers.check_bool "reg limit respected" true
    (Core.Symbolic.explore ~reg_limit:4 net (List.assoc "t" (Net.targets net))
    = None)

let prop_agrees_with_explicit =
  Helpers.qtest ~count:40 "symbolic and explicit oracles agree"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_net_with_target seed ~inputs:3 ~regs:4 ~gates:10 in
      match (Core.Symbolic.explore net t, Core.Exact.explore net t) with
      | Some s, Some e ->
        s.Core.Symbolic.sequential_depth + 1 = e.Core.Exact.init_diameter
        && s.Core.Symbolic.reachable = float_of_int e.Core.Exact.reachable
        && s.Core.Symbolic.earliest_hit = e.Core.Exact.earliest_hit
      | None, _ | _, None -> true)

let prop_structural_bound_dominates =
  (* the overapproximation story end-to-end: d̂ >= exact sequential
     depth + 1 whenever both are available *)
  Helpers.qtest ~count:40 "structural bound dominates the exact depth"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_structured seed in
      match Core.Symbolic.explore net t with
      | None -> true
      | Some s -> (
        match s.Core.Symbolic.earliest_hit with
        | None -> true
        | Some hit ->
          let b = (Core.Bound.target net t).Core.Bound.bound in
          Core.Sat_bound.is_huge b || hit <= b - 1))

let suite =
  [
    Alcotest.test_case "counter depth" `Quick test_counter_depth;
    Alcotest.test_case "queue past explicit limit" `Quick
      test_queue_beyond_explicit_limit;
    Alcotest.test_case "X init" `Quick test_x_init;
    Alcotest.test_case "limits" `Quick test_limits;
    prop_agrees_with_explicit;
    prop_structural_bound_dominates;
  ]
