module Vec = Sat.Vec

(* model-based property: a Vec behaves like the list of its pushes *)
let prop_model =
  Helpers.qtest ~count:200 "vec matches a list model"
    QCheck.(list (int_range 0 3))
    (fun ops ->
      let v = Vec.create ~dummy:(-1) () in
      let model = ref [] in
      let ok = ref true in
      List.iteri
        (fun i op ->
          match op with
          | 0 -> (
            Vec.push v i;
            model := !model @ [ i ])
          | 1 -> (
            match !model with
            | [] -> (
              match Vec.pop v with
              | exception Invalid_argument _ -> ()
              | _ -> ok := false)
            | _ ->
              let x = Vec.pop v in
              let expected = List.nth !model (List.length !model - 1) in
              if x <> expected then ok := false;
              model := List.filteri (fun j _ -> j < List.length !model - 1) !model)
          | 2 ->
            if Vec.size v > 0 then begin
              let n = Vec.size v / 2 in
              Vec.shrink v n;
              model := List.filteri (fun j _ -> j < n) !model
            end
          | _ ->
            if Vec.size v > 0 then begin
              (* swap_remove index 0 *)
              Vec.swap_remove v 0;
              model :=
                (match List.rev !model with
                | [] -> []
                | last :: _ ->
                  List.filteri (fun j _ -> j < List.length !model - 1)
                    (last :: List.tl !model))
            end)
        ops;
      !ok
      && Vec.size v = List.length !model
      && Vec.to_list v = !model)

let test_basics () =
  let v = Vec.create ~dummy:0 () in
  Helpers.check_int "empty" 0 (Vec.size v);
  Vec.push v 10;
  Vec.push v 20;
  Helpers.check_int "size" 2 (Vec.size v);
  Helpers.check_int "get" 20 (Vec.get v 1);
  Vec.set v 0 99;
  Helpers.check_int "set" 99 (Vec.get v 0);
  Helpers.check_int "last" 20 (Vec.last v);
  Helpers.check_bool "exists" true (Vec.exists (( = ) 99) v);
  Vec.sort compare v;
  Helpers.check_bool "sorted" true (Vec.to_list v = [ 20; 99 ]);
  Vec.clear v;
  Helpers.check_int "cleared" 0 (Vec.size v)

let test_bounds () =
  let v = Vec.create ~dummy:0 () in
  Alcotest.check_raises "get out of range" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 0));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop") (fun () ->
      ignore (Vec.pop v));
  Alcotest.check_raises "shrink negative" (Invalid_argument "Vec.shrink")
    (fun () -> Vec.shrink v 1)

let test_growth () =
  let v = Vec.create ~capacity:1 ~dummy:0 () in
  for i = 0 to 999 do
    Vec.push v i
  done;
  Helpers.check_int "grew" 1000 (Vec.size v);
  Helpers.check_int "content intact" 567 (Vec.get v 567)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "growth" `Quick test_growth;
    prop_model;
  ]
