module Net = Netlist.Net
module Lit = Netlist.Lit
module Sim = Netlist.Sim

(* a small register design to latchify: toggling counter + pipeline *)
let base_design seed =
  let rng = Workload.Rng.create seed in
  let net = Net.create () in
  let ins = List.init 3 (fun i -> Net.add_input net (Printf.sprintf "i%d" i)) in
  let c =
    Workload.Gen.counter net ~name:"c"
      ~bits:(1 + Workload.Rng.int rng 2)
      ~enable:(Workload.Rng.pick rng ins)
  in
  let p =
    Workload.Gen.pipeline net ~name:"p"
      ~stages:(1 + Workload.Rng.int rng 3)
      ~data:(Workload.Rng.pick rng ins)
  in
  let t = Net.add_or net c.Workload.Gen.out p.Workload.Gen.out in
  Net.add_target net "t" t;
  (net, t)

let test_identity_on_register_netlists () =
  let net, _ = base_design 3 in
  let r = Transform.Phase.run net in
  Helpers.check_int "factor 1" 1 r.Transform.Phase.factor;
  Helpers.check_int "same registers" (Net.num_regs net)
    (Net.num_regs r.Transform.Phase.net)

let test_latchify_structure () =
  let net, _ = base_design 4 in
  let latched = Workload.Gp.latchify net in
  Helpers.check_int "two latches per register" (2 * Net.num_regs net)
    (Net.num_latches latched);
  Helpers.check_int "no registers" 0 (Net.num_regs latched);
  Helpers.check_int "two phases" 2 (Net.phases latched)

let test_abstraction_recovers_registers () =
  let net, _ = base_design 5 in
  let latched = Workload.Gp.latchify net in
  let abs = Transform.Phase.run latched in
  Helpers.check_int "factor 2" 2 abs.Transform.Phase.factor;
  (* registers come back for every latch sampled across a major-cycle
     boundary; sink registers observed only combinationally dissolve,
     so the abstraction may even be slightly smaller than the base *)
  Helpers.check_bool "register count near the base design" true
    (let n = Net.num_regs abs.Transform.Phase.net in
     n > 0 && n <= Net.num_regs net)

(* drive the latchified netlist with inputs held stable across each
   major cycle and compare against the abstraction *)
let folded_equivalent latched abs_net steps =
  let t_latched = List.assoc "t" (Net.targets latched) in
  let t_abs = List.assoc "t" (Net.targets abs_net) in
  Transform.Equiv.sim_equivalent ~fold:2 ~steps latched t_latched abs_net t_abs

let test_folding_semantics () =
  let net, _ = base_design 6 in
  let latched = Workload.Gp.latchify net in
  let abs = Transform.Phase.run latched in
  Helpers.check_bool "abstraction folds time modulo 2" true
    (folded_equivalent latched abs.Transform.Phase.net 20)

let prop_folding_semantics =
  Helpers.qtest ~count:30 "phase abstraction folds time modulo c"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, _ = base_design seed in
      let latched = Workload.Gp.latchify net in
      let abs = Transform.Phase.run latched in
      folded_equivalent latched abs.Transform.Phase.net 16)

let prop_theorem3_bound =
  (* Theorem 3: the earliest hit in the latchified design is below
     c * d(abstracted) *)
  Helpers.qtest ~count:30 "c * d covers the original earliest hit"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = base_design seed in
      let latched = Workload.Gp.latchify net in
      let abs = Transform.Phase.run latched in
      let b = Core.Bound.target_named abs.Transform.Phase.net "t" in
      let translated =
        (Core.Translate.state_folding ~factor:abs.Transform.Phase.factor)
          .Core.Translate.apply b.Core.Bound.bound
      in
      if Core.Sat_bound.is_huge translated then true
      else
        (* earliest hit in the base register design at step T appears
           in the latchified design at time 2T+1 < 2 * (T + 1) *)
        match Core.Exact.explore net t with
        | None -> true
        | Some e -> (
          match e.Core.Exact.earliest_hit with
          | None -> true
          | Some hit -> (2 * hit) + 1 <= translated - 1))

let test_improper_coloring_rejected () =
  (* a phase-0 latch fed by another phase-0 latch through logic is not
     c-colorable: the wrap logic would recurse *)
  let net = Net.create ~phases:2 () in
  let a = Net.add_input net "a" in
  let l1 = Net.add_latch net ~phase:0 "l1" in
  let l2 = Net.add_latch net ~phase:0 "l2" in
  Net.set_latch_data net l1 a;
  Net.set_latch_data net l2 l1;
  Net.add_target net "t" l2;
  match Transform.Phase.run net with
  | exception Failure _ -> ()
  | r ->
    (* same-phase chains are transparent together; accept a netlist
       that still folds with factor 2 *)
    Helpers.check_int "factor" 2 r.Transform.Phase.factor

let suite =
  [
    Alcotest.test_case "identity on register netlists" `Quick
      test_identity_on_register_netlists;
    Alcotest.test_case "latchify structure" `Quick test_latchify_structure;
    Alcotest.test_case "abstraction recovers registers" `Quick
      test_abstraction_recovers_registers;
    Alcotest.test_case "folding semantics" `Quick test_folding_semantics;
    Alcotest.test_case "improper coloring" `Quick test_improper_coloring_rejected;
    prop_folding_semantics;
    prop_theorem3_bound;
  ]

let test_three_phase_folding () =
  let net, _ = base_design 9 in
  let latched = Workload.Gp.latchify ~phases:3 net in
  Helpers.check_int "three latches per register" (3 * Net.num_regs net)
    (Net.num_latches latched);
  let abs = Transform.Phase.run latched in
  Helpers.check_int "factor 3" 3 abs.Transform.Phase.factor;
  let t_latched = List.assoc "t" (Net.targets latched) in
  let t_abs = List.assoc "t" (Net.targets abs.Transform.Phase.net) in
  Helpers.check_bool "folds time modulo 3" true
    (Transform.Equiv.sim_equivalent ~fold:3 ~steps:14 latched t_latched
       abs.Transform.Phase.net t_abs)

let prop_multiphase_folding =
  Helpers.qtest ~count:20 "c-phase abstraction folds time modulo c"
    QCheck.(pair (int_bound 1000000) (int_range 2 4))
    (fun (seed, c) ->
      let net, _ = base_design seed in
      let latched = Workload.Gp.latchify ~phases:c net in
      let abs = Transform.Phase.run latched in
      abs.Transform.Phase.factor = c
      &&
      let t_latched = List.assoc "t" (Net.targets latched) in
      let t_abs = List.assoc "t" (Net.targets abs.Transform.Phase.net) in
      Transform.Equiv.sim_equivalent ~fold:c ~steps:10 latched t_latched
        abs.Transform.Phase.net t_abs)

let suite =
  suite
  @ [
      Alcotest.test_case "three-phase folding" `Quick test_three_phase_folding;
      prop_multiphase_folding;
    ]
