test/test_pipeline.ml: Alcotest Core Helpers List Netlist Printf QCheck String Workload
