test/test_vcd.ml: Alcotest Array Bmc Helpers List Netlist Printf String Textio Workload
