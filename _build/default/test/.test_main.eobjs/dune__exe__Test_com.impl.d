test/test_com.ml: Alcotest Helpers List Netlist Printf QCheck Transform Workload
