test/test_induction.ml: Alcotest Bmc Core Helpers List Netlist QCheck Workload
