test/helpers.ml: Alcotest Hashtbl List Netlist Printf QCheck QCheck_alcotest Random Workload
