test/test_workload.ml: Alcotest Helpers List Netlist Printf String Textio Workload
