test/test_net.ml: Alcotest Array Hashtbl Helpers List Netlist QCheck Workload
