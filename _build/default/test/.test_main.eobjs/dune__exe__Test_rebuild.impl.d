test/test_rebuild.ml: Alcotest Array Helpers List Netlist QCheck Transform
