test/test_bmc.ml: Alcotest Bmc Core Helpers List Netlist Option QCheck Workload
