test/test_van_eijk.ml: Alcotest Core Helpers List Netlist QCheck Transform Workload
