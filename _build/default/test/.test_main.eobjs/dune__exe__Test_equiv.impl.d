test/test_equiv.ml: Alcotest Helpers Netlist Transform Workload
