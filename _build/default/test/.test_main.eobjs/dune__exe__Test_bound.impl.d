test/test_bound.ml: Alcotest Core Helpers List Netlist Printf QCheck Workload
