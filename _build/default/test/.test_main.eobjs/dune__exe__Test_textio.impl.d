test/test_textio.ml: Alcotest Helpers List Netlist QCheck String Textio Transform
