test/test_cslow.ml: Alcotest Core Helpers List Netlist Printf QCheck Transform Workload
