test/test_classify.ml: Alcotest Array Core Hashtbl Helpers List Netlist QCheck Transform Workload
