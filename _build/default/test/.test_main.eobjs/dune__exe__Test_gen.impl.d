test/test_gen.ml: Alcotest Hashtbl Helpers List Netlist Printf Workload
