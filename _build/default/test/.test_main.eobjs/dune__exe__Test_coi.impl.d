test/test_coi.ml: Alcotest Array Helpers List Netlist QCheck
