test/test_translate.ml: Alcotest Core Helpers List QCheck String
