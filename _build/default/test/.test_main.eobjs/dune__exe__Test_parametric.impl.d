test/test_parametric.ml: Alcotest Core Hashtbl Helpers List Netlist Printf QCheck Transform Workload
