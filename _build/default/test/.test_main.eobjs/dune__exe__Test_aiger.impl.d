test/test_aiger.ml: Alcotest Helpers List Netlist QCheck Textio Transform
