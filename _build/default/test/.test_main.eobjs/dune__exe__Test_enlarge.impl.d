test/test_enlarge.ml: Alcotest Bmc Core Helpers Netlist Option Transform Workload
