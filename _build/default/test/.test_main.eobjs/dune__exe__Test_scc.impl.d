test/test_scc.ml: Alcotest Array Helpers List Netlist QCheck Workload
