test/test_bdd.ml: Alcotest Array Bdd Helpers List QCheck Workload
