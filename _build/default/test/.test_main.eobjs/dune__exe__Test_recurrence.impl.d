test/test_recurrence.ml: Alcotest Core Helpers List Netlist QCheck Workload
