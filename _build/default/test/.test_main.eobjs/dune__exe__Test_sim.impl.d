test/test_sim.ml: Alcotest Array Helpers Int64 List Netlist QCheck Workload
