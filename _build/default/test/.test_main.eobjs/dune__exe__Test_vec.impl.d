test/test_vec.ml: Alcotest Helpers List QCheck Sat
