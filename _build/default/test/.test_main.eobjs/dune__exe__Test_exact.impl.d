test/test_exact.ml: Alcotest Core Helpers List Netlist Option Workload
