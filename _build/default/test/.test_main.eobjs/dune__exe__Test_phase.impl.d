test/test_phase.ml: Alcotest Core Helpers List Netlist Printf QCheck Transform Workload
