test/test_unsound.ml: Alcotest Bmc Core Helpers List Netlist Option Printf Transform Workload
