test/test_symbolic.ml: Alcotest Core Helpers List Netlist QCheck Workload
