test/test_encode.ml: Alcotest Encode Hashtbl Helpers List Netlist QCheck Sat Workload
