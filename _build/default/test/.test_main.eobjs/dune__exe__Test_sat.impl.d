test/test_sat.ml: Alcotest Array Helpers List QCheck Sat Workload
