test/test_engine.ml: Alcotest Bmc Core Format Helpers List Netlist Printf QCheck String Workload
