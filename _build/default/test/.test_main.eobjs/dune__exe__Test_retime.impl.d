test/test_retime.ml: Alcotest Core Helpers List Netlist Printf QCheck Transform Workload
