test/test_lit.ml: Alcotest Helpers Netlist QCheck
