module Net = Netlist.Net
module Lit = Netlist.Lit

let run net = fst (Transform.Com.run net)

let test_merges_associations () =
  (* (a & b) & c vs a & (b & c): only SAT sweeping sees through *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Net.add_input net "b" in
  let c = Net.add_input net "c" in
  let left = Net.add_and net (Net.add_and net a b) c in
  let right = Net.add_and net a (Net.add_and net b c) in
  Net.add_target net "t" (Net.add_xor net left right);
  let reduced, stats = Transform.Com.run net in
  Helpers.check_bool "some merges happened" true (stats.Transform.Com.merged_ands > 0);
  let t' = List.assoc "t" (Net.targets reduced.Transform.Rebuild.net) in
  Helpers.check_bool "xor of equal cones folds to false" true
    (Lit.equal t' Lit.false_)

let test_constant_register_removed () =
  let net = Net.create () in
  let r = Net.add_reg net ~init:Net.Init0 "r" in
  Net.set_next net r Lit.false_;
  let a = Net.add_input net "a" in
  Net.add_target net "t" (Net.add_or net r a);
  let reduced = run net in
  Helpers.check_int "stuck register removed" 0
    (Net.num_regs reduced.Transform.Rebuild.net);
  let t' = List.assoc "t" (Net.targets reduced.Transform.Rebuild.net) in
  Helpers.check_bool "target now the input alone" true
    (Lit.equal t' (Transform.Rebuild.map_lit reduced a))

let test_self_loop_register_removed () =
  let net = Net.create () in
  let r = Net.add_reg net ~init:Net.Init1 "r" in
  Net.set_next net r r;
  Net.add_target net "t" r;
  let reduced = run net in
  Helpers.check_int "self-loop register removed" 0
    (Net.num_regs reduced.Transform.Rebuild.net);
  let t' = List.assoc "t" (Net.targets reduced.Transform.Rebuild.net) in
  Helpers.check_bool "stuck at one" true (Lit.equal t' Lit.true_)

let test_duplicate_registers_merged () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let r1 = Net.add_reg net "r1" in
  let r2 = Net.add_reg net "r2" in
  Net.set_next net r1 a;
  Net.set_next net r2 a;
  Net.add_target net "t" (Net.add_xor net r1 r2);
  let reduced = run net in
  Helpers.check_bool "duplicates collapse the xor" true
    (Lit.equal (List.assoc "t" (Net.targets reduced.Transform.Rebuild.net)) Lit.false_)

let test_x_init_registers_not_merged () =
  (* two X-initialized registers with the same next function disagree
     at time 0 in some trace: merging would be unsound *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let r1 = Net.add_reg net ~init:Net.Init_x "r1" in
  let r2 = Net.add_reg net ~init:Net.Init_x "r2" in
  Net.set_next net r1 a;
  Net.set_next net r2 a;
  Net.add_target net "t" (Net.add_xor net r1 r2);
  let reduced = run net in
  Helpers.check_int "both X registers kept" 2
    (Net.num_regs reduced.Transform.Rebuild.net)

let test_guard_counter_freezes () =
  (* the workload's COM gadget: a counter enabled by a semantically
     false guard must disappear entirely *)
  let net = Net.create () in
  let rng = Workload.Rng.create 5 in
  let inputs = List.init 4 (fun i -> Net.add_input net (Printf.sprintf "i%d" i)) in
  let guard = Workload.Gen.com_guard net rng ~inputs in
  let block = Workload.Gen.counter net ~name:"c" ~bits:4 ~enable:guard in
  Net.add_target net "t" block.Workload.Gen.out;
  let reduced = run net in
  Helpers.check_int "counter frozen and removed" 0
    (Net.num_regs reduced.Transform.Rebuild.net);
  Helpers.check_bool "target constant false" true
    (Lit.equal (List.assoc "t" (Net.targets reduced.Transform.Rebuild.net)) Lit.false_)

let prop_preserves_semantics_sim =
  Helpers.qtest ~count:60 "COM preserves target traces (simulation)"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_net_with_target seed ~inputs:3 ~regs:4 ~gates:14 in
      let reduced = run net in
      let t' = List.assoc "t" (Net.targets reduced.Transform.Rebuild.net) in
      Transform.Equiv.sim_equivalent ~steps:20 net t
        reduced.Transform.Rebuild.net t')

let prop_preserves_semantics_sat =
  Helpers.qtest ~count:30 "COM preserves target traces (SAT, bounded)"
    QCheck.(int_bound 1000000)
    (fun seed ->
      (* restrict to binary-initialized netlists: free X on the two
         sides would be independent *)
      let rng = Workload.Rng.create seed in
      let net = Net.create () in
      let ins = List.init 3 (fun i -> Net.add_input net (Printf.sprintf "i%d" i)) in
      let rs =
        List.init 4 (fun i ->
            Net.add_reg net
              ~init:(if Workload.Rng.bool rng then Net.Init0 else Net.Init1)
              (Printf.sprintf "r%d" i))
      in
      let pool = ref (ins @ rs) in
      let pick () =
        let l = Workload.Rng.pick rng !pool in
        if Workload.Rng.bool rng then Lit.neg l else l
      in
      for _ = 1 to 12 do
        let g = Net.add_and net (pick ()) (pick ()) in
        if not (Lit.is_const g) then pool := g :: !pool
      done;
      List.iter (fun r -> Net.set_next net r (pick ())) rs;
      let t = pick () in
      Net.add_target net "t" t;
      let reduced = run net in
      let t' = List.assoc "t" (Net.targets reduced.Transform.Rebuild.net) in
      Transform.Equiv.sat_equivalent ~depth:6 net t
        reduced.Transform.Rebuild.net t')

let prop_idempotent =
  Helpers.qtest ~count:30 "COM is idempotent on its own output"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, _ = Helpers.rand_net_with_target seed ~inputs:3 ~regs:3 ~gates:10 in
      let once = run net in
      let twice, stats = Transform.Com.run once.Transform.Rebuild.net in
      ignore twice;
      stats.Transform.Com.rounds = 0)

let prop_never_grows =
  Helpers.qtest ~count:50 "COM never adds vertices"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, _ = Helpers.rand_net_with_target seed ~inputs:3 ~regs:4 ~gates:14 in
      let reduced = run net in
      Net.num_vars reduced.Transform.Rebuild.net <= Net.num_vars net)

let suite =
  [
    Alcotest.test_case "association merge" `Quick test_merges_associations;
    Alcotest.test_case "constant register removed" `Quick test_constant_register_removed;
    Alcotest.test_case "self-loop register removed" `Quick test_self_loop_register_removed;
    Alcotest.test_case "duplicate registers merged" `Quick test_duplicate_registers_merged;
    Alcotest.test_case "X-init registers kept apart" `Quick test_x_init_registers_not_merged;
    Alcotest.test_case "guarded counter freezes" `Quick test_guard_counter_freezes;
    prop_preserves_semantics_sim;
    prop_preserves_semantics_sat;
    prop_idempotent;
    prop_never_grows;
  ]
