module Net = Netlist.Net
module Lit = Netlist.Lit

let toggle ~init net name =
  let en = Net.add_input net "en" in
  let r = Net.add_reg net ~init name in
  Net.set_next net r (Net.add_xor net r en);
  r

let test_sim_detects_equivalence () =
  let a = Net.create () in
  let ra = toggle ~init:Net.Init0 a "r" in
  let b = Net.create () in
  let rb = toggle ~init:Net.Init0 b "r" in
  Helpers.check_bool "identical toggles equivalent" true
    (Transform.Equiv.sim_equivalent a ra b rb)

let test_sim_detects_inequivalence () =
  let a = Net.create () in
  let ra = toggle ~init:Net.Init0 a "r" in
  let b = Net.create () in
  let rb = toggle ~init:Net.Init1 b "r" in
  Helpers.check_bool "different inits diverge" false
    (Transform.Equiv.sim_equivalent a ra b rb)

let test_sat_complete_on_bounded_window () =
  let a = Net.create () in
  let ra = toggle ~init:Net.Init0 a "r" in
  let b = Net.create () in
  let rb = toggle ~init:Net.Init1 b "r" in
  Helpers.check_bool "SAT refutes within one frame" false
    (Transform.Equiv.sat_equivalent ~depth:1 a ra b rb);
  (* subtle divergence: equal for 3 steps, then differs *)
  let c = Net.create () in
  let en = Net.add_input c "en" in
  ignore en;
  let p = Workload.Gen.pipeline c ~name:"p" ~stages:3 ~data:Lit.true_ in
  let d = Net.create () in
  let en2 = Net.add_input d "en" in
  ignore en2;
  let q = Workload.Gen.pipeline d ~name:"p" ~stages:4 ~data:Lit.true_ in
  Helpers.check_bool "agree within 3 frames" true
    (Transform.Equiv.sat_equivalent ~depth:3 c p.Workload.Gen.out d
       q.Workload.Gen.out);
  Helpers.check_bool "diverge at frame 4" false
    (Transform.Equiv.sat_equivalent ~depth:5 c p.Workload.Gen.out d
       q.Workload.Gen.out)

let test_sat_ties_inputs_by_name () =
  (* same input name: the two sides see the same stream; different
     names: free on both sides, so an XOR-of-input differs *)
  let a = Net.create () in
  let xa = Net.add_input a "x" in
  let b = Net.create () in
  let xb = Net.add_input b "x" in
  Helpers.check_bool "same name tied" true
    (Transform.Equiv.sat_equivalent ~depth:3 a xa b xb);
  let c = Net.create () in
  let xc = Net.add_input c "other" in
  Helpers.check_bool "different names free" false
    (Transform.Equiv.sat_equivalent ~depth:3 a xa c xc)

let test_skew_window () =
  (* a 2-stage pipeline equals its source skewed by 2 *)
  let a = Net.create () in
  let xa = Net.add_input a "x" in
  let src = Net.add_xor a xa (Lit.neg xa) in
  ignore src;
  let p = Workload.Gen.pipeline a ~name:"p" ~stages:2 ~data:xa in
  let b = Net.create () in
  let xb = Net.add_input b "x" in
  (* the pipeline output at t+2 equals the raw input at t *)
  Helpers.check_bool "pipeline output = source skewed" true
    (Transform.Equiv.sim_equivalent ~skew:2 a p.Workload.Gen.out b xb);
  Helpers.check_bool "wrong skew detected" false
    (Transform.Equiv.sim_equivalent ~skew:1 a p.Workload.Gen.out b xb)

let suite =
  [
    Alcotest.test_case "sim equivalence" `Quick test_sim_detects_equivalence;
    Alcotest.test_case "sim inequivalence" `Quick test_sim_detects_inequivalence;
    Alcotest.test_case "sat bounded window" `Quick test_sat_complete_on_bounded_window;
    Alcotest.test_case "sat input tying" `Quick test_sat_ties_inputs_by_name;
    Alcotest.test_case "skew window" `Quick test_skew_window;
  ]
