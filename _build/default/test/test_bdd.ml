(* Random formulas checked against truth-table semantics. *)

type formula =
  | Var of int
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Xor of formula * formula

let rec gen_formula rng depth nv =
  if depth = 0 || Workload.Rng.int rng 4 = 0 then Var (Workload.Rng.int rng nv)
  else
    match Workload.Rng.int rng 4 with
    | 0 -> Not (gen_formula rng (depth - 1) nv)
    | 1 -> And (gen_formula rng (depth - 1) nv, gen_formula rng (depth - 1) nv)
    | 2 -> Or (gen_formula rng (depth - 1) nv, gen_formula rng (depth - 1) nv)
    | _ -> Xor (gen_formula rng (depth - 1) nv, gen_formula rng (depth - 1) nv)

let rec eval env = function
  | Var i -> env.(i)
  | Not a -> not (eval env a)
  | And (a, b) -> eval env a && eval env b
  | Or (a, b) -> eval env a || eval env b
  | Xor (a, b) -> eval env a <> eval env b

let rec build man = function
  | Var i -> Bdd.var man i
  | Not a -> Bdd.bnot man (build man a)
  | And (a, b) -> Bdd.band man (build man a) (build man b)
  | Or (a, b) -> Bdd.bor man (build man a) (build man b)
  | Xor (a, b) -> Bdd.bxor man (build man a) (build man b)

let forall_envs nv f =
  let ok = ref true in
  for bits = 0 to (1 lsl nv) - 1 do
    let env = Array.init nv (fun i -> bits land (1 lsl i) <> 0) in
    if not (f env) then ok := false
  done;
  !ok

let with_formula seed k =
  let rng = Workload.Rng.create seed in
  let nv = 1 + Workload.Rng.int rng 5 in
  let fm = gen_formula rng 5 nv in
  let man = Bdd.man () in
  k rng nv fm man (build man fm)

let prop_eval =
  Helpers.qtest ~count:200 "BDD eval matches formula semantics"
    QCheck.(int_bound 1000000)
    (fun seed ->
      with_formula seed (fun _rng nv fm man b ->
          forall_envs nv (fun env ->
              Bdd.eval man (fun i -> env.(i)) b = eval env fm)))

let prop_sat_count =
  Helpers.qtest ~count:200 "sat_count matches enumeration"
    QCheck.(int_bound 1000000)
    (fun seed ->
      with_formula seed (fun _rng nv fm man b ->
          let count = ref 0. in
          ignore
            (forall_envs nv (fun env ->
                 if eval env fm then count := !count +. 1.;
                 true));
          Bdd.sat_count man ~nvars:nv b = !count))

let prop_quantification =
  Helpers.qtest ~count:200 "exists/forall match cofactor semantics"
    QCheck.(int_bound 1000000)
    (fun seed ->
      with_formula seed (fun rng nv fm man b ->
          let x = Workload.Rng.int rng nv in
          let ex = Bdd.exists man [ x ] b in
          let fa = Bdd.forall man [ x ] b in
          forall_envs nv (fun env ->
              let set value = Array.mapi (fun i v -> if i = x then value else v) env in
              let e0 = eval (set false) fm and e1 = eval (set true) fm in
              Bdd.eval man (fun i -> env.(i)) ex = (e0 || e1)
              && Bdd.eval man (fun i -> env.(i)) fa = (e0 && e1))))

let prop_compose =
  Helpers.qtest ~count:200 "compose substitutes correctly"
    QCheck.(int_bound 1000000)
    (fun seed ->
      with_formula seed (fun rng nv fm man b ->
          (* substitute one variable by another's complement *)
          let x = Workload.Rng.int rng nv in
          let y = Workload.Rng.int rng nv in
          let sub = Bdd.compose man (fun v -> if v = x then Some (Bdd.nvar man y) else None) b in
          forall_envs nv (fun env ->
              let env' = Array.mapi (fun i v -> if i = x then not env.(y) else v) env in
              Bdd.eval man (fun i -> env.(i)) sub = eval env' fm)))

let prop_any_sat =
  Helpers.qtest ~count:200 "any_sat returns a model"
    QCheck.(int_bound 1000000)
    (fun seed ->
      with_formula seed (fun _rng nv fm man b ->
          Bdd.is_false b
          ||
          let pa = Bdd.any_sat man b in
          let env =
            Array.init nv (fun i ->
                match List.assoc_opt i pa with Some v -> v | None -> false)
          in
          eval env fm))

let prop_canonicity =
  Helpers.qtest ~count:200 "equivalent formulas share one node"
    QCheck.(int_bound 1000000)
    (fun seed ->
      with_formula seed (fun _rng _nv fm man b ->
          (* double complement and de-Morgan'd rebuild hit the same node *)
          let rec build_dm man = function
            | Var i -> Bdd.var man i
            | Not a -> Bdd.bnot man (build_dm man a)
            | And (a, b) ->
              Bdd.bnot man
                (Bdd.bor man
                   (Bdd.bnot man (build_dm man a))
                   (Bdd.bnot man (build_dm man b)))
            | Or (a, b) ->
              Bdd.bnot man
                (Bdd.band man
                   (Bdd.bnot man (build_dm man a))
                   (Bdd.bnot man (build_dm man b)))
            | Xor (a, b) ->
              let x = build_dm man a and y = build_dm man b in
              Bdd.ite man x (Bdd.bnot man y) y
          in
          Bdd.equal b (build_dm man fm)))

let test_terminals () =
  let man = Bdd.man () in
  Helpers.check_bool "true <> false" false (Bdd.equal Bdd.btrue Bdd.bfalse);
  Helpers.check_bool "not true = false" true
    (Bdd.equal (Bdd.bnot man Bdd.btrue) Bdd.bfalse);
  Helpers.check_bool "x & ~x = false" true
    (Bdd.equal (Bdd.band man (Bdd.var man 0) (Bdd.nvar man 0)) Bdd.bfalse);
  Helpers.check_bool "x | ~x = true" true
    (Bdd.equal (Bdd.bor man (Bdd.var man 0) (Bdd.nvar man 0)) Bdd.btrue)

let test_support_and_size () =
  let man = Bdd.man () in
  let f = Bdd.band man (Bdd.var man 1) (Bdd.bxor man (Bdd.var man 3) (Bdd.var man 5)) in
  Helpers.check_bool "support" true (Bdd.support man f = [ 1; 3; 5 ]);
  Helpers.check_bool "size positive" true (Bdd.size man f > 0);
  Helpers.check_int "terminal size" 0 (Bdd.size man Bdd.btrue)

let test_view () =
  let man = Bdd.man () in
  match Bdd.view man (Bdd.var man 2) with
  | `Node (2, low, high) ->
    Helpers.check_bool "low false" true (Bdd.is_false low);
    Helpers.check_bool "high true" true (Bdd.is_true high)
  | `Node _ | `False | `True -> Alcotest.fail "expected node on var 2"

let suite =
  [
    Alcotest.test_case "terminal laws" `Quick test_terminals;
    Alcotest.test_case "support and size" `Quick test_support_and_size;
    Alcotest.test_case "view" `Quick test_view;
    prop_eval;
    prop_sat_count;
    prop_quantification;
    prop_compose;
    prop_any_sat;
    prop_canonicity;
  ]
