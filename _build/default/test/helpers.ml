(* Shared test utilities: small-netlist generators and oracles. *)

module Net = Netlist.Net
module Lit = Netlist.Lit
module Sim = Netlist.Sim

let check = Alcotest.check
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Build a netlist from a closure for terse test fixtures. *)
let netlist f =
  let net = Net.create () in
  let r = f net in
  Net.check net;
  (net, r)

(* ---- random netlist generation (for property tests) ----

   [rand_net rng ~inputs ~regs ~gates] builds an arbitrary register
   netlist: every register's next-state cone is a random AND/OR/XOR
   tree over inputs, registers and previously built gates, with random
   initial values.  Returns the netlist and a list of interesting
   literals (gate outputs and register outputs). *)
let rand_net rng ~inputs ~regs ~gates =
  let net = Net.create () in
  let ins = List.init inputs (fun i -> Net.add_input net (Printf.sprintf "i%d" i)) in
  let rs =
    List.init regs (fun i ->
        let init =
          match Workload.Rng.int rng 3 with
          | 0 -> Net.Init0
          | 1 -> Net.Init1
          | _ -> Net.Init_x
        in
        Net.add_reg net ~init (Printf.sprintf "r%d" i))
  in
  let pool = ref (ins @ rs) in
  let pick () =
    let l = Workload.Rng.pick rng !pool in
    if Workload.Rng.bool rng then Lit.neg l else l
  in
  for _ = 1 to gates do
    let a = pick () and b = pick () in
    let g =
      match Workload.Rng.int rng 3 with
      | 0 -> Net.add_and net a b
      | 1 -> Net.add_or net a b
      | _ -> Net.add_xor net a b
    in
    if not (Lit.is_const g) then pool := g :: !pool
  done;
  List.iter (fun r -> Net.set_next net r (pick ())) rs;
  (net, !pool)

(* A random netlist with a named target. *)
let rand_net_with_target seed ~inputs ~regs ~gates =
  let rng = Workload.Rng.create seed in
  let net, pool = rand_net rng ~inputs ~regs ~gates in
  let t = Workload.Rng.pick rng pool in
  let t = if Workload.Rng.bool rng then Lit.neg t else t in
  Net.add_target net "t" t;
  Net.add_output net "t" t;
  (net, t)

(* Structured random design: compose generator blocks, more likely to
   exercise the AC/MC/QC classification paths than pure noise. *)
let rand_structured seed =
  let rng = Workload.Rng.create seed in
  let net = Net.create () in
  let ins = List.init 6 (fun i -> Net.add_input net (Printf.sprintf "i%d" i)) in
  let blocks = ref [] in
  let n_blocks = 1 + Workload.Rng.int rng 3 in
  for b = 0 to n_blocks - 1 do
    let name = Printf.sprintf "b%d" b in
    let block =
      match Workload.Rng.int rng 5 with
      | 0 ->
        Workload.Gen.pipeline net ~name
          ~stages:(1 + Workload.Rng.int rng 3)
          ~data:(Workload.Rng.pick rng ins)
      | 1 ->
        Workload.Gen.counter net ~name
          ~bits:(1 + Workload.Rng.int rng 3)
          ~enable:(Workload.Rng.pick rng ins)
      | 2 ->
        Workload.Gen.ring net ~name ~length:(2 + Workload.Rng.int rng 3)
      | 3 -> (
        match Workload.Gen.pick_distinct rng ins 2 with
        | [ push; d ] ->
          Workload.Gen.queue net ~name
            ~depth:(2 + Workload.Rng.int rng 2)
            ~width:1 ~push ~data:[ d ]
        | _ -> assert false)
      | _ ->
        Workload.Gen.fsm net rng ~name
          ~bits:(2 + Workload.Rng.int rng 2)
          ~inputs:ins
    in
    blocks := block :: !blocks
  done;
  let outs = List.map (fun b -> b.Workload.Gen.out) !blocks in
  let t =
    match outs with
    | [ o ] -> o
    | o :: rest when Workload.Rng.bool rng ->
      List.fold_left (Net.add_or net) o rest
    | o :: rest -> List.fold_left (Net.add_and net) o rest
    | [] -> assert false
  in
  Net.add_target net "t" t;
  Net.add_output net "t" t;
  (net, t)

(* Drive a netlist for [steps] with deterministic pseudo-random
   inputs and return the observed values of [l]. *)
let sim_values seed steps net l =
  let s = Sim.create_resolved ~seed net in
  List.init steps (fun t ->
      Sim.step s (fun v -> Sim.value_of_bool (Hashtbl.hash (seed, v, t) land 1 = 1));
      Sim.value s l)

(* fixed randomness: property failures must reproduce across runs *)
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0xd1a; 0xb0; 0x0d |])
    (QCheck.Test.make ~name ~count gen prop)
