module Net = Netlist.Net
module Lit = Netlist.Lit

(* c-slow a toggle FSM by hand: replace its register with a chain of c
   registers; every cycle then crosses c registers *)
let cslowed_toggle c =
  let net = Net.create () in
  let enable = Net.add_input net "en" in
  let regs =
    List.init c (fun i -> Net.add_reg net ~init:Net.Init0 (Printf.sprintf "s%d" i))
  in
  let head = List.hd regs in
  let tail = List.nth regs (c - 1) in
  (* head toggles (via the chain) when enabled *)
  Net.set_next net head (Net.add_xor net tail enable);
  List.iteri
    (fun i r -> if i > 0 then Net.set_next net r (List.nth regs (i - 1)))
    regs;
  Net.add_target net "t" tail;
  (net, tail)

let test_detect_c () =
  let net, _ = cslowed_toggle 3 in
  Helpers.check_int "detects c = 3" 3 (Transform.Cslow.detect net);
  let net1, _ = cslowed_toggle 1 in
  Helpers.check_int "plain design has c = 1" 1 (Transform.Cslow.detect net1)

let test_detect_acyclic_is_one () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let p = Workload.Gen.pipeline net ~name:"p" ~stages:4 ~data:a in
  Net.add_target net "t" p.Workload.Gen.out;
  Helpers.check_int "pipelines are not c-slow" 1 (Transform.Cslow.detect net)

let test_fold_reduces_registers () =
  let net, _ = cslowed_toggle 4 in
  let r = Transform.Cslow.run net in
  Helpers.check_int "factor 4" 4 r.Transform.Cslow.factor;
  Helpers.check_int "one register kept" 1 (Net.num_regs r.Transform.Cslow.net)

let test_fold_semantics () =
  (* with the enable held high, the folded design is a plain toggle:
     the kept register alternates every abstract step *)
  let c = 3 in
  let net, _ = cslowed_toggle c in
  let r = Transform.Cslow.run net in
  let abs = r.Transform.Cslow.net in
  let t_abs = List.assoc "t" (Net.targets abs) in
  let s = Netlist.Sim.create abs in
  (* all split copies of the enable held high *)
  let values =
    List.init 6 (fun _ ->
        Netlist.Sim.step s (fun _ -> Netlist.Sim.V1);
        Netlist.Sim.value s t_abs)
  in
  Helpers.check_bool "folded toggle alternates" true
    (values
    = [ Netlist.Sim.V0; Netlist.Sim.V1; Netlist.Sim.V0; Netlist.Sim.V1;
        Netlist.Sim.V0; Netlist.Sim.V1 ])

let test_mixed_colors_degrade () =
  (* a target reading two different colors cannot be folded *)
  let net = Net.create () in
  let en = Net.add_input net "en" in
  let r0 = Net.add_reg net "r0" in
  let r1 = Net.add_reg net "r1" in
  Net.set_next net r0 (Net.add_xor net r1 en);
  Net.set_next net r1 r0;
  Net.add_target net "t" (Net.add_and net r0 r1);
  let r = Transform.Cslow.run net in
  Helpers.check_int "degrades to identity" 1 r.Transform.Cslow.factor

let prop_theorem3_soundness =
  (* factor * bound on the folded netlist covers the original earliest
     hit *)
  Helpers.qtest ~count:30 "c-slow translated bound is sound"
    QCheck.(int_range 2 5)
    (fun c ->
      let net, t = cslowed_toggle c in
      let r = Transform.Cslow.run net in
      let b = Core.Bound.target_named r.Transform.Cslow.net "t" in
      let translated =
        (Core.Translate.state_folding ~factor:r.Transform.Cslow.factor)
          .Core.Translate.apply b.Core.Bound.bound
      in
      if Core.Sat_bound.is_huge translated then true
      else
        match Core.Exact.explore net t with
        | None -> true
        | Some e -> (
          match e.Core.Exact.earliest_hit with
          | None -> true
          | Some hit -> hit <= translated - 1))

let suite =
  [
    Alcotest.test_case "detect c" `Quick test_detect_c;
    Alcotest.test_case "acyclic designs not c-slow" `Quick test_detect_acyclic_is_one;
    Alcotest.test_case "folding reduces registers" `Quick test_fold_reduces_registers;
    Alcotest.test_case "folding semantics" `Quick test_fold_semantics;
    Alcotest.test_case "mixed colors degrade" `Quick test_mixed_colors_degrade;
    prop_theorem3_soundness;
  ]
