module Lit = Netlist.Lit

let test_constants () =
  Helpers.check_int "false is var 0" 0 (Lit.var Lit.false_);
  Helpers.check_int "true is var 0" 0 (Lit.var Lit.true_);
  Helpers.check_bool "false is positive" false (Lit.is_neg Lit.false_);
  Helpers.check_bool "true is negative" true (Lit.is_neg Lit.true_);
  Helpers.check_bool "true = ~false" true (Lit.equal Lit.true_ (Lit.neg Lit.false_));
  Helpers.check_bool "const detection" true (Lit.is_const Lit.true_);
  Helpers.check_bool "var 1 not const" false (Lit.is_const (Lit.make 1))

let test_make () =
  let l = Lit.make 7 in
  Helpers.check_int "var" 7 (Lit.var l);
  Helpers.check_bool "positive" false (Lit.is_neg l);
  let n = Lit.make_neg 7 in
  Helpers.check_int "neg var" 7 (Lit.var n);
  Helpers.check_bool "negative" true (Lit.is_neg n);
  Helpers.check_bool "neg relation" true (Lit.equal n (Lit.neg l))

let test_of_var () =
  Helpers.check_bool "of_var pos" true
    (Lit.equal (Lit.of_var 3 ~sign:false) (Lit.make 3));
  Helpers.check_bool "of_var neg" true
    (Lit.equal (Lit.of_var 3 ~sign:true) (Lit.make_neg 3))

let prop_roundtrip =
  Helpers.qtest "to_int/of_int roundtrip" QCheck.(int_bound 100000) (fun i ->
      Lit.to_int (Lit.of_int i) = i)

let prop_neg_involution =
  Helpers.qtest "neg involution" QCheck.(int_bound 100000) (fun i ->
      let l = Lit.of_int i in
      Lit.equal (Lit.neg (Lit.neg l)) l && Lit.var (Lit.neg l) = Lit.var l)

let prop_xor_sign =
  Helpers.qtest "xor_sign" QCheck.(pair (int_bound 100000) bool) (fun (i, s) ->
      let l = Lit.of_int i in
      let r = Lit.xor_sign l s in
      if s then Lit.equal r (Lit.neg l) else Lit.equal r l)

let prop_abs =
  Helpers.qtest "abs strips sign" QCheck.(int_bound 100000) (fun i ->
      let l = Lit.of_int i in
      (not (Lit.is_neg (Lit.abs l))) && Lit.var (Lit.abs l) = Lit.var l)

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "make/var/sign" `Quick test_make;
    Alcotest.test_case "of_var" `Quick test_of_var;
    prop_roundtrip;
    prop_neg_involution;
    prop_xor_sign;
    prop_abs;
  ]
