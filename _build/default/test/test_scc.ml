module Scc = Netlist.Scc

(* brute-force SCC: mutual reachability *)
let brute_scc n succ =
  let reach = Array.make_matrix n n false in
  for v = 0 to n - 1 do
    let rec dfs w =
      List.iter
        (fun x ->
          if not reach.(v).(x) then begin
            reach.(v).(x) <- true;
            dfs x
          end)
        (succ w)
    in
    dfs v
  done;
  Array.init n (fun v ->
      Array.init n (fun w -> (v = w) || (reach.(v).(w) && reach.(w).(v))))

let random_graph seed n =
  let rng = Workload.Rng.create seed in
  let edges = Array.make n [] in
  let m = Workload.Rng.int rng (2 * n) in
  for _ = 1 to m do
    let a = Workload.Rng.int rng n and b = Workload.Rng.int rng n in
    edges.(a) <- b :: edges.(a)
  done;
  fun v -> edges.(v)

let prop_matches_brute =
  Helpers.qtest ~count:200 "SCC matches mutual reachability"
    QCheck.(pair (int_bound 100000) (int_range 1 10))
    (fun (seed, n) ->
      let succ = random_graph seed n in
      let scc = Scc.compute n succ in
      let brute = brute_scc n succ in
      let ok = ref true in
      for v = 0 to n - 1 do
        for w = 0 to n - 1 do
          let same = scc.Scc.component.(v) = scc.Scc.component.(w) in
          if same <> brute.(v).(w) then ok := false
        done
      done;
      !ok)

let prop_emission_order =
  Helpers.qtest ~count:200 "components emitted dependencies-first"
    QCheck.(pair (int_bound 100000) (int_range 1 10))
    (fun (seed, n) ->
      (* with successors as edges, a component reached from v is
         emitted no later than v's component *)
      let succ = random_graph seed n in
      let scc = Scc.compute n succ in
      let ok = ref true in
      for v = 0 to n - 1 do
        List.iter
          (fun w ->
            if scc.Scc.component.(w) > scc.Scc.component.(v) then ok := false)
          (succ v)
      done;
      !ok)

let test_chain () =
  (* 0 -> 1 -> 2: three singleton components *)
  let succ = function 0 -> [ 1 ] | 1 -> [ 2 ] | _ -> [] in
  let scc = Scc.compute 3 succ in
  Helpers.check_int "three components" 3 (Array.length scc.Scc.members);
  Helpers.check_bool "distinct" true
    (scc.Scc.component.(0) <> scc.Scc.component.(1)
    && scc.Scc.component.(1) <> scc.Scc.component.(2))

let test_cycle () =
  let succ = function 0 -> [ 1 ] | 1 -> [ 2 ] | _ -> [ 0 ] in
  let scc = Scc.compute 3 succ in
  Helpers.check_int "one component" 1 (Array.length scc.Scc.members);
  Helpers.check_bool "cyclic" true
    (Scc.is_cyclic scc ~self_loop:(fun _ -> false) 1)

let test_self_loop () =
  let succ = function 0 -> [ 0 ] | _ -> [] in
  let scc = Scc.compute 2 succ in
  Helpers.check_bool "self loop cyclic" true
    (Scc.is_cyclic scc ~self_loop:(fun v -> v = 0) 0);
  Helpers.check_bool "isolated acyclic" false
    (Scc.is_cyclic scc ~self_loop:(fun v -> v = 0) 1)

let suite =
  [
    Alcotest.test_case "chain" `Quick test_chain;
    Alcotest.test_case "cycle" `Quick test_cycle;
    Alcotest.test_case "self loop" `Quick test_self_loop;
    prop_matches_brute;
    prop_emission_order;
  ]
