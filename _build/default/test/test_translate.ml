module T = Core.Translate
module B = Core.Sat_bound

let test_theorem1_identity () =
  Helpers.check_int "T1 preserves" 17 (T.trace_equivalence.T.apply 17);
  Helpers.check_bool "exact kind" true (T.trace_equivalence.T.kind = `Exact)

let test_theorem2_addition () =
  let t = T.retiming ~skew:5 in
  Helpers.check_int "adds the skew" 15 (t.T.apply 10);
  Helpers.check_bool "upper kind" true (t.T.kind = `Upper);
  Alcotest.check_raises "negative skew rejected"
    (Invalid_argument "Translate.retiming: negative skew") (fun () ->
      ignore (T.retiming ~skew:(-1)))

let test_theorem3_multiplication () =
  let t = T.state_folding ~factor:2 in
  Helpers.check_int "doubles" 24 (t.T.apply 12);
  Alcotest.check_raises "factor < 1 rejected"
    (Invalid_argument "Translate.state_folding: factor < 1") (fun () ->
      ignore (T.state_folding ~factor:0))

let test_theorem4_hittability () =
  let t = T.target_enlargement ~k:3 in
  Helpers.check_int "adds k" 10 (t.T.apply 7);
  Helpers.check_bool "hittability kind" true (t.T.kind = `Hittability)

let test_composition () =
  (* the COM,RET,COM pipeline: T1 . T2 . T1 *)
  let t =
    T.compose T.trace_equivalence (T.compose (T.retiming ~skew:4) T.trace_equivalence)
  in
  Helpers.check_int "composes" 9 (t.T.apply 5);
  Helpers.check_bool "weakest kind propagates" true (t.T.kind = `Upper);
  let h = T.compose t (T.target_enlargement ~k:1) in
  Helpers.check_bool "hittability dominates" true (h.T.kind = `Hittability)

let test_saturation_through_translators () =
  let t = T.state_folding ~factor:1000 in
  Helpers.check_bool "saturates" true (B.is_huge (t.T.apply (B.huge / 2)));
  let r = T.retiming ~skew:10 in
  Helpers.check_bool "huge stays huge" true (B.is_huge (r.T.apply B.huge))

let test_sat_bound_arith () =
  Helpers.check_int "add" 7 (B.add 3 4);
  Helpers.check_int "mul" 12 (B.mul 3 4);
  Helpers.check_bool "mul saturates" true (B.is_huge (B.mul (B.huge / 2) 3));
  Helpers.check_bool "add saturates" true (B.is_huge (B.add B.huge 1));
  Helpers.check_int "pow2" 1024 (B.pow2 10);
  Helpers.check_bool "pow2 saturates" true (B.is_huge (B.pow2 64));
  Helpers.check_int "mul by zero" 0 (B.mul 0 B.huge);
  Helpers.check_bool "pp finite" true (String.equal (B.to_string 42) "42");
  Helpers.check_bool "pp huge" true (String.equal (B.to_string B.huge) "inf")

let prop_translators_monotone =
  Helpers.qtest ~count:100 "translators are monotone"
    QCheck.(triple (int_range 0 1000) (int_range 0 1000) (int_range 1 4))
    (fun (a, b, f) ->
      let lo = min a b and hi = max a b in
      let ts =
        [ T.trace_equivalence; T.retiming ~skew:f; T.state_folding ~factor:f;
          T.target_enlargement ~k:f ]
      in
      List.for_all (fun t -> t.T.apply lo <= t.T.apply hi) ts)

let suite =
  [
    Alcotest.test_case "theorem 1" `Quick test_theorem1_identity;
    Alcotest.test_case "theorem 2" `Quick test_theorem2_addition;
    Alcotest.test_case "theorem 3" `Quick test_theorem3_multiplication;
    Alcotest.test_case "theorem 4" `Quick test_theorem4_hittability;
    Alcotest.test_case "composition" `Quick test_composition;
    Alcotest.test_case "saturation" `Quick test_saturation_through_translators;
    Alcotest.test_case "bound arithmetic" `Quick test_sat_bound_arith;
    prop_translators_monotone;
  ]
