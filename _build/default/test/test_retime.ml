module Net = Netlist.Net
module Lit = Netlist.Lit

let test_pipeline_fully_peeled () =
  (* input-fed pipeline: all registers dissolve into the target skew *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let block = Workload.Gen.pipeline net ~name:"p" ~stages:5 ~data:a in
  Net.add_target net "t" block.Workload.Gen.out;
  let r = Transform.Retime.run net in
  Helpers.check_int "no registers left" 0
    (Net.num_regs r.Transform.Retime.rebuilt.Transform.Rebuild.net);
  Helpers.check_int "skew equals depth" 5 (List.assoc "t" r.Transform.Retime.target_skews);
  Helpers.check_int "moved" 5 r.Transform.Retime.moved_regs

let test_cyclic_registers_preserved () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let block = Workload.Gen.counter net ~name:"c" ~bits:3 ~enable:a in
  Net.add_target net "t" block.Workload.Gen.out;
  let r = Transform.Retime.run net in
  Helpers.check_int "counter untouched" 3
    (Net.num_regs r.Transform.Retime.rebuilt.Transform.Rebuild.net);
  Helpers.check_int "no skew" 0 (List.assoc "t" r.Transform.Retime.target_skews)

let test_reconvergence_partial_peel () =
  (* two pipelines of different depth joined by an AND: only the
     shorter depth can be peeled *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Net.add_input net "b" in
  let p1 = Workload.Gen.pipeline net ~name:"p1" ~stages:4 ~data:a in
  let p2 = Workload.Gen.pipeline net ~name:"p2" ~stages:1 ~data:b in
  let t = Net.add_and net p1.Workload.Gen.out p2.Workload.Gen.out in
  Net.add_target net "t" t;
  let r = Transform.Retime.run net in
  Helpers.check_int "skew is the shorter depth" 1
    (List.assoc "t" r.Transform.Retime.target_skews);
  Helpers.check_int "residual registers" 3
    (Net.num_regs r.Transform.Retime.rebuilt.Transform.Rebuild.net)

let test_skew_equivalence () =
  (* the retimed target leads the original by the skew *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Net.add_input net "b" in
  let g = Net.add_xor net a b in
  let block = Workload.Gen.pipeline net ~name:"p" ~stages:3 ~data:g in
  Net.add_target net "t" block.Workload.Gen.out;
  let r = Transform.Retime.run net in
  let skew = List.assoc "t" r.Transform.Retime.target_skews in
  let net' = r.Transform.Retime.rebuilt.Transform.Rebuild.net in
  let t' = List.assoc "t" (Net.targets net') in
  let t = List.assoc "t" (Net.targets net) in
  Helpers.check_bool "trace equivalent modulo skew" true
    (Transform.Equiv.sim_equivalent ~skew net t net' t')

let test_ret_guard_collapses () =
  (* the workload's RET gadget: the guard pipelines normalize onto one
     shared chain and the XOR folds to constant false *)
  let net = Net.create () in
  let x = Net.add_input net "x" in
  let y = Net.add_input net "y" in
  let guard = Workload.Gen.ret_guard net ~name:"g" ~x ~y in
  Net.add_target net "t" guard;
  let r = Transform.Retime.run net in
  let t' =
    List.assoc "t" (Net.targets r.Transform.Retime.rebuilt.Transform.Rebuild.net)
  in
  Helpers.check_bool "guard constant after retiming" true (Lit.equal t' Lit.false_)

let test_latch_rejected () =
  let net = Net.create ~phases:2 () in
  let a = Net.add_input net "a" in
  let l = Net.add_latch net ~phase:0 "l" in
  Net.set_latch_data net l a;
  Net.add_target net "t" l;
  match Transform.Retime.run net with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "latch netlists must be rejected"

let test_chain_sharing () =
  (* two targets on the same pipeline at different depths share the
     rebuilt chain *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let p = Workload.Gen.pipeline net ~name:"p" ~stages:4 ~data:a in
  let mid = List.nth p.Workload.Gen.regs 1 in
  Net.add_target net "deep" p.Workload.Gen.out;
  Net.add_target net "mid" mid;
  let r = Transform.Retime.run net in
  Helpers.check_int "both targets peel fully" 0
    (Net.num_regs r.Transform.Retime.rebuilt.Transform.Rebuild.net);
  Helpers.check_int "deep skew" 4 (List.assoc "deep" r.Transform.Retime.target_skews);
  Helpers.check_int "mid skew" 2 (List.assoc "mid" r.Transform.Retime.target_skews)

let prop_bound_soundness_after_retime =
  (* Theorem 2 end-to-end: on random structured designs, the
     translated bound d(retimed) + skew still covers the earliest
     possible hit of the original target *)
  Helpers.qtest ~count:40 "translated bound covers earliest hit"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_structured seed in
      let r = Transform.Retime.run net in
      let skew = List.assoc "t" r.Transform.Retime.target_skews in
      let net' = r.Transform.Retime.rebuilt.Transform.Rebuild.net in
      let b = Core.Bound.target_named net' "t" in
      let translated =
        (Core.Translate.retiming ~skew).Core.Translate.apply b.Core.Bound.bound
      in
      if Core.Sat_bound.is_huge translated then true
      else
        match Core.Exact.explore net t with
        | None -> true
        | Some e -> (
          match e.Core.Exact.earliest_hit with
          | None -> true
          | Some hit -> hit <= translated - 1))

let prop_semantics_on_binary_init =
  (* on designs whose stump resolves to constants, the retimed netlist
     is exactly trace-equivalent modulo skew *)
  Helpers.qtest ~count:40 "skewed trace equivalence"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Workload.Rng.create seed in
      let net = Net.create () in
      let ins = List.init 3 (fun i -> Net.add_input net (Printf.sprintf "i%d" i)) in
      (* pipelines over input logic: constant-0 initial values, fully
         constant stump *)
      let outs =
        List.init
          (1 + Workload.Rng.int rng 3)
          (fun i ->
            let a = Workload.Rng.pick rng ins in
            let b = Workload.Rng.pick rng ins in
            let data = Net.add_xor net a b in
            (Workload.Gen.pipeline net
               ~name:(Printf.sprintf "p%d" i)
               ~stages:(1 + Workload.Rng.int rng 4)
               ~data)
              .Workload.Gen.out)
      in
      let t = List.fold_left (Net.add_or net) (List.hd outs) (List.tl outs) in
      Net.add_target net "t" t;
      let r = Transform.Retime.run net in
      let skew = List.assoc "t" r.Transform.Retime.target_skews in
      let net' = r.Transform.Retime.rebuilt.Transform.Rebuild.net in
      let t' = List.assoc "t" (Net.targets net') in
      Transform.Equiv.sim_equivalent ~skew ~steps:16 net t net' t')

let suite =
  [
    Alcotest.test_case "pipeline fully peeled" `Quick test_pipeline_fully_peeled;
    Alcotest.test_case "cyclic registers preserved" `Quick test_cyclic_registers_preserved;
    Alcotest.test_case "reconvergence partial peel" `Quick test_reconvergence_partial_peel;
    Alcotest.test_case "skew equivalence" `Quick test_skew_equivalence;
    Alcotest.test_case "RET guard collapses" `Quick test_ret_guard_collapses;
    Alcotest.test_case "latches rejected" `Quick test_latch_rejected;
    Alcotest.test_case "chain sharing" `Quick test_chain_sharing;
    prop_bound_soundness_after_retime;
    prop_semantics_on_binary_init;
  ]
