(* A tour of the verification engine: the same call closes problems
   that need very different machinery under the hood.

     dune exec examples/engine_tour.exe *)

module Net = Netlist.Net
module Lit = Netlist.Lit

let show name net target =
  Format.printf "%-28s %a@." name Core.Engine.pp_verdict
    (Core.Engine.verify net ~target)

let () =
  (* 1. a shallow bug: the probe finds it before any theory runs *)
  let net = Net.create () in
  let c = Workload.Gen.counter net ~name:"c" ~bits:3 ~enable:Lit.true_ in
  Net.add_target net "saturates" c.Workload.Gen.out;
  show "free counter (bug)" net "saturates";

  (* 2. a deep pipeline invariant: structural bound + complete BMC *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let p1 = Workload.Gen.pipeline net ~name:"p1" ~stages:16 ~data:a in
  let p2 = Workload.Gen.pipeline net ~name:"p2" ~stages:16 ~data:(Lit.neg a) in
  Net.add_target net "lanes_agree"
    (Net.add_and net p1.Workload.Gen.out p2.Workload.Gen.out);
  show "16-deep dual pipeline" net "lanes_agree";

  (* 3. the COM,RET,COM-only case: register placement hides the
     redundancy until retiming normalizes it *)
  let net = Net.create () in
  let x = Net.add_input net "x" in
  let y = Net.add_input net "y" in
  let guard = Workload.Gen.ret_guard net ~name:"g" ~x ~y in
  let cnt = Workload.Gen.counter net ~name:"cnt" ~bits:10 ~enable:guard in
  Net.add_target net "ghost_count" cnt.Workload.Gen.out;
  show "retiming-gated counter" net "ghost_count";

  (* 4. a two-phase latch design: bounds flow through phase
     abstraction and Theorem 3 *)
  let base = Net.create () in
  let b = Net.add_input base "b" in
  let p = Workload.Gen.pipeline base ~name:"p" ~stages:5 ~data:b in
  Net.add_target base "latch_prop"
    (Net.add_and base p.Workload.Gen.out (Lit.neg p.Workload.Gen.out));
  let latched = Workload.Gp.latchify base in
  show "two-phase latch design" latched "latch_prop";

  (* 5. an invariant no practical diameter bound exists for, closed by
     temporal induction: a 10-bit LFSR never reaches the all-zero
     state (its update is a permutation fixing 0) *)
  let net = Net.create () in
  let l = Workload.Gen.lfsr net ~name:"l" ~bits:10 in
  let all_zero =
    Net.add_and_list net (List.map Lit.neg l.Workload.Gen.regs)
  in
  Net.add_target net "lfsr_dies" all_zero;
  show "10-bit LFSR liveness" net "lfsr_dies"
