examples/enlargement_demo.ml: Bmc Core Format List Netlist Printf Transform Workload
