examples/memory_controller.ml: Bmc Core Format List Netlist Printf Workload
