examples/retiming_demo.mli:
