examples/engine_tour.mli:
