examples/memory_controller.mli:
