examples/engine_tour.ml: Core Format List Netlist Workload
