examples/quickstart.ml: Bmc Core Format List Netlist Printf
