examples/enlargement_demo.mli:
