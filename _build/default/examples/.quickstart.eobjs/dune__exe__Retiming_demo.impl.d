examples/retiming_demo.ml: Bmc Core Format List Netlist Transform Workload
