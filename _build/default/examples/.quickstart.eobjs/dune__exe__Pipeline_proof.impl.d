examples/pipeline_proof.ml: Bmc Core Format List Netlist Printf Transform Workload
