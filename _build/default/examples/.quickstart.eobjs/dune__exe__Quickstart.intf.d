examples/quickstart.mli:
