examples/pipeline_proof.mli:
