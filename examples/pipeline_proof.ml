(* The paper's motivating scenario: BMC alone only searches a window;
   a diameter bound makes it complete, and structural transformations
   make the bound (and the netlist) smaller.

   A 12-stage execution pipeline checks a parity invariant: the parity
   computed at dispatch and carried alongside must match the parity
   recomputed at retire.

     dune exec examples/pipeline_proof.exe *)

module Net = Netlist.Net
module Lit = Netlist.Lit

let () =
  let net = Net.create () in
  let lanes = 4 in
  let stages = 12 in
  let data = List.init lanes (fun i -> Net.add_input net (Printf.sprintf "d%d" i)) in
  (* dispatch parity travels with the data *)
  let parity_in = List.fold_left (Net.add_xor net) Lit.false_ data in
  let carry_parity =
    (Workload.Gen.pipeline net ~name:"par" ~stages ~data:parity_in).Workload.Gen.out
  in
  let carried_data =
    List.mapi
      (fun i d ->
        (Workload.Gen.pipeline net ~name:(Printf.sprintf "lane%d" i) ~stages
           ~data:d)
          .Workload.Gen.out)
      data
  in
  let parity_out = List.fold_left (Net.add_xor net) Lit.false_ carried_data in
  let mismatch = Net.add_xor net carry_parity parity_out in
  Net.add_target net "parity_mismatch" mismatch;
  Format.printf "pipeline: %a@." Net.pp_stats net;

  (* without a diameter bound, BMC of any fixed depth is inconclusive:
     depth 5 says nothing about depth 500 *)
  (match Bmc.check net ~target:"parity_mismatch" ~depth:5 with
  | Bmc.No_hit d ->
    Format.printf "BMC to depth %d: no violation — but alone this proves \
                   nothing about deeper behaviour.@." d
  | Bmc.Hit _ | Bmc.Unknown _ -> assert false);

  (* the structural bound closes the gap: 12 pipeline stages of
     arbitrary width are 12 acyclic components, diameter 13 *)
  let bound = Core.Bound.target_named net "parity_mismatch" in
  Format.printf "structural diameter bound: %a@." Core.Sat_bound.pp
    bound.Core.Bound.bound;
  (match Bmc.prove net ~target:"parity_mismatch" ~bound:bound.Core.Bound.bound with
  | `Proved ->
    Format.printf "BMC to depth %d: complete — parity invariant PROVED.@."
      (bound.Core.Bound.bound - 1)
  | `Cex cex -> Format.printf "violated at %d@." cex.Bmc.depth
  | `Unknown -> assert false);

  (* retiming dissolves all %d registers into a Theorem-2 skew: the
     recurrence structure is combinational and the translated bound
     matches *)
  let r = Transform.Retime.run net in
  let retimed = r.Transform.Retime.rebuilt.Transform.Rebuild.net in
  let skew = List.assoc "parity_mismatch" r.Transform.Retime.target_skews in
  let raw = Core.Bound.target_named retimed "parity_mismatch" in
  let translated =
    (Core.Translate.retiming ~skew).Core.Translate.apply raw.Core.Bound.bound
  in
  Format.printf
    "after RET: %d registers remain, raw bound %a, skew %d, translated \
     bound %a@."
    (Net.num_regs retimed) Core.Sat_bound.pp raw.Core.Bound.bound skew
    Core.Sat_bound.pp translated;
  (* and on the retimed netlist the proof is a depth-0 check *)
  match Bmc.prove retimed ~target:"parity_mismatch" ~bound:raw.Core.Bound.bound with
  | `Proved -> Format.printf "proof on the retimed netlist: PROVED.@."
  | `Cex cex -> Format.printf "violated at %d@." cex.Bmc.depth
  | `Unknown -> assert false
