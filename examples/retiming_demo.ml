(* The COM,RET,COM pipeline in action (Sections 3.1/3.2): a register
   loop is enabled by the XOR of two pipelines that compute the same
   function with registers at different positions.  Combinational
   sweeping cannot match them across the register cut, but retiming
   normalizes both onto one shared chain, the XOR collapses, and the
   loop freezes: the target's bound drops from 2^k to a constant.

     dune exec examples/retiming_demo.exe *)

module Net = Netlist.Net
module Lit = Netlist.Lit

let bound_of net =
  (Core.Bound.target_named net "t").Core.Bound.bound

let show tag net =
  Format.printf "%-18s %a  bound %a@." tag Net.pp_stats net Core.Sat_bound.pp
    (bound_of net)

let () =
  let net = Net.create () in
  let x = Net.add_input net "x" in
  let y = Net.add_input net "y" in
  let guard = Workload.Gen.ret_guard net ~name:"g" ~x ~y in
  let counter = Workload.Gen.counter net ~name:"cnt" ~bits:8 ~enable:guard in
  Net.add_target net "t" counter.Workload.Gen.out;
  show "original" net;

  (* COM alone cannot help: the two guard pipelines are only
     sequentially equivalent, and sweeping cuts at registers *)
  let com1, stats = Transform.Com.run net in
  Format.printf "  COM merged %d vertices, %d SAT checks@."
    stats.Transform.Com.merged_ands stats.Transform.Com.sat_checks;
  show "after COM" com1.Transform.Rebuild.net;

  (* retiming peels both pipelines onto one shared chain; the XOR
     folds structurally during the rebuild *)
  let ret = Transform.Retime.run com1.Transform.Rebuild.net in
  show "after COM,RET" ret.Transform.Retime.rebuilt.Transform.Rebuild.net;

  (* the trailing COM sees the frozen counter and removes it *)
  let com2, _ = Transform.Com.run ret.Transform.Retime.rebuilt.Transform.Rebuild.net in
  show "after COM,RET,COM" com2.Transform.Rebuild.net;

  let skew =
    Core.Translate.retiming
      ~skew:(List.assoc "t" ret.Transform.Retime.target_skews)
  in
  let final = bound_of com2.Transform.Rebuild.net in
  let translated = skew.Core.Translate.apply final in
  Format.printf
    "Theorem 1/2 translation back to the original: %a (was %a before the \
     transformations)@."
    Core.Sat_bound.pp translated Core.Sat_bound.pp (bound_of net);
  match Bmc.prove net ~target:"t" ~bound:translated with
  | `Proved ->
    Format.printf
      "BMC on the ORIGINAL netlist to depth %d: counter can never saturate \
       — PROVED.@."
      (translated - 1)
  | `Cex cex -> Format.printf "violated at %d@." cex.Bmc.depth
  | `Unknown -> assert false
