(* Quickstart: build a netlist, bound a target's diameter, and turn a
   bounded check into a full proof.

     dune exec examples/quickstart.exe *)

module Net = Netlist.Net
module Lit = Netlist.Lit

let () =
  (* a 4-entry one-hot arbiter: grant rotates among requesters; the
     property says grant lines are one-hot (no two grants at once) *)
  let net = Net.create () in
  let grants =
    List.init 4 (fun i ->
        Net.add_reg net
          ~init:(if i = 0 then Net.Init1 else Net.Init0)
          (Printf.sprintf "grant%d" i))
  in
  let advance = Net.add_input net "advance" in
  List.iteri
    (fun i g ->
      let prev = List.nth grants ((i + 3) mod 4) in
      Net.set_next net g (Net.add_mux net ~sel:advance ~t1:prev ~t0:g))
    grants;
  (* target: two grants asserted simultaneously (should never happen) *)
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  let double =
    Net.add_or_list net
      (List.map (fun (a, b) -> Net.add_and net a b) (pairs grants))
  in
  Net.add_target net "double_grant" double;
  Format.printf "netlist: %a@." Net.pp_stats net;

  (* 1. overapproximate the diameter structurally *)
  let bound = Core.Bound.target_named net "double_grant" in
  Format.printf "structural diameter bound: %a (cone has %d registers)@."
    Core.Sat_bound.pp bound.Core.Bound.bound bound.Core.Bound.coi_regs;

  (* 2. a bounded check of that depth is complete *)
  match Bmc.prove net ~target:"double_grant" ~bound:bound.Core.Bound.bound with
  | `Proved ->
    Format.printf
      "BMC to depth %d found no hit: AG(~double_grant) PROVED.@."
      (bound.Core.Bound.bound - 1)
  | `Cex cex ->
    Format.printf "property violated at time %d!@." cex.Bmc.depth
  | `Unknown -> assert false
