(* A small memory controller: a request queue in front of an
   addressable store.  Hundreds of state bits, yet the structural
   bound stays tiny because the state is table-like (the paper's
   MC/QC classes), so complete BMC is cheap.

     dune exec examples/memory_controller.exe *)

module Net = Netlist.Net
module Lit = Netlist.Lit

let () =
  let net = Net.create () in
  let push = Net.add_input net "push" in
  let req = Net.add_input net "req_bit" in
  let addr = List.init 3 (fun i -> Net.add_input net (Printf.sprintf "addr%d" i)) in
  let wdata = List.init 4 (fun i -> Net.add_input net (Printf.sprintf "wdata%d" i)) in
  let write = Net.add_input net "write" in
  (* 6-deep request queue feeding the store's write-enable *)
  let queue =
    Workload.Gen.queue net ~name:"reqq" ~depth:6 ~width:1 ~push ~data:[ req ]
  in
  let write_gated = Net.add_and net write queue.Workload.Gen.out in
  (* 8 x 4 store with one-hot decoded writes *)
  let store =
    Workload.Gen.memory net ~name:"store" ~rows:8 ~width:4 ~addr ~data:wdata
      ~write:write_gated
  in
  (* property: a read-back parity flag never fires spuriously when the
     queue is drained *)
  let t = Net.add_and net store.Workload.Gen.out (Lit.neg queue.Workload.Gen.out) in
  Net.add_target net "spurious_readback" t;
  Format.printf "controller: %a@." Net.pp_stats net;

  let counts = Core.Classify.netlist_counts net in
  Format.printf "register classes (CC;AC;MC+QC;GC): %a@." Core.Classify.pp_counts
    counts;

  let bound = Core.Bound.target_named net "spurious_readback" in
  Format.printf
    "structural bound: %a — %d state bits, yet the memory multiplies by \
     rows+1 and the queue by depth+1 instead of 2^registers@."
    Core.Sat_bound.pp bound.Core.Bound.bound bound.Core.Bound.coi_regs;

  (* compare against the worst case the naive view would take *)
  Format.printf "naive 2^registers view: %a@." Core.Sat_bound.pp
    (Core.Sat_bound.pow2 bound.Core.Bound.coi_regs);

  match Bmc.check net ~target:"spurious_readback" ~depth:(bound.Core.Bound.bound - 1) with
  | Bmc.No_hit d -> Format.printf "no hit to depth %d: complete proof.@." d
  | Bmc.Hit cex ->
    Format.printf "hit at %d — the flag can fire; counterexample replays: %b@."
      cex.Bmc.depth
      (Bmc.replay net (List.assoc "spurious_readback" (Net.targets net)) cex)
  | Bmc.Unknown _ -> assert false
