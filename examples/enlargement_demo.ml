(* Target enlargement (Section 3.4, Theorem 4) and the cautionary
   tales of Sections 3.5/3.6.

     dune exec examples/enlargement_demo.exe *)

module Net = Netlist.Net
module Lit = Netlist.Lit

let () =
  (* an 8-state counter with a mid-range target *)
  let net = Net.create () in
  let c = Workload.Gen.counter net ~name:"c" ~bits:3 ~enable:Lit.true_ in
  let t =
    match c.Workload.Gen.regs with
    | [ b0; b1; b2 ] -> Net.add_and_list net [ b0; Lit.neg b1; b2 ] (* value 5 *)
    | _ -> assert false
  in
  Net.add_target net "hit5" t;
  Format.printf "design: %a@." Net.pp_stats net;

  let k = 3 in
  (match Transform.Enlarge.run net ~target:"hit5" ~k with
  | Error _ -> assert false
  | Ok r ->
    Format.printf
      "%d-step enlarged target: BDD with %d nodes (states that hit in \
       exactly %d steps, none earlier)@."
      k r.Transform.Enlarge.bdd_size k;
    let b = Core.Bound.target_named r.Transform.Enlarge.net
        (Printf.sprintf "hit5#enl%d" k)
    in
    let translated =
      (Core.Translate.target_enlargement ~k).Core.Translate.apply
        b.Core.Bound.bound
    in
    Format.printf
      "Theorem 4: enlarged bound %a + k = %a bounds the first possible hit \
       of the original target@."
      Core.Sat_bound.pp b.Core.Bound.bound Core.Sat_bound.pp translated;
    (match Bmc.check net ~target:"hit5" ~depth:(translated - 1) with
    | Bmc.Hit cex -> Format.printf "indeed: first hit at time %d@." cex.Bmc.depth
    | Bmc.No_hit d -> Format.printf "no hit to %d: hit5 unreachable@." d
    | Bmc.Unknown _ -> assert false));

  (* Sections 3.5/3.6: why over/under-approximations have no theorem *)
  Format.printf
    "@.-- localization (overapproximate): cutting the carry chain --@.";
  let cut =
    List.map (fun r -> Lit.var (Net.reg_of net (Lit.var r)).Net.next) c.Workload.Gen.regs
  in
  let loc = Transform.Localize.run net ~cut in
  let b_loc = Core.Bound.target_named loc.Transform.Rebuild.net "hit5" in
  let b_orig = Core.Bound.target_named net "hit5" in
  Format.printf
    "localized bound %a vs original %a: the freed registers reach any \
     state in one step, so the localized \"diameter\" says nothing about \
     the original (the real first hit is at time 5 > %a - 1)@."
    Core.Sat_bound.pp b_loc.Core.Bound.bound Core.Sat_bound.pp
    b_orig.Core.Bound.bound Core.Sat_bound.pp b_loc.Core.Bound.bound;

  Format.printf "@.-- case splitting (underapproximate): freezing enable --@.";
  let net2 = Net.create () in
  let en = Net.add_input net2 "en" in
  let c2 = Workload.Gen.counter net2 ~name:"c" ~bits:3 ~enable:en in
  Net.add_target net2 "t" c2.Workload.Gen.out;
  let split = Transform.Casesplit.run net2 ~assignment:[ ("en", false) ] in
  let reduced, _ = Transform.Com.run split.Transform.Rebuild.net in
  let b_split = Core.Bound.target_named reduced.Transform.Rebuild.net "t" in
  Format.printf
    "split bound %a — yet the original counter hits all-ones at time 7: \
     underapproximate bounds are equally unusable@." Core.Sat_bound.pp
    b_split.Core.Bound.bound
