(* Obs.Log: the leveled JSONL logger behind the serve telemetry —
   level filtering, parse-back of emitted lines, the correlation
   context, the file sink, and the log.* counters. *)

module Log = Obs.Log
module Report = Obs.Report

let counter name = Obs.Stats.counter_value (Obs.Stats.counter name)

let with_tmp f =
  let path = Filename.temp_file "diambound_log" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* every case routes the sink to a temp file and restores defaults, so
   no test (or alcotest's own stderr) is polluted *)
let with_log f =
  with_tmp (fun path ->
      Log.set_file path;
      Fun.protect ~finally:Log.reset (fun () -> f path))

let read_lines path =
  Log.to_stderr ();
  (* close the sink so the file is complete *)
  In_channel.with_open_text path In_channel.input_lines

let field line name =
  match Report.parse line with
  | Report.Obj fields -> List.assoc_opt name fields
  | _ -> Alcotest.failf "log line is not an object: %s" line

let test_level_names () =
  Helpers.check_bool "roundtrip through levels" true
    (List.for_all
       (fun (name, l) -> Log.level_of_string name = Some l)
       Log.levels);
  Helpers.check_bool "warning alias" true
    (Log.level_of_string "WARNING" = Some Log.Warn);
  Helpers.check_bool "unknown rejected" true (Log.level_of_string "loud" = None)

let test_level_filtering () =
  with_log (fun path ->
      Log.set_level Log.Warn;
      Helpers.check_bool "error enabled at warn" true (Log.enabled Log.Error);
      Helpers.check_bool "debug disabled at warn" false (Log.enabled Log.Debug);
      Log.error "t.err" [];
      Log.warn "t.warn" [];
      Log.info "t.info" [];
      Log.debug "t.debug" [];
      Log.set_level Log.Debug;
      Log.debug "t.debug2" [];
      let events =
        List.map
          (fun l ->
            match field l "event" with
            | Some (Report.String e) -> e
            | _ -> Alcotest.failf "no event in %s" l)
          (read_lines path)
      in
      Helpers.check
        Alcotest.(list string)
        "threshold applied" [ "t.err"; "t.warn"; "t.debug2" ] events)

let test_lines_parse_back () =
  with_log (fun path ->
      Log.warn "t.shape"
        [ ("detail", Report.String "a \"quoted\" thing"); ("n", Report.Int 3) ];
      match read_lines path with
      | [ line ] ->
        Helpers.check_bool "level field" true
          (field line "level" = Some (Report.String "warn"));
        Helpers.check_bool "event field" true
          (field line "event" = Some (Report.String "t.shape"));
        Helpers.check_bool "custom fields survive" true
          (field line "n" = Some (Report.Int 3));
        Helpers.check_bool "ts is a number" true
          (match field line "ts" with Some (Report.Float _) -> true | _ -> false);
        Helpers.check_bool "no corr outside a context" true
          (field line "corr" = None)
      | l -> Alcotest.failf "expected one line, got %d" (List.length l))

let test_corr_context () =
  with_log (fun path ->
      Log.warn "t.outside" [];
      Log.with_corr "req-3" (fun () ->
          Log.warn "t.inside" [];
          Helpers.check_bool "context visible" true
            (Log.current_corr () = Some "req-3");
          Log.with_corr "req-4" (fun () -> Log.warn "t.nested" []));
      Helpers.check_bool "context restored" true (Log.current_corr () = None);
      match read_lines path with
      | [ outside; inside; nested ] ->
        Helpers.check_bool "no corr outside" true (field outside "corr" = None);
        Helpers.check_bool "corr inside" true
          (field inside "corr" = Some (Report.String "req-3"));
        Helpers.check_bool "nesting shadows" true
          (field nested "corr" = Some (Report.String "req-4"))
      | l -> Alcotest.failf "expected three lines, got %d" (List.length l))

let test_force_bypasses_threshold () =
  with_log (fun path ->
      Log.set_level Log.Error;
      Log.info "t.suppressed" [];
      Log.force Log.Info "t.forced" [];
      match read_lines path with
      | [ line ] ->
        Helpers.check_bool "only the forced line" true
          (field line "event" = Some (Report.String "t.forced"))
      | l -> Alcotest.failf "expected one line, got %d" (List.length l))

let test_counters_bump () =
  with_log (fun _ ->
      let before = counter "log.warn" in
      Log.warn "t.counted" [];
      Log.debug "t.filtered" [];
      (* a filtered line is not emitted and not counted *)
      Helpers.check_int "warn counted once" (before + 1) (counter "log.warn"))

let test_unopenable_sink_nonfatal () =
  Fun.protect ~finally:Log.reset (fun () ->
      Log.set_file "/nonexistent-dir/log.jsonl";
      (* sink unchanged (stderr); emitting must not raise *)
      Log.error "t.survives" [])

let test_domain_lines_never_interleave () =
  with_log (fun path ->
      let workers =
        Array.init 4 (fun d ->
            Domain.spawn (fun () ->
                for i = 1 to 50 do
                  Log.warn "t.mt"
                    [ ("d", Report.Int d); ("i", Report.Int i) ]
                done))
      in
      Array.iter Domain.join workers;
      let lines = read_lines path in
      Helpers.check_int "every line arrived whole" 200 (List.length lines);
      List.iter
        (fun l ->
          match Report.parse l with
          | Report.Obj _ -> ()
          | _ | (exception Failure _) ->
            Alcotest.failf "interleaved/corrupt line: %s" l)
        lines)

let suite =
  [
    Alcotest.test_case "level names" `Quick test_level_names;
    Alcotest.test_case "level filtering" `Quick test_level_filtering;
    Alcotest.test_case "lines parse back as JSON" `Quick test_lines_parse_back;
    Alcotest.test_case "correlation context" `Quick test_corr_context;
    Alcotest.test_case "force bypasses the threshold" `Quick
      test_force_bypasses_threshold;
    Alcotest.test_case "log.* counters" `Quick test_counters_bump;
    Alcotest.test_case "unopenable sink is nonfatal" `Quick
      test_unopenable_sink_nonfatal;
    Alcotest.test_case "domain lines never interleave" `Quick
      test_domain_lines_never_interleave;
  ]
