module Net = Netlist.Net
module Lit = Netlist.Lit

let test_counter_hit_depth () =
  let net = Net.create () in
  let c = Workload.Gen.counter net ~name:"c" ~bits:3 ~enable:Lit.true_ in
  Net.add_target net "t" c.Workload.Gen.out;
  (match Bmc.check net ~target:"t" ~depth:10 with
  | Bmc.Hit cex ->
    Helpers.check_int "hit exactly at 7" 7 cex.Bmc.depth;
    Helpers.check_bool "replay confirms" true
      (Bmc.replay net (List.assoc "t" (Net.targets net)) cex)
  | Bmc.No_hit _ | Bmc.Unknown _ -> Alcotest.fail "counter must hit");
  match Bmc.check net ~target:"t" ~depth:6 with
  | Bmc.No_hit 6 -> ()
  | Bmc.No_hit _ | Bmc.Hit _ | Bmc.Unknown _ -> Alcotest.fail "no hit before 7"

let test_input_dependent_hit () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let p = Workload.Gen.pipeline net ~name:"p" ~stages:2 ~data:a in
  Net.add_target net "t" p.Workload.Gen.out;
  match Bmc.check net ~target:"t" ~depth:5 with
  | Bmc.Hit cex ->
    Helpers.check_int "needs 2 steps to fill" 2 cex.Bmc.depth;
    Helpers.check_bool "replay confirms" true
      (Bmc.replay net (List.assoc "t" (Net.targets net)) cex)
  | Bmc.No_hit _ | Bmc.Unknown _ -> Alcotest.fail "fillable pipeline must hit"

let test_x_init_hit () =
  (* an X-initialized self-loop can be 1 from the start *)
  let net = Net.create () in
  let r = Net.add_reg net ~init:Net.Init_x "r" in
  Net.set_next net r r;
  Net.add_target net "t" r;
  match Bmc.check net ~target:"t" ~depth:2 with
  | Bmc.Hit cex ->
    Helpers.check_int "hit at 0" 0 cex.Bmc.depth;
    Helpers.check_bool "init recorded" true
      (List.mem_assoc (Lit.var r) cex.Bmc.init_x);
    Helpers.check_bool "replay confirms" true
      (Bmc.replay net (List.assoc "t" (Net.targets net)) cex)
  | Bmc.No_hit _ | Bmc.Unknown _ -> Alcotest.fail "X register can hit"

let test_unreachable_proof () =
  (* mutually exclusive flags: the conjunction is unreachable; a
     diameter bound turns BMC into a proof *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let r0 = Net.add_reg net ~init:Net.Init0 "r0" in
  let r1 = Net.add_reg net ~init:Net.Init1 "r1" in
  Net.set_next net r0 a;
  Net.set_next net r1 (Lit.neg a);
  Net.add_target net "t" (Net.add_and net r0 r1);
  let b = (Core.Bound.target_named net "t").Core.Bound.bound in
  Helpers.check_bool "bound finite" false (Core.Sat_bound.is_huge b);
  (match Bmc.prove net ~target:"t" ~bound:b with
  | `Proved -> ()
  | `Cex _ | `Unknown ->
    Alcotest.fail "conjunction of complementary flags unreachable");
  (* sanity: exact agrees *)
  let e = Option.get (Core.Exact.explore net (List.assoc "t" (Net.targets net))) in
  Helpers.check_bool "exact agrees" true (e.Core.Exact.earliest_hit = None)

let test_from_parameter () =
  let net = Net.create () in
  let c = Workload.Gen.counter net ~name:"c" ~bits:2 ~enable:Lit.true_ in
  Net.add_target net "t" c.Workload.Gen.out;
  (* hits at 3 and (wrapping) at 7 *)
  match Bmc.check ~from:4 net ~target:"t" ~depth:10 with
  | Bmc.Hit cex -> Helpers.check_int "second hit at 7" 7 cex.Bmc.depth
  | Bmc.No_hit _ | Bmc.Unknown _ -> Alcotest.fail "wrapping counter must hit again"

let test_unknown_target () =
  let net = Net.create () in
  Alcotest.check_raises "unknown target" (Invalid_argument "Bmc: unknown target zz")
    (fun () -> ignore (Bmc.check net ~target:"zz" ~depth:1))

let prop_bmc_agrees_with_exact =
  Helpers.qtest ~count:50 "BMC and explicit search agree on earliest hits"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_net_with_target seed ~inputs:3 ~regs:4 ~gates:10 in
      match Core.Exact.explore net t with
      | None -> true
      | Some e -> (
        let depth = 12 in
        match (Bmc.check_lit net t ~depth, e.Core.Exact.earliest_hit) with
        | Bmc.Hit cex, Some hit -> cex.Bmc.depth = hit && Bmc.replay net t cex
        | Bmc.No_hit _, Some hit -> hit > depth
        | Bmc.No_hit _, None -> true
        | Bmc.Hit _, None -> false
        | Bmc.Unknown _, _ -> false (* no budget: Unknown impossible *)))

let prop_cex_replays =
  Helpers.qtest ~count:50 "every counterexample replays on the simulator"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_structured seed in
      match Bmc.check_lit net t ~depth:8 with
      | Bmc.Hit cex -> Bmc.replay net t cex
      | Bmc.No_hit _ -> true
      | Bmc.Unknown _ -> false)

let test_frames_agree_with_replay () =
  (* frames_of_cex and replay are two readings of the same simulation:
     the captured frames must show the target miss at every step
     before [depth] (BMC reports the first hit) and the hit at
     [depth], exactly when replay succeeds *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let r = Net.add_reg net ~init:Net.Init0 "r" in
  Net.set_next net r a;
  Net.add_target net "t" r;
  let t = List.assoc "t" (Net.targets net) in
  match Bmc.check net ~target:"t" ~depth:4 with
  | Bmc.Hit cex ->
    Helpers.check_bool "cex replays" true (Bmc.replay net t cex);
    let frames = Bmc.frames_of_cex net cex in
    Helpers.check_int "one frame per step" (cex.Bmc.depth + 1)
      (Array.length frames);
    let hit_at step =
      frames.(step).(Lit.var t)
      = (if Lit.is_neg t then Netlist.Sim.V0 else Netlist.Sim.V1)
    in
    for step = 0 to cex.Bmc.depth - 1 do
      Helpers.check_bool
        (Printf.sprintf "no hit in frame %d" step)
        false (hit_at step)
    done;
    Helpers.check_bool "hit in the final frame" true (hit_at cex.Bmc.depth)
  | Bmc.No_hit _ | Bmc.Unknown _ -> Alcotest.fail "expected a hit"

let suite =
  [
    Alcotest.test_case "counter hit depth" `Quick test_counter_hit_depth;
    Alcotest.test_case "input-dependent hit" `Quick test_input_dependent_hit;
    Alcotest.test_case "X-init hit" `Quick test_x_init_hit;
    Alcotest.test_case "unreachable proof" `Quick test_unreachable_proof;
    Alcotest.test_case "from parameter" `Quick test_from_parameter;
    Alcotest.test_case "unknown target" `Quick test_unknown_target;
    Alcotest.test_case "frames agree with replay" `Quick
      test_frames_agree_with_replay;
    prop_bmc_agrees_with_exact;
    prop_cex_replays;
  ]
