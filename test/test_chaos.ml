(* Fault injection: prove the certification layer catches corrupted
   answers at every level — solver, BMC, engine.  Each test arms one
   deterministic fault, asserts it actually fired
   (Chaos.injections () > 0), and asserts the corruption was caught:
   the independent checker rejects it and the engine never reports an
   uncertified Proved/Violated.

   The whole suite is reproducible from one number: set
   DIAMBOUND_CHAOS_SEED to rerun with a different arming seed (the
   faults themselves are deterministic; the seed is recorded in the
   chaos state so failures can name it). *)

module Net = Netlist.Net
module Lit = Netlist.Lit
module Solver = Sat.Solver
module Chaos = Sat.Chaos
module Stats = Obs.Stats
module Engine = Core.Engine
module Certify = Core.Certify

let seed =
  match Sys.getenv_opt "DIAMBOUND_CHAOS_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 1234)
  | None -> 1234

(* run [f] with [fault] armed; assert at least one injection fired *)
let under fault f =
  Chaos.with_fault ~seed fault (fun () ->
      let v = f () in
      Helpers.check_bool
        (Printf.sprintf "fault %s fired" (Chaos.fault_name fault))
        true
        (Chaos.injections () > 0);
      v)

(* ----- solver layer ----- *)

(* pigeonhole: genuinely unsatisfiable, non-trivially so *)
let php solver pigeons holes =
  let var = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Solver.new_var solver)) in
  for p = 0 to pigeons - 1 do
    Solver.add_clause solver (Array.to_list (Array.map Solver.pos var.(p)))
  done;
  for h = 0 to holes - 1 do
    for p = 0 to pigeons - 1 do
      for q = p + 1 to pigeons - 1 do
        Solver.add_clause solver
          [ Solver.neg_of var.(p).(h); Solver.neg_of var.(q).(h) ]
      done
    done
  done

let test_solver_flip_to_unsat () =
  under Chaos.Flip_to_unsat (fun () ->
      let s = Solver.create () in
      let p = Sat.Proof.create () in
      Solver.set_proof s p;
      let a = Solver.pos (Solver.new_var s) in
      let b = Solver.pos (Solver.new_var s) in
      Solver.add_clause s [ a ];
      Solver.add_clause s [ Solver.negate a; b ];
      (match Solver.solve s with
      | Solver.Unsat -> ()
      | _ -> Alcotest.fail "fault should have reported Unsat");
      (* the lie has no refutation: the checker rejects the "proof" *)
      Helpers.check_bool "drup rejects flipped unsat" true
        (Result.is_error (Sat.Drup.check (Sat.Proof.events p))))

let test_solver_flip_to_sat () =
  under Chaos.Flip_to_sat (fun () ->
      let s = Solver.create () in
      php s 4 3;
      (match Solver.solve s with
      | Solver.Sat -> ()
      | _ -> Alcotest.fail "fault should have reported Sat");
      (* no model of an unsatisfiable formula exists, so whatever the
         solver now claims, check_model must falsify a clause *)
      Helpers.check_bool "check_model rejects garbage model" true
        (Result.is_error (Solver.check_model s)))

let test_solver_corrupt_model () =
  under Chaos.Corrupt_model (fun () ->
      let s = Solver.create () in
      let a = Solver.pos (Solver.new_var s) in
      let b = Solver.neg_of (Solver.new_var s) in
      Solver.add_clause s [ a ];
      Solver.add_clause s [ b ];
      (match Solver.solve s with
      | Solver.Sat -> ()
      | _ -> Alcotest.fail "expected Sat");
      (* the genuine model is forced; its wholesale negation falsifies
         both unit clauses *)
      Helpers.check_bool "check_model rejects negated model" true
        (Result.is_error (Solver.check_model s)))

let test_solver_drop_proof () =
  under Chaos.Drop_proof (fun () ->
      let s = Solver.create () in
      let p = Sat.Proof.create () in
      Solver.set_proof s p;
      php s 4 3;
      (match Solver.solve s with
      | Solver.Unsat -> ()
      | _ -> Alcotest.fail "expected Unsat");
      Helpers.check_int "every event dropped" 0
        (Sat.Proof.num_inputs p + Sat.Proof.num_adds p + Sat.Proof.num_deletes p);
      (* an empty derivation refutes nothing *)
      Helpers.check_bool "drup rejects empty proof" true
        (Result.is_error (Sat.Drup.check (Sat.Proof.events p))))

(* ----- BMC layer ----- *)

(* 2-bit counter, all-ones at time 3: genuinely violated *)
let violated_net () =
  let net = Net.create () in
  let c = Workload.Gen.counter net ~name:"c" ~bits:2 ~enable:Lit.true_ in
  Net.add_target net "t" c.Workload.Gen.out;
  net

(* r stays 0 forever: genuinely safe *)
let safe_net () =
  let net = Net.create () in
  let r = Net.add_reg net ~init:Net.Init0 "r" in
  Net.set_next net r r;
  Net.add_target net "t" r;
  net

(* target = input: any model corruption breaks the replay *)
let input_net () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  Net.add_target net "t" a;
  net

let test_bmc_flip_to_unsat () =
  under Chaos.Flip_to_unsat (fun () ->
      let net = violated_net () in
      let cert = Bmc.new_cert () in
      match Bmc.check ~cert net ~target:"t" ~depth:5 with
      | Bmc.No_hit 5 ->
        (* bogus: the hit at 3 was flipped away.  The depth-3 goal is
           genuinely satisfiable, so no sound derivation refutes it *)
        Helpers.check_bool "no-hit certificate rejected" true
          (Result.is_error (Certify.check_no_hit ~depth:5 cert))
      | _ -> Alcotest.fail "fault should have reported No_hit")

let test_bmc_corrupt_model () =
  under Chaos.Corrupt_model (fun () ->
      let net = input_net () in
      let tlit = List.assoc "t" (Net.targets net) in
      match Bmc.check net ~target:"t" ~depth:2 with
      | Bmc.Hit cex ->
        Helpers.check_bool "corrupted cex fails replay" true
          (Result.is_error (Certify.check_cex net tlit cex))
      | _ -> Alcotest.fail "expected a hit")

let test_bmc_drop_proof () =
  under Chaos.Drop_proof (fun () ->
      let net = safe_net () in
      let cert = Bmc.new_cert () in
      match Bmc.check ~cert net ~target:"t" ~depth:3 with
      | Bmc.No_hit 3 ->
        (* the answer is genuine but its evidence was lost; a
           certificate that cannot be checked must not pass *)
        Helpers.check_bool "proofless certificate rejected" true
          (Result.is_error (Certify.check_no_hit ~depth:3 cert))
      | _ -> Alcotest.fail "expected no hit")

(* ----- engine layer ----- *)

(* The engine under an armed fault must degrade to Inconclusive with
   at least one certification-failed attempt: never a corrupted
   Proved/Violated, never a crash. *)
let engine_degrades fault net =
  Stats.reset ();
  under fault (fun () ->
      match Engine.verify ~certify:true net ~target:"t" with
      | Engine.Inconclusive { attempts } ->
        let cert_failures =
          List.filter
            (fun a ->
              String.length a.Engine.reason
              >= String.length Engine.cert_fail_reason
              && String.sub a.Engine.reason 0
                   (String.length Engine.cert_fail_reason)
                 = Engine.cert_fail_reason)
            attempts
        in
        Helpers.check_bool "some strategy failed certification" true
          (cert_failures <> []);
        Helpers.check_bool "cert_fail counted" true
          (List.assoc "engine.cert_fail" (Stats.snapshot ()).Stats.counters > 0)
      | Engine.Proved _ -> Alcotest.fail "corrupted answer reported as Proved"
      | Engine.Violated _ ->
        Alcotest.fail "corrupted answer reported as Violated")

let test_engine_flip_to_unsat () =
  (* hittable at time 0, so every depth-covering no-hit claim includes
     a genuinely satisfiable goal — unrefutable no matter which bogus
     bound a corrupted sub-answer produced *)
  engine_degrades Chaos.Flip_to_unsat (input_net ())

let test_engine_flip_to_sat () = engine_degrades Chaos.Flip_to_sat (safe_net ())

let test_engine_corrupt_model () =
  engine_degrades Chaos.Corrupt_model (input_net ())

let test_engine_drop_proof () = engine_degrades Chaos.Drop_proof (safe_net ())

let test_instance_capture () =
  (* the chaos config is captured per solver instance at creation:
     a solver born under an armed fault keeps faulting after disarm,
     and a solver born clean stays clean even while chaos is armed —
     the per-instance semantics that make concurrent solvers with
     different configs coherent *)
  let trivial s =
    let a = Solver.pos (Solver.new_var s) in
    Solver.add_clause s [ a ];
    Solver.solve s
  in
  let dirty =
    Chaos.with_fault ~seed Chaos.Flip_to_unsat (fun () -> Solver.create ())
  in
  Helpers.check_bool "chaos disarmed again" false (Chaos.active ());
  (match trivial dirty with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "armed-at-creation solver must keep its fault");
  let clean = Solver.create () in
  Chaos.with_fault ~seed Chaos.Flip_to_unsat (fun () ->
      Helpers.check_bool "fresh capture sees the fault" true
        (Chaos.instance_fault (Chaos.capture ()) = Some Chaos.Flip_to_unsat);
      (* capture happened at [clean]'s creation, when chaos was off *)
      match trivial clean with
      | Solver.Sat -> ()
      | _ -> Alcotest.fail "clean solver must answer honestly")

let test_disarm_restores () =
  (* sanity for the harness itself: after a chaos run, certification
     succeeds again on the same workloads *)
  under Chaos.Flip_to_unsat (fun () ->
      match Engine.verify (violated_net ()) ~target:"t" with
      | Engine.Violated _ -> Alcotest.fail "fault not injected"
      | _ -> ());
  Helpers.check_bool "disarmed" false (Chaos.active ());
  Stats.reset ();
  match Engine.verify ~certify:true (violated_net ()) ~target:"t" with
  | Engine.Violated _ ->
    Helpers.check_int "clean run has no cert failures" 0
      (List.assoc "engine.cert_fail" (Stats.snapshot ()).Stats.counters)
  | v -> Alcotest.fail (Format.asprintf "unexpected: %a" Engine.pp_verdict v)

let suite =
  [
    Alcotest.test_case "solver: flip to unsat" `Quick test_solver_flip_to_unsat;
    Alcotest.test_case "solver: flip to sat" `Quick test_solver_flip_to_sat;
    Alcotest.test_case "solver: corrupt model" `Quick test_solver_corrupt_model;
    Alcotest.test_case "solver: drop proof" `Quick test_solver_drop_proof;
    Alcotest.test_case "bmc: flip to unsat" `Quick test_bmc_flip_to_unsat;
    Alcotest.test_case "bmc: corrupt model" `Quick test_bmc_corrupt_model;
    Alcotest.test_case "bmc: drop proof" `Quick test_bmc_drop_proof;
    Alcotest.test_case "engine: flip to unsat" `Quick test_engine_flip_to_unsat;
    Alcotest.test_case "engine: flip to sat" `Quick test_engine_flip_to_sat;
    Alcotest.test_case "engine: corrupt model" `Quick test_engine_corrupt_model;
    Alcotest.test_case "engine: drop proof" `Quick test_engine_drop_proof;
    Alcotest.test_case "per-instance capture" `Quick test_instance_capture;
    Alcotest.test_case "disarm restores certification" `Quick
      test_disarm_restores;
  ]
